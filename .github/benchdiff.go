// benchdiff compares two BENCH_serve.json files (the checked-in baseline
// and a fresh run) and fails when any strategy regressed: admission
// throughput down more than 10%, durable group-commit throughput
// (version-4 durable_reqs_per_sec, gated only when both files carry it)
// down more than 10%, or any stage-latency p99 — the queue, plan, and
// replan columns distilled from the server's
// mod_stage_latency_seconds histograms — up more than 10%.  It lives
// under .github/ so `go build ./...` ignores it (dot-directories are
// excluded from package patterns); CI runs it with
// `go run .github/benchdiff.go BENCH_serve.json /tmp/bench_new.json`.
//
// Both bench shapes are accepted: the legacy flat file ({"results": [...]})
// and the version-2+ grid ({"grid": [{"results": [...]}, ...]}).  Values
// are aggregated per strategy as the mean over every row where the
// strategy appears, so a baseline and a fresh run with different grid
// extents still compare on their common strategies.  Timing on shared CI
// runners is noisy, which the 10% tolerance, cross-cell averaging, and a
// 25µs absolute floor on the latency columns absorb; beyond that the
// build fails (::error::), and the checked-in baseline — the cross-PR
// perf trajectory — must be deliberately refreshed by any PR that moves
// it.  Stage columns only gate when both files carry them (older
// baselines predate stage metering; a zero column means not measured).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type benchRow struct {
	Strategy          string  `json:"strategy"`
	ReqsPerSec        float64 `json:"reqs_per_sec"`
	QueueP99US        float64 `json:"queue_p99_us"`
	PlanP99US         float64 `json:"plan_p99_us"`
	ReplanP99US       float64 `json:"replan_p99_us"`
	DurableReqsPerSec float64 `json:"durable_reqs_per_sec"`
}

// benchFile matches both shapes: flat results and the version-2+ grid.
type benchFile struct {
	Results []benchRow `json:"results"`
	Grid    []struct {
		Results []benchRow `json:"results"`
	} `json:"grid"`
}

// strategyStats is a strategy's cross-cell mean of each gated column.
// durableReqsPerSec averages only the rows that measured it (the
// version-4 durable columns appear on "online" rows; version-3 baselines
// have none at all) and stays zero when no row did.
type strategyStats struct {
	reqsPerSec        float64
	queueP99US        float64
	planP99US         float64
	replanP99US       float64
	durableReqsPerSec float64
}

// load returns each strategy's mean columns across every row of the file.
func load(path string) (map[string]strategyStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rows := f.Results
	for _, cell := range f.Grid {
		rows = append(rows, cell.Results...)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no bench rows (neither flat results nor grid cells)", path)
	}
	sum := make(map[string]strategyStats)
	n := make(map[string]float64)
	nDur := make(map[string]float64)
	for _, r := range rows {
		s := sum[r.Strategy]
		s.reqsPerSec += r.ReqsPerSec
		s.queueP99US += r.QueueP99US
		s.planP99US += r.PlanP99US
		s.replanP99US += r.ReplanP99US
		if r.DurableReqsPerSec > 0 {
			s.durableReqsPerSec += r.DurableReqsPerSec
			nDur[r.Strategy]++
		}
		sum[r.Strategy] = s
		n[r.Strategy]++
	}
	out := make(map[string]strategyStats, len(sum))
	for name, s := range sum {
		st := strategyStats{
			reqsPerSec:  s.reqsPerSec / n[name],
			queueP99US:  s.queueP99US / n[name],
			planP99US:   s.planP99US / n[name],
			replanP99US: s.replanP99US / n[name],
		}
		if nDur[name] > 0 {
			st.durableReqsPerSec = s.durableReqsPerSec / nDur[name]
		}
		out[name] = st
	}
	return out, nil
}

const (
	tolerance = 0.10
	// latencyFloorUS keeps sub-resolution jitter from failing the build: a
	// p99 regression must exceed the relative tolerance AND grow by at
	// least this many microseconds.
	latencyFloorUS = 25.0
)

// p99Regressed reports whether a stage p99 moved enough to gate: both
// measured (older baselines carry zeros for unmetered stages), over the
// relative tolerance, and over the absolute floor.
func p99Regressed(oldUS, newUS float64) bool {
	if oldUS <= 0 || newUS <= 0 {
		return false
	}
	return newUS > oldUS*(1+tolerance) && newUS-oldUS > latencyFloorUS
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldStats, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newStats, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	strategies := make([]string, 0, len(oldStats))
	for s := range oldStats {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	failed := false
	for _, strategy := range strategies {
		o := oldStats[strategy]
		n, ok := newStats[strategy]
		if !ok {
			fmt.Printf("::error::benchdiff: strategy %q present in baseline but missing from new run\n", strategy)
			failed = true
			continue
		}
		delta := (n.reqsPerSec - o.reqsPerSec) / o.reqsPerSec
		fmt.Printf("%-16s %12.0f -> %12.0f reqs/s (%+.1f%%)  p99 q %.0f->%.0f plan %.0f->%.0f replan %.0f->%.0f us\n",
			strategy, o.reqsPerSec, n.reqsPerSec, 100*delta,
			o.queueP99US, n.queueP99US, o.planP99US, n.planP99US, o.replanP99US, n.replanP99US)
		if delta < -tolerance {
			fmt.Printf("::error::benchdiff: %s admission throughput regressed %.1f%% (%.0f -> %.0f reqs/s)\n",
				strategy, -100*delta, o.reqsPerSec, n.reqsPerSec)
			failed = true
		}
		// The durable group-commit column gates like admission throughput,
		// but only when both files measured it — a version-3 baseline
		// (no durable columns) never fails a version-4 run, and vice versa.
		if o.durableReqsPerSec > 0 && n.durableReqsPerSec > 0 {
			dDelta := (n.durableReqsPerSec - o.durableReqsPerSec) / o.durableReqsPerSec
			fmt.Printf("%-16s %12.0f -> %12.0f durable reqs/s (%+.1f%%)\n",
				strategy, o.durableReqsPerSec, n.durableReqsPerSec, 100*dDelta)
			if dDelta < -tolerance {
				fmt.Printf("::error::benchdiff: %s durable group-commit throughput regressed %.1f%% (%.0f -> %.0f reqs/s)\n",
					strategy, -100*dDelta, o.durableReqsPerSec, n.durableReqsPerSec)
				failed = true
			}
		}
		for _, stage := range []struct {
			name         string
			oldUS, newUS float64
		}{
			{"queue", o.queueP99US, n.queueP99US},
			{"plan", o.planP99US, n.planP99US},
			{"replan", o.replanP99US, n.replanP99US},
		} {
			if p99Regressed(stage.oldUS, stage.newUS) {
				fmt.Printf("::error::benchdiff: %s %s-stage p99 regressed %.1f%% (%.0f -> %.0f us)\n",
					strategy, stage.name, 100*(stage.newUS-stage.oldUS)/stage.oldUS, stage.oldUS, stage.newUS)
				failed = true
			}
		}
	}
	for strategy := range newStats {
		if _, ok := oldStats[strategy]; !ok {
			fmt.Printf("%-16s (new strategy, no baseline)\n", strategy)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: no throughput, durable-throughput, or stage-p99 regression beyond 10%")
}
