// benchdiff compares two BENCH_serve.json files (the checked-in baseline
// and a fresh run) and fails when any strategy's admission throughput
// regressed by more than 10%.  It lives under .github/ so `go build ./...`
// ignores it (dot-directories are excluded from package patterns); CI runs
// it with `go run .github/benchdiff.go BENCH_serve.json /tmp/bench_new.json`.
//
// Both bench shapes are accepted: the legacy flat file ({"results": [...]})
// and the version-2 grid ({"grid": [{"results": [...]}, ...]}).  Rates are
// aggregated per strategy as the mean over every row where the strategy
// appears, so a baseline and a fresh run with different grid extents still
// compare on their common strategies.  Throughput on shared CI runners is
// noisy, which the 10% tolerance and cross-cell averaging absorb; beyond
// that the build fails (::error::), and the checked-in baseline — the
// cross-PR perf trajectory — must be deliberately refreshed by any PR
// that moves it.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type benchRow struct {
	Strategy   string  `json:"strategy"`
	ReqsPerSec float64 `json:"reqs_per_sec"`
}

// benchFile matches both shapes: flat results and the version-2 grid.
type benchFile struct {
	Results []benchRow `json:"results"`
	Grid    []struct {
		Results []benchRow `json:"results"`
	} `json:"grid"`
}

// load returns each strategy's mean reqs/s across every row of the file.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	rows := f.Results
	for _, cell := range f.Grid {
		rows = append(rows, cell.Results...)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("%s: no bench rows (neither flat results nor grid cells)", path)
	}
	sum := make(map[string]float64)
	n := make(map[string]float64)
	for _, r := range rows {
		sum[r.Strategy] += r.ReqsPerSec
		n[r.Strategy]++
	}
	out := make(map[string]float64, len(sum))
	for s := range sum {
		out[s] = sum[s] / n[s]
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldRates, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRates, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	const tolerance = 0.10
	strategies := make([]string, 0, len(oldRates))
	for s := range oldRates {
		strategies = append(strategies, s)
	}
	sort.Strings(strategies)
	failed := false
	for _, strategy := range strategies {
		oldRate := oldRates[strategy]
		newRate, ok := newRates[strategy]
		if !ok {
			fmt.Printf("::error::benchdiff: strategy %q present in baseline but missing from new run\n", strategy)
			failed = true
			continue
		}
		delta := (newRate - oldRate) / oldRate
		fmt.Printf("%-16s %12.0f -> %12.0f reqs/s (%+.1f%%)\n", strategy, oldRate, newRate, 100*delta)
		if delta < -tolerance {
			fmt.Printf("::error::benchdiff: %s admission throughput regressed %.1f%% (%.0f -> %.0f reqs/s)\n",
				strategy, -100*delta, oldRate, newRate)
			failed = true
		}
	}
	for strategy := range newRates {
		if _, ok := oldRates[strategy]; !ok {
			fmt.Printf("%-16s (new strategy, no baseline)\n", strategy)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchdiff: no throughput regression beyond 10%")
}
