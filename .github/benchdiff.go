// benchdiff compares two BENCH_serve.json files (the checked-in baseline
// and a fresh run) and warns when any strategy's admission throughput
// regressed by more than 10%.  It lives under .github/ so `go build ./...`
// ignores it (dot-directories are excluded from package patterns); CI runs
// it with `go run .github/benchdiff.go BENCH_serve.json /tmp/bench_new.json`.
//
// Throughput on shared CI runners is noisy, so a regression emits a
// GitHub ::warning:: annotation rather than failing the build; the
// checked-in baseline is the cross-PR perf trajectory, refreshed whenever
// a PR deliberately moves it.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type benchFile struct {
	Results []struct {
		Strategy   string  `json:"strategy"`
		Requests   int64   `json:"requests"`
		ReqsPerSec float64 `json:"reqs_per_sec"`
	} `json:"results"`
}

func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64, len(f.Results))
	for _, r := range f.Results {
		out[r.Strategy] = r.ReqsPerSec
	}
	return out, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldRates, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRates, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	const tolerance = 0.10
	warned := false
	for strategy, oldRate := range oldRates {
		newRate, ok := newRates[strategy]
		if !ok {
			fmt.Printf("::warning::benchdiff: strategy %q present in baseline but missing from new run\n", strategy)
			warned = true
			continue
		}
		delta := (newRate - oldRate) / oldRate
		fmt.Printf("%-16s %12.0f -> %12.0f reqs/s (%+.1f%%)\n", strategy, oldRate, newRate, 100*delta)
		if delta < -tolerance {
			fmt.Printf("::warning::benchdiff: %s admission throughput regressed %.1f%% (%.0f -> %.0f reqs/s)\n",
				strategy, -100*delta, oldRate, newRate)
			warned = true
		}
	}
	for strategy := range newRates {
		if _, ok := oldRates[strategy]; !ok {
			fmt.Printf("%-16s (new strategy, no baseline)\n", strategy)
		}
	}
	if !warned {
		fmt.Println("benchdiff: no throughput regression beyond 10%")
	}
}
