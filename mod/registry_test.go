package mod_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/mod"
)

// TestRegistryStable is the registry-stability golden test: the built-in
// planner names are public API and may only ever grow.  If this test
// fails, a planner was renamed or removed — that is a breaking change;
// update the golden list only for additions.
func TestRegistryStable(t *testing.T) {
	golden := []string{
		"batching",
		"dyadic",
		"dyadic-batched",
		"hybrid",
		"offline",
		"offline-batched",
		"online",
		"unicast",
	}
	got := mod.Planners()
	if !reflect.DeepEqual(got, golden) {
		t.Fatalf("registered planners = %v, want the golden list %v", got, golden)
	}
	for _, name := range golden {
		p, err := mod.New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
}

func TestNewUnknownPlanner(t *testing.T) {
	_, err := mod.New("no-such-planner")
	if !errors.Is(err, mod.ErrUnknownPlanner) {
		t.Fatalf("New(no-such-planner) error = %v, want ErrUnknownPlanner", err)
	}
}

func TestRegisterGuards(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty name", func() { mod.Register("", func(...mod.Option) (mod.Planner, error) { return nil, nil }) })
	mustPanic("nil factory", func() { mod.Register("x-nil-factory", nil) })
	mustPanic("duplicate", func() {
		mod.Register("online", func(...mod.Option) (mod.Planner, error) { return nil, nil })
	})
}
