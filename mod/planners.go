package mod

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
	"repro/internal/hybrid"
	"repro/internal/policy"
)

// The built-in planners.  Each is a thin, options-driven adapter over the
// internal policy layer; their names are pinned by a golden registry test.
func init() {
	for _, name := range builtinNames {
		name := name
		Register(name, func(opts ...Option) (Planner, error) {
			return &planner{name: name, base: opts, run: builtinRun(name)}, nil
		})
	}
}

// builtinNames lists the built-in planners in registration order; the
// sorted view is what Planners() reports and what the golden test pins.
var builtinNames = []string{
	"online",
	"offline",
	"offline-batched",
	"dyadic",
	"dyadic-batched",
	"batching",
	"hybrid",
	"unicast",
}

// StandardNames returns the planners of the paper's Figs. 11-12 comparison
// plus the merging-free baselines, in the policy layer's stable order.
func StandardNames() []string {
	return []string{"online", "dyadic", "dyadic-batched", "hybrid", "batching", "unicast"}
}

// builtinRun returns the runFunc for a built-in name.  All planners except
// hybrid delegate straight to their policy; hybrid calls the hybrid engine
// directly so it can report its mode timeline through Plan.Aux (the policy
// layer exposes only the cost).
func builtinRun(name string) runFunc {
	if name == "hybrid" {
		return runHybrid
	}
	return func(ctx context.Context, trace arrivals.Trace, horizon float64, st Settings) (float64, map[string]float64, error) {
		pol, err := builtinPolicy(name, st)
		if err != nil {
			return 0, nil, err
		}
		cost, err := pol.Serve(ctx, trace, horizon)
		return cost, nil, err
	}
}

// runHybrid runs the Section 5 hybrid and reports, beyond the cost, the
// fraction of the horizon served in delay-guaranteed mode and what each
// pure strategy would have cost.
func runHybrid(ctx context.Context, trace arrivals.Trace, horizon float64, st Settings) (float64, map[string]float64, error) {
	res, err := hybrid.Run(trace.Clip(horizon), horizon, hybrid.DefaultConfig(st.MediaLength, st.Delay))
	if err != nil {
		return 0, nil, err
	}
	if err := ctx.Err(); err != nil {
		return 0, nil, err
	}
	return res.TotalCost, map[string]float64{
		"loaded_fraction":       res.LoadedFraction,
		"pure_delay_guaranteed": res.PureDelayGuaranteedCost,
		"pure_dyadic":           res.PureDyadicCost,
	}, nil
}

// builtinPolicy maps a built-in planner name and settings onto the policy
// layer.  Compare uses it too, so a Plan and a Compare entry for the same
// name are produced by the same underlying computation.
func builtinPolicy(name string, st Settings) (policy.Policy, error) {
	switch name {
	case "online":
		return policy.DelayGuaranteed(st.MediaLength, st.Delay), nil
	case "offline":
		return policy.OfflineOptimalOpts(st.MediaLength, offlineOptions(st)), nil
	case "offline-batched":
		return policy.OfflineOptimalBatchedOpts(st.MediaLength, st.Delay, offlineOptions(st)), nil
	case "dyadic":
		return policy.ImmediateDyadic(st.MediaLength, dyadicParams(st)), nil
	case "dyadic-batched":
		return policy.BatchedDyadic(st.MediaLength, st.Delay, dyadicParams(st)), nil
	case "batching":
		return policy.PureBatching(st.MediaLength, st.Delay), nil
	case "hybrid":
		return policy.Hybrid(hybrid.DefaultConfig(st.MediaLength, st.Delay)), nil
	case "unicast":
		return policy.Unicast(), nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownPlanner, name)
}

func offlineOptions(st Settings) policy.OfflineOptions {
	return policy.OfflineOptions{
		MaxArrivals:   st.MaxArrivals,
		MaxTableBytes: st.MemoryBudget,
		Workers:       st.Workers,
	}
}

// dyadicParams mirrors policy.Standard's parameter choice: golden-ratio
// thresholds tuned for Poisson arrivals, or the Section 4.2 constant-rate
// tuning for the planner's slots-per-media.
func dyadicParams(st Settings) dyadic.Params {
	if st.Poisson {
		return dyadic.GoldenPoisson()
	}
	return dyadic.GoldenConstantRate(st.SlotsPerMedia())
}

// Compare plans the same instance with several built-in planners at once,
// spreading the work across WithWorkers goroutines (the policy layer's
// CompareParallel pool), and returns the costs keyed by planner name.  The
// costs — and the option semantics, including WithChannelCap — are
// identical to calling Plan per name.  Cancelling ctx aborts the sweep,
// including a mid-flight off-line DP, and returns an error wrapping
// ErrCanceled.
//
// Compare resolves names against the built-in set only; planners added via
// Register have no policy-layer mapping, so plan them with Plan directly.
func Compare(ctx context.Context, names []string, inst Instance, opts ...Option) (map[string]float64, error) {
	st := ResolveSettings(opts...)
	trace, horizon, err := resolveInstance(inst, st)
	if err != nil {
		return nil, fmt.Errorf("mod: compare: %w", err)
	}
	pols := make([]policy.Policy, len(names))
	for i, name := range names {
		if pols[i], err = builtinPolicy(name, st); err != nil {
			return nil, fmt.Errorf("mod: compare: %w", err)
		}
	}
	costs, err := policy.CompareParallel(ctx, pols, trace, horizon, st.Workers)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, fmt.Errorf("mod: compare: %w: %w", ErrCanceled, err)
		}
		return nil, fmt.Errorf("mod: compare: %w", err)
	}
	out := make(map[string]float64, len(names))
	for i, name := range names {
		cost := costs[pols[i].Name()]
		// Enforce the channel cap exactly like Plan does, so swapping a
		// Plan loop for Compare never loses the capacity guard.
		if avg := cost * st.MediaLength / horizon; st.ChannelCap > 0 && avg > float64(st.ChannelCap) {
			return nil, fmt.Errorf("mod: compare: planner %q: %w: plan needs %.2f average channels, cap is %d",
				name, ErrCapacity, avg, st.ChannelCap)
		}
		out[name] = cost
	}
	return out, nil
}
