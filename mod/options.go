package mod

import "math"

// Settings is the resolved configuration a planner runs with.  Zero values
// select the documented defaults; use ResolveSettings to apply options on
// top of the defaults the way New and Plan do.
type Settings struct {
	// MediaLength is the playback duration of the media object in the
	// trace's time units (default 1: the trace is measured in media
	// lengths).
	MediaLength float64
	// Delay is the guaranteed start-up delay in the same units (default
	// 0.01, i.e. 1% of the media length — the paper's running choice).
	Delay float64
	// Horizon, when positive, overrides Instance.Horizon.
	Horizon float64
	// Workers sizes worker pools (the off-line DP diagonals, Compare's
	// policy pool); 0 means GOMAXPROCS, 1 means serial.
	Workers int
	// ChannelCap, when positive, bounds the time-average number of busy
	// channels a Plan may use; plans over the cap fail with ErrCapacity.
	ChannelCap int
	// MemoryBudget, when positive, caps the off-line DP table footprint in
	// bytes (default ~1.5 GiB); over-budget instances fail with
	// ErrInstanceTooLarge before any allocation.
	MemoryBudget int64
	// MaxArrivals, when positive, caps the trace size the off-line
	// planners accept (default 50000).
	MaxArrivals int
	// Poisson tells the dyadic planners to use the golden-ratio parameters
	// tuned for Poisson arrivals (default true); false selects the
	// constant-rate tuning of Section 4.2.
	Poisson bool
	// Strategy is the live serving layer's default planner family (a
	// registry name from LivePlanners()); empty selects "online".  Batch
	// planning ignores it.
	Strategy string
	// EpochSlots is the live layer's replanning period for epoch-based
	// strategies, in slots of each object's delay; 0 selects the serving
	// default.  Batch planning ignores it.
	EpochSlots int
	// WarmReplanning lets the live layer's epoch replanner warm-start from
	// state retained across the closing epoch (default true).  Warm and
	// cold replanning are bit-identical; false forces the cold path.
	// Batch planning ignores it.
	WarmReplanning bool
	// PressureHighWater, when positive, turns on queue-depth backpressure
	// in the live layer: submits routed to a shard whose queue occupancy
	// already exceeds the mark are refused with ErrPressure (HTTP 429 +
	// Retry-After) instead of blocking.  0 (the default) disables
	// backpressure.  Batch planning ignores it.
	PressureHighWater int
	// MeterStages turns on per-request latency decomposition in the live
	// layer: queue / plan / replan / respond stage histograms, exposed via
	// Server.Metrics and GET /v1/metrics.  Metering is observation only —
	// admission decisions and cost totals are bit-identical either way —
	// and the admit path stays allocation-free with it on.  Batch planning
	// ignores it.
	MeterStages bool
	// Store is the live layer's durability backend: every admission is
	// WAL-logged before its ticket is acknowledged, and shards snapshot
	// their full scheduler state at epoch boundaries.  Nil (the default)
	// disables durability.  Batch planning ignores it.
	Store Store
	// SnapshotDir, when non-empty, opens a file-backed Store rooted at the
	// directory (created if absent) and hands its lifetime to the server —
	// the one-knob spelling of durability.  It overrides Store.  Batch
	// planning ignores it.
	SnapshotDir string
	// SnapshotEpochs is the snapshot cadence in epochs (each EpochSlots
	// slots of a shard's smallest delay); 0 selects the serving default of
	// one.  Batch planning ignores it.
	SnapshotEpochs int
	// Restore makes the server rebuild its state from the Store's latest
	// snapshots and WAL tails before serving, resuming ticket numbering
	// past the WAL high-water mark.  Batch planning ignores it.
	Restore bool
	// SyncMode is the WAL group-commit barrier: SyncOS (the zero value)
	// commits to the operating system before acknowledging, SyncFull
	// additionally fsyncs (one fsync per group commit), SyncNone leaves
	// commits to the store's own buffering.  Batch planning ignores it.
	SyncMode SyncMode
}

// SlotsPerMedia returns the media length in slots of the start-up delay
// (the L of the paper), at least 1.
func (s Settings) SlotsPerMedia() int64 {
	if s.Delay <= 0 || s.MediaLength <= 0 {
		return 1
	}
	l := int64(math.Round(s.MediaLength / s.Delay))
	if l < 1 {
		l = 1
	}
	return l
}

// DefaultSettings returns the documented defaults.
func DefaultSettings() Settings {
	return Settings{MediaLength: 1, Delay: 0.01, Poisson: true, WarmReplanning: true}
}

// ResolveSettings applies opts to DefaultSettings, exactly as New and Plan
// do (Plan-time options are applied after New-time options, so they win).
func ResolveSettings(opts ...Option) Settings {
	st := DefaultSettings()
	for _, o := range opts {
		if o != nil {
			o(&st)
		}
	}
	return st
}

// Option is a functional option configuring a planner (at New time) or a
// single Plan call (per-call options override the planner's).
type Option func(*Settings)

// WithMediaLength sets the media playback length in trace time units.
func WithMediaLength(l float64) Option { return func(s *Settings) { s.MediaLength = l } }

// WithDelay sets the guaranteed start-up delay in trace time units.
func WithDelay(d float64) Option { return func(s *Settings) { s.Delay = d } }

// WithHorizon overrides the Instance's planning horizon.
func WithHorizon(h float64) Option { return func(s *Settings) { s.Horizon = h } }

// WithWorkers sizes the worker pools of parallel planners and Compare
// (0 = GOMAXPROCS, 1 = serial).
func WithWorkers(n int) Option { return func(s *Settings) { s.Workers = n } }

// WithChannelCap bounds the time-average busy channels of a Plan; plans
// that would exceed it fail with ErrCapacity.
func WithChannelCap(c int) Option { return func(s *Settings) { s.ChannelCap = c } }

// WithMemoryBudget caps the off-line DP table memory in bytes.
func WithMemoryBudget(bytes int64) Option { return func(s *Settings) { s.MemoryBudget = bytes } }

// WithMaxArrivals caps the trace size the off-line planners accept.
func WithMaxArrivals(n int) Option { return func(s *Settings) { s.MaxArrivals = n } }

// WithPoisson selects Poisson-tuned (true) or constant-rate-tuned (false)
// dyadic parameters.
func WithPoisson(p bool) Option { return func(s *Settings) { s.Poisson = p } }

// WithStrategy sets the default live serving strategy of NewLiveServer:
// any planner name in LivePlanners().  Per-object Object.Strategy entries
// override it.  Batch planning is unaffected.
func WithStrategy(name string) Option { return func(s *Settings) { s.Strategy = name } }

// WithEpoch sets the live layer's epoch-replanning period in slots: how
// often an epoch-based strategy (every live planner but "online") re-runs
// its batch planner over the collected arrivals.  Use a value covering
// the whole horizon to plan a drained run in one batch — the
// configuration under which a live run reproduces the batch Plan exactly.
func WithEpoch(slots int) Option { return func(s *Settings) { s.EpochSlots = slots } }

// WithWarmReplanning toggles warm-start epoch replanning in NewLiveServer
// (default on).  When on, epoch-based strategies reuse planning state
// retained across the closing epoch — resumable DP tables for the
// off-line planners, deduplicated service starts for the batching and
// dyadic families — instead of replanning from scratch; results are
// bit-identical either way (the equivalence suite pins warm == cold), so
// false exists for measurement and triage, not correctness.  ObjectStats
// reports the warm-replan and cell-reuse accounting either way.  Batch
// planning is unaffected.
func WithWarmReplanning(on bool) Option { return func(s *Settings) { s.WarmReplanning = on } }

// WithBackpressure sets the live layer's per-shard queue high-water mark:
// a submit routed to a shard already holding more than highWater queued
// requests is refused with ErrPressure (HTTP: 429 with a Retry-After
// derived from the shard's drain rate) instead of blocking.  0 disables
// backpressure (the default).  Batch planning is unaffected.
func WithBackpressure(highWater int) Option {
	return func(s *Settings) { s.PressureHighWater = highWater }
}

// WithStageMetering toggles per-request latency decomposition in
// NewLiveServer (default off): with it on, every admission records queue
// wait, planning, epoch-replanning, and HTTP-respond durations into
// per-shard log-scale histograms, surfaced by Server.Metrics and the
// GET /v1/metrics Prometheus endpoint.  Metering never changes admission
// decisions or cost accounting, and the admit hot path stays
// allocation-free with it on.  Batch planning is unaffected.
func WithStageMetering(on bool) Option { return func(s *Settings) { s.MeterStages = on } }

// WithStore attaches a durability backend to the live server: admissions
// are WAL-logged before acknowledgement and shards snapshot their state at
// epoch boundaries.  The caller keeps ownership (Close the store after the
// server).  Batch planning ignores it.
func WithStore(st Store) Option { return func(s *Settings) { s.Store = st } }

// WithDurability opens a file-backed durability store rooted at dir
// (created if absent) and hands its lifetime to the server — the one-knob
// spelling of WithStore for production deployments.  Batch planning
// ignores it.
func WithDurability(dir string) Option { return func(s *Settings) { s.SnapshotDir = dir } }

// WithSnapshotEpochs sets the durability snapshot cadence in epochs
// (default 1).  Batch planning ignores it.
func WithSnapshotEpochs(n int) Option { return func(s *Settings) { s.SnapshotEpochs = n } }

// WithRestore makes the live server rebuild its state from the store's
// latest snapshots and WAL tails before serving — the warm-restart flag.
// Batch planning ignores it.
func WithRestore(on bool) Option { return func(s *Settings) { s.Restore = on } }

// WithSync sets the durability barrier of each WAL group commit: SyncOS
// (the default) survives process kill, SyncFull also survives power loss
// — affordable because the whole group commit shares one fsync —
// SyncNone trades crash safety of acknowledged requests for raw
// throughput.  Batch planning ignores it.
func WithSync(m SyncMode) Option { return func(s *Settings) { s.SyncMode = m } }
