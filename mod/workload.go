package mod

import (
	"context"

	"repro/internal/multiobject"
	"repro/internal/sim"
)

// The multi-object layer: planning and simulating a whole catalog served
// by one delay-guaranteed server (the Section 5 extension).

// Object is one media object of a catalog.
type Object = multiobject.Object

// Catalog is the set of objects a server carries.
type Catalog = multiobject.Catalog

// CatalogPlan is the analytic delay-guaranteed plan for a catalog:
// per-object streams and peaks plus the server-wide peak.
type CatalogPlan = multiobject.Plan

// FitResult is the outcome of FitDelays.
type FitResult = multiobject.FitResult

// WorkloadConfig describes a simulated multi-object workload.
type WorkloadConfig = sim.WorkloadConfig

// WorkloadResult is the simulator's aggregate outcome for a workload.
type WorkloadResult = sim.WorkloadResult

// ZipfCatalog builds a catalog of k objects of the given length whose
// popularities follow a Zipf distribution with exponent s, all offered the
// same start-up delay.
func ZipfCatalog(k int, length, delay, s float64) Catalog {
	return multiobject.ZipfCatalog(k, length, delay, s)
}

// PlanCatalog computes the analytic delay-guaranteed plan for a catalog
// over the given horizon: every object runs the on-line algorithm with its
// own delay.
func PlanCatalog(cat Catalog, horizon float64) (*CatalogPlan, error) {
	return multiobject.Build(cat, horizon)
}

// FitDelays finds the smallest uniform delay scaling (>= 1, widening by
// `step` up to maxScale) for which the catalog's server-wide peak stays
// within maxChannels — the Section 5 "never decline a request" knob.  An
// unreachable budget fails with an error wrapping ErrCapacity.
func FitDelays(cat Catalog, horizon float64, maxChannels int, step, maxScale float64) (*FitResult, error) {
	return multiobject.FitDelays(cat, horizon, maxChannels, step, maxScale)
}

// PopularityAwareDelays returns a copy of the catalog with per-object
// delays assigned by popularity rank: popular objects keep baseDelay,
// unpopular ones degrade up to maxFactor times it.
func PopularityAwareDelays(cat Catalog, baseDelay, maxFactor float64) Catalog {
	return multiobject.PopularityAwareDelays(cat, baseDelay, maxFactor)
}

// RunWorkload simulates every object of a catalog on the indexed engine
// under the configured arrival mix and merges the per-object channel usage
// into a server-wide real-time profile.  Cancelling ctx aborts between
// objects with an error wrapping ctx.Err().
func RunWorkload(ctx context.Context, cfg WorkloadConfig) (*WorkloadResult, error) {
	return sim.RunWorkload(ctx, cfg)
}
