package mod

import "repro/internal/arrivals"

// Trace generators.  All return strictly increasing arrival times in
// [0, span), directly usable as Instance.Arrivals.  The generators are
// deterministic in their seed: a fixed seed replays the identical trace,
// which is how every published number in this repository stays
// reproducible from the command line.

// Poisson returns a Poisson arrival trace with the given mean
// inter-arrival time over [0, span).
func Poisson(meanInterArrival, span float64, seed int64) []float64 {
	return arrivals.Poisson(meanInterArrival, span, seed)
}

// Constant returns a deterministic constant-rate trace: one arrival every
// meanInterArrival time units over [0, span).
func Constant(meanInterArrival, span float64) []float64 {
	return arrivals.Constant(meanInterArrival, span)
}

// Ramp returns a nonhomogeneous Poisson trace whose rate ramps linearly
// from 1/startMean to 1/endMean over [0, span) — a prime-time evening.
func Ramp(startMean, endMean, span float64, seed int64) []float64 {
	return arrivals.Ramp(startMean, endMean, span, seed)
}

// MergeTraces merges two sorted traces into one sorted trace.
func MergeTraces(a, b []float64) []float64 {
	return arrivals.Merge(arrivals.Trace(a), arrivals.Trace(b))
}

// BatchTimes batches a trace into service slots of the given length: each
// slot with at least one arrival contributes one service time at the slot
// boundary.  This is the trace the batched planners effectively serve.
func BatchTimes(trace []float64, slot float64) []float64 {
	return arrivals.Trace(trace).BatchTimes(slot)
}
