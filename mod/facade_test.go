package mod_test

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestFacadeOnlyImports enforces the API boundary: no cmd/ or examples/
// file may import a repro package outside the facade allowlist.  The test
// is a thin wrapper over the facadeonly analyzer (internal/analysis) —
// the same code path `go vet -vettool=modlint` runs in CI — so the test
// and the vettool can never disagree about the allowlist or what counts
// as an import (renamed, dot, and blank imports included).
func TestFacadeOnlyImports(t *testing.T) {
	for _, dir := range []string{"../cmd", "../examples"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() || strings.HasPrefix(d.Name(), ".") || d.Name() == "testdata" {
				return nil
			}
			rel, err := filepath.Rel("..", path)
			if err != nil {
				return err
			}
			fset := token.NewFileSet()
			pkg, err := analysis.LoadDir(fset, path, "repro/"+filepath.ToSlash(rel))
			if err != nil {
				return err
			}
			if pkg == nil {
				return nil // no Go files at this level
			}
			for _, diag := range analysis.Run(fset, pkg, []*analysis.Analyzer{analysis.Facadeonly}) {
				t.Errorf("%s", diag)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}
