package mod_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// facadeAllowed is the import allowlist for cmd/ binaries and examples/
// programs: the public facade, plus the analytics/presentation layers
// (experiment tables and text charts), which are consumers of the facade
// themselves rather than algorithm constructors.  Everything algorithmic —
// policy, online, offline, dyadic, batching, hybrid, core, mergetree,
// schedule, sim, multiobject, arrivals, serve — must be reached through
// repro/mod.
var facadeAllowed = map[string]bool{
	"repro/mod":                  true,
	"repro/internal/experiments": true,
	"repro/internal/textplot":    true,
}

// TestFacadeOnlyImports enforces the API boundary: no cmd/ or examples/
// file may import a repro package outside the allowlist.  This is the
// "compiles against the facade only" CI check.
func TestFacadeOnlyImports(t *testing.T) {
	for _, dir := range []string{"../cmd", "../examples"} {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if strings.HasPrefix(p, "repro/") && !facadeAllowed[p] {
					t.Errorf("%s imports %q; cmd/ and examples/ must reach algorithms through repro/mod only", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
}
