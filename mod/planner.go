package mod

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/arrivals"
)

// Instance is one planning problem: the client arrival times for a single
// media object and the horizon to plan over.
type Instance struct {
	// Arrivals are the client request times, strictly increasing, in the
	// catalog's time units.  May be empty: the oblivious planners (online,
	// batching at zero load, ...) have well-defined costs for an empty
	// trace.
	Arrivals []float64
	// Horizon is the planning horizon in the same units.  WithHorizon
	// overrides it; one of the two must be positive.
	Horizon float64
}

// Plan is a planner's answer.
type Plan struct {
	// Planner is the registry name of the planner that produced the plan.
	Planner string
	// Cost is the total server bandwidth over the horizon, in complete
	// media streams (the repository-wide comparison unit).
	Cost float64
	// Arrivals is the number of arrival times in the instance.
	Arrivals int
	// Horizon is the resolved planning horizon.
	Horizon float64
	// MediaLength is the media length the plan was computed for.
	MediaLength float64
	// AverageChannels is the time-average number of busy channels implied
	// by Cost (Cost * MediaLength / Horizon).
	AverageChannels float64
	// Aux carries planner-specific extras, e.g. the hybrid planner's
	// "loaded_fraction" and the costs of its two pure modes.  Nil for
	// planners with nothing extra to report.
	Aux map[string]float64
}

// Planner is one serving strategy behind a uniform planning API.
// Implementations must honor ctx on long-running paths and are safe for
// concurrent use.
type Planner interface {
	// Name returns the planner's registry name.
	Name() string
	// Plan computes the plan for the instance.  Per-call options are
	// applied on top of the options the planner was constructed with.
	Plan(ctx context.Context, inst Instance, opts ...Option) (Plan, error)
}

// runFunc is a built-in planner's computation: cost in media streams plus
// optional auxiliary metrics, for a validated (trace, horizon, settings).
type runFunc func(ctx context.Context, trace arrivals.Trace, horizon float64, st Settings) (float64, map[string]float64, error)

// planner is the built-in Planner implementation: a named runFunc plus the
// base options captured at New time.
type planner struct {
	name string
	base []Option
	run  runFunc
}

func (p *planner) Name() string { return p.name }

func (p *planner) Plan(ctx context.Context, inst Instance, opts ...Option) (Plan, error) {
	st := ResolveSettings(append(append([]Option{}, p.base...), opts...)...)
	trace, horizon, err := resolveInstance(inst, st)
	if err != nil {
		return Plan{}, fmt.Errorf("mod: planner %q: %w", p.name, err)
	}
	if err := ctx.Err(); err != nil {
		return Plan{}, wrapErr(p.name, err)
	}
	cost, aux, err := p.run(ctx, trace, horizon, st)
	if err != nil {
		return Plan{}, wrapErr(p.name, err)
	}
	plan := Plan{
		Planner:         p.name,
		Cost:            cost,
		Arrivals:        len(inst.Arrivals),
		Horizon:         horizon,
		MediaLength:     st.MediaLength,
		AverageChannels: cost * st.MediaLength / horizon,
		Aux:             aux,
	}
	if st.ChannelCap > 0 && plan.AverageChannels > float64(st.ChannelCap) {
		return Plan{}, fmt.Errorf("mod: planner %q: %w: plan needs %.2f average channels, cap is %d",
			p.name, ErrCapacity, plan.AverageChannels, st.ChannelCap)
	}
	return plan, nil
}

// resolveInstance validates the trace and resolves the horizon (an
// explicit WithHorizon wins over the instance's).
func resolveInstance(inst Instance, st Settings) (arrivals.Trace, float64, error) {
	horizon := inst.Horizon
	if st.Horizon > 0 {
		horizon = st.Horizon
	}
	if horizon <= 0 {
		return nil, 0, fmt.Errorf("%w: horizon must be positive (got %g; set Instance.Horizon or WithHorizon)",
			ErrBadInstance, horizon)
	}
	trace := arrivals.Trace(inst.Arrivals)
	if err := trace.Validate(); err != nil {
		return nil, 0, fmt.Errorf("%w: %w", ErrBadInstance, err)
	}
	return trace, horizon, nil
}

// wrapErr attributes an internal error to a planner and folds context
// cancellation into ErrCanceled while keeping the original chain intact.
func wrapErr(name string, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("mod: planner %q: %w: %w", name, ErrCanceled, err)
	}
	return fmt.Errorf("mod: planner %q: %w", name, err)
}
