package mod_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
	"repro/internal/hybrid"
	"repro/internal/policy"
	"repro/mod"
)

// TestPlannersMatchPolicyLayer pins the facade to the policy layer: for
// every built-in planner, Plan must return exactly the cost the underlying
// policy computes (bit-identical — the facade adds no arithmetic).
func TestPlannersMatchPolicyLayer(t *testing.T) {
	ctx := context.Background()
	trace := arrivals.Poisson(0.004, 10, 42)
	inst := mod.Instance{Arrivals: trace, Horizon: 10}
	const delay = 0.01

	pols := map[string]policy.Policy{
		"online":          policy.DelayGuaranteed(1, delay),
		"offline":         policy.OfflineOptimal(1, 0),
		"offline-batched": policy.OfflineOptimalBatched(1, delay, 0),
		"dyadic":          policy.ImmediateDyadic(1, dyadic.GoldenPoisson()),
		"dyadic-batched":  policy.BatchedDyadic(1, delay, dyadic.GoldenPoisson()),
		"batching":        policy.PureBatching(1, delay),
		"hybrid":          policy.Hybrid(hybrid.DefaultConfig(1, delay)),
		"unicast":         policy.Unicast(),
	}
	for name, pol := range pols {
		want, err := pol.Serve(ctx, trace, 10)
		if err != nil {
			t.Fatalf("policy %s: %v", name, err)
		}
		plan, err := mod.MustNew(name, mod.WithDelay(delay)).Plan(ctx, inst)
		if err != nil {
			t.Fatalf("planner %s: %v", name, err)
		}
		if plan.Cost != want {
			t.Errorf("planner %s cost = %v, want the policy layer's %v (must be bit-identical)", name, plan.Cost, want)
		}
		if plan.Planner != name || plan.Horizon != 10 || plan.Arrivals != len(trace) {
			t.Errorf("planner %s plan metadata = %+v", name, plan)
		}
	}
}

// TestHybridAux checks the hybrid planner reports its mode timeline, which
// the policy layer cannot.
func TestHybridAux(t *testing.T) {
	trace := arrivals.Poisson(0.05, 10, 7)
	plan, err := mod.MustNew("hybrid").Plan(context.Background(), mod.Instance{Arrivals: trace, Horizon: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"loaded_fraction", "pure_delay_guaranteed", "pure_dyadic"} {
		if _, ok := plan.Aux[key]; !ok {
			t.Errorf("hybrid Aux missing %q: %v", key, plan.Aux)
		}
	}
	if f := plan.Aux["loaded_fraction"]; f < 0 || f > 1 {
		t.Errorf("loaded_fraction = %v, want [0,1]", f)
	}
}

// TestOptionPrecedence: Plan-time options override New-time options.
func TestOptionPrecedence(t *testing.T) {
	ctx := context.Background()
	inst := mod.Instance{Horizon: 10}
	p := mod.MustNew("online", mod.WithDelay(0.01))
	coarse, err := p.Plan(ctx, inst, mod.WithDelay(0.1))
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Plan(ctx, inst)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Cost >= base.Cost {
		t.Errorf("10%% delay cost %v should be under 1%% delay cost %v", coarse.Cost, base.Cost)
	}
	// WithHorizon overrides the instance horizon.
	doubled, err := p.Plan(ctx, inst, mod.WithHorizon(20))
	if err != nil {
		t.Fatal(err)
	}
	if doubled.Horizon != 20 || doubled.Cost <= base.Cost {
		t.Errorf("WithHorizon(20): plan %+v, want doubled horizon and higher cost than %v", doubled, base.Cost)
	}
}

// TestSentinelErrorsThroughFacade: every documented sentinel classifies
// failures through the full stack with errors.Is.
func TestSentinelErrorsThroughFacade(t *testing.T) {
	ctx := context.Background()

	if _, err := mod.MustNew("online").Plan(ctx, mod.Instance{Arrivals: []float64{3, 1}, Horizon: 10}); !errors.Is(err, mod.ErrBadInstance) {
		t.Errorf("unsorted trace error %v, want ErrBadInstance", err)
	}
	if _, err := mod.MustNew("online").Plan(ctx, mod.Instance{}); !errors.Is(err, mod.ErrBadInstance) {
		t.Errorf("missing horizon error %v, want ErrBadInstance", err)
	}
	if _, err := mod.MustNew("offline", mod.WithMaxArrivals(2)).Plan(ctx,
		mod.Instance{Arrivals: []float64{0.1, 0.2, 0.3}, Horizon: 1}); !errors.Is(err, mod.ErrInstanceTooLarge) {
		t.Errorf("arrival-cap error %v, want ErrInstanceTooLarge", err)
	}
	if _, err := mod.MustNew("offline", mod.WithMemoryBudget(1)).Plan(ctx,
		mod.Instance{Arrivals: mod.Constant(0.01, 5), Horizon: 5}); !errors.Is(err, mod.ErrInstanceTooLarge) {
		t.Errorf("memory-budget error %v, want ErrInstanceTooLarge", err)
	}
	// Unicast on a dense trace: ~2500 streams over 10 time units = ~250
	// average channels, far over a cap of 3.
	if _, err := mod.MustNew("unicast", mod.WithChannelCap(3)).Plan(ctx,
		mod.Instance{Arrivals: mod.Constant(0.004, 10), Horizon: 10}); !errors.Is(err, mod.ErrCapacity) {
		t.Errorf("channel-cap error %v, want ErrCapacity", err)
	}
	// FitDelays budget failures classify the same way.
	if _, err := mod.FitDelays(mod.ZipfCatalog(5, 1, 0.01, 1), 10, 1, 2, 2); !errors.Is(err, mod.ErrCapacity) {
		t.Errorf("FitDelays error %v, want ErrCapacity", err)
	}
}

// TestPlanCancellation: a canceled context surfaces as ErrCanceled (and
// context.Canceled) through the facade, both pre-canceled and mid-DP.
func TestPlanCancellation(t *testing.T) {
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mod.MustNew("online").Plan(pre, mod.Instance{Horizon: 10}); !errors.Is(err, mod.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled Plan error %v, want ErrCanceled wrapping context.Canceled", err)
	}

	// Mid-flight: the offline DP on a 40k-arrival trace runs far longer
	// than the cancellation latency.
	ctx, cancelMid := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := mod.MustNew("offline", mod.WithMaxArrivals(100000)).Plan(ctx,
			mod.Instance{Arrivals: mod.Constant(100.0/40000, 100), Horizon: 100})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancelMid()
	select {
	case err := <-errc:
		if !errors.Is(err, mod.ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Errorf("mid-DP Plan error %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Plan did not return after cancel")
	}
}

// TestCompareMatchesPlan: Compare's costs are keyed by registry name and
// identical to per-planner Plan calls; cancellation aborts it.
func TestCompareMatchesPlan(t *testing.T) {
	ctx := context.Background()
	trace := arrivals.Poisson(0.01, 5, 3)
	inst := mod.Instance{Arrivals: trace, Horizon: 5}
	opts := []mod.Option{mod.WithDelay(0.01), mod.WithPoisson(true)}

	costs, err := mod.Compare(ctx, mod.StandardNames(), inst, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(mod.StandardNames()) {
		t.Fatalf("Compare returned %d costs for %d names", len(costs), len(mod.StandardNames()))
	}
	for _, name := range mod.StandardNames() {
		plan, err := mod.MustNew(name, opts...).Plan(ctx, inst)
		if err != nil {
			t.Fatalf("planner %s: %v", name, err)
		}
		if costs[name] != plan.Cost {
			t.Errorf("Compare[%s] = %v, Plan = %v (must be bit-identical)", name, costs[name], plan.Cost)
		}
	}

	if _, err := mod.Compare(ctx, []string{"online", "nope"}, inst); !errors.Is(err, mod.ErrUnknownPlanner) {
		t.Errorf("Compare with unknown name error %v, want ErrUnknownPlanner", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := mod.Compare(canceled, mod.StandardNames(), inst); !errors.Is(err, mod.ErrCanceled) {
		t.Errorf("canceled Compare error %v, want ErrCanceled", err)
	}
	// Compare honors WithChannelCap exactly like Plan (unicast on this
	// trace needs far more than 1 average channel).
	if _, err := mod.Compare(ctx, []string{"unicast"}, inst, mod.WithChannelCap(1)); !errors.Is(err, mod.ErrCapacity) {
		t.Errorf("capped Compare error %v, want ErrCapacity", err)
	}
}

// TestWorkloadAndServeFacade smoke-tests the catalog, workload, and live
// serving wrappers end to end through the facade only.
func TestWorkloadAndServeFacade(t *testing.T) {
	cat := mod.ZipfCatalog(3, 1.0, 0.05, 1.0)
	plan, err := mod.PlanCatalog(cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Peak <= 0 || len(plan.Objects) != 3 {
		t.Fatalf("catalog plan = %+v", plan)
	}
	res, err := mod.RunWorkload(context.Background(), mod.WorkloadConfig{
		Catalog: cat, Horizon: 5, MeanInterArrival: 0.05, Poisson: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 {
		t.Fatalf("workload stalls = %d", res.Stalls)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mod.RunWorkload(canceled, mod.WorkloadConfig{
		Catalog: cat, Horizon: 5, MeanInterArrival: 0.05,
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled RunWorkload error %v, want context.Canceled", err)
	}

	srv, err := mod.NewServer(mod.ServeConfig{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{Horizon: 3, MeanInterArrival: 0.1, Kind: mod.PoissonArrivals, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mod.RunDriver(context.Background(), srv, reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted+rep.Degraded+rep.Rejected != len(reqs) {
		t.Fatalf("driver report %+v does not cover %d requests", rep, len(reqs))
	}
	if _, err := mod.GenerateRequests(cat, mod.LoadConfig{}); !errors.Is(err, mod.ErrBadConfig) {
		t.Errorf("empty LoadConfig error %v, want ErrBadConfig", err)
	}
}

// TestSlottedFacade smoke-tests the slotted wrappers: build, schedule, and
// simulate a plan through the facade, and check the closed forms agree
// with the forest.
func TestSlottedFacade(t *testing.T) {
	const L, n = 15, 8
	forest := mod.OfflineForest(L, n)
	if got, want := forest.FullCost(), mod.OfflineCost(L, n); got != want {
		t.Fatalf("forest cost %d != closed form %d", got, want)
	}
	fs, err := mod.BuildSchedule(forest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mod.Simulate(fs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalls != 0 || res.TotalBandwidth != mod.OfflineCost(L, n) {
		t.Fatalf("sim result %+v, want stall-free with bandwidth %d", res, mod.OfflineCost(L, n))
	}
	online := mod.OnlineForest(L, n)
	if onres, err := mod.SimulateForest(online); err != nil || onres.Stalls != 0 {
		t.Fatalf("online forest sim: %v, %+v", err, onres)
	}
	if mod.OnlineCost(L, n) < float64(mod.OfflineCost(L, n))/L {
		t.Errorf("online cost %v below the offline optimum %v", mod.OnlineCost(L, n), float64(mod.OfflineCost(L, n))/L)
	}
	trees, cost := mod.EnumerateOptimalTrees(0, 5)
	if len(trees) == 0 || cost != mod.SlottedMergeCost(5) {
		t.Errorf("EnumerateOptimalTrees(0,5) = %d trees, cost %d (want M(5)=%d)", len(trees), cost, mod.SlottedMergeCost(5))
	}
}
