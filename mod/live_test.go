package mod_test

// Facade tests for the live strategy surface: the capability list is a
// subset of the planner registry, NewLiveServer honors WithStrategy /
// WithEpoch / per-object routing, and a drained live run through the
// facade reproduces the facade's own batch Plan cost.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/mod"
)

func TestLivePlannersSubsetOfRegistry(t *testing.T) {
	livePlanners := mod.LivePlanners()
	if len(livePlanners) == 0 {
		t.Fatal("no live-capable planners")
	}
	registered := map[string]bool{}
	for _, name := range mod.Planners() {
		registered[name] = true
	}
	for _, name := range livePlanners {
		if !registered[name] {
			t.Errorf("live planner %q is not in the planner registry", name)
		}
	}
	// Every builtin is currently live-capable; pin the list so a planner
	// added without a live adapter is a conscious decision.
	want := []string{"batching", "dyadic", "dyadic-batched", "hybrid", "offline", "offline-batched", "online", "unicast"}
	if !reflect.DeepEqual(livePlanners, want) {
		t.Errorf("LivePlanners() = %v, want %v", livePlanners, want)
	}
}

func TestNewLiveServerStrategyRouting(t *testing.T) {
	cat := mod.ZipfCatalog(3, 1.0, 0.125, 1.0)
	cat[2].Strategy = "batching" // per-object override
	srv, err := mod.NewLiveServer(cat, mod.WithStrategy("dyadic-batched"), mod.WithEpoch(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon: 4, MeanInterArrival: 0.05, Kind: mod.PoissonArrivals, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mod.RunDriver(context.Background(), srv, reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]mod.ObjectStats{}
	for _, o := range rep.Drain.Objects {
		byName[o.Name] = o
	}
	if got := byName["object-01"].Strategy; got != "dyadic-batched" {
		t.Errorf("object-01 strategy = %q, want the WithStrategy default", got)
	}
	if got := byName["object-03"].Strategy; got != "batching" {
		t.Errorf("object-03 strategy = %q, want the per-object override", got)
	}
	if st := rep.Drain.Stats.Strategies; st["dyadic-batched"] != 2 || st["batching"] != 1 {
		t.Errorf("stats strategy counts = %v", st)
	}

	// The drained per-object cost equals the facade's batch Plan on the
	// object's own trace, bit for bit (whole-horizon epoch).
	for _, o := range rep.Drain.Objects {
		var times []float64
		for _, r := range reqs {
			if r.Object == o.Name {
				times = append(times, r.T)
			}
		}
		plan, err := mod.MustNew(o.Strategy, mod.WithDelay(0.125)).Plan(context.Background(),
			mod.Instance{Arrivals: times, Horizon: 4})
		if err != nil {
			t.Fatalf("%s: %v", o.Name, err)
		}
		if plan.Cost != o.Cost {
			t.Errorf("%s: live cost %g != batch Plan cost %g", o.Name, o.Cost, plan.Cost)
		}
	}
}

// TestWithWarmReplanningFacade pins the facade option: warm (the default)
// and cold replanning drain to identical per-object results, the warm run
// reports warm replans in ObjectStats.Replan, and the cold run reports
// none.
func TestWithWarmReplanningFacade(t *testing.T) {
	cat := mod.ZipfCatalog(3, 1.0, 0.125, 1.0)
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon: 4, MeanInterArrival: 0.05, Kind: mod.PoissonArrivals, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(warm bool) []mod.ObjectStats {
		t.Helper()
		srv, err := mod.NewLiveServer(cat, mod.WithStrategy("offline-batched"),
			mod.WithEpoch(8), mod.WithWarmReplanning(warm))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		rep, err := mod.RunDriver(context.Background(), srv, reqs, 4)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Drain.Objects
	}
	warm, cold := run(true), run(false)
	for i := range warm {
		w, c := warm[i], cold[i]
		if w.Replan.Replans == 0 || w.Replan.WarmReplans != w.Replan.Replans {
			t.Errorf("%s: warm run Replan = %+v, want every replan warm", w.Name, w.Replan)
		}
		if c.Replan.WarmReplans != 0 {
			t.Errorf("%s: cold run reports %d warm replans", c.Name, c.Replan.WarmReplans)
		}
		w.Replan, c.Replan = mod.ReplanStats{}, mod.ReplanStats{}
		if !reflect.DeepEqual(w, c) {
			t.Errorf("%s diverges between warm and cold replanning:\nwarm %+v\ncold %+v", w.Name, w, c)
		}
	}
}

func TestNewLiveServerUnknownStrategy(t *testing.T) {
	cat := mod.ZipfCatalog(2, 1.0, 0.1, 1.0)
	if _, err := mod.NewLiveServer(cat, mod.WithStrategy("no-such-planner")); !errors.Is(err, mod.ErrBadConfig) {
		t.Fatalf("unknown strategy error = %v, want ErrBadConfig", err)
	}
	cat[0].Strategy = "also-missing"
	if _, err := mod.NewLiveServer(cat); !errors.Is(err, mod.ErrBadConfig) {
		t.Fatalf("unknown per-object strategy error = %v, want ErrBadConfig", err)
	}
}
