package mod_test

import (
	"errors"
	"testing"

	"repro/mod"
)

// TestFacadeDurableWarmRestart drives the whole durability surface through
// the facade: a file store opened by WithDurability, a forced Snapshot, a
// restart with WithRestore, and ticket-ID continuity across the two lives.
func TestFacadeDurableWarmRestart(t *testing.T) {
	dir := t.TempDir()
	cat := mod.ZipfCatalog(4, 1.0, 0.05, 1.0)
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon: 3, MeanInterArrival: 0.1, Kind: mod.PoissonArrivals, Seed: 3,
	})
	if err != nil {
		t.Fatalf("GenerateRequests: %v", err)
	}
	cut := len(reqs) / 2

	s1, err := mod.NewLiveServer(cat, mod.WithDurability(dir), mod.WithWorkers(2))
	if err != nil {
		t.Fatalf("NewLiveServer: %v", err)
	}
	seen := make(map[int64]bool)
	for _, req := range reqs[:cut] {
		tk, err := s1.Submit(req)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if tk.ID == 0 || seen[tk.ID] {
			t.Fatalf("bad or duplicate ticket ID %d", tk.ID)
		}
		seen[tk.ID] = true
	}
	if err := s1.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s1.Close()

	s2, err := mod.NewLiveServer(cat, mod.WithDurability(dir), mod.WithWorkers(2), mod.WithRestore(true))
	if err != nil {
		t.Fatalf("NewLiveServer(restore): %v", err)
	}
	defer s2.Close()
	for _, req := range reqs[cut:] {
		tk, err := s2.Submit(req)
		if err != nil {
			t.Fatalf("Submit after restore: %v", err)
		}
		if tk.ID == 0 || seen[tk.ID] {
			t.Fatalf("ticket ID %d reissued after warm restart", tk.ID)
		}
		seen[tk.ID] = true
	}
	st, err := s2.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if got := st.Admitted + st.Degraded + st.Rejected; got != int64(len(reqs)) {
		t.Fatalf("restored server accounts %d requests, want %d", got, len(reqs))
	}
}

// TestFacadeMemStoreAndCorruption covers WithStore with the in-memory
// backend and the re-exported corruption sentinel.
func TestFacadeMemStoreAndCorruption(t *testing.T) {
	cat := mod.ZipfCatalog(3, 1.0, 0.05, 1.0)
	mem := mod.NewMemStore()
	s, err := mod.NewLiveServer(cat, mod.WithStore(mem))
	if err != nil {
		t.Fatalf("NewLiveServer: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Submit(mod.Request{Object: cat[0].Name, T: float64(i) * 0.1}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	mem.Corrupt(0, 9)
	if _, err := mod.NewLiveServer(cat, mod.WithStore(mem), mod.WithRestore(true)); !errors.Is(err, mod.ErrCorruptSnapshot) {
		t.Fatalf("restore from corrupted store = %v, want ErrCorruptSnapshot", err)
	}
}
