package mod_test

import (
	"context"
	"fmt"
	"sort"

	"repro/mod"
)

// ExampleNew plans one evening of video-on-demand with the paper's on-line
// delay-guaranteed algorithm: a deterministic constant-rate trace (one
// request every 0.4% of the movie length) over 10 movie lengths, with a 1%
// guaranteed start-up delay.
func ExampleNew() {
	p, err := mod.New("online", mod.WithDelay(0.01))
	if err != nil {
		panic(err)
	}
	plan, err := p.Plan(context.Background(), mod.Instance{
		Arrivals: mod.Constant(0.004, 10),
		Horizon:  10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f media streams (%.1f average channels)\n", plan.Planner, plan.Cost, plan.AverageChannels)
	// Output:
	// online: 83 media streams (8.3 average channels)
}

// ExampleCompare replays the same trace against the paper's whole
// comparison set at once.
func ExampleCompare() {
	costs, err := mod.Compare(context.Background(),
		mod.StandardNames(),
		mod.Instance{Arrivals: mod.Constant(0.004, 10), Horizon: 10},
		mod.WithDelay(0.01), mod.WithPoisson(false),
	)
	if err != nil {
		panic(err)
	}
	names := make([]string, 0, len(costs))
	for name := range costs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s: %.0f streams\n", name, costs[name])
	}
	// Output:
	// batching: 1000 streams
	// dyadic: 102 streams
	// dyadic-batched: 84 streams
	// hybrid: 83 streams
	// online: 83 streams
	// unicast: 2500 streams
}

// ExamplePlanner_plan bounds an off-line optimal plan with per-call
// options: the DP gets a worker pool and a memory budget, and the plan is
// rejected if it would exceed a 10-channel cap.
func ExamplePlanner_plan() {
	p, err := mod.New("offline", mod.WithWorkers(2), mod.WithMemoryBudget(64<<20))
	if err != nil {
		panic(err)
	}
	plan, err := p.Plan(context.Background(), mod.Instance{
		Arrivals: mod.Constant(0.01, 4),
		Horizon:  4,
	}, mod.WithChannelCap(10))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.2f media streams for %d arrivals\n", plan.Planner, plan.Cost, plan.Arrivals)
	// Output:
	// offline: 33.04 media streams for 400 arrivals
}
