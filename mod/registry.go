package mod

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a Planner configured with the given base options.  It is
// called once per New; the returned Planner may be used concurrently.
type Factory func(opts ...Option) (Planner, error)

var registry = struct {
	sync.RWMutex
	m map[string]Factory
}{m: map[string]Factory{}}

// Register adds a planner factory under a name.  It panics on an empty
// name, a nil factory, or a duplicate registration — planner names are
// part of the public API surface (a golden test pins the built-in list),
// so collisions are programming errors, not runtime conditions.
func Register(name string, f Factory) {
	if name == "" {
		panic("mod: Register with empty planner name")
	}
	if f == nil {
		panic(fmt.Sprintf("mod: Register(%q) with nil factory", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		panic(fmt.Sprintf("mod: planner %q registered twice", name))
	}
	registry.m[name] = f
}

// New builds the named planner with the given base options.  Unknown names
// fail with an error wrapping ErrUnknownPlanner (the message lists the
// registered names).
func New(name string, opts ...Option) (Planner, error) {
	registry.RLock()
	f, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownPlanner, name, Planners())
	}
	return f(opts...)
}

// MustNew is New for registration-time-known names; it panics on error.
func MustNew(name string, opts ...Option) Planner {
	p, err := New(name, opts...)
	if err != nil {
		panic(err)
	}
	return p
}

// Planners returns the sorted names of every registered planner.
func Planners() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
