// Package mod is the public facade of the Media-on-Demand stream-merging
// system: one stable, composable API over every algorithm family in the
// repository — the paper's on-line delay-guaranteed algorithm, the exact
// off-line optimum (immediate and batched service), the dyadic baselines,
// pure batching, the Section 5 hybrid, and the unicast strawman — plus the
// trace generators, the slotted broadcast planner, the multi-object
// catalog planner, the discrete-event simulator, and the live admission
// server.  Everything under internal/ is reachable through this package;
// cmd/ binaries and examples/ compile against it exclusively (a CI test
// pins that).
//
// # Planners
//
// The core abstraction is the Planner: give it a problem Instance (client
// arrival times and a horizon), get back a Plan (the total server
// bandwidth in complete media streams, plus planner-specific detail).
// Planners are obtained from a string-keyed registry:
//
//	p, err := mod.New("online", mod.WithDelay(0.01))
//	plan, err := p.Plan(ctx, mod.Instance{Arrivals: trace, Horizon: 100})
//
// The built-in planner names are stable (a golden-list test pins them):
//
//	online           the paper's delay-guaranteed on-line algorithm
//	offline          exact off-line optimum, immediate service (interval DP)
//	offline-batched  exact off-line optimum with batched (delayed) service
//	dyadic           immediate-service dyadic stream merging
//	dyadic-batched   batched dyadic stream merging
//	batching         merging-free batching (one full stream per busy slot)
//	hybrid           Section 5 hybrid (delay-guaranteed when loaded, dyadic when idle)
//	unicast          no sharing: a private full stream per client
//
// Third parties can Register additional planners under new names.
//
// Behavior is configured with functional options (WithDelay, WithWorkers,
// WithChannelCap, WithMemoryBudget, WithHorizon, ...), applied at New time
// and overridable per Plan call.  Every Plan takes a context.Context;
// long-running planners (the off-line DP can run for seconds at large n)
// abort within one DP work unit of the context being done.
//
// # Errors
//
// Failures wrap stable sentinel errors, testable with errors.Is through
// every layer: ErrUnknownPlanner, ErrBadInstance, ErrInstanceTooLarge,
// ErrCapacity, and ErrCanceled.
//
// # Beyond planners
//
// The facade also surfaces, as thin wrappers and type aliases over the
// internal packages:
//
//   - trace generation (Poisson, Constant, Ramp, MergeTraces),
//   - the slotted broadcast planner and simulator (OnlineForest,
//     OfflineForest, BuildSchedule, Simulate, ...),
//   - multi-object catalog planning (ZipfCatalog, PlanCatalog, FitDelays,
//     PopularityAwareDelays) and the workload simulator (RunWorkload),
//   - the live sharded admission server and its versioned /v1 HTTP API
//     (NewServer, NewLiveServer, ListenAndServe, GenerateRequests,
//     RunDriver, ...).  Every registered planner can serve live traffic:
//     LivePlanners lists the capability set, WithStrategy/WithEpoch (or
//     per-object Object.Strategy entries) route catalog objects onto
//     planner families, and a drained live run over one whole-horizon
//     epoch reproduces the batch Plan cost bit for bit.  Epoch closes
//     warm-start by default — the off-line families resume their banded
//     DP tables (offline.Tables.Extend) across the shared arrival prefix
//     instead of recomputing them — with WithWarmReplanning(false) as
//     the cold escape hatch and ObjectStats.Replan reporting the reuse
//     accounting; warm and cold replanning are bit-identical.
package mod
