package mod

import (
	"errors"

	"repro/internal/multiobject"
	"repro/internal/policy"
	"repro/internal/serve"
	"repro/internal/store"
)

// Sentinel errors of the facade.  Wherever possible they are the same
// values the internal layers wrap, so errors.Is classifies a failure
// identically whether it crossed the facade or was produced by an internal
// package directly.
var (
	// ErrUnknownPlanner is returned by New (and Compare) for a name with no
	// registered planner.
	ErrUnknownPlanner = errors.New("mod: unknown planner")

	// ErrBadInstance marks invalid problem instances: a non-positive
	// horizon, an unsorted or non-finite arrival trace, a delay exceeding
	// the media length.
	ErrBadInstance = policy.ErrBadInstance

	// ErrInstanceTooLarge marks instances the exact off-line DP refuses up
	// front: more arrivals than the configured cap (WithMaxArrivals) or DP
	// tables over the memory budget (WithMemoryBudget).
	ErrInstanceTooLarge = policy.ErrInstanceTooLarge

	// ErrCapacity marks channel-budget failures: a Plan whose bandwidth
	// exceeds WithChannelCap, or a FitDelays search that cannot meet its
	// budget even at the maximum delay scale.
	ErrCapacity = multiobject.ErrCapacity

	// ErrCanceled wraps context cancellation (or deadline expiry) observed
	// while planning; the original ctx.Err() stays in the chain, so both
	// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
	// hold.
	ErrCanceled = errors.New("mod: planning canceled")

	// ErrBadConfig marks invalid live-server or load-generator
	// configuration (re-exported from the serving layer).
	ErrBadConfig = serve.ErrBadConfig

	// ErrUnknownObject is returned by the live server for requests naming
	// no catalog object.
	ErrUnknownObject = serve.ErrUnknownObject

	// ErrServerClosed is returned by operations on a closed live server.
	ErrServerClosed = serve.ErrClosed

	// ErrPressure marks a live-server submit refused by queue-depth
	// backpressure (WithBackpressure); errors.As extracts the
	// *PressureError carrying the shard, depth, and suggested retry delay.
	ErrPressure = serve.ErrPressure

	// ErrCorruptSnapshot marks durable state the live server refuses to
	// restore from: a snapshot or WAL that fails its checksum, structure,
	// or configuration-fingerprint validation.  Restores fail loudly and
	// completely rather than partially applying suspect state.
	ErrCorruptSnapshot = store.ErrCorruptSnapshot
)
