package mod

import (
	"repro/internal/batching"
	"repro/internal/core"
	"repro/internal/mergetree"
	"repro/internal/online"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// The slotted layer: the paper's combinatorial objects for the case where
// clients arrive at slot boundaries (one slot = one guaranteed start-up
// delay).  These are aliases and thin wrappers so that callers can build,
// print, and simulate concrete broadcast plans through the facade alone.

// Forest is a merge forest: which slots start full streams and how the
// remaining slots' streams merge into them.
type Forest = mergetree.Forest

// Tree is one merge tree of a forest.
type Tree = mergetree.Tree

// Schedule is a concrete broadcast schedule compiled from a Forest: the
// per-stream transmission windows and the per-client receiving programs.
type Schedule = schedule.ForestSchedule

// ClientProgram is one client's receiving program.
type ClientProgram = schedule.Program

// SimResult is the discrete-event simulator's outcome for a Schedule.
type SimResult = sim.Result

// SlottedMergeCost returns M(n), the optimal merge cost of one tree over n
// consecutive slot arrivals (Eq. 6 of the paper).
func SlottedMergeCost(n int64) int64 { return core.MergeCost(n) }

// OfflineCost returns F(L, n), the optimal off-line full cost (in
// slot-units) of serving one arrival per slot over horizon n with media
// length L slots.
func OfflineCost(L, n int64) int64 { return core.FullCost(L, n) }

// OfflineStreamCount returns the number of full streams an optimal
// off-line plan uses.
func OfflineStreamCount(L, n int64) int64 { return core.OptimalStreamCount(L, n) }

// OnlineCost returns the on-line delay-guaranteed algorithm's total
// bandwidth in complete media streams for media length L slots over
// horizon n slots.
func OnlineCost(L, n int64) float64 { return online.NormalizedCost(L, n) }

// SlottedBatchingCost returns the merging-free batching cost (in
// slot-units) for the same setting: n full streams of length L.
func SlottedBatchingCost(L, n int64) int64 { return batching.DelayGuaranteedCost(L, n) }

// OfflineForest builds the optimal off-line merge forest for media length
// L slots over horizon n slots (Theorems 7, 10, 12).
func OfflineForest(L, n int64) *Forest { return core.OptimalForest(L, n) }

// OfflineForestBuffered is OfflineForest under a client buffer bound of B
// slots (Section 3.3).
func OfflineForestBuffered(L, B, n int64) *Forest { return core.OptimalForestBuffered(L, B, n) }

// OfflineForestAll is OfflineForest in the receive-all client model
// (Section 3.4).
func OfflineForestAll(L, n int64) *Forest { return core.OptimalForestAll(L, n) }

// OnlineForest builds the on-line delay-guaranteed algorithm's oblivious
// broadcast plan: the static F_h merge-tree template repeated over n slots.
func OnlineForest(L, n int64) *Forest { return online.NewServer(L).Forest(n) }

// OptimalTree returns an optimal merge tree over n slot arrivals.
func OptimalTree(n int64) *Tree { return core.OptimalTree(n) }

// OptimalTreeAll is OptimalTree in the receive-all model.
func OptimalTreeAll(n int64) *Tree { return core.OptimalTreeAll(n) }

// EnumerateOptimalTrees returns every optimal merge tree over n arrivals
// starting at slot `first`, with their common merge cost (small n only —
// the count grows like the Catalan numbers).
func EnumerateOptimalTrees(first int64, n int) ([]*Tree, int64) {
	return mergetree.EnumerateOptimal(first, n)
}

// NewForest returns an empty merge forest for media length L slots; add
// trees with its Add method.
func NewForest(L int64) *Forest { return mergetree.NewForest(L) }

// BuildSchedule compiles a merge forest into a concrete broadcast
// schedule with per-client receiving programs (Fig. 3).
func BuildSchedule(f *Forest) (*Schedule, error) { return schedule.Build(f) }

// Simulate executes a schedule slot by slot on the indexed discrete-event
// engine (workers <= 0 uses all CPUs) and reports bandwidth, peak, client
// buffer occupancy, and playback stalls.
func Simulate(fs *Schedule, workers int) (*SimResult, error) {
	return sim.RunScheduleWorkers(fs, workers)
}

// SimulateForest builds the schedule for a forest and simulates it in one
// step.
func SimulateForest(f *Forest) (*SimResult, error) { return sim.RunForest(f) }
