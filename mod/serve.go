package mod

import (
	"context"
	"io"
	"net/http"

	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/store"
)

// The live layer: the long-running, sharded Media-on-Demand admission
// server and its closed-loop load generator, re-exported so deployments
// wire everything through the facade.

// ServeConfig configures a live admission server (catalog, shards,
// channel cap, degradation policy, clock).
type ServeConfig = serve.Config

// Server is the live sharded admission server.
type Server = serve.Server

// Request is one client request for a catalog object.
type Request = serve.Request

// Ticket is the server's answer to a request.
type Ticket = serve.Ticket

// Decision is the admission outcome recorded on a Ticket.
type Decision = serve.Decision

// Admission outcomes.
const (
	Admitted = serve.Admitted
	Degraded = serve.Degraded
	Rejected = serve.Rejected
)

// ServerStats is a server-wide counter snapshot.
type ServerStats = serve.Stats

// ShardStats is the per-shard queue accounting inside ServerStats:
// instantaneous depth, capacity, lifetime high-water mark, dequeued
// total, and the configured backpressure threshold.
type ShardStats = serve.ShardStats

// PressureError reports a submit refused by queue-depth backpressure:
// which shard, the occupancy observed, and how long to wait before
// retrying (derived from the shard's drain rate).  It wraps ErrPressure.
type PressureError = serve.PressureError

// MetricsSnapshot is the full observability snapshot behind GET
// /v1/metrics: server stats plus the per-stage latency histograms.
type MetricsSnapshot = serve.MetricsSnapshot

// StageSet is one strategy's stage-latency decomposition: queue wait,
// planning, epoch replanning, and HTTP respond histograms.
type StageSet = serve.StageSet

// LatencyHistogram is the fixed-bucket log-scale nanosecond histogram the
// live layer records stage latencies into (an alias of the stats
// package's LogHistogram).
type LatencyHistogram = stats.LogHistogram

// ObjectStats is the live accounting snapshot for one object.
type ObjectStats = serve.ObjectStats

// ReplanStats is the epoch-replanning accounting inside ObjectStats: how
// many epoch closes replanned, how many of those warm-started from the
// previous state, and the DP-cell reuse and latency totals behind them.
type ReplanStats = serve.ReplanStats

// DrainResult is the final accounting of a drained server.
type DrainResult = serve.DrainResult

// LoadConfig describes a deterministic request load.
type LoadConfig = serve.LoadConfig

// ArrivalKind selects the load generator's arrival process.
type ArrivalKind = serve.ArrivalKind

// Load-generator arrival processes.
const (
	ConstantArrivals = serve.ConstantArrivals
	PoissonArrivals  = serve.PoissonArrivals
	RampArrivals     = serve.RampArrivals
	FlashArrivals    = serve.FlashArrivals
)

// LoadReport is the closed-loop load generator's outcome.
type LoadReport = serve.Report

// APIVersion is the live server's HTTP API version prefix ("/v1").  The
// canonical routes are POST /v1/request, POST /v1/requests (batch),
// GET /v1/stats, GET /v1/objects/{name}, GET /v1/healthz, and
// GET /v1/metrics; the unversioned spellings remain as deprecated aliases.
const APIVersion = serve.APIVersion

// NewServer builds a live admission server over the catalog and starts its
// shard event loops.  Close it when done.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// LivePlanners returns the sorted planner registry names that can serve
// live traffic — every valid Object.Strategy / WithStrategy value.  The
// "online" strategy is natively incremental; every other name serves
// through epoch-based replanning of its batch planner.  All live-capable
// names are also registered planners (a test pins the subset relation).
func LivePlanners() []string { return serve.LivePlanners() }

// NewLiveServer builds a live admission server over the catalog using the
// facade's options: WithStrategy sets the default serving strategy
// (per-object Object.Strategy entries override it), WithEpoch the
// replanning period of epoch-based strategies in slots, WithChannelCap
// the admission controller's channel budget, WithWorkers the shard
// count, WithPoisson(false) the constant-rate dyadic tuning, and
// WithWarmReplanning(false) cold whole-epoch replanning.  Durability
// comes from WithDurability (a file store the server owns) or WithStore
// (a caller-owned backend), with WithSnapshotEpochs setting the cadence
// and WithRestore warm-restarting from the store's latest state.  For
// knobs beyond the options (degradation ladder, queue depths, wall-clock
// time unit), build a ServeConfig and call NewServer directly.
func NewLiveServer(cat Catalog, opts ...Option) (*Server, error) {
	st := ResolveSettings(opts...)
	cfg := ServeConfig{
		Catalog:            cat,
		Shards:             st.Workers,
		MaxChannels:        st.ChannelCap,
		DefaultStrategy:    st.Strategy,
		EpochSlots:         st.EpochSlots,
		ConstantRateTuning: !st.Poisson,
		ColdReplanning:     !st.WarmReplanning,
		PressureHighWater:  st.PressureHighWater,
		MeterStages:        st.MeterStages,
		Store:              st.Store,
		SnapshotEpochs:     st.SnapshotEpochs,
		Restore:            st.Restore,
		SyncMode:           st.SyncMode,
	}
	if st.SnapshotDir != "" {
		fs, err := store.NewFile(st.SnapshotDir)
		if err != nil {
			return nil, err
		}
		cfg.Store = fs
		cfg.OwnStore = true
	}
	s, err := serve.New(cfg)
	if err != nil && cfg.OwnStore {
		cfg.Store.Close()
	}
	return s, err
}

// Store is the live server's pluggable durability backend: per-shard
// epoch snapshots plus a write-ahead log of admitted requests.  The
// server logs before acknowledging — records and acknowledgements move
// through a group-commit pipeline that coalesces many acknowledgements
// into one store flush — so the durable log is always an exact prefix of
// the acknowledged admissions.
type Store = store.Store

// SyncMode selects the durability barrier of each WAL group commit; see
// WithSync.
type SyncMode = store.SyncMode

// The group-commit sync levels: SyncOS (default) survives process kill,
// SyncFull survives power loss at one fsync per group commit, SyncNone
// leaves commit timing to the store's buffering (acknowledged requests
// may be lost on crash; the log stays a gap-free prefix of admissions).
const (
	SyncOS   = store.SyncOS
	SyncNone = store.SyncNone
	SyncFull = store.SyncFull
)

// ParseSyncMode parses the command-line spelling of a sync level:
// "none", "os" (or empty), or "full".  Unknown spellings fail with an
// error wrapping ErrBadSyncMode.
func ParseSyncMode(s string) (SyncMode, error) { return store.ParseSyncMode(s) }

// ErrBadSyncMode marks an unrecognized ParseSyncMode spelling.
var ErrBadSyncMode = store.ErrBadSyncMode

// MemStore is the in-memory Store — the deterministic backend the
// crash-recovery tests and experiments use (its Clone models the bytes
// "on disk" at a kill instant).
type MemStore = store.Mem

// FileStore is the production Store: one snapshot file and one append-only
// WAL file per shard under a directory, with atomic snapshot replacement.
type FileStore = store.File

// NewMemStore returns an empty in-memory durability store.
func NewMemStore() *MemStore { return store.NewMem() }

// NewFileStore opens (creating if needed) a file-backed durability store
// rooted at dir.
func NewFileStore(dir string) (*FileStore, error) { return store.NewFile(dir) }

// Handler returns the server's versioned HTTP JSON API.
func Handler(s *Server) http.Handler { return serve.Handler(s) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4) — the same body GET /v1/metrics
// serves.  Use it to push metrics through a custom transport.
func WritePrometheus(w io.Writer, m *MetricsSnapshot) {
	serve.WritePrometheus(w, m)
}

// ListenAndServe binds addr, reports the bound address through onReady
// (useful with ":0"), and serves the HTTP API until ctx is cancelled, then
// shuts down gracefully.
func ListenAndServe(ctx context.Context, addr string, s *Server, onReady func(boundAddr string)) error {
	return serve.ListenAndServe(ctx, addr, s, onReady)
}

// GenerateRequests builds the deterministic, time-sorted request sequence
// for a catalog under a load configuration (fixed seed = identical
// replay).
func GenerateRequests(cat Catalog, cfg LoadConfig) ([]Request, error) {
	return serve.GenerateRequests(cat, cfg)
}

// RunDriver replays a request sequence against an in-process server in
// strict time order and drains it at the horizon — the deterministic path
// the equivalence tests pin against the batch simulator and the batch
// planners.  Cancelling ctx stops the replay with an error wrapping
// ctx.Err(); the server stays drainable and must still be Closed.
func RunDriver(ctx context.Context, s *Server, reqs []Request, horizon float64) (*LoadReport, error) {
	return serve.RunDriver(ctx, s, reqs, horizon)
}

// RunHTTPDriver replays a request sequence against a live HTTP endpoint
// with the given concurrency, measuring round-trip latencies.  Cancelling
// ctx stops dispatching and aborts in-flight requests.
func RunHTTPDriver(ctx context.Context, baseURL string, reqs []Request, concurrency int) (*LoadReport, error) {
	return serve.RunHTTPDriver(ctx, baseURL, reqs, concurrency)
}
