// modlint runs the repository's static-analysis suite (internal/analysis):
// six analyzers that mechanize the architectural invariants of the serving
// stack — facadeonly, shardloop, ctxflow, errwrap, noalloc, detrand (see
// DESIGN.md "Invariants" for the invariant each one guards and its escape
// hatch).
//
// It runs two ways:
//
//	modlint [packages]          standalone: analyze the packages (default ./...)
//	go vet -vettool=$(command -v modlint) ./...
//	                            as a vet tool: modlint speaks the unitchecker
//	                            protocol (-V=full, -flags, unit.cfg), so the
//	                            build cache, package enumeration, and test
//	                            variants all come from the go command
//
// Diagnostics print as file:line:col: message [analyzer]; the exit status
// is non-zero when any are reported.  A finding is silenced — with a
// recorded reason — by the escape hatch:
//
//	//modlint:ignore [analyzer[,analyzer]] reason
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// The go command probes vet tools with -V=full before anything else;
	// answer before flag parsing so unknown future probe flags next to it
	// cannot confuse the standalone parser.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			fmt.Printf("modlint version v1 buildID=%s\n", selfID())
			return
		}
		if arg == "-flags" || arg == "--flags" {
			// No tool-specific flags are exposed to the go command.
			fmt.Println("[]")
			return
		}
	}

	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	suite := analysis.Suite()
	if *only != "" {
		keep := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fatalf("modlint: unknown analyzer %q (use -list)", n)
		}
		suite = filtered
	}
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0], suite))
	}
	os.Exit(runStandalone(args, suite))
}

// runStandalone loads packages by pattern and analyzes them.
func runStandalone(patterns []string, suite []*analysis.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatalf("modlint: %v", err)
	}
	fset := token.NewFileSet()
	pkgs, err := analysis.LoadPatterns(fset, wd, patterns)
	if err != nil {
		fatalf("modlint: %v", err)
	}
	exit := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(fset, pkg, suite) {
			fmt.Fprintln(os.Stderr, d)
			exit = 1
		}
	}
	return exit
}

// vetConfig is the subset of the unitchecker *.cfg file modlint consumes.
// The go command writes one per compilation unit.
type vetConfig struct {
	ID                        string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one compilation unit on behalf of go vet.  The
// protocol requires writing a facts file (empty: the suite is factless)
// and reporting diagnostics on stderr with a non-zero exit.
func runVetUnit(cfgFile string, suite []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("modlint: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("modlint: parsing %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatalf("modlint: writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.LoadFiles(fset, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatalf("modlint: %v", err)
	}
	exit := 0
	for _, d := range analysis.Run(fset, pkg, suite) {
		fmt.Fprintln(os.Stderr, d)
		exit = 1
	}
	return exit
}

// selfID hashes the executable so the go command's vet result cache is
// invalidated whenever the analyzers change.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
