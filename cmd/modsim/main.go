// Command modsim runs the Media-on-Demand delivery simulator.
//
// In "offline" mode it builds the optimal merge forest for a given media
// length and horizon, executes it slot by slot with the discrete-event
// engine, and reports bandwidth, peak bandwidth, buffer occupancy, and
// playback correctness.  In "online" mode it does the same for the on-line
// delay-guaranteed algorithm.  In "compare" mode it reproduces one point of
// the Figs. 11-12 comparison for a chosen arrival intensity.
//
// In "workload" mode it simulates a whole catalog of media objects at once
// (Zipf popularities, Poisson or constant-rate arrival mixes) on the indexed
// parallel engine and reports per-object and server-wide channel usage.
//
// Everything is reached through the public facade (repro/mod): forests and
// schedules via the slotted wrappers, policies via the planner registry,
// and the workload simulator via mod.RunWorkload.  SIGINT/SIGTERM cancel
// the run (the off-line DP and the sweeps abort mid-flight).
//
// Usage:
//
//	modsim -mode offline -L 100 -n 1000
//	modsim -mode online  -L 100 -n 1000
//	modsim -mode compare -delay 1 -lambda 0.5 -horizon 100 -poisson
//	modsim -mode workload -objects 10 -zipf 1 -delay 2 -lambda 0.5 -horizon 20 -poisson -seed 1
//
// The -seed flag fixes the generated arrival traces (object i of a
// workload uses seed+i), so every published number is reproducible from
// the command line; modserve's load generator accepts the same flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"

	"repro/mod"
)

func main() {
	mode := flag.String("mode", "offline", "offline | online | compare | workload")
	L := flag.Int64("L", 100, "media length in slots (offline/online modes)")
	n := flag.Int64("n", 1000, "time horizon in slots (offline/online modes)")
	buffer := flag.Int64("buffer", 0, "client buffer bound in slots (0 = unbounded, offline mode)")
	delayPct := flag.Float64("delay", 1.0, "guaranteed start-up delay as %% of media length (compare/workload modes)")
	lambdaPct := flag.Float64("lambda", 0.5, "mean inter-arrival time as %% of media length (compare/workload modes)")
	horizon := flag.Float64("horizon", 100, "time horizon in media lengths (compare/workload modes)")
	poisson := flag.Bool("poisson", false, "use Poisson instead of constant-rate arrivals (compare/workload modes)")
	seed := flag.Int64("seed", 1, "random seed for the arrival traces (compare/workload modes; a fixed seed makes the run reproducible)")
	objects := flag.Int("objects", 10, "catalog size (workload mode)")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent (workload mode)")
	workers := flag.Int("workers", 0, "simulation worker goroutines (0 = all CPUs)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch *mode {
	case "offline", "online":
		var forest *mod.Forest
		if *mode == "offline" {
			if *buffer > 0 {
				forest = mod.OfflineForestBuffered(*L, *buffer, *n)
			} else {
				forest = mod.OfflineForest(*L, *n)
			}
		} else {
			forest = mod.OnlineForest(*L, *n)
		}
		fs, err := mod.BuildSchedule(forest)
		exitOn(err)
		res, err := mod.Simulate(fs, *workers)
		exitOn(err)
		fmt.Printf("algorithm:            %s\n", *mode)
		fmt.Printf("media length L:       %d slots\n", *L)
		fmt.Printf("horizon n:            %d slots (%d clients)\n", *n, len(res.Clients))
		fmt.Printf("full streams:         %d\n", forest.Streams())
		fmt.Printf("total bandwidth:      %d slot-units (%.2f media streams)\n", res.TotalBandwidth, res.NormalizedBandwidth())
		fmt.Printf("average bandwidth:    %.2f channels\n", res.AverageBandwidth())
		fmt.Printf("peak bandwidth:       %d channels\n", res.PeakBandwidth)
		fmt.Printf("max client buffer:    %d slots\n", res.MaxBuffer)
		fmt.Printf("playback stalls:      %d\n", res.Stalls)
		if *mode == "online" {
			fmt.Printf("optimal offline cost: %d slot-units (ratio %.4f)\n",
				mod.OfflineCost(*L, *n), float64(res.TotalBandwidth)/float64(mod.OfflineCost(*L, *n)))
		}
		if res.Stalls > 0 {
			fmt.Fprintln(os.Stderr, "modsim: schedule produced playback interruptions")
			os.Exit(1)
		}
	case "compare":
		delay := *delayPct / 100
		lambda := *lambdaPct / 100
		if delay <= 0 || lambda <= 0 || *horizon <= 0 {
			fmt.Fprintln(os.Stderr, "modsim: -delay, -lambda and -horizon must be positive")
			os.Exit(2)
		}
		slotsPerMedia := int64(math.Round(1 / delay))
		var tr []float64
		if *poisson {
			tr = mod.Poisson(lambda, *horizon, *seed)
		} else {
			tr = mod.Constant(lambda, *horizon)
		}
		// The Figs. 11-12 planner set from the registry, served across the
		// worker pool; costs are identical to a serial run.
		inst := mod.Instance{Arrivals: tr, Horizon: *horizon}
		opts := []mod.Option{
			mod.WithMediaLength(1), mod.WithDelay(delay),
			mod.WithPoisson(*poisson), mod.WithWorkers(*workers),
		}
		costs, err := mod.Compare(ctx, mod.StandardNames(), inst, opts...)
		exitOn(err)
		fmt.Printf("arrivals:             %d (%s, lambda = %.2f%% of media length)\n", len(tr), kind(*poisson), *lambdaPct)
		fmt.Printf("delay:                %.2f%% of media length (L = %d slots)\n", *delayPct, slotsPerMedia)
		fmt.Printf("horizon:              %.0f media lengths\n", *horizon)
		fmt.Println()
		fmt.Printf("immediate dyadic:     %10.2f media streams\n", costs["dyadic"])
		fmt.Printf("batched dyadic:       %10.2f media streams\n", costs["dyadic-batched"])
		fmt.Printf("delay-guaranteed:     %10.2f media streams\n", costs["online"])
		fmt.Printf("hybrid (Section 5):   %10.2f media streams\n", costs["hybrid"])
		fmt.Printf("pure batching:        %10.2f media streams\n", costs["batching"])
		fmt.Printf("unicast (no sharing): %10.2f media streams\n", costs["unicast"])
		// With few enough batched arrivals, also print the exact off-line
		// lower bound for delay-permitted service.  The banded flat DP of
		// internal/offline accepts an order of magnitude more arrivals than
		// the old full-table implementation.
		if batched := mod.BatchTimes(tr, delay); len(batched) <= 40000 {
			plan, err := mod.MustNew("offline-batched", opts...).Plan(ctx, inst, mod.WithMaxArrivals(40000))
			exitOn(err)
			fmt.Printf("offline optimum:      %10.2f media streams (exact lower bound with this delay)\n", plan.Cost)
		}
	case "workload":
		delay := *delayPct / 100
		lambda := *lambdaPct / 100
		if delay <= 0 || lambda <= 0 || *horizon <= 0 || *objects < 1 {
			fmt.Fprintln(os.Stderr, "modsim: -delay, -lambda, -horizon and -objects must be positive")
			os.Exit(2)
		}
		res, err := mod.RunWorkload(ctx, mod.WorkloadConfig{
			Catalog:          mod.ZipfCatalog(*objects, 1.0, delay, *zipf),
			Horizon:          *horizon,
			MeanInterArrival: lambda,
			Poisson:          *poisson,
			Seed:             *seed,
			Workers:          *workers,
		})
		exitOn(err)
		fmt.Printf("catalog:              %d objects, Zipf(%.2f) popularity\n", *objects, *zipf)
		fmt.Printf("arrivals:             %s, aggregate lambda = %.2f%% of media length\n", kind(*poisson), *lambdaPct)
		fmt.Printf("delay:                %.2f%% of media length\n", *delayPct)
		fmt.Printf("horizon:              %.0f media lengths\n", *horizon)
		fmt.Println()
		fmt.Printf("%-12s %8s %8s %8s %12s %8s %8s\n",
			"object", "L", "arrivals", "clients", "streams", "peak", "stalls")
		for _, o := range res.Objects {
			fmt.Printf("%-12s %8d %8d %8d %12.2f %8d %8d\n",
				o.Object.Name, o.SlotsPerMedia, o.Arrivals, o.Clients,
				o.Streams, o.Sim.PeakBandwidth, o.Sim.Stalls)
		}
		fmt.Println()
		fmt.Printf("server peak:          %d channels\n", res.Peak)
		fmt.Printf("server average:       %.2f channels\n", res.AverageChannels())
		fmt.Printf("total busy time:      %.2f media lengths\n", res.TotalBusyTime)
		fmt.Printf("playback stalls:      %d\n", res.Stalls)
		if res.Stalls > 0 {
			fmt.Fprintln(os.Stderr, "modsim: workload produced playback interruptions")
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "modsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "modsim:", err)
		os.Exit(1)
	}
}

func kind(poisson bool) string {
	if poisson {
		return "Poisson"
	}
	return "constant rate"
}
