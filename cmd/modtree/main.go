// Command modtree prints optimal merge trees and concrete broadcast-schedule
// diagrams (Figs. 3, 4, 6, 7 of the paper).
//
// Usage:
//
//	modtree -n 8                 print the optimal merge tree for 8 arrivals
//	modtree -n 4 -all            print every optimal merge tree for 4 arrivals
//	modtree -n 8 -L 15 -diagram  print the Fig. 3 style schedule diagram
//	modtree -n 8 -receive-all    use the receive-all model
//	modtree -n 20 -L 15 -forest  print the optimal merge forest
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/mod"
)

func main() {
	n := flag.Int64("n", 8, "number of arrival slots")
	L := flag.Int64("L", 15, "media length in slots (used with -diagram, -forest, -programs)")
	all := flag.Bool("all", false, "enumerate every optimal merge tree (small n only)")
	diagram := flag.Bool("diagram", false, "print the concrete schedule diagram (Fig. 3 style)")
	forest := flag.Bool("forest", false, "build the optimal merge forest for L and n instead of a single tree")
	programs := flag.Bool("programs", false, "print every client's receiving program")
	receiveAll := flag.Bool("receive-all", false, "use the receive-all model instead of receive-two")
	flag.Parse()

	if *n < 1 {
		fmt.Fprintln(os.Stderr, "modtree: -n must be positive")
		os.Exit(2)
	}

	if *all {
		if *n > 14 {
			fmt.Fprintln(os.Stderr, "modtree: -all enumerates all trees; use n <= 14")
			os.Exit(2)
		}
		opt, cost := mod.EnumerateOptimalTrees(0, int(*n))
		fmt.Printf("n=%d: %d optimal merge tree(s), merge cost %d\n\n", *n, len(opt), cost)
		for i, tr := range opt {
			fmt.Printf("optimal tree %d: %s\n%s\n", i+1, tr, tr.Render())
		}
		return
	}

	var f *mod.Forest
	if *forest {
		if *receiveAll {
			f = mod.OfflineForestAll(*L, *n)
		} else {
			f = mod.OfflineForest(*L, *n)
		}
		fmt.Printf("optimal merge forest for L=%d, n=%d: %d full stream(s), full cost %d\n\n",
			*L, *n, f.Streams(), chooseCost(f, *receiveAll))
		for i, tr := range f.Trees {
			fmt.Printf("tree %d (root %d, %d arrivals): %s\n", i+1, tr.Arrival, tr.Size(), tr)
		}
	} else {
		var tr *mod.Tree
		if *receiveAll {
			tr = mod.OptimalTreeAll(*n)
			fmt.Printf("optimal receive-all merge tree for n=%d (merge cost %d):\n\n", *n, tr.MergeCostAll())
		} else {
			tr = mod.OptimalTree(*n)
			fmt.Printf("optimal merge tree for n=%d (merge cost %d):\n\n", *n, tr.MergeCost())
		}
		fmt.Println(tr)
		fmt.Print(tr.Render())
		f = mod.NewForest(*L)
		f.Add(tr)
	}

	if *diagram || *programs {
		if !f.Trees[0].FitsLength(*L) {
			fmt.Fprintf(os.Stderr, "modtree: a tree over %d arrivals needs L >= %d\n", *n, f.Trees[0].RequiredRootLength())
			os.Exit(2)
		}
		fs, err := mod.BuildSchedule(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "modtree:", err)
			os.Exit(1)
		}
		if *diagram {
			fmt.Printf("\nconcrete schedule diagram (L=%d, total bandwidth %d slots, peak %d streams):\n\n",
				*L, fs.TotalBandwidth(), fs.PeakBandwidth())
			fmt.Print(fs.Diagram())
		}
		if *programs {
			fmt.Printf("\nreceiving programs:\n")
			for _, arr := range sortedKeys(fs.Programs) {
				p := fs.Programs[arr]
				fmt.Printf("  client %3d: path %v, max buffer %d, stages %d\n",
					arr, p.Path, p.MaxBuffer(), len(p.Stages))
			}
		}
		if _, err := fs.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "modtree: schedule verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("\nschedule verified: uninterrupted playback, receive-two, buffer bounds respected")
	}
}

func chooseCost(f *mod.Forest, receiveAll bool) int64 {
	if receiveAll {
		return f.FullCostAll()
	}
	return f.FullCost()
}

func sortedKeys(m map[int64]*mod.ClientProgram) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
