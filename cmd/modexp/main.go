// Command modexp regenerates the paper's tables and figures.  Each
// experiment prints its data table (CSV or aligned text) and, for figures,
// an ASCII chart.  Without -exp it runs every experiment; with -out it also
// writes one CSV file per experiment into the given directory.
//
// Usage:
//
//	modexp                      run everything, print aligned tables + charts
//	modexp -exp fig11 -csv      print Fig. 11 data as CSV
//	modexp -list                list experiment ids
//	modexp -out results/        write <id>.csv files
//	modexp -workers 8           spread replication sweeps over 8 goroutines
//
// The -workers flag controls the worker pools of the replication sweeps
// (Figs. 11-12, the dyadic-vs-optimal extension, and the workload
// simulation).  Replication seeds depend only on the sweep grid, never on
// scheduling, so the output is identical for every worker count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	noChart := flag.Bool("no-chart", false, "suppress ASCII charts")
	outDir := flag.String("out", "", "directory to write per-experiment CSV files")
	workers := flag.Int("workers", 0, "worker goroutines for replication sweeps (0 = all CPUs, 1 = serial)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the sweeps mid-flight (the grids observe the
	// context between cells).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	results, err := experiments.AllWithWorkers(ctx, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modexp:", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range results {
			fmt.Printf("%-16s %s\n", r.ID, r.Title)
		}
		return
	}

	if *exp != "" {
		filtered := results[:0]
		for _, r := range results {
			if strings.EqualFold(r.ID, *exp) {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "modexp: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		results = filtered
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "modexp:", err)
			os.Exit(1)
		}
	}

	for _, r := range results {
		fmt.Printf("== %s (%s) ==\n", r.Title, r.ID)
		if r.Notes != "" {
			fmt.Println("  ", r.Notes)
		}
		fmt.Println()
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.String())
		}
		if len(r.Series) > 0 && !*noChart && !*csv {
			fmt.Println()
			fmt.Print(chart(r))
		}
		fmt.Println()
		if *outDir != "" {
			path := filepath.Join(*outDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(r.Table.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "modexp:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
			fmt.Println()
		}
	}
}

func chart(r experiments.Result) string {
	return textplotChart(r)
}
