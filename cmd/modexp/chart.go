package main

import (
	"repro/internal/experiments"
	"repro/internal/textplot"
)

// textplotChart renders an experiment's series as an ASCII chart sized for a
// typical terminal.
func textplotChart(r experiments.Result) string {
	return textplot.Chart(72, 18, r.Series...)
}
