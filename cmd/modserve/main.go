// Command modserve runs the live Media-on-Demand admission server and its
// closed-loop load generator.
//
// In "serve" mode it starts the sharded admission server (via the public
// mod facade) over a Zipf catalog and exposes the versioned HTTP JSON API
// — POST /v1/request, POST /v1/requests (batch), GET /v1/stats,
// GET /v1/objects/{name}, GET /v1/healthz, GET /v1/metrics, with the
// unversioned routes kept as deprecated aliases — shutting down gracefully
// on SIGINT/SIGTERM.  Every object is served live by the planner family
// named with -strategy (any name in mod.LivePlanners(): the natively
// incremental "online" forest, or epoch-replanned "offline", "dyadic",
// "batching", "hybrid", ...).  In "load" mode it replays a deterministic
// Poisson/constant/ramp request trace against a running server over HTTP
// and reports latency, admission, and delay histograms.  In "bench" mode
// it replays the trace in-process with virtual time once per strategy in
// -strategies, measuring throughput and per-request admission latency,
// and writes the machine-readable results to -out (BENCH_serve.json by
// default) so the repository's serving performance is tracked across
// changes.  In "smoke" mode it starts a server on a random port, fires
// the load driver at it, and exits cleanly (the CI smoke step).
//
// The -seed flag fixes the request trace, so every published number is
// reproducible from the command line.
//
// Usage:
//
//	modserve -mode serve -addr :8377 -objects 100 -zipf 1 -delay 2 -cap 200 -strategy online
//	modserve -mode load -addr http://localhost:8377 -lambda 0.5 -horizon 20 -arrivals poisson -seed 7
//	modserve -mode bench -objects 50 -lambda 0.5 -horizon 20 -strategies online,dyadic,batching -out BENCH_serve.json
//	modserve -mode smoke
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/mod"
)

func main() {
	mode := flag.String("mode", "serve", "serve | load | bench | smoke")
	addr := flag.String("addr", ":8377", "listen address (serve) or target base URL (load)")
	objects := flag.Int("objects", 20, "catalog size")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent")
	length := flag.Float64("length", 1.0, "media length in time units")
	delayPct := flag.Float64("delay", 2.0, "guaranteed start-up delay as %% of media length")
	capacity := flag.Int("cap", 0, "channel cap for the admission controller (0 = unlimited)")
	shards := flag.Int("shards", 0, "scheduler shards (0 = GOMAXPROCS)")
	step := flag.Float64("step", 1.25, "delay scale step on degradation")
	maxScale := flag.Float64("maxscale", 8, "maximum delay scale before rejecting")
	strategy := flag.String("strategy", "online", "live serving strategy (a mod.LivePlanners() name)")
	epoch := flag.Int("epoch", 0, "epoch replanning period in slots for batch strategies (0 = server default)")
	strategies := flag.String("strategies", "all", "bench: comma-separated strategies, or \"all\"")
	out := flag.String("out", "BENCH_serve.json", "bench: machine-readable output file (empty = none)")
	horizon := flag.Float64("horizon", 20, "load horizon in media lengths (load/bench/smoke)")
	lambdaPct := flag.Float64("lambda", 0.5, "aggregate mean inter-arrival time as %% of media length")
	arrKind := flag.String("arrivals", "poisson", "arrival process: constant | poisson | ramp")
	rampFactor := flag.Float64("ramp", 4, "final/initial rate ratio for -arrivals ramp")
	seed := flag.Int64("seed", 1, "random seed for the request trace (fixed seed = reproducible run)")
	conc := flag.Int("conc", 8, "concurrent connections for -mode load")
	timeUnit := flag.Duration("timeunit", time.Second, "wall-clock duration of one catalog time unit (serve)")
	flag.Parse()

	cat := mod.ZipfCatalog(*objects, *length, *length**delayPct/100, *zipf)
	cfg := mod.ServeConfig{
		Catalog:         cat,
		Shards:          *shards,
		MaxChannels:     *capacity,
		DegradeStep:     *step,
		MaxDelayScale:   *maxScale,
		TimeUnit:        *timeUnit,
		DefaultStrategy: *strategy,
		EpochSlots:      *epoch,
	}
	load := mod.LoadConfig{
		Horizon:          *horizon,
		MeanInterArrival: *length * *lambdaPct / 100,
		RampFactor:       *rampFactor,
		Seed:             *seed,
	}
	switch *arrKind {
	case "constant":
		load.Kind = mod.ConstantArrivals
	case "poisson":
		load.Kind = mod.PoissonArrivals
	case "ramp":
		load.Kind = mod.RampArrivals
	default:
		fmt.Fprintf(os.Stderr, "modserve: unknown arrival kind %q\n", *arrKind)
		os.Exit(2)
	}

	switch *mode {
	case "serve":
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		s, err := mod.NewServer(cfg)
		exitOn(err)
		err = mod.ListenAndServe(ctx, *addr, s, func(bound string) {
			fmt.Printf("modserve: serving %d objects on %s (strategy %s, cap %d, %s per time unit)\n",
				len(cat), bound, *strategy, *capacity, *timeUnit)
		})
		exitOn(err)
		fmt.Println("modserve: shut down cleanly")
	case "load":
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		reqs, err := mod.GenerateRequests(cat, load)
		exitOn(err)
		fmt.Printf("modserve: replaying %d requests (%s, seed %d) against %s with %d connections\n",
			len(reqs), load.Kind, *seed, base, *conc)
		rep, err := mod.RunHTTPDriver(context.Background(), base, reqs, *conc)
		exitOn(err)
		rep.Render(os.Stdout)
	case "bench":
		exitOn(bench(cfg, load, benchList(*strategies), *out))
	case "smoke":
		exitOn(smoke(cfg, load, *conc))
		fmt.Println("modserve: smoke ok")
	default:
		fmt.Fprintf(os.Stderr, "modserve: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// benchList resolves the -strategies flag.
func benchList(s string) []string {
	if s == "" || s == "all" {
		return mod.LivePlanners()
	}
	return strings.Split(s, ",")
}

// benchResult is one strategy's row in BENCH_serve.json.
type benchResult struct {
	Strategy     string  `json:"strategy"`
	Requests     int     `json:"requests"`
	Admitted     int     `json:"admitted"`
	Degraded     int     `json:"degraded"`
	Rejected     int     `json:"rejected"`
	ReqsPerSec   float64 `json:"reqs_per_sec"`
	P50LatencyUS float64 `json:"p50_admission_latency_us"`
	P99LatencyUS float64 `json:"p99_admission_latency_us"`
	CostStreams  float64 `json:"cost_streams"`
	BusyTime     float64 `json:"busy_time"`
	Peak         int     `json:"peak"`
}

// benchOutput is the machine-readable bench report: enough context to
// reproduce the run plus one row per strategy, so the repository's
// serving-performance trajectory can be tracked across changes.
type benchOutput struct {
	Objects    int           `json:"objects"`
	Shards     int           `json:"shards"`
	Horizon    float64       `json:"horizon"`
	Arrivals   string        `json:"arrivals"`
	Seed       int64         `json:"seed"`
	EpochSlots int           `json:"epoch_slots"`
	Results    []benchResult `json:"results"`
}

// bench replays the same deterministic request trace in-process once per
// strategy, measuring per-Submit admission latency and end-to-end
// throughput, drains each server, and writes the JSON report.
func bench(cfg mod.ServeConfig, load mod.LoadConfig, strategies []string, outPath string) error {
	reqs, err := mod.GenerateRequests(cfg.Catalog, load)
	if err != nil {
		return err
	}
	report := benchOutput{
		Objects:    len(cfg.Catalog),
		Horizon:    load.Horizon,
		Arrivals:   load.Kind.String(),
		Seed:       load.Seed,
		EpochSlots: cfg.EpochSlots,
	}
	for _, strategy := range strategies {
		cfg := cfg
		cfg.DefaultStrategy = strategy
		s, err := mod.NewServer(cfg)
		if err != nil {
			return err
		}
		// Record the effective shard count (defaulted and clamped), not the
		// configured one, so runs on different machines compare honestly.
		report.Shards = s.Shards()
		fmt.Printf("=== strategy %s: in-process replay of %d requests (%s, seed %d) over %d objects, %d shards ===\n",
			strategy, len(reqs), load.Kind, load.Seed, len(cfg.Catalog), s.Shards())
		res, rep, err := benchStrategy(s, reqs, load.Horizon)
		s.Close()
		if err != nil {
			return err
		}
		res.Strategy = strategy
		report.Results = append(report.Results, res)
		rep.Render(os.Stdout)
		fmt.Printf("\nthroughput:           %.0f reqs/s (p50 %.1f us, p99 %.1f us per admission)\n\n",
			res.ReqsPerSec, res.P50LatencyUS, res.P99LatencyUS)
	}
	if outPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("modserve: wrote %s (%d strategies)\n", outPath, len(report.Results))
	return nil
}

// benchStrategy replays the trace against one server, timing every Submit.
// Tickets flow through the report's own Count/Finish accounting, so the
// rendered output keeps the offered-delay summary and histogram the
// untimed RunDriver path produces.
func benchStrategy(s *mod.Server, reqs []mod.Request, horizon float64) (benchResult, *mod.LoadReport, error) {
	res := benchResult{Requests: len(reqs)}
	lats := make([]float64, 0, len(reqs))
	rep := &mod.LoadReport{Requests: len(reqs)}
	t0 := time.Now()
	for _, req := range reqs {
		s0 := time.Now()
		tk, err := s.Submit(req)
		if err != nil {
			return res, nil, err
		}
		lats = append(lats, float64(time.Since(s0).Microseconds()))
		rep.Count(tk)
	}
	elapsed := time.Since(t0).Seconds()
	dr, err := s.Drain(horizon)
	if err != nil {
		return res, nil, err
	}
	res.Admitted, res.Degraded, res.Rejected = rep.Admitted, rep.Degraded, rep.Rejected
	rep.Drain = dr
	rep.Finish()
	if elapsed > 0 {
		res.ReqsPerSec = float64(len(reqs)) / elapsed
	}
	sort.Float64s(lats)
	res.P50LatencyUS = percentile(lats, 0.50)
	res.P99LatencyUS = percentile(lats, 0.99)
	for _, o := range dr.Objects {
		res.CostStreams += o.Cost
	}
	res.BusyTime = dr.Usage.Total()
	res.Peak = dr.Usage.Peak()
	return res, rep, nil
}

// percentile returns the p-quantile of sorted samples (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// smoke starts the server on a random local port, replays a small load
// over HTTP, checks /healthz, and shuts everything down cleanly — the CI
// end-to-end check for the live serving path.
func smoke(cfg mod.ServeConfig, load mod.LoadConfig, conc int) error {
	s, err := mod.NewServer(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- mod.ListenAndServe(ctx, "127.0.0.1:0", s, func(b string) { bound <- b })
	}()
	base := "http://" + <-bound
	resp, err := http.Get(base + mod.APIVersion + "/healthz")
	if err != nil {
		cancel()
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	reqs, err := mod.GenerateRequests(cfg.Catalog, load)
	if err != nil {
		cancel()
		return err
	}
	rep, err := mod.RunHTTPDriver(ctx, base, reqs, conc)
	if err != nil {
		cancel()
		return err
	}
	if served := rep.Admitted + rep.Degraded; served+rep.Rejected != len(reqs) {
		cancel()
		return fmt.Errorf("served %d + rejected %d of %d requests", served, rep.Rejected, len(reqs))
	}
	fmt.Printf("modserve: %d requests served over HTTP (admitted %d, degraded %d, rejected %d)\n",
		len(reqs), rep.Admitted, rep.Degraded, rep.Rejected)
	cancel()
	return <-done
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "modserve:", err)
		os.Exit(1)
	}
}
