// Command modserve runs the live Media-on-Demand admission server and its
// closed-loop load generator.
//
// In "serve" mode it starts the sharded admission server (via the public
// mod facade) over a Zipf catalog and exposes the versioned HTTP JSON API
// — POST /v1/request, POST /v1/requests (batch), GET /v1/stats,
// GET /v1/objects/{name}, GET /v1/healthz, GET /v1/metrics, with the
// unversioned routes kept as deprecated aliases — shutting down gracefully
// on SIGINT/SIGTERM.  In "load" mode it replays a
// deterministic Poisson/constant/ramp request trace against a running
// server over HTTP and reports latency, admission, and delay histograms.
// In "bench" mode it does the same in-process with virtual time — the
// deterministic path the equivalence tests pin against sim.RunWorkload.
// In "smoke" mode it starts a server on a random port, fires the load
// driver at it, and exits cleanly (the CI smoke step).
//
// The -seed flag fixes the request trace, so every published number is
// reproducible from the command line.
//
// Usage:
//
//	modserve -mode serve -addr :8377 -objects 100 -zipf 1 -delay 2 -cap 200
//	modserve -mode load -addr http://localhost:8377 -lambda 0.5 -horizon 20 -arrivals poisson -seed 7
//	modserve -mode bench -objects 50 -lambda 0.5 -horizon 20 -arrivals ramp -seed 7
//	modserve -mode smoke
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/mod"
)

func main() {
	mode := flag.String("mode", "serve", "serve | load | bench | smoke")
	addr := flag.String("addr", ":8377", "listen address (serve) or target base URL (load)")
	objects := flag.Int("objects", 20, "catalog size")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent")
	length := flag.Float64("length", 1.0, "media length in time units")
	delayPct := flag.Float64("delay", 2.0, "guaranteed start-up delay as %% of media length")
	capacity := flag.Int("cap", 0, "channel cap for the admission controller (0 = unlimited)")
	shards := flag.Int("shards", 0, "scheduler shards (0 = GOMAXPROCS)")
	step := flag.Float64("step", 1.25, "delay scale step on degradation")
	maxScale := flag.Float64("maxscale", 8, "maximum delay scale before rejecting")
	horizon := flag.Float64("horizon", 20, "load horizon in media lengths (load/bench/smoke)")
	lambdaPct := flag.Float64("lambda", 0.5, "aggregate mean inter-arrival time as %% of media length")
	arrKind := flag.String("arrivals", "poisson", "arrival process: constant | poisson | ramp")
	rampFactor := flag.Float64("ramp", 4, "final/initial rate ratio for -arrivals ramp")
	seed := flag.Int64("seed", 1, "random seed for the request trace (fixed seed = reproducible run)")
	conc := flag.Int("conc", 8, "concurrent connections for -mode load")
	timeUnit := flag.Duration("timeunit", time.Second, "wall-clock duration of one catalog time unit (serve)")
	flag.Parse()

	cat := mod.ZipfCatalog(*objects, *length, *length**delayPct/100, *zipf)
	cfg := mod.ServeConfig{
		Catalog:       cat,
		Shards:        *shards,
		MaxChannels:   *capacity,
		DegradeStep:   *step,
		MaxDelayScale: *maxScale,
		TimeUnit:      *timeUnit,
	}
	load := mod.LoadConfig{
		Horizon:          *horizon,
		MeanInterArrival: *length * *lambdaPct / 100,
		RampFactor:       *rampFactor,
		Seed:             *seed,
	}
	switch *arrKind {
	case "constant":
		load.Kind = mod.ConstantArrivals
	case "poisson":
		load.Kind = mod.PoissonArrivals
	case "ramp":
		load.Kind = mod.RampArrivals
	default:
		fmt.Fprintf(os.Stderr, "modserve: unknown arrival kind %q\n", *arrKind)
		os.Exit(2)
	}

	switch *mode {
	case "serve":
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		s, err := mod.NewServer(cfg)
		exitOn(err)
		err = mod.ListenAndServe(ctx, *addr, s, func(bound string) {
			fmt.Printf("modserve: serving %d objects on %s (cap %d, %s per time unit)\n",
				len(cat), bound, *capacity, *timeUnit)
		})
		exitOn(err)
		fmt.Println("modserve: shut down cleanly")
	case "load":
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		reqs, err := mod.GenerateRequests(cat, load)
		exitOn(err)
		fmt.Printf("modserve: replaying %d requests (%s, seed %d) against %s with %d connections\n",
			len(reqs), load.Kind, *seed, base, *conc)
		rep, err := mod.RunHTTPDriver(base, reqs, *conc)
		exitOn(err)
		rep.Render(os.Stdout)
	case "bench":
		s, err := mod.NewServer(cfg)
		exitOn(err)
		defer s.Close()
		reqs, err := mod.GenerateRequests(cat, load)
		exitOn(err)
		fmt.Printf("modserve: in-process replay of %d requests (%s, seed %d) over %d objects\n",
			len(reqs), load.Kind, *seed, len(cat))
		rep, err := mod.RunDriver(s, reqs, *horizon)
		exitOn(err)
		rep.Render(os.Stdout)
	case "smoke":
		exitOn(smoke(cfg, load, *conc))
		fmt.Println("modserve: smoke ok")
	default:
		fmt.Fprintf(os.Stderr, "modserve: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// smoke starts the server on a random local port, replays a small load
// over HTTP, checks /healthz, and shuts everything down cleanly — the CI
// end-to-end check for the live serving path.
func smoke(cfg mod.ServeConfig, load mod.LoadConfig, conc int) error {
	s, err := mod.NewServer(cfg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- mod.ListenAndServe(ctx, "127.0.0.1:0", s, func(b string) { bound <- b })
	}()
	base := "http://" + <-bound
	resp, err := http.Get(base + mod.APIVersion + "/healthz")
	if err != nil {
		cancel()
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	reqs, err := mod.GenerateRequests(cfg.Catalog, load)
	if err != nil {
		cancel()
		return err
	}
	rep, err := mod.RunHTTPDriver(base, reqs, conc)
	if err != nil {
		cancel()
		return err
	}
	if served := rep.Admitted + rep.Degraded; served+rep.Rejected != len(reqs) {
		cancel()
		return fmt.Errorf("served %d + rejected %d of %d requests", served, rep.Rejected, len(reqs))
	}
	fmt.Printf("modserve: %d requests served over HTTP (admitted %d, degraded %d, rejected %d)\n",
		len(reqs), rep.Admitted, rep.Degraded, rep.Rejected)
	cancel()
	return <-done
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "modserve:", err)
		os.Exit(1)
	}
}
