// Command modserve runs the live Media-on-Demand admission server and its
// closed-loop load generator.
//
// In "serve" mode it starts the sharded admission server (via the public
// mod facade) over a Zipf catalog and exposes the versioned HTTP JSON API
// — POST /v1/request, POST /v1/requests (batch), GET /v1/stats,
// GET /v1/objects/{name}, GET /v1/healthz, and GET /v1/metrics in the
// Prometheus text exposition format (the unversioned routes remain as
// deprecated aliases; legacy /metrics keeps the JSON counter map) —
// shutting down gracefully on SIGINT/SIGTERM.  Stage metering is on by
// default (-meter=false disables it): every admission records queue wait,
// planning, epoch-replanning, and respond durations into the /v1/metrics
// histograms.  -pressure N turns on queue-depth backpressure: submits
// routed to a shard holding more than N queued requests answer 429 with a
// Retry-After derived from the shard's drain rate.  Every object is served live by the planner family
// named with -strategy (any name in mod.LivePlanners(): the natively
// incremental "online" forest, or epoch-replanned "offline", "dyadic",
// "batching", "hybrid", ...).  -snapshot-dir DIR turns on durable state:
// every admission is WAL-logged before its ticket is acknowledged and
// shards snapshot their full scheduler state every -snapshot-epochs
// epochs (POST /v1/admin/snapshot forces one); -restore warm-restarts
// from the directory's latest snapshots plus WAL tails, resuming ticket
// numbering where the previous process stopped.  -sync picks the WAL
// group-commit barrier: "os" (the default) flushes to the operating
// system before acknowledging and survives process kill, "full" also
// fsyncs — one fsync per group commit, shared by every acknowledgement
// in the batch — and survives power loss, "none" leaves commit timing
// to the store's buffering.  In "load" mode it
// replays a deterministic Poisson/constant/ramp/flash-crowd request trace
// against a running server over HTTP and reports latency, admission, and
// delay histograms; -skipreqs/-maxreqs window the trace so a
// kill-and-restore run can replay exactly the remainder after a restart.  In
// "bench" mode it sweeps a standard workload benchmark matrix — every
// -workloads arrival process x -sizes catalog size x -shardgrid shard
// count, replaying each cell's deterministic trace in-process once per
// strategy in -strategies — measuring single-submit throughput, batched
// SubmitBatch throughput (one channel send per shard per 500-entry
// batch), per-request admission latency, and warm-start epoch replanning
// (replans, warm hits, DP cells reused vs recomputed, replan latency),
// plus the per-stage latency decomposition (queue/plan/replan p50 and p99
// from the server's histograms).  For the "online" strategy each cell
// additionally measures durable throughput on a file-backed store with 8
// concurrent submitters — group-commit versus flush-per-ack, plus the
// flushes-per-request coalescing factor — and the grid is written to
// -out (BENCH_serve.json by default, version 4) so the repository's
// serving performance is tracked across changes; -csv FILE additionally
// dumps one row per replayed request (grid coordinates, ticket, and
// per-stage nanosecond timings) for offline analysis.  In "smoke" mode it
// starts a server on a random port, fires the load driver at it, scrapes
// /v1/metrics, and exits cleanly (the CI smoke step).
//
// The -seed flag fixes the request traces: bench cell seeds derive from
// grid coordinates alone (never shard count, strategy, or scheduling
// order), so every published number is reproducible from the command
// line on any machine.
//
// Usage:
//
//	modserve -mode serve -addr :8377 -objects 100 -zipf 1 -delay 2 -cap 200 -strategy online
//	modserve -mode serve -addr :8377 -snapshot-dir /var/lib/modserve -sync full -restore
//	modserve -mode load -addr http://localhost:8377 -lambda 0.5 -horizon 20 -arrivals poisson -seed 7
//	modserve -mode bench -workloads poisson,flash -sizes 8,16 -shardgrid 1,2 -lambda 0.5 -horizon 20 -strategies online,dyadic,batching -out BENCH_serve.json
//	modserve -mode smoke
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/mod"
)

func main() {
	mode := flag.String("mode", "serve", "serve | load | bench | smoke")
	addr := flag.String("addr", ":8377", "listen address (serve) or target base URL (load)")
	objects := flag.Int("objects", 20, "catalog size")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity exponent")
	length := flag.Float64("length", 1.0, "media length in time units")
	delayPct := flag.Float64("delay", 2.0, "guaranteed start-up delay as %% of media length")
	capacity := flag.Int("cap", 0, "channel cap for the admission controller (0 = unlimited)")
	shards := flag.Int("shards", 0, "scheduler shards (0 = GOMAXPROCS)")
	step := flag.Float64("step", 1.25, "delay scale step on degradation")
	maxScale := flag.Float64("maxscale", 8, "maximum delay scale before rejecting")
	strategy := flag.String("strategy", "online", "live serving strategy (a mod.LivePlanners() name)")
	epoch := flag.Int("epoch", 0, "epoch replanning period in slots for batch strategies (0 = server default)")
	pressure := flag.Int("pressure", 0, "per-shard queue high-water mark for 429 backpressure (0 = off)")
	meter := flag.Bool("meter", true, "record per-request stage latency histograms (GET /v1/metrics)")
	csvPath := flag.String("csv", "", "bench: per-request CSV dump file (empty = none)")
	strategies := flag.String("strategies", "all", "bench: comma-separated strategies, or \"all\"")
	workloads := flag.String("workloads", "all", "bench: comma-separated arrival kinds (constant|poisson|ramp|flash), or \"all\"")
	sizes := flag.String("sizes", "", "bench: comma-separated catalog sizes (empty = -objects)")
	shardGrid := flag.String("shardgrid", "", "bench: comma-separated shard counts (empty = -shards)")
	out := flag.String("out", "BENCH_serve.json", "bench: machine-readable output file (empty = none)")
	horizon := flag.Float64("horizon", 20, "load horizon in media lengths (load/bench/smoke)")
	lambdaPct := flag.Float64("lambda", 0.5, "aggregate mean inter-arrival time as %% of media length")
	arrKind := flag.String("arrivals", "poisson", "arrival process: constant | poisson | ramp | flash (load/smoke; bench uses -workloads)")
	rampFactor := flag.Float64("ramp", 4, "final/initial rate ratio for -arrivals ramp")
	seed := flag.Int64("seed", 1, "random seed for the request trace (fixed seed = reproducible run)")
	conc := flag.Int("conc", 8, "concurrent connections for -mode load")
	timeUnit := flag.Duration("timeunit", time.Second, "wall-clock duration of one catalog time unit (serve)")
	snapDir := flag.String("snapshot-dir", "", "durability directory (snapshot + WAL per shard); empty = no durability (serve/smoke)")
	snapEpochs := flag.Int("snapshot-epochs", 0, "snapshot cadence in epochs (0 = server default)")
	syncFlag := flag.String("sync", "os", "WAL group-commit barrier: none | os | full (with -snapshot-dir)")
	restore := flag.Bool("restore", false, "warm-restart: restore state from -snapshot-dir before serving")
	maxReqs := flag.Int("maxreqs", 0, "load: replay at most N requests of the trace (0 = all)")
	skipReqs := flag.Int("skipreqs", 0, "load: skip the first N requests of the trace")
	flag.Parse()

	cat := mod.ZipfCatalog(*objects, *length, *length**delayPct/100, *zipf)
	cfg := mod.ServeConfig{
		Catalog:           cat,
		Shards:            *shards,
		MaxChannels:       *capacity,
		DegradeStep:       *step,
		MaxDelayScale:     *maxScale,
		TimeUnit:          *timeUnit,
		DefaultStrategy:   *strategy,
		EpochSlots:        *epoch,
		PressureHighWater: *pressure,
		MeterStages:       *meter,
		SnapshotEpochs:    *snapEpochs,
	}
	syncMode, err := mod.ParseSyncMode(*syncFlag)
	exitOn(err)
	cfg.SyncMode = syncMode
	if *snapDir != "" {
		fs, err := mod.NewFileStore(*snapDir)
		exitOn(err)
		cfg.Store = fs
		cfg.OwnStore = true // the server closes the store it was handed
		cfg.Restore = *restore
	} else if *restore {
		exitOn(fmt.Errorf("-restore requires -snapshot-dir"))
	}
	load := mod.LoadConfig{
		Horizon:          *horizon,
		MeanInterArrival: *length * *lambdaPct / 100,
		RampFactor:       *rampFactor,
		Seed:             *seed,
	}
	kind, err := arrivalKind(*arrKind)
	if err != nil {
		fmt.Fprintln(os.Stderr, "modserve:", err)
		os.Exit(2)
	}
	load.Kind = kind

	switch *mode {
	case "serve":
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer stop()
		s, err := mod.NewServer(cfg)
		exitOn(err)
		if cfg.Restore {
			fmt.Printf("modserve: restored durable state from %s\n", *snapDir)
		}
		err = mod.ListenAndServe(ctx, *addr, s, func(bound string) {
			fmt.Printf("modserve: serving %d objects on %s (strategy %s, cap %d, %s per time unit)\n",
				len(cat), bound, *strategy, *capacity, *timeUnit)
		})
		exitOn(err)
		fmt.Println("modserve: shut down cleanly")
	case "load":
		base := *addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		reqs, err := mod.GenerateRequests(cat, load)
		exitOn(err)
		// -skipreqs/-maxreqs window the deterministic trace so a kill-and-
		// restore run can replay "the rest of the trace" after a restart.
		if *skipReqs > 0 {
			if *skipReqs > len(reqs) {
				*skipReqs = len(reqs)
			}
			reqs = reqs[*skipReqs:]
		}
		if *maxReqs > 0 && *maxReqs < len(reqs) {
			reqs = reqs[:*maxReqs]
		}
		fmt.Printf("modserve: replaying %d requests (%s, seed %d) against %s with %d connections\n",
			len(reqs), load.Kind, *seed, base, *conc)
		rep, err := mod.RunHTTPDriver(context.Background(), base, reqs, *conc)
		exitOn(err)
		rep.Render(os.Stdout)
	case "bench":
		grid, err := benchGridConfig(*workloads, *sizes, *shardGrid, *objects, *shards)
		exitOn(err)
		exitOn(bench(cfg, load, grid, benchList(*strategies), *length, *delayPct, *zipf, *out, *csvPath))
	case "smoke":
		exitOn(smoke(cfg, load, *conc))
		fmt.Println("modserve: smoke ok")
	default:
		fmt.Fprintf(os.Stderr, "modserve: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

// benchList resolves the -strategies flag.
func benchList(s string) []string {
	if s == "" || s == "all" {
		return mod.LivePlanners()
	}
	return strings.Split(s, ",")
}

// arrivalKind resolves an arrival-process name.
func arrivalKind(name string) (mod.ArrivalKind, error) {
	switch name {
	case "constant":
		return mod.ConstantArrivals, nil
	case "poisson":
		return mod.PoissonArrivals, nil
	case "ramp":
		return mod.RampArrivals, nil
	case "flash":
		return mod.FlashArrivals, nil
	}
	return 0, fmt.Errorf("unknown arrival kind %q", name)
}

// benchGrid is the benchmark matrix: every workload x catalog size x shard
// count combination is one cell, and every strategy is replayed inside
// every cell.
type benchGrid struct {
	workloads []mod.ArrivalKind
	sizes     []int
	shards    []int
}

// benchGridConfig resolves the bench grid flags; empty -sizes/-shardgrid
// collapse those axes to the base -objects/-shards values.
func benchGridConfig(workloads, sizes, shardGrid string, objects, shards int) (benchGrid, error) {
	var g benchGrid
	if workloads == "" || workloads == "all" {
		workloads = "constant,poisson,ramp,flash"
	}
	for _, name := range strings.Split(workloads, ",") {
		k, err := arrivalKind(name)
		if err != nil {
			return g, err
		}
		g.workloads = append(g.workloads, k)
	}
	var err error
	if g.sizes, err = parseInts(sizes, objects); err != nil {
		return g, fmt.Errorf("bad -sizes: %v", err)
	}
	if g.shards, err = parseInts(shardGrid, shards); err != nil {
		return g, fmt.Errorf("bad -shardgrid: %v", err)
	}
	return g, nil
}

// parseInts parses a comma-separated int list, defaulting to [fallback].
func parseInts(s string, fallback int) ([]int, error) {
	if s == "" {
		return []int{fallback}, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

// benchResult is one strategy's row inside a grid cell of BENCH_serve.json.
// reqs_per_sec times the per-request Submit path; batch_reqs_per_sec times
// the same trace through SubmitBatch in 500-entry batches (one channel
// send per shard per batch), so the two columns are the single-vs-batched
// submission comparison.  The replan columns aggregate the per-object
// ReplanStats of the drained run: every epoch close is one replan, warm
// ones reused the retained state, and the cell counters split the off-line
// DP work into band cells carried over versus filled fresh.
// The stage columns come from the server's own latency decomposition
// (Config.MeterStages): per-admission queue wait, planning, and
// epoch-replan share, as p50/p99 of the merged stage histograms.
// The durable columns (version 4, "online" rows only) replay the trace on
// a file-backed store with 16 concurrent submitters: durable_reqs_per_sec
// is the group-commit pipeline at the default "os" sync level,
// durable_per_ack_reqs_per_sec the flush-per-acknowledgement baseline on
// the same store, and wal_flushes_per_req the group-commit coalescing
// factor (store flushes divided by acknowledged requests).
type benchResult struct {
	Strategy         string  `json:"strategy"`
	Requests         int     `json:"requests"`
	Admitted         int     `json:"admitted"`
	Degraded         int     `json:"degraded"`
	Rejected         int     `json:"rejected"`
	RejectedPressure int64   `json:"rejected_pressure"`
	ReqsPerSec       float64 `json:"reqs_per_sec"`
	BatchReqsPerSec  float64 `json:"batch_reqs_per_sec"`
	P50LatencyUS     float64 `json:"p50_admission_latency_us"`
	P99LatencyUS     float64 `json:"p99_admission_latency_us"`
	QueueP50US       float64 `json:"queue_p50_us"`
	QueueP99US       float64 `json:"queue_p99_us"`
	PlanP50US        float64 `json:"plan_p50_us"`
	PlanP99US        float64 `json:"plan_p99_us"`
	ReplanP50US      float64 `json:"replan_p50_us"`
	ReplanP99US      float64 `json:"replan_p99_us"`
	Replans          int64   `json:"replans"`
	WarmReplans      int64   `json:"warm_replans"`
	CellsReused      int64   `json:"cells_reused"`
	CellsRecomputed  int64   `json:"cells_recomputed"`
	ReplanTotalUS    float64 `json:"replan_total_us"`
	MaxReplanUS      float64 `json:"max_replan_us"`
	CostStreams      float64 `json:"cost_streams"`
	BusyTime         float64 `json:"busy_time"`
	Peak             int     `json:"peak"`

	DurableReqsPerSec       float64 `json:"durable_reqs_per_sec,omitempty"`
	DurablePerAckReqsPerSec float64 `json:"durable_per_ack_reqs_per_sec,omitempty"`
	WALFlushesPerReq        float64 `json:"wal_flushes_per_req,omitempty"`
}

// benchCell is one grid cell: a workload x catalog size x shard count
// combination with one result row per strategy.  The cell seed derives
// from the workload and size grid coordinates alone — never from shard
// count, strategy, or scheduling order — so the same -seed reproduces the
// identical request trace in every cell however the sweep is arranged.
type benchCell struct {
	Workload string        `json:"workload"`
	Objects  int           `json:"objects"`
	Shards   int           `json:"shards"`
	Seed     int64         `json:"seed"`
	Requests int           `json:"requests"`
	Results  []benchResult `json:"results"`
}

// benchOutput is the machine-readable bench report (version 4: the
// version-3 grid shape plus the durable-throughput columns on "online"
// rows): enough context to reproduce the sweep plus one cell per grid
// combination, so the repository's serving-performance trajectory is
// tracked across changes by .github/benchdiff.go.
type benchOutput struct {
	Version    int         `json:"version"`
	Horizon    float64     `json:"horizon"`
	Seed       int64       `json:"seed"`
	EpochSlots int         `json:"epoch_slots"`
	Grid       []benchCell `json:"grid"`
}

// cellSeed derives a grid cell's trace seed from its workload and catalog
// size coordinates (the two axes that change the trace), exactly like the
// experiments grids derive replication seeds — scheduling order, shard
// count, and strategy never enter, so -seed 1 is reproducible everywhere.
func cellSeed(base int64, wi, si int) int64 {
	return base + int64(wi)*1_000_003 + int64(si)*10_007
}

// bench sweeps the benchmark matrix: for every workload x catalog size it
// generates one deterministic request trace, then replays that trace
// in-process once per shard count x strategy — timing the per-request
// Submit path, the batched SubmitBatch path, and (via the drained
// ReplanStats) warm-start epoch replanning — and writes the grid JSON.
func bench(cfg mod.ServeConfig, load mod.LoadConfig, grid benchGrid, strategies []string, length, delayPct, zipf float64, outPath, csvPath string) error {
	report := benchOutput{
		Version:    4,
		Horizon:    load.Horizon,
		Seed:       load.Seed,
		EpochSlots: cfg.EpochSlots,
	}
	cfg.MeterReplanNanos = true
	// The stage columns need the server's own decomposition; metering is
	// observation only (cost totals are pinned bit-identical), so forcing
	// it on keeps every published grid comparable.
	cfg.MeterStages = true
	var dump *csvDump
	if csvPath != "" {
		var err error
		if dump, err = newCSVDump(csvPath); err != nil {
			return err
		}
		defer dump.f.Close()
	}
	for wi, kind := range grid.workloads {
		for si, size := range grid.sizes {
			cat := mod.ZipfCatalog(size, length, length*delayPct/100, zipf)
			cellLoad := load
			cellLoad.Kind = kind
			cellLoad.Seed = cellSeed(load.Seed, wi, si)
			reqs, err := mod.GenerateRequests(cat, cellLoad)
			if err != nil {
				return err
			}
			for _, shards := range grid.shards {
				cellCfg := cfg
				cellCfg.Catalog = cat
				cellCfg.Shards = shards
				cell := benchCell{
					Workload: kind.String(),
					Objects:  size,
					Seed:     cellLoad.Seed,
					Requests: len(reqs),
				}
				for _, strategy := range strategies {
					cellCfg.DefaultStrategy = strategy
					s, err := mod.NewServer(cellCfg)
					if err != nil {
						return err
					}
					// Record the effective shard count (defaulted and
					// clamped), not the configured one, so runs on
					// different machines compare honestly.
					cell.Shards = s.Shards()
					fmt.Printf("=== workload %s, %d objects, %d shards, strategy %s: in-process replay of %d requests (seed %d) ===\n",
						cell.Workload, size, cell.Shards, strategy, len(reqs), cellLoad.Seed)
					if dump != nil {
						dump.setCell(cell.Workload, size, cell.Shards, strategy)
					}
					res, rep, err := benchStrategy(s, reqs, cellLoad.Horizon, dump)
					s.Close()
					if err != nil {
						return err
					}
					if res.BatchReqsPerSec, err = benchBatch(cellCfg, reqs, cellLoad.Horizon); err != nil {
						return err
					}
					if strategy == "online" {
						if err := benchDurable(cellCfg, reqs, cellLoad.Horizon, &res); err != nil {
							return err
						}
					}
					res.Strategy = strategy
					cell.Results = append(cell.Results, res)
					rep.Render(os.Stdout)
					fmt.Printf("\nthroughput:           %.0f reqs/s single, %.0f reqs/s batched (p50 %.1f us, p99 %.1f us per admission)\n",
						res.ReqsPerSec, res.BatchReqsPerSec, res.P50LatencyUS, res.P99LatencyUS)
					if res.DurableReqsPerSec > 0 {
						fmt.Printf("durable (file store): %.0f reqs/s group commit, %.0f reqs/s flush-per-ack (%.3f flushes/req)\n",
							res.DurableReqsPerSec, res.DurablePerAckReqsPerSec, res.WALFlushesPerReq)
					}
					fmt.Printf("replans:              %d (%d warm; %d cells reused, %d recomputed; total %.0f us, max %.0f us)\n\n",
						res.Replans, res.WarmReplans, res.CellsReused, res.CellsRecomputed, res.ReplanTotalUS, res.MaxReplanUS)
				}
				report.Grid = append(report.Grid, cell)
			}
		}
	}
	if dump != nil {
		if err := dump.flush(); err != nil {
			return err
		}
		fmt.Printf("modserve: wrote per-request dump %s (%d rows)\n", csvPath, dump.rows)
	}
	if outPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("modserve: wrote %s (%d cells, %d strategies)\n", outPath, len(report.Grid), len(strategies))
	return nil
}

// csvDump streams the per-request bench rows of -csv: one line per
// replayed request with its grid coordinates, ticket, and the per-stage
// nanosecond timings the server's metering attached to the ticket.
type csvDump struct {
	f    *os.File
	w    *bufio.Writer
	rows int
	// Current grid-cell coordinates, stamped on every row.
	workload, strategy string
	objects, shards    int
}

// csvHeader is the -csv column order; submit_ns is the caller-observed
// Submit round trip, the queue/plan/replan columns are the server's own
// stage decomposition from the ticket.
const csvHeader = "workload,objects,shards,strategy,seq,object,t,outcome,epoch,slot,delay,start_at,queue_ns,plan_ns,replan_ns,submit_ns"

func newCSVDump(path string) (*csvDump, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	d := &csvDump{f: f, w: bufio.NewWriter(f)}
	fmt.Fprintln(d.w, csvHeader)
	return d, nil
}

func (d *csvDump) setCell(workload string, objects, shards int, strategy string) {
	d.workload, d.objects, d.shards, d.strategy = workload, objects, shards, strategy
}

func (d *csvDump) row(seq int, req mod.Request, tk mod.Ticket, submitNS int64) {
	fmt.Fprintf(d.w, "%s,%d,%d,%s,%d,%s,%g,%s,%d,%d,%g,%g,%d,%d,%d,%d\n",
		d.workload, d.objects, d.shards, d.strategy, seq, req.Object, req.T,
		tk.Decision, tk.Epoch, tk.Slot, tk.Delay, tk.StartAt,
		tk.QueueNS, tk.PlanNS, tk.ReplanNS, submitNS)
	d.rows++
}

func (d *csvDump) flush() error {
	if err := d.w.Flush(); err != nil {
		return err
	}
	return d.f.Close()
}

// benchStrategy replays the trace against one server, timing every Submit.
// Tickets flow through the report's own Count/Finish accounting, so the
// rendered output keeps the offered-delay summary and histogram the
// untimed RunDriver path produces.  The stage columns are read from the
// server's merged histograms (Metrics) before the drain.
func benchStrategy(s *mod.Server, reqs []mod.Request, horizon float64, dump *csvDump) (benchResult, *mod.LoadReport, error) {
	res := benchResult{Requests: len(reqs)}
	lats := make([]float64, 0, len(reqs))
	rep := &mod.LoadReport{Requests: len(reqs)}
	t0 := time.Now()
	for seq, req := range reqs {
		s0 := time.Now()
		tk, err := s.Submit(req)
		if err != nil {
			return res, nil, err
		}
		submitNS := time.Since(s0).Nanoseconds()
		lats = append(lats, float64(submitNS)/1e3)
		rep.Count(tk)
		if dump != nil {
			dump.row(seq, req, tk, submitNS)
		}
	}
	elapsed := time.Since(t0).Seconds()
	m, err := s.Metrics()
	if err != nil {
		return res, nil, err
	}
	var queue, plan, replan mod.LatencyHistogram
	for _, st := range m.Stages {
		queue.Merge(&st.Queue)
		plan.Merge(&st.Plan)
		replan.Merge(&st.Replan)
	}
	res.QueueP50US = float64(queue.Quantile(0.50)) / 1e3
	res.QueueP99US = float64(queue.Quantile(0.99)) / 1e3
	res.PlanP50US = float64(plan.Quantile(0.50)) / 1e3
	res.PlanP99US = float64(plan.Quantile(0.99)) / 1e3
	res.ReplanP50US = float64(replan.Quantile(0.50)) / 1e3
	res.ReplanP99US = float64(replan.Quantile(0.99)) / 1e3
	res.RejectedPressure = m.Stats.RejectedPressure
	dr, err := s.Drain(horizon)
	if err != nil {
		return res, nil, err
	}
	res.Admitted, res.Degraded, res.Rejected = rep.Admitted, rep.Degraded, rep.Rejected
	rep.Drain = dr
	rep.Finish()
	if elapsed > 0 {
		res.ReqsPerSec = float64(len(reqs)) / elapsed
	}
	sort.Float64s(lats)
	res.P50LatencyUS = percentile(lats, 0.50)
	res.P99LatencyUS = percentile(lats, 0.99)
	for _, o := range dr.Objects {
		res.CostStreams += o.Cost
		res.Replans += o.Replan.Replans
		res.WarmReplans += o.Replan.WarmReplans
		res.CellsReused += o.Replan.CellsReused
		res.CellsRecomputed += o.Replan.CellsRecomputed
		res.ReplanTotalUS += float64(o.Replan.ReplanNanos) / 1e3
		if us := float64(o.Replan.MaxReplanNanos) / 1e3; us > res.MaxReplanUS {
			res.MaxReplanUS = us
		}
	}
	res.BusyTime = dr.Usage.Total()
	res.Peak = dr.Usage.Peak()
	return res, rep, nil
}

// benchBatch replays the same trace through SubmitBatch in 500-entry
// batches on a fresh server — one channel send per shard per batch — and
// returns the end-to-end requests-per-second of the batched path.
func benchBatch(cfg mod.ServeConfig, reqs []mod.Request, horizon float64) (float64, error) {
	s, err := mod.NewServer(cfg)
	if err != nil {
		return 0, err
	}
	defer s.Close()
	const batch = 500
	t0 := time.Now()
	for k := 0; k < len(reqs); k += batch {
		end := k + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		for _, r := range s.SubmitBatch(reqs[k:end]) {
			if r.Err != nil {
				return 0, r.Err
			}
		}
	}
	elapsed := time.Since(t0).Seconds()
	if _, err := s.Drain(horizon); err != nil {
		return 0, err
	}
	if elapsed <= 0 {
		return 0, nil
	}
	return float64(len(reqs)) / elapsed, nil
}

// benchDurable measures the durable admission path for the "online" row
// of a cell: the same trace on a file-backed store under a throwaway
// directory, submitted by 16 concurrent striped workers per shard
// (worker w replays requests w, w+N, w+2N, ... — the shard clock clamps
// timestamps monotone, so interleaving is safe).  It runs twice at the
// default "os" sync level: once through the group-commit pipeline
// (recording durable_reqs_per_sec and the flushes-per-request
// coalescing factor) and once with Config.FlushPerAck — one store flush
// per acknowledgement, the pre-group-commit behavior — as the baseline
// (durable_per_ack_reqs_per_sec).
func benchDurable(cfg mod.ServeConfig, reqs []mod.Request, horizon float64, res *benchResult) error {
	if len(reqs) == 0 {
		return nil
	}
	// One bench cell's trace lasts low single-digit milliseconds at
	// durable throughput — far too short for a stable wall-clock figure —
	// so every measurement replays the trace in rounds until it has
	// submitted at least minSubmits requests (resubmitted timestamps
	// clamp to the shard clock, which is fine for a throughput run).
	// Group and per-ack runs alternate back to back as pairs so machine
	// drift hits both modes alike, and the recorded columns come from
	// the pair whose group/per-ack ratio is the median — a paired
	// measurement, not independent medians that could mix a fast group
	// window with a slow per-ack one.
	// The submitter cohort scales with the cell's shard count so every
	// shard sees the same 16-worker concurrency (and so the same
	// group-commit coalescing opportunity) regardless of grid position.
	const (
		submittersPerShard = 16
		minSubmits         = 40000
		pairs              = 5
	)
	submitters := submittersPerShard
	if cfg.Shards > 1 {
		submitters = submittersPerShard * cfg.Shards
	}
	rounds := (minSubmits + len(reqs) - 1) / len(reqs)
	n := rounds * len(reqs)
	run := func(perAck bool) (rps, flushesPerReq float64, err error) {
		dir, err := os.MkdirTemp("", "modserve-bench-wal-")
		if err != nil {
			return 0, 0, err
		}
		defer os.RemoveAll(dir)
		fs, err := mod.NewFileStore(dir)
		if err != nil {
			return 0, 0, err
		}
		dcfg := cfg
		dcfg.Store = fs
		dcfg.OwnStore = true
		dcfg.FlushPerAck = perAck
		// Both durable runs measure the durable pipeline itself; stage
		// metering (forced on for the grid's latency columns) stays off
		// here so its per-request cost does not dilute the comparison.
		dcfg.MeterStages = false
		s, err := mod.NewServer(dcfg)
		if err != nil {
			fs.Close()
			return 0, 0, err
		}
		defer s.Close()
		errs := make(chan error, submitters)
		var wg sync.WaitGroup
		t0 := time.Now()
		for w := 0; w < submitters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := w; i < len(reqs); i += submitters {
						if _, err := s.Submit(reqs[i]); err != nil {
							errs <- err
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(t0).Seconds()
		select {
		case err := <-errs:
			return 0, 0, err
		default:
		}
		st, err := s.Stats()
		if err != nil {
			return 0, 0, err
		}
		if _, err := s.Drain(horizon); err != nil {
			return 0, 0, err
		}
		if elapsed > 0 {
			rps = float64(n) / elapsed
		}
		flushesPerReq = float64(st.WALFlushes) / float64(n)
		return rps, flushesPerReq, nil
	}
	type pair struct {
		group, perAck, flushes float64
	}
	var runs []pair
	for p := 0; p < pairs; p++ {
		g, f, err := run(false)
		if err != nil {
			return err
		}
		a, _, err := run(true)
		if err != nil {
			return err
		}
		runs = append(runs, pair{group: g, perAck: a, flushes: f})
	}
	sort.Slice(runs, func(i, j int) bool {
		return runs[i].group*runs[j].perAck < runs[j].group*runs[i].perAck
	})
	mid := runs[len(runs)/2]
	res.DurableReqsPerSec = mid.group
	res.DurablePerAckReqsPerSec = mid.perAck
	res.WALFlushesPerReq = mid.flushes
	return nil
}

// percentile returns the p-quantile of sorted samples (nearest rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// smoke starts the server on a random local port, replays a small load
// over HTTP, checks /healthz, and shuts everything down cleanly — the CI
// end-to-end check for the live serving path.
func smoke(cfg mod.ServeConfig, load mod.LoadConfig, conc int) error {
	s, err := mod.NewServer(cfg)
	if err != nil {
		return err
	}
	if cfg.Restore {
		fmt.Println("modserve: restored durable state")
	}
	ctx, cancel := context.WithCancel(context.Background())
	bound := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- mod.ListenAndServe(ctx, "127.0.0.1:0", s, func(b string) { bound <- b })
	}()
	base := "http://" + <-bound
	resp, err := http.Get(base + mod.APIVersion + "/healthz")
	if err != nil {
		cancel()
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		cancel()
		return fmt.Errorf("healthz returned %d", resp.StatusCode)
	}
	reqs, err := mod.GenerateRequests(cfg.Catalog, load)
	if err != nil {
		cancel()
		return err
	}
	rep, err := mod.RunHTTPDriver(ctx, base, reqs, conc)
	if err != nil {
		cancel()
		return err
	}
	if served := rep.Admitted + rep.Degraded; served+rep.Rejected != len(reqs) {
		cancel()
		return fmt.Errorf("served %d + rejected %d of %d requests", served, rep.Rejected, len(reqs))
	}
	fmt.Printf("modserve: %d requests served over HTTP (admitted %d, degraded %d, rejected %d)\n",
		len(reqs), rep.Admitted, rep.Degraded, rep.Rejected)
	if err := scrapeMetrics(base, cfg.MeterStages); err != nil {
		cancel()
		return err
	}
	fmt.Println("modserve: metrics scrape ok")
	if cfg.Store != nil {
		// Exercise the warm-restart primitive end to end: force a durable
		// snapshot over the admin route before shutting down, so a later
		// -restore run picks the state up.
		resp, err := http.Post(base+mod.APIVersion+"/admin/snapshot", "application/json", nil)
		if err != nil {
			cancel()
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			cancel()
			return fmt.Errorf("admin/snapshot returned %d", resp.StatusCode)
		}
		fmt.Println("modserve: durable snapshot saved")
	}
	// Drop the smoke client's keep-alive connections (every request above
	// rode the shared DefaultTransport, including any conn the transport
	// raced open and never used) before asking the server to wind down:
	// a pooled connection the server still counts as new or active would
	// otherwise hold http.Server.Shutdown until its deadline.
	http.DefaultClient.CloseIdleConnections()
	cancel()
	return <-done
}

// scrapeMetrics fetches GET /v1/metrics and sanity-checks the Prometheus
// exposition: the counter family must always be present, and with stage
// metering on the latency histogram family must be too.
func scrapeMetrics(base string, metered bool) error {
	resp, err := http.Get(base + mod.APIVersion + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		return fmt.Errorf("metrics Content-Type %q is not the Prometheus text exposition", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	body := string(blob)
	if !strings.Contains(body, "# TYPE mod_requests_total counter") {
		return fmt.Errorf("metrics exposition is missing the request counter family:\n%s", body)
	}
	if metered && !strings.Contains(body, "# TYPE mod_stage_latency_seconds histogram") {
		return fmt.Errorf("metrics exposition is missing the stage histogram family:\n%s", body)
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "modserve:", err)
		os.Exit(1)
	}
}
