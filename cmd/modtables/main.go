// Command modtables prints the combinatorial tables of the paper: the
// optimal merge cost M(n) (Section 3.1), the receive-all merge cost Mw(n)
// (Section 3.4), the last-merge intervals I(n) (Fig. 8), the Theorem 12
// worked examples, and the optimal full cost for a given L and n.
//
// Usage:
//
//	modtables [-max N] [-i] [-all-model] [-fullcost] [-L L] [-n n] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/textplot"
	"repro/mod"
)

func main() {
	maxN := flag.Int("max", 16, "largest n for the M(n)/Mw(n) tables")
	maxI := flag.Int64("imax", 55, "largest n for the I(n) table")
	showI := flag.Bool("i", false, "print the I(n) table (Fig. 8)")
	showAll := flag.Bool("all-model", false, "print the receive-all Mw(n) table")
	showFull := flag.Bool("fullcost", false, "print the Theorem 12 worked examples and the optimal full cost for -L/-n")
	L := flag.Int64("L", 15, "media length in slots (with -fullcost)")
	n := flag.Int64("n", 8, "number of arrival slots (with -fullcost)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	show := func(r experiments.Result) {
		fmt.Println("#", r.Title)
		if r.Notes != "" {
			fmt.Println("#", r.Notes)
		}
		if *csv {
			fmt.Print(r.Table.CSV())
		} else {
			fmt.Print(r.Table.String())
		}
		fmt.Println()
	}

	printedAny := false
	if *showI {
		show(experiments.TableI(*maxI))
		printedAny = true
	}
	if *showAll {
		show(experiments.TableMAll(*maxN))
		printedAny = true
	}
	if *showFull {
		show(experiments.Theorem12Examples())
		tab := textplot.NewTable("L", "n", "optimal_streams", "full_cost", "avg_bandwidth", "normalized_streams")
		if *L < 1 || *n < 1 {
			fmt.Fprintln(os.Stderr, "modtables: -L and -n must be positive")
			os.Exit(2)
		}
		s := mod.OfflineStreamCount(*L, *n)
		c := mod.OfflineCost(*L, *n)
		tab.AddRow(*L, *n, s, c, float64(c)/float64(*n), float64(c)/float64(*L))
		fmt.Println("# Optimal full cost for the requested L and n")
		if *csv {
			fmt.Print(tab.CSV())
		} else {
			fmt.Print(tab.String())
		}
		fmt.Println()
		printedAny = true
	}
	if !printedAny {
		show(experiments.TableM(*maxN))
	}
}
