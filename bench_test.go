package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each invoking the same experiment generator that cmd/modexp
// uses, plus ablation benchmarks for the design choices called out in
// DESIGN.md.  Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks report, beyond time and allocations, the headline metric of
// the corresponding artifact via b.ReportMetric (e.g. the bandwidth ratio a
// figure plots), so a benchmark run doubles as a quick regeneration of the
// paper's numbers.

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mergetree"
	"repro/internal/multiobject"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// BenchmarkFig1 regenerates Fig. 1 (bandwidth vs. guaranteed start-up
// delay) and reports the bandwidth at a 1% delay for both algorithms.
func BenchmarkFig1(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig1(experiments.DefaultFig1())
	}
	// Delay = 1% is the second sweep point.
	b.ReportMetric(res.Series[0].Y[1], "offline-streams@1%")
	b.ReportMetric(res.Series[1].Y[1], "online-streams@1%")
}

// BenchmarkTableM regenerates the M(n) table of Section 3.1.
func BenchmarkTableM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableM(16)
	}
	b.ReportMetric(float64(core.MergeCost(16)), "M(16)")
}

// BenchmarkTableMw regenerates the receive-all M_w(n) table of Section 3.4.
func BenchmarkTableMw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableMAll(16)
	}
	b.ReportMetric(float64(core.MergeCostAll(16)), "Mw(16)")
}

// BenchmarkTableI regenerates Fig. 8 (the I(n) intervals for n <= 55).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI(55)
	}
	_, hi := core.LastMergeInterval(55)
	b.ReportMetric(float64(hi), "maxI(55)")
}

// BenchmarkFig6Fig7Trees regenerates the optimal trees of Figs. 6 and 7
// (all optimal trees for n=4 and the Fibonacci merge trees).
func BenchmarkFig6Fig7Trees(b *testing.B) {
	var count int
	for i := 0; i < b.N; i++ {
		opt, _ := mergetree.EnumerateOptimal(0, 4)
		count = len(opt)
		for _, n := range []int64{3, 5, 8, 13} {
			core.OptimalTree(n)
		}
	}
	b.ReportMetric(float64(count), "optimal-trees(n=4)")
}

// BenchmarkFig3Schedule regenerates the concrete schedule diagram of Fig. 3
// (L=15, n=8) including full verification.
func BenchmarkFig3Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := core.OptimalForest(15, 8)
		fs, err := schedule.Build(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Verify(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(core.FullCost(15, 8)), "fullcost(15,8)")
}

// BenchmarkThm12Examples regenerates the Theorem 12 worked examples.
func BenchmarkThm12Examples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Theorem12Examples()
	}
	b.ReportMetric(float64(core.FullCost(4, 16)), "F(4,16)")
}

// BenchmarkThm14BatchingRatio regenerates the Theorem 14 comparison of
// batching vs. batching+merging.
func BenchmarkThm14BatchingRatio(b *testing.B) {
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Theorem14(experiments.DefaultTheorem14())
	}
	b.ReportMetric(res.Series[0].Y[len(res.Series[0].Y)-1], "advantage@L=1024")
}

// BenchmarkThm19ReceiveAllRatio regenerates the receive-two vs. receive-all
// comparison of Theorems 19-20.
func BenchmarkThm19ReceiveAllRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ReceiveAllRatio([]int64{16, 256, 4096, 65536, 1 << 20}, 2000)
	}
	b.ReportMetric(core.ReceiveTwoAllRatio(1<<20), "M/Mw@n=2^20")
	b.ReportMetric(core.LogPhi2, "log_phi(2)")
}

// BenchmarkFig9OnlineRatio regenerates Fig. 9 (on-line / off-line ratio vs.
// time horizon).
func BenchmarkFig9OnlineRatio(b *testing.B) {
	cfg := experiments.DefaultFig9()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = experiments.Fig9(cfg)
	}
	last := res.Series[len(res.Series)-1]
	b.ReportMetric(last.Y[len(last.Y)-1], "ratio@L=200,n=100000")
}

// fig11BenchConfig is a reduced-horizon configuration so a single benchmark
// iteration stays in the tens of milliseconds; the full-size sweep is run by
// cmd/modexp.
func fig11BenchConfig() experiments.ComparisonConfig {
	return experiments.ComparisonConfig{
		DelayPct:     1.0,
		HorizonMedia: 25,
		LambdaPcts:   []float64{0.1, 0.5, 1.0, 2.0, 5.0},
		Replications: 1,
		Seed:         1,
	}
}

// BenchmarkFig11ConstantRate regenerates Fig. 11 (constant-rate arrivals).
func BenchmarkFig11ConstantRate(b *testing.B) {
	cfg := fig11BenchConfig()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig11(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Series[0].Y[0], "imm-dyadic@0.1%")
	b.ReportMetric(res.Series[2].Y[0], "delay-guaranteed")
}

// BenchmarkFig12Poisson regenerates Fig. 12 (Poisson arrivals).
func BenchmarkFig12Poisson(b *testing.B) {
	cfg := fig11BenchConfig()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig12(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Series[0].Y[len(res.Series[0].Y)-1], "imm-dyadic@5%")
	b.ReportMetric(res.Series[2].Y[0], "delay-guaranteed")
}

// BenchmarkAblationClosedFormVsDP quantifies the paper's O(n) improvement
// (Theorem 3 / Theorem 7) over the O(n^2) dynamic program of [6].
func BenchmarkAblationClosedFormVsDP(b *testing.B) {
	b.Run("closed-form-n=5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MergeCostTable(5000)
		}
	})
	b.Run("dp-n=5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.MergeCostDP(5000)
		}
	})
	b.Run("linear-tree-n=5000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.OptimalTree(5000)
		}
	})
	b.Run("dp-tree-n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.OptimalTreeDP(2000)
		}
	})
}

// BenchmarkAblationStreamCountSearch compares the Theorem 12 two-candidate
// optimal stream count against the naive scan.
func BenchmarkAblationStreamCountSearch(b *testing.B) {
	b.Run("theorem12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.OptimalStreamCount(500, 200000)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.OptimalStreamCountBrute(500, 200000)
		}
	})
}

// BenchmarkAblationBufferTradeoff regenerates the Section 3.3 buffer-bound
// sweep.
func BenchmarkAblationBufferTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.BufferTradeoff(60, 600)
	}
}

// BenchmarkAblationOnlineTreeSize regenerates the static-tree-size ablation.
func BenchmarkAblationOnlineTreeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.OnlineTreeSizeAblation(100, 10000)
	}
}

// BenchmarkExtHybridServer regenerates the Section 5 hybrid-server
// extension experiment.
func BenchmarkExtHybridServer(b *testing.B) {
	cfg := experiments.DefaultHybrid()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HybridServer(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtMultiObjectPeak regenerates the Section 5 multi-object peak
// bandwidth extension experiment.
func BenchmarkExtMultiObjectPeak(b *testing.B) {
	cfg := experiments.DefaultMultiObject()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiObjectPeak(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDyadicVsOptimal regenerates the dyadic-vs-exact-optimum
// extension experiment (general-arrivals DP of internal/offline).
func BenchmarkExtDyadicVsOptimal(b *testing.B) {
	cfg := experiments.DefaultDyadicVsOptimal()
	cfg.Replications = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DyadicVsOptimal(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimulation measures the slot-accurate delivery simulator
// executing an on-line schedule.
func BenchmarkEndToEndSimulation(b *testing.B) {
	srv := online.NewServer(100)
	f := srv.Forest(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunForest(f)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stalls != 0 {
			b.Fatal("stalls in simulated schedule")
		}
	}
}

// BenchmarkSimLarge pits the indexed, parallel engine against the original
// slot-by-slot reference engine on a large on-line schedule (10^6
// client-slots: 10000 clients each playing a 100-slot media), so the speedup
// is measured rather than asserted.  The schedule is built once outside the
// timed region; both engines produce bit-identical results (see the
// equivalence tests in internal/sim).
func BenchmarkSimLarge(b *testing.B) {
	const (
		mediaSlots = 100
		horizon    = 10000
	)
	f := online.NewServer(mediaSlots).Forest(horizon)
	fs, err := schedule.Build(f)
	if err != nil {
		b.Fatal(err)
	}
	clientSlots := float64(len(fs.Programs)) * float64(mediaSlots)
	run := func(b *testing.B, engine func(*schedule.ForestSchedule) (*sim.Result, error)) {
		b.ReportAllocs()
		b.ReportMetric(clientSlots, "client-slots")
		for i := 0; i < b.N; i++ {
			res, err := engine(fs)
			if err != nil {
				b.Fatal(err)
			}
			if res.Stalls != 0 {
				b.Fatal("stalls in simulated schedule")
			}
		}
	}
	b.Run("indexed", func(b *testing.B) { run(b, sim.RunSchedule) })
	b.Run("reference", func(b *testing.B) { run(b, sim.RunScheduleReference) })
}

// BenchmarkSimWorkload measures the multi-object workload driver: a Zipf
// catalog with Poisson arrival mixes simulated end to end on the indexed
// engine.
func BenchmarkSimWorkload(b *testing.B) {
	cfg := sim.WorkloadConfig{
		Catalog:          multiobject.ZipfCatalog(5, 1.0, 0.02, 1.0),
		Horizon:          5,
		MeanInterArrival: 0.02,
		Poisson:          true,
		Seed:             1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunWorkload(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stalls != 0 {
			b.Fatal("stalls in workload")
		}
	}
}

// BenchmarkOnlineCostClosed measures the closed-form on-line cost A(L,n)
// against the forest-materializing reference at a million-slot horizon.
// "cold" includes the server precomputation and the one-time memo fill;
// "hot" is the steady-state O(1) query the experiments pay.
func BenchmarkOnlineCostClosed(b *testing.B) {
	const (
		L = 100
		n = 1_000_000
	)
	b.Run("closed-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			online.NewServer(L).CostClosed(n)
		}
	})
	b.Run("closed-hot", func(b *testing.B) {
		srv := online.NewServer(L)
		srv.CostClosed(n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.CostClosed(n)
		}
	})
	b.Run("forest-reference", func(b *testing.B) {
		srv := online.NewServer(L)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			srv.Cost(n)
		}
	})
	srv := online.NewServer(L)
	if srv.CostClosed(n) != srv.Cost(n) {
		b.Fatal("closed form diverges from reference")
	}
}

// offlineBenchTimes builds a deterministic pseudo-random strictly-increasing
// arrival sequence for the offline DP benchmarks.
func offlineBenchTimes(n int) []float64 {
	times := make([]float64, n)
	t := 0.0
	state := uint64(12345)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		t += 0.5 + float64(state>>40)/float64(1<<24)
		times[i] = t
	}
	return times
}

// BenchmarkOfflineDP pits the flattened (triangular, int32-split, optionally
// parallel) interval DP against the [][]-based Knuth-accelerated reference
// at n=10000; both produce bit-identical tables (see internal/offline
// tests).  B/op shows the memory halving; on multi-core hosts the flat
// variant additionally shards each DP diagonal across GOMAXPROCS workers.
func BenchmarkOfflineDP(b *testing.B) {
	times := offlineBenchTimes(10000)
	b.Run("flat-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := offline.ComputeTables(context.Background(), times, offline.ReceiveTwo, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference-fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := offline.MergeCostTableFast(times, offline.ReceiveTwo); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOfflineForest measures the banded end-to-end optimum (the
// policy.OfflineOptimal path) at the raised arrival cap's scale: the band
// keeps the table footprint proportional to arrivals-per-window rather than
// n^2.
func BenchmarkOfflineForest(b *testing.B) {
	const n = 10000
	times := offlineBenchTimes(n)
	// Window of ~200 arrivals.
	window := (times[n-1] - times[0]) / (n / 200)
	b.ReportAllocs()
	b.ReportMetric(float64(offline.BandBytes(times, window))/(1<<20), "table-MB")
	for i := 0; i < b.N; i++ {
		if _, err := offline.OptimalForestWorkers(context.Background(), times, window, offline.ReceiveTwo, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// activeStreamsPerSlot is the pre-refactor ActiveStreams: one increment per
// (stream, slot) pair, so it scales with the total stream length.
func activeStreamsPerSlot(f *mergetree.Forest, from, to int64) []int {
	if to <= from {
		return nil
	}
	counts := make([]int, to-from)
	for _, nl := range f.Lengths() {
		start, end := nl.Arrival, nl.Arrival+nl.Length
		if start < from {
			start = from
		}
		if end > to {
			end = to
		}
		for s := start; s < end; s++ {
			counts[s-from]++
		}
	}
	return counts
}

// BenchmarkActiveStreams compares the difference-array bandwidth profile
// against the per-slot reference on an on-line forest whose total stream
// length (~L x streams) dwarfs the queried range.
func BenchmarkActiveStreams(b *testing.B) {
	const (
		L       = 2000
		horizon = 100000
	)
	f := online.NewServer(L).Forest(horizon)
	want := activeStreamsPerSlot(f, 0, horizon)
	got := f.ActiveStreams(0, horizon)
	for i := range want {
		if got[i] != want[i] {
			b.Fatalf("difference-array profile diverges at slot %d", i)
		}
	}
	b.Run("diff-array", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.ActiveStreams(0, horizon)
		}
	})
	b.Run("per-slot-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			activeStreamsPerSlot(f, 0, horizon)
		}
	})
}

// BenchmarkComparisonSweepWorkers measures the Figs. 11-12 replication grid
// serial vs. pooled (bit-identical output; the speedup tracks the host's
// core count).
func BenchmarkComparisonSweepWorkers(b *testing.B) {
	cfg := fig11BenchConfig()
	cfg.Replications = 4
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "pooled"
		}
		b.Run(name, func(b *testing.B) {
			c := cfg
			c.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Fig12(context.Background(), c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
