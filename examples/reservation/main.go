// Reservation system: an off-line Media-on-Demand deployment in which all
// requests are known ahead of time (Section 1's "reservation systems"
// application).
//
// A university broadcasts a recorded lecture (90 minutes) overnight.  All
// 40 viewing groups booked a 3-minute start window in advance, so the
// server can compute the whole broadcast plan off-line: the optimal merge
// forest (with a client buffer cap), each group's receiving program, and the
// exact channel schedule.  The example also verifies the plan by running the
// slot-accurate simulator on it.
//
// Run with:
//
//	go run ./examples/reservation
package main

import (
	"fmt"
	"log"

	"repro/mod"
)

func main() {
	const (
		mediaMinutes = 90
		delayMinutes = 3
		L            = mediaMinutes / delayMinutes // 30 slots
		n            = 40                          // 40 booked start windows
		bufferSlots  = 10                          // set-top boxes can buffer 30 minutes
	)

	fmt.Printf("Lecture of %d minutes, guaranteed start within %d minutes (L = %d slots),\n", mediaMinutes, delayMinutes, L)
	fmt.Printf("%d reserved start windows, client buffer capped at %d slots.\n\n", n, bufferSlots)

	forest := mod.OfflineForestBuffered(L, bufferSlots, n)
	unbounded := mod.OfflineCost(L, n)
	fmt.Printf("optimal plan: %d full streams, total bandwidth %d slot-units (%.2f lecture streams)\n",
		forest.Streams(), forest.FullCost(), forest.NormalizedCost())
	fmt.Printf("cost of the unbounded-buffer optimum for comparison: %d slot-units\n\n", unbounded)

	fs, err := mod.BuildSchedule(forest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("receiving programs handed to the set-top boxes:")
	for slot := int64(0); slot < n; slot++ {
		p := fs.Programs[slot]
		fmt.Printf("  group %2d: streams %v  (buffer needed: %d slots)\n", slot, p.Path, p.MaxBuffer())
	}

	fmt.Println("\nchannel plan (start slot, parts broadcast):")
	for _, t := range forest.Trees {
		for _, nl := range t.LengthsReceiveTwo(L) {
			kind := "truncated"
			if nl.Root {
				kind = "full     "
			}
			fmt.Printf("  stream at slot %2d: %s, %2d parts\n", nl.Arrival, kind, nl.Length)
		}
	}

	res, err := mod.SimulateForest(forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation: %d clients, %d stalls, peak %d channels, max buffer %d slots\n",
		len(res.Clients), res.Stalls, res.PeakBandwidth, res.MaxBuffer)
	if res.Stalls > 0 {
		log.Fatal("the reservation plan would interrupt playback")
	}
	if res.MaxBuffer > bufferSlots {
		log.Fatalf("the plan needs %d slots of buffer, exceeding the cap", res.MaxBuffer)
	}
	fmt.Println("plan verified: uninterrupted playback for every reserved group")
}
