// Quickstart: compute the optimal delay-guaranteed broadcast plan for a
// single popular movie.
//
// A 2-hour movie with a guaranteed start-up delay of 15 minutes is L = 8
// slots long (the paper's own example).  This program computes the optimal
// merge cost, builds the optimal merge tree for a chosen horizon, prints the
// concrete broadcast schedule, and reports how much server bandwidth stream
// merging saves compared with plain batching.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mod"
)

func main() {
	const (
		L = 15 // media length in slots (e.g. a 2h movie with 8-minute delay)
		n = 8  // time horizon: 8 slots, one (possibly merged) stream per slot
	)

	fmt.Println("== Optimal merge cost (Eq. 6) ==")
	for i := int64(1); i <= n; i++ {
		fmt.Printf("  M(%d) = %d\n", i, mod.SlottedMergeCost(i))
	}

	fmt.Println("\n== Optimal merge forest (Theorems 7, 10, 12) ==")
	forest := mod.OfflineForest(L, n)
	fmt.Printf("  full streams: %d\n", forest.Streams())
	fmt.Printf("  full cost:    %d slot-units (%.2f complete media streams)\n",
		forest.FullCost(), forest.NormalizedCost())
	fmt.Printf("  avg bandwidth per client: %.2f channels\n", forest.AverageBandwidth())
	for _, t := range forest.Trees {
		fmt.Printf("  tree rooted at slot %d: %s\n", t.Arrival, t)
	}

	fmt.Println("\n== Concrete broadcast schedule (Fig. 3) ==")
	fs, err := mod.BuildSchedule(forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(fs.Diagram())
	if _, err := fs.Verify(); err != nil {
		log.Fatalf("schedule verification failed: %v", err)
	}
	fmt.Println("schedule verified: every client plays back without interruption")

	fmt.Println("\n== Savings vs. plain batching (Theorem 14) ==")
	b := mod.SlottedBatchingCost(L, n)
	fmt.Printf("  batching alone:        %d slot-units\n", b)
	fmt.Printf("  batching + merging:    %d slot-units\n", forest.FullCost())
	fmt.Printf("  bandwidth reduction:   %.1fx\n", float64(b)/float64(forest.FullCost()))
}
