// VoD server: an on-line evening at a video-on-demand service.
//
// Requests for tonight's most popular movie arrive as a Poisson process
// whose intensity ramps up toward prime time.  The operator guarantees a
// start-up delay of 1% of the movie length and must choose a serving
// strategy without knowing future arrivals.  This example replays the same
// request trace against four strategies — the paper's on-line
// delay-guaranteed algorithm, immediate-service dyadic merging, batched
// dyadic merging, and plain batching — and reports the bandwidth each one
// would have used, phase by phase.
//
// Run with:
//
//	go run ./examples/vodserver
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/arrivals"
	"repro/internal/batching"
	"repro/internal/dyadic"
	"repro/internal/online"
	"repro/internal/textplot"
)

func main() {
	const (
		delay = 0.01 // guaranteed start-up delay, as a fraction of the movie
		seed  = 2026
	)
	slotsPerMedia := int64(math.Round(1 / delay))

	// Three phases of the evening, each 20 movie-lengths long, with mean
	// inter-arrival times of 4%, 1%, and 0.2% of the movie length.
	phases := []struct {
		name   string
		lambda float64
		span   float64
	}{
		{"early evening (quiet)", 0.04, 20},
		{"ramp-up", 0.01, 20},
		{"prime time (busy)", 0.002, 20},
	}

	tab := textplot.NewTable("phase", "arrivals", "delay_guaranteed", "immediate_dyadic", "batched_dyadic", "pure_batching")
	var offset float64
	totalDG, totalImm, totalBat, totalPure := 0.0, 0.0, 0.0, 0.0
	for i, ph := range phases {
		tr := arrivals.Poisson(ph.lambda, ph.span, seed+int64(i))
		horizonSlots := int64(math.Round(ph.span / delay))

		dg := online.NormalizedCost(slotsPerMedia, horizonSlots)
		imm, err := dyadic.TotalCost(tr, 1.0, dyadic.GoldenPoisson())
		if err != nil {
			log.Fatal(err)
		}
		bat, err := dyadic.TotalBatchedCost(tr, 1.0, delay, dyadic.GoldenPoisson())
		if err != nil {
			log.Fatal(err)
		}
		pure := batching.BatchedCost(tr, delay)

		tab.AddRow(ph.name, len(tr), dg, imm, bat, pure)
		totalDG += dg
		totalImm += imm
		totalBat += bat
		totalPure += pure
		offset += ph.span
	}
	tab.AddRow("TOTAL", "", totalDG, totalImm, totalBat, totalPure)

	fmt.Printf("Movie with a %.0f%% guaranteed start-up delay (L = %d slots); bandwidth in\n", delay*100, slotsPerMedia)
	fmt.Println("complete movie streams per phase (lower is better):")
	fmt.Println()
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("What to notice (matching Figs. 11-12 of the paper):")
	fmt.Println("  * in the quiet phase the delay-guaranteed algorithm wastes streams on")
	fmt.Println("    empty slots, so the dyadic variants win;")
	fmt.Println("  * at prime time, when requests arrive much faster than the promised")
	fmt.Println("    delay, the delay-guaranteed algorithm matches the dyadic merging")
	fmt.Println("    algorithms while making no on-line decisions at all;")
	fmt.Println("  * plain batching is always the most expensive merging-free option.")
}
