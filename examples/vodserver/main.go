// VoD server: an on-line evening at a video-on-demand service.
//
// Requests for tonight's most popular movie arrive as a Poisson process
// whose intensity ramps up toward prime time.  The operator guarantees a
// start-up delay of 1% of the movie length and must choose a serving
// strategy without knowing future arrivals.  This example replays the same
// request trace against four strategies — the paper's on-line
// delay-guaranteed algorithm, immediate-service dyadic merging, batched
// dyadic merging, and plain batching — and reports the bandwidth each one
// would have used, phase by phase.  Every strategy is obtained from the
// public planner registry (mod.New); nothing touches the algorithm
// packages directly.
//
// Run with:
//
//	go run ./examples/vodserver
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/textplot"
	"repro/mod"
)

func main() {
	const (
		delay = 0.01 // guaranteed start-up delay, as a fraction of the movie
		seed  = 2026
	)
	slotsPerMedia := int64(math.Round(1 / delay))

	// The four on-line strategies, by registry name, in presentation order.
	strategies := []string{"online", "dyadic", "dyadic-batched", "batching"}
	planners := make(map[string]mod.Planner, len(strategies))
	for _, name := range strategies {
		planners[name] = mod.MustNew(name, mod.WithDelay(delay), mod.WithPoisson(true))
	}

	// Three phases of the evening, each 20 movie-lengths long, with mean
	// inter-arrival times of 4%, 1%, and 0.2% of the movie length.
	phases := []struct {
		name   string
		lambda float64
		span   float64
	}{
		{"early evening (quiet)", 0.04, 20},
		{"ramp-up", 0.01, 20},
		{"prime time (busy)", 0.002, 20},
	}

	ctx := context.Background()
	tab := textplot.NewTable("phase", "arrivals", "delay_guaranteed", "immediate_dyadic", "batched_dyadic", "pure_batching")
	totals := map[string]float64{}
	for i, ph := range phases {
		tr := mod.Poisson(ph.lambda, ph.span, seed+int64(i))
		inst := mod.Instance{Arrivals: tr, Horizon: ph.span}
		costs := map[string]float64{}
		for _, name := range strategies {
			plan, err := planners[name].Plan(ctx, inst)
			if err != nil {
				log.Fatal(err)
			}
			costs[name] = plan.Cost
			totals[name] += plan.Cost
		}
		tab.AddRow(ph.name, len(tr), costs["online"], costs["dyadic"], costs["dyadic-batched"], costs["batching"])
	}
	tab.AddRow("TOTAL", "", totals["online"], totals["dyadic"], totals["dyadic-batched"], totals["batching"])

	fmt.Printf("Movie with a %.0f%% guaranteed start-up delay (L = %d slots); bandwidth in\n", delay*100, slotsPerMedia)
	fmt.Println("complete movie streams per phase (lower is better):")
	fmt.Println()
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("What to notice (matching Figs. 11-12 of the paper):")
	fmt.Println("  * in the quiet phase the delay-guaranteed algorithm wastes streams on")
	fmt.Println("    empty slots, so the dyadic variants win;")
	fmt.Println("  * at prime time, when requests arrive much faster than the promised")
	fmt.Println("    delay, the delay-guaranteed algorithm matches the dyadic merging")
	fmt.Println("    algorithms while making no on-line decisions at all;")
	fmt.Println("  * plain batching is always the most expensive merging-free option.")
}
