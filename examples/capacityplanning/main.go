// Capacity planning: how much server bandwidth does a video-on-demand
// operator need for one popular title, as a function of the start-up delay
// it is willing to promise?
//
// This example sweeps the guaranteed start-up delay from 0.5% to 20% of the
// media length (the scenario of Fig. 1 in the paper) and prints, for each
// delay, the bandwidth of the optimal off-line schedule, of the on-line
// delay-guaranteed algorithm, and of plain batching, plus the peak number of
// simultaneously busy channels — the figure an operator actually provisions.
//
// Run with:
//
//	go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/textplot"
	"repro/mod"
)

func main() {
	const horizonMedia = 10.0 // plan for a 10-movie-lengths busy period

	delays := []float64{0.5, 1, 2, 5, 10, 15, 20}
	tab := textplot.NewTable("delay_%", "L_slots", "offline_streams", "online_streams", "batching_streams", "peak_channels", "max_client_buffer")

	for _, pct := range delays {
		L := int64(math.Round(100 / pct))
		n := int64(math.Round(horizonMedia * float64(L)))
		forest := mod.OfflineForest(L, n)
		fs, err := mod.BuildSchedule(forest)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fs.Verify(); err != nil {
			log.Fatalf("delay %.1f%%: %v", pct, err)
		}
		tab.AddRow(
			pct,
			L,
			forest.NormalizedCost(),
			mod.OnlineCost(L, n),
			float64(mod.SlottedBatchingCost(L, n))/float64(L),
			fs.PeakBandwidth(),
			forest.MaxBufferRequirement(),
		)
	}

	fmt.Println("Server capacity needed for one popular title over a busy period of")
	fmt.Printf("%.0f media lengths, as a function of the promised start-up delay:\n\n", horizonMedia)
	fmt.Print(tab.String())
	fmt.Println()
	fmt.Println("Reading the table: promising a 5% start-up delay (6 minutes on a 2h movie)")
	fmt.Println("cuts total bandwidth by an order of magnitude versus batching, and the")
	fmt.Println("simple static on-line algorithm stays within a few percent of the optimum.")
}
