// Live server: an evening of live admission control with per-title
// serving strategies.
//
// A Media-on-Demand operator serves a 12-title Zipf catalog from a server
// with a hard budget of 35 channels.  Requests arrive as a nonhomogeneous
// Poisson process that ramps up 4x toward prime time.  Instead of declining
// requests when the budget fills, the admission controller applies the
// Section 5 trade live: it scales the guaranteed start-up delay of the
// requested object up step by step, so every client is still served — just
// with a slightly longer (but still guaranteed) wait — and only rejects
// once an object's delay has been stretched to its configured maximum.
//
// Titles pick their planner family individually: the hottest titles run
// the paper's oblivious on-line forest (bounded bandwidth regardless of
// load), the mid-catalog uses the hybrid's mode-switching timeline, and
// the long tail is served by epoch-replanned batched dyadic merging —
// empty slots cost nothing there.  The example replays the trace in
// virtual time through the sharded event loops (the same deterministic
// path the equivalence tests pin against the batch planners), drains the
// server, and prints the admission report, the per-title strategies and
// delay scales the evening ended with, and the real-time channel profile.
//
// Run with:
//
//	go run ./examples/liveserver
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/mod"
)

func main() {
	const (
		titles  = 12
		delay   = 0.02 // offered start-up delay: 2% of the media length
		horizon = 30.0 // the evening, in media lengths
		budget  = 35   // channel cap
		seed    = 2026
	)
	// Strategy routing by popularity rank: the head of the catalog gets
	// the on-line forest, the middle the hybrid, the tail batched dyadic.
	cat := mod.ZipfCatalog(titles, 1.0, delay, 1.0)
	for i := range cat {
		switch {
		case i < 4:
			cat[i].Strategy = "online"
		case i < 8:
			cat[i].Strategy = "hybrid"
		default:
			cat[i].Strategy = "dyadic-batched"
		}
	}
	srv, err := mod.NewServer(mod.ServeConfig{
		Catalog:       cat,
		MaxChannels:   budget,
		DegradeStep:   1.25,
		MaxDelayScale: 32,
		EpochSlots:    250, // tail titles replan every 5 media lengths
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon:          horizon,
		MeanInterArrival: 0.01, // aggregate: one request every 1% of a media length
		Kind:             mod.RampArrivals,
		RampFactor:       4,
		Seed:             seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Serving %d titles under a %d-channel budget; %d requests over %.0f media lengths.\n\n",
		titles, budget, len(reqs), horizon)

	rep, err := mod.RunDriver(context.Background(), srv, reqs, horizon)
	if err != nil {
		log.Fatal(err)
	}
	rep.Render(os.Stdout)

	degradedTitles := 0
	for _, o := range rep.Drain.Objects {
		if o.Scale > 1 {
			degradedTitles++
		}
	}
	fmt.Printf("\n%d of %d titles ended the evening at a degraded delay; nobody waited longer than their ticket promised.\n",
		degradedTitles, titles)
}
