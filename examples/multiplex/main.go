// Multiplex: operating a whole catalog on a fixed channel budget.
//
// Section 5 of the paper argues that the delay-guaranteed algorithm is
// particularly attractive for a server carrying many media objects, because
// its bandwidth is bounded and tunable: if the channel budget is about to be
// exceeded, the operator simply raises the guaranteed start-up delay (for
// everything, or only for unpopular titles) instead of rejecting requests.
// It also suggests a hybrid server that falls back to an opportunistic
// merging algorithm when load is low.
//
// This example exercises both extensions through the public facade: it
// plans a 12-title catalog with Zipf popularity against a hard channel
// budget, compares uniform versus popularity-aware delay assignments, and
// runs the hybrid planner (mod.New("hybrid")) over a bursty evening for
// the most popular title.
//
// Run with:
//
//	go run ./examples/multiplex
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/textplot"
	"repro/mod"
)

func main() {
	const (
		titles      = 12
		mediaLength = 1.0  // hours, say
		baseDelay   = 0.01 // 1% of the media length
		horizon     = 8.0  // plan an 8-hour evening
		budget      = 90   // channels available on the head-end
	)

	catalog := mod.ZipfCatalog(titles, mediaLength, baseDelay, 1.0)

	fmt.Printf("Catalog of %d titles, base delay %.0f%%, %d-channel budget, %.0fh horizon.\n\n",
		titles, baseDelay*100, budget, horizon)

	// 1. Everything at the base delay: what does the peak look like?
	basePlan, err := mod.PlanCatalog(catalog, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform %.0f%% delay:  peak %d channels, average %.1f channels\n",
		baseDelay*100, basePlan.Peak, basePlan.AverageChannels())

	// 2. Scale the delay uniformly until the budget is met.
	fit, err := mod.FitDelays(catalog, horizon, budget, 1.25, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform fit:         peak %d channels with every delay scaled %.2fx (%.1f%% delay)\n",
		fit.Plan.Peak, fit.Scale, baseDelay*fit.Scale*100)

	// 3. Popularity-aware delays: popular titles keep the 1% promise,
	// unpopular ones degrade gracefully.
	aware := mod.PopularityAwareDelays(catalog, baseDelay, 8)
	awarePlan, err := mod.PlanCatalog(aware, horizon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("popularity-aware:    peak %d channels (top title keeps the %.0f%% promise)\n\n",
		awarePlan.Peak, baseDelay*100)

	tab := textplot.NewTable("title", "popularity", "delay_%", "own_streams", "own_peak")
	for _, op := range awarePlan.Objects {
		tab.AddRow(op.Object.Name, op.Object.Popularity, op.Object.Delay*100, op.Streams, op.Peak)
	}
	fmt.Print(tab.String())

	// 4. Hybrid serving of the most popular title over a bursty evening.
	quiet := mod.Poisson(0.06, 4, 7)
	var busy []float64
	for _, t := range mod.Poisson(0.002, 4, 8) {
		busy = append(busy, 4+t)
	}
	trace := mod.MergeTraces(quiet, busy)
	hplan, err := mod.MustNew("hybrid", mod.WithMediaLength(mediaLength), mod.WithDelay(baseDelay)).
		Plan(context.Background(), mod.Instance{Arrivals: trace, Horizon: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid serving of %s over a quiet-then-busy evening (%d requests):\n",
		catalog[0].Name, len(trace))
	fmt.Printf("  hybrid:                %.1f movie streams (%.0f%% of the evening in delay-guaranteed mode)\n",
		hplan.Cost, hplan.Aux["loaded_fraction"]*100)
	fmt.Printf("  pure delay-guaranteed: %.1f movie streams\n", hplan.Aux["pure_delay_guaranteed"])
	fmt.Printf("  pure batched dyadic:   %.1f movie streams\n", hplan.Aux["pure_dyadic"])
}
