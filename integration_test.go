package repro

// Cross-module integration tests: each test exercises a complete pipeline
// spanning several packages (algorithm -> schedule -> channel assignment ->
// slot-accurate simulation -> bandwidth accounting), the way the example
// programs and the experiment harness use the library.

import (
	"context"
	"math"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/core"
	"repro/internal/dyadic"
	"repro/internal/experiments"
	"repro/internal/hybrid"
	"repro/internal/mergetree"
	"repro/internal/multiobject"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// TestIntegrationOfflinePipeline runs the full off-line pipeline for the
// paper's running example and a larger instance: optimal forest ->
// broadcast schedule -> receiving programs -> channel assignment ->
// simulator, and checks that every layer agrees on the cost and that
// playback is uninterrupted.
func TestIntegrationOfflinePipeline(t *testing.T) {
	for _, c := range []struct{ L, n int64 }{{15, 8}, {120, 500}} {
		forest := core.OptimalForest(c.L, c.n)
		if err := forest.ValidateConsecutive(); err != nil {
			t.Fatalf("forest invalid: %v", err)
		}
		fs, err := schedule.Build(forest)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		if _, err := fs.Verify(); err != nil {
			t.Fatalf("verify: %v", err)
		}
		channels := fs.AssignChannels()
		if err := fs.ValidateChannels(channels); err != nil {
			t.Fatalf("channels: %v", err)
		}
		res, err := sim.RunSchedule(fs)
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		if res.Stalls != 0 {
			t.Fatalf("L=%d n=%d: %d stalls", c.L, c.n, res.Stalls)
		}
		want := core.FullCost(c.L, c.n)
		if forest.FullCost() != want || fs.TotalBandwidth() != want || res.TotalBandwidth != want {
			t.Fatalf("cost disagreement: forest %d, schedule %d, sim %d, closed form %d",
				forest.FullCost(), fs.TotalBandwidth(), res.TotalBandwidth, want)
		}
		if len(channels) != fs.PeakBandwidth() || res.PeakBandwidth != fs.PeakBandwidth() {
			t.Fatalf("peak disagreement: channels %d, schedule %d, sim %d",
				len(channels), fs.PeakBandwidth(), res.PeakBandwidth)
		}
	}
}

// TestIntegrationOnlineVsOfflineEndToEnd verifies the on-line algorithm's
// competitive behaviour end to end: its simulated bandwidth stays within the
// Theorem 22 bound of the simulated off-line optimum.
func TestIntegrationOnlineVsOfflineEndToEnd(t *testing.T) {
	const L, n = 50, 2600 // n > L^2 + 2 so Theorem 22 applies
	onlineRes, err := sim.RunForest(online.NewServer(L).Forest(n))
	if err != nil {
		t.Fatal(err)
	}
	offlineRes, err := sim.RunForest(core.OptimalForest(L, n))
	if err != nil {
		t.Fatal(err)
	}
	if onlineRes.Stalls != 0 || offlineRes.Stalls != 0 {
		t.Fatalf("stalls in simulated schedules")
	}
	ratio := float64(onlineRes.TotalBandwidth) / float64(offlineRes.TotalBandwidth)
	if bound := online.TheoremBound(L, n); ratio > bound {
		t.Errorf("simulated ratio %.4f exceeds Theorem 22 bound %.4f", ratio, bound)
	}
	if ratio < 1 {
		t.Errorf("on-line beat the off-line optimum: %.4f", ratio)
	}
}

// TestIntegrationPolicyComparisonConsistency cross-checks the policy facade
// against the underlying packages on one trace.
func TestIntegrationPolicyComparisonConsistency(t *testing.T) {
	trace := arrivals.Poisson(0.004, 8, 42)
	const mediaLen, delay, horizon = 1.0, 0.01, 8.0
	costs, err := policy.Compare(context.Background(), policy.Standard(mediaLen, delay, true), trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Delay-guaranteed: must equal the online package's normalized cost.
	wantDG := online.NormalizedCost(100, 800)
	if math.Abs(costs["delay-guaranteed"]-wantDG) > 1e-9 {
		t.Errorf("policy facade DG cost %v != online package %v", costs["delay-guaranteed"], wantDG)
	}
	// Immediate dyadic: must equal the dyadic package's cost.
	wantDy, err := dyadic.TotalCost(trace, mediaLen, dyadic.GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costs["immediate dyadic"]-wantDy) > 1e-9 {
		t.Errorf("policy facade dyadic cost %v != dyadic package %v", costs["immediate dyadic"], wantDy)
	}
	// Hybrid: must match the hybrid package.
	hres, err := hybrid.Run(trace, horizon, hybrid.DefaultConfig(mediaLen, delay))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costs["hybrid"]-hres.TotalCost) > 1e-9 {
		t.Errorf("policy facade hybrid cost %v != hybrid package %v", costs["hybrid"], hres.TotalCost)
	}
}

// TestIntegrationGeneralArrivalsLowerBound checks, end to end, that the
// general-arrivals off-line optimum lower-bounds the on-line heuristics on a
// batched trace and that its forest verifies as a receive-two schedule after
// snapping to the slot grid.
func TestIntegrationGeneralArrivalsLowerBound(t *testing.T) {
	trace := arrivals.Poisson(0.02, 3, 5)
	const mediaLen, delay = 1.0, 0.02
	batched := trace.BatchTimes(delay)
	res, err := offline.OptimalForest(batched, mediaLen, offline.ReceiveTwo)
	if err != nil {
		t.Fatal(err)
	}
	dy, err := dyadic.TotalBatchedCost(trace, mediaLen, delay, dyadic.GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if res.NormalizedCost() > dy+1e-9 {
		t.Errorf("exact optimum %v exceeds batched dyadic %v", res.NormalizedCost(), dy)
	}
	// Snap the batched (slot-end) times onto an integer slot grid and verify
	// the resulting integer forest delivers playback: the general optimum
	// over slot-aligned arrivals is a valid delay-guaranteed schedule.
	L := int64(math.Round(mediaLen / delay))
	intForest := mergetree.NewForest(L)
	for _, rt := range res.Forest.Trees {
		intForest.Add(snapTree(rt, delay))
	}
	if err := intForest.Validate(); err != nil {
		t.Fatalf("snapped forest invalid: %v", err)
	}
	fs, err := schedule.Build(intForest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Verify(); err != nil {
		t.Fatalf("snapped schedule verification failed: %v", err)
	}
}

func snapTree(rt *mergetree.RTree, delay float64) *mergetree.Tree {
	it := mergetree.New(int64(math.Round(rt.Arrival / delay)))
	for _, c := range rt.Children {
		it.AddChild(snapTree(c, delay))
	}
	return it
}

// TestIntegrationMultiObjectBudget exercises the Section 5 extension end to
// end: the catalog plan's aggregate busy time matches per-object on-line
// costs, and fitting a channel budget yields a plan whose peak respects it.
func TestIntegrationMultiObjectBudget(t *testing.T) {
	cat := multiobject.ZipfCatalog(6, 1, 0.02, 1)
	plan, err := multiobject.Build(cat, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check one object's stream count against the online package.
	want := online.NormalizedCost(50, 300)
	if math.Abs(plan.Objects[0].Streams-want) > 1e-9 {
		t.Errorf("object-01 streams %v != online cost %v", plan.Objects[0].Streams, want)
	}
	budget := plan.Peak * 3 / 4
	if budget < 1 {
		budget = 1
	}
	fit, err := multiobject.FitDelays(cat, 6, budget, 1.2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Plan.Peak > budget {
		t.Errorf("fitted peak %d exceeds budget %d", fit.Plan.Peak, budget)
	}
}

// TestIntegrationExperimentsAgainstPackages spot-checks the experiment
// harness against direct package calls so the recorded EXPERIMENTS.md values
// stay tied to the library.
func TestIntegrationExperimentsAgainstPackages(t *testing.T) {
	resM := experiments.TableM(16)
	if resM.Table.Rows[7][1] != "21" || core.MergeCost(8) != 21 {
		t.Errorf("experiment table and core package disagree on M(8)")
	}
	fig1 := experiments.Fig1(experiments.Fig1Config{DelayPercents: []float64{10}, HorizonMedia: 10})
	wantOffline := float64(core.FullCost(10, 100)) / 10
	if math.Abs(fig1.Series[0].Y[0]-wantOffline) > 1e-9 {
		t.Errorf("Fig. 1 experiment %v != direct computation %v", fig1.Series[0].Y[0], wantOffline)
	}
}
