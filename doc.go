// Package repro is the root of a from-scratch Go reproduction of
//
//	Amotz Bar-Noy, Justin Goshi, Richard E. Ladner.
//	"Off-line and on-line guaranteed start-up delay for Media-on-Demand
//	with stream merging."  SPAA 2003 (extended version: Journal of
//	Discrete Algorithms 4 (2006) 72-105).
//
// The public API is the mod package (planner registry, functional options,
// context-aware planning, and wrappers over every other subsystem); the
// implementation lives under internal/ (core algorithms, baselines,
// delivery simulator, live serving layer, experiment harness), executables
// under cmd/, runnable scenarios under examples/, and the benchmark harness
// that regenerates every table and figure of the paper in bench_test.go.
// See README.md for the system inventory and measured results, and
// DESIGN.md for the layer-by-layer architecture.
package repro
