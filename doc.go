// Package repro is the root of a from-scratch Go reproduction of
//
//	Amotz Bar-Noy, Justin Goshi, Richard E. Ladner.
//	"Off-line and on-line guaranteed start-up delay for Media-on-Demand
//	with stream merging."  SPAA 2003 (extended version: Journal of
//	Discrete Algorithms 4 (2006) 72-105).
//
// The library lives under internal/ (core algorithms, baselines, delivery
// simulator, experiment harness), executables under cmd/, runnable scenarios
// under examples/, and the benchmark harness that regenerates every table
// and figure of the paper in bench_test.go.  See README.md, DESIGN.md, and
// EXPERIMENTS.md for the system inventory and the paper-vs-measured record.
package repro
