package repro

// Smoke tests for the cmd/ binaries: each main path is compiled and run
// with tiny flags so a CLI regression (flag rename, broken mode, panic on
// startup) is caught by `go test ./...` rather than by a user.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// buildCmd compiles cmd/<name> into the test's temp dir and returns the
// binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCommandSmoke(t *testing.T) {
	cases := []struct {
		cmd  string
		args []string
		want []string // substrings the output must contain
	}{
		{"modsim", []string{"-mode", "online", "-L", "15", "-n", "40"},
			[]string{"algorithm:            online", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "offline", "-L", "15", "-n", "20"},
			[]string{"algorithm:            offline", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "workload", "-objects", "2", "-delay", "10", "-lambda", "5",
			"-horizon", "2", "-poisson", "-seed", "7"},
			[]string{"server peak:", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "compare", "-delay", "2", "-lambda", "4", "-horizon", "5", "-seed", "3"},
			[]string{"delay-guaranteed:", "offline optimum:"}},
		{"modexp", []string{"-list"},
			[]string{"fig11", "workload-sim"}},
		{"modtables", []string{"-max", "8"},
			[]string{"M(n)"}},
		{"modtables", []string{"-fullcost", "-L", "15", "-n", "8"},
			[]string{"Theorem 12", "full_cost"}},
		{"modtree", []string{"-n", "5", "-L", "8", "-diagram"},
			[]string{"optimal merge tree", "schedule verified"}},
		{"modserve", []string{"-mode", "bench", "-objects", "3", "-delay", "5", "-lambda", "2",
			"-horizon", "2", "-seed", "5", "-strategies", "online", "-workloads", "poisson", "-out", ""},
			[]string{"requests:", "server peak:", "throughput:", "replans:"}},
		{"modserve", []string{"-mode", "bench", "-objects", "3", "-delay", "5", "-lambda", "2",
			"-horizon", "2", "-seed", "5", "-strategies", "online,dyadic-batched,batching",
			"-workloads", "poisson,flash", "-shardgrid", "1,2", "-out", "@TMP@/BENCH_serve.json"},
			[]string{"strategy online", "strategy dyadic-batched", "strategy batching",
				"workload Poisson", "workload flash crowd", "BENCH_serve.json (4 cells, 3 strategies)"}},
		{"modserve", []string{"-mode", "smoke", "-objects", "3", "-delay", "5", "-lambda", "2", "-horizon", "2"},
			[]string{"served over HTTP", "metrics scrape ok", "smoke ok"}},
		{"modlint", []string{"-list"},
			[]string{"facadeonly", "shardloop", "ctxflow", "errwrap", "noalloc", "detrand"}},
		{"modlint", []string{"./mod/..."},
			[]string{}},
		{"modlint", []string{"-V=full"},
			[]string{"modlint version v1 buildID="}},
	}
	// Build each needed binary once, under the parent test so the temp dirs
	// outlive the subtests.
	bins := map[string]string{}
	for _, tc := range cases {
		if _, ok := bins[tc.cmd]; !ok {
			bins[tc.cmd] = buildCmd(t, tc.cmd)
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cmd+"_"+strings.Join(tc.args, "_"), func(t *testing.T) {
			// "@TMP@" in an argument is replaced with a per-test temp dir
			// (used by bench's -out so artifacts never land in the repo).
			args := make([]string, len(tc.args))
			var tmp string
			for i, a := range tc.args {
				if strings.Contains(a, "@TMP@") {
					if tmp == "" {
						tmp = t.TempDir()
					}
					a = strings.ReplaceAll(a, "@TMP@", tmp)
				}
				args[i] = a
			}
			out, err := exec.Command(bins[tc.cmd], args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tc.cmd, args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s %v output missing %q:\n%s", tc.cmd, args, want, out)
				}
			}
			if tmp != "" {
				blob, err := os.ReadFile(filepath.Join(tmp, "BENCH_serve.json"))
				if err != nil {
					t.Fatalf("bench JSON missing: %v", err)
				}
				var parsed benchGridFile
				if err := json.Unmarshal(blob, &parsed); err != nil {
					t.Fatalf("bench JSON does not parse: %v\n%s", err, blob)
				}
				if parsed.Version != 4 {
					t.Fatalf("bench JSON version %d, want 4:\n%s", parsed.Version, blob)
				}
				if len(parsed.Grid) != 4 { // 2 workloads x 1 size x 2 shard counts
					t.Fatalf("bench JSON has %d grid cells, want 4:\n%s", len(parsed.Grid), blob)
				}
				for _, cell := range parsed.Grid {
					if len(cell.Results) != 3 {
						t.Fatalf("cell %s/%d-shard has %d results, want 3:\n%s",
							cell.Workload, cell.Shards, len(cell.Results), blob)
					}
					for _, r := range cell.Results {
						if r.ReqsPerSec <= 0 || r.BatchReqsPerSec <= 0 || r.CostStreams <= 0 {
							t.Errorf("bench row %+v has non-positive throughput or cost", r)
						}
						// Stage metering is forced on in bench mode, so
						// the plan-stage decomposition must be populated
						// (every admission plans); no backpressure is
						// configured, so no request may be pressure-refused.
						if r.PlanP99US <= 0 {
							t.Errorf("bench row %+v has no plan-stage latency despite metering", r)
						}
						if r.RejectedPressure != 0 {
							t.Errorf("bench row %+v reports pressure rejects without -pressure", r)
						}
						if r.Strategy != "online" {
							// Epoch-based strategies replan at least at drain,
							// and warm-start replanning is the default.
							if r.Replans <= 0 || r.WarmReplans != r.Replans {
								t.Errorf("%s row %+v: want warm_replans == replans > 0", cell.Workload, r)
							}
							// The durable columns are measured on the
							// "online" rows only.
							if r.DurableReqsPerSec != 0 || r.WALFlushesPerReq != 0 {
								t.Errorf("%s row %+v: durable columns on a non-online row", cell.Workload, r)
							}
						} else {
							// Version 4: online rows carry the durable
							// group-commit columns.  Throughputs must be
							// positive, and group commit must coalesce —
							// strictly fewer than one store flush per
							// acknowledged request.
							if r.DurableReqsPerSec <= 0 || r.DurablePerAckReqsPerSec <= 0 {
								t.Errorf("%s row %+v: non-positive durable throughput", cell.Workload, r)
							}
							if r.WALFlushesPerReq <= 0 || r.WALFlushesPerReq >= 1 {
								t.Errorf("%s row %+v: wal_flushes_per_req = %v, want in (0, 1)",
									cell.Workload, r, r.WALFlushesPerReq)
							}
						}
					}
				}
			}
		})
	}
}

// benchGridFile mirrors the version-4 BENCH_serve.json grid shape, with
// every field the smoke tests assert on.
type benchGridFile struct {
	Version int `json:"version"`
	Grid    []struct {
		Workload string `json:"workload"`
		Objects  int    `json:"objects"`
		Shards   int    `json:"shards"`
		Seed     int64  `json:"seed"`
		Requests int    `json:"requests"`
		Results  []struct {
			Strategy         string  `json:"strategy"`
			Requests         int     `json:"requests"`
			Admitted         int     `json:"admitted"`
			RejectedPressure int64   `json:"rejected_pressure"`
			ReqsPerSec       float64 `json:"reqs_per_sec"`
			BatchReqsPerSec  float64 `json:"batch_reqs_per_sec"`
			P99LatencyUS     float64 `json:"p99_admission_latency_us"`
			QueueP50US       float64 `json:"queue_p50_us"`
			QueueP99US       float64 `json:"queue_p99_us"`
			PlanP50US        float64 `json:"plan_p50_us"`
			PlanP99US        float64 `json:"plan_p99_us"`
			ReplanP50US      float64 `json:"replan_p50_us"`
			ReplanP99US      float64 `json:"replan_p99_us"`
			Replans          int64   `json:"replans"`
			WarmReplans      int64   `json:"warm_replans"`
			CellsReused      int64   `json:"cells_reused"`
			CellsRecomputed  int64   `json:"cells_recomputed"`
			CostStreams      float64 `json:"cost_streams"`
			Peak             int     `json:"peak"`

			DurableReqsPerSec       float64 `json:"durable_reqs_per_sec"`
			DurablePerAckReqsPerSec float64 `json:"durable_per_ack_reqs_per_sec"`
			WALFlushesPerReq        float64 `json:"wal_flushes_per_req"`
		} `json:"results"`
	} `json:"grid"`
}

// TestBenchGridDeterminism pins the bench matrix's reproducibility: two
// runs with the same -seed produce byte-identical grids once the timing
// columns (throughput, latency, replan clocks) are scrubbed — cell seeds
// derive from grid coordinates only, never shard count or scheduling
// order.
func TestBenchGridDeterminism(t *testing.T) {
	bin := buildCmd(t, "modserve")
	run := func(out string) benchGridFile {
		t.Helper()
		args := []string{"-mode", "bench", "-objects", "3", "-delay", "5", "-lambda", "2",
			"-horizon", "2", "-seed", "9", "-strategies", "online,offline,batching",
			"-workloads", "poisson,flash", "-shardgrid", "1,2", "-out", out}
		if o, err := exec.Command(bin, args...).CombinedOutput(); err != nil {
			t.Fatalf("modserve %v: %v\n%s", args, err, o)
		}
		blob, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		var parsed benchGridFile
		if err := json.Unmarshal(blob, &parsed); err != nil {
			t.Fatalf("bench JSON does not parse: %v\n%s", err, blob)
		}
		// Scrub wall-clock-derived columns (throughput, latency, and the
		// stage-histogram quantiles); everything left must replay
		// identically.
		for gi := range parsed.Grid {
			for ri := range parsed.Grid[gi].Results {
				r := &parsed.Grid[gi].Results[ri]
				r.ReqsPerSec, r.BatchReqsPerSec, r.P99LatencyUS = 0, 0, 0
				r.QueueP50US, r.QueueP99US = 0, 0
				r.PlanP50US, r.PlanP99US = 0, 0
				r.ReplanP50US, r.ReplanP99US = 0, 0
				r.DurableReqsPerSec, r.DurablePerAckReqsPerSec, r.WALFlushesPerReq = 0, 0, 0
			}
		}
		return parsed
	}
	tmp := t.TempDir()
	a := run(filepath.Join(tmp, "a.json"))
	b := run(filepath.Join(tmp, "b.json"))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("bench grid is not deterministic across identical runs:\nfirst  %+v\nsecond %+v", a, b)
	}
}

// TestModserveDurableSmoke drives the durability flags end to end: a
// smoke run with -snapshot-dir leaves snapshot and WAL files behind (the
// admin snapshot route is exercised on the way out), and a second run
// with -restore warm-restarts from them cleanly.
func TestModserveDurableSmoke(t *testing.T) {
	bin := buildCmd(t, "modserve")
	dir := filepath.Join(t.TempDir(), "snap")
	base := []string{"-mode", "smoke", "-objects", "3", "-delay", "5", "-lambda", "2",
		"-horizon", "2", "-seed", "5", "-snapshot-dir", dir}

	out, err := exec.Command(bin, base...).CombinedOutput()
	if err != nil {
		t.Fatalf("modserve %v: %v\n%s", base, err, out)
	}
	for _, want := range []string{"durable snapshot saved", "smoke ok"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("first run output missing %q:\n%s", want, out)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("snapshot dir unreadable: %v", err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snapshot-") {
			snaps++
		}
	}
	if snaps == 0 {
		t.Fatalf("no snapshot files in %s after durable smoke run (found %v)", dir, entries)
	}

	again := append(append([]string{}, base...), "-restore")
	out, err = exec.Command(bin, again...).CombinedOutput()
	if err != nil {
		t.Fatalf("modserve %v: %v\n%s", again, err, out)
	}
	for _, want := range []string{"restored durable state", "smoke ok"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("restore run output missing %q:\n%s", want, out)
		}
	}
}

// TestBenchCSVDump pins the -csv per-request dump: the header names every
// column, each replayed request becomes exactly one row stamped with its
// grid coordinates, and the stage-timing columns are populated (plan time
// is measured for every metered admission).
func TestBenchCSVDump(t *testing.T) {
	bin := buildCmd(t, "modserve")
	tmp := t.TempDir()
	csvPath := filepath.Join(tmp, "requests.csv")
	args := []string{"-mode", "bench", "-objects", "3", "-delay", "5", "-lambda", "2",
		"-horizon", "2", "-seed", "5", "-strategies", "online,batching",
		"-workloads", "poisson", "-out", "", "-csv", csvPath}
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("modserve %v: %v\n%s", args, err, out)
	}
	blob, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("csv dump missing: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
	const wantHeader = "workload,objects,shards,strategy,seq,object,t,outcome,epoch,slot,delay,start_at,queue_ns,plan_ns,replan_ns,submit_ns"
	if lines[0] != wantHeader {
		t.Fatalf("csv header = %q, want %q", lines[0], wantHeader)
	}
	cols := len(strings.Split(wantHeader, ","))
	perStrategy := map[string]int{}
	for i, line := range lines[1:] {
		f := strings.Split(line, ",")
		if len(f) != cols {
			t.Fatalf("csv row %d has %d fields, want %d: %q", i+1, len(f), cols, line)
		}
		if f[0] != "Poisson" || f[1] != "3" {
			t.Errorf("csv row %d grid coordinates = %s/%s, want Poisson/3", i+1, f[0], f[1])
		}
		perStrategy[f[3]]++
		if f[7] != "admitted" && f[7] != "degraded" && f[7] != "rejected" {
			t.Errorf("csv row %d outcome = %q", i+1, f[7])
		}
		if sub := f[15]; sub == "" || sub == "0" || strings.HasPrefix(sub, "-") {
			t.Errorf("csv row %d has no submit round-trip timing: %q", i+1, line)
		}
	}
	if len(perStrategy) != 2 || perStrategy["online"] == 0 || perStrategy["batching"] == 0 {
		t.Errorf("csv rows per strategy = %v, want both online and batching", perStrategy)
	}
	if perStrategy["online"] != perStrategy["batching"] {
		t.Errorf("csv row counts differ per strategy: %v (same trace each)", perStrategy)
	}
	if !strings.Contains(string(out), "wrote per-request dump") {
		t.Errorf("bench output does not announce the csv dump:\n%s", out)
	}
}

// TestCommandSmokeBadFlags pins non-zero exits for invalid invocations so
// scripts can rely on the exit code.
func TestCommandSmokeBadFlags(t *testing.T) {
	bins := map[string]string{}
	for _, tc := range []struct {
		cmd  string
		args []string
	}{
		{"modsim", []string{"-mode", "nope"}},
		{"modserve", []string{"-mode", "nope"}},
		{"modserve", []string{"-mode", "serve", "-snapshot-dir", "/dev/null/nope"}},
		{"modserve", []string{"-mode", "smoke", "-restore"}},
		{"modserve", []string{"-mode", "bench", "-arrivals", "nope"}},
		{"modserve", []string{"-mode", "bench", "-workloads", "nope"}},
		{"modserve", []string{"-mode", "bench", "-shardgrid", "1,x"}},
		{"modserve", []string{"-mode", "bench", "-sync", "nope"}},
		{"modlint", []string{"-run", "nope"}},
	} {
		bin, ok := bins[tc.cmd]
		if !ok {
			bin = buildCmd(t, tc.cmd)
			bins[tc.cmd] = bin
		}
		if out, err := exec.Command(bin, tc.args...).CombinedOutput(); err == nil {
			t.Errorf("%s %v exited 0, want failure:\n%s", tc.cmd, tc.args, out)
		}
	}
}
