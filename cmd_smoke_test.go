package repro

// Smoke tests for the cmd/ binaries: each main path is compiled and run
// with tiny flags so a CLI regression (flag rename, broken mode, panic on
// startup) is caught by `go test ./...` rather than by a user.

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles cmd/<name> into the test's temp dir and returns the
// binary path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building cmd/%s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCommandSmoke(t *testing.T) {
	cases := []struct {
		cmd  string
		args []string
		want []string // substrings the output must contain
	}{
		{"modsim", []string{"-mode", "online", "-L", "15", "-n", "40"},
			[]string{"algorithm:            online", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "offline", "-L", "15", "-n", "20"},
			[]string{"algorithm:            offline", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "workload", "-objects", "2", "-delay", "10", "-lambda", "5",
			"-horizon", "2", "-poisson", "-seed", "7"},
			[]string{"server peak:", "playback stalls:      0"}},
		{"modsim", []string{"-mode", "compare", "-delay", "2", "-lambda", "4", "-horizon", "5", "-seed", "3"},
			[]string{"delay-guaranteed:", "offline optimum:"}},
		{"modexp", []string{"-list"},
			[]string{"fig11", "workload-sim"}},
		{"modtables", []string{"-max", "8"},
			[]string{"M(n)"}},
		{"modtables", []string{"-fullcost", "-L", "15", "-n", "8"},
			[]string{"Theorem 12", "full_cost"}},
		{"modtree", []string{"-n", "5", "-L", "8", "-diagram"},
			[]string{"optimal merge tree", "schedule verified"}},
		{"modserve", []string{"-mode", "bench", "-objects", "3", "-delay", "5", "-lambda", "2",
			"-horizon", "2", "-seed", "5"},
			[]string{"requests:", "server peak:"}},
		{"modserve", []string{"-mode", "smoke", "-objects", "3", "-delay", "5", "-lambda", "2", "-horizon", "2"},
			[]string{"served over HTTP", "smoke ok"}},
	}
	// Build each needed binary once, under the parent test so the temp dirs
	// outlive the subtests.
	bins := map[string]string{}
	for _, tc := range cases {
		if _, ok := bins[tc.cmd]; !ok {
			bins[tc.cmd] = buildCmd(t, tc.cmd)
		}
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.cmd+"_"+strings.Join(tc.args, "_"), func(t *testing.T) {
			out, err := exec.Command(bins[tc.cmd], tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", tc.cmd, tc.args, err, out)
			}
			for _, want := range tc.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s %v output missing %q:\n%s", tc.cmd, tc.args, want, out)
				}
			}
		})
	}
}

// TestCommandSmokeBadFlags pins non-zero exits for invalid invocations so
// scripts can rely on the exit code.
func TestCommandSmokeBadFlags(t *testing.T) {
	bins := map[string]string{}
	for _, tc := range []struct {
		cmd  string
		args []string
	}{
		{"modsim", []string{"-mode", "nope"}},
		{"modserve", []string{"-mode", "nope"}},
		{"modserve", []string{"-mode", "bench", "-arrivals", "nope"}},
	} {
		bin, ok := bins[tc.cmd]
		if !ok {
			bin = buildCmd(t, tc.cmd)
			bins[tc.cmd] = bin
		}
		if out, err := exec.Command(bin, tc.args...).CombinedOutput(); err == nil {
			t.Errorf("%s %v exited 0, want failure:\n%s", tc.cmd, tc.args, out)
		}
	}
}
