// Package mergetree defines the merge-tree and merge-forest structures used
// by all stream-merging algorithms in this repository.
//
// A merge tree (Section 2 of the paper) is an ordered labeled tree whose
// nodes are client arrival times.  The root is the earliest arrival in the
// tree and owns a full stream of length L; every non-root node x owns a
// truncated stream whose length is dictated by the stream-merging rules:
//
//	receive-two model:  l(x) = 2 z(x) − x − p(x)      (Lemma 1)
//	receive-all model:  w(x) = z(x) − p(x)            (Lemma 17)
//
// where p(x) is the parent of x and z(x) is the right-most (latest) arrival
// in the subtree rooted at x.  The merge cost of a tree is the sum of the
// non-root lengths; the full cost of a forest adds L per root.
//
// The package provides slot-valued trees (Tree, arrivals are integers, used
// by the optimal off-line and on-line algorithms) and real-valued trees
// (RTree, arrivals are float64, used by the dyadic on-line baseline whose
// clients arrive at arbitrary times).
package mergetree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Tree is a merge tree over integer (slot) arrival times.  The zero value is
// not useful; construct trees with New or by parsing.
type Tree struct {
	// Arrival is the slot index at which the stream owned by this node
	// starts (and at which the corresponding batch of clients arrives).
	Arrival int64
	// Children are the direct merges into this stream, ordered by arrival.
	Children []*Tree
}

// New returns a single-node merge tree for the given arrival.
func New(arrival int64) *Tree {
	return &Tree{Arrival: arrival}
}

// AddChild appends child as the last (right-most) child of t.
func (t *Tree) AddChild(child *Tree) {
	t.Children = append(t.Children, child)
}

// Size returns the number of nodes (arrivals) in the tree.
func (t *Tree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Height returns the number of edges on the longest root-to-leaf path.
// A single node has height 0.
func (t *Tree) Height() int {
	if t == nil {
		return -1
	}
	h := 0
	for _, c := range t.Children {
		if ch := c.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Last returns z(t): the arrival time of the right-most descendant of t,
// which under the preorder-traversal property is the latest arrival in the
// subtree rooted at t.
func (t *Tree) Last() int64 {
	cur := t
	for len(cur.Children) > 0 {
		cur = cur.Children[len(cur.Children)-1]
	}
	return cur.Arrival
}

// Arrivals returns the arrival times of all nodes in preorder.
func (t *Tree) Arrivals() []int64 {
	out := make([]int64, 0, t.Size())
	t.walk(func(node *Tree, _ *Tree) {
		out = append(out, node.Arrival)
	})
	return out
}

// walk visits every node in preorder, passing the node and its parent
// (nil for the root).
func (t *Tree) walk(visit func(node, parent *Tree)) {
	var rec func(node, parent *Tree)
	rec = func(node, parent *Tree) {
		visit(node, parent)
		for _, c := range node.Children {
			rec(c, node)
		}
	}
	rec(t, nil)
}

// Walk visits every node in preorder, passing each node and its parent
// (nil for the root).  It is exported for packages that need to traverse
// trees without reimplementing recursion (e.g. schedule construction).
func (t *Tree) Walk(visit func(node, parent *Tree)) {
	t.walk(visit)
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	if t == nil {
		return nil
	}
	cp := &Tree{Arrival: t.Arrival}
	if len(t.Children) > 0 {
		cp.Children = make([]*Tree, len(t.Children))
		for i, c := range t.Children {
			cp.Children[i] = c.Clone()
		}
	}
	return cp
}

// Equal reports whether two trees have identical shape and labels.
func (t *Tree) Equal(o *Tree) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Arrival != o.Arrival || len(t.Children) != len(o.Children) {
		return false
	}
	for i := range t.Children {
		if !t.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Validate checks the structural merge-tree requirements of Section 2:
//
//   - every child's arrival is strictly greater than its parent's (a stream
//     can only merge to an earlier stream), and
//   - the children of every node are ordered by strictly increasing arrival.
//
// It returns a descriptive error for the first violation found.
func (t *Tree) Validate() error {
	var err error
	t.walk(func(node, parent *Tree) {
		if err != nil {
			return
		}
		if parent != nil && node.Arrival <= parent.Arrival {
			err = fmt.Errorf("mergetree: node %d is not later than its parent %d", node.Arrival, parent.Arrival)
			return
		}
		for i := 1; i < len(node.Children); i++ {
			if node.Children[i].Arrival <= node.Children[i-1].Arrival {
				err = fmt.Errorf("mergetree: children of %d are not ordered: %d then %d",
					node.Arrival, node.Children[i-1].Arrival, node.Children[i].Arrival)
				return
			}
		}
	})
	return err
}

// ValidatePreorder checks that a preorder traversal of the tree yields the
// arrival times in strictly increasing order (the preorder-traversal
// property).  Every optimal merge tree satisfies this property [6]; trees
// produced by the constructions in this repository always do.
func (t *Tree) ValidatePreorder() error {
	arr := t.Arrivals()
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			return fmt.Errorf("mergetree: preorder property violated at position %d: %d then %d", i, arr[i-1], arr[i])
		}
	}
	return nil
}

// ValidateConsecutive checks that the arrivals of the tree are exactly the
// consecutive integers first, first+1, ..., last.  The delay-guaranteed
// setting of the paper schedules one stream per slot, so optimal trees over
// a slot range always satisfy this.
func (t *Tree) ValidateConsecutive() error {
	if err := t.ValidatePreorder(); err != nil {
		return err
	}
	arr := t.Arrivals()
	for i := 1; i < len(arr); i++ {
		if arr[i] != arr[i-1]+1 {
			return fmt.Errorf("mergetree: arrivals are not consecutive: %d followed by %d", arr[i-1], arr[i])
		}
	}
	return nil
}

// Find returns the node with the given arrival, or nil if absent.
func (t *Tree) Find(arrival int64) *Tree {
	var found *Tree
	t.walk(func(node, _ *Tree) {
		if node.Arrival == arrival {
			found = node
		}
	})
	return found
}

// Parent returns the parent arrival p(x) of the node with the given arrival
// and true, or 0 and false when the arrival is the root or absent.
func (t *Tree) Parent(arrival int64) (int64, bool) {
	var parent int64
	ok := false
	t.walk(func(node, p *Tree) {
		if node.Arrival == arrival && p != nil {
			parent = p.Arrival
			ok = true
		}
	})
	return parent, ok
}

// PathTo returns the receiving program of the client arriving at the given
// time: the arrivals on the path from the root down to that node,
// x_0 < x_1 < ... < x_k with x_0 the root and x_k = arrival.  It returns nil
// if the arrival is not in the tree.
func (t *Tree) PathTo(arrival int64) []int64 {
	path, ok := t.appendPathTo(nil, arrival)
	if !ok {
		return nil
	}
	return path
}

// AppendPathTo appends the root-to-arrival path to dst and returns the
// extended slice, or dst unchanged if the arrival is not in the tree.  It
// lets hot loops (schedule construction over many clients) reuse one buffer
// instead of allocating a path per call.
func (t *Tree) AppendPathTo(dst []int64, arrival int64) []int64 {
	path, ok := t.appendPathTo(dst, arrival)
	if !ok {
		return dst
	}
	return path
}

func (t *Tree) appendPathTo(dst []int64, arrival int64) ([]int64, bool) {
	base := len(dst)
	// Descend iteratively: thanks to the sibling ordering the target child is
	// the last one whose arrival is <= the target, and arrival ranges of
	// subtrees are contiguous under the preorder property.  Fall back to a
	// full scan only if the greedy descent misses (non-preorder trees).
	dst = append(dst, t.Arrival)
	node := t
greedy:
	for node.Arrival != arrival {
		if arrival < node.Arrival {
			break
		}
		for i := len(node.Children) - 1; i >= 0; i-- {
			c := node.Children[i]
			if c.Arrival <= arrival {
				node = c
				dst = append(dst, c.Arrival)
				continue greedy
			}
		}
		break
	}
	if node.Arrival == arrival {
		return dst, true
	}
	// Slow path for trees without the preorder property.
	dst = dst[:base]
	var rec func(node *Tree) bool
	rec = func(n *Tree) bool {
		dst = append(dst, n.Arrival)
		if n.Arrival == arrival {
			return true
		}
		for _, c := range n.Children {
			if rec(c) {
				return true
			}
		}
		dst = dst[:len(dst)-1]
		return false
	}
	if rec(t) {
		return dst, true
	}
	return dst[:base], false
}

// NodeLength is the stream length owned by a single node.
type NodeLength struct {
	Arrival int64 // arrival time / stream start
	Parent  int64 // parent arrival (meaningful only when !Root)
	Last    int64 // z(x): last arrival in the subtree
	Length  int64 // stream length in slots
	Root    bool  // whether this node is the root of its tree
}

// LengthsReceiveTwo returns the stream length of every node of the tree in
// the receive-two model.  Non-root nodes follow Lemma 1,
// l(x) = 2 z(x) − x − p(x); the root's length is the supplied full stream
// length L.  The result is ordered by arrival (preorder).
func (t *Tree) LengthsReceiveTwo(L int64) []NodeLength {
	return t.appendLengthsReceiveTwo(make([]NodeLength, 0, t.Size()), L)
}

// appendLengthsReceiveTwo appends the receive-two lengths to dst, avoiding a
// fresh allocation when the caller has already sized a buffer.
func (t *Tree) appendLengthsReceiveTwo(dst []NodeLength, L int64) []NodeLength {
	t.walk(func(node, parent *Tree) {
		nl := NodeLength{Arrival: node.Arrival, Last: node.Last()}
		if parent == nil {
			nl.Root = true
			nl.Length = L
		} else {
			nl.Parent = parent.Arrival
			nl.Length = 2*nl.Last - node.Arrival - parent.Arrival
		}
		dst = append(dst, nl)
	})
	return dst
}

// LengthsReceiveAll returns the stream length of every node in the
// receive-all model (Lemma 17): non-root nodes have w(x) = z(x) − p(x), the
// root has length L.
func (t *Tree) LengthsReceiveAll(L int64) []NodeLength {
	return t.appendLengthsReceiveAll(make([]NodeLength, 0, t.Size()), L)
}

// appendLengthsReceiveAll appends the receive-all lengths to dst.
func (t *Tree) appendLengthsReceiveAll(dst []NodeLength, L int64) []NodeLength {
	t.walk(func(node, parent *Tree) {
		nl := NodeLength{Arrival: node.Arrival, Last: node.Last()}
		if parent == nil {
			nl.Root = true
			nl.Length = L
		} else {
			nl.Parent = parent.Arrival
			nl.Length = nl.Last - parent.Arrival
		}
		dst = append(dst, nl)
	})
	return dst
}

// MergeCost returns the merge cost of the tree in the receive-two model:
// the sum of the stream lengths of all non-root nodes (Lemma 1).
func (t *Tree) MergeCost() int64 {
	var cost int64
	t.walk(func(node, parent *Tree) {
		if parent != nil {
			cost += 2*node.Last() - node.Arrival - parent.Arrival
		}
	})
	return cost
}

// MergeCostAll returns the merge cost of the tree in the receive-all model:
// the sum of z(x) − p(x) over all non-root nodes (Lemma 17).
func (t *Tree) MergeCostAll() int64 {
	var cost int64
	t.walk(func(node, parent *Tree) {
		if parent != nil {
			cost += node.Last() - parent.Arrival
		}
	})
	return cost
}

// RequiredRootLength returns the minimum full stream length L for which this
// tree is feasible: the last arrival z must satisfy z − root ≤ L − 1, so the
// minimum is z − root + 1.
func (t *Tree) RequiredRootLength() int64 {
	return t.Last() - t.Arrival + 1
}

// FitsLength reports whether the tree is feasible for full stream length L.
func (t *Tree) FitsLength(L int64) bool {
	return t.RequiredRootLength() <= L
}

// BufferRequirement returns b(x), the client buffer size (in slots of
// playback) required by clients arriving at time x in a tree rooted at r
// with full stream length L (Lemma 15): b(x) = min(x − r, L − (x − r)).
func BufferRequirement(x, root, L int64) int64 {
	d := x - root
	if d < 0 {
		return 0
	}
	if L-d < d {
		return L - d
	}
	return d
}

// MaxBufferRequirement returns the maximum buffer requirement over all
// arrivals in the tree for full stream length L.
func (t *Tree) MaxBufferRequirement(L int64) int64 {
	var mx int64
	root := t.Arrival
	t.walk(func(node, _ *Tree) {
		if b := BufferRequirement(node.Arrival, root, L); b > mx {
			mx = b
		}
	})
	return mx
}

// String renders the tree in a compact parenthesized form, e.g.
// "0(1 2(3 4))" for a root 0 with children 1 and 2, where 2 has children 3
// and 4.  Parse reverses the encoding.
func (t *Tree) String() string {
	var b strings.Builder
	t.encode(&b)
	return b.String()
}

func (t *Tree) encode(b *strings.Builder) {
	fmt.Fprintf(b, "%d", t.Arrival)
	if len(t.Children) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range t.Children {
		if i > 0 {
			b.WriteByte(' ')
		}
		c.encode(b)
	}
	b.WriteByte(')')
}

// Parse decodes the parenthesized form produced by String.
func Parse(s string) (*Tree, error) {
	p := &parser{s: s}
	t, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("mergetree: trailing input at offset %d in %q", p.pos, s)
	}
	return t, nil
}

type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && p.s[p.pos] == ' ' {
		p.pos++
	}
}

func (p *parser) parseTree() (*Tree, error) {
	p.skipSpace()
	start := p.pos
	neg := false
	if p.pos < len(p.s) && p.s[p.pos] == '-' {
		neg = true
		p.pos++
	}
	var val int64
	digits := 0
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		val = val*10 + int64(p.s[p.pos]-'0')
		p.pos++
		digits++
	}
	if digits == 0 {
		return nil, fmt.Errorf("mergetree: expected arrival at offset %d in %q", start, p.s)
	}
	if neg {
		val = -val
	}
	t := New(val)
	if p.pos < len(p.s) && p.s[p.pos] == '(' {
		p.pos++
		for {
			p.skipSpace()
			if p.pos >= len(p.s) {
				return nil, errors.New("mergetree: unterminated child list")
			}
			if p.s[p.pos] == ')' {
				p.pos++
				break
			}
			child, err := p.parseTree()
			if err != nil {
				return nil, err
			}
			t.AddChild(child)
		}
	}
	return t, nil
}

// Render returns a multi-line ASCII rendering of the tree, one node per
// line, children indented under their parent.
func (t *Tree) Render() string {
	var b strings.Builder
	var rec func(node *Tree, prefix string, last bool, root bool)
	rec = func(node *Tree, prefix string, last bool, root bool) {
		if root {
			fmt.Fprintf(&b, "%d\n", node.Arrival)
		} else {
			connector := "├── "
			if last {
				connector = "└── "
			}
			fmt.Fprintf(&b, "%s%s%d\n", prefix, connector, node.Arrival)
		}
		childPrefix := prefix
		if !root {
			if last {
				childPrefix += "    "
			} else {
				childPrefix += "│   "
			}
		}
		for i, c := range node.Children {
			rec(c, childPrefix, i == len(node.Children)-1, false)
		}
	}
	rec(t, "", true, true)
	return b.String()
}

// ParentMap returns a map from each non-root arrival to its parent arrival.
func (t *Tree) ParentMap() map[int64]int64 {
	m := make(map[int64]int64, t.Size()-1)
	t.walk(func(node, parent *Tree) {
		if parent != nil {
			m[node.Arrival] = parent.Arrival
		}
	})
	return m
}

// FromParentMap reconstructs a tree from a root arrival and a map from
// child arrival to parent arrival.  Children are attached in increasing
// order of arrival, which preserves the sibling-ordering requirement.
func FromParentMap(root int64, parents map[int64]int64) (*Tree, error) {
	nodes := map[int64]*Tree{root: New(root)}
	arrivals := make([]int64, 0, len(parents)+1)
	for child := range parents {
		arrivals = append(arrivals, child)
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	for _, a := range arrivals {
		nodes[a] = New(a)
	}
	for _, a := range arrivals {
		p, ok := nodes[parents[a]]
		if !ok {
			return nil, fmt.Errorf("mergetree: parent %d of %d is not a node", parents[a], a)
		}
		p.AddChild(nodes[a])
	}
	t := nodes[root]
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Size() != len(parents)+1 {
		return nil, fmt.Errorf("mergetree: parent map is not a single tree rooted at %d", root)
	}
	return t, nil
}
