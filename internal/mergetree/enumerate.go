package mergetree

// Enumerate returns every merge tree with the preorder-traversal property
// over the consecutive arrivals first, first+1, ..., first+n-1.  There are
// Catalan(n-1) such trees, so this is intended only for small n (brute-force
// optimality checks in tests and ablation studies).
//
// The enumeration follows the recursive structure of Lemma 2: the root is
// the first arrival; the remaining arrivals are partitioned into consecutive
// blocks, the first element of each block becomes a child of the root, and
// each block is itself an arbitrary merge tree.
func Enumerate(first int64, n int) []*Tree {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []*Tree{New(first)}
	}
	var result []*Tree
	// Enumerate the compositions of the n-1 non-root arrivals into ordered
	// blocks; each block of size b starting at arrival a contributes every
	// merge tree over [a, a+b-1] as a child subtree.
	blocksList := compositions(n - 1)
	for _, blocks := range blocksList {
		// For each composition, take the cartesian product of the per-block
		// tree choices.
		perBlock := make([][]*Tree, len(blocks))
		start := first + 1
		for i, b := range blocks {
			perBlock[i] = Enumerate(start, b)
			start += int64(b)
		}
		for _, combo := range cartesian(perBlock) {
			root := New(first)
			for _, child := range combo {
				root.AddChild(child)
			}
			result = append(result, root)
		}
	}
	return result
}

// EnumerateOptimal returns every merge tree over [first, first+n-1] whose
// receive-two merge cost equals the minimum over all merge trees, together
// with that minimum cost.  Brute force; small n only.
func EnumerateOptimal(first int64, n int) ([]*Tree, int64) {
	all := Enumerate(first, n)
	if len(all) == 0 {
		return nil, 0
	}
	best := all[0].MergeCost()
	for _, t := range all[1:] {
		if c := t.MergeCost(); c < best {
			best = c
		}
	}
	var opt []*Tree
	for _, t := range all {
		if t.MergeCost() == best {
			opt = append(opt, t)
		}
	}
	return opt, best
}

// MinMergeCostBruteForce returns the minimum receive-two merge cost over all
// merge trees for n consecutive arrivals.  Brute force; small n only.
func MinMergeCostBruteForce(n int) int64 {
	_, best := EnumerateOptimal(0, n)
	return best
}

// MinMergeCostAllBruteForce returns the minimum receive-all merge cost over
// all merge trees for n consecutive arrivals.  Brute force; small n only.
func MinMergeCostAllBruteForce(n int) int64 {
	all := Enumerate(0, n)
	if len(all) == 0 {
		return 0
	}
	best := all[0].MergeCostAll()
	for _, t := range all[1:] {
		if c := t.MergeCostAll(); c < best {
			best = c
		}
	}
	return best
}

// compositions returns all ordered compositions of n into positive parts.
// compositions(3) = [[3] [1 2] [2 1] [1 1 1]] (order of the outer slice is
// unspecified).
func compositions(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for first := 1; first <= n; first++ {
		for _, rest := range compositions(n - first) {
			comp := append([]int{first}, rest...)
			out = append(out, comp)
		}
	}
	return out
}

// cartesian returns the cartesian product of the given slices of trees.
func cartesian(choices [][]*Tree) [][]*Tree {
	if len(choices) == 0 {
		return [][]*Tree{{}}
	}
	var out [][]*Tree
	for _, head := range choices[0] {
		for _, rest := range cartesian(choices[1:]) {
			combo := append([]*Tree{head}, rest...)
			out = append(out, combo)
		}
	}
	return out
}

// Catalan returns the n-th Catalan number, the count of merge trees over n+1
// consecutive arrivals.  Used to sanity-check Enumerate in tests.
func Catalan(n int) int64 {
	// C(0)=1; C(n+1) = sum_{i=0..n} C(i) C(n-i).
	c := make([]int64, n+1)
	c[0] = 1
	for m := 1; m <= n; m++ {
		var s int64
		for i := 0; i < m; i++ {
			s += c[i] * c[m-1-i]
		}
		c[m] = s
	}
	return c[n]
}
