package mergetree

import "fmt"

// Enumerate returns every merge tree with the preorder-traversal property
// over the consecutive arrivals first, first+1, ..., first+n-1.  There are
// Catalan(n-1) such trees, so this is intended only for small n (brute-force
// optimality checks in tests and ablation studies).  The result slice is
// preallocated to exactly Catalan(n-1) entries and the count is asserted, so
// callers can rely on the size without recounting.
//
// The enumeration follows the recursive structure of Lemma 2: the root is
// the first arrival; the remaining arrivals are partitioned into consecutive
// blocks, the first element of each block becomes a child of the root, and
// each block is itself an arbitrary merge tree.  Subtrees are shared between
// returned trees; treat them as read-only.
func Enumerate(first int64, n int) []*Tree {
	if n <= 0 {
		return nil
	}
	result := enumerate(first, n)
	if want := Catalan(n - 1); int64(len(result)) != want {
		panic(fmt.Sprintf("mergetree: Enumerate(%d) produced %d trees, want Catalan(%d) = %d",
			n, len(result), n-1, want))
	}
	return result
}

func enumerate(first int64, n int) []*Tree {
	if n == 1 {
		return []*Tree{New(first)}
	}
	result := make([]*Tree, 0, Catalan(n-1))
	for _, blocks := range compositions(n - 1) {
		perBlock := make([][]*Tree, len(blocks))
		start := first + 1
		for i, b := range blocks {
			perBlock[i] = enumerate(start, b)
			start += int64(b)
		}
		// Each combination slice is freshly allocated by cartesian, so it
		// can be adopted as the root's child list directly.
		for _, combo := range cartesian(perBlock) {
			root := New(first)
			root.Children = combo
			result = append(result, root)
		}
	}
	return result
}

// EnumerateOptimal returns every merge tree over [first, first+n-1] whose
// receive-two merge cost equals the minimum over all merge trees, together
// with that minimum cost.  Brute force; small n only.
func EnumerateOptimal(first int64, n int) ([]*Tree, int64) {
	all := Enumerate(first, n)
	if len(all) == 0 {
		return nil, 0
	}
	costs := make([]int64, len(all))
	best := int64(0)
	for i, t := range all {
		costs[i] = t.MergeCost()
		if i == 0 || costs[i] < best {
			best = costs[i]
		}
	}
	var opt []*Tree
	for i, t := range all {
		if costs[i] == best {
			opt = append(opt, t)
		}
	}
	return opt, best
}

// MinMergeCostBruteForce returns the minimum receive-two merge cost over all
// merge trees for n consecutive arrivals.  Brute force; small n only.
func MinMergeCostBruteForce(n int) int64 {
	_, best := EnumerateOptimal(0, n)
	return best
}

// MinMergeCostAllBruteForce returns the minimum receive-all merge cost over
// all merge trees for n consecutive arrivals.  Brute force; small n only.
func MinMergeCostAllBruteForce(n int) int64 {
	all := Enumerate(0, n)
	if len(all) == 0 {
		return 0
	}
	best := all[0].MergeCostAll()
	for _, t := range all[1:] {
		if c := t.MergeCostAll(); c < best {
			best = c
		}
	}
	return best
}

// compositions returns all ordered compositions of n into positive parts.
// compositions(3) = [[3] [1 2] [2 1] [1 1 1]] (outer order unspecified).
// The result is preallocated to its known size 2^(n-1) and each composition
// is copied exactly once out of a shared scratch slice, instead of the
// O(2^n) re-entrant append chains of the naive recursion.
func compositions(n int) [][]int {
	size := 1
	if n > 0 {
		size = 1 << uint(n-1)
	}
	out := make([][]int, 0, size)
	cur := make([]int, 0, n)
	var rec func(rem int)
	rec = func(rem int) {
		if rem == 0 {
			out = append(out, append(make([]int, 0, len(cur)), cur...))
			return
		}
		for f := 1; f <= rem; f++ {
			cur = append(cur, f)
			rec(rem - f)
			cur = cur[:len(cur)-1]
		}
	}
	rec(n)
	return out
}

// cartesian returns the cartesian product of the given slices of trees,
// preallocated to its known size and expanded with an odometer (one
// allocation per combination).
func cartesian(choices [][]*Tree) [][]*Tree {
	total := 1
	for _, c := range choices {
		total *= len(c)
	}
	if total == 0 {
		return nil
	}
	out := make([][]*Tree, 0, total)
	idx := make([]int, len(choices))
	for {
		combo := make([]*Tree, len(choices))
		for i, c := range choices {
			combo[i] = c[idx[i]]
		}
		out = append(out, combo)
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(choices[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return out
		}
	}
}

// Catalan returns the n-th Catalan number, the count of merge trees over n+1
// consecutive arrivals.  Used to sanity-check Enumerate.
func Catalan(n int) int64 {
	// C(0)=1; C(n+1) = sum_{i=0..n} C(i) C(n-i).
	c := make([]int64, n+1)
	c[0] = 1
	for m := 1; m <= n; m++ {
		var s int64
		for i := 0; i < m; i++ {
			s += c[i] * c[m-1-i]
		}
		c[m] = s
	}
	return c[n]
}
