package mergetree

import (
	"strings"
	"testing"
)

func buildFig3Forest(t *testing.T) *Forest {
	t.Helper()
	f := NewForest(15)
	tr, err := Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	f.Add(tr)
	return f
}

func TestForestFullCostFig3(t *testing.T) {
	f := buildFig3Forest(t)
	if got := f.FullCost(); got != 36 {
		t.Errorf("FullCost = %d, want 36 (paper, Fig. 3)", got)
	}
	if got := f.Size(); got != 8 {
		t.Errorf("Size = %d, want 8", got)
	}
	if got := f.Streams(); got != 1 {
		t.Errorf("Streams = %d, want 1", got)
	}
	if got := f.AverageBandwidth(); got != 36.0/8.0 {
		t.Errorf("AverageBandwidth = %v, want 4.5", got)
	}
	if got := f.NormalizedCost(); got != 36.0/15.0 {
		t.Errorf("NormalizedCost = %v, want 2.4", got)
	}
}

func TestForestTwoTreesExample(t *testing.T) {
	// Paper, Section 2: for L = 15 and n = 14 the optimal forest has two
	// full streams and full cost 2*15 + 17 + 17 = 64.  Each tree is the
	// optimal merge tree over 7 arrivals (merge cost 17).
	f := NewForest(15)
	t1, err := Parse("0(1 2 3(4) 5(6))")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Parse("7(8 9 10(11) 12(13))")
	if err != nil {
		t.Fatal(err)
	}
	f.Add(t1)
	f.Add(t2)
	if err := f.ValidateConsecutive(); err != nil {
		t.Fatalf("ValidateConsecutive: %v", err)
	}
	if t1.MergeCost() != 17 || t2.MergeCost() != 17 {
		t.Errorf("merge costs = %d, %d; want 17, 17", t1.MergeCost(), t2.MergeCost())
	}
	if got := f.FullCost(); got != 64 {
		t.Errorf("FullCost = %d, want 64", got)
	}
}

func TestForestValidateRejectsOverlap(t *testing.T) {
	f := NewForest(15)
	a, _ := Parse("0(1 2)")
	b, _ := Parse("2(3)")
	f.Add(a)
	f.Add(b)
	if err := f.Validate(); err == nil {
		t.Errorf("expected overlap error")
	}
}

func TestForestValidateRejectsTooLongTree(t *testing.T) {
	f := NewForest(3)
	a, _ := Parse("0(1 2 3)")
	f.Add(a)
	if err := f.Validate(); err == nil {
		t.Errorf("expected error: tree spans 4 slots but L=3")
	}
}

func TestForestValidateRejectsBadL(t *testing.T) {
	f := NewForest(0)
	f.Add(New(0))
	if err := f.Validate(); err == nil {
		t.Errorf("expected error for L=0")
	}
}

func TestForestValidateConsecutiveRejectsGap(t *testing.T) {
	f := NewForest(15)
	a, _ := Parse("0(1)")
	b, _ := Parse("3(4)")
	f.Add(a)
	f.Add(b)
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate should pass: %v", err)
	}
	if err := f.ValidateConsecutive(); err == nil {
		t.Errorf("expected gap error")
	}
}

func TestForestArrivalsAndLengths(t *testing.T) {
	f := buildFig3Forest(t)
	arr := f.Arrivals()
	if len(arr) != 8 || arr[0] != 0 || arr[7] != 7 {
		t.Errorf("Arrivals = %v", arr)
	}
	lengths := f.Lengths()
	var total int64
	for _, nl := range lengths {
		total += nl.Length
	}
	if total != f.FullCost() {
		t.Errorf("sum of lengths %d != FullCost %d", total, f.FullCost())
	}
	lengthsAll := f.LengthsAll()
	var totalAll int64
	for _, nl := range lengthsAll {
		totalAll += nl.Length
	}
	if totalAll != f.FullCostAll() {
		t.Errorf("sum of receive-all lengths %d != FullCostAll %d", totalAll, f.FullCostAll())
	}
	if totalAll > total {
		t.Errorf("receive-all cost %d should not exceed receive-two cost %d", totalAll, total)
	}
}

func TestForestActiveStreamsSumsToFullCost(t *testing.T) {
	f := buildFig3Forest(t)
	// Streams run within [0, 15): the root occupies slots 0..14, every other
	// stream is contained in that window.
	counts := f.ActiveStreams(0, 20)
	var sum int64
	for _, c := range counts {
		sum += int64(c)
	}
	if sum != f.FullCost() {
		t.Errorf("sum of active stream slots %d != FullCost %d", sum, f.FullCost())
	}
	// During slot 7 (time [7,8)): active streams are those with
	// arrival <= 7 < arrival+length: 0 (0..14), 3 (3..7), 5 (5..13), 7 (7..8).
	if counts[7] != 4 {
		t.Errorf("ActiveStreams at slot 7 = %d, want 4", counts[7])
	}
	if got := f.ActiveStreams(5, 5); got != nil {
		t.Errorf("empty window should return nil, got %v", got)
	}
}

func TestForestMaxBufferRequirement(t *testing.T) {
	f := buildFig3Forest(t)
	if got := f.MaxBufferRequirement(); got != 7 {
		t.Errorf("MaxBufferRequirement = %d, want 7", got)
	}
}

func TestForestCloneIndependent(t *testing.T) {
	f := buildFig3Forest(t)
	cp := f.Clone()
	cp.Trees[0].Children[0].Arrival = 100
	if f.Trees[0].Children[0].Arrival == 100 {
		t.Errorf("Clone shares nodes with the original")
	}
	if cp.L != f.L {
		t.Errorf("Clone lost L")
	}
}

func TestForestTreeOf(t *testing.T) {
	f := NewForest(15)
	a, _ := Parse("0(1 2)")
	b, _ := Parse("3(4 5)")
	f.Add(a)
	f.Add(b)
	if got := f.TreeOf(4); got != b {
		t.Errorf("TreeOf(4) returned wrong tree")
	}
	if got := f.TreeOf(0); got != a {
		t.Errorf("TreeOf(0) returned wrong tree")
	}
	if got := f.TreeOf(9); got != nil {
		t.Errorf("TreeOf(9) should be nil")
	}
}

func TestForestString(t *testing.T) {
	f := buildFig3Forest(t)
	s := f.String()
	if !strings.Contains(s, "L=15") || !strings.Contains(s, "0(1 2 3(4) 5(6 7))") {
		t.Errorf("String = %q", s)
	}
}
