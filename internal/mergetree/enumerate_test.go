package mergetree

import (
	"testing"
)

func TestCatalanNumbers(t *testing.T) {
	want := []int64{1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862}
	for n, w := range want {
		if got := Catalan(n); got != w {
			t.Errorf("Catalan(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestEnumerateCounts(t *testing.T) {
	// The number of merge trees with the preorder property over n arrivals
	// is Catalan(n-1).
	for n := 1; n <= 8; n++ {
		trees := Enumerate(0, n)
		if int64(len(trees)) != Catalan(n-1) {
			t.Errorf("Enumerate(0,%d) produced %d trees, want Catalan(%d)=%d",
				n, len(trees), n-1, Catalan(n-1))
		}
		seen := map[string]bool{}
		for _, tr := range trees {
			if tr.Size() != n {
				t.Fatalf("enumerated tree has size %d, want %d: %v", tr.Size(), n, tr)
			}
			if err := tr.ValidateConsecutive(); err != nil {
				t.Fatalf("enumerated tree invalid: %v", err)
			}
			key := tr.String()
			if seen[key] {
				t.Fatalf("duplicate enumerated tree %q", key)
			}
			seen[key] = true
		}
	}
}

func TestEnumerateEmptyAndSingle(t *testing.T) {
	if got := Enumerate(5, 0); got != nil {
		t.Errorf("Enumerate(_,0) = %v, want nil", got)
	}
	single := Enumerate(5, 1)
	if len(single) != 1 || single[0].Arrival != 5 || single[0].Size() != 1 {
		t.Errorf("Enumerate(5,1) = %v", single)
	}
}

func TestBruteForceMergeCostMatchesPaperSequence(t *testing.T) {
	// Paper, Section 3.1: M(n) for n = 1..10 is 0,1,3,6,9,13,17,21,26,31.
	want := []int64{0, 1, 3, 6, 9, 13, 17, 21, 26, 31}
	for i, w := range want {
		n := i + 1
		if n > 9 {
			// keep the brute force fast; n=10 has 4862 trees which is still
			// fine, include it.
		}
		if got := MinMergeCostBruteForce(n); got != w {
			t.Errorf("brute-force M(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestBruteForceReceiveAllMatchesPaperSequence(t *testing.T) {
	// Paper, Section 3.4: M_w(n) for n = 1..10 is 0,1,3,5,8,11,14,17,21,25.
	want := []int64{0, 1, 3, 5, 8, 11, 14, 17, 21, 25}
	for i, w := range want {
		n := i + 1
		if got := MinMergeCostAllBruteForce(n); got != w {
			t.Errorf("brute-force M_w(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestEnumerateOptimalN4HasTwoTrees(t *testing.T) {
	// Fig. 6: there are exactly two optimal trees for n = 4, both with merge
	// cost 6.
	opt, best := EnumerateOptimal(0, 4)
	if best != 6 {
		t.Fatalf("optimal cost for n=4 = %d, want 6", best)
	}
	if len(opt) != 2 {
		t.Errorf("number of optimal trees for n=4 = %d, want 2", len(opt))
	}
}

func TestEnumerateOptimalFibonacciUnique(t *testing.T) {
	// For n equal to a Fibonacci number the optimal tree is unique (Fig. 7).
	for _, n := range []int{2, 3, 5, 8} {
		opt, _ := EnumerateOptimal(0, n)
		if len(opt) != 1 {
			t.Errorf("n=%d: %d optimal trees, want 1 (Fibonacci merge tree is unique)", n, len(opt))
		}
	}
}

func TestEnumerateOptimalFibonacciTreeShapes(t *testing.T) {
	// Fig. 7 gives the unique optimal trees for n = 3, 5, 8.
	want := map[int]string{
		3: "0(1 2)",
		5: "0(1 2 3(4))",
		8: "0(1 2 3(4) 5(6 7))",
	}
	for n, ws := range want {
		opt, _ := EnumerateOptimal(0, n)
		if len(opt) != 1 {
			t.Fatalf("n=%d: expected unique optimal tree", n)
		}
		if got := opt[0].String(); got != ws {
			t.Errorf("optimal tree for n=%d is %q, want %q", n, got, ws)
		}
	}
}

func TestCompositionsCount(t *testing.T) {
	// There are 2^(n-1) compositions of n.
	for n := 1; n <= 10; n++ {
		if got := len(compositions(n)); got != 1<<uint(n-1) {
			t.Errorf("compositions(%d) has %d entries, want %d", n, got, 1<<uint(n-1))
		}
	}
	if got := len(compositions(0)); got != 1 {
		t.Errorf("compositions(0) should have exactly the empty composition")
	}
}

func TestCartesianProduct(t *testing.T) {
	a := []*Tree{New(1), New(2)}
	b := []*Tree{New(3), New(4), New(5)}
	prod := cartesian([][]*Tree{a, b})
	if len(prod) != 6 {
		t.Errorf("cartesian product size = %d, want 6", len(prod))
	}
	empty := cartesian(nil)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Errorf("cartesian(nil) should be a single empty combination")
	}
}

func BenchmarkEnumerateN8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Enumerate(0, 8)
	}
}
