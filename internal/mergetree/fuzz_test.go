package mergetree

import (
	"testing"
)

// FuzzParse checks that any string accepted by Parse round-trips through
// String and yields a structurally consistent tree, and that Parse never
// panics on arbitrary input.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"0",
		"0(1 2 3(4) 5(6 7))",
		"0(1(2(3(4))))",
		"-3(-1 0(2))",
		"0(",
		"((((",
		"0(1 2))",
		"5 6",
		"0(00001 2)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Parse(s)
		if err != nil {
			return
		}
		if tr == nil {
			t.Fatalf("Parse(%q) returned nil tree without error", s)
		}
		out := tr.String()
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parsing %q (from %q) failed: %v", out, s, err)
		}
		if !tr.Equal(back) {
			t.Fatalf("round trip mismatch for %q: %q vs %q", s, out, back.String())
		}
		if tr.Size() < 1 {
			t.Fatalf("parsed tree has no nodes")
		}
		// Costs must be computable without panicking and non-negative for
		// valid merge trees.
		if tr.Validate() == nil {
			if tr.MergeCost() < 0 || tr.MergeCostAll() < 0 {
				t.Fatalf("negative cost for %q", out)
			}
			if tr.MergeCostAll() > tr.MergeCost() {
				t.Fatalf("receive-all cost exceeds receive-two cost for %q", out)
			}
		}
	})
}

// FuzzFromParentMap checks that reconstructing a tree from an arbitrary
// parent map either fails cleanly or produces a valid tree.
func FuzzFromParentMap(f *testing.F) {
	f.Add(int64(0), uint8(5), uint8(3))
	f.Add(int64(2), uint8(10), uint8(7))
	f.Fuzz(func(t *testing.T, root int64, count, stride uint8) {
		parents := map[int64]int64{}
		n := int64(count%16) + 1
		step := int64(stride%5) + 1
		for i := int64(1); i <= n; i++ {
			child := root + i*step
			parents[child] = root + ((i - 1) / 2 * step) // binary-heap style parents
		}
		tr, err := FromParentMap(root, parents)
		if err != nil {
			return
		}
		if tr.Size() != int(n)+1 {
			t.Fatalf("tree size %d, want %d", tr.Size(), n+1)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("FromParentMap produced an invalid tree: %v", err)
		}
	})
}
