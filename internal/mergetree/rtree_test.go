package mergetree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRTreeBasics(t *testing.T) {
	tr := NewR(0)
	tr.AddChild(NewR(1.5))
	c := NewR(2.25)
	c.AddChild(NewR(3.75))
	tr.AddChild(c)
	if tr.Size() != 4 {
		t.Errorf("Size = %d, want 4", tr.Size())
	}
	if tr.Last() != 3.75 {
		t.Errorf("Last = %v, want 3.75", tr.Last())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := tr.ValidatePreorder(); err != nil {
		t.Errorf("ValidatePreorder: %v", err)
	}
	arr := tr.Arrivals()
	if len(arr) != 4 || arr[3] != 3.75 {
		t.Errorf("Arrivals = %v", arr)
	}
}

func TestRTreeValidateRejectsBad(t *testing.T) {
	bad := NewR(5)
	bad.AddChild(NewR(3))
	if bad.Validate() == nil {
		t.Errorf("expected validation error for child earlier than parent")
	}
	bad2 := NewR(0)
	bad2.AddChild(NewR(2))
	bad2.AddChild(NewR(1))
	if bad2.Validate() == nil {
		t.Errorf("expected validation error for unordered siblings")
	}
	np := NewR(0)
	c := NewR(2)
	c.AddChild(NewR(4))
	np.AddChild(c)
	np.AddChild(NewR(3))
	if np.ValidatePreorder() == nil {
		t.Errorf("expected preorder violation")
	}
}

func TestRTreeCostsMatchIntegerTree(t *testing.T) {
	// An RTree with integer arrivals must have exactly the same costs as the
	// corresponding Tree.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		it := randomTree(rng, 0, n)
		rt := toRTree(it)
		if math.Abs(rt.MergeCost()-float64(it.MergeCost())) > 1e-9 {
			t.Fatalf("RTree merge cost %v != Tree merge cost %d", rt.MergeCost(), it.MergeCost())
		}
		if math.Abs(rt.MergeCostAll()-float64(it.MergeCostAll())) > 1e-9 {
			t.Fatalf("RTree receive-all cost %v != Tree cost %d", rt.MergeCostAll(), it.MergeCostAll())
		}
	}
}

func toRTree(t *Tree) *RTree {
	rt := NewR(float64(t.Arrival))
	for _, c := range t.Children {
		rt.AddChild(toRTree(c))
	}
	return rt
}

func TestRTreeCostScalesLinearly(t *testing.T) {
	// Scaling all arrival times by a factor scales the merge cost by the
	// same factor (the cost formulas are linear in the arrival times).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		it := randomTree(rng, 0, n)
		rt := toRTree(it)
		scaled := scaleRTree(rt, 0.37)
		if math.Abs(scaled.MergeCost()-0.37*rt.MergeCost()) > 1e-9 {
			t.Fatalf("scaled cost %v != 0.37 * %v", scaled.MergeCost(), rt.MergeCost())
		}
	}
}

func scaleRTree(t *RTree, f float64) *RTree {
	s := NewR(t.Arrival * f)
	for _, c := range t.Children {
		s.AddChild(scaleRTree(c, f))
	}
	return s
}

func TestRForestCostAndValidate(t *testing.T) {
	f := NewRForest(1.0)
	t1 := NewR(0)
	t1.AddChild(NewR(0.25))
	c := NewR(0.5)
	c.AddChild(NewR(0.6))
	t1.AddChild(c)
	f.Add(t1)
	t2 := NewR(1.2)
	t2.AddChild(NewR(1.3))
	f.Add(t2)
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if f.Size() != 6 || f.Streams() != 2 {
		t.Errorf("Size=%d Streams=%d", f.Size(), f.Streams())
	}
	// Full cost: 2*L + merge costs.
	// Tree 1: l(0.25)=0.25, l(0.5)=2*0.6-0.5-0=0.7, l(0.6)=0.1 -> 1.05.
	// Tree 2: l(1.3)=0.1.
	want := 2.0 + 1.05 + 0.1
	if math.Abs(f.FullCost()-want) > 1e-9 {
		t.Errorf("FullCost = %v, want %v", f.FullCost(), want)
	}
	if math.Abs(f.NormalizedCost()-want) > 1e-9 {
		t.Errorf("NormalizedCost = %v, want %v (L=1)", f.NormalizedCost(), want)
	}
	if !strings.Contains(f.String(), "L=1") {
		t.Errorf("String = %q", f.String())
	}
}

func TestRForestValidateRejects(t *testing.T) {
	f := NewRForest(1.0)
	t1 := NewR(0)
	t1.AddChild(NewR(1.5)) // spans 1.5 > L=1
	f.Add(t1)
	if f.Validate() == nil {
		t.Errorf("expected error: tree longer than media")
	}

	f2 := NewRForest(1.0)
	a := NewR(0)
	a.AddChild(NewR(0.5))
	b := NewR(0.4)
	f2.Add(a)
	f2.Add(b)
	if f2.Validate() == nil {
		t.Errorf("expected overlap error")
	}

	f3 := NewRForest(0)
	f3.Add(NewR(0))
	if f3.Validate() == nil {
		t.Errorf("expected error for non-positive L")
	}
}

func TestRTreeRequiredRootLength(t *testing.T) {
	tr := NewR(2)
	tr.AddChild(NewR(2.5))
	tr.AddChild(NewR(2.9))
	if got := tr.RequiredRootLength(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("RequiredRootLength = %v, want 0.9", got)
	}
}

func TestRTreeWalkParents(t *testing.T) {
	tr := NewR(0)
	c := NewR(1)
	c.AddChild(NewR(2))
	tr.AddChild(c)
	var pairs [][2]float64
	tr.Walk(func(node, parent *RTree) {
		p := -1.0
		if parent != nil {
			p = parent.Arrival
		}
		pairs = append(pairs, [2]float64{node.Arrival, p})
	})
	want := [][2]float64{{0, -1}, {1, 0}, {2, 1}}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("Walk pairs = %v, want %v", pairs, want)
		}
	}
}
