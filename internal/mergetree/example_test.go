package mergetree_test

import (
	"fmt"

	"repro/internal/mergetree"
)

func ExampleParse() {
	// The optimal merge tree of Fig. 4 in its parenthesized encoding.
	tree, _ := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	fmt.Println("size:", tree.Size())
	fmt.Println("merge cost (receive-two):", tree.MergeCost())
	fmt.Println("merge cost (receive-all):", tree.MergeCostAll())
	fmt.Println("receiving program of client 7:", tree.PathTo(7))
	// Output:
	// size: 8
	// merge cost (receive-two): 21
	// merge cost (receive-all): 18
	// receiving program of client 7: [0 5 7]
}

func ExampleForest_FullCost() {
	f := mergetree.NewForest(15)
	t1, _ := mergetree.Parse("0(1 2 3(4) 5(6))")
	t2, _ := mergetree.Parse("7(8 9 10(11) 12(13))")
	f.Add(t1)
	f.Add(t2)
	fmt.Println(f.FullCost())
	// Output:
	// 64
}

func ExampleTree_LengthsReceiveTwo() {
	tree, _ := mergetree.Parse("0(1 2(3))")
	for _, nl := range tree.LengthsReceiveTwo(10) {
		fmt.Printf("stream %d: %d slots\n", nl.Arrival, nl.Length)
	}
	// Output:
	// stream 0: 10 slots
	// stream 1: 1 slots
	// stream 2: 4 slots
	// stream 3: 1 slots
}
