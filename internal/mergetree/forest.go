package mergetree

import (
	"fmt"
	"strings"
)

// Forest is a merge forest: a sequence of merge trees whose arrival ranges
// are disjoint and increasing.  Each tree's root owns a full stream of
// length L; the full cost of the forest is s·L plus the merge costs of the
// trees (Section 2).
type Forest struct {
	// L is the full stream length in slots (media length divided by the
	// guaranteed start-up delay).
	L int64
	// Trees are the merge trees in increasing order of their root arrival.
	Trees []*Tree
}

// NewForest returns an empty forest for full stream length L.
func NewForest(L int64) *Forest {
	return &Forest{L: L}
}

// Add appends a tree to the forest.
func (f *Forest) Add(t *Tree) {
	f.Trees = append(f.Trees, t)
}

// Size returns the total number of arrivals across all trees.
func (f *Forest) Size() int {
	n := 0
	for _, t := range f.Trees {
		n += t.Size()
	}
	return n
}

// Streams returns the number of full streams (roots) in the forest.
func (f *Forest) Streams() int {
	return len(f.Trees)
}

// FullCost returns the full cost of the forest in the receive-two model:
// s·L plus the sum of the merge costs of the trees.
func (f *Forest) FullCost() int64 {
	cost := int64(len(f.Trees)) * f.L
	for _, t := range f.Trees {
		cost += t.MergeCost()
	}
	return cost
}

// FullCostAll returns the full cost of the forest in the receive-all model.
func (f *Forest) FullCostAll() int64 {
	cost := int64(len(f.Trees)) * f.L
	for _, t := range f.Trees {
		cost += t.MergeCostAll()
	}
	return cost
}

// AverageBandwidth returns the average server bandwidth needed to satisfy
// the requests: FullCost / number of arrivals, in units of playback
// bandwidth (channels).
func (f *Forest) AverageBandwidth() float64 {
	n := f.Size()
	if n == 0 {
		return 0
	}
	return float64(f.FullCost()) / float64(n)
}

// NormalizedCost returns the full cost measured in complete media streams
// (full cost divided by L), the unit used on the y-axis of Fig. 1 and
// Figs. 11-12 of the paper.
func (f *Forest) NormalizedCost() float64 {
	if f.L == 0 {
		return 0
	}
	return float64(f.FullCost()) / float64(f.L)
}

// Arrivals returns all arrivals of the forest in increasing order.
func (f *Forest) Arrivals() []int64 {
	out := make([]int64, 0, f.Size())
	for _, t := range f.Trees {
		t.Walk(func(node, _ *Tree) {
			out = append(out, node.Arrival)
		})
	}
	return out
}

// Lengths returns the receive-two stream lengths of every node in the
// forest, roots included (roots have length L), ordered by arrival.
func (f *Forest) Lengths() []NodeLength {
	out := make([]NodeLength, 0, f.Size())
	for _, t := range f.Trees {
		out = t.appendLengthsReceiveTwo(out, f.L)
	}
	return out
}

// LengthsAll returns the receive-all stream lengths of every node.
func (f *Forest) LengthsAll() []NodeLength {
	out := make([]NodeLength, 0, f.Size())
	for _, t := range f.Trees {
		out = t.appendLengthsReceiveAll(out, f.L)
	}
	return out
}

// Validate checks that every tree is a valid merge tree, that it fits the
// full stream length L, and that the arrival ranges of successive trees are
// increasing and disjoint.
func (f *Forest) Validate() error {
	if f.L < 1 {
		return fmt.Errorf("mergetree: forest has invalid stream length L=%d", f.L)
	}
	var prevLast int64
	for i, t := range f.Trees {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		if err := t.ValidatePreorder(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		if !t.FitsLength(f.L) {
			return fmt.Errorf("mergetree: tree %d spans %d slots which exceeds full stream length %d",
				i, t.RequiredRootLength(), f.L)
		}
		if i > 0 && t.Arrival <= prevLast {
			return fmt.Errorf("mergetree: tree %d starting at %d overlaps previous tree ending at %d",
				i, t.Arrival, prevLast)
		}
		prevLast = t.Last()
	}
	return nil
}

// ValidateConsecutive additionally checks that the forest covers exactly the
// consecutive arrivals first, first+1, ..., last with no gaps between trees.
func (f *Forest) ValidateConsecutive() error {
	if err := f.Validate(); err != nil {
		return err
	}
	arr := f.Arrivals()
	for i := 1; i < len(arr); i++ {
		if arr[i] != arr[i-1]+1 {
			return fmt.Errorf("mergetree: forest arrivals are not consecutive: %d then %d", arr[i-1], arr[i])
		}
	}
	return nil
}

// MaxBufferRequirement returns the maximum client buffer requirement over
// the whole forest (Lemma 15 applied per tree).
func (f *Forest) MaxBufferRequirement() int64 {
	var mx int64
	for _, t := range f.Trees {
		if b := t.MaxBufferRequirement(f.L); b > mx {
			mx = b
		}
	}
	return mx
}

// Clone returns a deep copy of the forest.
func (f *Forest) Clone() *Forest {
	cp := &Forest{L: f.L, Trees: make([]*Tree, len(f.Trees))}
	for i, t := range f.Trees {
		cp.Trees[i] = t.Clone()
	}
	return cp
}

// String renders the forest as the stream length followed by each tree's
// parenthesized encoding.
func (f *Forest) String() string {
	parts := make([]string, 0, len(f.Trees)+1)
	parts = append(parts, fmt.Sprintf("L=%d", f.L))
	for _, t := range f.Trees {
		parts = append(parts, t.String())
	}
	return strings.Join(parts, " | ")
}

// TreeOf returns the tree containing the given arrival, or nil if no tree
// contains it.
func (f *Forest) TreeOf(arrival int64) *Tree {
	for _, t := range f.Trees {
		if t.Arrival <= arrival && arrival <= t.Last() {
			if t.Find(arrival) != nil {
				return t
			}
		}
	}
	return nil
}

// ActiveStreams returns, for each slot in [from, to), the number of streams
// actively transmitting during that slot in the receive-two model.  A stream
// started at arrival a with length l is active during slots a, a+1, ...,
// a+l-1 (the slot labeled t covers the interval [t, t+1)).  This is the
// instantaneous server bandwidth profile used for peak-bandwidth analysis.
// The implementation is a difference-array sweep: each stream contributes a
// +1/-1 pair at its clamped endpoints and one prefix sum produces the
// per-slot counts, so the cost is O(streams + (to-from)) rather than
// O(total stream length).
func (f *Forest) ActiveStreams(from, to int64) []int {
	if to <= from {
		return nil
	}
	// diff[i] holds the change in active-stream count at slot from+i; the
	// extra final entry absorbs decrements at the right edge of the window.
	diff := make([]int, to-from+1)
	var scratch []NodeLength // reused per tree; lengths come from the one Lemma 1 implementation
	for _, t := range f.Trees {
		scratch = t.appendLengthsReceiveTwo(scratch[:0], f.L)
		for _, nl := range scratch {
			start, end := nl.Arrival, nl.Arrival+nl.Length
			if start < from {
				start = from
			}
			if end > to {
				end = to
			}
			if start >= end {
				continue
			}
			diff[start-from]++
			diff[end-from]--
		}
	}
	counts := diff[:to-from]
	active := 0
	for i := range counts {
		active += counts[i]
		counts[i] = active
	}
	return counts
}
