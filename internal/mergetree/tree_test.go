package mergetree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fig4Tree returns the optimal merge tree of Fig. 4 for n = 8 arrivals:
// 0(1 2 3(4) 5(6 7)), with merge cost 21 and full cost 36 for L = 15.
func fig4Tree(t *testing.T) *Tree {
	t.Helper()
	tree, err := Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tree
}

func TestNewAndSize(t *testing.T) {
	tr := New(0)
	if tr.Size() != 1 || tr.Height() != 0 {
		t.Fatalf("single node: size=%d height=%d", tr.Size(), tr.Height())
	}
	tr.AddChild(New(1))
	tr.AddChild(New(2))
	tr.Children[1].AddChild(New(3))
	if tr.Size() != 4 {
		t.Errorf("Size = %d, want 4", tr.Size())
	}
	if tr.Height() != 2 {
		t.Errorf("Height = %d, want 2", tr.Height())
	}
	if tr.Last() != 3 {
		t.Errorf("Last = %d, want 3", tr.Last())
	}
}

func TestNilSize(t *testing.T) {
	var tr *Tree
	if tr.Size() != 0 {
		t.Errorf("nil Size = %d, want 0", tr.Size())
	}
	if tr.Height() != -1 {
		t.Errorf("nil Height = %d, want -1", tr.Height())
	}
	if tr.Clone() != nil {
		t.Errorf("nil Clone should be nil")
	}
}

func TestFig4Structure(t *testing.T) {
	tr := fig4Tree(t)
	if tr.Size() != 8 {
		t.Fatalf("Size = %d, want 8", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := tr.ValidatePreorder(); err != nil {
		t.Errorf("ValidatePreorder: %v", err)
	}
	if err := tr.ValidateConsecutive(); err != nil {
		t.Errorf("ValidateConsecutive: %v", err)
	}
	arr := tr.Arrivals()
	for i, a := range arr {
		if a != int64(i) {
			t.Errorf("Arrivals[%d] = %d, want %d", i, a, i)
		}
	}
	if tr.Last() != 7 {
		t.Errorf("Last = %d, want 7", tr.Last())
	}
}

func TestFig4MergeCost(t *testing.T) {
	tr := fig4Tree(t)
	if got := tr.MergeCost(); got != 21 {
		t.Errorf("MergeCost = %d, want 21", got)
	}
}

func TestFig4Lengths(t *testing.T) {
	tr := fig4Tree(t)
	lengths := tr.LengthsReceiveTwo(15)
	byArrival := map[int64]NodeLength{}
	for _, nl := range lengths {
		byArrival[nl.Arrival] = nl
	}
	// From Fig. 3: stream A (0) is full length 15; F (5) has length 9
	// (runs to time 14); H (7) has length 2; G (6) has length 1;
	// B (1) has length 1; C (2) has length 2; D (3) has length 5; E (4)
	// has length 1.
	want := map[int64]int64{0: 15, 1: 1, 2: 2, 3: 5, 4: 1, 5: 9, 6: 1, 7: 2}
	for a, wl := range want {
		nl, ok := byArrival[a]
		if !ok {
			t.Fatalf("missing length for arrival %d", a)
		}
		if nl.Length != wl {
			t.Errorf("length(%d) = %d, want %d", a, nl.Length, wl)
		}
	}
	if !byArrival[0].Root {
		t.Errorf("node 0 should be marked root")
	}
	if byArrival[5].Parent != 0 || byArrival[5].Last != 7 {
		t.Errorf("node 5: parent=%d last=%d, want 0 and 7", byArrival[5].Parent, byArrival[5].Last)
	}
	// Sum of non-root lengths equals the merge cost.
	var sum int64
	for _, nl := range lengths {
		if !nl.Root {
			sum += nl.Length
		}
	}
	if sum != tr.MergeCost() {
		t.Errorf("sum of non-root lengths %d != merge cost %d", sum, tr.MergeCost())
	}
}

func TestLemma1Expressions(t *testing.T) {
	// The three expressions (1), (2), (3) for l(x) must agree on every
	// non-root node of random valid trees.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		tr := randomTree(rng, 0, n)
		tr.walk(func(node, parent *Tree) {
			if parent == nil {
				return
			}
			x, p, z := node.Arrival, parent.Arrival, node.Last()
			e1 := 2*z - x - p
			e2 := (x - p) + 2*(z-x)
			e3 := (z - x) + (z - p)
			if e1 != e2 || e2 != e3 {
				t.Fatalf("length expressions disagree for x=%d p=%d z=%d: %d %d %d", x, p, z, e1, e2, e3)
			}
		})
	}
}

func TestPathTo(t *testing.T) {
	tr := fig4Tree(t)
	cases := []struct {
		arrival int64
		want    []int64
	}{
		{0, []int64{0}},
		{1, []int64{0, 1}},
		{4, []int64{0, 3, 4}},
		{7, []int64{0, 5, 7}},
		{6, []int64{0, 5, 6}},
	}
	for _, c := range cases {
		got := tr.PathTo(c.arrival)
		if len(got) != len(c.want) {
			t.Errorf("PathTo(%d) = %v, want %v", c.arrival, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("PathTo(%d) = %v, want %v", c.arrival, got, c.want)
				break
			}
		}
	}
	if got := tr.PathTo(99); got != nil {
		t.Errorf("PathTo(99) = %v, want nil", got)
	}
}

func TestParentAndFind(t *testing.T) {
	tr := fig4Tree(t)
	if p, ok := tr.Parent(7); !ok || p != 5 {
		t.Errorf("Parent(7) = %d,%v want 5,true", p, ok)
	}
	if p, ok := tr.Parent(5); !ok || p != 0 {
		t.Errorf("Parent(5) = %d,%v want 0,true", p, ok)
	}
	if _, ok := tr.Parent(0); ok {
		t.Errorf("Parent(0) should report false for the root")
	}
	if _, ok := tr.Parent(42); ok {
		t.Errorf("Parent(42) should report false for a missing node")
	}
	if tr.Find(4) == nil || tr.Find(4).Arrival != 4 {
		t.Errorf("Find(4) failed")
	}
	if tr.Find(100) != nil {
		t.Errorf("Find(100) should be nil")
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	// Child earlier than parent.
	bad := New(5)
	bad.AddChild(New(3))
	if err := bad.Validate(); err == nil {
		t.Errorf("expected error for child earlier than parent")
	}
	// Unordered siblings.
	bad2 := New(0)
	bad2.AddChild(New(4))
	bad2.AddChild(New(2))
	if err := bad2.Validate(); err == nil {
		t.Errorf("expected error for unordered siblings")
	}
	// Valid merge tree that violates the preorder property: root 0 with
	// children 2 and 3, where 2 has child 4 — preorder is 0,2,4,3.
	np := New(0)
	c2 := New(2)
	c2.AddChild(New(4))
	np.AddChild(c2)
	np.AddChild(New(3))
	if err := np.Validate(); err != nil {
		t.Errorf("Validate should accept: %v", err)
	}
	if err := np.ValidatePreorder(); err == nil {
		t.Errorf("ValidatePreorder should reject preorder violation")
	}
}

func TestValidateConsecutiveRejectsGaps(t *testing.T) {
	tr := New(0)
	tr.AddChild(New(2))
	if err := tr.ValidateConsecutive(); err == nil {
		t.Errorf("expected error for non-consecutive arrivals")
	}
}

func TestRequiredRootLengthAndFits(t *testing.T) {
	tr := fig4Tree(t)
	if got := tr.RequiredRootLength(); got != 8 {
		t.Errorf("RequiredRootLength = %d, want 8", got)
	}
	if !tr.FitsLength(15) || !tr.FitsLength(8) || tr.FitsLength(7) {
		t.Errorf("FitsLength behaves unexpectedly")
	}
}

func TestBufferRequirement(t *testing.T) {
	// Lemma 15: b(x) = min(x-r, L-(x-r)).
	cases := []struct {
		x, r, L, want int64
	}{
		{0, 0, 15, 0},
		{7, 0, 15, 7},
		{8, 0, 15, 7},
		{10, 0, 15, 5},
		{14, 0, 15, 1},
		{5, 3, 10, 2},
		{2, 5, 10, 0}, // x before root: degenerate, clamp to 0
	}
	for _, c := range cases {
		if got := BufferRequirement(c.x, c.r, c.L); got != c.want {
			t.Errorf("BufferRequirement(%d,%d,%d) = %d, want %d", c.x, c.r, c.L, got, c.want)
		}
	}
}

func TestMaxBufferRequirement(t *testing.T) {
	tr := fig4Tree(t)
	// Arrivals 0..7, root 0, L=15: max of min(d, 15-d) over d=0..7 is 7.
	if got := tr.MaxBufferRequirement(15); got != 7 {
		t.Errorf("MaxBufferRequirement = %d, want 7", got)
	}
	// With L=10: max of min(d, 10-d) over d=0..7 is 5.
	if got := tr.MaxBufferRequirement(10); got != 5 {
		t.Errorf("MaxBufferRequirement(L=10) = %d, want 5", got)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	tr := fig4Tree(t)
	s := tr.String()
	if s != "0(1 2 3(4) 5(6 7))" {
		t.Errorf("String = %q", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !tr.Equal(back) {
		t.Errorf("round trip mismatch: %q vs %q", tr, back)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "(", "0(", "0(1", "0)", "0(1))", "a", "0(1 b)"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseNegativeArrival(t *testing.T) {
	tr, err := Parse("-1(0 1)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Arrival != -1 || tr.Size() != 3 {
		t.Errorf("unexpected parse result %v", tr)
	}
}

// randomTree builds a random merge tree with the preorder property over
// arrivals first..first+n-1.
func randomTree(rng *rand.Rand, first int64, n int) *Tree {
	if n == 1 {
		return New(first)
	}
	root := New(first)
	remaining := n - 1
	next := first + 1
	for remaining > 0 {
		b := 1 + rng.Intn(remaining)
		root.AddChild(randomTree(rng, next, b))
		next += int64(b)
		remaining -= b
	}
	return root
}

func TestRandomTreeRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%14) + 1
		r := rand.New(rand.NewSource(seed))
		_ = rng
		tr := randomTree(r, 0, n)
		if tr.Validate() != nil || tr.ValidatePreorder() != nil {
			return false
		}
		back, err := Parse(tr.String())
		if err != nil {
			return false
		}
		if !tr.Equal(back) {
			return false
		}
		// Parent map round trip too.
		rebuilt, err := FromParentMap(tr.Arrival, tr.ParentMap())
		if err != nil {
			return false
		}
		return rebuilt.Equal(tr) && rebuilt.MergeCost() == tr.MergeCost()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	tr := fig4Tree(t)
	cp := tr.Clone()
	if !tr.Equal(cp) {
		t.Fatalf("clone not equal")
	}
	cp.Children[0].Arrival = 99
	if tr.Equal(cp) {
		t.Errorf("mutating the clone must not affect equality with the original")
	}
	if tr.Children[0].Arrival == 99 {
		t.Errorf("clone shares structure with original")
	}
	var nilTree *Tree
	if nilTree.Equal(tr) || tr.Equal(nil) {
		t.Errorf("nil comparisons should be false")
	}
	if !nilTree.Equal(nil) {
		t.Errorf("nil == nil should hold")
	}
}

func TestRenderContainsAllNodes(t *testing.T) {
	tr := fig4Tree(t)
	r := tr.Render()
	for _, want := range []string{"0", "└── 5", "└── 7", "├── 1"} {
		if !strings.Contains(r, want) {
			t.Errorf("Render missing %q:\n%s", want, r)
		}
	}
	if got := strings.Count(r, "\n"); got != 8 {
		t.Errorf("Render should have 8 lines, got %d:\n%s", got, r)
	}
}

func TestParentMapRoundTrip(t *testing.T) {
	tr := fig4Tree(t)
	pm := tr.ParentMap()
	if len(pm) != 7 {
		t.Fatalf("ParentMap size = %d, want 7", len(pm))
	}
	if pm[7] != 5 || pm[4] != 3 || pm[1] != 0 {
		t.Errorf("ParentMap wrong: %v", pm)
	}
	back, err := FromParentMap(0, pm)
	if err != nil {
		t.Fatalf("FromParentMap: %v", err)
	}
	if !back.Equal(tr) {
		t.Errorf("FromParentMap round trip mismatch: %v vs %v", back, tr)
	}
}

func TestFromParentMapErrors(t *testing.T) {
	// Parent that is not a node.
	if _, err := FromParentMap(0, map[int64]int64{2: 1}); err == nil {
		t.Errorf("expected error for dangling parent")
	}
	// Child earlier than parent.
	if _, err := FromParentMap(0, map[int64]int64{1: 2, 2: 0}); err == nil {
		t.Errorf("expected error for child earlier than parent")
	}
}

func TestMergeCostAll(t *testing.T) {
	// For the receive-all model the optimal tree for n=4 is a balanced
	// split; check w(x) = z(x) - p(x) on a hand-built tree 0(1 2(3)):
	// w(1)=1-0=1, w(2)=3-0=3, w(3)=3-2=1 -> 5, matching M_w(4)=5.
	tr, err := Parse("0(1 2(3))")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := tr.MergeCostAll(); got != 5 {
		t.Errorf("MergeCostAll = %d, want 5", got)
	}
	// Receive-two cost of the same tree: l(1)=1, l(2)=2*3-2-0=4, l(3)=1 -> 6.
	if got := tr.MergeCost(); got != 6 {
		t.Errorf("MergeCost = %d, want 6", got)
	}
}

func TestLengthsReceiveAll(t *testing.T) {
	tr := fig4Tree(t)
	lengths := tr.LengthsReceiveAll(15)
	var sum int64
	for _, nl := range lengths {
		if nl.Root {
			if nl.Length != 15 {
				t.Errorf("root length = %d, want 15", nl.Length)
			}
			continue
		}
		want := nl.Last - nl.Parent
		if nl.Length != want {
			t.Errorf("receive-all length(%d) = %d, want %d", nl.Arrival, nl.Length, want)
		}
		sum += nl.Length
	}
	if sum != tr.MergeCostAll() {
		t.Errorf("sum %d != MergeCostAll %d", sum, tr.MergeCostAll())
	}
}

func TestReceiveAllNeverExceedsReceiveTwo(t *testing.T) {
	// Property: for any tree, the receive-all merge cost is at most the
	// receive-two merge cost (receive-all clients are strictly more capable).
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(14)
		tr := randomTree(rng, int64(rng.Intn(5)), n)
		if tr.MergeCostAll() > tr.MergeCost() {
			t.Fatalf("receive-all cost %d exceeds receive-two cost %d for %v",
				tr.MergeCostAll(), tr.MergeCost(), tr)
		}
	}
}

func TestWalkVisitsInPreorder(t *testing.T) {
	tr := fig4Tree(t)
	var order []int64
	var parents []int64
	tr.Walk(func(node, parent *Tree) {
		order = append(order, node.Arrival)
		if parent == nil {
			parents = append(parents, -1)
		} else {
			parents = append(parents, parent.Arrival)
		}
	})
	wantOrder := []int64{0, 1, 2, 3, 4, 5, 6, 7}
	wantParents := []int64{-1, 0, 0, 0, 3, 0, 5, 5}
	for i := range wantOrder {
		if order[i] != wantOrder[i] || parents[i] != wantParents[i] {
			t.Fatalf("Walk order/parents = %v/%v, want %v/%v", order, parents, wantOrder, wantParents)
		}
	}
}

func BenchmarkMergeCostFig4(b *testing.B) {
	tr, _ := Parse("0(1 2 3(4) 5(6 7))")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.MergeCost()
	}
}
