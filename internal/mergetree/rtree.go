package mergetree

import (
	"fmt"
	"strings"
)

// RTree is a merge tree over real-valued arrival times.  It is used by the
// on-line baselines (dyadic stream merging, immediate-service patching)
// whose clients arrive at arbitrary points in continuous time rather than at
// slot boundaries.  The stream-length formulas of Lemmas 1 and 17 hold for
// arbitrary arrival times [6], so the cost accounting is the same as for the
// slot-valued Tree up to the change of domain.
type RTree struct {
	// Arrival is the time at which the stream owned by this node starts.
	Arrival float64
	// Children are the direct merges into this stream, ordered by arrival.
	Children []*RTree
}

// NewR returns a single-node real-valued merge tree.
func NewR(arrival float64) *RTree {
	return &RTree{Arrival: arrival}
}

// AddChild appends child as the last (right-most) child of t.
func (t *RTree) AddChild(child *RTree) {
	t.Children = append(t.Children, child)
}

// Size returns the number of nodes in the tree.
func (t *RTree) Size() int {
	if t == nil {
		return 0
	}
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Last returns z(t): the arrival of the right-most descendant.
func (t *RTree) Last() float64 {
	cur := t
	for len(cur.Children) > 0 {
		cur = cur.Children[len(cur.Children)-1]
	}
	return cur.Arrival
}

// Arrivals returns the arrivals of all nodes in preorder.
func (t *RTree) Arrivals() []float64 {
	out := make([]float64, 0, t.Size())
	t.Walk(func(node, _ *RTree) {
		out = append(out, node.Arrival)
	})
	return out
}

// Walk visits every node in preorder with its parent (nil for the root).
func (t *RTree) Walk(visit func(node, parent *RTree)) {
	var rec func(node, parent *RTree)
	rec = func(node, parent *RTree) {
		visit(node, parent)
		for _, c := range node.Children {
			rec(c, node)
		}
	}
	rec(t, nil)
}

// Validate checks the merge-tree requirements: children strictly later than
// parents and siblings in strictly increasing order.
func (t *RTree) Validate() error {
	var err error
	t.Walk(func(node, parent *RTree) {
		if err != nil {
			return
		}
		if parent != nil && node.Arrival <= parent.Arrival {
			err = fmt.Errorf("mergetree: node %g is not later than its parent %g", node.Arrival, parent.Arrival)
			return
		}
		for i := 1; i < len(node.Children); i++ {
			if node.Children[i].Arrival <= node.Children[i-1].Arrival {
				err = fmt.Errorf("mergetree: children of %g are not ordered", node.Arrival)
				return
			}
		}
	})
	return err
}

// ValidatePreorder checks the preorder-traversal property.
func (t *RTree) ValidatePreorder() error {
	arr := t.Arrivals()
	for i := 1; i < len(arr); i++ {
		if arr[i] <= arr[i-1] {
			return fmt.Errorf("mergetree: preorder property violated: %g then %g", arr[i-1], arr[i])
		}
	}
	return nil
}

// MergeCost returns the receive-two merge cost: the sum over non-root nodes
// of 2 z(x) − x − p(x) (Lemma 1 for general arrivals).
func (t *RTree) MergeCost() float64 {
	var cost float64
	t.Walk(func(node, parent *RTree) {
		if parent != nil {
			cost += 2*node.Last() - node.Arrival - parent.Arrival
		}
	})
	return cost
}

// MergeCostAll returns the receive-all merge cost: the sum over non-root
// nodes of z(x) − p(x) (Lemma 17 for general arrivals).
func (t *RTree) MergeCostAll() float64 {
	var cost float64
	t.Walk(func(node, parent *RTree) {
		if parent != nil {
			cost += node.Last() - parent.Arrival
		}
	})
	return cost
}

// RequiredRootLength returns the minimum full stream length for which this
// tree is feasible: the last arrival must merge to the root before the root
// stream ends, so the root must run for at least Last() − Arrival plus the
// time to play the remainder — in the continuous setting the binding
// constraint is z − r <= L (clients arriving at z still receive data from
// the root).
func (t *RTree) RequiredRootLength() float64 {
	return t.Last() - t.Arrival
}

// RForest is a merge forest over real-valued arrival times.
type RForest struct {
	// L is the full stream (media) length in the same time unit as arrivals.
	L float64
	// Trees are the merge trees ordered by root arrival.
	Trees []*RTree
}

// NewRForest returns an empty real-valued forest for media length L.
func NewRForest(L float64) *RForest {
	return &RForest{L: L}
}

// Add appends a tree to the forest.
func (f *RForest) Add(t *RTree) {
	f.Trees = append(f.Trees, t)
}

// Size returns the total number of arrivals.
func (f *RForest) Size() int {
	n := 0
	for _, t := range f.Trees {
		n += t.Size()
	}
	return n
}

// Streams returns the number of full streams (roots).
func (f *RForest) Streams() int {
	return len(f.Trees)
}

// FullCost returns s·L plus the merge costs of the trees (receive-two).
func (f *RForest) FullCost() float64 {
	cost := float64(len(f.Trees)) * f.L
	for _, t := range f.Trees {
		cost += t.MergeCost()
	}
	return cost
}

// NormalizedCost returns the full cost in units of complete media streams.
func (f *RForest) NormalizedCost() float64 {
	if f.L == 0 {
		return 0
	}
	return f.FullCost() / f.L
}

// Validate checks every tree and the ordering of trees.
func (f *RForest) Validate() error {
	if f.L <= 0 {
		return fmt.Errorf("mergetree: RForest has invalid media length %g", f.L)
	}
	var prevLast float64
	for i, t := range f.Trees {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		if err := t.ValidatePreorder(); err != nil {
			return fmt.Errorf("tree %d: %w", i, err)
		}
		if t.RequiredRootLength() > f.L {
			return fmt.Errorf("mergetree: tree %d spans %g which exceeds media length %g",
				i, t.RequiredRootLength(), f.L)
		}
		if i > 0 && t.Arrival <= prevLast {
			return fmt.Errorf("mergetree: tree %d starting at %g overlaps previous tree ending at %g",
				i, t.Arrival, prevLast)
		}
		prevLast = t.Last()
	}
	return nil
}

// String renders the forest compactly for debugging.
func (f *RForest) String() string {
	parts := make([]string, 0, len(f.Trees)+1)
	parts = append(parts, fmt.Sprintf("L=%g", f.L))
	for _, t := range f.Trees {
		parts = append(parts, fmt.Sprintf("root=%g size=%d", t.Arrival, t.Size()))
	}
	return strings.Join(parts, " | ")
}
