// Package dyadic implements the dyadic stream merging algorithm of Coffman,
// Jelenkovic and Momcilovic [9], the baseline against which the paper's
// delay-guaranteed on-line algorithm is compared empirically (Section 4.2).
//
// The (alpha, beta)-dyadic algorithm works on arbitrary (real-valued)
// arrival times.  The first arrival after the current cutoff starts a new
// full (root) stream; the cutoff of a root at time x is x + beta*L where L
// is the media length.  Within the interval (x, y] assigned to a stream at
// time x, the interval is split into dyadic sub-intervals
//
//	I_i = ( x + (y-x)/alpha^i , x + (y-x)/alpha^(i-1) ],  i = 1, 2, ...
//
// The earliest arrival inside each non-empty sub-interval becomes a child of
// x (it merges to x), and the procedure recurses on each child with its
// sub-interval.  The original paper [9] uses alpha = 2 and beta = 0.5; the
// paper under reproduction also evaluates alpha equal to the golden ratio
// and beta = F_h/L for constant-rate arrivals (Section 4.2).
//
// Two service models are provided:
//
//   - immediate service (BuildForest): every client is served the moment it
//     arrives, so a stream starts at every distinct arrival time;
//   - batched service (BuildBatchedForest): arrivals are accumulated for at
//     most one guaranteed start-up delay and served at the end of their
//     slot, so streams start only at the ends of non-empty slots.
package dyadic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arrivals"
	"repro/internal/fib"
	"repro/internal/mergetree"
)

// Params are the tunables of the (alpha, beta)-dyadic algorithm.
type Params struct {
	// Alpha controls the geometric splitting of merge intervals; it must be
	// greater than 1.  The original algorithm uses 2; the paper also uses
	// the golden ratio.
	Alpha float64
	// Beta is the root cutoff as a fraction of the media length: an arrival
	// more than Beta*L after the current root starts a new root stream.
	// It must lie in (0, 1].
	Beta float64
}

// Original returns the parameters of the original dyadic paper [9]:
// alpha = 2, beta = 0.5.
func Original() Params {
	return Params{Alpha: 2, Beta: 0.5}
}

// GoldenPoisson returns the variant evaluated in Section 4.2 for Poisson
// arrivals: alpha equal to the golden ratio and beta = 0.5.
func GoldenPoisson() Params {
	return Params{Alpha: fib.Phi, Beta: 0.5}
}

// GoldenConstantRate returns the variant evaluated in Section 4.2 for
// constant-rate arrivals: alpha equal to the golden ratio and
// beta = F_h / L, where L is the media length in slots of the guaranteed
// start-up delay and F_{h+1} < L+2 <= F_{h+2}.
func GoldenConstantRate(slotsPerMedia int64) Params {
	if slotsPerMedia < 1 {
		panic(fmt.Sprintf("dyadic: slotsPerMedia must be positive, got %d", slotsPerMedia))
	}
	beta := float64(fib.TreeSizeForLength(slotsPerMedia)) / float64(slotsPerMedia)
	if beta > 1 {
		beta = 1
	}
	return Params{Alpha: fib.Phi, Beta: beta}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Alpha > 1) || math.IsInf(p.Alpha, 0) || math.IsNaN(p.Alpha) {
		return fmt.Errorf("dyadic: alpha must be > 1, got %g", p.Alpha)
	}
	if !(p.Beta > 0) || p.Beta > 1 || math.IsNaN(p.Beta) {
		return fmt.Errorf("dyadic: beta must be in (0, 1], got %g", p.Beta)
	}
	return nil
}

// BuildForest runs the immediate-service dyadic algorithm on the arrival
// trace for media length L (in the same time unit as the trace) and returns
// the resulting merge forest.  Duplicate arrival times are collapsed: clients
// arriving at exactly the same instant share a stream.
func BuildForest(trace arrivals.Trace, L float64, p Params) (*mergetree.RForest, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if L <= 0 {
		return nil, fmt.Errorf("dyadic: media length must be positive, got %g", L)
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	times := dedupe(trace)
	forest := mergetree.NewRForest(L)
	i := 0
	for i < len(times) {
		root := times[i]
		cutoff := root + p.Beta*L
		j := i + 1
		for j < len(times) && times[j] <= cutoff {
			j++
		}
		tree := buildTree(root, cutoff, times[i+1:j], p.Alpha)
		forest.Add(tree)
		i = j
	}
	return forest, nil
}

// BuildBatchedForest batches the arrivals into slots of the given
// guaranteed start-up delay, serves each non-empty slot at its end, and runs
// the dyadic algorithm on those service times.  Unlike the delay-guaranteed
// on-line algorithm, no stream is started for an empty slot.
func BuildBatchedForest(trace arrivals.Trace, L, delay float64, p Params) (*mergetree.RForest, error) {
	if delay <= 0 {
		return nil, fmt.Errorf("dyadic: delay must be positive, got %g", delay)
	}
	batched := arrivals.Trace(trace.BatchTimes(delay))
	return BuildForest(batched, L, p)
}

// buildTree recursively constructs the dyadic merge tree for a stream
// starting at root whose merge interval extends to y, over the sorted
// arrival times in (root, y].
func buildTree(root, y float64, times []float64, alpha float64) *mergetree.RTree {
	node := mergetree.NewR(root)
	if len(times) == 0 {
		return node
	}
	span := y - root
	if span <= 0 {
		// Degenerate interval: everything merges directly to the root.
		for _, t := range times {
			node.AddChild(mergetree.NewR(t))
		}
		return node
	}
	// Assign each arrival to its dyadic sub-interval index.
	type group struct {
		index int
		upper float64
		times []float64
	}
	groups := map[int]*group{}
	maxIdx := 0
	for _, t := range times {
		idx := intervalIndex(root, span, t, alpha)
		g, ok := groups[idx]
		if !ok {
			g = &group{index: idx, upper: root + span/math.Pow(alpha, float64(idx-1))}
			groups[idx] = g
			if idx > maxIdx {
				maxIdx = idx
			}
		}
		g.times = append(g.times, t)
	}
	// Children must be attached in increasing arrival order: larger interval
	// indices are closer to the root, hence earlier.
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(keys)))
	for _, k := range keys {
		g := groups[k]
		child := g.times[0]
		sub := buildTree(child, g.upper, g.times[1:], alpha)
		node.AddChild(sub)
	}
	return node
}

// intervalIndex returns the dyadic sub-interval index i >= 1 such that
// t lies in ( root + span/alpha^i , root + span/alpha^(i-1) ].
func intervalIndex(root, span, t, alpha float64) int {
	i := 1
	for t <= root+span/math.Pow(alpha, float64(i)) {
		i++
		if i > 64 {
			// t is essentially at the root (within floating-point fuzz);
			// treat it as belonging to the innermost practical interval.
			break
		}
	}
	return i
}

func dedupe(trace arrivals.Trace) []float64 {
	out := make([]float64, 0, len(trace))
	for i, t := range trace {
		if i == 0 || t != trace[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// TotalCost runs the immediate-service dyadic algorithm and returns the
// total server bandwidth in units of complete media streams.
func TotalCost(trace arrivals.Trace, L float64, p Params) (float64, error) {
	f, err := BuildForest(trace, L, p)
	if err != nil {
		return 0, err
	}
	return f.NormalizedCost(), nil
}

// TotalBatchedCost runs the batched dyadic algorithm and returns the total
// server bandwidth in units of complete media streams.
func TotalBatchedCost(trace arrivals.Trace, L, delay float64, p Params) (float64, error) {
	f, err := BuildBatchedForest(trace, L, delay, p)
	if err != nil {
		return 0, err
	}
	return f.NormalizedCost(), nil
}
