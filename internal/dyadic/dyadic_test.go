package dyadic

import (
	"math"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/fib"
)

func TestParamsValidate(t *testing.T) {
	if err := Original().Validate(); err != nil {
		t.Errorf("Original params invalid: %v", err)
	}
	if err := GoldenPoisson().Validate(); err != nil {
		t.Errorf("GoldenPoisson params invalid: %v", err)
	}
	bad := []Params{
		{Alpha: 1, Beta: 0.5},
		{Alpha: 0.5, Beta: 0.5},
		{Alpha: math.NaN(), Beta: 0.5},
		{Alpha: 2, Beta: 0},
		{Alpha: 2, Beta: 1.5},
		{Alpha: 2, Beta: math.NaN()},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestGoldenConstantRate(t *testing.T) {
	p := GoldenConstantRate(100)
	if math.Abs(p.Alpha-fib.Phi) > 1e-12 {
		t.Errorf("alpha = %v, want phi", p.Alpha)
	}
	// F_h for L=100 is 55, so beta = 0.55.
	if math.Abs(p.Beta-0.55) > 1e-12 {
		t.Errorf("beta = %v, want 0.55", p.Beta)
	}
	// For tiny L beta is clamped to 1.
	if GoldenConstantRate(1).Beta != 1 {
		t.Errorf("beta should clamp to 1 for L=1")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for non-positive L")
		}
	}()
	GoldenConstantRate(0)
}

func TestBuildForestSingleArrival(t *testing.T) {
	f, err := BuildForest(arrivals.Trace{0.3}, 1.0, Original())
	if err != nil {
		t.Fatal(err)
	}
	if f.Streams() != 1 || f.Size() != 1 {
		t.Fatalf("single arrival should yield one root stream: %v", f)
	}
	if f.FullCost() != 1.0 {
		t.Errorf("cost = %v, want 1 media stream", f.FullCost())
	}
}

func TestBuildForestRootCutoff(t *testing.T) {
	// With beta = 0.5 and L = 1, an arrival more than 0.5 after the root
	// starts a new root.
	tr := arrivals.Trace{0.0, 0.3, 0.6, 0.7}
	f, err := BuildForest(tr, 1.0, Original())
	if err != nil {
		t.Fatal(err)
	}
	if f.Streams() != 2 {
		t.Fatalf("expected 2 root streams, got %d (%v)", f.Streams(), f)
	}
	if f.Trees[0].Arrival != 0 || f.Trees[1].Arrival != 0.6 {
		t.Errorf("unexpected roots %v and %v", f.Trees[0].Arrival, f.Trees[1].Arrival)
	}
	if f.Trees[0].Size() != 2 || f.Trees[1].Size() != 2 {
		t.Errorf("unexpected tree sizes %d and %d", f.Trees[0].Size(), f.Trees[1].Size())
	}
}

func TestBuildForestDyadicSplit(t *testing.T) {
	// Root at 0, cutoff 1 (beta=1, L=1), alpha=2: interval (0.5, 1] is I_1,
	// (0.25, 0.5] is I_2, (0.125, 0.25] is I_3.  Arrivals 0.2, 0.4, 0.45,
	// 0.8: 0.8 in I_1, 0.4 and 0.45 in I_2, 0.2 in I_3.  Children of the
	// root are the earliest arrival per interval in increasing order:
	// 0.2, 0.4, 0.8; 0.45 recursively merges under 0.4.
	tr := arrivals.Trace{0.0, 0.2, 0.4, 0.45, 0.8}
	f, err := BuildForest(tr, 1.0, Params{Alpha: 2, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Streams() != 1 {
		t.Fatalf("expected a single tree, got %d", f.Streams())
	}
	root := f.Trees[0]
	if len(root.Children) != 3 {
		t.Fatalf("root should have 3 children, got %d", len(root.Children))
	}
	got := []float64{root.Children[0].Arrival, root.Children[1].Arrival, root.Children[2].Arrival}
	want := []float64{0.2, 0.4, 0.8}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("children = %v, want %v", got, want)
		}
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Arrival != 0.45 {
		t.Errorf("0.45 should merge under 0.4: %+v", root.Children[1])
	}
	if err := f.Validate(); err != nil {
		t.Errorf("forest invalid: %v", err)
	}
}

func TestBuildForestValidatesAlways(t *testing.T) {
	// Structural invariants must hold for any trace, parameters, and seed.
	for seed := int64(0); seed < 10; seed++ {
		for _, lambda := range []float64{0.002, 0.01, 0.05} {
			tr := arrivals.Poisson(lambda, 20, seed)
			for _, p := range []Params{Original(), GoldenPoisson(), GoldenConstantRate(100)} {
				f, err := BuildForest(tr, 1.0, p)
				if err != nil {
					t.Fatalf("BuildForest: %v", err)
				}
				if err := f.Validate(); err != nil {
					t.Fatalf("forest invalid (seed=%d lambda=%v params=%+v): %v", seed, lambda, p, err)
				}
				if f.Size() != len(dedupe(tr)) {
					t.Fatalf("forest covers %d arrivals, trace has %d distinct", f.Size(), len(dedupe(tr)))
				}
			}
		}
	}
}

func TestBuildForestDuplicateArrivals(t *testing.T) {
	tr := arrivals.Trace{0.1, 0.1, 0.1, 0.4}
	f, err := BuildForest(tr, 1.0, Original())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Errorf("duplicates should collapse: size = %d, want 2", f.Size())
	}
}

func TestBuildForestErrors(t *testing.T) {
	if _, err := BuildForest(arrivals.Trace{0.1}, 0, Original()); err == nil {
		t.Errorf("expected error for non-positive L")
	}
	if _, err := BuildForest(arrivals.Trace{0.1}, 1, Params{Alpha: 1, Beta: 0.5}); err == nil {
		t.Errorf("expected error for bad params")
	}
	if _, err := BuildForest(arrivals.Trace{0.5, 0.2}, 1, Original()); err == nil {
		t.Errorf("expected error for unsorted trace")
	}
	if _, err := BuildBatchedForest(arrivals.Trace{0.1}, 1, 0, Original()); err == nil {
		t.Errorf("expected error for non-positive delay")
	}
}

func TestCostNeverBelowOneStreamPerTree(t *testing.T) {
	tr := arrivals.Poisson(0.01, 50, 4)
	f, err := BuildForest(tr, 1.0, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if f.FullCost() < float64(f.Streams()) {
		t.Errorf("full cost %v below %d full streams", f.FullCost(), f.Streams())
	}
	// Cost can never exceed one full stream per client (merging only saves).
	if f.NormalizedCost() > float64(f.Size())+1e-9 {
		t.Errorf("dyadic cost %v exceeds unicast cost %d", f.NormalizedCost(), f.Size())
	}
}

func TestBatchedForestStartsFewerStreams(t *testing.T) {
	// Batching can only reduce the number of distinct stream start times.
	tr := arrivals.Poisson(0.001, 30, 9)
	imm, err := BuildForest(tr, 1.0, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	bat, err := BuildBatchedForest(tr, 1.0, 0.01, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if bat.Size() > imm.Size() {
		t.Errorf("batched schedule has more streams (%d) than immediate (%d)", bat.Size(), imm.Size())
	}
	if err := bat.Validate(); err != nil {
		t.Errorf("batched forest invalid: %v", err)
	}
}

func TestBatchedCostApproachesImmediateForSparseArrivals(t *testing.T) {
	// When the inter-arrival time is much larger than the delay, batching
	// rarely groups clients, so the two costs are close (Section 4.2).
	tr := arrivals.Poisson(0.05, 100, 11)
	imm, err := TotalCost(tr, 1.0, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	bat, err := TotalBatchedCost(tr, 1.0, 0.01, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imm-bat)/imm > 0.2 {
		t.Errorf("sparse arrivals: immediate %v and batched %v should be close", imm, bat)
	}
}

func TestDenseArrivalsBenefitFromBatching(t *testing.T) {
	// When arrivals are much denser than the delay, batching reduces cost
	// substantially.
	tr := arrivals.Poisson(0.0005, 50, 13)
	imm, err := TotalCost(tr, 1.0, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	bat, err := TotalBatchedCost(tr, 1.0, 0.01, GoldenPoisson())
	if err != nil {
		t.Fatal(err)
	}
	if bat >= imm {
		t.Errorf("dense arrivals: batched %v should be cheaper than immediate %v", bat, imm)
	}
}

func TestIntervalIndex(t *testing.T) {
	// Root 0, span 1, alpha 2: (0.5,1] -> 1, (0.25,0.5] -> 2, (0.125,0.25] -> 3.
	cases := []struct {
		t    float64
		want int
	}{
		{0.9, 1}, {0.51, 1}, {0.5, 2}, {0.3, 2}, {0.25, 3}, {0.2, 3}, {0.126, 3},
	}
	for _, c := range cases {
		if got := intervalIndex(0, 1, c.t, 2); got != c.want {
			t.Errorf("intervalIndex(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	// A time essentially at the root terminates at the safety cap.
	if got := intervalIndex(0, 1, 1e-30, 2); got < 64 {
		t.Errorf("expected the safety cap to trigger, got %d", got)
	}
}

func TestDedupe(t *testing.T) {
	out := dedupe(arrivals.Trace{1, 1, 2, 3, 3, 3})
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("dedupe = %v", out)
	}
	if len(dedupe(nil)) != 0 {
		t.Errorf("dedupe(nil) should be empty")
	}
}

func BenchmarkBuildForest(b *testing.B) {
	tr := arrivals.Poisson(0.001, 100, 1)
	p := GoldenPoisson()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildForest(tr, 1.0, p); err != nil {
			b.Fatal(err)
		}
	}
}
