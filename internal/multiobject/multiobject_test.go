package multiobject

import (
	"math"
	"testing"
)

func TestObjectSlots(t *testing.T) {
	o := Object{Name: "m", Length: 2, Delay: 0.02}
	if got := o.Slots(); got != 100 {
		t.Errorf("Slots = %d, want 100", got)
	}
	if (Object{Length: 1, Delay: 2}).Slots() != 1 {
		t.Errorf("delay longer than the media should clamp to 1 slot")
	}
	if (Object{}).Slots() != 1 {
		t.Errorf("zero object should clamp to 1 slot")
	}
}

func TestObjectValidate(t *testing.T) {
	good := Object{Name: "m", Length: 2, Delay: 0.1, Popularity: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	bad := []Object{
		{Name: "a", Length: 0, Delay: 0.1},
		{Name: "b", Length: 1, Delay: 0},
		{Name: "c", Length: 1, Delay: 2},
		{Name: "d", Length: 1, Delay: 0.1, Popularity: -1},
		{Name: "e", Length: 1, Delay: 0.1, Popularity: math.NaN()},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("object %q should be invalid", o.Name)
		}
	}
}

func TestCatalogValidate(t *testing.T) {
	c := Catalog{
		{Name: "a", Length: 1, Delay: 0.1},
		{Name: "a", Length: 1, Delay: 0.1},
	}
	if err := c.Validate(); err == nil {
		t.Errorf("duplicate names should be rejected")
	}
}

func TestZipfCatalog(t *testing.T) {
	c := ZipfCatalog(5, 2, 0.02, 1)
	if len(c) != 5 {
		t.Fatalf("catalog size %d", len(c))
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i := 1; i < len(c); i++ {
		if c[i].Popularity >= c[i-1].Popularity {
			t.Errorf("popularities should decrease: %v", c)
		}
	}
	if math.Abs(c[0].Popularity-1) > 1e-12 || math.Abs(c[1].Popularity-0.5) > 1e-12 {
		t.Errorf("Zipf(1) popularities wrong: %v %v", c[0].Popularity, c[1].Popularity)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("ZipfCatalog(0,...) should panic")
		}
	}()
	ZipfCatalog(0, 1, 0.1, 1)
}

func TestBuildSingleObjectMatchesOnlineCost(t *testing.T) {
	// One object of length 1 with delay 0.01 over a horizon of 10: the plan
	// must reproduce the on-line algorithm's normalized cost.
	cat := Catalog{{Name: "m", Length: 1, Delay: 0.01, Popularity: 1}}
	plan, err := Build(cat, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Objects) != 1 {
		t.Fatalf("expected one object plan")
	}
	op := plan.Objects[0]
	if op.SlotsPerMedia != 100 {
		t.Errorf("SlotsPerMedia = %d, want 100", op.SlotsPerMedia)
	}
	if op.Streams <= 0 || plan.TotalBusyTime <= 0 {
		t.Errorf("plan has no bandwidth usage")
	}
	// Total busy time equals streams * media length for a single object.
	if math.Abs(plan.TotalBusyTime-op.Streams*cat[0].Length) > 1e-9 {
		t.Errorf("TotalBusyTime %v inconsistent with Streams %v", plan.TotalBusyTime, op.Streams)
	}
	if plan.Peak != op.Peak {
		t.Errorf("single-object peak mismatch: %d vs %d", plan.Peak, op.Peak)
	}
	if plan.AverageChannels() <= 0 || plan.AverageChannels() > float64(plan.Peak) {
		t.Errorf("average channels %v outside (0, peak]", plan.AverageChannels())
	}
}

func TestBuildMultipleObjectsAggregates(t *testing.T) {
	cat := ZipfCatalog(4, 2, 0.04, 1)
	plan, err := Build(cat, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Objects) != 4 {
		t.Fatalf("expected 4 object plans")
	}
	var sumBusy float64
	maxPeak := 0
	for _, op := range plan.Objects {
		sumBusy += op.Streams * op.Object.Length
		if op.Peak > maxPeak {
			maxPeak = op.Peak
		}
	}
	if math.Abs(sumBusy-plan.TotalBusyTime) > 1e-6 {
		t.Errorf("per-object busy time %v does not add up to %v", sumBusy, plan.TotalBusyTime)
	}
	// The server-wide peak is at least any single object's peak and at most
	// the sum of the peaks.
	if plan.Peak < maxPeak {
		t.Errorf("aggregate peak %d below a single object's peak %d", plan.Peak, maxPeak)
	}
	sumPeaks := 0
	for _, op := range plan.Objects {
		sumPeaks += op.Peak
	}
	if plan.Peak > sumPeaks {
		t.Errorf("aggregate peak %d exceeds the sum of per-object peaks %d", plan.Peak, sumPeaks)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Catalog{{Name: "x", Length: 0, Delay: 1}}, 10); err == nil {
		t.Errorf("invalid catalog should fail")
	}
	if _, err := Build(ZipfCatalog(2, 1, 0.1, 1), 0); err == nil {
		t.Errorf("non-positive horizon should fail")
	}
}

func TestLargerDelayReducesPeak(t *testing.T) {
	// The Section 5 trade-off: increasing the guaranteed delay lowers the
	// peak bandwidth.
	small, err := Build(ZipfCatalog(3, 1, 0.01, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Build(ZipfCatalog(3, 1, 0.05, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if large.Peak >= small.Peak {
		t.Errorf("increasing the delay did not reduce the peak: %d -> %d", small.Peak, large.Peak)
	}
	if large.TotalBusyTime >= small.TotalBusyTime {
		t.Errorf("increasing the delay did not reduce total bandwidth")
	}
}

func TestFitDelaysMeetsBudget(t *testing.T) {
	cat := ZipfCatalog(4, 1, 0.02, 1)
	base, err := Build(cat, 5)
	if err != nil {
		t.Fatal(err)
	}
	budget := base.Peak / 2
	if budget < 1 {
		budget = 1
	}
	res, err := FitDelays(cat, 5, budget, 1.3, 100)
	if err != nil {
		t.Fatalf("FitDelays: %v", err)
	}
	if res.Plan.Peak > budget {
		t.Errorf("fitted plan peak %d exceeds budget %d", res.Plan.Peak, budget)
	}
	if res.Scale < 1 {
		t.Errorf("scale %v below 1", res.Scale)
	}
	// A budget that the base plan already meets requires no scaling.
	res2, err := FitDelays(cat, 5, base.Peak, 1.3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Scale != 1 {
		t.Errorf("no scaling should be needed, got %v", res2.Scale)
	}
}

func TestFitDelaysErrors(t *testing.T) {
	cat := ZipfCatalog(2, 1, 0.1, 1)
	if _, err := FitDelays(cat, 5, 0, 1.3, 10); err == nil {
		t.Errorf("budget below 1 should fail")
	}
	// An impossible budget (0 channels is rejected; 1 channel with several
	// objects cannot be met even at the maximum delay).
	if _, err := FitDelays(ZipfCatalog(6, 1, 0.1, 1), 5, 1, 1.3, 2); err == nil {
		t.Errorf("unreachable budget should report an error")
	}
}

func TestPopularityAwareDelays(t *testing.T) {
	cat := ZipfCatalog(4, 2, 0.02, 1)
	out := PopularityAwareDelays(cat, 0.02, 4)
	if len(out) != 4 {
		t.Fatalf("wrong length")
	}
	// Most popular keeps the base delay; least popular gets 4x.
	if math.Abs(out[0].Delay-0.02) > 1e-12 {
		t.Errorf("most popular delay = %v, want 0.02", out[0].Delay)
	}
	if math.Abs(out[3].Delay-0.08) > 1e-12 {
		t.Errorf("least popular delay = %v, want 0.08", out[3].Delay)
	}
	// Input must be untouched.
	if cat[3].Delay != 0.02 {
		t.Errorf("input catalog was modified")
	}
	// Delays never exceed the object length.
	clamped := PopularityAwareDelays(ZipfCatalog(2, 0.05, 0.04, 1), 0.04, 10)
	for _, o := range clamped {
		if o.Delay > o.Length {
			t.Errorf("delay %v exceeds length %v", o.Delay, o.Length)
		}
	}
	single := PopularityAwareDelays(ZipfCatalog(1, 1, 0.1, 1), 0.1, 3)
	if single[0].Delay != 0.1 {
		t.Errorf("single-object catalog should keep the base delay")
	}
}

func TestPopularityAwareReducesPeakVsUniformSmallDelay(t *testing.T) {
	// Giving unpopular objects larger delays must not increase the peak
	// compared to serving everything at the small base delay.
	cat := ZipfCatalog(5, 1, 0.01, 1)
	uniform, err := Build(cat, 4)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Build(PopularityAwareDelays(cat, 0.01, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Peak > uniform.Peak {
		t.Errorf("popularity-aware delays increased the peak: %d > %d", aware.Peak, uniform.Peak)
	}
	if aware.TotalBusyTime > uniform.TotalBusyTime {
		t.Errorf("popularity-aware delays increased total bandwidth")
	}
}

func BenchmarkBuildCatalog(b *testing.B) {
	cat := ZipfCatalog(10, 2, 0.02, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cat, 20); err != nil {
			b.Fatal(err)
		}
	}
}
