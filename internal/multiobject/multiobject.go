// Package multiobject extends the delay-guaranteed stream-merging system to
// a server that carries several media objects at once — the first direction
// for future work discussed in Section 5 of the paper.
//
// With many objects the quantity that matters is no longer the total (or
// average) bandwidth of a single object but the server's peak bandwidth:
// the maximum number of channels busy at the same instant across all
// objects.  Because stream merging allocates channel capacity dynamically,
// the delay-guaranteed algorithm is well suited to this setting: the server
// can trade guaranteed start-up delay for peak bandwidth per object, and by
// increasing the delay of (less popular) objects it can stay below a fixed
// channel budget without ever declining a request.
//
// The package provides:
//
//   - Catalog / Object: a set of media objects with lengths and Zipf-like
//     popularities,
//   - PeakBandwidth / BandwidthProfile: the server's channel usage when
//     every object runs the on-line delay-guaranteed algorithm with its own
//     start-up delay,
//   - FitDelays: the smallest uniform delay scaling for which the peak stays
//     within a channel budget (the "never decline a request" knob of
//     Section 5), and
//   - PlanSummary: per-object and aggregate cost reporting.
package multiobject

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/bandwidth"
	"repro/internal/moderr"
	"repro/internal/online"
)

// ErrCapacity marks channel-budget failures: the requested peak-bandwidth
// budget cannot be met even at the maximum allowed delay scale.  It is
// re-exported as the public facade's ErrCapacity so callers can test for
// it with errors.Is across the API boundary.
var ErrCapacity = errors.New("multiobject: channel budget cannot be met")

// Object is one media object served by the system.
type Object struct {
	// Name identifies the object in reports.
	Name string
	// Length is the playback duration in arbitrary time units (e.g. hours).
	Length float64
	// Popularity is a non-negative weight used only for reporting and for
	// popularity-aware delay assignment (larger = more popular).
	Popularity float64
	// Delay is the guaranteed start-up delay for this object, in the same
	// time unit as Length.
	Delay float64
	// Strategy optionally names the planner family the live serving layer
	// uses for this object (a public planner registry name, e.g. "online",
	// "dyadic", "batching").  Empty selects the server's default.  The
	// batch planning paths ignore it; the serving layer validates it
	// against its live-capable planners.
	Strategy string
}

// Slots returns the object's media length in slots of its start-up delay
// (the L of the paper), at least 1.
func (o Object) Slots() int64 {
	if o.Delay <= 0 || o.Length <= 0 {
		return 1
	}
	s := int64(math.Round(o.Length / o.Delay))
	if s < 1 {
		s = 1
	}
	return s
}

// Validate checks the object's parameters.
func (o Object) Validate() error {
	if o.Length <= 0 {
		return fmt.Errorf("%w: multiobject: object %q has non-positive length %g", moderr.ErrBadInstance, o.Name, o.Length)
	}
	if o.Delay <= 0 {
		return fmt.Errorf("%w: multiobject: object %q has non-positive delay %g", moderr.ErrBadInstance, o.Name, o.Delay)
	}
	if o.Delay > o.Length {
		return fmt.Errorf("%w: multiobject: object %q has delay %g larger than its length %g", moderr.ErrBadInstance, o.Name, o.Delay, o.Length)
	}
	if o.Popularity < 0 || math.IsNaN(o.Popularity) {
		return fmt.Errorf("%w: multiobject: object %q has invalid popularity %g", moderr.ErrBadInstance, o.Name, o.Popularity)
	}
	return nil
}

// Catalog is the set of objects the server carries.
type Catalog []Object

// Validate checks every object and name uniqueness.
func (c Catalog) Validate() error {
	seen := map[string]bool{}
	for _, o := range c {
		if err := o.Validate(); err != nil {
			return err
		}
		if seen[o.Name] {
			return fmt.Errorf("%w: multiobject: duplicate object name %q", moderr.ErrBadInstance, o.Name)
		}
		seen[o.Name] = true
	}
	return nil
}

// ZipfCatalog builds a catalog of k objects of the given length whose
// popularities follow a Zipf distribution with exponent s, all using the
// same start-up delay.  Objects are named "object-01", "object-02", ...
// in decreasing popularity.
func ZipfCatalog(k int, length, delay, s float64) Catalog {
	if k < 1 {
		panic(fmt.Sprintf("multiobject: ZipfCatalog requires k >= 1, got %d", k))
	}
	cat := make(Catalog, k)
	for i := 0; i < k; i++ {
		cat[i] = Object{
			Name:       fmt.Sprintf("object-%02d", i+1),
			Length:     length,
			Popularity: 1 / math.Pow(float64(i+1), s),
			Delay:      delay,
		}
	}
	return cat
}

// ObjectPlan is the per-object outcome of the delay-guaranteed plan.
type ObjectPlan struct {
	Object Object
	// SlotsPerMedia is L for this object.
	SlotsPerMedia int64
	// Streams is the total bandwidth over the horizon in complete copies of
	// this object.
	Streams float64
	// Peak is the object's own peak channel usage.
	Peak int
}

// Plan is the aggregate outcome for a catalog over a horizon.
type Plan struct {
	// Horizon is the planning horizon in time units.
	Horizon float64
	// Objects holds the per-object results in catalog order.
	Objects []ObjectPlan
	// TotalBusyTime is the aggregate channel-time used (in time units).
	TotalBusyTime float64
	// Peak is the server-wide peak number of simultaneously busy channels.
	Peak int
}

// Build computes the delay-guaranteed plan for a catalog over the given
// horizon (in time units): every object runs the on-line delay-guaranteed
// algorithm with its own delay, starting a (possibly truncated) stream at
// the end of each of its slots.
func Build(cat Catalog, horizon float64) (*Plan, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: multiobject: horizon must be positive, got %g", moderr.ErrBadInstance, horizon)
	}
	usage := bandwidth.New()
	plan := &Plan{Horizon: horizon}
	for _, o := range cat {
		L := o.Slots()
		n := int64(math.Ceil(horizon / o.Delay))
		if n < 1 {
			n = 1
		}
		srv := online.NewServer(L)
		objUsage := bandwidth.New()
		for _, nl := range srv.AppendLengths(nil, n) {
			start := float64(nl.Arrival) * o.Delay
			length := float64(nl.Length) * o.Delay
			usage.AddLength(start, length)
			objUsage.AddLength(start, length)
		}
		plan.Objects = append(plan.Objects, ObjectPlan{
			Object:        o,
			SlotsPerMedia: L,
			Streams:       objUsage.Total() / o.Length,
			Peak:          objUsage.Peak(),
		})
	}
	plan.TotalBusyTime = usage.Total()
	plan.Peak = usage.Peak()
	return plan, nil
}

// AverageChannels returns the time-average number of busy channels over the
// horizon.
func (p *Plan) AverageChannels() float64 {
	if p.Horizon <= 0 {
		return 0
	}
	return p.TotalBusyTime / p.Horizon
}

// FitResult is the outcome of searching for the smallest delay scaling that
// meets a channel budget.
type FitResult struct {
	// Scale is the factor by which every object's delay was multiplied.
	Scale float64
	// Plan is the resulting plan.
	Plan *Plan
}

// FitDelays finds, by geometric search, the smallest scaling factor >= 1 of
// all objects' start-up delays for which the server-wide peak bandwidth does
// not exceed maxChannels.  This is the Section 5 observation that a
// delay-guaranteed server can always stay within a fixed bandwidth by
// increasing the guaranteed delay instead of declining requests.  The search
// widens the scale by `step` (default 1.25 when step <= 1) until the budget
// is met or the scale exceeds maxScale.
func FitDelays(cat Catalog, horizon float64, maxChannels int, step, maxScale float64) (*FitResult, error) {
	if maxChannels < 1 {
		return nil, fmt.Errorf("%w: multiobject: maxChannels must be at least 1", moderr.ErrBadInstance)
	}
	if step <= 1 {
		step = 1.25
	}
	if maxScale < 1 {
		maxScale = 1
	}
	scale := 1.0
	for {
		scaled := make(Catalog, len(cat))
		copy(scaled, cat)
		for i := range scaled {
			scaled[i].Delay = cat[i].Delay * scale
			if scaled[i].Delay > scaled[i].Length {
				scaled[i].Delay = scaled[i].Length
			}
		}
		plan, err := Build(scaled, horizon)
		if err != nil {
			return nil, err
		}
		if plan.Peak <= maxChannels {
			return &FitResult{Scale: scale, Plan: plan}, nil
		}
		if scale >= maxScale {
			return nil, fmt.Errorf("%w: budget %d channels unreachable even with delay scale %.2f (peak %d)",
				ErrCapacity, maxChannels, scale, plan.Peak)
		}
		scale *= step
		if scale > maxScale {
			scale = maxScale
		}
	}
}

// PopularityAwareDelays assigns per-object delays so that popular objects
// get the base delay and unpopular ones progressively larger delays (up to
// maxFactor times the base), proportionally to the inverse popularity rank.
// It returns a new catalog; the input is not modified.
func PopularityAwareDelays(cat Catalog, baseDelay float64, maxFactor float64) Catalog {
	if maxFactor < 1 {
		maxFactor = 1
	}
	out := make(Catalog, len(cat))
	copy(out, cat)
	// Rank objects by popularity (descending).
	idx := make([]int, len(cat))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return cat[idx[a]].Popularity > cat[idx[b]].Popularity })
	for rank, i := range idx {
		factor := 1.0
		if len(cat) > 1 {
			factor = 1 + (maxFactor-1)*float64(rank)/float64(len(cat)-1)
		}
		out[i].Delay = baseDelay * factor
		if out[i].Delay > out[i].Length {
			out[i].Delay = out[i].Length
		}
	}
	return out
}
