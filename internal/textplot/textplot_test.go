package textplot

import (
	"strings"
	"testing"
)

func TestTableCSVAndString(t *testing.T) {
	tab := NewTable("n", "M(n)", "ratio")
	tab.AddRow(1, 0, 0.0)
	tab.AddRow(8, 21, 1.4404)
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "n,M(n),ratio\n") {
		t.Errorf("CSV header wrong: %q", csv)
	}
	if !strings.Contains(csv, "8,21,1.4404") {
		t.Errorf("CSV row wrong: %q", csv)
	}
	s := tab.String()
	if !strings.Contains(s, "M(n)") || !strings.Contains(s, "---") {
		t.Errorf("String table missing pieces:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table should have 4 lines, got %d", len(lines))
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("v")
	tab.AddRow(3.0)
	tab.AddRow(float32(2.5))
	csv := tab.CSV()
	if !strings.Contains(csv, "3\n") {
		t.Errorf("whole floats should render without decimals: %q", csv)
	}
	if !strings.Contains(csv, "2.5000") {
		t.Errorf("fractional floats should render with 4 decimals: %q", csv)
	}
}

func TestChartBasics(t *testing.T) {
	s1 := Series{Name: "online", X: []float64{0, 1, 2, 3}, Y: []float64{10, 8, 6, 5}}
	s2 := Series{Name: "optimal", X: []float64{0, 1, 2, 3}, Y: []float64{9, 7, 5, 4}}
	out := Chart(40, 10, s1, s2)
	if !strings.Contains(out, "*=online") || !strings.Contains(out, "o=optimal") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // 10 grid rows + axis + x labels + legend
		t.Errorf("chart has %d lines, want 13:\n%s", len(lines), out)
	}
}

func TestChartDegenerate(t *testing.T) {
	if out := Chart(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say no data, got %q", out)
	}
	// Single point and tiny dimensions must not panic.
	out := Chart(1, 1, Series{Name: "p", X: []float64{5}, Y: []float64{5}})
	if out == "" {
		t.Errorf("single-point chart should render something")
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart(20, 6, Series{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{3, 3, 3}})
	if !strings.Contains(out, "*") {
		t.Errorf("flat series should still plot markers:\n%s", out)
	}
}
