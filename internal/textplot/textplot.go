// Package textplot renders the experiment results as CSV, aligned text
// tables, and simple ASCII line charts so that every figure and table of the
// paper can be regenerated from the command line without external plotting
// dependencies.
package textplot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	// Headers are the column names.
	Headers []string
	// Rows are the table rows; each row must have len(Headers) cells.
	Rows [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row of cells, formatting each value with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4f", v)
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points for charting.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders one or more series as an ASCII scatter/line chart of the
// given size.  Each series is drawn with its own marker character.
func Chart(width, height int, series ...Series) string {
	if width < 10 {
		width = 10
	}
	if height < 5 {
		height = 5
	}
	var xs, ys []float64
	for _, s := range series {
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return "(no data)\n"
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	for i, line := range grid {
		yVal := ymax - (ymax-ymin)*float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%10.3f |%s|\n", yVal, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.3f%*.3f\n", "", width/2, xmin, width-width/2, xmax)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(legend)
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

func minMax(xs []float64) (float64, float64) {
	mn, mx := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}
