package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestShardloop proves marked event-loop types are screened for
// sync/atomic fields, goroutine spawns, and sync package calls, while
// unmarked shared state and annotated escapes pass.
func TestShardloop(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Shardloop, "repro/internal/demoloop")
}
