// Package analysis is the repository's static-analysis suite: a small,
// dependency-free framework in the shape of golang.org/x/tools/go/analysis
// plus the six analyzers that mechanize the architectural invariants the
// serving stack's correctness rests on (see DESIGN.md "Invariants").
//
// The framework exists because the repository builds with the standard
// library only (the tier-1 gate runs from a clean module cache), so the
// x/tools analysis plumbing is reimplemented here at the scale this module
// needs: purely syntactic passes over parsed files, one Pass per package,
// diagnostics filtered through the //modlint:ignore escape hatch.  The
// cmd/modlint binary drives the suite either standalone or as a
// `go vet -vettool` (it speaks the unitchecker *.cfg protocol).
//
// Directives understood by the suite:
//
//	//modlint:ignore [analyzer[,analyzer]] reason
//	    Suppresses diagnostics reported on the same line or the line
//	    below.  The reason is mandatory; an optional leading analyzer
//	    list narrows the suppression.
//	//modlint:noalloc
//	    On a function's doc comment: the noalloc analyzer scans the body
//	    for allocation-forcing constructs.
//	//modlint:loop
//	    On a type's doc comment: the shardloop analyzer treats the type
//	    as a single-goroutine event loop and bans sync/atomic state and
//	    goroutine spawns in its methods.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// An Analyzer is one static check: a name, documentation, and a Run
// function reporting diagnostics through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant it guards.
	Doc string
	// Run inspects a package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// A File is one parsed source file of a package.
type File struct {
	// Name is the file path as given to the loader.
	Name string
	// AST is the parsed file, including comments.
	AST *ast.File
}

// A Package is the unit of analysis: the parsed files of one directory,
// tagged with the import path the build system would give them.
type Package struct {
	// Path is the package import path (e.g. "repro/internal/serve").
	Path string
	// Files are the parsed files, in load order.
	Files []*File
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	// Analyzer is the running analyzer.
	Analyzer *Analyzer
	// Fset maps token positions of every file in the package.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file is a _test.go file, which several
// analyzers exempt (tests may use context.Background, ad-hoc errors, the
// global rand source for fixtures, ...).
func IsTestFile(f *File) bool {
	return strings.HasSuffix(f.Name, "_test.go")
}

// Imports maps each import's local name to its path for one file:
// named imports under their name, plain imports under the last path
// segment, blank imports under "_" and dot imports under ".".
func Imports(f *ast.File) map[string]string {
	m := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		m[name] = path
	}
	return m
}

// calleePkg resolves a call of the form pkg.Fn(...) to (import path of
// pkg, Fn).  It returns ok=false for any other call shape (method calls,
// locals, conversions) or when the qualifier is not an imported package
// name in this file.
func calleePkg(imports map[string]string, call *ast.CallExpr) (path, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	path, found := imports[id.Name]
	if !found {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// Run applies the analyzers to the package and returns the surviving
// diagnostics (after //modlint:ignore filtering), sorted by position.
// Malformed ignore directives are themselves reported, attributed to the
// pseudo-analyzer "modlint".
func Run(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, diags: &diags})
	}
	ig, bad := collectIgnores(fset, pkg, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		if !ig.suppresses(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
