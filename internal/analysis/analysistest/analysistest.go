// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest (reimplemented on the
// repository's dependency-free analysis framework).
//
// Fixtures live under testdata/src/<import path>/ — the directory name is
// the import path the analyzer sees, so path-scoped analyzers (facadeonly,
// detrand, errwrap) are exercised with realistic paths.  A line expecting
// a diagnostic carries a trailing comment of the form
//
//	code() // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line.  Every
// diagnostic must be matched by a want and every want must fire; the
// //modlint:ignore escape hatch runs in the same pipeline as the real
// drivers, so fixtures can (and do) prove that annotated escapes pass.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want patterns may be double-quoted (with escapes) or backquoted, like
// Go string literals.
var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each fixture package below testdata/src and applies the
// analyzer, comparing diagnostics with the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, pkgPath := range pkgPaths {
		t.Run(pkgPath, func(t *testing.T) {
			t.Helper()
			run(t, testdata, a, pkgPath)
		})
	}
}

func run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgPath))
	fset := token.NewFileSet()
	pkg, err := analysis.LoadDir(fset, dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", dir)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					text := arg[1]
					if strings.HasPrefix(arg[0], "`") {
						text = arg[2]
					}
					pat, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, text, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}

	diags := analysis.Run(fset, pkg, []*analysis.Analyzer{a})
outer:
	for _, d := range diags {
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", relpath(w.file), w.line, w.pattern)
		}
	}
}

func relpath(p string) string {
	if wd, err := filepath.Abs("."); err == nil {
		if rel, err := filepath.Rel(wd, p); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return p
}
