package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDetrand registers the fixture package as deterministic and proves
// time.Now and global math/rand calls are flagged while seeded
// *rand.Rand use, test files, and annotated calibration escapes pass.
func TestDetrand(t *testing.T) {
	analysis.DetrandPackages["repro/internal/demodet"] = true
	defer delete(analysis.DetrandPackages, "repro/internal/demodet")
	analysistest.Run(t, "testdata", analysis.Detrand, "repro/internal/demodet")
}
