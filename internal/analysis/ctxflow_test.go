package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestCtxflow proves contexts must come first, fresh roots are flagged,
// and both test files and annotated compatibility wrappers are exempt.
func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxflow, "repro/internal/democtx")
}
