package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestNoalloc proves //modlint:noalloc functions are screened for
// allocation-forcing constructs while un-annotated twins, steady-state
// self-append, value literals, and annotated warmup escapes pass.
func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Noalloc, "repro/internal/demonoalloc")
}
