// Fixture: a cmd/ program reaching around the facade in every import
// shape the old string-based test could miss.
package main

import (
	"fmt"

	. "repro/internal/online"      // want `import of "repro/internal/online"`
	engine "repro/internal/policy" // want `import of "repro/internal/policy"`
	_ "repro/internal/serve"       // want `import of "repro/internal/serve"`
	"repro/internal/sim"           // want `import of "repro/internal/sim": cmd/ and examples/ must reach algorithms through repro/mod only`
	"repro/internal/textplot"      // allowed: presentation layer
	"repro/mod"                    // allowed: the facade itself
)

func main() {
	fmt.Println(sim.RunWorkload, engine.Standard, Cost, mod.Planners, textplot.Chart)
}
