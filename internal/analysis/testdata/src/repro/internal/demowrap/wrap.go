// Fixture for the errwrap analyzer in a classified package (the test
// registers this path in ErrwrapPackages): every constructed error wraps
// a sentinel.
package demowrap

import (
	"errors"
	"fmt"
)

// ErrBad is a package-level sentinel: the one sanctioned errors.New.
var ErrBad = errors.New("demowrap: bad input")

func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("demowrap: negative count %d", n) // want `fmt.Errorf without %w in classified package`
	}
	if n == 0 {
		return errors.New("demowrap: zero count") // want `errors.New constructs an unclassifiable failure`
	}
	if n > 100 {
		return fmt.Errorf("%w: count %d exceeds 100", ErrBad, n) // classified correctly
	}
	return nil
}

func open(name string) error {
	if name == "" {
		//modlint:ignore errwrap fixture: diagnostic text is pinned by a golden test, reason recorded
		return fmt.Errorf("demowrap: empty name")
	}
	return nil
}
