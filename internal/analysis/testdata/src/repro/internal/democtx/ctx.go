// Fixture for the ctxflow analyzer: contexts go first, and library code
// never roots a fresh context without an annotated reason.
package democtx

import "context"

// Run is a long-running entry point with the context in the right place.
func Run(ctx context.Context, n int) error {
	return ctx.Err()
}

// Sweep buried its context behind the data.
func Sweep(n int, ctx context.Context) error { // want `Sweep takes context.Context as parameter 2; contexts go first`
	return ctx.Err()
}

// stale roots a fresh context instead of accepting one.
func stale() context.Context {
	return context.Background() // want `context.Background roots a fresh context in library code`
}

// staler does the same with TODO.
func staler() context.Context {
	return context.TODO() // want `context.TODO roots a fresh context in library code`
}

// compat is a ctx-free compatibility wrapper: the sanctioned shape, with
// the reason recorded where the root happens.
func compat(n int) error {
	//modlint:ignore ctxflow fixture: ctx-free compatibility wrapper, callers use Run
	return Run(context.Background(), n)
}
