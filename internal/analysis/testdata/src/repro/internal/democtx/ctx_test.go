// Tests may root contexts freely: the exemption under test.
package democtx

import "context"

func testHelper() error {
	return Run(context.Background(), 1)
}
