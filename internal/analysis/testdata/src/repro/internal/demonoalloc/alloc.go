// Fixture for the noalloc analyzer: annotated functions are screened for
// allocation-forcing constructs; identical un-annotated code passes.
package demonoalloc

import "fmt"

type event struct {
	t     float64
	delta int32
}

type loop struct {
	ends []event
	now  float64
}

// hotPath is the annotated admit-style hot path gone wrong in every way
// the analyzer can see.
//
//modlint:noalloc
func (l *loop) hotPath(t float64) string {
	l.now = t
	m := make(map[int]int)                   // want `hotPath is marked noalloc but calls make`
	p := &event{t: t}                        // want `hotPath is marked noalloc but takes the address of a composite literal`
	fresh := append([]event(nil), l.ends...) // want `hotPath is marked noalloc but appends outside the amortized` `hotPath is marked noalloc but converts to a slice type`
	f := func() { l.now = 0 }                // want `hotPath is marked noalloc but creates a closure`
	s := "t=" + fmt.Sprint(t)                // want `hotPath is marked noalloc but concatenates strings` `hotPath is marked noalloc but calls into fmt`
	_, _, _, _ = m, p, fresh, f
	return s
}

// steadyState is the legal shape: value composite literals, self-assign
// append, and plain arithmetic.
//
//modlint:noalloc
func (l *loop) steadyState(t float64) event {
	l.now = t
	l.ends = append(l.ends, event{t: t, delta: -1})
	last := len(l.ends) - 1
	l.ends[0], l.ends[last] = l.ends[last], l.ends[0]
	l.ends = l.ends[:last]
	return event{t: t}
}

// coldPath is the same code as hotPath with no annotation: out of scope.
func (l *loop) coldPath(t float64) string {
	m := make(map[int]int)
	p := &event{t: t}
	_, _ = m, p
	return "t=" + fmt.Sprint(t)
}

// warmup may allocate in its annotated body only where a reason is
// recorded.
//
//modlint:noalloc
func (l *loop) warmup(n int) {
	//modlint:ignore noalloc fixture: one-time warmup preallocation, amortized to zero
	l.ends = make([]event, 0, n)
}
