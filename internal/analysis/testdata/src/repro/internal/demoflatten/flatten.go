// Fixture for errwrap's library-wide rule: printing an error under %v
// severs the chain even in packages outside the classified set.
package demoflatten

import (
	"fmt"
	"os"
)

func load(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return fmt.Errorf("demoflatten: opening %s: %v", name, err) // want `error value passed to fmt.Errorf under a non-%w verb`
	}
	defer f.Close()
	return nil
}

func loadRight(name string) error {
	f, err := os.Open(name)
	if err != nil {
		return fmt.Errorf("demoflatten: opening %s: %w", name, err)
	}
	defer f.Close()
	return nil
}

func describe(n int) string {
	// Non-error arguments under %v are fine.
	return fmt.Errorf("count %v", n).Error()
}
