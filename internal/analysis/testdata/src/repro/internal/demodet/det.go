// Fixture for the detrand analyzer (the test registers this path in
// DetrandPackages): deterministic packages take their clock and their
// randomness from configuration.
package demodet

import (
	"math/rand"
	"time"
)

func stamp() float64 {
	return float64(time.Now().UnixNano()) // want `time.Now in deterministic package`
}

func jitter() float64 {
	return rand.Float64() // want `rand.Float64 uses the global source in deterministic package`
}

func pick(n int) int {
	return rand.Intn(n) // want `rand.Intn uses the global source`
}

// seeded is the sanctioned shape: all randomness flows from a seeded
// *rand.Rand constructed here.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// calibrate is wall-clock timing with a recorded reason.
func calibrate() time.Duration {
	//modlint:ignore detrand fixture: benchmark calibration outside any reproducible path
	start := time.Now()
	return time.Since(start)
}
