// Test files may use the global source for fixture construction.
package demodet

import "math/rand"

func shuffleFixture(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
