// Fixture for the shardloop analyzer: marked event-loop types must stay
// free of sync/atomic state and goroutine spawns; unmarked types and
// annotated escapes pass.
package demoloop

import (
	"sync"
	"sync/atomic"
)

// badLoop is a single-goroutine event loop that grew locks.
//
//modlint:loop
type badLoop struct {
	msgs  chan int
	mu    sync.Mutex   // want `loop type badLoop owns a sync.Mutex field`
	gauge atomic.Int64 // want `loop type badLoop owns a sync/atomic.Int64 field`
}

func (l *badLoop) run() {
	go l.drain() // want `method badLoop.run spawns a goroutine inside a single-goroutine event loop`
	for range l.msgs {
		func() {
			go l.drain() // want `method badLoop.run spawns a goroutine`
		}()
	}
}

func (l *badLoop) drain() {
	var n int64
	atomic.AddInt64(&n, 1) // want `method badLoop.drain calls sync/atomic.AddInt64`
}

// goodLoop communicates by channel messages only.
//
//modlint:loop
type goodLoop struct {
	msgs chan int
	done chan struct{}
}

func (l *goodLoop) run() {
	for {
		select {
		case m := <-l.msgs:
			_ = m
		case <-l.done:
			return
		}
	}
}

// sharedCounters is not a loop type: shared state may use atomics.
type sharedCounters struct {
	mu    sync.Mutex
	gauge atomic.Int64
}

func (c *sharedCounters) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauge.Add(1)
}

// annotatedLoop shows the escape hatch: a sanctioned spawn with a reason.
//
//modlint:loop
type annotatedLoop struct {
	msgs chan int
}

func (l *annotatedLoop) run() {
	//modlint:ignore shardloop fixture: sanctioned one-shot helper, reason recorded
	go func() { close(l.msgs) }()
}
