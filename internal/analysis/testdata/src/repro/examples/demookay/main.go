// Fixture: an examples/ program that stays inside the facade boundary,
// plus one sanctioned exception proving the annotated escape hatch.
package main

import (
	"repro/internal/experiments" // allowed: analytics layer
	"repro/mod"

	bench "repro/internal/stats" //modlint:ignore facadeonly fixture: sanctioned exception with a reason
)

func main() {
	_ = mod.Planners
	_ = experiments.AllWithWorkers
	_ = bench.Mean
}
