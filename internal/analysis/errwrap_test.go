package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestErrwrapClassified registers the fixture package as classified and
// proves naked fmt.Errorf and in-function errors.New are flagged while
// sentinel declarations, %w wraps, and annotated escapes pass.
func TestErrwrapClassified(t *testing.T) {
	analysis.ErrwrapPackages["repro/internal/demowrap"] = true
	defer delete(analysis.ErrwrapPackages, "repro/internal/demowrap")
	analysistest.Run(t, "testdata", analysis.Errwrap, "repro/internal/demowrap")
}

// TestErrwrapFlatten proves the library-wide rule: an err printed under
// %v instead of %w severs the chain, even outside classified packages.
func TestErrwrapFlatten(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Errwrap, "repro/internal/demoflatten")
}
