package analysis

import (
	"go/ast"
	"strconv"
)

// DetrandPackages are the deterministic packages: every run must be a
// pure function of configuration and seed, because the repository's
// equivalence tests (serial vs parallel, live vs batch, this PR vs the
// last) pin their outputs bit for bit.  Wall-clock time and the global
// math/rand source are the two ambient inputs that silently break that.
var DetrandPackages = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/live":        true,
	"repro/internal/arrivals":    true,
	"repro/internal/experiments": true,
	"repro/internal/store":       true,
}

// detrandAllowed are the math/rand functions that construct seeded
// generators rather than consuming the global source.
var detrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Detrand bans ambient nondeterminism in the deterministic packages:
// time.Now and the global math/rand functions (rand.Intn, rand.Float64,
// rand.Shuffle, ...).  All randomness must flow from a seeded *rand.Rand
// handed in by the caller.  Test files are exempt.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "deterministic packages (sim, live, arrivals, experiments) must not read wall-clock time " +
		"or the global math/rand source; randomness flows from seeded *rand.Rand values only",
	Run: runDetrand,
}

func runDetrand(pass *Pass) {
	if !DetrandPackages[pass.Pkg.Path] {
		return
	}
	for _, f := range pass.Pkg.Files {
		if IsTestFile(f) {
			continue
		}
		imports := Imports(f.AST)
		// A dot import of a banned package would defeat call resolution;
		// flag the import itself.
		for _, imp := range f.AST.Imports {
			if imp.Name == nil || imp.Name.Name != "." {
				continue
			}
			if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(path == "time" || path == "math/rand" || path == "math/rand/v2") {
				pass.Reportf(imp.Pos(), "dot import of %q hides nondeterministic calls from analysis", path)
			}
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, fn, ok := calleePkg(imports, call)
			if !ok {
				return true
			}
			switch {
			case path == "time" && fn == "Now":
				pass.Reportf(call.Pos(), "time.Now in deterministic package %s: thread the clock through configuration", pass.Pkg.Path)
			case (path == "math/rand" || path == "math/rand/v2") && !detrandAllowed[fn]:
				pass.Reportf(call.Pos(), "rand.%s uses the global source in deterministic package %s: use a seeded *rand.Rand", fn, pass.Pkg.Path)
			}
			return true
		})
	}
}
