package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ErrwrapPackages are the classified layers: the packages whose failures
// the mod facade classifies through %w sentinels (mod.ErrBadInstance,
// ErrInstanceTooLarge, ErrCapacity, ErrBadConfig, ...), so errors.Is
// answers identically whether an error crossed the facade or came from
// the layer directly.  In these packages every constructed error must
// wrap a sentinel; the shared leaf sentinels live in internal/moderr.
var ErrwrapPackages = map[string]bool{
	"repro/internal/policy":      true,
	"repro/internal/serve":       true,
	"repro/internal/live":        true,
	"repro/internal/multiobject": true,
	"repro/internal/offline":     true,
	"repro/internal/moderr":      true,
	"repro/internal/store":       true,
	"repro/mod":                  true,
}

// Errwrap guards the facade's error taxonomy.  In classified packages
// (ErrwrapPackages) a fmt.Errorf must carry %w — an error that classifies
// a failure without wrapping a sentinel is invisible to errors.Is — and
// errors.New may only declare package-level sentinels, never construct a
// failure inside a function.  Everywhere in the library trees, passing an
// error value to fmt.Errorf under %v/%s instead of %w severs the chain
// and is flagged.
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc: "classified packages wrap failures in %w sentinels: no naked fmt.Errorf, no in-function " +
		"errors.New; and no package may flatten an error chain by printing an err under %v",
	Run: runErrwrap,
}

func runErrwrap(pass *Pass) {
	classified := ErrwrapPackages[pass.Pkg.Path]
	library := classified || strings.HasPrefix(pass.Pkg.Path, "repro/internal/")
	if !library {
		return
	}
	for _, f := range pass.Pkg.Files {
		if IsTestFile(f) {
			continue
		}
		imports := Imports(f.AST)

		// errors.New outside a package-level var declaration.
		if classified {
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if path, fn, ok := calleePkg(imports, call); ok && path == "errors" && fn == "New" {
						pass.Reportf(call.Pos(), "errors.New constructs an unclassifiable failure; wrap a sentinel with fmt.Errorf(\"%%w: ...\") instead")
					}
					return true
				})
			}
		}

		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, fn, ok := calleePkg(imports, call)
			if !ok || path != "fmt" || fn != "Errorf" || len(call.Args) == 0 {
				return true
			}
			format, constant := constString(call.Args[0])
			if !constant {
				return true // dynamic format: out of scope for a syntactic pass
			}
			wraps := strings.Contains(format, "%w")
			if wraps {
				return true
			}
			if classified {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w in classified package %s: wrap a moderr/package sentinel so errors.Is can classify the failure", pass.Pkg.Path)
				return true
			}
			for _, arg := range call.Args[1:] {
				if looksLikeErr(arg) {
					pass.Reportf(call.Pos(), "error value passed to fmt.Errorf under a non-%%w verb flattens the chain; use %%w")
					return true
				}
			}
			return true
		})
	}
}

// constString evaluates a compile-time-constant string expression
// (literals and concatenations of literals).
func constString(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return "", false
		}
		s, err := strconv.Unquote(e.Value)
		return s, err == nil
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return "", false
		}
		l, okL := constString(e.X)
		r, okR := constString(e.Y)
		return l + r, okL && okR
	case *ast.ParenExpr:
		return constString(e.X)
	}
	return "", false
}

// looksLikeErr reports whether an expression is, by the repository's
// naming conventions, an error value: the identifier err (or *Err/err*
// variants) or a call/selector of Err.
func looksLikeErr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		n := e.Name
		return n == "err" || strings.HasSuffix(n, "Err") || strings.HasSuffix(n, "err") ||
			strings.HasPrefix(n, "err") || strings.HasPrefix(n, "Err")
	case *ast.SelectorExpr:
		return looksLikeErr(e.Sel)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Err" || sel.Sel.Name == "Unwrap"
		}
	}
	return false
}
