package analysis

import (
	"go/ast"
	"strings"
)

// ctxflowPrefixes are the library trees where context discipline applies:
// every internal layer plus the public facade.  main packages (cmd/,
// examples/) own their processes and may root contexts; test files are
// exempt for the same reason.
var ctxflowPrefixes = []string{"repro/internal/", "repro/mod"}

// Ctxflow enforces the PR-4 context discipline on library code: a
// function that takes a context.Context takes it as its first parameter
// (so long-running entry points compose), and nothing roots a fresh
// context with context.Background()/context.TODO() — ambient roots are
// how cancellation silently stops propagating (the bug this suite's
// dogfooding run found in the epoch replanner).  Deliberate roots — a
// nil-config default, a shutdown timer — carry a //modlint:ignore with
// the reason.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "library code takes context.Context as the first parameter and never calls " +
		"context.Background()/context.TODO(); deliberate roots need //modlint:ignore with a reason",
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	applies := false
	for _, p := range ctxflowPrefixes {
		if strings.HasPrefix(pass.Pkg.Path, p) {
			applies = true
		}
	}
	if !applies {
		return
	}
	for _, f := range pass.Pkg.Files {
		if IsTestFile(f) {
			continue
		}
		imports := Imports(f.AST)
		ctxName := ""
		for name, path := range imports {
			if path == "context" {
				ctxName = name
			}
		}
		if ctxName == "" {
			continue
		}
		isCtxType := func(e ast.Expr) bool {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Context" {
				return false
			}
			id, ok := sel.X.(*ast.Ident)
			return ok && id.Name == ctxName
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Type.Params == nil {
				continue
			}
			pos := 0
			for _, field := range fd.Type.Params.List {
				n := len(field.Names)
				if n == 0 {
					n = 1
				}
				if isCtxType(field.Type) && pos > 0 {
					pass.Reportf(field.Pos(), "%s takes context.Context as parameter %d; contexts go first", fd.Name.Name, pos+1)
				}
				pos += n
			}
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, fn, ok := calleePkg(imports, call); ok && path == "context" && (fn == "Background" || fn == "TODO") {
				pass.Reportf(call.Pos(), "context.%s roots a fresh context in library code: accept a ctx from the caller", fn)
			}
			return true
		})
	}
}
