package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //modlint:ignore comment.
type ignoreDirective struct {
	// analyzers is nil for an unscoped directive (suppresses every
	// analyzer); otherwise the set of analyzer names it suppresses.
	analyzers map[string]bool
}

// ignoreSet indexes directives by file and by the lines they cover.
type ignoreSet map[string]map[int]ignoreDirective

func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	dir, ok := lines[d.Pos.Line]
	if !ok {
		return false
	}
	return dir.analyzers == nil || dir.analyzers[d.Analyzer]
}

// collectIgnores parses every //modlint:ignore directive of the package.
// A directive covers its own line and the line below it, so it works both
// trailing a statement and as a comment of its own above one.  Directives
// with no reason, or naming an unknown analyzer, are reported as
// diagnostics themselves — a silent, unexplained escape hatch is exactly
// what the suite exists to prevent.
func collectIgnores(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) (ignoreSet, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	set := make(ignoreSet)
	var bad []Diagnostic
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Diagnostic{Pos: fset.Position(pos), Analyzer: "modlint", Message: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//modlint:ignore")
				if !ok {
					continue
				}
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. //modlint:ignoreXXX is not a directive
				}
				fields := strings.Fields(text)
				dir := ignoreDirective{}
				// An optional first word of comma-separated analyzer names
				// scopes the directive; everything after it is the reason.
				if len(fields) > 0 {
					names := strings.Split(fields[0], ",")
					all := true
					for _, n := range names {
						if !known[n] {
							all = false
						}
					}
					if all {
						dir.analyzers = make(map[string]bool, len(names))
						for _, n := range names {
							dir.analyzers[n] = true
						}
						fields = fields[1:]
					}
				}
				if len(fields) == 0 {
					report(c.Pos(), "modlint:ignore needs a reason (//modlint:ignore [analyzer[,analyzer]] reason)")
					continue
				}
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]ignoreDirective)
					set[pos.Filename] = lines
				}
				lines[pos.Line] = dir
				lines[pos.Line+1] = dir
			}
		}
	}
	return set, bad
}

// docHasDirective reports whether a doc comment group carries the given
// //modlint:<name> marker (exact comment, e.g. "noalloc" or "loop").
// The raw comment list is scanned because CommentGroup.Text strips
// directive comments.
func docHasDirective(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == "//modlint:"+marker {
			return true
		}
	}
	return false
}
