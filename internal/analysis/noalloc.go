package analysis

import (
	"go/ast"
	"go/token"
)

// allocHeavyPkgs are stdlib packages whose calls allocate by contract
// (formatting, error construction): any call into them from a noalloc
// function is flagged.
var allocHeavyPkgs = map[string]bool{
	"fmt":     true,
	"errors":  true,
	"strings": true,
	"strconv": true,
	"sort":    true,
}

// Noalloc statically screens functions annotated //modlint:noalloc for
// allocation-forcing constructs.  It is the compile-time complement of
// the BenchmarkShardAdmit 0 allocs/op CI gate: the benchmark proves the
// steady state doesn't allocate on one workload, the analyzer explains
// why by construction and catches regressions the benchmark's workload
// wouldn't exercise.
//
// The check is syntactic and intra-procedural.  Flagged constructs:
// &composite{} and new() (escaping allocations), make of any kind, map
// and slice composite literals, append not in the amortized
// x = append(x, ...) self-assign form, closures, go statements, string
// concatenation involving a string literal, []byte/[]rune conversions,
// and calls into formatting packages (fmt, errors, strings, strconv,
// sort).  Plain struct literals (returned or assigned by value) pass;
// callee bodies are not followed — annotate the callees on the hot path
// too, as the shard admit path does.  Interface boxing of non-pointer
// values is type-dependent and left to the benchmark gate.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc: "functions marked //modlint:noalloc must avoid allocation-forcing constructs " +
		"(&T{}/new/make, growing append, closures, go, string building, fmt/errors calls)",
	Run: runNoalloc,
}

func runNoalloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		imports := Imports(f.AST)
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !docHasDirective(fd.Doc, "noalloc") {
				continue
			}
			checkNoalloc(pass, imports, fd)
		}
	}
}

func checkNoalloc(pass *Pass, imports map[string]string, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// selfAppend reports whether a call is the amortized self-assign
	// append form x = append(x, ...), which reuses capacity in steady
	// state (exactly what the allocation benchmark measures).
	selfAppend := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if len(call.Args) > 0 && exprString(call.Args[0]) == exprString(as.Lhs[0]) {
			selfAppend[call] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is marked noalloc but takes the address of a composite literal", name)
				}
			}
		case *ast.CompositeLit:
			switch n.Type.(type) {
			case *ast.MapType:
				pass.Reportf(n.Pos(), "%s is marked noalloc but builds a map literal", name)
			case *ast.ArrayType:
				if at := n.Type.(*ast.ArrayType); at.Len == nil {
					pass.Reportf(n.Pos(), "%s is marked noalloc but builds a slice literal", name)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "new":
					pass.Reportf(n.Pos(), "%s is marked noalloc but calls new", name)
				case "make":
					pass.Reportf(n.Pos(), "%s is marked noalloc but calls make", name)
				case "append":
					if !selfAppend[n] {
						pass.Reportf(n.Pos(), "%s is marked noalloc but appends outside the amortized x = append(x, ...) form", name)
					}
				}
			}
			if at, ok := n.Fun.(*ast.ArrayType); ok && at.Len == nil && len(n.Args) == 1 {
				pass.Reportf(n.Pos(), "%s is marked noalloc but converts to a slice type", name)
			}
			if path, _, ok := calleePkg(imports, n); ok && allocHeavyPkgs[path] {
				pass.Reportf(n.Pos(), "%s is marked noalloc but calls into %s, which allocates", name, path)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is marked noalloc but creates a closure", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is marked noalloc but spawns a goroutine", name)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && (isStringLit(n.X) || isStringLit(n.Y)) {
				pass.Reportf(n.Pos(), "%s is marked noalloc but concatenates strings", name)
			}
		}
		return true
	})
}

func isStringLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// exprString renders simple l-value expressions (identifiers, selector
// chains, index expressions) to compare append targets; anything more
// exotic compares unequal.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.IndexExpr:
		x, i := exprString(e.X), exprString(e.Index)
		if x != "" && i != "" {
			return x + "[" + i + "]"
		}
	}
	return ""
}
