package analysis

import (
	"go/ast"
)

// Shardloop guards the serving layer's concurrency architecture: types
// marked //modlint:loop are single-goroutine event loops (the serve
// shard, the live Incremental schedulers).  All their state is confined
// to one goroutine and all communication is channel messages, so any
// sync primitive inside one is not defense — it is evidence that state
// escaped the loop.  Once shard state is snapshotted and handed between
// nodes (the ROADMAP's durability and cluster items), a mutex or stray
// goroutine here is a data-loss bug, not a style nit.
//
// For a marked type the analyzer bans: struct fields of sync/atomic
// types (sync.Mutex, sync.RWMutex, sync.Map, sync.WaitGroup, sync.Once,
// atomic.*), go statements anywhere in its methods (including nested
// function literals), and calls into the sync or sync/atomic packages
// from its methods.  Atomic fields on *other* types (the shared Server
// counters a shard deliberately publishes to) stay legal.
var Shardloop = &Analyzer{
	Name: "shardloop",
	Doc: "types marked //modlint:loop are single-goroutine event loops: no sync/atomic fields, " +
		"no goroutine spawns in methods, communication stays channel messages",
	Run: runShardloop,
}

func runShardloop(pass *Pass) {
	// Pass 1: find marked types and check their field types.
	loopTypes := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		imports := Imports(f.AST)
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				// The marker may sit on the TypeSpec or, for single-spec
				// declarations, on the GenDecl.
				if !docHasDirective(ts.Doc, "loop") && !(len(gd.Specs) == 1 && docHasDirective(gd.Doc, "loop")) {
					continue
				}
				loopTypes[ts.Name.Name] = true
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					if pkg := syncPkgOf(imports, field.Type); pkg != "" {
						pass.Reportf(field.Pos(), "loop type %s owns a %s field; single-goroutine state needs no locks — state that does is escaping the loop", ts.Name.Name, pkg)
					}
				}
			}
		}
	}
	if len(loopTypes) == 0 {
		return
	}
	// Pass 2: check the methods of marked types.
	for _, f := range pass.Pkg.Files {
		imports := Imports(f.AST)
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recv := receiverTypeName(fd)
			if !loopTypes[recv] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "method %s.%s spawns a goroutine inside a single-goroutine event loop", recv, fd.Name.Name)
				case *ast.CallExpr:
					if path, fn, ok := calleePkg(imports, n); ok && (path == "sync" || path == "sync/atomic") {
						pass.Reportf(n.Pos(), "method %s.%s calls %s.%s; loop state is single-goroutine and communicates by channel messages", recv, fd.Name.Name, path, fn)
					}
				}
				return true
			})
		}
	}
}

// syncPkgOf reports the sync/atomic package an expression's type refers
// to ("" when it is neither), looking through pointers and arrays.
func syncPkgOf(imports map[string]string, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return syncPkgOf(imports, e.X)
	case *ast.ArrayType:
		return syncPkgOf(imports, e.Elt)
	case *ast.SelectorExpr:
		id, ok := e.X.(*ast.Ident)
		if !ok {
			return ""
		}
		if path := imports[id.Name]; path == "sync" || path == "sync/atomic" {
			return path + "." + e.Sel.Name
		}
	}
	return ""
}

// receiverTypeName returns the receiver's type identifier, stripping
// pointers and generic instantiations.
func receiverTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.IndexExpr:
			t = e.X
		case *ast.IndexListExpr:
			t = e.X
		case *ast.ParenExpr:
			t = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}
