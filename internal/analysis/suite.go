package analysis

// Suite returns the repository's analyzers in reporting order.  Each one
// mechanizes an invariant DESIGN.md's "Invariants" section documents; the
// cmd/modlint binary runs the whole suite, and mod/facade_test.go runs
// Facadeonly so the test and the vettool cannot disagree.
func Suite() []*Analyzer {
	return []*Analyzer{
		Facadeonly,
		Shardloop,
		Ctxflow,
		Errwrap,
		Noalloc,
		Detrand,
	}
}
