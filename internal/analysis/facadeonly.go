package analysis

import (
	"strconv"
	"strings"
)

// FacadeAllowed is the import allowlist for cmd/ binaries and examples/
// programs: the public facade, plus the analytics/presentation layers
// (experiment tables and text charts) and the static-analysis suite
// (cmd/modlint's engine), which are consumers of the facade themselves
// rather than algorithm constructors.  Everything algorithmic — policy,
// online, offline, dyadic, batching, hybrid, core, mergetree, schedule,
// sim, multiobject, arrivals, live, serve — must be reached through
// repro/mod.
var FacadeAllowed = map[string]bool{
	"repro/mod":                  true,
	"repro/internal/experiments": true,
	"repro/internal/textplot":    true,
	"repro/internal/analysis":    true,
}

// facadeRestricted lists the import-path prefixes of the packages the
// facade boundary protects: the front-end programs.
var facadeRestricted = []string{"repro/cmd/", "repro/examples/"}

// Facadeonly enforces the PR-4 API boundary at the AST level: no cmd/ or
// examples/ file may import a repro package outside FacadeAllowed.
// Because the check runs on ImportSpecs it catches renamed, dot, and
// blank imports alike — the shapes a string scan over source text can
// miss.  mod/facade_test.go runs this same analyzer, so the test and the
// vettool cannot disagree.
var Facadeonly = &Analyzer{
	Name: "facadeonly",
	Doc: "cmd/ and examples/ must compile against the repro/mod facade only: " +
		"any repro/... import outside the allowlist (mod, experiments, textplot) is a boundary violation",
	Run: runFacadeonly,
}

func runFacadeonly(pass *Pass) {
	restricted := false
	for _, prefix := range facadeRestricted {
		if strings.HasPrefix(pass.Pkg.Path+"/", prefix) || strings.HasPrefix(pass.Pkg.Path, prefix) {
			restricted = true
		}
	}
	if !restricted {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.AST.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if strings.HasPrefix(path, "repro/") && !FacadeAllowed[path] {
				pass.Reportf(imp.Pos(), "import of %q: cmd/ and examples/ must reach algorithms through repro/mod only", path)
			}
		}
	}
}
