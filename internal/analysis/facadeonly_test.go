package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestFacadeonly proves the boundary check catches plain, renamed, blank,
// and dot imports, and that allowlisted packages and annotated escapes
// pass.
func TestFacadeonly(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Facadeonly,
		"repro/cmd/demobad",
		"repro/examples/demookay",
	)
}
