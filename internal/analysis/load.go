package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadFiles parses the given files (with comments) into a Package tagged
// with the import path.  Parse errors fail the load; the suite analyzes
// code the compiler accepts.
func LoadFiles(fset *token.FileSet, pkgPath string, files []string) (*Package, error) {
	pkg := &Package{Path: pkgPath}
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, &File{Name: name, AST: f})
	}
	return pkg, nil
}

// LoadDir parses every .go file of one directory (including _test.go
// files — analyzers decide per file whether tests are exempt) into a
// Package.  Directories with no Go files yield a nil package.
func LoadDir(fset *token.FileSet, dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Strings(files)
	return LoadFiles(fset, pkgPath, files)
}

// ModuleRoot walks up from dir to the directory holding go.mod and
// returns it along with the module path declared there.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("modlint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("modlint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// LoadPatterns expands package patterns relative to dir — "./..." style
// recursion or plain relative directories — into loaded Packages.  Like
// the build system, it skips testdata directories, hidden directories,
// and directories without Go files.
func LoadPatterns(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	pkgPath := func(d string) string {
		rel, err := filepath.Rel(root, d)
		if err != nil || rel == "." {
			return modPath
		}
		return modPath + "/" + filepath.ToSlash(rel)
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	add := func(d string) error {
		abs, err := filepath.Abs(d)
		if err != nil {
			return err
		}
		if seen[abs] {
			return nil
		}
		seen[abs] = true
		pkg, err := LoadDir(fset, abs, pkgPath(abs))
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
		}
		if base == "" || base == "." {
			base = dir
		} else if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		if !recursive {
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return add(path)
		})
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}
