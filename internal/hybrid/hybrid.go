// Package hybrid implements the hybrid server sketched in Section 5 of the
// paper: use the delay-guaranteed algorithm while the server is heavily
// loaded (its bandwidth is then bounded and independent of the arrival
// pattern, so the server never has to decline a request), and switch to a
// more opportunistic stream-merging algorithm (the batched dyadic algorithm)
// when the client arrival intensity is low and starting a stream in every
// slot would be wasteful.
//
// The policy is deliberately simple, matching the spirit of the paper's
// delay-guaranteed algorithm: time is divided into fixed decision windows of
// a whole number of slots; a window is classified as "loaded" when the
// fraction of its slots containing at least one arrival reaches a threshold,
// and consecutive windows with the same classification are served as one
// segment by the corresponding algorithm.  Merging never crosses a segment
// boundary, so each segment's cost is exactly the cost of the chosen
// algorithm on that segment.
package hybrid

import (
	"fmt"
	"math"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
	"repro/internal/online"
)

// Mode identifies the algorithm serving a segment.
type Mode int

const (
	// ModeDyadic serves only the slots that contain arrivals, using the
	// batched dyadic stream-merging algorithm.
	ModeDyadic Mode = iota
	// ModeDelayGuaranteed starts a (possibly truncated) stream at the end of
	// every slot, following the static F_h-tree structure.
	ModeDelayGuaranteed
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeDyadic:
		return "dyadic"
	case ModeDelayGuaranteed:
		return "delay-guaranteed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the hybrid policy.
type Config struct {
	// MediaLength is the media length in the trace's time unit (usually 1).
	MediaLength float64
	// Delay is the guaranteed start-up delay in the same unit.
	Delay float64
	// WindowSlots is the number of slots per load-classification window.
	WindowSlots int
	// OccupancyThreshold is the fraction of occupied slots at or above which
	// a window is classified as loaded (delay-guaranteed mode).
	OccupancyThreshold float64
	// Dyadic holds the parameters of the dyadic algorithm used in the
	// lightly-loaded mode.
	Dyadic dyadic.Params
}

// DefaultConfig returns a reasonable hybrid configuration for the given
// media length and delay.
func DefaultConfig(mediaLength, delay float64) Config {
	return Config{
		MediaLength:        mediaLength,
		Delay:              delay,
		WindowSlots:        50,
		OccupancyThreshold: 0.8,
		Dyadic:             dyadic.GoldenPoisson(),
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.MediaLength <= 0 {
		return fmt.Errorf("hybrid: media length must be positive, got %g", c.MediaLength)
	}
	if c.Delay <= 0 || c.Delay > c.MediaLength {
		return fmt.Errorf("hybrid: delay must be in (0, media length], got %g", c.Delay)
	}
	if c.WindowSlots < 1 {
		return fmt.Errorf("hybrid: window must span at least one slot, got %d", c.WindowSlots)
	}
	if c.OccupancyThreshold <= 0 || c.OccupancyThreshold > 1 {
		return fmt.Errorf("hybrid: occupancy threshold must be in (0,1], got %g", c.OccupancyThreshold)
	}
	return c.Dyadic.Validate()
}

// Segment is a maximal run of consecutive windows served in the same mode.
type Segment struct {
	// Start and End delimit the segment in time units.
	Start, End float64
	// Mode is the algorithm serving the segment.
	Mode Mode
	// Arrivals is the number of client arrivals in the segment.
	Arrivals int
	// Cost is the segment's bandwidth in complete media streams.
	Cost float64
}

// Result summarizes a hybrid run.
type Result struct {
	// Segments is the mode timeline.
	Segments []Segment
	// TotalCost is the hybrid server's bandwidth in complete media streams.
	TotalCost float64
	// PureDelayGuaranteedCost is what the pure delay-guaranteed algorithm
	// would have used over the whole horizon.
	PureDelayGuaranteedCost float64
	// PureDyadicCost is what the pure batched dyadic algorithm would have
	// used over the whole horizon.
	PureDyadicCost float64
	// LoadedFraction is the fraction of the horizon served in
	// delay-guaranteed mode.
	LoadedFraction float64
}

// Run replays the arrival trace over [0, horizon) through the hybrid policy
// and returns the mode timeline and cost comparison.
func Run(trace arrivals.Trace, horizon float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("hybrid: horizon must be positive, got %g", horizon)
	}
	slotsPerMedia := int64(math.Round(cfg.MediaLength / cfg.Delay))
	if slotsPerMedia < 1 {
		slotsPerMedia = 1
	}
	totalSlots := int64(math.Ceil(horizon / cfg.Delay))
	windowSlots := int64(cfg.WindowSlots)

	// Classify each window by slot occupancy.
	occupied := make(map[int64]bool)
	for _, t := range trace {
		if t < horizon {
			occupied[int64(math.Floor(t/cfg.Delay))] = true
		}
	}
	numWindows := (totalSlots + windowSlots - 1) / windowSlots
	modes := make([]Mode, numWindows)
	for w := int64(0); w < numWindows; w++ {
		startSlot := w * windowSlots
		endSlot := startSlot + windowSlots
		if endSlot > totalSlots {
			endSlot = totalSlots
		}
		occ := 0
		for s := startSlot; s < endSlot; s++ {
			if occupied[s] {
				occ++
			}
		}
		if float64(occ) >= cfg.OccupancyThreshold*float64(endSlot-startSlot) {
			modes[w] = ModeDelayGuaranteed
		} else {
			modes[w] = ModeDyadic
		}
	}

	// Coalesce consecutive windows with the same mode into segments and cost
	// each segment with its algorithm.
	srv := online.NewServer(slotsPerMedia)
	res := &Result{}
	var loadedSlots int64
	for w := int64(0); w < numWindows; {
		mode := modes[w]
		end := w + 1
		for end < numWindows && modes[end] == mode {
			end++
		}
		startSlot := w * windowSlots
		endSlot := end * windowSlots
		if endSlot > totalSlots {
			endSlot = totalSlots
		}
		segStart := float64(startSlot) * cfg.Delay
		segEnd := float64(endSlot) * cfg.Delay
		segTrace := sliceTrace(trace, segStart, segEnd)
		seg := Segment{Start: segStart, End: segEnd, Mode: mode, Arrivals: len(segTrace)}
		switch mode {
		case ModeDelayGuaranteed:
			n := endSlot - startSlot
			seg.Cost = float64(srv.CostClosed(n)) / float64(slotsPerMedia)
			loadedSlots += n
		case ModeDyadic:
			if len(segTrace) > 0 {
				cost, err := dyadic.TotalBatchedCost(segTrace, cfg.MediaLength, cfg.Delay, cfg.Dyadic)
				if err != nil {
					return nil, err
				}
				seg.Cost = cost
			}
		}
		res.Segments = append(res.Segments, seg)
		res.TotalCost += seg.Cost
		w = end
	}

	// Pure baselines over the whole horizon.
	res.PureDelayGuaranteedCost = float64(srv.CostClosed(totalSlots)) / float64(slotsPerMedia)
	clipped := trace.Clip(horizon)
	if len(clipped) > 0 {
		cost, err := dyadic.TotalBatchedCost(clipped, cfg.MediaLength, cfg.Delay, cfg.Dyadic)
		if err != nil {
			return nil, err
		}
		res.PureDyadicCost = cost
	}
	if totalSlots > 0 {
		res.LoadedFraction = float64(loadedSlots) / float64(totalSlots)
	}
	return res, nil
}

// sliceTrace returns the arrivals in [from, to).
func sliceTrace(trace arrivals.Trace, from, to float64) arrivals.Trace {
	var out arrivals.Trace
	for _, t := range trace {
		if t >= from && t < to {
			out = append(out, t)
		}
	}
	return out
}
