package hybrid

import (
	"math"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
)

func TestModeString(t *testing.T) {
	if ModeDyadic.String() != "dyadic" || ModeDelayGuaranteed.String() != "delay-guaranteed" {
		t.Errorf("mode names wrong")
	}
	if Mode(7).String() == "" {
		t.Errorf("unknown mode should format")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(1, 0.01).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{MediaLength: 0, Delay: 0.01, WindowSlots: 10, OccupancyThreshold: 0.5, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 0, WindowSlots: 10, OccupancyThreshold: 0.5, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 2, WindowSlots: 10, OccupancyThreshold: 0.5, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 0.01, WindowSlots: 0, OccupancyThreshold: 0.5, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 0.01, WindowSlots: 10, OccupancyThreshold: 0, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 0.01, WindowSlots: 10, OccupancyThreshold: 1.5, Dyadic: dyadic.Original()},
		{MediaLength: 1, Delay: 0.01, WindowSlots: 10, OccupancyThreshold: 0.5, Dyadic: dyadic.Params{Alpha: 1, Beta: 0.5}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cfg := DefaultConfig(1, 0.01)
	if _, err := Run(arrivals.Trace{0.5, 0.2}, 10, cfg); err == nil {
		t.Errorf("unsorted trace should fail")
	}
	if _, err := Run(arrivals.Trace{0.1}, 0, cfg); err == nil {
		t.Errorf("non-positive horizon should fail")
	}
	badCfg := cfg
	badCfg.WindowSlots = 0
	if _, err := Run(arrivals.Trace{0.1}, 10, badCfg); err == nil {
		t.Errorf("invalid config should fail")
	}
}

func TestRunEmptyTraceCostsNothingInDyadicMode(t *testing.T) {
	cfg := DefaultConfig(1, 0.01)
	res, err := Run(arrivals.Trace{}, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With no arrivals every window is lightly loaded, the dyadic mode
	// serves nothing, and the hybrid cost is zero — while the pure
	// delay-guaranteed algorithm would still pay for a stream per slot.
	if res.TotalCost != 0 {
		t.Errorf("hybrid cost on an empty trace = %v, want 0", res.TotalCost)
	}
	if res.PureDelayGuaranteedCost <= 0 {
		t.Errorf("pure delay-guaranteed cost should be positive")
	}
	if res.LoadedFraction != 0 {
		t.Errorf("no window should be classified as loaded")
	}
}

func TestRunSaturatedTraceUsesDelayGuaranteedEverywhere(t *testing.T) {
	// An arrival in every slot: every window is loaded, so the hybrid cost
	// equals the pure delay-guaranteed cost.
	cfg := DefaultConfig(1, 0.01)
	tr := arrivals.Constant(0.005, 10) // two arrivals per slot on average
	res, err := Run(tr, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadedFraction < 0.99 {
		t.Errorf("loaded fraction = %v, want ~1", res.LoadedFraction)
	}
	if math.Abs(res.TotalCost-res.PureDelayGuaranteedCost) > 1e-9 {
		t.Errorf("hybrid cost %v != pure delay-guaranteed cost %v", res.TotalCost, res.PureDelayGuaranteedCost)
	}
	for _, s := range res.Segments {
		if s.Mode != ModeDelayGuaranteed {
			t.Errorf("segment [%v,%v) should be delay-guaranteed", s.Start, s.End)
		}
	}
}

func TestRunNonStationaryTraceSwitchesModes(t *testing.T) {
	// Quiet first half (sparse Poisson), busy second half (dense constant
	// rate).  The hybrid server must use the dyadic mode in (most of) the
	// quiet half and the delay-guaranteed mode in the busy half, and must
	// beat the pure delay-guaranteed server overall.
	cfg := DefaultConfig(1, 0.01)
	quiet := arrivals.Poisson(0.2, 10, 5)
	var busy arrivals.Trace
	for _, t0 := range arrivals.Constant(0.004, 10) {
		busy = append(busy, 10+t0)
	}
	tr := arrivals.Merge(quiet, busy)
	res, err := Run(tr, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadedFraction <= 0.3 || res.LoadedFraction >= 0.7 {
		t.Errorf("loaded fraction = %v, expected roughly half the horizon", res.LoadedFraction)
	}
	if res.TotalCost >= res.PureDelayGuaranteedCost {
		t.Errorf("hybrid (%v) should beat pure delay-guaranteed (%v) on a half-quiet trace",
			res.TotalCost, res.PureDelayGuaranteedCost)
	}
	// Mode assignment sanity: every segment fully inside the busy half is
	// delay-guaranteed; every segment fully inside the quiet half (before
	// time 9) is dyadic.
	for _, s := range res.Segments {
		if s.Start >= 10.5 && s.Mode != ModeDelayGuaranteed {
			t.Errorf("busy segment [%v,%v) served in %v mode", s.Start, s.End, s.Mode)
		}
		if s.End <= 9 && s.Mode != ModeDyadic {
			t.Errorf("quiet segment [%v,%v) served in %v mode", s.Start, s.End, s.Mode)
		}
	}
	// Total arrivals across segments equals the trace size.
	total := 0
	for _, s := range res.Segments {
		total += s.Arrivals
	}
	if total != len(tr) {
		t.Errorf("segments account for %d arrivals, trace has %d", total, len(tr))
	}
}

func TestRunCostNeverWorseThanBothPureStrategiesCombined(t *testing.T) {
	// The hybrid cost is at most the pure delay-guaranteed cost plus the
	// pure dyadic cost (each segment is served by one of the two).
	for seed := int64(0); seed < 5; seed++ {
		tr := arrivals.Poisson(0.008, 15, seed)
		cfg := DefaultConfig(1, 0.01)
		res, err := Run(tr, 15, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCost > res.PureDelayGuaranteedCost+res.PureDyadicCost+1e-9 {
			t.Errorf("seed %d: hybrid cost %v exceeds the sum of both pure costs", seed, res.TotalCost)
		}
	}
}

func TestSliceTrace(t *testing.T) {
	tr := arrivals.Trace{0.5, 1.5, 2.5, 3.5}
	got := sliceTrace(tr, 1, 3)
	if len(got) != 2 || got[0] != 1.5 || got[1] != 2.5 {
		t.Errorf("sliceTrace = %v", got)
	}
}

func BenchmarkHybridRun(b *testing.B) {
	tr := arrivals.Poisson(0.005, 50, 3)
	cfg := DefaultConfig(1, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tr, 50, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
