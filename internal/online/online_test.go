package online

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/mergetree"
	"repro/internal/schedule"
)

func TestNewServerTreeSize(t *testing.T) {
	cases := []struct {
		L    int64
		size int64
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 5}, {11, 5}, {15, 8}, {19, 8}, {20, 13}, {100, 55},
	}
	for _, c := range cases {
		s := NewServer(c.L)
		if got := s.TreeSize(); got != c.size {
			t.Errorf("TreeSize(L=%d) = %d, want F_h = %d", c.L, got, c.size)
		}
		if fib.F(s.FibIndex()) != c.size {
			t.Errorf("FibIndex inconsistent for L=%d", c.L)
		}
	}
}

func TestNewServerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("NewServer(0) should panic")
		}
	}()
	NewServer(0)
}

func TestTemplateIsOptimal(t *testing.T) {
	s := NewServer(15)
	tmpl := s.Template()
	if tmpl.Size() != 8 {
		t.Fatalf("template size %d, want 8", tmpl.Size())
	}
	if tmpl.MergeCost() != core.MergeCost(8) {
		t.Errorf("template cost %d, want %d", tmpl.MergeCost(), core.MergeCost(8))
	}
	// Template returns a copy: mutating it must not corrupt the server.
	tmpl.Children[0].Arrival = 99
	if s.Template().Children[0].Arrival == 99 {
		t.Errorf("Template should return a copy")
	}
}

func TestProgramForLookup(t *testing.T) {
	s := NewServer(15)
	// The template is the Fibonacci tree 0(1 2 3(4) 5(6 7)); the arrival at
	// slot 7 has path 0 -> 5 -> 7, and the arrival at slot 23 (= 2*8+7) has
	// the same path shifted by 16.
	want7 := []int64{0, 5, 7}
	got := s.ProgramFor(7)
	if len(got) != 3 {
		t.Fatalf("ProgramFor(7) = %v", got)
	}
	for i := range want7 {
		if got[i] != want7[i] {
			t.Fatalf("ProgramFor(7) = %v, want %v", got, want7)
		}
	}
	got23 := s.ProgramFor(23)
	for i := range want7 {
		if got23[i] != want7[i]+16 {
			t.Fatalf("ProgramFor(23) = %v, want shifted %v", got23, want7)
		}
	}
	// Root slots are multiples of 8.
	if !s.IsRootSlot(0) || !s.IsRootSlot(16) || s.IsRootSlot(5) {
		t.Errorf("IsRootSlot wrong")
	}
	if p := s.ProgramFor(16); len(p) != 1 || p[0] != 16 {
		t.Errorf("ProgramFor(16) = %v, want [16]", p)
	}
}

func TestProgramForPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewServer(15).ProgramFor(-1)
}

func TestForestStructure(t *testing.T) {
	s := NewServer(15)
	f := s.Forest(20)
	if err := f.ValidateConsecutive(); err != nil {
		t.Fatalf("Forest(20): %v", err)
	}
	// 20 arrivals with trees of 8: trees at 0, 8, 16 (the last with 4
	// arrivals).
	if f.Streams() != 3 {
		t.Errorf("Streams = %d, want 3", f.Streams())
	}
	if f.Size() != 20 {
		t.Errorf("Size = %d, want 20", f.Size())
	}
	if f.Trees[2].Size() != 4 {
		t.Errorf("last tree size = %d, want 4", f.Trees[2].Size())
	}
}

func TestForestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	NewServer(15).Forest(0)
}

func TestCostExactMultiple(t *testing.T) {
	// For n a multiple of F_h the on-line cost is (n/F_h) * (L + M(F_h)).
	s := NewServer(15)
	for _, mult := range []int64{1, 2, 5, 10} {
		n := 8 * mult
		want := mult * (15 + core.MergeCost(8))
		if got := s.Cost(n); got != want {
			t.Errorf("Cost(n=%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCostMatchesForestCost(t *testing.T) {
	for _, L := range []int64{1, 4, 15, 40, 100} {
		s := NewServer(L)
		for _, n := range []int64{1, 3, 7, 20, 100, 137} {
			if got, want := Cost(L, n), s.Forest(n).FullCost(); got != want {
				t.Errorf("Cost(%d,%d) = %d, forest cost %d", L, n, got, want)
			}
		}
	}
}

func TestOnlineNeverBeatsOffline(t *testing.T) {
	// The optimal off-line cost is a lower bound for any algorithm.
	for _, L := range []int64{2, 7, 15, 50, 100} {
		for _, n := range []int64{1, 5, 13, 50, 200, 1000} {
			if Cost(L, n) < core.FullCost(L, n) {
				t.Errorf("on-line beat the optimum for L=%d n=%d", L, n)
			}
		}
	}
}

func TestOnlineWithinTheorem21UpperBound(t *testing.T) {
	for _, L := range []int64{7, 15, 50, 100} {
		for _, n := range []int64{10, 100, 1000, 5000} {
			if Cost(L, n) > UpperBound(L, n) {
				t.Errorf("A(%d,%d) = %d exceeds the Theorem 21 bound %d", L, n, Cost(L, n), UpperBound(L, n))
			}
		}
	}
}

func TestCompetitiveRatioTheorem22(t *testing.T) {
	// Theorem 22: for L >= 7 and n > L^2 + 2, A(L,n)/F(L,n) <= 1 + 2L/n.
	for _, L := range []int64{7, 10, 15, 30, 64} {
		for _, n := range []int64{L*L + 3, 2 * L * L, 10 * L * L} {
			ratio := CompetitiveRatio(L, n)
			bound := TheoremBound(L, n)
			if ratio > bound+1e-12 {
				t.Errorf("L=%d n=%d: ratio %.6f exceeds Theorem 22 bound %.6f", L, n, ratio, bound)
			}
			if ratio < 1 {
				t.Errorf("L=%d n=%d: ratio %.6f below 1", L, n, ratio)
			}
		}
	}
}

func TestCompetitiveRatioApproachesOne(t *testing.T) {
	// Fig. 9: the ratio tends to 1 as the horizon grows.
	L := int64(100)
	prev := CompetitiveRatio(L, 500)
	for _, n := range []int64{2000, 20000, 200000} {
		r := CompetitiveRatio(L, n)
		// Across orders of magnitude the ratio must not move away from 1
		// (small fluctuations from remainder effects are tolerated).
		if r > prev+0.005 {
			t.Errorf("ratio increased from %.5f to %.5f at n=%d", prev, r, n)
		}
		prev = r
	}
	if prev > 1.01 {
		t.Errorf("ratio at n=200000 is %.5f, should be within 1%% of optimal", prev)
	}
}

func TestOnlineForestSchedulesVerify(t *testing.T) {
	// The streams transmitted by the on-line algorithm must give every
	// client uninterrupted playback under the receive-two rules.
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 20}, {4, 30}, {30, 100}, {100, 222}} {
		f := NewServer(c.L).Forest(c.n)
		fs, err := schedule.Build(f)
		if err != nil {
			t.Fatalf("Build(L=%d,n=%d): %v", c.L, c.n, err)
		}
		if _, err := fs.Verify(); err != nil {
			t.Fatalf("Verify(L=%d,n=%d): %v", c.L, c.n, err)
		}
	}
}

func TestNormalizedCost(t *testing.T) {
	// One full tree of 8 arrivals for L=15 costs 36 slot units = 2.4 media
	// streams.
	if got := NormalizedCost(15, 8); got != 36.0/15.0 {
		t.Errorf("NormalizedCost(15,8) = %v, want 2.4", got)
	}
}

func TestPrefixTreeCostAtLeastOptimal(t *testing.T) {
	// The truncated last tree is a merge tree over its m arrivals, so its
	// cost is at least M(m).
	s := NewServer(100)
	for m := int64(1); m < s.TreeSize(); m++ {
		f := s.Forest(m)
		if len(f.Trees) != 1 {
			t.Fatalf("m=%d: expected a single (partial) tree", m)
		}
		if got := f.Trees[0].MergeCost(); got < core.MergeCost(m) {
			t.Errorf("prefix tree cost %d below the optimum %d for m=%d", got, core.MergeCost(m), m)
		}
	}
}

func BenchmarkNewServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewServer(1000)
	}
}

func BenchmarkProgramLookup(b *testing.B) {
	s := NewServer(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ProgramFor(int64(i))
	}
}

func BenchmarkOnlineForest(b *testing.B) {
	s := NewServer(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Forest(10000)
	}
}

// TestCostClosedMatchesCost is the property test backing the closed form:
// for randomized (L, n) pairs — including partial-group horizons, exact
// multiples of F_h, and tiny horizons — CostClosed must equal the
// forest-materializing reference Cost.
func TestCostClosedMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		L := 1 + rng.Int63n(300)
		s := NewServer(L)
		var n int64
		switch trial % 4 {
		case 0: // generic horizon
			n = 1 + rng.Int63n(5*L)
		case 1: // exact multiple of the tree size
			n = (1 + rng.Int63n(50)) * s.TreeSize()
		case 2: // partial final group
			n = (1+rng.Int63n(50))*s.TreeSize() + 1 + rng.Int63n(maxInt64(s.TreeSize()-1, 1))
		case 3: // shorter than a single group
			n = 1 + rng.Int63n(s.TreeSize())
		}
		if got, want := s.CostClosed(n), s.Cost(n); got != want {
			t.Fatalf("CostClosed(L=%d, n=%d) = %d, want Cost = %d (treeSize %d)",
				L, n, got, want, s.TreeSize())
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// TestCostClosedSmallExhaustive sweeps every horizon up to several template
// periods for a few media lengths.
func TestCostClosedSmallExhaustive(t *testing.T) {
	for _, L := range []int64{1, 2, 3, 7, 15, 20, 54} {
		s := NewServer(L)
		for n := int64(1); n <= 4*s.TreeSize()+3; n++ {
			if got, want := s.CostClosed(n), s.Cost(n); got != want {
				t.Fatalf("CostClosed(L=%d, n=%d) = %d, want %d", L, n, got, want)
			}
		}
	}
}

func TestCostClosedMatchesUpperBoundStructure(t *testing.T) {
	// At exact multiples of F_h the closed form is s1 (L + M(F_h)).
	s := NewServer(100)
	size := s.TreeSize()
	for s1 := int64(1); s1 <= 5; s1++ {
		want := s1 * (100 + core.MergeCost(size))
		if got := s.CostClosed(s1 * size); got != want {
			t.Errorf("CostClosed(%d) = %d, want %d", s1*size, got, want)
		}
	}
}

func TestCostClosedPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("CostClosed(0) should panic")
		}
	}()
	NewServer(10).CostClosed(0)
}

// TestAppendLengthsMatchesForest checks that the closed-form length stream
// equals the materialized forest's lengths, node for node.
func TestAppendLengthsMatchesForest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		L := 1 + rng.Int63n(120)
		s := NewServer(L)
		n := 1 + rng.Int63n(4*s.TreeSize()+5)
		got := s.AppendLengths(nil, n)
		want := s.Forest(n).Lengths()
		if len(got) != len(want) {
			t.Fatalf("L=%d n=%d: %d lengths, want %d", L, n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("L=%d n=%d: lengths[%d] = %+v, want %+v", L, n, i, got[i], want[i])
			}
		}
	}
}

// TestAppendProgramForReusesBuffer checks the append-into-buffer variant
// agrees with ProgramFor and does not allocate once the buffer is warm.
func TestAppendProgramForReusesBuffer(t *testing.T) {
	s := NewServer(54)
	buf := make([]int64, 0, 16)
	for slot := int64(0); slot < 200; slot++ {
		buf = s.AppendProgramFor(buf[:0], slot)
		want := s.ProgramFor(slot)
		if len(buf) != len(want) {
			t.Fatalf("slot %d: AppendProgramFor len %d, want %d", slot, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("slot %d: AppendProgramFor = %v, want %v", slot, buf, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendProgramFor(buf[:0], 12345)
	})
	if allocs != 0 {
		t.Errorf("warm AppendProgramFor allocates %.0f times per call, want 0", allocs)
	}
}

// TestAppendGroupLengthsComposes checks that rebuilding a horizon group by
// group — full template groups plus one truncated trailing group, the way
// the live serving shards account streams incrementally — reproduces
// AppendLengths(n) exactly.
func TestAppendGroupLengthsComposes(t *testing.T) {
	for _, L := range []int64{1, 2, 7, 13, 100} {
		s := NewServer(L)
		size := s.TreeSize()
		for _, n := range []int64{1, 2, size, size + 1, 3*size - 1, 3 * size, 3*size + size/2} {
			if n < 1 {
				continue
			}
			want := s.AppendLengths(nil, n)
			var got []mergetree.NodeLength
			var base int64
			for base = 0; base+size <= n; base += size {
				for _, nl := range s.AppendGroupLengths(nil, size) {
					nl.Arrival += base
					nl.Last += base
					if !nl.Root {
						nl.Parent += base
					}
					got = append(got, nl)
				}
			}
			if m := n - base; m > 0 {
				for _, nl := range s.AppendGroupLengths(nil, m) {
					nl.Arrival += base
					nl.Last += base
					if !nl.Root {
						nl.Parent += base
					}
					got = append(got, nl)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("L=%d n=%d: %d nodes, want %d", L, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("L=%d n=%d node %d: %+v, want %+v", L, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestAppendGroupLengthsPanicsOutOfRange(t *testing.T) {
	s := NewServer(20)
	for _, m := range []int64{0, -1, s.TreeSize() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AppendGroupLengths(%d) did not panic", m)
				}
			}()
			s.AppendGroupLengths(nil, m)
		}()
	}
}
