package online_test

import (
	"fmt"

	"repro/internal/online"
)

func ExampleNewServer() {
	// A 2-hour movie with a 15-minute guaranteed delay is L = 8 slots long;
	// the on-line algorithm statically uses merge trees of F_h = 8 slots...
	srv := online.NewServer(8)
	fmt.Println("tree size:", srv.TreeSize())
	// ...and for L = 15 (the paper's running example) it also uses trees of
	// 8 slots, because F_7 = 13 < 17 <= F_8 = 21.
	fmt.Println("tree size for L=15:", online.NewServer(15).TreeSize())
	// Output:
	// tree size: 5
	// tree size for L=15: 8
}

func ExampleServer_ProgramFor() {
	srv := online.NewServer(15)
	// The client arriving in slot 23 = 2*8 + 7 gets the receiving program of
	// offset 7 in the third tree: streams 16, 21, 23.
	fmt.Println(srv.ProgramFor(23))
	// Output:
	// [16 21 23]
}

func ExampleCompetitiveRatio() {
	// Theorem 22: the on-line cost approaches the off-line optimum.
	fmt.Printf("%.3f\n", online.CompetitiveRatio(15, 8))
	fmt.Printf("%.3f\n", online.CompetitiveRatio(15, 10000))
	// Output:
	// 1.000
	// 1.000
}
