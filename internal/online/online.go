// Package online implements the paper's on-line delay-guaranteed algorithm
// (Section 4.1).
//
// The algorithm operates without knowing the time horizon n.  It statically
// picks the merge-tree size F_h, where F_{h+1} < L+2 <= F_{h+2} and L is the
// media length in slots of the guaranteed start-up delay, precomputes the
// optimal merge tree for F_h arrivals (Theorem 7), and then simply repeats
// that tree forever: a full stream starts at slots 0, F_h, 2F_h, ..., and
// the arrival at slot t is slotted into position t mod F_h of the current
// tree.  Because every decision is static, the server answers each request
// with a precomputed receiving program in O(1) time and schedules streams
// deterministically — no on-line decisions at all, which is the key
// simplicity advantage over the dyadic algorithm (Section 4.2).
package online

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/mergetree"
)

// Server is the precomputed state of the on-line delay-guaranteed algorithm
// for one media object.
type Server struct {
	// L is the media length in slots (media length / guaranteed delay).
	L int64
	// h is the Fibonacci index with F_{h+1} < L+2 <= F_{h+2}.
	h int
	// treeSize is F_h, the number of arrivals per merge tree.
	treeSize int64
	// template is the optimal merge tree over arrivals 0..F_h-1.
	template *mergetree.Tree
	// programs[q] is the receiving program (path of offsets within the
	// template) for the arrival at offset q in its tree.
	programs [][]int64

	// costOnce lazily fills the closed-form cost state below; it is shared
	// by CostClosed, AppendLengths, and everything layered on them, so a
	// Server stays cheap for callers that never query costs.
	costOnce sync.Once
	// templateCost is M(F_h), the merge cost of the full template.
	templateCost int64
	// prefixCost[m] is the merge cost of the template prefix induced by the
	// arrivals 0..m-1 (prefixCost[F_h] equals templateCost).  Together with
	// templateCost it yields A(L,n) in O(1) per query: the on-line forest is
	// s1 = floor(n/F_h) full templates plus one prefix of n mod F_h arrivals.
	prefixCost []int64
	// prefixLast[q] is z(q): the last arrival of the template subtree rooted
	// at offset q, used to produce stream lengths without building trees.
	prefixLast []int64
}

// NewServer precomputes the on-line algorithm's static state for media
// length L (in slots).  The precomputation is O(L) as discussed in
// Section 4.2; every subsequent request is answered in O(1).
func NewServer(L int64) *Server {
	if L < 1 {
		panic(fmt.Sprintf("online: NewServer requires L >= 1, got %d", L))
	}
	h := fib.IndexForLength(L)
	size := fib.F(h)
	tmpl := core.OptimalTree(size)
	progs := make([][]int64, size)
	for q := int64(0); q < size; q++ {
		progs[q] = tmpl.PathTo(q)
	}
	return &Server{L: L, h: h, treeSize: size, template: tmpl, programs: progs}
}

// TreeSize returns F_h, the static number of arrivals per merge tree.
func (s *Server) TreeSize() int64 {
	return s.treeSize
}

// FibIndex returns the index h with F_{h+1} < L+2 <= F_{h+2}.
func (s *Server) FibIndex() int {
	return s.h
}

// Template returns a copy of the precomputed optimal merge tree used for
// every group of F_h consecutive slots.
func (s *Server) Template() *mergetree.Tree {
	return s.template.Clone()
}

// ProgramFor returns the receiving program for the (imaginary batched)
// client arriving at the given slot: the arrival slots of the streams it
// listens to, from the root of its tree down to its own stream.  This is the
// O(1) table lookup described in Section 4.2.
func (s *Server) ProgramFor(slot int64) []int64 {
	return s.AppendProgramFor(nil, slot)
}

// AppendProgramFor appends the receiving program for the client arriving at
// the given slot to dst and returns the extended slice.  Hot loops (schedule
// builders serving many clients) can reuse one buffer across calls instead
// of allocating a fresh path per client.
func (s *Server) AppendProgramFor(dst []int64, slot int64) []int64 {
	if slot < 0 {
		panic(fmt.Sprintf("online: negative slot %d", slot))
	}
	base := (slot / s.treeSize) * s.treeSize
	offsets := s.programs[slot%s.treeSize]
	dst = slices.Grow(dst, len(offsets))
	for _, o := range offsets {
		dst = append(dst, base+o)
	}
	return dst
}

// IsRootSlot reports whether a full stream starts at the given slot.
func (s *Server) IsRootSlot(slot int64) bool {
	return slot >= 0 && slot%s.treeSize == 0
}

// Forest returns the merge forest the on-line algorithm transmits for a time
// horizon of n slots: full copies of the template tree every F_h slots, plus
// a prefix of the template for the final partial group.  Streams in the
// final group are truncated as soon as the horizon ends (no client after
// slot n-1 exists to require them).
func (s *Server) Forest(n int64) *mergetree.Forest {
	if n < 1 {
		panic(fmt.Sprintf("online: Forest requires n >= 1, got %d", n))
	}
	f := mergetree.NewForest(s.L)
	for start := int64(0); start < n; start += s.treeSize {
		remaining := n - start
		if remaining >= s.treeSize {
			f.Add(shiftTree(s.template, start))
		} else {
			f.Add(shiftTree(prefixTree(s.template, remaining), start))
		}
	}
	return f
}

// Cost returns the total server bandwidth (in slot units) used by the
// on-line algorithm over a horizon of n slots — the quantity called A(L,n)
// in Theorem 21.  It materializes the whole merge forest and is kept as the
// reference implementation; use CostClosed for large horizons.
func (s *Server) Cost(n int64) int64 {
	return s.Forest(n).FullCost()
}

// initCostState fills the memoized closed-form cost state: the template
// merge cost, the prefix-cost table, and the per-offset subtree-last table.
// Everything is derived in one O(F_h log F_h) pass over the precomputed
// receiving programs, using the incremental structure of the prefix trees:
// extending the prefix by the arrival q adds a stream of length q - p(q)
// (Lemma 1 with z(q) = q) and lengthens the stream of every non-root proper
// ancestor of q by exactly 2, because each such ancestor's subtree
// previously ended at q-1 (subtrees of a consecutive-arrival preorder tree
// span contiguous ranges).
func (s *Server) initCostState() {
	s.costOnce.Do(func() {
		size := s.treeSize
		pc := make([]int64, size+1)
		for q := int64(1); q < size; q++ {
			path := s.programs[q]
			parent := path[len(path)-2]
			nonRootAncestors := int64(len(path) - 2)
			pc[q+1] = pc[q] + (q - parent) + 2*nonRootAncestors
		}
		last := make([]int64, size)
		var fill func(t *mergetree.Tree) int64
		fill = func(t *mergetree.Tree) int64 {
			z := t.Arrival
			for _, c := range t.Children {
				z = fill(c)
			}
			last[t.Arrival] = z
			return z
		}
		fill(s.template)
		s.prefixCost = pc
		s.prefixLast = last
		s.templateCost = pc[size]
	})
}

// CostClosed returns A(L,n) like Cost, but in closed form: s1 full-template
// costs plus one memoized prefix cost, without materializing any forest.
// The first call fills the O(F_h) memo tables; every subsequent call is
// O(1).  CostClosed(n) == Cost(n) for every n (property-tested).
func (s *Server) CostClosed(n int64) int64 {
	if n < 1 {
		panic(fmt.Sprintf("online: CostClosed requires n >= 1, got %d", n))
	}
	s.initCostState()
	s1 := n / s.treeSize
	m := n % s.treeSize
	cost := s1 * (s.L + s.templateCost)
	if m > 0 {
		cost += s.L + s.prefixCost[m]
	}
	return cost
}

// AppendLengths appends the receive-two stream lengths of every node of the
// on-line forest for horizon n — exactly Forest(n).Lengths() — to dst,
// without cloning any trees.  Full groups replay the template lengths with a
// shifted origin; the final partial group truncates each subtree's last
// arrival at the horizon.
func (s *Server) AppendLengths(dst []mergetree.NodeLength, n int64) []mergetree.NodeLength {
	if n < 1 {
		panic(fmt.Sprintf("online: AppendLengths requires n >= 1, got %d", n))
	}
	s.initCostState()
	dst = slices.Grow(dst, int(n))
	for base := int64(0); base < n; base += s.treeSize {
		m := s.treeSize
		if n-base < m {
			m = n - base
		}
		dst = s.appendGroup(dst, base, m)
	}
	return dst
}

// AppendGroupLengths appends the stream lengths of a single merge group of
// final size m (1 <= m <= TreeSize), with group-relative arrivals 0..m-1.
// For m == TreeSize this is the untruncated template group every full F_h
// slots replay; for m < TreeSize it is the truncated final group of a
// horizon with n mod F_h == m.  Incremental consumers (the live serving
// shards) account full groups as they complete and call this once more at
// drain time for the trailing partial group, reproducing AppendLengths(n)
// group by group.
func (s *Server) AppendGroupLengths(dst []mergetree.NodeLength, m int64) []mergetree.NodeLength {
	if m < 1 || m > s.treeSize {
		panic(fmt.Sprintf("online: AppendGroupLengths requires 1 <= m <= %d, got %d", s.treeSize, m))
	}
	s.initCostState()
	return s.appendGroup(dst, 0, m)
}

// appendGroup appends one merge group of final size m starting at arrival
// `base`, truncating each subtree's last arrival at the group's end.
func (s *Server) appendGroup(dst []mergetree.NodeLength, base, m int64) []mergetree.NodeLength {
	for q := int64(0); q < m; q++ {
		z := s.prefixLast[q]
		if z > m-1 {
			z = m - 1
		}
		nl := mergetree.NodeLength{Arrival: base + q, Last: base + z}
		if q == 0 {
			nl.Root = true
			nl.Length = s.L
		} else {
			path := s.programs[q]
			parent := path[len(path)-2]
			nl.Parent = base + parent
			nl.Length = 2*z - q - parent
		}
		dst = append(dst, nl)
	}
	return dst
}

// shiftTree returns a copy of t with every arrival shifted by delta.
func shiftTree(t *mergetree.Tree, delta int64) *mergetree.Tree {
	cp := mergetree.New(t.Arrival + delta)
	for _, c := range t.Children {
		cp.AddChild(shiftTree(c, delta))
	}
	return cp
}

// prefixTree returns the subtree of t induced by the arrivals < m (the first
// m arrivals in preorder).  Because the template satisfies the preorder
// property over 0..F_h-1, the prefix is itself a valid merge tree.
func prefixTree(t *mergetree.Tree, m int64) *mergetree.Tree {
	if t.Arrival >= m {
		return nil
	}
	cp := mergetree.New(t.Arrival)
	for _, c := range t.Children {
		if sub := prefixTree(c, m); sub != nil {
			cp.AddChild(sub)
		}
	}
	return cp
}

// Cost returns A(L,n), the total bandwidth of the on-line delay-guaranteed
// algorithm for media length L and horizon n, in slot units, using the
// closed form (no forest is materialized).
func Cost(L, n int64) int64 {
	return NewServer(L).CostClosed(n)
}

// NormalizedCost returns A(L,n)/L: the on-line algorithm's bandwidth in
// units of complete media streams (the y-axis of Fig. 1 and Figs. 11-12).
func NormalizedCost(L, n int64) float64 {
	return float64(Cost(L, n)) / float64(L)
}

// CompetitiveRatio returns A(L,n) / F(L,n), the ratio of the on-line cost to
// the optimal off-line full cost.  Theorem 22 bounds it by 1 + 2L/n for
// L >= 7 and n > L^2 + 2; Fig. 9 plots it.
func CompetitiveRatio(L, n int64) float64 {
	return float64(Cost(L, n)) / float64(core.FullCost(L, n))
}

// UpperBound returns the analytical upper bound of Theorem 21 on A(L,n):
// (s1+1)(L + M(F_h)) with s1 = floor(n/F_h).
func UpperBound(L, n int64) int64 {
	h := fib.IndexForLength(L)
	s1 := n / fib.F(h)
	return (s1 + 1) * (L + core.MergeCost(fib.F(h)))
}

// TheoremBound returns the competitive-ratio bound 1 + 2L/n of Theorem 22.
func TheoremBound(L, n int64) float64 {
	return 1 + 2*float64(L)/float64(n)
}
