package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// backends returns one fresh instance of every Store implementation, so
// the conformance tests below run identically against both.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return map[string]Store{"mem": NewMem(), "file": f}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if got, err := st.LoadSnapshot(0); err != nil || got != nil {
				t.Fatalf("LoadSnapshot on empty store = %v, %v; want nil, nil", got, err)
			}
			blob := []byte("first snapshot")
			if err := st.SaveSnapshot(0, blob); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			got, err := st.LoadSnapshot(0)
			if err != nil || string(got) != string(blob) {
				t.Fatalf("LoadSnapshot = %q, %v; want %q", got, err, blob)
			}
			// Saving again replaces, not appends.
			if err := st.SaveSnapshot(0, []byte("second")); err != nil {
				t.Fatalf("SaveSnapshot (replace): %v", err)
			}
			got, err = st.LoadSnapshot(0)
			if err != nil || string(got) != "second" {
				t.Fatalf("LoadSnapshot after replace = %q, %v; want %q", got, err, "second")
			}
			// Shards are independent.
			if got, err := st.LoadSnapshot(1); err != nil || got != nil {
				t.Fatalf("LoadSnapshot(1) = %v, %v; want nil, nil", got, err)
			}
		})
	}
}

func TestWALAppendReplay(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			recs := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma-longer-record")}
			for _, r := range recs {
				if err := st.AppendWAL(3, r); err != nil {
					t.Fatalf("AppendWAL: %v", err)
				}
			}
			if err := st.Flush(3, SyncOS); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			var got [][]byte
			err := st.ReplayWAL(3, func(rec []byte) error {
				got = append(got, append([]byte(nil), rec...))
				return nil
			})
			if err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if len(got) != len(recs) {
				t.Fatalf("replayed %d records, want %d", len(got), len(recs))
			}
			for i := range recs {
				if string(got[i]) != string(recs[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
				}
			}
			// Callback errors propagate.
			sentinel := errors.New("stop here")
			if err := st.ReplayWAL(3, func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
				t.Fatalf("ReplayWAL callback error = %v, want %v", err, sentinel)
			}
		})
	}
}

func TestSaveSnapshotTruncatesWAL(t *testing.T) {
	for name, st := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.AppendWAL(0, []byte("pre-snapshot")); err != nil {
				t.Fatalf("AppendWAL: %v", err)
			}
			if err := st.SaveSnapshot(0, []byte("snap")); err != nil {
				t.Fatalf("SaveSnapshot: %v", err)
			}
			n := 0
			if err := st.ReplayWAL(0, func([]byte) error { n++; return nil }); err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if n != 0 {
				t.Fatalf("WAL has %d records after snapshot, want 0", n)
			}
			// Records appended after the snapshot replay normally.
			if err := st.AppendWAL(0, []byte("post")); err != nil {
				t.Fatalf("AppendWAL: %v", err)
			}
			if err := st.Flush(0, SyncOS); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if err := st.ReplayWAL(0, func([]byte) error { n++; return nil }); err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if n != 1 {
				t.Fatalf("WAL has %d records after post-snapshot append, want 1", n)
			}
		})
	}
}

// TestWALTornTail pins the crash-mid-append semantics: a trailing partial
// frame ends replay silently, because its request was never acknowledged.
func TestWALTornTail(t *testing.T) {
	full := appendFrame(nil, []byte("complete record"))
	frame := appendFrame(nil, []byte("torn record"))
	for cut := 1; cut < len(frame); cut++ {
		buf := append(append([]byte(nil), full...), frame[:cut]...)
		n := 0
		if err := walkFrames(buf, func([]byte) error { n++; return nil }); err != nil {
			t.Fatalf("cut=%d: walkFrames = %v, want silent stop", cut, err)
		}
		if n != 1 {
			t.Fatalf("cut=%d: replayed %d records, want 1", cut, n)
		}
	}
}

// TestWALCorruptFrame pins the complement: a complete frame whose payload
// fails its checksum is corruption, not a torn tail.
func TestWALCorruptFrame(t *testing.T) {
	buf := appendFrame(nil, []byte("record one"))
	buf = appendFrame(buf, []byte("record two"))
	for off := 4; off < len(buf); off++ { // skip the first length prefix: a huge length reads as torn
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0xff
		err := walkFrames(bad, func([]byte) error { return nil })
		// Flipping a length prefix can turn the rest into a torn tail;
		// flipping payload or checksum bytes must surface corruption.
		if err != nil && !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("offset %d: walkFrames = %v, want ErrCorruptSnapshot or nil", off, err)
		}
		isLenPrefix := off >= 18 && off < 18+4 // second frame's length prefix (frame one spans 4+10+4 bytes)
		if err == nil && !isLenPrefix {
			t.Fatalf("offset %d: corruption went undetected", off)
		}
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := st.SaveSnapshot(0, []byte("durable snap")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := st.AppendWAL(0, []byte("durable rec")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile (reopen): %v", err)
	}
	defer st2.Close()
	snap, err := st2.LoadSnapshot(0)
	if err != nil || string(snap) != "durable snap" {
		t.Fatalf("LoadSnapshot after reopen = %q, %v", snap, err)
	}
	var recs []string
	if err := st2.ReplayWAL(0, func(rec []byte) error {
		recs = append(recs, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("ReplayWAL after reopen: %v", err)
	}
	if len(recs) != 1 || recs[0] != "durable rec" {
		t.Fatalf("replayed %v, want [durable rec]", recs)
	}
}

// TestFileStoreStaleWALDropped: a snapshot saved by a fresh process (no
// open WAL handle yet) must still supersede the previous run's log.
func TestFileStoreStaleWALDropped(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := st.AppendWAL(0, []byte("old run")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile (reopen): %v", err)
	}
	defer st2.Close()
	if err := st2.SaveSnapshot(0, []byte("snap")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	n := 0
	if err := st2.ReplayWAL(0, func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if n != 0 {
		t.Fatalf("stale WAL leaked %d records past the snapshot", n)
	}
}

// TestFileStoreTornTailOnDisk simulates a crash mid-append by truncating
// the WAL file itself, then replays through a reopened store.
func TestFileStoreTornTailOnDisk(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	if err := st.AppendWAL(0, []byte("kept")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := st.AppendWAL(0, []byte("torn away")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	path := filepath.Join(dir, "wal-0.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	st2, err := NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile (reopen): %v", err)
	}
	defer st2.Close()
	var recs []string
	if err := st2.ReplayWAL(0, func(rec []byte) error {
		recs = append(recs, string(rec))
		return nil
	}); err != nil {
		t.Fatalf("ReplayWAL over torn file: %v", err)
	}
	if len(recs) != 1 || recs[0] != "kept" {
		t.Fatalf("replayed %v, want [kept]", recs)
	}
}

// TestFileStoreAppendAfterTornTail pins the restart-after-crash append
// path: a torn final frame on disk must be trimmed before the reopened
// store appends, so new records never land after torn bytes.  Without
// the trim, replay after a second restart reads a garbage length prefix
// spanning the tear and the new records — either refusing to start or
// silently dropping every acknowledged record after the tear.
func TestFileStoreAppendAfterTornTail(t *testing.T) {
	// Torn tails of both shapes the review scenario produces: a short
	// fragment whose bogus length exceeds whatever follows, and a long
	// one whose bogus length could swallow the next records whole.
	tears := map[string][]byte{
		"partial-length": {0x7f},
		"huge-length":    {0xff, 0xff, 0xff, 0x7f, 0xab, 0xcd},
		"partial-frame":  appendFrame(nil, []byte("never flushed whole"))[:9],
	}
	for name, tear := range tears {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := NewFile(dir)
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			if err := st.AppendWAL(0, []byte("acked one")); err != nil {
				t.Fatalf("AppendWAL: %v", err)
			}
			if err := st.AppendWAL(0, []byte("acked two")); err != nil {
				t.Fatalf("AppendWAL: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// The crash artifact: a flushed fragment of a frame whose
			// request was never acknowledged.
			f, err := os.OpenFile(filepath.Join(dir, "wal-0.log"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatalf("open WAL for tear: %v", err)
			}
			if _, err := f.Write(tear); err != nil {
				t.Fatalf("write tear: %v", err)
			}
			f.Close()

			// Restart: replay sees the acked records, then the process
			// appends (and acks) a new one.
			st2, err := NewFile(dir)
			if err != nil {
				t.Fatalf("NewFile (restart): %v", err)
			}
			replay := func(s Store) []string {
				t.Helper()
				var recs []string
				if err := s.ReplayWAL(0, func(rec []byte) error {
					recs = append(recs, string(rec))
					return nil
				}); err != nil {
					t.Fatalf("ReplayWAL: %v", err)
				}
				return recs
			}
			if got := replay(st2); len(got) != 2 {
				t.Fatalf("replay over torn file = %v, want 2 records", got)
			}
			if err := st2.AppendWAL(0, []byte("acked three")); err != nil {
				t.Fatalf("AppendWAL after tear: %v", err)
			}
			if err := st2.Flush(0, SyncOS); err != nil {
				t.Fatalf("Flush: %v", err)
			}
			if err := st2.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Second restart: every acknowledged record must replay, in
			// order, with no corruption error.
			st3, err := NewFile(dir)
			if err != nil {
				t.Fatalf("NewFile (second restart): %v", err)
			}
			defer st3.Close()
			got := replay(st3)
			want := []string{"acked one", "acked two", "acked three"}
			if len(got) != len(want) {
				t.Fatalf("replayed %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCompleteFramesLen(t *testing.T) {
	buf := appendFrame(nil, []byte("one"))
	buf = appendFrame(buf, []byte("two longer"))
	whole := len(buf)
	if got := completeFramesLen(buf); got != whole {
		t.Fatalf("completeFramesLen(whole) = %d, want %d", got, whole)
	}
	if got := completeFramesLen(nil); got != 0 {
		t.Fatalf("completeFramesLen(nil) = %d, want 0", got)
	}
	for cut := 1; cut < walFrameOverhead+3; cut++ {
		torn := append(append([]byte(nil), buf...), appendFrame(nil, []byte("torn"))[:cut]...)
		if got := completeFramesLen(torn); got != whole {
			t.Fatalf("cut=%d: completeFramesLen = %d, want %d", cut, got, whole)
		}
	}
}

func TestNewFileBadDir(t *testing.T) {
	if _, err := NewFile("/dev/null/nope"); err == nil {
		t.Fatal("NewFile(/dev/null/nope) succeeded, want error")
	}
}

func TestMemClone(t *testing.T) {
	m := NewMem()
	if err := m.SaveSnapshot(0, []byte("snap")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := m.AppendWAL(0, []byte("rec")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := m.Flush(0, SyncOS); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	c := m.Clone()
	// Mutating the original must not leak into the clone.
	if err := m.AppendWAL(0, []byte("after clone")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	m.Corrupt(0, 0)
	snap, err := c.LoadSnapshot(0)
	if err != nil || string(snap) != "snap" {
		t.Fatalf("clone snapshot = %q, %v; want %q", snap, err, "snap")
	}
	n := 0
	if err := c.ReplayWAL(0, func([]byte) error { n++; return nil }); err != nil {
		t.Fatalf("clone ReplayWAL: %v", err)
	}
	if n != 1 {
		t.Fatalf("clone WAL has %d records, want 1", n)
	}
	if c.Snapshots() != 1 {
		t.Fatalf("clone Snapshots() = %d, want 1", c.Snapshots())
	}
	if m.WALBytes(0) <= c.WALBytes(0) {
		t.Fatalf("original WAL (%d bytes) should exceed clone's (%d)", m.WALBytes(0), c.WALBytes(0))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U8(7)
	e.U32(0xdeadbeef)
	e.U64(1 << 62)
	e.I64(-42)
	e.F64(3.14159)
	e.F64(0.0)
	e.String("hello, 世界")
	e.String("")
	e.F64s([]float64{1.5, -2.5, 0})
	e.F64s(nil)
	e.I64s([]int64{9, -9})
	blob := e.Finish()

	d, err := NewDecoder(blob)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Fatalf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<62 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.F64(); v != 3.14159 {
		t.Fatalf("F64 = %v", v)
	}
	if v := d.F64(); v != 0.0 {
		t.Fatalf("F64 zero = %v", v)
	}
	if v := d.String(); v != "hello, 世界" {
		t.Fatalf("String = %q", v)
	}
	if v := d.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	if v := d.F64s(); v != nil {
		t.Fatalf("empty F64s = %v", v)
	}
	is := d.I64s()
	if len(is) != 2 || is[0] != 9 || is[1] != -9 {
		t.Fatalf("I64s = %v", is)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestCodecDeterministic: the same values encode to the same bytes.
func TestCodecDeterministic(t *testing.T) {
	build := func() []byte {
		e := NewEncoder()
		e.F64(0.123456789)
		e.I64s([]int64{3, 1, 4, 1, 5})
		e.String("determinism")
		return e.Finish()
	}
	a, b := build(), build()
	if string(a) != string(b) {
		t.Fatalf("two encodings differ:\n%x\n%x", a, b)
	}
}

func TestDecoderRejectsCorruption(t *testing.T) {
	e := NewEncoder()
	e.U64(12345)
	e.String("payload")
	blob := e.Finish()

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(blob); cut++ {
			d, err := NewDecoder(blob[:cut])
			if err == nil {
				// Frame happened to validate (only possible for the full
				// blob, which this loop never passes) — drain and expect
				// Done to fail instead.
				d.U64()
				_ = d.String()
				err = d.Done()
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("cut=%d: error = %v, want ErrCorruptSnapshot", cut, err)
			}
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := range blob {
			bad := append([]byte(nil), blob...)
			bad[off] ^= 0x01
			if _, err := NewDecoder(bad); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("offset %d: error = %v, want ErrCorruptSnapshot", off, err)
			}
		}
	})

	t.Run("trailing-bytes", func(t *testing.T) {
		d, err := NewDecoder(blob)
		if err != nil {
			t.Fatalf("NewDecoder: %v", err)
		}
		d.U64() // leave the string unread
		if err := d.Done(); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("Done with unread payload = %v, want ErrCorruptSnapshot", err)
		}
	})

	t.Run("overrun-sticky", func(t *testing.T) {
		d, err := NewDecoder(blob)
		if err != nil {
			t.Fatalf("NewDecoder: %v", err)
		}
		d.U64()
		_ = d.String()
		if v := d.U64(); v != 0 {
			t.Fatalf("read past payload = %d, want 0", v)
		}
		if err := d.Err(); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("Err after overrun = %v, want ErrCorruptSnapshot", err)
		}
		if v := d.F64(); v != 0 { // sticky: later reads stay zero
			t.Fatalf("read after sticky error = %v, want 0", v)
		}
	})

	t.Run("bad-length-prefix", func(t *testing.T) {
		// Hand-build a frame whose string length prefix promises far more
		// bytes than the payload holds; the bound check must reject it
		// without attempting the allocation.
		var body []byte
		body = binary.LittleEndian.AppendUint32(body, codecMagic)
		body = append(body, codecVersion)
		body = binary.LittleEndian.AppendUint32(body, 0xffffffff)
		blob := binary.LittleEndian.AppendUint32(body, crc32Of(body))
		d, err := NewDecoder(blob)
		if err != nil {
			t.Fatalf("NewDecoder: %v", err)
		}
		if s := d.String(); s != "" {
			t.Fatalf("String with huge prefix = %q, want empty", s)
		}
		if err := d.Err(); !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("Err = %v, want ErrCorruptSnapshot", err)
		}
	})
}

func TestDecoderRejectsWrongMagicAndVersion(t *testing.T) {
	mk := func(magic uint32, version uint8) []byte {
		var body []byte
		body = binary.LittleEndian.AppendUint32(body, magic)
		body = append(body, version)
		return binary.LittleEndian.AppendUint32(body, crc32Of(body))
	}
	if _, err := NewDecoder(mk(0x12345678, codecVersion)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("wrong magic: %v", err)
	}
	if _, err := NewDecoder(mk(codecMagic, codecVersion+1)); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("future version: %v", err)
	}
	if _, err := NewDecoder(mk(codecMagic, codecVersion)); err != nil {
		t.Fatalf("valid empty payload: %v", err)
	}
}

// TestWALBatchAppend pins AppendWALBatch equivalence: a batch append
// followed by one Flush replays exactly like per-record appends, on both
// backends and at every sync mode (in-process replay must see every
// record regardless of mode).
func TestWALBatchAppend(t *testing.T) {
	recs := [][]byte{[]byte("one"), []byte(""), []byte("three is longer")}
	for _, mode := range []SyncMode{SyncNone, SyncOS, SyncFull} {
		for name, st := range backends(t) {
			t.Run(fmt.Sprintf("%s/%v", name, mode), func(t *testing.T) {
				if err := st.AppendWALBatch(int(mode), recs); err != nil {
					t.Fatalf("AppendWALBatch: %v", err)
				}
				if err := st.Flush(int(mode), mode); err != nil {
					t.Fatalf("Flush(%v): %v", mode, err)
				}
				var got []string
				if err := st.ReplayWAL(int(mode), func(rec []byte) error {
					got = append(got, string(rec))
					return nil
				}); err != nil {
					t.Fatalf("ReplayWAL: %v", err)
				}
				if len(got) != len(recs) {
					t.Fatalf("replayed %d records, want %d", len(got), len(recs))
				}
				for i := range recs {
					if got[i] != string(recs[i]) {
						t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
					}
				}
			})
		}
	}
}

// TestFileSyncModes pins the file backend's barrier semantics as far as
// a unit test can see them: under SyncNone a Flush leaves the bytes in
// the user-space buffer (the on-disk file does not grow), under SyncOS
// and SyncFull the file holds every complete frame after the Flush.
func TestFileSyncModes(t *testing.T) {
	for _, mode := range []SyncMode{SyncNone, SyncOS, SyncFull} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			st, err := NewFile(dir)
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			defer st.Close()
			if err := st.AppendWAL(0, []byte("rec")); err != nil {
				t.Fatalf("AppendWAL: %v", err)
			}
			if err := st.Flush(0, mode); err != nil {
				t.Fatalf("Flush(%v): %v", mode, err)
			}
			info, err := os.Stat(filepath.Join(dir, "wal-0.log"))
			if err != nil {
				t.Fatalf("Stat: %v", err)
			}
			onDisk := info.Size() > 0
			if mode == SyncNone && onDisk {
				t.Fatalf("SyncNone flush wrote %d bytes to disk; want buffered", info.Size())
			}
			if mode != SyncNone && !onDisk {
				t.Fatalf("%v flush left the WAL file empty", mode)
			}
		})
	}
}

// TestMemCloneDropsPending pins the group-commit crash model: records
// appended but not yet flushed are absent from a Clone — they are the
// bytes a SIGKILL takes from the user-space buffer — while the live
// store still replays them.
func TestMemCloneDropsPending(t *testing.T) {
	m := NewMem()
	if err := m.AppendWAL(0, []byte("committed")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	if err := m.Flush(0, SyncOS); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := m.AppendWAL(0, []byte("in flight")); err != nil {
		t.Fatalf("AppendWAL: %v", err)
	}
	replay := func(s Store) []string {
		t.Helper()
		var recs []string
		if err := s.ReplayWAL(0, func(rec []byte) error {
			recs = append(recs, string(rec))
			return nil
		}); err != nil {
			t.Fatalf("ReplayWAL: %v", err)
		}
		return recs
	}
	if got := replay(m); len(got) != 2 {
		t.Fatalf("live store replays %v, want both records", got)
	}
	if got := replay(m.Clone()); len(got) != 1 || got[0] != "committed" {
		t.Fatalf("clone replays %v, want [committed] only", got)
	}
}

// TestEncoderReset pins the pooled-encoder contract: a Reset encoder
// produces byte-identical blobs to a fresh one, reusing its buffer.
func TestEncoderReset(t *testing.T) {
	build := func(e *Encoder) []byte {
		e.I64(42)
		e.String("snapshot")
		e.F64s([]float64{1, 2, 3})
		return append([]byte(nil), e.Finish()...)
	}
	fresh := build(NewEncoder())
	e := NewEncoder()
	e.U64(999) // garbage from a "previous" blob
	e.Finish()
	e.Reset()
	if got := build(e); string(got) != string(fresh) {
		t.Fatalf("reset encoder blob differs from fresh:\n%x\n%x", got, fresh)
	}
	e.Reset()
	if got := build(e); string(got) != string(fresh) {
		t.Fatalf("second reset blob differs from fresh:\n%x\n%x", got, fresh)
	}
	if _, err := NewDecoder(fresh); err != nil {
		t.Fatalf("blob does not decode: %v", err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for s, want := range map[string]SyncMode{"none": SyncNone, "os": SyncOS, "full": SyncFull, "": SyncOS} {
		got, err := ParseSyncMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", s, got, err, want)
		}
		if s != "" && got.String() != s {
			t.Fatalf("SyncMode(%v).String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseSyncMode("fsync"); err == nil {
		t.Fatal("ParseSyncMode(fsync) succeeded, want error")
	}
}

func TestErrorsWrapSentinel(t *testing.T) {
	_, err := NewDecoder(nil)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("NewDecoder(nil) = %v", err)
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Fatal("error has no message")
	}
}
