package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// The snapshot codec: a versioned, deterministic binary encoding.  Every
// value is little-endian and fixed-width (floats as IEEE-754 bit
// patterns), so encoding the same state twice yields the same bytes on
// every platform — the property the crash-recovery equivalence tests
// lean on.  A blob is
//
//	magic (4) | version (1) | payload | crc32c of everything before (4)
//
// and the Decoder refuses anything structurally wrong with an error
// wrapping ErrCorruptSnapshot: wrong magic, unknown version, checksum
// mismatch, reads past the payload, or length prefixes larger than the
// remaining bytes.  Decoding never panics on hostile input (the fuzz
// test in codec_fuzz_test.go pins this).

// codecMagic spells "MODS" — Media-on-Demand Snapshot.
const codecMagic = 0x4d4f4453

// codecVersion is the current snapshot format version.  Bump it on any
// incompatible payload change; old blobs then fail decoding cleanly.
const codecVersion = 1

var codecTable = crc32.MakeTable(crc32.Castagnoli)

// Encoder builds one snapshot blob.  Append values with the typed
// methods, then seal with Finish.  The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with the header already laid down.
func NewEncoder() *Encoder {
	e := &Encoder{buf: make([]byte, 0, 256)}
	e.buf = binary.LittleEndian.AppendUint32(e.buf, codecMagic)
	e.buf = append(e.buf, codecVersion)
	return e
}

// Reset discards the blob under construction (including a sealed one)
// and lays the header down again on the retained buffer, making the
// Encoder ready for a fresh blob without reallocating.  A long-lived
// writer that snapshots on a cadence holds one Encoder and Resets it per
// snapshot.  Safe only once the previous Finish result has been consumed
// (SaveSnapshot copies or writes the bytes before returning).
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.buf = binary.LittleEndian.AppendUint32(e.buf, codecMagic)
	e.buf = append(e.buf, codecVersion)
}

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a fixed-width 32-bit value.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width 64-bit value.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a signed 64-bit value (two's-complement bit pattern).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 as its IEEE-754 bit pattern, preserving every
// value bit-exactly (±Inf, NaN payloads, signed zero included).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// F64s appends a length-prefixed float64 slice.
func (e *Encoder) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// I64s appends a length-prefixed int64 slice.
func (e *Encoder) I64s(vs []int64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.I64(v)
	}
}

// Finish seals the blob: the checksum over header and payload is
// appended and the complete byte slice returned.  The Encoder must not
// be used afterwards except to Reset it for a fresh blob (which reclaims
// the returned slice's backing array).
func (e *Encoder) Finish() []byte {
	sum := crc32.Checksum(e.buf, codecTable)
	e.buf = binary.LittleEndian.AppendUint32(e.buf, sum)
	return e.buf
}

// Decoder reads one snapshot blob.  Errors are sticky: after the first
// failed read every subsequent read returns the zero value, and Err
// reports what went wrong.  All failures wrap ErrCorruptSnapshot.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder validates the blob's frame — magic, version, checksum —
// and returns a Decoder positioned at the first payload byte.
func NewDecoder(data []byte) (*Decoder, error) {
	const header = 4 + 1
	const trailer = 4
	if len(data) < header+trailer {
		return nil, fmt.Errorf("%w: blob of %d bytes is shorter than the frame", ErrCorruptSnapshot, len(data))
	}
	body, sumBytes := data[:len(data)-trailer], data[len(data)-trailer:]
	if got, want := crc32.Checksum(body, codecTable), binary.LittleEndian.Uint32(sumBytes); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorruptSnapshot, want, got)
	}
	if magic := binary.LittleEndian.Uint32(body); magic != codecMagic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrCorruptSnapshot, magic)
	}
	if v := body[4]; v != codecVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d (want %d)", ErrCorruptSnapshot, v, codecVersion)
	}
	return &Decoder{buf: body, off: header}, nil
}

// Err returns the first decoding failure, or nil.  Callers must check it
// after the last read: a sticky error means every value read since the
// failure was a zero.
func (d *Decoder) Err() error { return d.err }

// fail records the first error (sticky).
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorruptSnapshot}, args...)...)
	}
}

// take returns the next n payload bytes, or nil after recording an error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.fail("read of %d bytes at offset %d overruns the %d-byte payload", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a length prefix and bounds it by what the remaining
// payload could possibly hold at width bytes per element, so a corrupted
// length can never force a huge allocation.
func (d *Decoder) length(width int) int {
	n := d.U32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(width) > int64(len(d.buf)-d.off) {
		d.fail("length prefix %d exceeds the %d remaining payload bytes", n, len(d.buf)-d.off)
		return 0
	}
	return int(n)
}

// Len reads a length prefix for a caller-decoded sequence of elements at
// least width bytes wide, bounded like the built-in slice readers: a
// corrupted prefix promising more elements than the remaining payload
// could hold fails instead of forcing a huge allocation.
func (d *Decoder) Len(width int) int { return d.length(width) }

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.length(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (d *Decoder) F64s() []float64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	return vs
}

// I64s reads a length-prefixed int64 slice (nil when empty).
func (d *Decoder) I64s() []int64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = d.I64()
	}
	return vs
}

// Done verifies the payload was consumed exactly and returns the sticky
// error, if any.  Trailing garbage is corruption: a well-formed writer
// never leaves unread payload bytes.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.fail("%d trailing payload bytes", len(d.buf)-d.off)
	}
	return d.err
}
