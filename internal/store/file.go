package store

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// File is the file-backed Store: one snapshot file and one WAL file per
// shard under a single directory.
//
//	snapshot-<shard>.bin   the latest sealed snapshot blob
//	wal-<shard>.log        framed records appended since that snapshot
//
// Snapshots are written to a temporary file and renamed into place, so a
// crash during SaveSnapshot leaves the previous snapshot intact.  WAL
// appends go through a buffered writer committed by Flush — the
// group-commit log-before-ack barrier — at the caller's SyncMode:
// SyncNone leaves records in the user-space buffer (lost on SIGKILL),
// SyncOS flushes them to the kernel page cache (survives SIGKILL, the
// default), and SyncFull additionally fsyncs the file (survives power
// loss; group commit amortizes the fsync over a batch).  A crash can
// leave a torn final frame in the log; the first append of the next
// process trims the file back to its last complete frame so new records
// never land after torn bytes (see wal).
type File struct {
	dir string

	mu   sync.Mutex
	wals map[int]*walFile
}

// walFile is one shard's open WAL append handle.
type walFile struct {
	f *os.File
	w *bufio.Writer
	// frame is the reusable framing scratch buffer, so a steady append
	// stream does not allocate per record.
	frame []byte
}

// NewFile opens (creating if needed) a file store rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create snapshot dir: %w", err)
	}
	return &File{dir: dir, wals: make(map[int]*walFile)}, nil
}

// Dir returns the store's root directory.
func (s *File) Dir() string { return s.dir }

func (s *File) snapPath(shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%d.bin", shard))
}

func (s *File) walPath(shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%d.log", shard))
}

// SaveSnapshot implements Store: write-temp-then-rename, then truncate
// the shard's WAL.  A crash between the two steps leaves superseded
// records in the WAL; their sequence numbers predate the snapshot's, so
// replay skips them (the serve layer checks).
func (s *File) SaveSnapshot(shard int, data []byte) error {
	path := s.snapPath(shard)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if wf := s.wals[shard]; wf != nil {
		if err := wf.w.Flush(); err != nil {
			return fmt.Errorf("store: flush WAL before truncate: %w", err)
		}
		if err := wf.f.Truncate(0); err != nil {
			return fmt.Errorf("store: truncate WAL: %w", err)
		}
		return nil
	}
	// No open handle this process lifetime: drop any stale log from a
	// previous run.
	if err := os.Remove(s.walPath(shard)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: remove superseded WAL: %w", err)
	}
	return nil
}

// LoadSnapshot implements Store.
func (s *File) LoadSnapshot(shard int) ([]byte, error) {
	data, err := os.ReadFile(s.snapPath(shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	return data, nil
}

// wal returns shard's open WAL handle, opening it in append mode first
// if needed.  Callers hold s.mu.
//
// On the first open of a process lifetime the file may end in a torn
// frame left by the previous crash (bufio flushing a full buffer
// mid-frame).  Replay tolerates the tear, but appending after it would
// poison the log: the next restore would read a garbage length prefix
// spanning the torn bytes and the new records, and either refuse to
// start or silently drop every acknowledged record after the tear.  So
// the file is trimmed to its last complete frame before any append.
func (s *File) wal(shard int) (*walFile, error) {
	if wf := s.wals[shard]; wf != nil {
		return wf, nil
	}
	path := s.walPath(shard)
	if buf, err := os.ReadFile(path); err == nil {
		if keep := completeFramesLen(buf); keep < len(buf) {
			if err := os.Truncate(path, int64(keep)); err != nil {
				return nil, fmt.Errorf("store: trim torn WAL tail: %w", err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: inspect WAL: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open WAL: %w", err)
	}
	wf := &walFile{f: f, w: bufio.NewWriterSize(f, 1<<15)}
	s.wals[shard] = wf
	return wf, nil
}

// AppendWAL implements Store.
func (s *File) AppendWAL(shard int, rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wf, err := s.wal(shard)
	if err != nil {
		return err
	}
	wf.frame = appendFrame(wf.frame[:0], rec)
	if _, err := wf.w.Write(wf.frame); err != nil {
		return fmt.Errorf("store: append WAL record: %w", err)
	}
	return nil
}

// AppendWALBatch implements Store: the whole run goes into the buffered
// writer under one lock acquisition; on error a prefix may be appended.
func (s *File) AppendWALBatch(shard int, recs [][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	wf, err := s.wal(shard)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		wf.frame = appendFrame(wf.frame[:0], rec)
		if _, err := wf.w.Write(wf.frame); err != nil {
			return fmt.Errorf("store: append WAL record: %w", err)
		}
	}
	return nil
}

// Flush implements Store: SyncNone does nothing, SyncOS hands buffered
// records to the operating system, SyncFull additionally fsyncs the file
// so the commit survives power loss (fdatasync semantics — Go's
// File.Sync is the portable spelling).
func (s *File) Flush(shard int, mode SyncMode) error {
	if mode == SyncNone {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	wf := s.wals[shard]
	if wf == nil {
		return nil
	}
	if err := wf.w.Flush(); err != nil {
		return fmt.Errorf("store: flush WAL: %w", err)
	}
	if mode == SyncFull {
		if err := wf.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync WAL: %w", err)
		}
	}
	return nil
}

// flushOS spills the shard's user-space buffer to the OS regardless of
// the configured sync mode: in-process readers (ReplayWAL, the truncate
// in SaveSnapshot) must see every appended record — buffering only
// models what a crash would lose.
func (s *File) flushOS(shard int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if wf := s.wals[shard]; wf != nil {
		if err := wf.w.Flush(); err != nil {
			return fmt.Errorf("store: flush WAL: %w", err)
		}
	}
	return nil
}

// ReplayWAL implements Store.
func (s *File) ReplayWAL(shard int, fn func(rec []byte) error) error {
	if err := s.flushOS(shard); err != nil {
		return err
	}
	buf, err := os.ReadFile(s.walPath(shard))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: read WAL: %w", err)
	}
	return walkFrames(buf, fn)
}

// Close implements Store: every open WAL handle is flushed and closed.
// The File must not be used afterwards.
func (s *File) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for shard, wf := range s.wals {
		if err := wf.w.Flush(); err != nil && first == nil {
			first = fmt.Errorf("store: flush WAL on close: %w", err)
		}
		if err := wf.f.Close(); err != nil && first == nil {
			first = fmt.Errorf("store: close WAL: %w", err)
		}
		delete(s.wals, shard)
	}
	return first
}
