package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// WAL framing shared by the memory and file backends: each record is
//
//	length (4) | payload | crc32c of payload (4)
//
// back to back.  A *torn tail* — fewer bytes than one complete frame
// promises — is the expected artifact of a crash mid-append: the record
// was never flushed, so its request was never acknowledged, and replay
// stops there silently.  A *complete* frame whose checksum does not
// match its payload, by contrast, is corruption and fails replay with
// ErrCorruptSnapshot.

const walFrameOverhead = 4 + 4

// appendFrame appends one framed record to dst.
func appendFrame(dst, rec []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec)))
	dst = append(dst, rec...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(rec, codecTable))
}

// completeFramesLen returns the length of buf's longest prefix made of
// complete frames — the byte offset where a torn tail begins, if any.
// Checksums are not verified here: a complete-but-corrupt frame is
// replay's to reject, not the append path's to silently drop.
func completeFramesLen(buf []byte) int {
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < 4 {
			return off
		}
		n := int(binary.LittleEndian.Uint32(rest[:4]))
		if len(rest)-4 < n+4 {
			return off
		}
		off += 4 + n + 4
	}
}

// walkFrames calls fn for each complete frame of buf in order.  It stops
// silently at a torn tail and with ErrCorruptSnapshot at a checksum
// mismatch or at the first error fn returns.
func walkFrames(buf []byte, fn func(rec []byte) error) error {
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil // torn tail: partial length prefix
		}
		n := int(binary.LittleEndian.Uint32(buf[:4]))
		if len(buf)-4 < n+4 {
			return nil // torn tail: partial payload or checksum
		}
		rec, sumBytes := buf[4:4+n], buf[4+n:4+n+4]
		if got, want := crc32.Checksum(rec, codecTable), binary.LittleEndian.Uint32(sumBytes); got != want {
			return fmt.Errorf("%w: WAL record checksum mismatch (stored %08x, computed %08x)", ErrCorruptSnapshot, want, got)
		}
		if err := fn(rec); err != nil {
			return err
		}
		buf = buf[4+n+4:]
	}
	return nil
}
