// Package store is the durability layer of the serving stack: a pluggable
// snapshot-plus-write-ahead-log store behind one Store interface, with an
// in-memory backend for tests and a file backend for production.
//
// The contract mirrors the classic log-then-apply recovery discipline:
//
//   - Every request a shard accepts is appended to its per-shard WAL and
//     committed — one Flush covering a whole group-commit batch — *before*
//     any of the batch's tickets are acknowledged (the serve layer routes
//     acknowledgements through the WAL writer), so the durable record is
//     always a gap-free prefix of the admission order covering every
//     acknowledged request.  SyncMode sets what "committed" means: nothing
//     (SyncNone), the OS page cache (SyncOS, the default), or fsync
//     (SyncFull).
//   - At epoch boundaries the shard encodes its full scheduler state with
//     the versioned binary codec in codec.go and calls SaveSnapshot, which
//     atomically replaces the previous snapshot.  WAL records carry their
//     shard-local sequence number, so replay skips records the snapshot
//     already covers — a crash between the snapshot rename and the WAL
//     truncation can never double-apply a request.
//   - On restart the serve layer loads the latest snapshot and replays the
//     WAL tail through the ordinary admit path, converging bit for bit to
//     the state of an uninterrupted run (the crash-recovery equivalence
//     tests in internal/serve pin this for every strategy).
//
// All decoding is defensive: truncated or corrupted bytes surface an error
// wrapping ErrCorruptSnapshot, never a panic.  A torn final WAL frame —
// the normal artifact of a crash mid-append — is not corruption: its
// request was never acknowledged, so replay simply stops there.
package store

import (
	"errors"
	"fmt"
)

// ErrCorruptSnapshot marks snapshot or WAL bytes that fail structural
// validation (bad magic, unsupported version, checksum mismatch, truncated
// payload, out-of-range lengths).  Classify with errors.Is; it is
// re-exported by the public facade as mod.ErrCorruptSnapshot.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// ErrBadSyncMode marks an unrecognized sync-mode spelling passed to
// ParseSyncMode (the modserve -sync flag).  Classify with errors.Is.
var ErrBadSyncMode = errors.New("store: unknown sync mode")

// SyncMode is the durability barrier Flush applies at a commit point.
// The zero value is SyncOS, the historical behavior, so zero-valued
// configurations keep their guarantee.
type SyncMode int

const (
	// SyncOS flushes buffered records to the operating system (the page
	// cache for the file backend).  Acknowledged requests survive a
	// process crash (SIGKILL) but not a power loss.  The default.
	SyncOS SyncMode = iota
	// SyncNone makes Flush a no-op: records may sit in user-space
	// buffers, and acknowledged requests can be lost on a process crash.
	// The log on disk is still always a gap-free prefix of the admission
	// order, so a restore succeeds — it just resumes from an earlier
	// point, and may reissue ticket IDs the lost tail had acknowledged.
	SyncNone
	// SyncFull flushes and then fsyncs the WAL file, so acknowledged
	// requests survive power loss.  Group commit amortizes the fsync over
	// a batch of acknowledgements, which is what makes this affordable.
	SyncFull
)

// String reports the flag spelling used by modserve -sync.
func (m SyncMode) String() string {
	switch m {
	case SyncNone:
		return "none"
	case SyncFull:
		return "full"
	default:
		return "os"
	}
}

// ParseSyncMode parses the modserve -sync flag spelling.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "none":
		return SyncNone, nil
	case "os", "":
		return SyncOS, nil
	case "full":
		return SyncFull, nil
	}
	return SyncOS, fmt.Errorf("%w: %q (want none, os, or full)", ErrBadSyncMode, s)
}

// Store persists per-shard snapshots and write-ahead logs.  Shards are
// identified by their integer index; implementations must be safe for
// concurrent use by one writer goroutine per shard plus a restore reader.
type Store interface {
	// SaveSnapshot atomically replaces shard's snapshot with data (an
	// opaque blob, typically an Encoder.Finish result).  Records already
	// covered by the snapshot are logically superseded; implementations
	// truncate the shard's WAL, and replay additionally skips stale
	// sequence numbers so the two steps need not be atomic together.
	SaveSnapshot(shard int, data []byte) error
	// LoadSnapshot returns the latest snapshot saved for shard, or
	// (nil, nil) when none exists.
	LoadSnapshot(shard int) ([]byte, error)
	// AppendWAL appends one record to shard's write-ahead log.  The store
	// frames and copies the bytes; the caller may reuse rec immediately.
	// Appended records may be buffered until Flush.
	AppendWAL(shard int, rec []byte) error
	// AppendWALBatch appends a run of records to shard's write-ahead log
	// in order, equivalent to one AppendWAL call per record.  The serve
	// layer's group-commit writer uses it to land a whole batch before a
	// single Flush.  On error, a prefix of the records may have been
	// appended.
	AppendWALBatch(shard int, recs [][]byte) error
	// Flush commits every record appended to shard's WAL at the given
	// sync level — the group-commit barrier the serve layer issues once
	// per batch, before releasing the batch's acknowledgements
	// (log-before-ack).  SyncNone is a no-op, SyncOS reaches the
	// operating system, SyncFull additionally fsyncs.
	Flush(shard int, mode SyncMode) error
	// ReplayWAL calls fn for each record appended to shard's WAL since the
	// last SaveSnapshot, in append order, stopping at the first error.  A
	// torn final frame (crash mid-append) ends replay silently; a complete
	// frame with a checksum mismatch fails with ErrCorruptSnapshot.
	// Replay on a live store sees records not yet flushed: buffering only
	// models what a crash would lose, never what the process can read.
	ReplayWAL(shard int, fn func(rec []byte) error) error
	// Close releases the store's resources (file handles, buffers).
	Close() error
}
