// Package store is the durability layer of the serving stack: a pluggable
// snapshot-plus-write-ahead-log store behind one Store interface, with an
// in-memory backend for tests and a file backend for production.
//
// The contract mirrors the classic log-then-apply recovery discipline:
//
//   - Every request a shard accepts is appended to its per-shard WAL
//     *before* the submitter's ticket is acknowledged (the serve layer
//     routes the acknowledgement through the WAL writer), so the durable
//     record is always an exact prefix of the acknowledged requests.
//   - At epoch boundaries the shard encodes its full scheduler state with
//     the versioned binary codec in codec.go and calls SaveSnapshot, which
//     atomically replaces the previous snapshot.  WAL records carry their
//     shard-local sequence number, so replay skips records the snapshot
//     already covers — a crash between the snapshot rename and the WAL
//     truncation can never double-apply a request.
//   - On restart the serve layer loads the latest snapshot and replays the
//     WAL tail through the ordinary admit path, converging bit for bit to
//     the state of an uninterrupted run (the crash-recovery equivalence
//     tests in internal/serve pin this for every strategy).
//
// All decoding is defensive: truncated or corrupted bytes surface an error
// wrapping ErrCorruptSnapshot, never a panic.  A torn final WAL frame —
// the normal artifact of a crash mid-append — is not corruption: its
// request was never acknowledged, so replay simply stops there.
package store

import "errors"

// ErrCorruptSnapshot marks snapshot or WAL bytes that fail structural
// validation (bad magic, unsupported version, checksum mismatch, truncated
// payload, out-of-range lengths).  Classify with errors.Is; it is
// re-exported by the public facade as mod.ErrCorruptSnapshot.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

// Store persists per-shard snapshots and write-ahead logs.  Shards are
// identified by their integer index; implementations must be safe for
// concurrent use by one writer goroutine per shard plus a restore reader.
type Store interface {
	// SaveSnapshot atomically replaces shard's snapshot with data (an
	// opaque blob, typically an Encoder.Finish result).  Records already
	// covered by the snapshot are logically superseded; implementations
	// truncate the shard's WAL, and replay additionally skips stale
	// sequence numbers so the two steps need not be atomic together.
	SaveSnapshot(shard int, data []byte) error
	// LoadSnapshot returns the latest snapshot saved for shard, or
	// (nil, nil) when none exists.
	LoadSnapshot(shard int) ([]byte, error)
	// AppendWAL appends one record to shard's write-ahead log.  The store
	// frames and copies the bytes; the caller may reuse rec immediately.
	// Appended records may be buffered until Flush.
	AppendWAL(shard int, rec []byte) error
	// Flush makes every record appended to shard's WAL durable.  The serve
	// layer calls it before acknowledging a ticket (log-before-ack).
	Flush(shard int) error
	// ReplayWAL calls fn for each record appended to shard's WAL since the
	// last SaveSnapshot, in append order, stopping at the first error.  A
	// torn final frame (crash mid-append) ends replay silently; a complete
	// frame with a checksum mismatch fails with ErrCorruptSnapshot.
	ReplayWAL(shard int, fn func(rec []byte) error) error
	// Close releases the store's resources (file handles, buffers).
	Close() error
}
