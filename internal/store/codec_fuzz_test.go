package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"
)

// crc32Of is the test-side twin of the codec's checksum (Castagnoli).
func crc32Of(b []byte) uint32 { return crc32.Checksum(b, codecTable) }

// FuzzDecoder throws arbitrary bytes at the full decode surface: the
// decoder must classify every input as valid or ErrCorruptSnapshot and
// never panic, whatever read sequence follows.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder()
	e.U8(1)
	e.U64(99)
	e.F64(2.75)
	e.String("seed")
	e.F64s([]float64{1, 2, 3})
	e.I64s([]int64{-1})
	f.Add(e.Finish())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x44, 0x4f, 0x4d, 0x01})
	f.Add(binary.LittleEndian.AppendUint32([]byte{0x53, 0x44, 0x4f, 0x4d, 0x01}, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDecoder(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("NewDecoder error %v does not wrap ErrCorruptSnapshot", err)
			}
			return
		}
		// Exercise every read path; sticky errors keep this safe even when
		// the payload is garbage.
		d.U8()
		d.U32()
		d.U64()
		d.I64()
		d.F64()
		_ = d.String()
		d.F64s()
		d.I64s()
		if err := d.Done(); err != nil && !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("Done error %v does not wrap ErrCorruptSnapshot", err)
		}
	})
}

// FuzzWalkFrames: arbitrary WAL bytes either replay cleanly (stopping at
// a torn tail) or fail with ErrCorruptSnapshot — never a panic.
func FuzzWalkFrames(f *testing.F) {
	f.Add(appendFrame(nil, []byte("one record")))
	f.Add(appendFrame(appendFrame(nil, []byte("a")), []byte("b")))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		err := walkFrames(data, func([]byte) error { return nil })
		if err != nil && !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("walkFrames error %v does not wrap ErrCorruptSnapshot", err)
		}
	})
}

// FuzzCodecRoundTrip is the property test: arbitrary values encode then
// decode to bit-identical results, twice over to pin determinism.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(3), uint64(7), 1.5, "s", int64(-9), uint8(4))
	f.Add(uint8(0), uint64(math.MaxUint64), math.Inf(-1), "", int64(math.MinInt64), uint8(0))
	f.Add(uint8(255), uint64(0), math.NaN(), "longer string with spaces", int64(0), uint8(17))

	f.Fuzz(func(t *testing.T, u8 uint8, u64 uint64, fv float64, s string, i64 int64, n uint8) {
		fs := make([]float64, int(n)%32)
		is := make([]int64, int(n)%17)
		for i := range fs {
			fs[i] = fv * float64(i+1)
		}
		for i := range is {
			is[i] = i64 - int64(i)
		}
		encode := func() []byte {
			e := NewEncoder()
			e.U8(u8)
			e.U64(u64)
			e.F64(fv)
			e.String(s)
			e.I64(i64)
			e.F64s(fs)
			e.I64s(is)
			return e.Finish()
		}
		blob, blob2 := encode(), encode()
		if string(blob) != string(blob2) {
			t.Fatal("encoding is not deterministic")
		}

		d, err := NewDecoder(blob)
		if err != nil {
			t.Fatalf("NewDecoder on fresh encoding: %v", err)
		}
		if got := d.U8(); got != u8 {
			t.Fatalf("U8 = %d, want %d", got, u8)
		}
		if got := d.U64(); got != u64 {
			t.Fatalf("U64 = %d, want %d", got, u64)
		}
		if got := d.F64(); math.Float64bits(got) != math.Float64bits(fv) {
			t.Fatalf("F64 = %x, want %x", math.Float64bits(got), math.Float64bits(fv))
		}
		if got := d.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
		if got := d.I64(); got != i64 {
			t.Fatalf("I64 = %d, want %d", got, i64)
		}
		gfs := d.F64s()
		if len(gfs) != len(fs) {
			t.Fatalf("F64s len = %d, want %d", len(gfs), len(fs))
		}
		for i := range fs {
			if math.Float64bits(gfs[i]) != math.Float64bits(fs[i]) {
				t.Fatalf("F64s[%d] = %x, want %x", i, math.Float64bits(gfs[i]), math.Float64bits(fs[i]))
			}
		}
		gis := d.I64s()
		if len(gis) != len(is) {
			t.Fatalf("I64s len = %d, want %d", len(gis), len(is))
		}
		for i := range is {
			if gis[i] != is[i] {
				t.Fatalf("I64s[%d] = %d, want %d", i, gis[i], is[i])
			}
		}
		if err := d.Done(); err != nil {
			t.Fatalf("Done on fresh encoding: %v", err)
		}

		// Any single-bit flip must be caught by the frame checksum.
		bad := append([]byte(nil), blob...)
		flip := int(u64 % uint64(len(bad)))
		bad[flip] ^= 1 << (u8 % 8)
		if string(bad) != string(blob) {
			if _, err := NewDecoder(bad); !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("bit flip at %d went undetected: %v", flip, err)
			}
		}
	})
}
