package store

import "sync"

// Mem is the in-memory Store: snapshots and WALs live in process memory.
// It backs tests, benchmarks, and the crash-recovery experiments, where
// Clone stands in for "the bytes on disk at the instant of a SIGKILL" —
// a deterministic kill point no real crash can provide.
//
// Each shard's WAL is kept as one contiguous framed byte slice, so a
// steady stream of AppendWAL calls costs only amortized slice growth:
// the durable admit path stays 0 allocs/op under -benchmem
// (BenchmarkShardAdmitDurable and the CI allocation guard pin this).
type Mem struct {
	mu    sync.Mutex
	snaps map[int][]byte
	wals  map[int][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{snaps: make(map[int][]byte), wals: make(map[int][]byte)}
}

// SaveSnapshot implements Store: the snapshot is replaced and the
// shard's WAL truncated (its records are superseded by the snapshot).
func (m *Mem) SaveSnapshot(shard int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[shard] = append([]byte(nil), data...)
	m.wals[shard] = m.wals[shard][:0]
	return nil
}

// LoadSnapshot implements Store.
func (m *Mem) LoadSnapshot(shard int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[shard]
	if !ok {
		return nil, nil
	}
	return append([]byte(nil), data...), nil
}

// AppendWAL implements Store.
func (m *Mem) AppendWAL(shard int, rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wals[shard] = appendFrame(m.wals[shard], rec)
	return nil
}

// Flush implements Store: memory is always "durable".
func (m *Mem) Flush(shard int) error { return nil }

// ReplayWAL implements Store.
func (m *Mem) ReplayWAL(shard int, fn func(rec []byte) error) error {
	m.mu.Lock()
	buf := append([]byte(nil), m.wals[shard]...)
	m.mu.Unlock()
	return walkFrames(buf, fn)
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Clone deep-copies the store: the crash-recovery tests take a Clone at
// the kill point and restore a fresh server from it, so the "disk image
// at SIGKILL" is exact and deterministic.
func (m *Mem) Clone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for k, v := range m.snaps {
		c.snaps[k] = append([]byte(nil), v...)
	}
	for k, v := range m.wals {
		c.wals[k] = append([]byte(nil), v...)
	}
	return c
}

// Snapshots reports how many shards currently hold a snapshot (test and
// experiment observability).
func (m *Mem) Snapshots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.snaps {
		if len(v) > 0 {
			n++
		}
	}
	return n
}

// WALBytes reports the framed size of one shard's WAL tail (test and
// experiment observability).
func (m *Mem) WALBytes(shard int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wals[shard])
}

// Corrupt flips one byte of shard's snapshot (test hook for the
// corruption-surfacing paths); it is a no-op when no snapshot exists.
func (m *Mem) Corrupt(shard int, offset int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.snaps[shard]; len(s) > 0 {
		s[offset%len(s)] ^= 0xff
	}
}
