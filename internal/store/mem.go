package store

import "sync"

// Mem is the in-memory Store: snapshots and WALs live in process memory.
// It backs tests, benchmarks, and the crash-recovery experiments, where
// Clone stands in for "the bytes on disk at the instant of a SIGKILL" —
// a deterministic kill point no real crash can provide.
//
// The crash model mirrors the file backend's buffered writer: appends
// land in a per-shard pending buffer and Flush publishes them to the
// durable log; Clone copies only the published bytes, so records not yet
// committed at the kill point are lost, exactly like bytes still in a
// user-space buffer.  Memory writes are instantaneous, so every SyncMode
// behaves like SyncOS here — the mode axis only changes behavior on the
// file backend.
//
// Each shard's WAL is kept as contiguous framed byte slices, so a
// steady stream of AppendWAL calls costs only amortized slice growth:
// the durable admit path stays 0 allocs/op under -benchmem
// (BenchmarkShardAdmitDurable and the CI allocation guard pin this).
type Mem struct {
	mu    sync.Mutex
	snaps map[int][]byte
	wals  map[int][]byte
	// pending holds framed records appended but not yet flushed — the
	// in-memory stand-in for the file backend's bufio buffer.
	pending map[int][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{snaps: make(map[int][]byte), wals: make(map[int][]byte),
		pending: make(map[int][]byte)}
}

// SaveSnapshot implements Store: the snapshot is replaced and the
// shard's WAL truncated, pending records included (every record appended
// before the snapshot message is superseded by it).
func (m *Mem) SaveSnapshot(shard int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[shard] = append([]byte(nil), data...)
	m.wals[shard] = m.wals[shard][:0]
	m.pending[shard] = m.pending[shard][:0]
	return nil
}

// LoadSnapshot implements Store.
func (m *Mem) LoadSnapshot(shard int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[shard]
	if !ok {
		return nil, nil
	}
	return append([]byte(nil), data...), nil
}

// AppendWAL implements Store: the record lands in the pending buffer
// until the next Flush publishes it.
func (m *Mem) AppendWAL(shard int, rec []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pending[shard] = appendFrame(m.pending[shard], rec)
	return nil
}

// AppendWALBatch implements Store.
func (m *Mem) AppendWALBatch(shard int, recs [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := m.pending[shard]
	for _, rec := range recs {
		buf = appendFrame(buf, rec)
	}
	m.pending[shard] = buf
	return nil
}

// Flush implements Store: pending records become part of the durable
// log (the bytes Clone captures).  Memory commits are instantaneous, so
// the sync mode changes nothing here; see the type comment.
func (m *Mem) Flush(shard int, mode SyncMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p := m.pending[shard]; len(p) > 0 {
		m.wals[shard] = append(m.wals[shard], p...)
		m.pending[shard] = p[:0]
	}
	return nil
}

// ReplayWAL implements Store: published and pending records alike — an
// in-process reader sees every appended record, like the file backend's
// internal flush before reading.
func (m *Mem) ReplayWAL(shard int, fn func(rec []byte) error) error {
	m.mu.Lock()
	buf := append([]byte(nil), m.wals[shard]...)
	buf = append(buf, m.pending[shard]...)
	m.mu.Unlock()
	return walkFrames(buf, fn)
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Clone deep-copies the store's *committed* state: the crash-recovery
// tests take a Clone at the kill point and restore a fresh server from
// it, so the "disk image at SIGKILL" is exact and deterministic.
// Pending (appended but unflushed) records are deliberately dropped —
// they are the bytes a real crash loses from the user-space buffer.
func (m *Mem) Clone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for k, v := range m.snaps {
		c.snaps[k] = append([]byte(nil), v...)
	}
	for k, v := range m.wals {
		c.wals[k] = append([]byte(nil), v...)
	}
	return c
}

// Snapshots reports how many shards currently hold a snapshot (test and
// experiment observability).
func (m *Mem) Snapshots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, v := range m.snaps {
		if len(v) > 0 {
			n++
		}
	}
	return n
}

// WALBytes reports the framed size of one shard's WAL tail, pending
// records included (test and experiment observability).
func (m *Mem) WALBytes(shard int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.wals[shard]) + len(m.pending[shard])
}

// Corrupt flips one byte of shard's snapshot (test hook for the
// corruption-surfacing paths); it is a no-op when no snapshot exists.
func (m *Mem) Corrupt(shard int, offset int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s := m.snaps[shard]; len(s) > 0 {
		s[offset%len(s)] ^= 0xff
	}
}
