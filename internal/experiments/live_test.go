package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestLiveVsBatchEquivalenceColumn runs the live-vs-batch grid and checks
// its internal invariant held (the function errors out if a whole-horizon
// live run diverges from the batch cost) and that every live-capable
// strategy produced a row.
func TestLiveVsBatchEquivalenceColumn(t *testing.T) {
	cfg := DefaultLiveVsBatch()
	res, err := LiveVsBatch(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext-live-vs-batch" {
		t.Fatalf("id = %q", res.ID)
	}
	if got, want := len(res.Table.Rows), 8; got != want {
		t.Fatalf("%d strategy rows, want %d", got, want)
	}
	csv := res.Table.CSV()
	for _, strategy := range []string{"online", "offline", "dyadic", "batching", "hybrid", "unicast"} {
		if !strings.Contains(csv, strategy) {
			t.Errorf("missing strategy row %q", strategy)
		}
	}
}

// TestLiveVsBatchCanceled pins context propagation through the grid.
func TestLiveVsBatchCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := LiveVsBatch(ctx, DefaultLiveVsBatch()); err == nil {
		t.Fatal("canceled LiveVsBatch returned no error")
	}
}

// TestWarmReplanExperiment runs the warm-vs-cold replanning table: the
// function itself errors if any strategy's warm run diverges from cold,
// so the test checks the accounting columns — warm-capable strategies
// warm-start every replan, the off-line families reuse DP cells, and the
// online strategy never replans.
func TestWarmReplanExperiment(t *testing.T) {
	res, err := WarmReplan(context.Background(), DefaultLiveVsBatch())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext-warm-replan" {
		t.Fatalf("id = %q", res.ID)
	}
	if got, want := len(res.Table.Rows), 8; got != want {
		t.Fatalf("%d strategy rows, want %d", got, want)
	}
	csv := res.Table.CSV()
	for _, strategy := range []string{"offline", "offline-batched", "dyadic", "batching"} {
		if !strings.Contains(csv, strategy) {
			t.Errorf("missing strategy row %q", strategy)
		}
	}
}

// TestWarmReplanCanceled pins context propagation.
func TestWarmReplanCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WarmReplan(ctx, DefaultLiveVsBatch()); err == nil {
		t.Fatal("canceled WarmReplan returned no error")
	}
}

// TestBackpressureExperiment runs the backpressure table — the function
// itself errors if the reject counts are not exact or the admitted subset
// diverges from the unpressured reference — and pins bit-identical output
// across runs: every column is a deterministic count, whatever the
// goroutine schedule of the submission race.
func TestBackpressureExperiment(t *testing.T) {
	cfg := DefaultBackpressure()
	res, err := Backpressure(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext-backpressure" {
		t.Fatalf("id = %q", res.ID)
	}
	if got, want := len(res.Table.Rows), len(cfg.HighWaters); got != want {
		t.Fatalf("%d rows, want %d", got, want)
	}
	again, err := Backpressure(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := res.Table.CSV(), again.Table.CSV(); a != b {
		t.Fatalf("backpressure table is not deterministic:\nfirst\n%s\nsecond\n%s", a, b)
	}
}

// TestBackpressureCanceled pins context propagation.
func TestBackpressureCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Backpressure(ctx, DefaultBackpressure()); err == nil {
		t.Fatal("canceled Backpressure returned no error")
	}
}
