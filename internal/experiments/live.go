package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/textplot"
	"repro/mod"
)

// LiveVsBatchConfig parameterizes the live-vs-batch serving comparison.
type LiveVsBatchConfig struct {
	// Objects is the catalog size.
	Objects int
	// MediaLength and Delay are shared by all objects (time units).
	MediaLength, Delay float64
	// Horizon is the load span in time units.
	Horizon float64
	// ZipfExponent shapes the popularity distribution.
	ZipfExponent float64
	// MeanInterArrival is the aggregate mean inter-arrival time.
	MeanInterArrival float64
	// Seed fixes the request trace.
	Seed int64
	// EpochSlots is the replanning period of the "live (epoch)" column, in
	// slots of the delay.
	EpochSlots int
	// Strategies are the planner families compared (default: every
	// live-capable planner).
	Strategies []string
}

// DefaultLiveVsBatch returns a small catalog whose delays divide the
// horizon exactly, so the batch and whole-horizon live numbers agree bit
// for bit.
func DefaultLiveVsBatch() LiveVsBatchConfig {
	return LiveVsBatchConfig{
		Objects:          4,
		MediaLength:      1,
		Delay:            0.125,
		Horizon:          8,
		ZipfExponent:     1,
		MeanInterArrival: 0.1,
		Seed:             7,
		EpochSlots:       16,
	}
}

// LiveVsBatch compares, per live-capable strategy, the batch planner's
// cost on a fixed trace with two live serving runs over the same trace:
// one draining a single whole-horizon epoch (which must reproduce the
// batch cost exactly — the serving layer's equivalence guarantee) and one
// replanning every EpochSlots slots (the price or gain of epoch
// isolation: merging cannot cross a boundary, but neither can a sparse
// epoch be burdened by a dense one).  Costs are summed over the catalog in
// complete media streams.
func LiveVsBatch(ctx context.Context, cfg LiveVsBatchConfig) (Result, error) {
	cat := mod.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.Delay, cfg.ZipfExponent)
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = mod.LivePlanners()
	}
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon:          cfg.Horizon,
		MeanInterArrival: cfg.MeanInterArrival,
		Kind:             mod.PoissonArrivals,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	traces := map[string][]float64{}
	for _, r := range reqs {
		traces[r.Object] = append(traces[r.Object], r.T)
	}

	wholeSlots := int(cfg.Horizon/cfg.Delay) + 1
	tab := textplot.NewTable("strategy", "batch_cost", "live_cost", "live_epoch_cost", "epoch_delta_pct", "live_streams")
	for _, strategy := range strategies {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("experiments: live-vs-batch canceled: %w", err)
		}
		var batch float64
		planner, err := mod.New(strategy, mod.WithMediaLength(cfg.MediaLength),
			mod.WithDelay(cfg.Delay), mod.WithHorizon(cfg.Horizon))
		if err != nil {
			return Result{}, err
		}
		for _, o := range cat {
			plan, err := planner.Plan(ctx, mod.Instance{Arrivals: traces[o.Name]})
			if err != nil {
				return Result{}, err
			}
			batch += plan.Cost
		}
		liveCost, liveStreams, err := liveRun(ctx, cat, reqs, cfg.Horizon, strategy, wholeSlots)
		if err != nil {
			return Result{}, err
		}
		epochCost, _, err := liveRun(ctx, cat, reqs, cfg.Horizon, strategy, cfg.EpochSlots)
		if err != nil {
			return Result{}, err
		}
		if liveCost != batch {
			return Result{}, fmt.Errorf("experiments: live %s cost %g != batch %g (equivalence broken)",
				strategy, liveCost, batch)
		}
		delta := 0.0
		if batch > 0 {
			delta = 100 * (epochCost - batch) / batch
		}
		tab.AddRow(strategy, batch, liveCost, epochCost, delta, liveStreams)
	}
	return Result{
		ID:    "ext-live-vs-batch",
		Title: "Extension: live serving vs batch planning, per strategy",
		Table: tab,
		Notes: fmt.Sprintf("%d objects, Zipf(%g), horizon %g, seed %d: live_cost drains one whole-horizon epoch and must equal batch_cost bit for bit; live_epoch_cost replans every %d slots (epoch isolation: merging never crosses a boundary)",
			cfg.Objects, cfg.ZipfExponent, cfg.Horizon, cfg.Seed, cfg.EpochSlots),
	}, nil
}

// WarmReplan compares warm-start against cold epoch replanning, per
// strategy, on the same deterministic trace: the two runs must agree bit
// for bit on cost and stream count (the warm-start contract — warm either
// reproduces the cold replan exactly or declines and the cold path runs),
// and the table reports the reuse accounting behind the warm run: how
// many epoch closes replanned, how many warm-started, and how much of the
// off-line planners' banded DP was carried over versus recomputed.  Every
// column is a deterministic count — no wall-clock timing — so the result
// is bit-identical across machines and worker counts.
func WarmReplan(ctx context.Context, cfg LiveVsBatchConfig) (Result, error) {
	cat := mod.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.Delay, cfg.ZipfExponent)
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = mod.LivePlanners()
	}
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon:          cfg.Horizon,
		MeanInterArrival: cfg.MeanInterArrival,
		Kind:             mod.PoissonArrivals,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	tab := textplot.NewTable("strategy", "cost", "replans", "warm_replans", "cells_reused", "cells_recomputed")
	for _, strategy := range strategies {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("experiments: warm-replan canceled: %w", err)
		}
		warmCost, warmStreams, warmStats, err := liveReplanRun(ctx, cat, reqs, cfg.Horizon, strategy, cfg.EpochSlots, true)
		if err != nil {
			return Result{}, err
		}
		coldCost, coldStreams, coldStats, err := liveReplanRun(ctx, cat, reqs, cfg.Horizon, strategy, cfg.EpochSlots, false)
		if err != nil {
			return Result{}, err
		}
		if warmCost != coldCost || warmStreams != coldStreams {
			return Result{}, fmt.Errorf("experiments: %s warm replanning cost %g/%d streams != cold %g/%d (bit-identity broken)",
				strategy, warmCost, warmStreams, coldCost, coldStreams)
		}
		if coldStats.WarmReplans != 0 {
			return Result{}, fmt.Errorf("experiments: %s cold run reports %d warm replans", strategy, coldStats.WarmReplans)
		}
		tab.AddRow(strategy, warmCost, warmStats.Replans, warmStats.WarmReplans,
			warmStats.CellsReused, warmStats.CellsRecomputed)
	}
	return Result{
		ID:    "ext-warm-replan",
		Title: "Extension: warm-start vs cold epoch replanning, per strategy",
		Table: tab,
		Notes: fmt.Sprintf("%d objects, Zipf(%g), horizon %g, seed %d, epoch %d slots: warm and cold replanning are bit-identical by construction (verified per row); warm_replans counts epoch closes that reused retained state, and the cell columns split the off-line planners' banded DP into reused vs recomputed work (the online strategy never replans; unicast and hybrid replan cold by design)",
			cfg.Objects, cfg.ZipfExponent, cfg.Horizon, cfg.Seed, cfg.EpochSlots),
	}, nil
}

// BackpressureConfig parameterizes the queue-backpressure experiment.
type BackpressureConfig struct {
	// Submits is the number of concurrent same-instant submissions raced
	// against the paused shard at each high-water mark.
	Submits int
	// HighWaters are the per-shard queue high-water marks swept.
	HighWaters []int
	// T is the shared arrival instant (time units).
	T float64
	// Horizon is the drain horizon in time units.
	Horizon float64
}

// DefaultBackpressure races 8 concurrent submissions against high-water
// marks from permissive to refusing almost everything.
func DefaultBackpressure() BackpressureConfig {
	return BackpressureConfig{Submits: 8, HighWaters: []int{1, 2, 4}, T: 0.5, Horizon: 2}
}

// Backpressure pins the determinism of queue-depth admission arbitration:
// a single-shard server is paused, Submits goroutines race identical
// requests at it, and — whatever the goroutine schedule — exactly
// HighWater of them may hold queue slots, so exactly Submits-HighWater
// are refused with ErrPressure.  The refusals are observable while the
// shard is still paused (the winners stay parked in the queue), which is
// what makes the counts exact rather than statistical.  After release the
// admitted subset drains to the same catalog cost as an unpressured
// server fed HighWater requests directly: every column is a deterministic
// count, verified per row, so the table is bit-identical across machines.
func Backpressure(ctx context.Context, cfg BackpressureConfig) (Result, error) {
	cat := mod.ZipfCatalog(1, 1, 0.125, 1)
	tab := textplot.NewTable("high_water", "submits", "admitted", "rejected_pressure", "cost", "ref_cost")
	for _, hw := range cfg.HighWaters {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("experiments: backpressure canceled: %w", err)
		}
		if hw >= cfg.Submits {
			return Result{}, fmt.Errorf("experiments: high water %d admits every one of %d submits", hw, cfg.Submits)
		}
		srv, err := mod.NewLiveServer(cat, mod.WithWorkers(1), mod.WithBackpressure(hw))
		if err != nil {
			return Result{}, err
		}
		release, err := srv.Pause(0)
		if err != nil {
			srv.Close()
			return Result{}, err
		}
		errs := make(chan error, cfg.Submits)
		for i := 0; i < cfg.Submits; i++ {
			go func() {
				_, err := srv.Submit(mod.Request{Object: cat[0].Name, T: cfg.T})
				errs <- err
			}()
		}
		// Only pressure-refused submits can return while the shard is
		// paused; the reservation holders are parked in the queue.
		for i := 0; i < cfg.Submits-hw; i++ {
			if err := <-errs; !errors.Is(err, mod.ErrPressure) {
				release()
				srv.Close()
				return Result{}, fmt.Errorf("experiments: refusal %d under high water %d wants ErrPressure, got: %w", i, hw, err)
			}
		}
		release()
		for i := 0; i < hw; i++ {
			if err := <-errs; err != nil {
				srv.Close()
				return Result{}, fmt.Errorf("experiments: admitted submit %d under high water %d failed: %w", i, hw, err)
			}
		}
		dr, err := srv.Drain(cfg.Horizon)
		srv.Close()
		if err != nil {
			return Result{}, err
		}
		if got := dr.Stats.RejectedPressure; got != int64(cfg.Submits-hw) {
			return Result{}, fmt.Errorf("experiments: high water %d rejected %d of %d submits, want exactly %d",
				hw, got, cfg.Submits, cfg.Submits-hw)
		}
		cost := dr.Objects[0].Cost

		// Unpressured reference run of the admitted subset: all arrivals
		// share one instant, so the totals are independent of WHICH
		// submits won the race.
		ref, err := mod.NewLiveServer(cat, mod.WithWorkers(1))
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < hw; i++ {
			if _, err := ref.Submit(mod.Request{Object: cat[0].Name, T: cfg.T}); err != nil {
				ref.Close()
				return Result{}, err
			}
		}
		refDr, err := ref.Drain(cfg.Horizon)
		ref.Close()
		if err != nil {
			return Result{}, err
		}
		refCost := refDr.Objects[0].Cost
		if cost != refCost || dr.Objects[0].Streams != refDr.Objects[0].Streams {
			return Result{}, fmt.Errorf("experiments: high water %d: pressured cost %g != unpressured cost %g of the admitted subset",
				hw, cost, refCost)
		}
		tab.AddRow(hw, cfg.Submits, int(dr.Stats.Admitted), int(dr.Stats.RejectedPressure), cost, refCost)
	}
	return Result{
		ID:    "ext-backpressure",
		Title: "Extension: queue-depth backpressure is exact admission arbitration",
		Table: tab,
		Notes: fmt.Sprintf("%d concurrent same-instant submits against a paused single shard: the atomic queue reservation admits exactly high_water of them and refuses the rest with ErrPressure (verified per row), and the admitted subset drains to the unpressured reference cost — backpressure changes who waits, never what anything costs",
			cfg.Submits),
	}, nil
}

// liveRun replays the trace through a live server with the given default
// strategy and epoch length and returns the drained catalog-total cost
// and stream count.
func liveRun(ctx context.Context, cat mod.Catalog, reqs []mod.Request, horizon float64, strategy string, epochSlots int) (float64, int64, error) {
	cost, streams, _, err := liveReplanRun(ctx, cat, reqs, horizon, strategy, epochSlots, true)
	return cost, streams, err
}

// liveReplanRun replays the trace through a live server with warm-start
// replanning on or off and returns the drained catalog-total cost, stream
// count, and summed replan accounting.
func liveReplanRun(ctx context.Context, cat mod.Catalog, reqs []mod.Request, horizon float64, strategy string, epochSlots int, warm bool) (float64, int64, mod.ReplanStats, error) {
	srv, err := mod.NewLiveServer(cat, mod.WithStrategy(strategy), mod.WithEpoch(epochSlots), mod.WithWarmReplanning(warm))
	if err != nil {
		return 0, 0, mod.ReplanStats{}, err
	}
	defer srv.Close()
	rep, err := mod.RunDriver(ctx, srv, reqs, horizon)
	if err != nil {
		return 0, 0, mod.ReplanStats{}, err
	}
	var cost float64
	var streams int64
	var rs mod.ReplanStats
	for _, o := range rep.Drain.Objects {
		cost += o.Cost
		streams += o.Streams
		rs.Replans += o.Replan.Replans
		rs.WarmReplans += o.Replan.WarmReplans
		rs.CellsReused += o.Replan.CellsReused
		rs.CellsRecomputed += o.Replan.CellsRecomputed
	}
	return cost, streams, rs, nil
}

// CrashRecoveryConfig parameterizes the kill-and-restore equivalence
// experiment.
type CrashRecoveryConfig struct {
	// Objects is the catalog size.
	Objects int
	// MediaLength and Delay are shared by all objects (time units).
	MediaLength, Delay float64
	// Horizon is the load span in time units.
	Horizon float64
	// ZipfExponent shapes the popularity distribution.
	ZipfExponent float64
	// MeanInterArrival is the aggregate mean inter-arrival time.
	MeanInterArrival float64
	// Seed fixes the request trace.
	Seed int64
	// EpochSlots is the replanning period of epoch strategies, in slots.
	EpochSlots int
	// Shards is the server's shard count (fixed so the durable fingerprint
	// matches across the kill).
	Shards int
	// Strategies are the planner families exercised (default: every
	// live-capable planner).
	Strategies []string
}

// DefaultCrashRecovery cuts the DefaultLiveVsBatch trace mid-run.
func DefaultCrashRecovery() CrashRecoveryConfig {
	return CrashRecoveryConfig{
		Objects:          4,
		MediaLength:      1,
		Delay:            0.125,
		Horizon:          8,
		ZipfExponent:     1,
		MeanInterArrival: 0.1,
		Seed:             7,
		EpochSlots:       8,
		Shards:           2,
	}
}

// CrashRecovery pins the durability layer's equivalence guarantee as a
// standing experiment: per strategy, a server with an in-memory durability
// store is killed halfway through the trace (the store's Clone is the
// bytes "on disk" at the kill instant — everything the doomed server does
// afterwards is lost), a fresh server restores from the clone, finishes
// the trace, and must drain to exactly the totals of a server that never
// died.  Every column is a deterministic count or an exact cost, verified
// per row, so the table is bit-identical across machines; wal_records and
// snapshots report how much durable state the recovery actually consumed.
func CrashRecovery(ctx context.Context, cfg CrashRecoveryConfig) (Result, error) {
	cat := mod.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.Delay, cfg.ZipfExponent)
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = mod.LivePlanners()
	}
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon:          cfg.Horizon,
		MeanInterArrival: cfg.MeanInterArrival,
		Kind:             mod.PoissonArrivals,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	cut := len(reqs) / 2
	tab := textplot.NewTable("strategy", "requests", "cut", "cost", "streams", "wal_records", "snapshots")
	for _, strategy := range strategies {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("experiments: crash-recovery canceled: %w", err)
		}
		opts := func(extra ...mod.Option) []mod.Option {
			return append([]mod.Option{mod.WithStrategy(strategy), mod.WithEpoch(cfg.EpochSlots),
				mod.WithWorkers(cfg.Shards)}, extra...)
		}
		// Uninterrupted reference, durability off.
		ref, err := mod.NewLiveServer(cat, opts()...)
		if err != nil {
			return Result{}, err
		}
		refRep, err := mod.RunDriver(ctx, ref, reqs, cfg.Horizon)
		ref.Close()
		if err != nil {
			return Result{}, err
		}
		// Doomed run: half the trace into a durable server, then the kill.
		mem := mod.NewMemStore()
		doomed, err := mod.NewLiveServer(cat, opts(mod.WithStore(mem))...)
		if err != nil {
			return Result{}, err
		}
		for _, r := range reqs[:cut] {
			if _, err := doomed.Submit(r); err != nil {
				doomed.Close()
				return Result{}, err
			}
		}
		disk := mem.Clone()
		doomed.Close()
		walBytes := 0
		for i := 0; i < cfg.Shards; i++ {
			walBytes += disk.WALBytes(i)
		}
		// Restored run: rebuild from the clone, finish the trace.
		restored, err := mod.NewLiveServer(cat, opts(mod.WithStore(disk), mod.WithRestore(true))...)
		if err != nil {
			return Result{}, err
		}
		for _, r := range reqs[cut:] {
			if _, err := restored.Submit(r); err != nil {
				restored.Close()
				return Result{}, err
			}
		}
		dr, err := restored.Drain(cfg.Horizon)
		restored.Close()
		if err != nil {
			return Result{}, err
		}
		var cost, refCost float64
		var streams, refStreams int64
		for i := range dr.Objects {
			cost += dr.Objects[i].Cost
			streams += dr.Objects[i].Streams
			refCost += refRep.Drain.Objects[i].Cost
			refStreams += refRep.Drain.Objects[i].Streams
		}
		if cost != refCost || streams != refStreams {
			return Result{}, fmt.Errorf("experiments: %s restored run cost %g/%d streams != uninterrupted %g/%d (crash-recovery equivalence broken)",
				strategy, cost, streams, refCost, refStreams)
		}
		if got, want := dr.Stats.Admitted+dr.Stats.Degraded+dr.Stats.Rejected, int64(len(reqs)); got != want {
			return Result{}, fmt.Errorf("experiments: %s restored run accounts %d requests, want %d", strategy, got, want)
		}
		// Each durable WAL frame is the fixed record plus framing overhead.
		const walFrameBytes = 28
		tab.AddRow(strategy, len(reqs), cut, cost, streams, walBytes/walFrameBytes, disk.Snapshots())
	}
	return Result{
		ID:    "ext-crash-recovery",
		Title: "Extension: kill-and-restore recovery is bit-identical, per strategy",
		Table: tab,
		Notes: fmt.Sprintf("%d objects, Zipf(%g), horizon %g, seed %d, epoch %d slots, %d shards: a durable server killed after %d of its requests and restored from the surviving snapshot+WAL finishes the trace to exactly the uninterrupted run's drained cost and stream totals (verified per row); wal_records and snapshots are the durable state the recovery replayed",
			cfg.Objects, cfg.ZipfExponent, cfg.Horizon, cfg.Seed, cfg.EpochSlots, cfg.Shards, cut),
	}, nil
}
