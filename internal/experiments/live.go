package experiments

import (
	"context"
	"fmt"

	"repro/internal/textplot"
	"repro/mod"
)

// LiveVsBatchConfig parameterizes the live-vs-batch serving comparison.
type LiveVsBatchConfig struct {
	// Objects is the catalog size.
	Objects int
	// MediaLength and Delay are shared by all objects (time units).
	MediaLength, Delay float64
	// Horizon is the load span in time units.
	Horizon float64
	// ZipfExponent shapes the popularity distribution.
	ZipfExponent float64
	// MeanInterArrival is the aggregate mean inter-arrival time.
	MeanInterArrival float64
	// Seed fixes the request trace.
	Seed int64
	// EpochSlots is the replanning period of the "live (epoch)" column, in
	// slots of the delay.
	EpochSlots int
	// Strategies are the planner families compared (default: every
	// live-capable planner).
	Strategies []string
}

// DefaultLiveVsBatch returns a small catalog whose delays divide the
// horizon exactly, so the batch and whole-horizon live numbers agree bit
// for bit.
func DefaultLiveVsBatch() LiveVsBatchConfig {
	return LiveVsBatchConfig{
		Objects:          4,
		MediaLength:      1,
		Delay:            0.125,
		Horizon:          8,
		ZipfExponent:     1,
		MeanInterArrival: 0.1,
		Seed:             7,
		EpochSlots:       16,
	}
}

// LiveVsBatch compares, per live-capable strategy, the batch planner's
// cost on a fixed trace with two live serving runs over the same trace:
// one draining a single whole-horizon epoch (which must reproduce the
// batch cost exactly — the serving layer's equivalence guarantee) and one
// replanning every EpochSlots slots (the price or gain of epoch
// isolation: merging cannot cross a boundary, but neither can a sparse
// epoch be burdened by a dense one).  Costs are summed over the catalog in
// complete media streams.
func LiveVsBatch(ctx context.Context, cfg LiveVsBatchConfig) (Result, error) {
	cat := mod.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.Delay, cfg.ZipfExponent)
	strategies := cfg.Strategies
	if len(strategies) == 0 {
		strategies = mod.LivePlanners()
	}
	reqs, err := mod.GenerateRequests(cat, mod.LoadConfig{
		Horizon:          cfg.Horizon,
		MeanInterArrival: cfg.MeanInterArrival,
		Kind:             mod.PoissonArrivals,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return Result{}, err
	}
	traces := map[string][]float64{}
	for _, r := range reqs {
		traces[r.Object] = append(traces[r.Object], r.T)
	}

	wholeSlots := int(cfg.Horizon/cfg.Delay) + 1
	tab := textplot.NewTable("strategy", "batch_cost", "live_cost", "live_epoch_cost", "epoch_delta_pct", "live_streams")
	for _, strategy := range strategies {
		if err := ctx.Err(); err != nil {
			return Result{}, fmt.Errorf("experiments: live-vs-batch canceled: %w", err)
		}
		var batch float64
		planner, err := mod.New(strategy, mod.WithMediaLength(cfg.MediaLength),
			mod.WithDelay(cfg.Delay), mod.WithHorizon(cfg.Horizon))
		if err != nil {
			return Result{}, err
		}
		for _, o := range cat {
			plan, err := planner.Plan(ctx, mod.Instance{Arrivals: traces[o.Name]})
			if err != nil {
				return Result{}, err
			}
			batch += plan.Cost
		}
		liveCost, liveStreams, err := liveRun(ctx, cat, reqs, cfg.Horizon, strategy, wholeSlots)
		if err != nil {
			return Result{}, err
		}
		epochCost, _, err := liveRun(ctx, cat, reqs, cfg.Horizon, strategy, cfg.EpochSlots)
		if err != nil {
			return Result{}, err
		}
		if liveCost != batch {
			return Result{}, fmt.Errorf("experiments: live %s cost %g != batch %g (equivalence broken)",
				strategy, liveCost, batch)
		}
		delta := 0.0
		if batch > 0 {
			delta = 100 * (epochCost - batch) / batch
		}
		tab.AddRow(strategy, batch, liveCost, epochCost, delta, liveStreams)
	}
	return Result{
		ID:    "ext-live-vs-batch",
		Title: "Extension: live serving vs batch planning, per strategy",
		Table: tab,
		Notes: fmt.Sprintf("%d objects, Zipf(%g), horizon %g, seed %d: live_cost drains one whole-horizon epoch and must equal batch_cost bit for bit; live_epoch_cost replans every %d slots (epoch isolation: merging never crosses a boundary)",
			cfg.Objects, cfg.ZipfExponent, cfg.Horizon, cfg.Seed, cfg.EpochSlots),
	}, nil
}

// liveRun replays the trace through a live server with the given default
// strategy and epoch length and returns the drained catalog-total cost
// and stream count.
func liveRun(ctx context.Context, cat mod.Catalog, reqs []mod.Request, horizon float64, strategy string, epochSlots int) (float64, int64, error) {
	srv, err := mod.NewLiveServer(cat, mod.WithStrategy(strategy), mod.WithEpoch(epochSlots))
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	rep, err := mod.RunDriver(ctx, srv, reqs, horizon)
	if err != nil {
		return 0, 0, err
	}
	var cost float64
	var streams int64
	for _, o := range rep.Drain.Objects {
		cost += o.Cost
		streams += o.Streams
	}
	return cost, streams, nil
}
