package experiments

import (
	"context"
	"fmt"

	"repro/internal/multiobject"
	"repro/internal/sim"
	"repro/internal/textplot"
)

// WorkloadSimConfig parameterizes the simulated multi-object workload
// experiment (the measured counterpart of the analytic MultiObjectPeak).
type WorkloadSimConfig struct {
	// Objects is the catalog size.
	Objects int
	// MediaLength is the common media length (time units).
	MediaLength float64
	// Delay is the guaranteed start-up delay (time units).
	Delay float64
	// Horizon is the simulated time span in time units.
	Horizon float64
	// ZipfExponent shapes the popularity distribution.
	ZipfExponent float64
	// MeanInterArrival is the aggregate mean inter-arrival time (time
	// units), split across objects by popularity.
	MeanInterArrival float64
	// Poisson selects Poisson arrivals over constant-rate ones.
	Poisson bool
	// Seed seeds the Poisson generators.
	Seed int64
	// Workers is the per-object simulation worker count (0 means all CPUs).
	Workers int
}

// DefaultWorkloadSim returns a five-object catalog under a Poisson mix.
func DefaultWorkloadSim() WorkloadSimConfig {
	return WorkloadSimConfig{
		Objects:          5,
		MediaLength:      1,
		Delay:            0.02,
		Horizon:          10,
		ZipfExponent:     1,
		MeanInterArrival: 0.02,
		Poisson:          true,
		Seed:             1,
	}
}

// MultiObjectSim runs the Section 5 multi-object extension through the
// indexed simulation engine: every object of a Zipf catalog is executed slot
// by slot under its arrival mix, and the measured per-object bandwidth and
// server-wide peak are tabulated next to the analytic plan of
// multiobject.Build, which they must confirm.
func MultiObjectSim(ctx context.Context, cfg WorkloadSimConfig) (Result, error) {
	cat := multiobject.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.Delay, cfg.ZipfExponent)
	res, err := sim.RunWorkload(ctx, sim.WorkloadConfig{
		Catalog:          cat,
		Horizon:          cfg.Horizon,
		MeanInterArrival: cfg.MeanInterArrival,
		Poisson:          cfg.Poisson,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
	})
	if err != nil {
		return Result{}, err
	}
	plan, err := multiobject.Build(cat, cfg.Horizon)
	if err != nil {
		return Result{}, err
	}
	tab := textplot.NewTable("object", "L_slots", "arrivals", "clients", "sim_streams", "analytic_streams", "sim_peak", "stalls")
	var xs, measured []float64
	for i, o := range res.Objects {
		tab.AddRow(o.Object.Name, o.SlotsPerMedia, o.Arrivals, o.Clients,
			o.Streams, plan.Objects[i].Streams, o.Sim.PeakBandwidth, o.Sim.Stalls)
		xs = append(xs, float64(i+1))
		measured = append(measured, o.Streams)
	}
	return Result{
		ID:    "ext-workload-sim",
		Title: "Extension (Section 5): simulated multi-object workload on the indexed engine",
		Table: tab,
		Series: []textplot.Series{
			{Name: "measured streams", X: xs, Y: measured},
		},
		Notes: fmt.Sprintf("%d objects, Zipf(%g), %s arrivals, horizon %.0f media lengths; measured server peak %d channels (analytic plan: %d), %d stalls",
			cfg.Objects, cfg.ZipfExponent, arrivalKind(cfg.Poisson), cfg.Horizon, res.Peak, plan.Peak, res.Stalls),
	}, nil
}

func arrivalKind(poisson bool) string {
	if poisson {
		return "Poisson"
	}
	return "constant-rate"
}
