package experiments

import (
	"context"
	"fmt"

	"repro/internal/arrivals"
	"repro/internal/hybrid"
	"repro/internal/multiobject"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/mod"
)

// The experiments in this file go beyond the paper's evaluation section and
// exercise the extensions discussed in its Section 5 (multiple media
// objects, hybrid servers) plus an extra cross-check of the dyadic baseline
// against the exact general-arrivals off-line optimum.  They are included in
// All() and cmd/modexp under the ids "ext-*".

// HybridConfig parameterizes the hybrid-server extension experiment.
type HybridConfig struct {
	// Delay is the guaranteed start-up delay as a fraction of the media.
	Delay float64
	// Phases describe a non-stationary arrival pattern: each phase has a
	// mean inter-arrival time (fraction of the media length) and a span in
	// media lengths.
	Phases []struct {
		Lambda float64
		Span   float64
	}
	// Seed seeds the Poisson generator.
	Seed int64
}

// DefaultHybrid returns a quiet/ramp-up/prime-time evening.
func DefaultHybrid() HybridConfig {
	return HybridConfig{
		Delay: 0.01,
		Phases: []struct {
			Lambda float64
			Span   float64
		}{
			{Lambda: 0.08, Span: 15},
			{Lambda: 0.02, Span: 15},
			{Lambda: 0.003, Span: 15},
		},
		Seed: 11,
	}
}

// HybridServer evaluates the Section 5 hybrid server on a non-stationary
// trace, comparing it against the pure delay-guaranteed and pure batched
// dyadic strategies.
func HybridServer(cfg HybridConfig) (Result, error) {
	var trace arrivals.Trace
	var offset float64
	for i, ph := range cfg.Phases {
		part := arrivals.Poisson(ph.Lambda, ph.Span, cfg.Seed+int64(i))
		for _, t := range part {
			trace = append(trace, offset+t)
		}
		offset += ph.Span
	}
	hcfg := hybrid.DefaultConfig(1.0, cfg.Delay)
	res, err := hybrid.Run(trace, offset, hcfg)
	if err != nil {
		return Result{}, err
	}
	tab := textplot.NewTable("strategy", "streams", "vs_hybrid")
	tab.AddRow("hybrid", res.TotalCost, 1.0)
	tab.AddRow("pure delay-guaranteed", res.PureDelayGuaranteedCost, safeRatio(res.PureDelayGuaranteedCost, res.TotalCost))
	tab.AddRow("pure batched dyadic", res.PureDyadicCost, safeRatio(res.PureDyadicCost, res.TotalCost))
	return Result{
		ID:    "ext-hybrid",
		Title: "Extension (Section 5): hybrid delay-guaranteed / dyadic server on a non-stationary evening",
		Table: tab,
		Notes: fmt.Sprintf("delay = %.1f%% of media length; %d arrivals over %.0f media lengths; %.0f%% of the horizon served in delay-guaranteed mode",
			cfg.Delay*100, len(trace), offset, res.LoadedFraction*100),
	}, nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MultiObjectConfig parameterizes the multiple-media-objects extension.
type MultiObjectConfig struct {
	// Objects is the catalog size.
	Objects int
	// MediaLength is the common media length (time units).
	MediaLength float64
	// BaseDelay is the smallest guaranteed delay considered.
	BaseDelay float64
	// Horizon is the planning horizon in time units.
	Horizon float64
	// ZipfExponent shapes the popularity distribution.
	ZipfExponent float64
	// DelayFactors are the uniform delay multipliers to sweep.
	DelayFactors []float64
}

// DefaultMultiObject returns a ten-object catalog sweep.
func DefaultMultiObject() MultiObjectConfig {
	return MultiObjectConfig{
		Objects:      10,
		MediaLength:  1,
		BaseDelay:    0.01,
		Horizon:      10,
		ZipfExponent: 1,
		DelayFactors: []float64{1, 2, 4, 8, 16},
	}
}

// MultiObjectPeak evaluates the Section 5 extension to a server carrying
// several media objects: how the server-wide peak and average channel usage
// fall as the guaranteed start-up delay is scaled up uniformly, and what a
// popularity-aware delay assignment achieves.
func MultiObjectPeak(cfg MultiObjectConfig) (Result, error) {
	tab := textplot.NewTable("delay_factor", "delay_pct", "peak_channels", "avg_channels", "total_streams")
	var xs, peaks []float64
	base := multiobject.ZipfCatalog(cfg.Objects, cfg.MediaLength, cfg.BaseDelay, cfg.ZipfExponent)
	for _, f := range cfg.DelayFactors {
		cat := make(multiobject.Catalog, len(base))
		copy(cat, base)
		for i := range cat {
			cat[i].Delay = cfg.BaseDelay * f
			if cat[i].Delay > cat[i].Length {
				cat[i].Delay = cat[i].Length
			}
		}
		plan, err := multiobject.Build(cat, cfg.Horizon)
		if err != nil {
			return Result{}, err
		}
		var streams float64
		for _, op := range plan.Objects {
			streams += op.Streams
		}
		tab.AddRow(f, cfg.BaseDelay*f*100, plan.Peak, plan.AverageChannels(), streams)
		xs = append(xs, f)
		peaks = append(peaks, float64(plan.Peak))
	}
	// Popularity-aware assignment at the base delay for comparison.
	aware, err := multiobject.Build(multiobject.PopularityAwareDelays(base, cfg.BaseDelay, cfg.DelayFactors[len(cfg.DelayFactors)-1]), cfg.Horizon)
	if err != nil {
		return Result{}, err
	}
	var awareStreams float64
	for _, op := range aware.Objects {
		awareStreams += op.Streams
	}
	tab.AddRow("popularity-aware", "-", aware.Peak, aware.AverageChannels(), awareStreams)
	return Result{
		ID:    "ext-multiobject",
		Title: "Extension (Section 5): peak bandwidth of a multi-object delay-guaranteed server",
		Table: tab,
		Series: []textplot.Series{
			{Name: "peak channels", X: xs, Y: peaks},
		},
		Notes: fmt.Sprintf("%d objects, Zipf(%g) popularity, horizon %.0f media lengths; increasing the delay keeps the server under any fixed channel budget without declining requests",
			cfg.Objects, cfg.ZipfExponent, cfg.Horizon),
	}, nil
}

// DyadicVsOptimalConfig parameterizes the dyadic-vs-exact-optimum check.
type DyadicVsOptimalConfig struct {
	// LambdaPcts are mean inter-arrival times as percentages of the media.
	LambdaPcts []float64
	// HorizonMedia is the horizon in media lengths (kept small because the
	// exact optimum is a quadratic dynamic program).
	HorizonMedia float64
	// Replications is the number of Poisson replications per point.
	Replications int
	// Seed seeds the generator.
	Seed int64
	// Workers sizes the worker pool over the (lambda, replication) grid
	// (0 means GOMAXPROCS, 1 means serial); seeds depend only on grid
	// coordinates so the output is identical for every worker count.
	Workers int
}

// DefaultDyadicVsOptimal returns the default sweep.
func DefaultDyadicVsOptimal() DyadicVsOptimalConfig {
	return DyadicVsOptimalConfig{
		LambdaPcts:   []float64{0.25, 0.5, 1, 2, 5},
		HorizonMedia: 2,
		Replications: 3,
		Seed:         23,
	}
}

// DyadicVsOptimal measures how far the dyadic on-line baseline is from the
// exact off-line optimum for general (Poisson) arrivals, using the
// general-arrivals dynamic program of internal/offline.  It contextualizes
// the Figs. 11-12 comparison: the dyadic curve there is itself within a
// modest factor of the unconstrained optimum.  Both costs are obtained
// through the public mod facade's "dyadic" and "offline" planners.
func DyadicVsOptimal(ctx context.Context, cfg DyadicVsOptimalConfig) (Result, error) {
	reps := cfg.Replications
	if reps < 1 {
		reps = 1
	}
	type cell struct {
		dy, opt, count float64
		skipped        bool
		err            error
	}
	grid := make([][]cell, len(cfg.LambdaPcts))
	for li := range grid {
		grid[li] = make([]cell, reps)
	}
	// When the grid itself fans out, keep each cell's offline DP serial so
	// the two pools don't nest into workers^2 CPU-bound goroutines; a serial
	// grid (Workers == 1) lets the DP use every core instead.
	dpWorkers := 1
	if cfg.Workers == 1 {
		dpWorkers = 0
	}
	dyadicPlanner := mod.MustNew("dyadic", mod.WithMediaLength(1), mod.WithPoisson(true))
	optimalPlanner := mod.MustNew("offline", mod.WithMediaLength(1), mod.WithWorkers(dpWorkers))
	forEachGridCell(ctx, len(cfg.LambdaPcts), reps, cfg.Workers, func(li, r int) {
		lp := cfg.LambdaPcts[li]
		lambda := lp / 100
		c := &grid[li][r]
		tr := arrivals.Poisson(lambda, cfg.HorizonMedia, cfg.Seed+int64(r)*37+int64(lp*100))
		if len(tr) < 2 {
			c.skipped = true
			return
		}
		inst := mod.Instance{Arrivals: tr, Horizon: cfg.HorizonMedia}
		dy, err := dyadicPlanner.Plan(ctx, inst)
		if err != nil {
			c.err = err
			return
		}
		opt, err := optimalPlanner.Plan(ctx, inst)
		if err != nil {
			c.err = err
			return
		}
		c.dy, c.opt, c.count = dy.Cost, opt.Cost, float64(len(tr))
	})
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("experiments: dyadic-vs-optimal sweep canceled: %w", err)
	}

	tab := textplot.NewTable("lambda_pct", "arrivals", "dyadic_streams", "optimal_streams", "ratio")
	var xs, ratios []float64
	for li, lp := range cfg.LambdaPcts {
		var dyCosts, optCosts, counts []float64
		for r := 0; r < reps; r++ {
			c := grid[li][r]
			if c.err != nil {
				return Result{}, c.err
			}
			if c.skipped {
				continue
			}
			dyCosts = append(dyCosts, c.dy)
			optCosts = append(optCosts, c.opt)
			counts = append(counts, c.count)
		}
		if len(dyCosts) == 0 {
			continue
		}
		dy := stats.Mean(dyCosts)
		opt := stats.Mean(optCosts)
		tab.AddRow(lp, stats.Mean(counts), dy, opt, dy/opt)
		xs = append(xs, lp)
		ratios = append(ratios, dy/opt)
	}
	return Result{
		ID:    "ext-dyadic-vs-optimal",
		Title: "Extension: dyadic on-line algorithm vs. the exact general-arrivals off-line optimum",
		Table: tab,
		Series: []textplot.Series{
			{Name: "dyadic / optimal", X: xs, Y: ratios},
		},
		Notes: fmt.Sprintf("Poisson arrivals over %.0f media lengths; the optimum is the interval dynamic program of Bar-Noy & Ladner [6]", cfg.HorizonMedia),
	}, nil
}
