package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestHybridServerExperiment(t *testing.T) {
	res, err := HybridServer(DefaultHybrid())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext-hybrid" || len(res.Table.Rows) != 3 {
		t.Fatalf("unexpected result shape: %+v", res.ID)
	}
	hybridCost := parseF(t, res.Table.Rows[0][1])
	pureDG := parseF(t, res.Table.Rows[1][1])
	pureDyadic := parseF(t, res.Table.Rows[2][1])
	if hybridCost <= 0 || pureDG <= 0 || pureDyadic <= 0 {
		t.Fatalf("costs should be positive: %v %v %v", hybridCost, pureDG, pureDyadic)
	}
	// On the default quiet/busy evening the hybrid must beat the pure
	// delay-guaranteed strategy (it skips the quiet slots).
	if hybridCost >= pureDG {
		t.Errorf("hybrid (%v) should beat pure delay-guaranteed (%v)", hybridCost, pureDG)
	}
	if !strings.Contains(res.Notes, "delay-guaranteed mode") {
		t.Errorf("notes should report the loaded fraction: %q", res.Notes)
	}
}

func TestMultiObjectPeakExperiment(t *testing.T) {
	cfg := DefaultMultiObject()
	cfg.Objects = 5
	cfg.Horizon = 5
	res, err := MultiObjectPeak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One row per delay factor plus the popularity-aware row.
	if len(res.Table.Rows) != len(cfg.DelayFactors)+1 {
		t.Fatalf("expected %d rows, got %d", len(cfg.DelayFactors)+1, len(res.Table.Rows))
	}
	// Peak channels must be non-increasing as the delay grows.
	peaks := res.Series[0].Y
	for i := 1; i < len(peaks); i++ {
		if peaks[i] > peaks[i-1] {
			t.Errorf("peak increased with a larger delay: %v", peaks)
		}
	}
	// The largest delay factor must use strictly fewer peak channels than
	// the base delay.
	if peaks[len(peaks)-1] >= peaks[0] {
		t.Errorf("scaling the delay did not reduce the peak: %v", peaks)
	}
}

func TestDyadicVsOptimalExperiment(t *testing.T) {
	cfg := DyadicVsOptimalConfig{
		LambdaPcts:   []float64{1, 5},
		HorizonMedia: 1.5,
		Replications: 2,
		Seed:         9,
	}
	res, err := DyadicVsOptimal(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Table.Rows))
	}
	for _, row := range res.Table.Rows {
		ratio := parseF(t, row[4])
		// The on-line dyadic heuristic can never beat the exact off-line
		// optimum, and in this regime it stays within a factor of 2.
		if ratio < 1-1e-9 {
			t.Errorf("dyadic beat the optimum: ratio %v", ratio)
		}
		if ratio > 2 {
			t.Errorf("dyadic more than 2x the optimum: ratio %v", ratio)
		}
	}
}
