package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFig1Shape(t *testing.T) {
	res := Fig1(DefaultFig1())
	if res.ID != "fig1" || len(res.Series) != 2 {
		t.Fatalf("unexpected result meta: %+v", res.ID)
	}
	offline := res.Series[0].Y
	onlineY := res.Series[1].Y
	if len(offline) != len(DefaultFig1().DelayPercents) {
		t.Fatalf("unexpected number of points")
	}
	// Bandwidth decreases as the guaranteed delay grows (the whole point of
	// Fig. 1), for both algorithms.
	for i := 1; i < len(offline); i++ {
		if offline[i] > offline[i-1]+1e-9 {
			t.Errorf("offline bandwidth increased from %.2f to %.2f at point %d", offline[i-1], offline[i], i)
		}
		if onlineY[i] > onlineY[i-1]+1e-9 {
			t.Errorf("online bandwidth increased at point %d", i)
		}
	}
	// The on-line algorithm is close to, and never better than, the optimum.
	for i := range offline {
		if onlineY[i] < offline[i]-1e-9 {
			t.Errorf("online beat offline at point %d", i)
		}
		if onlineY[i] > offline[i]*1.25 {
			t.Errorf("online more than 25%% above optimal at point %d: %.2f vs %.2f", i, onlineY[i], offline[i])
		}
	}
	// Batching (last column) is far above both.
	if len(res.Table.Rows) == 0 || len(res.Table.Rows[0]) != 6 {
		t.Fatalf("table shape wrong")
	}
}

func TestTableM(t *testing.T) {
	res := TableM(16)
	if len(res.Table.Rows) != 16 {
		t.Fatalf("expected 16 rows, got %d", len(res.Table.Rows))
	}
	// Row for n=8 must show M(8)=21 in both the closed form and DP columns.
	row := res.Table.Rows[7]
	if row[0] != "8" || row[1] != "21" || row[2] != "21" {
		t.Errorf("row for n=8 = %v", row)
	}
	// The last row is n=16 with M=64 (paper table).
	last := res.Table.Rows[15]
	if last[1] != "64" {
		t.Errorf("M(16) = %s, want 64", last[1])
	}
}

func TestTableMAll(t *testing.T) {
	res := TableMAll(16)
	if len(res.Table.Rows) != 16 {
		t.Fatalf("expected 16 rows")
	}
	if res.Table.Rows[15][1] != "49" {
		t.Errorf("Mw(16) = %s, want 49", res.Table.Rows[15][1])
	}
	if res.Table.Rows[0][3] != "1" {
		t.Errorf("ratio at n=1 should be 1, got %s", res.Table.Rows[0][3])
	}
}

func TestTableI(t *testing.T) {
	res := TableI(55)
	if len(res.Table.Rows) != 54 {
		t.Fatalf("expected 54 rows (n=2..55), got %d", len(res.Table.Rows))
	}
	// n=55 is a Fibonacci number: I(55) = {34}.
	last := res.Table.Rows[len(res.Table.Rows)-1]
	if last[0] != "55" || last[1] != "34" || last[2] != "34" || last[3] != "1" {
		t.Errorf("I(55) row = %v", last)
	}
	// n=4 has the interval [2,3] (Fig. 6).
	row4 := res.Table.Rows[2]
	if row4[1] != "2" || row4[2] != "3" {
		t.Errorf("I(4) row = %v", row4)
	}
}

func TestTheorem12Examples(t *testing.T) {
	res := Theorem12Examples()
	if len(res.Table.Rows) < 3 {
		t.Fatalf("expected at least 3 example rows")
	}
	// First row: L=15, n=8 -> optimal cost 36.
	if res.Table.Rows[0][7] != "36" {
		t.Errorf("F(15,8) column = %s, want 36", res.Table.Rows[0][7])
	}
	// Second row: L=15, n=14 -> 64.
	if res.Table.Rows[1][7] != "64" {
		t.Errorf("F(15,14) column = %s, want 64", res.Table.Rows[1][7])
	}
	// Third row: L=4, n=16 -> 38, with F(L,n,s0)=40.
	if res.Table.Rows[2][7] != "38" || res.Table.Rows[2][4] != "40" {
		t.Errorf("L=4,n=16 row = %v", res.Table.Rows[2])
	}
}

func TestTheorem14AdvantageGrows(t *testing.T) {
	res := Theorem14(DefaultTheorem14())
	adv := res.Series[0].Y
	for i := 1; i < len(adv); i++ {
		if adv[i] <= adv[i-1] {
			t.Errorf("advantage did not grow at point %d: %.3f after %.3f", i, adv[i], adv[i-1])
		}
	}
}

func TestReceiveAllRatioApproachesLimit(t *testing.T) {
	res := ReceiveAllRatio([]int64{16, 4096, 1 << 20}, 1000)
	rows := res.Table.Rows
	if len(rows) != 3 {
		t.Fatalf("expected 3 rows")
	}
	// The merge-cost ratio in the last row must be within 3% of log_phi 2.
	lastRatio := parseF(t, rows[2][1])
	if lastRatio < core.LogPhi2-0.05 || lastRatio > core.LogPhi2+0.05 {
		t.Errorf("ratio at n=2^20 is %v, want close to %v", lastRatio, core.LogPhi2)
	}
}

func TestFig9RatiosDecreaseTowardOne(t *testing.T) {
	res := Fig9(Fig9Config{Ls: []int64{20, 100}, Horizons: []int64{200, 1000, 10000, 100000}})
	for _, s := range res.Series {
		last := s.Y[len(s.Y)-1]
		if last < 1 || last > 1.05 {
			t.Errorf("series %s: final ratio %.4f not within 5%% of 1", s.Name, last)
		}
		if s.Y[0] < last-1e-9 {
			t.Errorf("series %s: ratio grew with the horizon", s.Name)
		}
	}
}

func TestFig11QualitativeShape(t *testing.T) {
	cfg := ComparisonConfig{
		DelayPct:     1.0,
		HorizonMedia: 40,
		LambdaPcts:   []float64{0.1, 0.5, 1.0, 3.0, 5.0},
		Replications: 1,
		Seed:         7,
	}
	res, err := Fig11(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	imm := res.Series[0].Y
	bat := res.Series[1].Y
	dg := res.Series[2].Y
	// The delay-guaranteed cost is independent of the arrival intensity.
	for i := 1; i < len(dg); i++ {
		if dg[i] != dg[0] {
			t.Errorf("delay-guaranteed bandwidth varies with lambda: %v", dg)
		}
	}
	// Dense arrivals (lambda << delay): immediate service is the most
	// expensive and the delay-guaranteed algorithm is competitive.
	if !(imm[0] > bat[0]) {
		t.Errorf("at lambda=0.1%%: immediate (%.1f) should exceed batched (%.1f)", imm[0], bat[0])
	}
	if !(imm[0] > dg[0]) {
		t.Errorf("at lambda=0.1%%: immediate (%.1f) should exceed delay-guaranteed (%.1f)", imm[0], dg[0])
	}
	// Sparse arrivals (lambda >> delay): the delay-guaranteed algorithm is
	// the most expensive because it starts streams for empty slots.
	lastIdx := len(imm) - 1
	if !(dg[lastIdx] > imm[lastIdx]) || !(dg[lastIdx] > bat[lastIdx]) {
		t.Errorf("at lambda=5%%: delay-guaranteed (%.1f) should exceed immediate (%.1f) and batched (%.1f)",
			dg[lastIdx], imm[lastIdx], bat[lastIdx])
	}
	// Sparse arrivals: immediate and batched behave similarly (within 20%).
	if rel := abs(imm[lastIdx]-bat[lastIdx]) / imm[lastIdx]; rel > 0.2 {
		t.Errorf("at lambda=5%%: immediate and batched differ by %.0f%%", rel*100)
	}
}

func TestFig12QualitativeShape(t *testing.T) {
	cfg := ComparisonConfig{
		DelayPct:     1.0,
		HorizonMedia: 40,
		LambdaPcts:   []float64{0.1, 1.0, 5.0},
		Replications: 2,
		Seed:         3,
	}
	res, err := Fig12(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	imm := res.Series[0].Y
	bat := res.Series[1].Y
	dg := res.Series[2].Y
	if !(imm[0] > dg[0]) {
		t.Errorf("Poisson, lambda=0.1%%: immediate (%.1f) should exceed delay-guaranteed (%.1f)", imm[0], dg[0])
	}
	last := len(imm) - 1
	if !(dg[last] > imm[last]) || !(dg[last] > bat[last]) {
		t.Errorf("Poisson, lambda=5%%: delay-guaranteed should be the most expensive (dg=%.1f imm=%.1f bat=%.1f)",
			dg[last], imm[last], bat[last])
	}
}

func TestBufferTradeoff(t *testing.T) {
	res := BufferTradeoff(40, 200)
	if len(res.Table.Rows) != int(core.MaxUsefulBuffer(40)) {
		t.Fatalf("expected one row per buffer size up to L/2, got %d", len(res.Table.Rows))
	}
	// Cost ratio vs. the unbounded optimum is non-increasing in B and
	// reaches exactly 1 at B = L/2.
	ys := res.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] > ys[i-1]+1e-12 {
			t.Errorf("cost increased with a larger buffer at B=%d", i+1)
		}
	}
	if ys[len(ys)-1] != 1 {
		t.Errorf("cost at B=L/2 should equal the unbounded optimum, ratio %v", ys[len(ys)-1])
	}
	if ys[0] <= 1 {
		t.Errorf("a one-slot buffer should cost strictly more than unbounded")
	}
}

func TestOnlineTreeSizeAblation(t *testing.T) {
	res := OnlineTreeSizeAblation(100, 10000)
	if len(res.Table.Rows) != 5 {
		t.Fatalf("expected 5 candidate rows")
	}
	// The paper's F_h choice must be the cheapest candidate.
	var paperCost, minCost float64
	minCost = -1
	for _, row := range res.Table.Rows {
		c := parseF(t, row[2])
		if strings.Contains(row[0], "paper") {
			paperCost = c
		}
		if minCost < 0 || c < minCost {
			minCost = c
		}
	}
	if paperCost != minCost {
		t.Errorf("the F_h rule (cost %v) is not the cheapest static size (min %v)", paperCost, minCost)
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full experiment sweep in -short mode")
	}
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if r.ID == "" || r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("experiment %q has no data", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %q", r.ID)
		}
		seen[r.ID] = true
		if !strings.Contains(r.Table.CSV(), ",") {
			t.Errorf("experiment %q CSV looks wrong", r.ID)
		}
	}
	for _, id := range []string{"fig1", "fig8", "fig9", "fig11", "fig12", "table-m", "table-mw", "thm12", "thm14", "thm19",
		"online-treesize", "buffer-tradeoff", "ext-hybrid", "ext-multiobject", "ext-dyadic-vs-optimal", "ext-workload-sim", "ext-live-vs-batch", "ext-warm-replan", "ext-backpressure", "ext-crash-recovery"} {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as float: %v", s, err)
	}
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestComparisonSweepBitIdenticalAcrossWorkers checks the Figs. 11-12
// replication grid produces exactly the same series for any worker count:
// replication seeds derive from grid coordinates, never scheduling order.
func TestComparisonSweepBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := ComparisonConfig{
		DelayPct:     1.0,
		HorizonMedia: 10,
		LambdaPcts:   []float64{0.5, 1.0, 2.0},
		Replications: 3,
		Seed:         1,
		Workers:      1,
	}
	serial, err := Fig12(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 7} {
		cfg.Workers = workers
		par, err := Fig12(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for si := range serial.Series {
			for i := range serial.Series[si].Y {
				if par.Series[si].Y[i] != serial.Series[si].Y[i] {
					t.Fatalf("workers=%d: series %q point %d = %v, want bit-identical %v",
						workers, serial.Series[si].Name, i, par.Series[si].Y[i], serial.Series[si].Y[i])
				}
			}
		}
	}
}

// TestDyadicVsOptimalBitIdenticalAcrossWorkers does the same for the
// extension sweep that exercises the parallel offline DP underneath.
func TestDyadicVsOptimalBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := DyadicVsOptimalConfig{
		LambdaPcts:   []float64{0.5, 1, 2},
		HorizonMedia: 2,
		Replications: 2,
		Seed:         23,
		Workers:      1,
	}
	serial, err := DyadicVsOptimal(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := DyadicVsOptimal(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Series[0].Y) != len(serial.Series[0].Y) {
		t.Fatalf("parallel sweep has %d points, serial %d", len(par.Series[0].Y), len(serial.Series[0].Y))
	}
	for i := range serial.Series[0].Y {
		if par.Series[0].Y[i] != serial.Series[0].Y[i] {
			t.Fatalf("point %d = %v, want bit-identical %v", i, par.Series[0].Y[i], serial.Series[0].Y[i])
		}
	}
}
