package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestMultiObjectSim(t *testing.T) {
	cfg := DefaultWorkloadSim()
	cfg.Horizon = 4
	res, err := MultiObjectSim(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext-workload-sim" {
		t.Errorf("ID = %q", res.ID)
	}
	if got := len(res.Table.Rows); got != cfg.Objects {
		t.Fatalf("table has %d rows, want one per object (%d)", got, cfg.Objects)
	}
	if len(res.Series) != 1 || len(res.Series[0].Y) != cfg.Objects {
		t.Fatalf("expected one series with %d points", cfg.Objects)
	}
	for i, y := range res.Series[0].Y {
		if y <= 0 {
			t.Errorf("object %d: non-positive measured streams %g", i, y)
		}
	}
	if !strings.Contains(res.Notes, "0 stalls") {
		t.Errorf("simulated workload must report 0 stalls; notes: %s", res.Notes)
	}
}

func TestMultiObjectSimConstantRate(t *testing.T) {
	cfg := DefaultWorkloadSim()
	cfg.Horizon = 3
	cfg.Poisson = false
	res, err := MultiObjectSim(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Notes, "constant-rate") {
		t.Errorf("notes should name the arrival process: %s", res.Notes)
	}
}

func TestMultiObjectSimRejectsBadConfig(t *testing.T) {
	cfg := DefaultWorkloadSim()
	cfg.MeanInterArrival = 0
	if _, err := MultiObjectSim(context.Background(), cfg); err == nil {
		t.Error("expected an error for a zero mean inter-arrival time")
	}
}
