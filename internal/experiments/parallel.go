package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachGridCell invokes run(i, j) for every cell of an nI x nJ grid using
// a pool of `workers` goroutines (0 means GOMAXPROCS, 1 means serial).  The
// cells must be independent; callers write results into per-cell slots and
// reduce them in grid order afterwards, which keeps parallel sweeps
// bit-identical to serial ones.
//
// Cancelling ctx stops the sweep between cells (one cell is the work
// unit): no new cells start, in-flight cells finish, and the function
// returns only after every worker has been joined.  Callers detect the
// partial sweep via ctx.Err().
func forEachGridCell(ctx context.Context, nI, nJ, workers int, run func(i, j int)) {
	total := nI * nJ
	if total <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		for i := 0; i < nI; i++ {
			for j := 0; j < nJ; j++ {
				if ctx.Err() != nil {
					return
				}
				run(i, j)
			}
		}
		return
	}
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				k := int(atomic.AddInt64(&next, 1))
				if k >= total {
					return
				}
				run(k/nJ, k%nJ)
			}
		}()
	}
	wg.Wait()
}
