// Package experiments regenerates every table and figure of the paper's
// evaluation.  Each experiment returns a Result containing a data table (CSV
// and aligned-text renderable) and, where the paper plots a figure, chart
// series.  The per-experiment index lives in DESIGN.md; EXPERIMENTS.md
// records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/batching"
	"repro/internal/core"
	"repro/internal/fib"
	"repro/internal/online"
	"repro/internal/stats"
	"repro/internal/textplot"
	"repro/mod"
)

// Result is the output of one experiment.
type Result struct {
	// ID is the experiment identifier used in DESIGN.md (e.g. "fig1").
	ID string
	// Title is a human-readable description.
	Title string
	// Table holds the raw rows.
	Table *textplot.Table
	// Series holds chartable series when the paper artifact is a figure.
	Series []textplot.Series
	// Notes records parameter choices and interpretation hints.
	Notes string
}

// Fig1Config parameterizes the bandwidth-vs-delay illustration of Fig. 1.
type Fig1Config struct {
	// DelayPercents are the guaranteed start-up delays as percentages of the
	// media length (the x-axis of Fig. 1).
	DelayPercents []float64
	// HorizonMedia is the length of the simulated time horizon in units of
	// the media length.
	HorizonMedia float64
}

// DefaultFig1 returns the sweep used to regenerate Fig. 1.
func DefaultFig1() Fig1Config {
	return Fig1Config{
		DelayPercents: []float64{0.5, 1, 2, 3, 4, 5, 7.5, 10, 12.5, 15, 17.5, 20},
		HorizonMedia:  10,
	}
}

// Fig1 regenerates Fig. 1: the total server bandwidth (in complete media
// streams) of the optimal off-line and the on-line delay-guaranteed
// algorithms as a function of the guaranteed start-up delay.
func Fig1(cfg Fig1Config) Result {
	tab := textplot.NewTable("delay_pct", "L_slots", "n_slots", "offline_streams", "online_streams", "batching_streams")
	var xs, offline, onlineSeries []float64
	for _, pct := range cfg.DelayPercents {
		L := int64(math.Round(100 / pct))
		if L < 1 {
			L = 1
		}
		n := int64(math.Round(cfg.HorizonMedia * float64(L)))
		if n < 1 {
			n = 1
		}
		off := float64(core.FullCost(L, n)) / float64(L)
		onl := online.NormalizedCost(L, n)
		bat := float64(batching.DelayGuaranteedCost(L, n)) / float64(L)
		tab.AddRow(pct, L, n, off, onl, bat)
		xs = append(xs, pct)
		offline = append(offline, off)
		onlineSeries = append(onlineSeries, onl)
	}
	return Result{
		ID:    "fig1",
		Title: "Fig. 1: bandwidth savings vs. guaranteed start-up delay",
		Table: tab,
		Series: []textplot.Series{
			{Name: "offline-optimal", X: xs, Y: offline},
			{Name: "online", X: xs, Y: onlineSeries},
		},
		Notes: fmt.Sprintf("horizon = %.0f media lengths; one stream scheduled per slot; bandwidth in complete media streams", cfg.HorizonMedia),
	}
}

// TableM regenerates the M(n) table of Section 3.1 (closed form, the O(n^2)
// DP cross-check, and the Theorem 8 bounds).
func TableM(maxN int) Result {
	tab := textplot.NewTable("n", "M(n)", "M_dp(n)", "lower_bound", "upper_bound")
	dp := core.MergeCostDP(maxN)
	for n := 1; n <= maxN; n++ {
		tab.AddRow(n, core.MergeCost(int64(n)), dp[n],
			core.MergeCostLowerBound(int64(n)), core.MergeCostUpperBound(int64(n)))
	}
	return Result{
		ID:    "table-m",
		Title: "Section 3.1: optimal merge cost M(n)",
		Table: tab,
		Notes: "closed form (Eq. 6) cross-checked against the O(n^2) dynamic program (Eq. 5)",
	}
}

// TableMAll regenerates the receive-all merge cost table of Section 3.4.
func TableMAll(maxN int) Result {
	tab := textplot.NewTable("n", "Mw(n)", "Mw_dp(n)", "M(n)/Mw(n)")
	dp := core.MergeCostAllDP(maxN)
	for n := 1; n <= maxN; n++ {
		ratio := 1.0
		if dp[n] > 0 {
			ratio = float64(core.MergeCost(int64(n))) / float64(dp[n])
		}
		tab.AddRow(n, core.MergeCostAll(int64(n)), dp[n], ratio)
	}
	return Result{
		ID:    "table-mw",
		Title: "Section 3.4: receive-all merge cost Mw(n)",
		Table: tab,
		Notes: "closed form (Eq. 20) cross-checked against the DP (Eq. 19); the ratio tends to log_phi 2 ~ 1.44 (Theorem 19)",
	}
}

// TableI regenerates Fig. 8: the interval I(n) of arrivals that can be the
// last merge to the root of an optimal tree, for 2 <= n <= maxN.
func TableI(maxN int64) Result {
	tab := textplot.NewTable("n", "I_lo", "I_hi", "size")
	for n := int64(2); n <= maxN; n++ {
		lo, hi := core.LastMergeInterval(n)
		tab.AddRow(n, lo, hi, hi-lo+1)
	}
	return Result{
		ID:    "fig8",
		Title: "Fig. 8: the interval I(n) of optimal last merges",
		Table: tab,
		Notes: "I(n) follows the Theorem 3 characterization; singletons occur exactly at Fibonacci n",
	}
}

// Theorem12Examples regenerates the worked examples of Section 3.2.
func Theorem12Examples() Result {
	tab := textplot.NewTable("L", "n", "s0", "s1", "F(L,n,s0)", "F(L,n,s1)", "F(L,n,s1+1)", "F(L,n)", "optimal_s")
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {1, 10}, {2, 9}} {
		s0 := core.MinStreams(c.L, c.n)
		h := fib.IndexForLength(c.L)
		s1 := c.n / fib.F(h)
		cost := func(s int64) interface{} {
			if s < s0 || s > c.n {
				return "-"
			}
			return core.FullCostWithStreams(c.L, c.n, s)
		}
		tab.AddRow(c.L, c.n, s0, s1, cost(s0), cost(s1), cost(s1+1), core.FullCost(c.L, c.n), core.OptimalStreamCount(c.L, c.n))
	}
	return Result{
		ID:    "thm12",
		Title: "Theorem 12: optimal number of full streams (worked examples)",
		Table: tab,
		Notes: "includes the paper's examples L=15,n=8 (cost 36), L=15,n=14 (cost 64), and L=4,n=16 (cost 38)",
	}
}

// Theorem14Config parameterizes the batching-vs-merging comparison.
type Theorem14Config struct {
	// Ls are the media lengths (in slots) to sweep.
	Ls []int64
	// HorizonFactor sets n = HorizonFactor * L.
	HorizonFactor int64
}

// DefaultTheorem14 returns the default sweep.
func DefaultTheorem14() Theorem14Config {
	return Theorem14Config{Ls: []int64{4, 8, 16, 32, 64, 128, 256, 512, 1024}, HorizonFactor: 20}
}

// Theorem14 measures the Theta(L/log L) advantage of stream merging over
// pure batching in the delay-guaranteed setting.
func Theorem14(cfg Theorem14Config) Result {
	tab := textplot.NewTable("L", "n", "batching", "merging", "advantage", "L/log_phi(L)")
	var xs, adv, ref []float64
	for _, L := range cfg.Ls {
		n := cfg.HorizonFactor * L
		b := batching.DelayGuaranteedCost(L, n)
		m := core.FullCost(L, n)
		a := float64(b) / float64(m)
		tab.AddRow(L, n, b, m, a, float64(L)/fib.LogPhi(float64(L)))
		xs = append(xs, float64(L))
		adv = append(adv, a)
		ref = append(ref, float64(L)/fib.LogPhi(float64(L)))
	}
	return Result{
		ID:    "thm14",
		Title: "Theorem 14: batching vs. batching+merging advantage",
		Table: tab,
		Series: []textplot.Series{
			{Name: "measured advantage", X: xs, Y: adv},
			{Name: "L/log_phi(L)", X: xs, Y: ref},
		},
		Notes: "the measured advantage nL / F(L,n) tracks Theta(L / log L)",
	}
}

// ReceiveAllRatio regenerates the Theorems 19/20 comparison between the
// receive-two and receive-all models.
func ReceiveAllRatio(ns []int64, L int64) Result {
	tab := textplot.NewTable("n", "M(n)/Mw(n)", "F(L,n)/Fw(L,n)", "log_phi(2)")
	for _, n := range ns {
		tab.AddRow(n, core.ReceiveTwoAllRatio(n), core.FullCostTwoAllRatio(L, n), core.LogPhi2)
	}
	return Result{
		ID:    "thm19",
		Title: "Theorems 19-20: receive-two vs. receive-all",
		Table: tab,
		Notes: fmt.Sprintf("full-cost ratio computed for L = %d; both ratios tend to log_phi 2 ~ %.4f", L, core.LogPhi2),
	}
}

// Fig9Config parameterizes the on-line vs. off-line ratio plot.
type Fig9Config struct {
	// Ls are the media lengths (in slots of the start-up delay) to plot.
	Ls []int64
	// Horizons are the time-horizon sizes n (number of slots).
	Horizons []int64
}

// DefaultFig9 returns the default sweep.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Ls:       []int64{20, 50, 100, 200},
		Horizons: []int64{100, 200, 500, 1000, 2000, 5000, 10000, 20000, 50000, 100000},
	}
}

// Fig9 regenerates Fig. 9: the ratio of the on-line delay-guaranteed cost to
// the optimal off-line cost as the time horizon grows.
func Fig9(cfg Fig9Config) Result {
	headers := []string{"n"}
	for _, L := range cfg.Ls {
		headers = append(headers, fmt.Sprintf("ratio_L=%d", L))
	}
	tab := textplot.NewTable(headers...)
	series := make([]textplot.Series, len(cfg.Ls))
	for i, L := range cfg.Ls {
		series[i].Name = fmt.Sprintf("L=%d", L)
	}
	servers := make([]*online.Server, len(cfg.Ls))
	for i, L := range cfg.Ls {
		servers[i] = online.NewServer(L)
	}
	for _, n := range cfg.Horizons {
		row := []interface{}{n}
		for i, L := range cfg.Ls {
			ratio := float64(servers[i].CostClosed(n)) / float64(core.FullCost(L, n))
			row = append(row, ratio)
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, ratio)
		}
		tab.AddRow(row...)
	}
	return Result{
		ID:     "fig9",
		Title:  "Fig. 9: on-line / optimal off-line bandwidth ratio vs. time horizon",
		Table:  tab,
		Series: series,
		Notes:  "Theorem 22 bounds the ratio by 1 + 2L/n; it tends to 1 as n grows",
	}
}

// ComparisonConfig parameterizes the Figs. 11-12 comparison of the on-line
// delay-guaranteed algorithm with the dyadic baselines.
type ComparisonConfig struct {
	// DelayPct is the guaranteed start-up delay as a percentage of the media
	// length (the paper uses 1%).
	DelayPct float64
	// HorizonMedia is the simulated time horizon in media lengths (100).
	HorizonMedia float64
	// LambdaPcts are the mean inter-arrival times as percentages of the
	// media length (the x-axis, from near 0 to 5%).
	LambdaPcts []float64
	// Replications is the number of random replications per point (Poisson
	// arrivals only).
	Replications int
	// Seed seeds the Poisson generator.
	Seed int64
	// Workers is the size of the worker pool the (lambda, replication) grid
	// is spread across: 0 means GOMAXPROCS, 1 means serial.  Each
	// replication derives its seed from (lambda, replication index) alone,
	// never from scheduling order, so the resulting series are bit-identical
	// to a serial run for every worker count.
	Workers int
}

// DefaultComparison returns the configuration matching Section 4.2.
func DefaultComparison() ComparisonConfig {
	return ComparisonConfig{
		DelayPct:     1.0,
		HorizonMedia: 100,
		LambdaPcts:   []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0},
		Replications: 3,
		Seed:         1,
	}
}

// Fig11 regenerates Fig. 11: constant-rate arrivals, delay fixed at
// cfg.DelayPct of the media length, comparing immediate-service dyadic,
// batched dyadic, and the delay-guaranteed on-line algorithm.
func Fig11(ctx context.Context, cfg ComparisonConfig) (Result, error) {
	return comparisonFigure(ctx, cfg, false)
}

// Fig12 regenerates Fig. 12: the same comparison with Poisson arrivals.
func Fig12(ctx context.Context, cfg ComparisonConfig) (Result, error) {
	return comparisonFigure(ctx, cfg, true)
}

// comparisonFigure obtains its per-trace algorithm costs exclusively
// through the public mod facade — the same planners any downstream user
// gets from mod.New — so the published figures are, by construction, what
// the public API produces.  The facade planners are thin adapters over the
// policy layer with no arithmetic of their own, which keeps the sweep
// bit-identical to the historical direct-call implementation.
func comparisonFigure(ctx context.Context, cfg ComparisonConfig, poisson bool) (Result, error) {
	delay := cfg.DelayPct / 100.0
	horizonSlots := int64(math.Round(cfg.HorizonMedia / delay))
	slotsPerMedia := int64(math.Round(1 / delay))
	// The delay-guaranteed algorithm starts a stream every slot regardless
	// of arrivals, so its bandwidth is independent of lambda.
	dgStreams := online.NormalizedCost(slotsPerMedia, horizonSlots)

	arrivalKind := "constant-rate"
	if poisson {
		arrivalKind = "Poisson"
	}
	planOpts := []mod.Option{mod.WithMediaLength(1), mod.WithDelay(delay), mod.WithPoisson(poisson)}
	immediate := mod.MustNew("dyadic", planOpts...)
	batched := mod.MustNew("dyadic-batched", planOpts...)

	reps := 1
	if poisson {
		reps = cfg.Replications
		if reps < 1 {
			reps = 1
		}
	}
	// Fan the (lambda, replication) grid across a worker pool.  Every cell
	// is seeded by its grid coordinates, so the per-cell results — and the
	// in-order reduction below — are bit-identical to a serial sweep.
	type cell struct {
		imm, bat float64
		err      error
	}
	grid := make([][]cell, len(cfg.LambdaPcts))
	for li := range grid {
		grid[li] = make([]cell, reps)
	}
	runCell := func(li, r int) {
		lp := cfg.LambdaPcts[li]
		lambda := lp / 100.0
		var tr []float64
		if poisson {
			tr = mod.Poisson(lambda, cfg.HorizonMedia, cfg.Seed+int64(r)*101+int64(lp*1000))
		} else {
			tr = mod.Constant(lambda, cfg.HorizonMedia)
		}
		c := &grid[li][r]
		inst := mod.Instance{Arrivals: tr, Horizon: cfg.HorizonMedia}
		immPlan, err := immediate.Plan(ctx, inst)
		if err != nil {
			c.err = err
			return
		}
		batPlan, err := batched.Plan(ctx, inst)
		if err != nil {
			c.err = err
			return
		}
		c.imm, c.bat = immPlan.Cost, batPlan.Cost
	}
	forEachGridCell(ctx, len(cfg.LambdaPcts), reps, cfg.Workers, runCell)
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("experiments: %s sweep canceled: %w", arrivalKind, err)
	}

	tab := textplot.NewTable("lambda_pct", "immediate_dyadic", "batched_dyadic", "delay_guaranteed")
	var xs, immS, batS, dgS []float64
	for li, lp := range cfg.LambdaPcts {
		imms := make([]float64, 0, reps)
		bats := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			if err := grid[li][r].err; err != nil {
				return Result{}, err
			}
			imms = append(imms, grid[li][r].imm)
			bats = append(bats, grid[li][r].bat)
		}
		imm := stats.Mean(imms)
		bat := stats.Mean(bats)
		tab.AddRow(lp, imm, bat, dgStreams)
		xs = append(xs, lp)
		immS = append(immS, imm)
		batS = append(batS, bat)
		dgS = append(dgS, dgStreams)
	}
	id, figno := "fig11", "Fig. 11"
	if poisson {
		id, figno = "fig12", "Fig. 12"
	}
	return Result{
		ID:    id,
		Title: fmt.Sprintf("%s: immediate dyadic vs. batched dyadic vs. delay-guaranteed (%s arrivals)", figno, arrivalKind),
		Table: tab,
		Series: []textplot.Series{
			{Name: "immediate dyadic", X: xs, Y: immS},
			{Name: "batched dyadic", X: xs, Y: batS},
			{Name: "delay guaranteed", X: xs, Y: dgS},
		},
		Notes: fmt.Sprintf("delay = %.2f%% of media length, horizon = %.0f media lengths, %s arrivals; bandwidth in complete media streams",
			cfg.DelayPct, cfg.HorizonMedia, arrivalKind),
	}, nil
}

// BufferTradeoff sweeps the client buffer bound B of Section 3.3 for a fixed
// media length and horizon, reporting how the optimal full cost rises as the
// buffer shrinks below L/2 (there is no figure for this in the paper, but it
// is the natural ablation of Theorem 16).
func BufferTradeoff(L, n int64) Result {
	tab := textplot.NewTable("B_slots", "B_over_L", "streams", "full_cost", "vs_unbounded")
	unbounded := core.FullCost(L, n)
	var xs, ys []float64
	for B := int64(1); B <= core.MaxUsefulBuffer(L); B++ {
		c := core.FullCostBuffered(L, B, n)
		s := core.OptimalStreamCountBuffered(L, B, n)
		tab.AddRow(B, float64(B)/float64(L), s, c, float64(c)/float64(unbounded))
		xs = append(xs, float64(B))
		ys = append(ys, float64(c)/float64(unbounded))
	}
	return Result{
		ID:    "buffer-tradeoff",
		Title: fmt.Sprintf("Section 3.3: full cost vs. client buffer bound (L=%d, n=%d)", L, n),
		Table: tab,
		Series: []textplot.Series{
			{Name: "cost vs unbounded", X: xs, Y: ys},
		},
		Notes: "buffers of L/2 slots are as good as unbounded (Lemma 15); smaller buffers force more full streams",
	}
}

// OnlineTreeSizeAblation compares the on-line algorithm's static tree size
// F_h (the paper's choice) against alternative static tree sizes, measuring
// the resulting total bandwidth for a fixed L and horizon.  This is the
// ablation called out in DESIGN.md for the Section 4.1 design choice.
func OnlineTreeSizeAblation(L, n int64) Result {
	h := fib.IndexForLength(L)
	candidates := []struct {
		name string
		size int64
	}{
		{"F_{h-1}", fib.F(h - 1)},
		{"F_h (paper)", fib.F(h)},
		{"F_{h+1}", fib.F(h + 1)},
		{"L/2", L / 2},
		{"L", L},
	}
	tab := textplot.NewTable("tree_size_rule", "tree_size", "total_cost", "normalized", "vs_optimal")
	opt := core.FullCost(L, n)
	for _, c := range candidates {
		size := c.size
		if size < 1 {
			size = 1
		}
		if size > L {
			size = L
		}
		cost := staticTreeCost(L, n, size)
		tab.AddRow(c.name, size, cost, float64(cost)/float64(L), float64(cost)/float64(opt))
	}
	return Result{
		ID:    "online-treesize",
		Title: fmt.Sprintf("Ablation: static tree size for the on-line algorithm (L=%d, n=%d)", L, n),
		Table: tab,
		Notes: "the paper's F_h choice should (near-)minimize cost among static sizes",
	}
}

// staticTreeCost is the total bandwidth of the on-line strategy that starts
// a full stream every `size` slots and uses the optimal merge tree for each
// group (the generalization of the on-line algorithm to arbitrary static
// tree sizes).
func staticTreeCost(L, n, size int64) int64 {
	var cost int64
	for start := int64(0); start < n; start += size {
		m := size
		if n-start < m {
			m = n - start
		}
		cost += L + core.MergeCost(m)
	}
	return cost
}

// All runs every experiment with its default configuration, using all CPUs
// for the sweeps that support worker pools.
func All() ([]Result, error) {
	//modlint:ignore ctxflow All is the ctx-free compatibility wrapper; callers wanting cancellation use AllWithWorkers
	return AllWithWorkers(context.Background(), 0)
}

// AllWithWorkers runs every experiment, spreading the replication grids of
// the Figs. 11-12 sweeps, the dyadic-vs-optimal extension, and the workload
// simulation across `workers` goroutines (0 means GOMAXPROCS, 1 means
// serial).  Per-replication seeds depend only on grid coordinates, so the
// output is bit-identical for every worker count.  Cancelling ctx aborts
// the sweep in flight with an error wrapping ctx.Err().
func AllWithWorkers(ctx context.Context, workers int) ([]Result, error) {
	out := []Result{
		Fig1(DefaultFig1()),
		TableM(16),
		TableMAll(16),
		TableI(55),
		Theorem12Examples(),
		Theorem14(DefaultTheorem14()),
		ReceiveAllRatio([]int64{16, 256, 4096, 65536, 1 << 20}, 2000),
		Fig9(DefaultFig9()),
		OnlineTreeSizeAblation(100, 10000),
		BufferTradeoff(60, 600),
	}
	cmp := DefaultComparison()
	cmp.Workers = workers
	f11, err := Fig11(ctx, cmp)
	if err != nil {
		return nil, err
	}
	f12, err := Fig12(ctx, cmp)
	if err != nil {
		return nil, err
	}
	out = append(out, f11, f12)
	ext1, err := HybridServer(DefaultHybrid())
	if err != nil {
		return nil, err
	}
	ext2, err := MultiObjectPeak(DefaultMultiObject())
	if err != nil {
		return nil, err
	}
	dvo := DefaultDyadicVsOptimal()
	dvo.Workers = workers
	ext3, err := DyadicVsOptimal(ctx, dvo)
	if err != nil {
		return nil, err
	}
	wl := DefaultWorkloadSim()
	wl.Workers = workers
	ext4, err := MultiObjectSim(ctx, wl)
	if err != nil {
		return nil, err
	}
	ext5, err := LiveVsBatch(ctx, DefaultLiveVsBatch())
	if err != nil {
		return nil, err
	}
	ext6, err := WarmReplan(ctx, DefaultLiveVsBatch())
	if err != nil {
		return nil, err
	}
	ext7, err := Backpressure(ctx, DefaultBackpressure())
	if err != nil {
		return nil, err
	}
	ext8, err := CrashRecovery(ctx, DefaultCrashRecovery())
	if err != nil {
		return nil, err
	}
	out = append(out, ext1, ext2, ext3, ext4, ext5, ext6, ext7, ext8)
	return out, nil
}
