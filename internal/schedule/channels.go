package schedule

import (
	"fmt"
	"sort"
)

// Channel is one physical multicast channel of the server: a sequence of
// non-overlapping stream transmissions.  Mapping the streams of a schedule
// onto channels makes the "channels" component of the Media-on-Demand system
// of Section 2 concrete: the number of channels needed is exactly the peak
// bandwidth of the schedule, because stream transmissions are intervals on
// the time line.
type Channel struct {
	// ID is the channel index, starting at 0.
	ID int
	// Streams are the transmissions carried by the channel, ordered by
	// start slot and pairwise non-overlapping.
	Streams []StreamSchedule
}

// Busy returns the total number of slots during which the channel transmits.
func (c Channel) Busy() int64 {
	var total int64
	for _, s := range c.Streams {
		total += s.Length
	}
	return total
}

// AssignChannels maps every stream of the schedule onto physical channels
// using the greedy first-fit rule on streams sorted by start slot.  Because
// stream transmissions are intervals, the greedy assignment uses exactly
// PeakBandwidth() channels, which is optimal.
func (fs *ForestSchedule) AssignChannels() []Channel {
	streams := make([]StreamSchedule, 0, len(fs.Streams))
	for _, s := range fs.Streams {
		if s.Length > 0 {
			streams = append(streams, s)
		}
	}
	sort.Slice(streams, func(i, j int) bool {
		if streams[i].Start != streams[j].Start {
			return streams[i].Start < streams[j].Start
		}
		return streams[i].Length > streams[j].Length
	})
	var channels []Channel
	ends := make([]int64, 0) // ends[i] = slot after the last transmission on channel i
	for _, s := range streams {
		placed := false
		for i := range channels {
			if ends[i] <= s.Start {
				channels[i].Streams = append(channels[i].Streams, s)
				ends[i] = s.End()
				placed = true
				break
			}
		}
		if !placed {
			channels = append(channels, Channel{ID: len(channels), Streams: []StreamSchedule{s}})
			ends = append(ends, s.End())
		}
	}
	return channels
}

// ValidateChannels checks a channel assignment: every stream of the schedule
// appears on exactly one channel, transmissions on a channel never overlap,
// and the number of channels equals the schedule's peak bandwidth.
func (fs *ForestSchedule) ValidateChannels(channels []Channel) error {
	seen := make(map[int64]bool)
	for _, c := range channels {
		for i, s := range c.Streams {
			if seen[s.Start] {
				return fmt.Errorf("schedule: stream starting at %d assigned twice", s.Start)
			}
			seen[s.Start] = true
			if i > 0 {
				prev := c.Streams[i-1]
				if s.Start < prev.End() {
					return fmt.Errorf("schedule: channel %d: stream at %d overlaps stream at %d", c.ID, s.Start, prev.Start)
				}
			}
			orig, ok := fs.Streams[s.Start]
			if !ok || orig.Length != s.Length {
				return fmt.Errorf("schedule: channel %d carries an unknown or altered stream at %d", c.ID, s.Start)
			}
		}
	}
	active := 0
	for _, s := range fs.Streams {
		if s.Length > 0 {
			active++
		}
	}
	if len(seen) != active {
		return fmt.Errorf("schedule: %d streams assigned, schedule has %d", len(seen), active)
	}
	if got, want := len(channels), fs.PeakBandwidth(); got != want {
		return fmt.Errorf("schedule: %d channels used, peak bandwidth is %d", got, want)
	}
	return nil
}
