package schedule

import (
	"fmt"
	"sort"

	"repro/internal/mergetree"
)

// BuildProgramAll constructs the receiving program of a client in the
// receive-all model (Section 3.4): the client arriving at the last element
// of path listens to every stream on its root path simultaneously from the
// moment it arrives, taking parts 1 + (x_k − x_i), ..., x_k − x_{i−1} from
// the stream at x_i (and the initial x_k − x_{k−1} parts from its own
// stream, and the final parts from the root) — the part assignment from the
// proof of Lemma 17.  Part numbers are clamped to L.
func BuildProgramAll(path []int64, L int64) (*Program, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("schedule: empty path")
	}
	for i := 1; i < len(path); i++ {
		if path[i] <= path[i-1] {
			return nil, fmt.Errorf("schedule: path is not strictly increasing at %d", i)
		}
	}
	if L < 1 {
		return nil, fmt.Errorf("schedule: L must be positive, got %d", L)
	}
	k := len(path) - 1
	xk := path[k]
	x0 := path[0]
	if xk-x0 > L-1 {
		return nil, fmt.Errorf("schedule: client %d is %d slots after root %d, exceeding L-1 = %d",
			xk, xk-x0, x0, L-1)
	}
	p := &Program{Client: xk, Path: append([]int64(nil), path...), L: L}
	st := Stage{Index: 0, From: xk, To: x0 + L}
	clamp := func(v int64) int64 {
		if v > L {
			return L
		}
		return v
	}
	for i := k; i >= 0; i-- {
		xi := path[i]
		var first, last int64
		if i == k {
			first = 1
		} else {
			first = 1 + (xk - xi)
		}
		if i == 0 {
			last = L
		} else {
			last = clamp(xk - path[i-1])
		}
		if last < first {
			continue
		}
		// Part `first` from stream xi is broadcast during slot xi+first-1,
		// which equals xk for every non-root stream and for the root when
		// the client needs its first part immediately.
		st.Receptions = append(st.Receptions, Reception{
			Stream:    xi,
			StartSlot: xi + first - 1,
			FirstPart: first,
			LastPart:  last,
		})
	}
	p.Stages = append(p.Stages, st)
	return p, nil
}

// BuildReceiveAll constructs the broadcast schedule and all receiving
// programs for a merge forest in the receive-all model: stream lengths
// follow Lemma 17 (w(x) = z(x) − p(x)) and every client listens to all the
// streams on its root path at once.
func BuildReceiveAll(f *mergetree.Forest) (*ForestSchedule, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	fs := &ForestSchedule{
		L:        f.L,
		Streams:  make(map[int64]StreamSchedule),
		Programs: make(map[int64]*Program),
	}
	for _, nl := range f.LengthsAll() {
		length := nl.Length
		if length > f.L {
			length = f.L
		}
		fs.Streams[nl.Arrival] = StreamSchedule{Start: nl.Arrival, Length: length, Root: nl.Root}
	}
	for _, t := range f.Trees {
		tree := t
		var walkErr error
		tree.Walk(func(node, _ *mergetree.Tree) {
			if walkErr != nil {
				return
			}
			prog, err := BuildProgramAll(tree.PathTo(node.Arrival), f.L)
			if err != nil {
				walkErr = fmt.Errorf("client %d: %w", node.Arrival, err)
				return
			}
			fs.Programs[node.Arrival] = prog
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return fs, nil
}

// VerifyReceiveAll checks a receive-all schedule: every client receives all
// L parts exactly once, each part aligned with its stream's broadcast and no
// later than its playback slot, the number of simultaneously received
// streams never exceeds the client's path length, and buffers never exceed
// L parts.  It returns a report and the first violation found.
func (fs *ForestSchedule) VerifyReceiveAll() (VerifyReport, error) {
	rep := VerifyReport{}
	clients := make([]int64, 0, len(fs.Programs))
	for c := range fs.Programs {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients {
		prog := fs.Programs[c]
		rep.Clients++
		parts := prog.Parts()
		if int64(len(parts)) != fs.L {
			return rep, fmt.Errorf("client %d receives %d distinct parts, want %d", c, len(parts), fs.L)
		}
		if got := prog.TotalSlotsReceiving(); got != fs.L {
			return rep, fmt.Errorf("client %d spends %d reception slots, want exactly %d", c, got, fs.L)
		}
		for idx, ps := range parts {
			if ps.Part != int64(idx)+1 {
				return rep, fmt.Errorf("client %d is missing part %d", c, idx+1)
			}
			if ps.Slot > c+ps.Part-1 {
				return rep, fmt.Errorf("client %d receives part %d during slot %d, after its playback slot %d",
					c, ps.Part, ps.Slot, c+ps.Part-1)
			}
			s, ok := fs.Streams[ps.Stream]
			if !ok {
				return rep, fmt.Errorf("client %d listens to unknown stream %d", c, ps.Stream)
			}
			if got := s.PartAt(ps.Slot); got != ps.Part {
				return rep, fmt.Errorf("client %d expects part %d from stream %d during slot %d, but it broadcasts part %d",
					c, ps.Part, ps.Stream, ps.Slot, got)
			}
		}
		if mc := prog.MaxConcurrentStreams(); mc > len(prog.Path) {
			return rep, fmt.Errorf("client %d listens to %d streams at once with a path of %d", c, mc, len(prog.Path))
		} else if mc > rep.MaxConcurrent {
			rep.MaxConcurrent = mc
		}
		if mb := prog.MaxBuffer(); mb > fs.L {
			return rep, fmt.Errorf("client %d buffers %d parts, exceeding the media length", c, mb)
		} else if mb > rep.MaxBuffer {
			rep.MaxBuffer = mb
		}
	}
	return rep, nil
}
