package schedule_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/schedule"
)

func ExampleBuildProgram() {
	// Client H of the paper's Section 2 example: it arrives at slot 7 and
	// its receiving program is the path 0 -> 5 -> 7 in the merge tree of
	// Fig. 4, with L = 15.
	p, _ := schedule.BuildProgram([]int64{0, 5, 7}, 15)
	for _, st := range p.Stages {
		fmt.Printf("stage %d, slots [%d,%d):", st.Index, st.From, st.To)
		for _, r := range st.Receptions {
			fmt.Printf(" parts %d-%d from stream %d;", r.FirstPart, r.LastPart, r.Stream)
		}
		fmt.Println()
	}
	fmt.Println("max buffer:", p.MaxBuffer())
	// Output:
	// stage 0, slots [7,9): parts 1-2 from stream 7; parts 3-4 from stream 5;
	// stage 1, slots [9,14): parts 5-9 from stream 5; parts 10-14 from stream 0;
	// stage 2, slots [14,15): parts 15-15 from stream 0;
	// max buffer: 7
}

func ExampleBuild() {
	forest := core.OptimalForest(15, 8)
	fs, _ := schedule.Build(forest)
	rep, err := fs.Verify()
	fmt.Println("verified clients:", rep.Clients, "error:", err)
	fmt.Println("total bandwidth:", fs.TotalBandwidth(), "peak:", fs.PeakBandwidth())
	fmt.Println("channels needed:", len(fs.AssignChannels()))
	// Output:
	// verified clients: 8 error: <nil>
	// total bandwidth: 36 peak: 4
	// channels needed: 4
}
