// Package schedule turns merge forests into concrete broadcast schedules and
// client receiving programs, following the stream-merging rules of Section 2
// of the paper.
//
// A stream scheduled at slot x broadcasts part j of the media during slot
// x+j-1 (one part per slot), for j = 1, ..., l(x).  A client arriving at
// slot x_k with receiving program x_0 < x_1 < ... < x_k (the path from the
// root of its merge tree) listens to at most two streams at a time:
//
//	stage i (0 <= i <= k-1): from slot 2x_k - x_{k-i} to slot
//	  2x_k - x_{k-i-1}, it receives parts
//	  2x_k - 2x_{k-i} + 1, ..., 2x_k - x_{k-i} - x_{k-i-1} from stream
//	  x_{k-i} and parts 2x_k - x_{k-i} - x_{k-i-1} + 1, ..., 2x_k - 2x_{k-i-1}
//	  from stream x_{k-i-1};
//	stage k: from slot 2x_k - x_0 to slot x_0 + L it receives parts
//	  2(x_k - x_0) + 1, ..., L from the root stream x_0.
//
// Part numbers are clamped to L since streams only carry a prefix of the
// media.  The package also provides verification (every client receives all
// L parts in time for uninterrupted playback, never listens to more than two
// streams, and never exceeds the Lemma 15 buffer bound) and ASCII rendering
// of the concrete schedule diagram in the style of Fig. 3.
package schedule

import (
	"fmt"
	"sort"
)

// Reception describes a contiguous block of parts a client receives from a
// single stream: part FirstPart is received during slot StartSlot, part
// FirstPart+1 during StartSlot+1, and so on through LastPart.
type Reception struct {
	// Stream is the arrival time identifying the stream listened to.
	Stream int64
	// StartSlot is the slot during which FirstPart is received.
	StartSlot int64
	// FirstPart and LastPart delimit the received parts (1-based, inclusive).
	FirstPart, LastPart int64
}

// Slots returns the number of slots the reception spans.
func (r Reception) Slots() int64 {
	if r.LastPart < r.FirstPart {
		return 0
	}
	return r.LastPart - r.FirstPart + 1
}

// EndSlot returns the slot after the last reception slot.
func (r Reception) EndSlot() int64 {
	return r.StartSlot + r.Slots()
}

// Stage is one stage of a client's receiving program: a time window during
// which the client listens to one stream (the final stage) or two streams
// simultaneously (all earlier stages).
type Stage struct {
	// Index is the stage number i in 0..k.
	Index int
	// From and To delimit the stage's slots: [From, To).
	From, To int64
	// Receptions holds one entry per stream listened to during the stage
	// (one or two entries).
	Receptions []Reception
}

// Program is the complete receiving program of one client.
type Program struct {
	// Client is the arrival slot of the client (and of the stream started
	// for it).
	Client int64
	// Path is the root-to-client path x_0 < ... < x_k in the merge tree.
	Path []int64
	// L is the full stream length in slots.
	L int64
	// Stages are the reception stages in chronological order.
	Stages []Stage
}

// BuildProgram constructs the receiving program for the client arriving at
// the last element of path, for full stream length L.  The path must be
// strictly increasing and non-empty; otherwise an error is returned.
func BuildProgram(path []int64, L int64) (*Program, error) {
	if len(path) == 0 {
		return nil, fmt.Errorf("schedule: empty path")
	}
	for i := 1; i < len(path); i++ {
		if path[i] <= path[i-1] {
			return nil, fmt.Errorf("schedule: path is not strictly increasing at %d", i)
		}
	}
	if L < 1 {
		return nil, fmt.Errorf("schedule: L must be positive, got %d", L)
	}
	k := len(path) - 1
	xk := path[k]
	x0 := path[0]
	if xk-x0 > L-1 {
		return nil, fmt.Errorf("schedule: client %d is %d slots after root %d, exceeding L-1 = %d",
			xk, xk-x0, x0, L-1)
	}
	p := &Program{Client: xk, Path: append([]int64(nil), path...), L: L}

	clamp := func(v int64) int64 {
		if v > L {
			return L
		}
		return v
	}

	// Stages 0..k-1: two simultaneous receptions.
	for i := 0; i <= k-1; i++ {
		upper := path[k-i]   // x_{k-i}: the stream the client is currently "on"
		lower := path[k-i-1] // x_{k-i-1}: the stream it is merging toward
		from := 2*xk - upper
		to := 2*xk - lower
		st := Stage{Index: i, From: from, To: to}
		// Parts from the later stream upper.
		upFirst := 2*xk - 2*upper + 1
		upLast := clamp(2*xk - upper - lower)
		if upLast >= upFirst {
			st.Receptions = append(st.Receptions, Reception{
				Stream: upper, StartSlot: from, FirstPart: upFirst, LastPart: upLast,
			})
		}
		// Parts from the earlier stream lower.
		loFirst := 2*xk - upper - lower + 1
		loLast := clamp(2*xk - 2*lower)
		if loLast >= loFirst && loFirst <= L {
			st.Receptions = append(st.Receptions, Reception{
				Stream: lower, StartSlot: from, FirstPart: loFirst, LastPart: loLast,
			})
		}
		p.Stages = append(p.Stages, st)
	}

	// Stage k: single reception from the root for the remaining parts.
	first := 2*(xk-x0) + 1
	if first <= L {
		st := Stage{Index: k, From: 2*xk - x0, To: x0 + L}
		st.Receptions = append(st.Receptions, Reception{
			Stream: x0, StartSlot: 2*xk - x0, FirstPart: first, LastPart: L,
		})
		p.Stages = append(p.Stages, st)
	}
	return p, nil
}

// PartSource identifies when and from which stream a part is received.
type PartSource struct {
	// Part is the 1-based media part number.
	Part int64
	// Stream is the stream the part is received from.
	Stream int64
	// Slot is the slot during which the part is received.
	Slot int64
}

// Parts returns, for every part 1..L, the slot and stream from which the
// client receives it.  If a part is received more than once the earliest
// reception is reported; missing parts are omitted (Verify flags them).
func (p *Program) Parts() []PartSource {
	seen := make(map[int64]PartSource)
	for _, st := range p.Stages {
		for _, r := range st.Receptions {
			for j := r.FirstPart; j <= r.LastPart; j++ {
				slot := r.StartSlot + (j - r.FirstPart)
				if prev, ok := seen[j]; !ok || slot < prev.Slot {
					seen[j] = PartSource{Part: j, Stream: r.Stream, Slot: slot}
				}
			}
		}
	}
	out := make([]PartSource, 0, len(seen))
	for _, ps := range seen {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Part < out[j].Part })
	return out
}

// MaxConcurrentStreams returns the largest number of streams the client
// listens to during any single slot.
func (p *Program) MaxConcurrentStreams() int {
	counts := make(map[int64]int)
	for _, st := range p.Stages {
		for _, r := range st.Receptions {
			for s := r.StartSlot; s < r.EndSlot(); s++ {
				counts[s]++
			}
		}
	}
	mx := 0
	for _, c := range counts {
		if c > mx {
			mx = c
		}
	}
	return mx
}

// BufferOccupancy returns the client's buffer occupancy (number of received
// but not yet played parts) at the end of every slot from the client's
// arrival until it has played the whole stream.  Slot t (relative index
// t - Client) plays part t - Client + 1.
func (p *Program) BufferOccupancy() []int64 {
	parts := p.Parts()
	recvBySlot := make(map[int64]int64)
	var lastSlot int64 = p.Client
	for _, ps := range parts {
		recvBySlot[ps.Slot]++
		if ps.Slot > lastSlot {
			lastSlot = ps.Slot
		}
	}
	playEnd := p.Client + p.L // playback occupies slots Client .. Client+L-1
	if playEnd-1 > lastSlot {
		lastSlot = playEnd - 1
	}
	occ := make([]int64, 0, lastSlot-p.Client+1)
	var buffered int64
	for t := p.Client; t <= lastSlot; t++ {
		buffered += recvBySlot[t]
		if t < playEnd {
			// One part is consumed by the player during every playback slot.
			buffered--
		}
		occ = append(occ, buffered)
	}
	return occ
}

// MaxBuffer returns the maximum buffer occupancy over the client's lifetime.
func (p *Program) MaxBuffer() int64 {
	var mx int64
	for _, b := range p.BufferOccupancy() {
		if b > mx {
			mx = b
		}
	}
	return mx
}

// TotalSlotsReceiving returns the total number of (stream, slot) pairs the
// client spends receiving data; with two simultaneous streams a slot counts
// twice.
func (p *Program) TotalSlotsReceiving() int64 {
	var total int64
	for _, st := range p.Stages {
		for _, r := range st.Receptions {
			total += r.Slots()
		}
	}
	return total
}
