package schedule

import (
	"testing"
)

// FuzzBuildProgram feeds arbitrary paths and stream lengths to BuildProgram
// and checks the receiving-program invariants whenever construction
// succeeds: the parts 1..L are covered exactly once, each part is received
// in the slot its stream broadcasts it, never after its playback slot, and
// never from more than two streams at a time.
func FuzzBuildProgram(f *testing.F) {
	f.Add(int64(15), uint8(3), uint8(2), uint8(1), uint8(0))
	f.Add(int64(8), uint8(1), uint8(0), uint8(0), uint8(0))
	f.Add(int64(30), uint8(5), uint8(9), uint8(3), uint8(7))
	f.Fuzz(func(t *testing.T, l int64, g1, g2, g3, g4 uint8) {
		L := l%200 + 1
		// Build a strictly increasing path from the gap values, capped so it
		// stays within L-1 of the root.
		path := []int64{0}
		for _, g := range []uint8{g1, g2, g3, g4} {
			if g == 0 {
				continue
			}
			next := path[len(path)-1] + int64(g%32)
			if next == path[len(path)-1] {
				next++
			}
			path = append(path, next)
		}
		p, err := BuildProgram(path, L)
		if err != nil {
			return
		}
		parts := p.Parts()
		if int64(len(parts)) != L {
			t.Fatalf("L=%d path=%v: received %d distinct parts", L, path, len(parts))
		}
		if p.TotalSlotsReceiving() != L {
			t.Fatalf("L=%d path=%v: %d reception slots", L, path, p.TotalSlotsReceiving())
		}
		client := path[len(path)-1]
		for i, ps := range parts {
			if ps.Part != int64(i)+1 {
				t.Fatalf("missing part %d", i+1)
			}
			if ps.Slot != ps.Stream+ps.Part-1 {
				t.Fatalf("part %d misaligned with its stream's broadcast", ps.Part)
			}
			if ps.Slot > client+ps.Part-1 {
				t.Fatalf("part %d received after its playback slot", ps.Part)
			}
		}
		if p.MaxConcurrentStreams() > 2 {
			t.Fatalf("receive-two violated: %d concurrent streams", p.MaxConcurrentStreams())
		}
		if p.MaxBuffer() > L/2 {
			t.Fatalf("buffer %d exceeds L/2", p.MaxBuffer())
		}
		for _, b := range p.BufferOccupancy() {
			if b < 0 {
				t.Fatalf("buffer underflow")
			}
		}
	})
}
