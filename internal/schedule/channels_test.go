package schedule

import (
	"testing"

	"repro/internal/core"
	"repro/internal/online"
)

func TestAssignChannelsFig3(t *testing.T) {
	_, fs := fig3Schedule(t)
	channels := fs.AssignChannels()
	if err := fs.ValidateChannels(channels); err != nil {
		t.Fatalf("ValidateChannels: %v", err)
	}
	if len(channels) != 4 {
		t.Errorf("Fig. 3 schedule needs %d channels, want 4 (its peak bandwidth)", len(channels))
	}
	// Channel busy time across all channels equals the total bandwidth.
	var busy int64
	for _, c := range channels {
		busy += c.Busy()
	}
	if busy != fs.TotalBandwidth() {
		t.Errorf("channel busy time %d != total bandwidth %d", busy, fs.TotalBandwidth())
	}
}

func TestAssignChannelsOptimalAndOnlineForests(t *testing.T) {
	cases := []*ForestSchedule{}
	for _, c := range []struct{ L, n int64 }{{15, 14}, {30, 200}, {100, 350}} {
		fs, err := Build(core.OptimalForest(c.L, c.n))
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, fs)
	}
	fsOnline, err := Build(online.NewServer(50).Forest(300))
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, fsOnline)
	fsAll, err := BuildReceiveAll(core.OptimalForestAll(30, 120))
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, fsAll)
	for i, fs := range cases {
		channels := fs.AssignChannels()
		if err := fs.ValidateChannels(channels); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestAssignChannelsEmpty(t *testing.T) {
	fs := &ForestSchedule{L: 5, Streams: map[int64]StreamSchedule{}, Programs: map[int64]*Program{}}
	channels := fs.AssignChannels()
	if len(channels) != 0 {
		t.Errorf("empty schedule should need no channels")
	}
	if err := fs.ValidateChannels(channels); err != nil {
		t.Errorf("ValidateChannels on empty schedule: %v", err)
	}
}

func TestValidateChannelsRejectsBadAssignments(t *testing.T) {
	_, fs := fig3Schedule(t)
	good := fs.AssignChannels()

	// Duplicate assignment.
	dup := append([]Channel{}, good...)
	dup = append(dup, Channel{ID: len(dup), Streams: []StreamSchedule{good[0].Streams[0]}})
	if err := fs.ValidateChannels(dup); err == nil {
		t.Errorf("duplicate stream assignment should fail")
	}

	// Missing stream.
	missing := []Channel{{ID: 0, Streams: good[0].Streams}}
	if err := fs.ValidateChannels(missing); err == nil {
		t.Errorf("missing streams should fail")
	}

	// Overlapping streams on one channel.
	overlap := []Channel{{ID: 0, Streams: []StreamSchedule{fs.Streams[0], fs.Streams[5]}}}
	if err := fs.ValidateChannels(overlap); err == nil {
		t.Errorf("overlapping transmissions should fail")
	}

	// Altered stream length.
	altered := fs.AssignChannels()
	altered[0].Streams[0].Length++
	if err := fs.ValidateChannels(altered); err == nil {
		t.Errorf("altered stream should fail")
	}
}

func BenchmarkAssignChannels(b *testing.B) {
	fs, err := Build(core.OptimalForest(100, 2000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.AssignChannels()
	}
}
