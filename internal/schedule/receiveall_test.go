package schedule

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mergetree"
)

func TestBuildProgramAllClientH(t *testing.T) {
	// Receive-all program for the client at slot 7 with path 0 -> 5 -> 7 and
	// L = 15 (the Fig. 3/4 example viewed in the receive-all model): it
	// listens to all three streams from slot 7 on, taking parts 1-2 from its
	// own stream, 3-7 from stream 5, and 8-15 from the root.
	p, err := BuildProgramAll([]int64{0, 5, 7}, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) != 1 {
		t.Fatalf("receive-all program should have a single stage, got %d", len(p.Stages))
	}
	recs := p.Stages[0].Receptions
	if len(recs) != 3 {
		t.Fatalf("expected 3 receptions, got %d", len(recs))
	}
	want := []Reception{
		{Stream: 7, StartSlot: 7, FirstPart: 1, LastPart: 2},
		{Stream: 5, StartSlot: 7, FirstPart: 3, LastPart: 7},
		{Stream: 0, StartSlot: 7, FirstPart: 8, LastPart: 15},
	}
	for i, w := range want {
		if recs[i] != w {
			t.Errorf("reception %d = %+v, want %+v", i, recs[i], w)
		}
	}
	if p.MaxConcurrentStreams() != 3 {
		t.Errorf("MaxConcurrentStreams = %d, want 3", p.MaxConcurrentStreams())
	}
	if p.TotalSlotsReceiving() != 15 {
		t.Errorf("TotalSlotsReceiving = %d, want 15", p.TotalSlotsReceiving())
	}
	parts := p.Parts()
	if len(parts) != 15 {
		t.Fatalf("received %d parts", len(parts))
	}
	for _, ps := range parts {
		if ps.Slot != ps.Stream+ps.Part-1 {
			t.Errorf("part %d misaligned", ps.Part)
		}
		if ps.Slot > 7+ps.Part-1 {
			t.Errorf("part %d late", ps.Part)
		}
	}
}

func TestBuildProgramAllErrors(t *testing.T) {
	if _, err := BuildProgramAll(nil, 5); err == nil {
		t.Errorf("empty path should fail")
	}
	if _, err := BuildProgramAll([]int64{0, 0}, 5); err == nil {
		t.Errorf("non-increasing path should fail")
	}
	if _, err := BuildProgramAll([]int64{0, 1}, 0); err == nil {
		t.Errorf("non-positive L should fail")
	}
	if _, err := BuildProgramAll([]int64{0, 9}, 5); err == nil {
		t.Errorf("client too far from root should fail")
	}
}

func TestBuildProgramAllRootOnly(t *testing.T) {
	p, err := BuildProgramAll([]int64{4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxConcurrentStreams() != 1 || p.MaxBuffer() != 0 {
		t.Errorf("root client should stream straight through")
	}
}

func TestBuildReceiveAllOptimalForests(t *testing.T) {
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {16, 100}, {64, 200}} {
		f := core.OptimalForestAll(c.L, c.n)
		fs, err := BuildReceiveAll(f)
		if err != nil {
			t.Fatalf("BuildReceiveAll(L=%d,n=%d): %v", c.L, c.n, err)
		}
		rep, err := fs.VerifyReceiveAll()
		if err != nil {
			t.Fatalf("VerifyReceiveAll(L=%d,n=%d): %v", c.L, c.n, err)
		}
		if rep.Clients != int(c.n) {
			t.Errorf("verified %d clients, want %d", rep.Clients, c.n)
		}
		if got, want := fs.TotalBandwidth(), core.FullCostAll(c.L, c.n); got != want {
			t.Errorf("L=%d n=%d: receive-all schedule bandwidth %d != Fw(L,n) = %d", c.L, c.n, got, want)
		}
	}
}

func TestBuildReceiveAllWorksForReceiveTwoOptimalForests(t *testing.T) {
	// Any valid merge forest can be served in the receive-all model with the
	// (shorter) Lemma 17 stream lengths.
	f := core.OptimalForest(15, 8)
	fs, err := BuildReceiveAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.VerifyReceiveAll(); err != nil {
		t.Fatalf("VerifyReceiveAll: %v", err)
	}
	if fs.TotalBandwidth() > core.FullCost(15, 8) {
		t.Errorf("receive-all bandwidth should not exceed the receive-two cost of the same forest")
	}
}

func TestVerifyReceiveAllDetectsTruncation(t *testing.T) {
	f := core.OptimalForestAll(15, 8)
	fs, err := BuildReceiveAll(f)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one non-root stream below its Lemma 17 length.
	for a, s := range fs.Streams {
		if !s.Root && s.Length > 1 {
			s.Length--
			fs.Streams[a] = s
			break
		}
	}
	if _, err := fs.VerifyReceiveAll(); err == nil {
		t.Errorf("expected verification failure after truncating a stream")
	}
}

func TestBuildReceiveAllRejectsInvalidForest(t *testing.T) {
	f := mergetree.NewForest(3)
	tr, _ := mergetree.Parse("0(1 2 3)")
	f.Add(tr)
	if _, err := BuildReceiveAll(f); err == nil {
		t.Errorf("expected error for a tree that does not fit L")
	}
}

func TestReceiveAllCheaperThanReceiveTwoSchedules(t *testing.T) {
	// For the same L and n, the optimal receive-all schedule never uses more
	// bandwidth than the optimal receive-two schedule (Theorem 19/20 at the
	// schedule level).
	for _, c := range []struct{ L, n int64 }{{15, 8}, {30, 100}, {100, 350}} {
		two, err := Build(core.OptimalForest(c.L, c.n))
		if err != nil {
			t.Fatal(err)
		}
		all, err := BuildReceiveAll(core.OptimalForestAll(c.L, c.n))
		if err != nil {
			t.Fatal(err)
		}
		if all.TotalBandwidth() > two.TotalBandwidth() {
			t.Errorf("L=%d n=%d: receive-all schedule (%d) costs more than receive-two (%d)",
				c.L, c.n, all.TotalBandwidth(), two.TotalBandwidth())
		}
	}
}
