package schedule

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mergetree"
)

// StreamSchedule describes what a single stream broadcasts: parts
// 1..Length of the media, one part per slot, starting at slot Start.
type StreamSchedule struct {
	// Start is the slot at which the stream begins (its arrival label).
	Start int64
	// Length is the number of parts the stream broadcasts before it is
	// truncated (the root of a tree broadcasts the full L parts).
	Length int64
	// Root reports whether this is a full (root) stream.
	Root bool
}

// PartAt returns the part number broadcast during the given slot, or 0 if
// the stream is not transmitting during that slot.
func (s StreamSchedule) PartAt(slot int64) int64 {
	j := slot - s.Start + 1
	if j < 1 || j > s.Length {
		return 0
	}
	return j
}

// End returns the slot after the stream's last transmission slot.
func (s StreamSchedule) End() int64 {
	return s.Start + s.Length
}

// ForestSchedule is the complete broadcast plan for a merge forest: the
// per-stream schedules and the per-client receiving programs.
type ForestSchedule struct {
	// L is the full stream length in slots.
	L int64
	// Streams maps each stream's start slot to its schedule.
	Streams map[int64]StreamSchedule
	// Programs maps each client arrival to its receiving program.
	Programs map[int64]*Program
}

// Build constructs the broadcast schedule and all receiving programs for a
// merge forest in the receive-two model.  The forest must validate.
func Build(f *mergetree.Forest) (*ForestSchedule, error) {
	fs, err := buildStreams(f)
	if err != nil {
		return nil, err
	}
	var buf []int64 // reused path buffer; BuildProgram copies what it keeps
	for _, t := range f.Trees {
		tree := t
		var walkErr error
		tree.Walk(func(node, _ *mergetree.Tree) {
			if walkErr != nil {
				return
			}
			buf = tree.AppendPathTo(buf[:0], node.Arrival)
			prog, err := BuildProgram(buf, f.L)
			if err != nil {
				walkErr = fmt.Errorf("client %d: %w", node.Arrival, err)
				return
			}
			fs.Programs[node.Arrival] = prog
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return fs, nil
}

// BuildClients constructs the full broadcast schedule (every stream of the
// forest) but receiving programs only for the given client arrivals.  The
// server's broadcast plan never depends on which slots actually have
// clients, so sparse workloads can skip the program construction for the
// empty slots.  Every requested arrival must be a node of the forest.
func BuildClients(f *mergetree.Forest, clients []int64) (*ForestSchedule, error) {
	fs, err := buildStreams(f)
	if err != nil {
		return nil, err
	}
	var buf []int64 // reused path buffer; BuildProgram copies what it keeps
	for _, c := range clients {
		if _, ok := fs.Programs[c]; ok {
			continue
		}
		tree := f.TreeOf(c)
		if tree == nil {
			return nil, fmt.Errorf("schedule: no tree contains client %d", c)
		}
		buf = tree.AppendPathTo(buf[:0], c)
		if len(buf) == 0 {
			return nil, fmt.Errorf("schedule: no tree contains client %d", c)
		}
		prog, err := BuildProgram(buf, f.L)
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", c, err)
		}
		fs.Programs[c] = prog
	}
	return fs, nil
}

// buildStreams validates the forest and builds the per-stream schedules.
func buildStreams(f *mergetree.Forest) (*ForestSchedule, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	fs := &ForestSchedule{
		L:        f.L,
		Streams:  make(map[int64]StreamSchedule),
		Programs: make(map[int64]*Program),
	}
	for _, nl := range f.Lengths() {
		length := nl.Length
		if length > f.L {
			// A stream never broadcasts more than the whole media.
			length = f.L
		}
		fs.Streams[nl.Arrival] = StreamSchedule{Start: nl.Arrival, Length: length, Root: nl.Root}
	}
	return fs, nil
}

// TotalBandwidth returns the total server bandwidth of the schedule in slot
// units: the sum of all stream lengths.
func (fs *ForestSchedule) TotalBandwidth() int64 {
	var total int64
	for _, s := range fs.Streams {
		total += s.Length
	}
	return total
}

// PeakBandwidth returns the maximum number of simultaneously transmitting
// streams over all slots.
func (fs *ForestSchedule) PeakBandwidth() int {
	type event struct {
		slot  int64
		delta int
	}
	var events []event
	for _, s := range fs.Streams {
		if s.Length == 0 {
			continue
		}
		events = append(events, event{s.Start, +1}, event{s.End(), -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].slot != events[j].slot {
			return events[i].slot < events[j].slot
		}
		return events[i].delta < events[j].delta
	})
	cur, peak := 0, 0
	for _, e := range events {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// VerifyReport aggregates the results of verifying a schedule.
type VerifyReport struct {
	// Clients is the number of receiving programs checked.
	Clients int
	// MaxConcurrent is the largest number of streams any client listened to
	// in one slot.
	MaxConcurrent int
	// MaxBuffer is the largest buffer occupancy observed over all clients.
	MaxBuffer int64
}

// Verify checks that the schedule delivers uninterrupted playback to every
// client under the receive-two constraints:
//
//  1. every client receives every part 1..L exactly once,
//  2. each part is received from a stream during the slot that stream
//     broadcasts it, and no later than its playback slot,
//  3. the stream is still transmitting during that slot (its Lemma 1 length
//     suffices),
//  4. no client listens to more than two streams during any slot, and
//  5. no client buffers more than floor(L/2) parts (the universal bound of
//     Section 3.3); clients within L/2 slots of their root additionally
//     respect the exact Lemma 15 bound x - r.
//
// (The exact Lemma 15 value min(x-r, L-(x-r)) is only guaranteed for
// "L-trees" — trees whose non-root stream lengths stay below L — which every
// optimal tree is; arbitrary merge trees may exceed it by one part in the
// x-r > L/2 regime, so only the universal bound is enforced there.)
//
// It returns a report and the first violation found (nil if none).
func (fs *ForestSchedule) Verify() (VerifyReport, error) {
	rep := VerifyReport{}
	clients := make([]int64, 0, len(fs.Programs))
	for c := range fs.Programs {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })
	for _, c := range clients {
		prog := fs.Programs[c]
		rep.Clients++
		parts := prog.Parts()
		if int64(len(parts)) != fs.L {
			return rep, fmt.Errorf("client %d receives %d distinct parts, want %d", c, len(parts), fs.L)
		}
		if got := prog.TotalSlotsReceiving(); got != fs.L {
			return rep, fmt.Errorf("client %d spends %d reception slots, want exactly %d (each part received once)",
				c, got, fs.L)
		}
		for idx, ps := range parts {
			if ps.Part != int64(idx)+1 {
				return rep, fmt.Errorf("client %d is missing part %d", c, idx+1)
			}
			// Playback of part j occupies slot c + j - 1; the part must be
			// received during or before that slot.
			if ps.Slot > c+ps.Part-1 {
				return rep, fmt.Errorf("client %d receives part %d during slot %d, after its playback slot %d",
					c, ps.Part, ps.Slot, c+ps.Part-1)
			}
			s, ok := fs.Streams[ps.Stream]
			if !ok {
				return rep, fmt.Errorf("client %d listens to unknown stream %d", c, ps.Stream)
			}
			if got := s.PartAt(ps.Slot); got != ps.Part {
				return rep, fmt.Errorf("client %d expects part %d from stream %d during slot %d, but the stream broadcasts part %d",
					c, ps.Part, ps.Stream, ps.Slot, got)
			}
		}
		if mc := prog.MaxConcurrentStreams(); mc > 2 {
			return rep, fmt.Errorf("client %d listens to %d streams at once", c, mc)
		} else if mc > rep.MaxConcurrent {
			rep.MaxConcurrent = mc
		}
		// Buffer bounds (Section 3.3 universal bound and Lemma 15).
		root := prog.Path[0]
		bound := fs.L / 2
		if c-root <= fs.L/2 {
			bound = mergetree.BufferRequirement(c, root, fs.L)
		}
		if mb := prog.MaxBuffer(); mb > bound {
			return rep, fmt.Errorf("client %d buffers %d parts, exceeding the bound %d", c, mb, bound)
		} else if mb > rep.MaxBuffer {
			rep.MaxBuffer = mb
		}
	}
	return rep, nil
}

// RequiredStreamLengths returns, for every stream, the largest part number
// any client requests from it.  By Lemma 1 this equals the stream length
// 2z(x) - x - p(x) (clamped to L) for non-root streams and L for roots that
// serve a full tree.
func (fs *ForestSchedule) RequiredStreamLengths() map[int64]int64 {
	req := make(map[int64]int64, len(fs.Streams))
	for _, prog := range fs.Programs {
		for _, ps := range prog.Parts() {
			if ps.Part > req[ps.Stream] {
				req[ps.Stream] = ps.Part
			}
		}
	}
	return req
}

// Diagram renders an ASCII version of the concrete schedule diagram of
// Fig. 3: one row per stream, one column per slot, each cell showing the
// part number broadcast during that slot (blank when idle).
func (fs *ForestSchedule) Diagram() string {
	starts := make([]int64, 0, len(fs.Streams))
	var maxEnd int64
	for a, s := range fs.Streams {
		starts = append(starts, a)
		if s.End() > maxEnd {
			maxEnd = s.End()
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var minStart int64
	if len(starts) > 0 {
		minStart = starts[0]
	}
	var b strings.Builder
	// Header row with slot numbers.
	fmt.Fprintf(&b, "%8s |", "stream")
	for t := minStart; t < maxEnd; t++ {
		fmt.Fprintf(&b, "%4d", t)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s-+%s\n", strings.Repeat("-", 8), strings.Repeat("-", int(maxEnd-minStart)*4))
	for _, a := range starts {
		s := fs.Streams[a]
		label := fmt.Sprintf("%d", a)
		if s.Root {
			label += "*"
		}
		fmt.Fprintf(&b, "%8s |", label)
		for t := minStart; t < maxEnd; t++ {
			if p := s.PartAt(t); p > 0 {
				fmt.Fprintf(&b, "%4d", p)
			} else {
				b.WriteString("    ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
