package schedule

import (
	"testing"
)

// The paper's worked example (Section 2): client H arrives at slot 7 with
// receiving program x0=0, x1=5, x2=7 and L=15.
func buildClientH(t *testing.T) *Program {
	t.Helper()
	p, err := BuildProgram([]int64{0, 5, 7}, 15)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	return p
}

func TestBuildProgramClientH(t *testing.T) {
	p := buildClientH(t)
	if p.Client != 7 || p.L != 15 {
		t.Fatalf("Client=%d L=%d", p.Client, p.L)
	}
	if len(p.Stages) != 3 {
		t.Fatalf("expected 3 stages, got %d", len(p.Stages))
	}
	// Stage 0: from slot 7 to 9, parts 1,2 from stream 7 and parts 3,4 from
	// stream 5.
	s0 := p.Stages[0]
	if s0.From != 7 || s0.To != 9 || len(s0.Receptions) != 2 {
		t.Fatalf("stage 0 = %+v", s0)
	}
	if r := s0.Receptions[0]; r.Stream != 7 || r.FirstPart != 1 || r.LastPart != 2 || r.StartSlot != 7 {
		t.Errorf("stage 0 primary = %+v", r)
	}
	if r := s0.Receptions[1]; r.Stream != 5 || r.FirstPart != 3 || r.LastPart != 4 {
		t.Errorf("stage 0 secondary = %+v", r)
	}
	// Stage 1: from slot 9 to 14, parts 5..9 from stream 5 and 10..14 from
	// stream 0.
	s1 := p.Stages[1]
	if s1.From != 9 || s1.To != 14 {
		t.Fatalf("stage 1 window = [%d,%d)", s1.From, s1.To)
	}
	if r := s1.Receptions[0]; r.Stream != 5 || r.FirstPart != 5 || r.LastPart != 9 {
		t.Errorf("stage 1 primary = %+v", r)
	}
	if r := s1.Receptions[1]; r.Stream != 0 || r.FirstPart != 10 || r.LastPart != 14 {
		t.Errorf("stage 1 secondary = %+v", r)
	}
	// Stage 2: from slot 14 to 15, part 15 from the root.
	s2 := p.Stages[2]
	if s2.From != 14 || s2.To != 15 || len(s2.Receptions) != 1 {
		t.Fatalf("stage 2 = %+v", s2)
	}
	if r := s2.Receptions[0]; r.Stream != 0 || r.FirstPart != 15 || r.LastPart != 15 {
		t.Errorf("stage 2 reception = %+v", r)
	}
}

func TestProgramPartsClientH(t *testing.T) {
	p := buildClientH(t)
	parts := p.Parts()
	if len(parts) != 15 {
		t.Fatalf("client H receives %d parts, want 15", len(parts))
	}
	for i, ps := range parts {
		if ps.Part != int64(i+1) {
			t.Fatalf("part list not contiguous: %+v", parts)
		}
		// Broadcast alignment: part j is received from stream s during slot
		// s+j-1.
		if ps.Slot != ps.Stream+ps.Part-1 {
			t.Errorf("part %d from stream %d received at slot %d, broadcast slot is %d",
				ps.Part, ps.Stream, ps.Slot, ps.Stream+ps.Part-1)
		}
		// On-time delivery: part j plays at slot 7+j-1.
		if ps.Slot > 7+ps.Part-1 {
			t.Errorf("part %d arrives after its playback slot", ps.Part)
		}
	}
	// Source streams per the paper's walk-through.
	wantStream := map[int64]int64{1: 7, 2: 7, 3: 5, 4: 5, 5: 5, 9: 5, 10: 0, 14: 0, 15: 0}
	for part, stream := range wantStream {
		if parts[part-1].Stream != stream {
			t.Errorf("part %d received from stream %d, want %d", part, parts[part-1].Stream, stream)
		}
	}
}

func TestProgramClientHBufferAndConcurrency(t *testing.T) {
	p := buildClientH(t)
	if got := p.MaxConcurrentStreams(); got != 2 {
		t.Errorf("MaxConcurrentStreams = %d, want 2", got)
	}
	if got := p.MaxBuffer(); got != 7 {
		t.Errorf("MaxBuffer = %d, want 7 (Lemma 15: min(7, 15-7))", got)
	}
	if got := p.TotalSlotsReceiving(); got != 15 {
		t.Errorf("TotalSlotsReceiving = %d, want 15", got)
	}
	occ := p.BufferOccupancy()
	for i, b := range occ {
		if b < 0 {
			t.Fatalf("buffer underflow at relative slot %d: %v", i, occ)
		}
	}
	if occ[len(occ)-1] != 0 {
		t.Errorf("buffer should drain to 0 at the end, got %d", occ[len(occ)-1])
	}
}

func TestBuildProgramRootClient(t *testing.T) {
	// A client arriving with the root stream simply receives parts 1..L from
	// it.
	p, err := BuildProgram([]int64{3}, 10)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	if len(p.Stages) != 1 {
		t.Fatalf("expected a single stage, got %d", len(p.Stages))
	}
	r := p.Stages[0].Receptions[0]
	if r.Stream != 3 || r.FirstPart != 1 || r.LastPart != 10 || r.StartSlot != 3 {
		t.Errorf("root client reception = %+v", r)
	}
	if p.MaxConcurrentStreams() != 1 || p.MaxBuffer() != 0 {
		t.Errorf("root client should never buffer or receive two streams")
	}
}

func TestBuildProgramDirectChildFarFromRoot(t *testing.T) {
	// Client at 14 merging directly to root 0 with L=15: it receives parts
	// 1..14 from its own stream and part 15 from the root (the x-r > L/2
	// regime).
	p, err := BuildProgram([]int64{0, 14}, 15)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	parts := p.Parts()
	if len(parts) != 15 {
		t.Fatalf("received %d parts, want 15", len(parts))
	}
	if p.TotalSlotsReceiving() != 15 {
		t.Errorf("TotalSlotsReceiving = %d, want 15", p.TotalSlotsReceiving())
	}
	if parts[14].Stream != 0 || parts[0].Stream != 14 {
		t.Errorf("unexpected sources: first from %d, last from %d", parts[0].Stream, parts[14].Stream)
	}
	// Lemma 15: buffer requirement is min(14, 15-14) = 1.
	if got := p.MaxBuffer(); got != 1 {
		t.Errorf("MaxBuffer = %d, want 1", got)
	}
}

func TestBuildProgramErrors(t *testing.T) {
	if _, err := BuildProgram(nil, 10); err == nil {
		t.Errorf("empty path should fail")
	}
	if _, err := BuildProgram([]int64{0, 5, 5}, 10); err == nil {
		t.Errorf("non-increasing path should fail")
	}
	if _, err := BuildProgram([]int64{0, 3}, 0); err == nil {
		t.Errorf("non-positive L should fail")
	}
	if _, err := BuildProgram([]int64{0, 12}, 10); err == nil {
		t.Errorf("client beyond L-1 slots from root should fail")
	}
}

func TestReceptionHelpers(t *testing.T) {
	r := Reception{Stream: 5, StartSlot: 9, FirstPart: 5, LastPart: 9}
	if r.Slots() != 5 || r.EndSlot() != 14 {
		t.Errorf("Slots=%d EndSlot=%d", r.Slots(), r.EndSlot())
	}
	empty := Reception{FirstPart: 4, LastPart: 3}
	if empty.Slots() != 0 {
		t.Errorf("empty reception should span 0 slots")
	}
}

func TestBuildProgramDeepPath(t *testing.T) {
	// A chain 0 <- 1 <- 3 <- 7 with L = 20: stages must tile the parts
	// 1..L with no gaps or overlaps.
	p, err := BuildProgram([]int64{0, 1, 3, 7}, 20)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	parts := p.Parts()
	if len(parts) != 20 {
		t.Fatalf("got %d parts", len(parts))
	}
	if p.TotalSlotsReceiving() != 20 {
		t.Errorf("TotalSlotsReceiving = %d, want 20", p.TotalSlotsReceiving())
	}
	if p.MaxConcurrentStreams() > 2 {
		t.Errorf("receive-two violated: %d", p.MaxConcurrentStreams())
	}
	for _, ps := range parts {
		if ps.Slot != ps.Stream+ps.Part-1 {
			t.Errorf("part %d misaligned with broadcast of stream %d", ps.Part, ps.Stream)
		}
		if ps.Slot > p.Client+ps.Part-1 {
			t.Errorf("part %d late", ps.Part)
		}
	}
}
