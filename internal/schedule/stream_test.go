package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mergetree"
)

func fig3Schedule(t *testing.T) (*mergetree.Forest, *ForestSchedule) {
	t.Helper()
	f := mergetree.NewForest(15)
	tr, err := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatal(err)
	}
	f.Add(tr)
	fs, err := Build(f)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return f, fs
}

func TestBuildFig3StreamLengths(t *testing.T) {
	_, fs := fig3Schedule(t)
	want := map[int64]int64{0: 15, 1: 1, 2: 2, 3: 5, 4: 1, 5: 9, 6: 1, 7: 2}
	if len(fs.Streams) != len(want) {
		t.Fatalf("got %d streams, want %d", len(fs.Streams), len(want))
	}
	for a, wl := range want {
		s, ok := fs.Streams[a]
		if !ok {
			t.Fatalf("missing stream %d", a)
		}
		if s.Length != wl {
			t.Errorf("stream %d length = %d, want %d", a, s.Length, wl)
		}
		if s.Root != (a == 0) {
			t.Errorf("stream %d root flag = %v", a, s.Root)
		}
	}
}

func TestStreamSchedulePartAt(t *testing.T) {
	s := StreamSchedule{Start: 5, Length: 9}
	if s.PartAt(4) != 0 || s.PartAt(5) != 1 || s.PartAt(13) != 9 || s.PartAt(14) != 0 {
		t.Errorf("PartAt wrong: %d %d %d %d", s.PartAt(4), s.PartAt(5), s.PartAt(13), s.PartAt(14))
	}
	if s.End() != 14 {
		t.Errorf("End = %d, want 14", s.End())
	}
}

func TestBuildFig3TotalBandwidthMatchesFullCost(t *testing.T) {
	f, fs := fig3Schedule(t)
	if got := fs.TotalBandwidth(); got != f.FullCost() {
		t.Errorf("TotalBandwidth = %d, want %d", got, f.FullCost())
	}
	if got := fs.TotalBandwidth(); got != 36 {
		t.Errorf("TotalBandwidth = %d, want 36", got)
	}
}

func TestBuildFig3PeakBandwidth(t *testing.T) {
	_, fs := fig3Schedule(t)
	// During slot 7 four streams transmit simultaneously (0, 3, 5, 7); no
	// slot has more.
	if got := fs.PeakBandwidth(); got != 4 {
		t.Errorf("PeakBandwidth = %d, want 4", got)
	}
}

func TestVerifyFig3(t *testing.T) {
	_, fs := fig3Schedule(t)
	rep, err := fs.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Clients != 8 {
		t.Errorf("verified %d clients, want 8", rep.Clients)
	}
	if rep.MaxConcurrent != 2 {
		t.Errorf("MaxConcurrent = %d, want 2", rep.MaxConcurrent)
	}
	if rep.MaxBuffer != 7 {
		t.Errorf("MaxBuffer = %d, want 7", rep.MaxBuffer)
	}
}

func TestRequiredStreamLengthsMatchLemma1(t *testing.T) {
	// Lemma 1 is exactly the statement that the largest part requested from
	// stream x is 2z(x) - x - p(x).
	f, fs := fig3Schedule(t)
	req := fs.RequiredStreamLengths()
	for _, nl := range f.Lengths() {
		want := nl.Length
		if nl.Root {
			want = f.L
		}
		if req[nl.Arrival] != want {
			t.Errorf("stream %d: required length %d, Lemma 1 gives %d", nl.Arrival, req[nl.Arrival], want)
		}
	}
}

func TestClientFMergesAtSlot10(t *testing.T) {
	// Paper: "client F that arrives at time 5 merges to stream A at time 10"
	// even though stream F runs until slot 13 for clients G and H.
	_, fs := fig3Schedule(t)
	prog := fs.Programs[5]
	var lastFromOwn int64 = -1
	for _, ps := range prog.Parts() {
		if ps.Stream == 5 && ps.Slot > lastFromOwn {
			lastFromOwn = ps.Slot
		}
	}
	if lastFromOwn != 9 {
		t.Errorf("client 5 last receives from its own stream during slot %d, want 9 (merges at time 10)", lastFromOwn)
	}
	if fs.Streams[5].End() != 14 {
		t.Errorf("stream 5 ends at %d, want 14 (length 9 for clients G, H)", fs.Streams[5].End())
	}
}

func TestVerifyOptimalForests(t *testing.T) {
	// Every optimal forest produced by the core package must yield a
	// verifiable schedule: all clients get uninterrupted playback with at
	// most two simultaneous streams and Lemma 15 buffers.
	cases := []struct{ L, n int64 }{
		{15, 8}, {15, 14}, {4, 16}, {1, 5}, {2, 9}, {8, 8}, {8, 64}, {30, 200}, {100, 350},
	}
	for _, c := range cases {
		f := core.OptimalForest(c.L, c.n)
		fs, err := Build(f)
		if err != nil {
			t.Fatalf("Build(L=%d,n=%d): %v", c.L, c.n, err)
		}
		rep, err := fs.Verify()
		if err != nil {
			t.Fatalf("Verify(L=%d,n=%d): %v", c.L, c.n, err)
		}
		if rep.Clients != int(c.n) {
			t.Errorf("L=%d n=%d: verified %d clients", c.L, c.n, rep.Clients)
		}
		if fs.TotalBandwidth() != core.FullCost(c.L, c.n) {
			t.Errorf("L=%d n=%d: schedule bandwidth %d != optimal full cost %d",
				c.L, c.n, fs.TotalBandwidth(), core.FullCost(c.L, c.n))
		}
	}
}

func TestVerifyBufferedForestsRespectBufferBound(t *testing.T) {
	for _, c := range []struct{ L, B, n int64 }{{15, 3, 30}, {20, 5, 100}, {50, 10, 120}} {
		f := core.OptimalForestBuffered(c.L, c.B, c.n)
		fs, err := Build(f)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		rep, err := fs.Verify()
		if err != nil {
			t.Fatalf("Verify: %v", err)
		}
		if rep.MaxBuffer > c.B {
			t.Errorf("L=%d B=%d n=%d: observed buffer %d exceeds bound", c.L, c.B, c.n, rep.MaxBuffer)
		}
	}
}

func TestVerifyRandomForests(t *testing.T) {
	// Any structurally valid forest of preorder trees over consecutive
	// arrivals (not just optimal ones) must verify: the stream-merging rules
	// are feasible for every merge tree that fits the stream length.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		L := int64(5 + rng.Intn(40))
		f := mergetree.NewForest(L)
		start := int64(0)
		for len(f.Trees) < 3 {
			size := 1 + rng.Intn(int(L))
			f.Add(randomPreorderTree(rng, start, size))
			start += int64(size)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("random forest invalid: %v", err)
		}
		fs, err := Build(f)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if _, err := fs.Verify(); err != nil {
			t.Fatalf("Verify failed for random forest (L=%d): %v\n%s", L, err, f)
		}
		if fs.TotalBandwidth() < f.FullCost()-int64(f.Size())*L {
			t.Fatalf("bandwidth accounting inconsistent")
		}
	}
}

func randomPreorderTree(rng *rand.Rand, first int64, n int) *mergetree.Tree {
	if n == 1 {
		return mergetree.New(first)
	}
	root := mergetree.New(first)
	remaining := n - 1
	next := first + 1
	for remaining > 0 {
		b := 1 + rng.Intn(remaining)
		root.AddChild(randomPreorderTree(rng, next, b))
		next += int64(b)
		remaining -= b
	}
	return root
}

func TestBuildRejectsInvalidForest(t *testing.T) {
	f := mergetree.NewForest(3)
	tr, _ := mergetree.Parse("0(1 2 3)")
	f.Add(tr)
	if _, err := Build(f); err == nil {
		t.Errorf("expected error for a tree that does not fit L")
	}
}

func TestVerifyDetectsTruncatedStream(t *testing.T) {
	_, fs := fig3Schedule(t)
	// Truncate stream 5 below its Lemma 1 length: clients G and H now miss
	// parts.
	s := fs.Streams[5]
	s.Length = 4
	fs.Streams[5] = s
	if _, err := fs.Verify(); err == nil {
		t.Errorf("expected verification failure after truncating stream 5")
	}
}

func TestVerifyDetectsLateStream(t *testing.T) {
	_, fs := fig3Schedule(t)
	// Shift stream 7 one slot later: its parts no longer align with the
	// receiving program.
	s := fs.Streams[7]
	s.Start = 8
	fs.Streams[7] = s
	if _, err := fs.Verify(); err == nil {
		t.Errorf("expected verification failure after delaying stream 7")
	}
}

func TestVerifyDetectsMissingStream(t *testing.T) {
	_, fs := fig3Schedule(t)
	delete(fs.Streams, 3)
	if _, err := fs.Verify(); err == nil {
		t.Errorf("expected verification failure after removing stream 3")
	}
}

func TestDiagramFig3(t *testing.T) {
	_, fs := fig3Schedule(t)
	d := fs.Diagram()
	lines := strings.Split(strings.TrimRight(d, "\n"), "\n")
	// Header + separator + 8 stream rows.
	if len(lines) != 10 {
		t.Fatalf("diagram has %d lines, want 10:\n%s", len(lines), d)
	}
	if !strings.Contains(lines[0], "stream") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(d, "0*") {
		t.Errorf("root stream should be marked with *:\n%s", d)
	}
	// The root row must show all 15 parts; the row for stream 6 shows a
	// single part.
	if !strings.Contains(d, "  15") {
		t.Errorf("diagram missing part 15:\n%s", d)
	}
}

func TestPeakBandwidthEmptySchedule(t *testing.T) {
	fs := &ForestSchedule{L: 5, Streams: map[int64]StreamSchedule{}, Programs: map[int64]*Program{}}
	if fs.PeakBandwidth() != 0 {
		t.Errorf("empty schedule should have zero peak bandwidth")
	}
	if fs.TotalBandwidth() != 0 {
		t.Errorf("empty schedule should have zero total bandwidth")
	}
	if rep, err := fs.Verify(); err != nil || rep.Clients != 0 {
		t.Errorf("empty schedule should verify trivially")
	}
}

func BenchmarkBuildAndVerify(b *testing.B) {
	f := core.OptimalForest(100, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := Build(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
