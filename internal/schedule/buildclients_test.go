package schedule

import (
	"reflect"
	"testing"

	"repro/internal/mergetree"
)

func TestBuildClientsSubset(t *testing.T) {
	f := mergetree.NewForest(15)
	tr, err := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatal(err)
	}
	f.Add(tr)
	full, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := BuildClients(f, []int64{2, 6, 6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub.Streams, full.Streams) {
		t.Error("BuildClients must build the complete broadcast plan")
	}
	if len(sub.Programs) != 2 {
		t.Fatalf("expected 2 programs (duplicates collapse), got %d", len(sub.Programs))
	}
	for _, c := range []int64{2, 6} {
		if !reflect.DeepEqual(sub.Programs[c], full.Programs[c]) {
			t.Errorf("client %d: subset program differs from the full build", c)
		}
	}
}

func TestBuildClientsAllMatchesBuild(t *testing.T) {
	f := mergetree.NewForest(15)
	tr, err := mergetree.Parse("0(1 2 3(4) 5(6 7))")
	if err != nil {
		t.Fatal(err)
	}
	f.Add(tr)
	full, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	all, err := BuildClients(f, f.Arrivals())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all, full) {
		t.Error("BuildClients over every arrival must equal Build")
	}
}

func TestBuildClientsUnknownArrival(t *testing.T) {
	f := mergetree.NewForest(15)
	f.Add(mergetree.New(0))
	if _, err := BuildClients(f, []int64{3}); err == nil {
		t.Error("expected an error for an arrival outside the forest")
	}
}
