// Package policy provides a uniform interface over every serving strategy in
// this repository — the paper's delay-guaranteed on-line algorithm, the
// dyadic baselines, batching, unicast, the Section 5 hybrid, and the exact
// off-line optimum — so that experiments, examples, and downstream users can
// compare algorithms by name on a common footing: give each policy an
// arrival trace and a horizon, get back the total server bandwidth in
// complete media streams.
//
// Every Serve call takes a context.Context: policies whose cost is a closed
// form return immediately, while the off-line optimal policies run a
// multi-second interval DP at large n and abort within one DP work unit of
// ctx being done.  Validation and capacity failures wrap the sentinel
// errors ErrBadInstance and ErrInstanceTooLarge, so callers (in particular
// the public mod facade) can classify failures with errors.Is across the
// package boundary.
package policy

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/arrivals"
	"repro/internal/batching"
	"repro/internal/dyadic"
	"repro/internal/hybrid"
	"repro/internal/moderr"
	"repro/internal/offline"
	"repro/internal/online"
)

// ErrBadInstance marks validation failures of the (trace, horizon,
// parameters) instance handed to a policy: non-positive horizon or delay,
// a delay exceeding the media length, an unsorted trace.  The value is
// the shared leaf sentinel internal/moderr.ErrBadInstance, so layers
// below policy classify failures identically (see moderr's doc).
var ErrBadInstance = moderr.ErrBadInstance

// ErrInstanceTooLarge marks instances the exact off-line DP refuses up
// front: more arrivals than the configured cap, or banded DP tables that
// would exceed the configured memory budget.  Alias of
// internal/moderr.ErrInstanceTooLarge.
var ErrInstanceTooLarge = moderr.ErrInstanceTooLarge

// Policy is one serving strategy for a single media object.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Serve returns the total server bandwidth, in complete media streams,
	// needed to serve the given arrival trace over the horizon [0, horizon).
	// Long-running policies honor ctx and return an error wrapping
	// ctx.Err() when canceled.
	Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error)
}

// DelayGuaranteed returns the paper's on-line delay-guaranteed policy: a
// (possibly truncated) stream starts at the end of every slot of length
// delay, following the static F_h merge-tree template, regardless of whether
// the slot contains arrivals.
func DelayGuaranteed(mediaLength, delay float64) Policy {
	return delayGuaranteed{mediaLength: mediaLength, delay: delay}
}

type delayGuaranteed struct {
	mediaLength, delay float64
}

func (p delayGuaranteed) Name() string { return "delay-guaranteed" }

func (p delayGuaranteed) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if err := validate(p.mediaLength, p.delay, horizon); err != nil {
		return 0, err
	}
	if err := validateTrace(trace); err != nil {
		return 0, err
	}
	L := slotsPerMedia(p.mediaLength, p.delay)
	// Round, not ceil: the repo-wide horizon-slot convention shared with
	// the Figs. 11-12 sweep (experiments.comparisonFigure) and cmd/modsim,
	// so the policy reproduces those figures' delay-guaranteed points
	// exactly when the delay does not divide the horizon.
	n := int64(math.Round(horizon / p.delay))
	if n < 1 {
		n = 1
	}
	return online.NormalizedCost(L, n), nil
}

// ImmediateDyadic returns the immediate-service dyadic policy with the given
// parameters (clients are served the instant they arrive).
func ImmediateDyadic(mediaLength float64, params dyadic.Params) Policy {
	return immediateDyadic{mediaLength: mediaLength, params: params}
}

type immediateDyadic struct {
	mediaLength float64
	params      dyadic.Params
}

func (p immediateDyadic) Name() string { return "immediate dyadic" }

func (p immediateDyadic) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if p.mediaLength <= 0 || horizon <= 0 {
		return 0, fmt.Errorf("%w: media length and horizon must be positive", ErrBadInstance)
	}
	return dyadic.TotalCost(trace.Clip(horizon), p.mediaLength, p.params)
}

// BatchedDyadic returns the batched dyadic policy: arrivals wait until the
// end of their slot and only non-empty slots start streams.
func BatchedDyadic(mediaLength, delay float64, params dyadic.Params) Policy {
	return batchedDyadic{mediaLength: mediaLength, delay: delay, params: params}
}

type batchedDyadic struct {
	mediaLength, delay float64
	params             dyadic.Params
}

func (p batchedDyadic) Name() string { return "batched dyadic" }

func (p batchedDyadic) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if err := validate(p.mediaLength, p.delay, horizon); err != nil {
		return 0, err
	}
	return dyadic.TotalBatchedCost(trace.Clip(horizon), p.mediaLength, p.delay, p.params)
}

// PureBatching returns the merging-free batching policy: one full stream per
// non-empty slot.
func PureBatching(mediaLength, delay float64) Policy {
	return pureBatching{mediaLength: mediaLength, delay: delay}
}

type pureBatching struct {
	mediaLength, delay float64
}

func (p pureBatching) Name() string { return "batching" }

func (p pureBatching) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if err := validate(p.mediaLength, p.delay, horizon); err != nil {
		return 0, err
	}
	if err := validateTrace(trace); err != nil {
		return 0, err
	}
	return batching.BatchedCost(trace.Clip(horizon), p.delay), nil
}

// Unicast returns the no-sharing strawman: a private full stream per client.
func Unicast() Policy {
	return unicast{}
}

type unicast struct{}

func (unicast) Name() string { return "unicast" }

func (unicast) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if horizon <= 0 {
		return 0, fmt.Errorf("%w: horizon must be positive", ErrBadInstance)
	}
	if err := validateTrace(trace); err != nil {
		return 0, err
	}
	return batching.ImmediateUnicastCost(trace.Clip(horizon)), nil
}

// Hybrid returns the Section 5 hybrid policy with the given configuration.
func Hybrid(cfg hybrid.Config) Policy {
	return hybridPolicy{cfg: cfg}
}

type hybridPolicy struct {
	cfg hybrid.Config
}

func (p hybridPolicy) Name() string { return "hybrid" }

func (p hybridPolicy) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	res, err := hybrid.Run(trace.Clip(horizon), horizon, p.cfg)
	if err != nil {
		return 0, err
	}
	return res.TotalCost, nil
}

// defaultOfflineArrivalCap bounds the trace size the exact off-line DP will
// accept.  The banded flat tables of internal/offline store 12 bytes per
// (group-feasible) interval, so the memory is 12 n W bytes where W is the
// largest number of arrivals inside one media length — measured 287 MB at
// n = 50000 for the Figs. 11-12 setting (horizon 100 media lengths), versus
// the ~16 n^2 bytes (40 GB) the old full [][] tables would have needed.
// Adversarial traces that pack everything into one window are still caught
// by defaultOfflineTableBytes below.
const defaultOfflineArrivalCap = 50000

// defaultOfflineTableBytes refuses DP instances whose banded tables would
// exceed ~1.5 GiB regardless of the arrival count.
const defaultOfflineTableBytes = int64(1) << 30 * 3 / 2

// OfflineOptions configures the exact off-line optimal policies.  The zero
// value selects the defaults: a 50000-arrival cap, a ~1.5 GiB table memory
// budget, and GOMAXPROCS DP workers.
type OfflineOptions struct {
	// MaxArrivals caps the (clipped, possibly batched) trace size; <= 0
	// selects the 50000 default.
	MaxArrivals int
	// MaxTableBytes caps the banded DP table footprint in bytes; <= 0
	// selects the ~1.5 GiB default.
	MaxTableBytes int64
	// Workers is the DP worker count (0 means GOMAXPROCS, 1 means serial).
	Workers int
}

func (o OfflineOptions) withDefaults() OfflineOptions {
	if o.MaxArrivals <= 0 {
		o.MaxArrivals = defaultOfflineArrivalCap
	}
	if o.MaxTableBytes <= 0 {
		o.MaxTableBytes = defaultOfflineTableBytes
	}
	return o
}

// OfflineOptimal returns the exact off-line optimum for general arrivals
// (the interval dynamic program of internal/offline) with the default
// instance caps.  Use 0 for the default 50000-arrival cap.
func OfflineOptimal(mediaLength float64, maxArrivals int) Policy {
	return OfflineOptimalOpts(mediaLength, OfflineOptions{MaxArrivals: maxArrivals})
}

// OfflineOptimalOpts is OfflineOptimal with explicit caps and DP worker
// count.  Instances over the caps are refused with an error wrapping
// ErrInstanceTooLarge before any table is allocated.
func OfflineOptimalOpts(mediaLength float64, opt OfflineOptions) Policy {
	return offlineOptimal{mediaLength: mediaLength, opt: opt.withDefaults()}
}

type offlineOptimal struct {
	mediaLength float64
	opt         OfflineOptions
}

func (p offlineOptimal) Name() string { return "offline optimal" }

func (p offlineOptimal) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if p.mediaLength <= 0 || horizon <= 0 {
		return 0, fmt.Errorf("%w: media length and horizon must be positive", ErrBadInstance)
	}
	if err := validateTrace(trace); err != nil {
		return 0, err
	}
	clipped := trace.Clip(horizon)
	if len(clipped) > p.opt.MaxArrivals {
		return 0, fmt.Errorf("%w: offline optimal limited to %d arrivals, trace has %d",
			ErrInstanceTooLarge, p.opt.MaxArrivals, len(clipped))
	}
	if len(clipped) == 0 {
		return 0, nil
	}
	if err := checkOfflineTableMemory(clipped, p.mediaLength, p.opt.MaxTableBytes); err != nil {
		return 0, err
	}
	res, err := offline.OptimalForestWorkers(ctx, clipped, p.mediaLength, offline.ReceiveTwo, p.opt.Workers)
	if err != nil {
		return 0, err
	}
	return res.NormalizedCost(), nil
}

// checkOfflineTableMemory estimates (in O(n)) the banded DP footprint and
// refuses instances that would exceed the byte budget.
func checkOfflineTableMemory(times []float64, L float64, budget int64) error {
	if bytes := offline.BandBytes(times, L); bytes > budget {
		return fmt.Errorf("%w: offline optimal DP would need %d MB of tables for %d arrivals (budget %d MB)",
			ErrInstanceTooLarge, bytes>>20, len(times), budget>>20)
	}
	return nil
}

// OfflineOptimalBatched returns the exact off-line optimum when every client
// may be delayed up to `delay` (served at the end of its slot): the interval
// dynamic program applied to the batched service times.  It is the tight
// lower bound for all the delay-`delay` policies (delay-guaranteed, batched
// dyadic, batching), whereas OfflineOptimal is the lower bound for the
// immediate-service policies.
func OfflineOptimalBatched(mediaLength, delay float64, maxArrivals int) Policy {
	return OfflineOptimalBatchedOpts(mediaLength, delay, OfflineOptions{MaxArrivals: maxArrivals})
}

// OfflineOptimalBatchedOpts is OfflineOptimalBatched with explicit caps and
// DP worker count.
func OfflineOptimalBatchedOpts(mediaLength, delay float64, opt OfflineOptions) Policy {
	return offlineOptimalBatched{mediaLength: mediaLength, delay: delay, opt: opt.withDefaults()}
}

type offlineOptimalBatched struct {
	mediaLength, delay float64
	opt                OfflineOptions
}

func (p offlineOptimalBatched) Name() string { return "offline optimal (batched)" }

func (p offlineOptimalBatched) Serve(ctx context.Context, trace arrivals.Trace, horizon float64) (float64, error) {
	if err := validate(p.mediaLength, p.delay, horizon); err != nil {
		return 0, err
	}
	if err := validateTrace(trace); err != nil {
		return 0, err
	}
	batched := trace.Clip(horizon).BatchTimes(p.delay)
	if len(batched) > p.opt.MaxArrivals {
		return 0, fmt.Errorf("%w: offline optimal limited to %d arrivals, batched trace has %d",
			ErrInstanceTooLarge, p.opt.MaxArrivals, len(batched))
	}
	if len(batched) == 0 {
		return 0, nil
	}
	if err := checkOfflineTableMemory(batched, p.mediaLength, p.opt.MaxTableBytes); err != nil {
		return 0, err
	}
	res, err := offline.OptimalForestWorkers(ctx, batched, p.mediaLength, offline.ReceiveTwo, p.opt.Workers)
	if err != nil {
		return 0, err
	}
	return res.NormalizedCost(), nil
}

// Standard returns the set of policies compared in Figs. 11-12 plus the
// merging-free baselines, configured for the given media length and delay
// and the given arrival type (Poisson or constant rate), in a stable order.
func Standard(mediaLength, delay float64, poisson bool) []Policy {
	var params dyadic.Params
	if poisson {
		params = dyadic.GoldenPoisson()
	} else {
		params = dyadic.GoldenConstantRate(slotsPerMedia(mediaLength, delay))
	}
	return []Policy{
		DelayGuaranteed(mediaLength, delay),
		ImmediateDyadic(mediaLength, params),
		BatchedDyadic(mediaLength, delay, params),
		Hybrid(hybrid.DefaultConfig(mediaLength, delay)),
		PureBatching(mediaLength, delay),
		Unicast(),
	}
}

// Compare serves the trace with every policy and returns the costs keyed by
// policy name, stopping at the first policy that fails (a canceled ctx
// counts as a failure of the policy it interrupted).
func Compare(ctx context.Context, policies []Policy, trace arrivals.Trace, horizon float64) (map[string]float64, error) {
	out := make(map[string]float64, len(policies))
	for _, p := range policies {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("policy: compare canceled: %w", err)
		}
		c, err := p.Serve(ctx, trace, horizon)
		if err != nil {
			return nil, fmt.Errorf("policy %q: %w", p.Name(), err)
		}
		out[p.Name()] = c
	}
	return out, nil
}

// CompareParallel is Compare with the per-policy Serve calls spread across a
// worker pool of the given size (0 means GOMAXPROCS; <= 1 delegates to the
// serial Compare).  Every policy computes its own cost independently of the
// others, so the costs are identical to Compare's.  The one behavioral
// difference is error handling: the pool runs all policies and then reports
// the first failing one in slice order, whereas Compare stops at the first
// failure.  Cancelling ctx stops dispatching, aborts the in-flight policies
// that honor ctx (one Serve per worker at most keeps running), and returns
// an error wrapping ctx.Err() once every worker has been joined.
func CompareParallel(ctx context.Context, policies []Policy, trace arrivals.Trace, horizon float64, workers int) (map[string]float64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(policies) {
		workers = len(policies)
	}
	if workers <= 1 {
		return Compare(ctx, policies, trace, horizon)
	}
	costs := make([]float64, len(policies))
	errs := make([]error, len(policies))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				costs[i], errs[i] = policies[i].Serve(ctx, trace, horizon)
			}
		}()
	}
dispatch:
	for i := range policies {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("policy: compare canceled: %w", err)
	}
	out := make(map[string]float64, len(policies))
	for i, p := range policies {
		if errs[i] != nil {
			return nil, fmt.Errorf("policy %q: %w", p.Name(), errs[i])
		}
		out[p.Name()] = costs[i]
	}
	return out, nil
}

func validate(mediaLength, delay, horizon float64) error {
	if mediaLength <= 0 || delay <= 0 || delay > mediaLength || horizon <= 0 {
		return fmt.Errorf("%w: need 0 < delay <= media length and horizon > 0 (got media=%g delay=%g horizon=%g)",
			ErrBadInstance, mediaLength, delay, horizon)
	}
	return nil
}

// validateTrace wraps trace validation failures in ErrBadInstance so they
// classify uniformly through the facade.
func validateTrace(trace arrivals.Trace) error {
	if err := trace.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrBadInstance, err)
	}
	return nil
}

func slotsPerMedia(mediaLength, delay float64) int64 {
	s := int64(math.Round(mediaLength / delay))
	if s < 1 {
		s = 1
	}
	return s
}
