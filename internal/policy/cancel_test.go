package policy

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/arrivals"
)

// slowTrace is dense enough that the offline DP runs for a long time
// relative to the cancellation latency (tens of thousands of arrivals in
// one media-length window).
func slowTrace() arrivals.Trace {
	return arrivals.Constant(100.0/40000, 100)
}

// TestCompareParallelCancel cancels a CompareParallel run while its
// offline-optimal policies are mid-DP and asserts a prompt return carrying
// ctx.Err(), with every pool goroutine joined (the -race CI pass runs this
// package, so a leaked worker racing the test teardown would be caught).
func TestCompareParallelCancel(t *testing.T) {
	trace := slowTrace()
	ps := []Policy{
		OfflineOptimal(1.0, 100000),
		OfflineOptimalBatched(1.0, 0.001, 100000),
		DelayGuaranteed(1, 0.01),
		Unicast(),
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		costs map[string]float64
		err   error
	}
	resc := make(chan result, 1)
	go func() {
		costs, err := CompareParallel(ctx, ps, trace, 100, 4)
		resc <- result{costs, err}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case res := <-resc:
		if res.err == nil {
			t.Fatalf("CompareParallel returned %d costs after cancel, want error", len(res.costs))
		}
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("CompareParallel error %v does not wrap context.Canceled", res.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("CompareParallel did not return after cancel")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines before, %d after cancel (pool leaked)", before, got)
	}
}

// TestCompareSerialCancel pins the serial path: a pre-canceled context
// fails before any policy runs.
func TestCompareSerialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compare(ctx, Standard(1, 0.01, true), arrivals.Trace{0.5}, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("Compare error = %v, want context.Canceled", err)
	}
}

// TestOfflinePolicyCancelMidDP proves an individual offline policy aborts a
// running DP: the acceptance property surfaced at the policy layer.
func TestOfflinePolicyCancelMidDP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := OfflineOptimal(1.0, 100000).Serve(ctx, slowTrace(), 100)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("offline optimal error %v does not wrap context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("offline optimal did not return after cancel")
	}
}

// TestSentinelClassification pins the sentinel wrapping the facade depends
// on: size and validation failures must classify with errors.Is.
func TestSentinelClassification(t *testing.T) {
	ctx := context.Background()
	if _, err := OfflineOptimal(1, 2).Serve(ctx, arrivals.Trace{0.1, 0.2, 0.3}, 5); !errors.Is(err, ErrInstanceTooLarge) {
		t.Errorf("arrival-cap error %v does not wrap ErrInstanceTooLarge", err)
	}
	if _, err := OfflineOptimalBatchedOpts(1, 0.01, OfflineOptions{MaxTableBytes: 1}).Serve(ctx, arrivals.Constant(0.01, 5), 5); !errors.Is(err, ErrInstanceTooLarge) {
		t.Errorf("memory-budget error %v does not wrap ErrInstanceTooLarge", err)
	}
	if _, err := DelayGuaranteed(1, 0).Serve(ctx, arrivals.Trace{}, 5); !errors.Is(err, ErrBadInstance) {
		t.Errorf("bad-delay error %v does not wrap ErrBadInstance", err)
	}
	if _, err := Unicast().Serve(ctx, arrivals.Trace{0.5, 0.2}, 5); !errors.Is(err, ErrBadInstance) {
		t.Errorf("unsorted-trace error %v does not wrap ErrBadInstance", err)
	}
}
