package policy

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/dyadic"
	"repro/internal/hybrid"
	"repro/internal/online"
)

func TestPolicyNames(t *testing.T) {
	ps := Standard(1, 0.01, true)
	if len(ps) != 6 {
		t.Fatalf("Standard returned %d policies", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Name() == "" {
			t.Errorf("empty policy name")
		}
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
	for _, want := range []string{"delay-guaranteed", "immediate dyadic", "batched dyadic", "hybrid", "batching", "unicast"} {
		if !names[want] {
			t.Errorf("missing policy %q", want)
		}
	}
	if OfflineOptimal(1, 0).Name() != "offline optimal" {
		t.Errorf("offline optimal name wrong")
	}
}

func TestDelayGuaranteedMatchesOnlinePackage(t *testing.T) {
	p := DelayGuaranteed(1, 0.01)
	got, err := p.Serve(context.Background(), arrivals.Trace{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := online.NormalizedCost(100, 1000)
	if got != want {
		t.Errorf("Serve = %v, want %v", got, want)
	}
	// The delay-guaranteed cost is independent of the trace.
	got2, err := p.Serve(context.Background(), arrivals.Poisson(0.001, 10, 1), 10)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != got {
		t.Errorf("delay-guaranteed cost should not depend on the trace")
	}
}

func TestPolicyErrorPropagation(t *testing.T) {
	bad := arrivals.Trace{0.5, 0.2}
	horizon := 5.0
	for _, p := range []Policy{
		DelayGuaranteed(1, 0.01),
		ImmediateDyadic(1, dyadic.GoldenPoisson()),
		BatchedDyadic(1, 0.01, dyadic.GoldenPoisson()),
		PureBatching(1, 0.01),
		Unicast(),
		Hybrid(hybrid.DefaultConfig(1, 0.01)),
		OfflineOptimal(1, 0),
	} {
		if _, err := p.Serve(context.Background(), bad, horizon); err == nil {
			t.Errorf("policy %q accepted an unsorted trace", p.Name())
		}
	}
	if _, err := DelayGuaranteed(1, 0).Serve(context.Background(), arrivals.Trace{}, 5); err == nil {
		t.Errorf("invalid delay should fail")
	}
	if _, err := PureBatching(1, 0.01).Serve(context.Background(), arrivals.Trace{0.1}, 0); err == nil {
		t.Errorf("invalid horizon should fail")
	}
	if _, err := Unicast().Serve(context.Background(), arrivals.Trace{0.1}, 0); err == nil {
		t.Errorf("invalid horizon should fail for unicast")
	}
	if _, err := ImmediateDyadic(0, dyadic.GoldenPoisson()).Serve(context.Background(), arrivals.Trace{0.1}, 5); err == nil {
		t.Errorf("invalid media length should fail")
	}
	if _, err := OfflineOptimal(0, 0).Serve(context.Background(), arrivals.Trace{0.1}, 5); err == nil {
		t.Errorf("invalid media length should fail for offline optimal")
	}
}

func TestCompareOrderingOnDenseTrace(t *testing.T) {
	// Dense arrivals (many per slot): unicast is the most expensive,
	// batching beats unicast, stream merging beats batching, the
	// immediate-service off-line optimum lower-bounds the immediate-service
	// policies, and the batched off-line optimum lower-bounds every
	// delay-permitted policy.
	trace := arrivals.Poisson(0.002, 4, 3)
	horizon := 4.0
	ps := append(Standard(1, 0.01, true), OfflineOptimal(1, 0), OfflineOptimalBatched(1, 0.01, 0))
	costs, err := Compare(context.Background(), ps, trace, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if costs["unicast"] <= costs["batching"] {
		t.Errorf("batching (%v) should beat unicast (%v)", costs["batching"], costs["unicast"])
	}
	if costs["batching"] <= costs["batched dyadic"] {
		t.Errorf("batched dyadic (%v) should beat batching (%v)", costs["batched dyadic"], costs["batching"])
	}
	optImmediate := costs["offline optimal"]
	for _, name := range []string{"immediate dyadic", "unicast"} {
		if costs[name] < optImmediate-1e-9 {
			t.Errorf("policy %q (%v) beat the immediate-service optimum (%v)", name, costs[name], optImmediate)
		}
	}
	optBatched := costs["offline optimal (batched)"]
	for _, name := range []string{"delay-guaranteed", "batched dyadic", "hybrid", "batching"} {
		if costs[name] < optBatched-1e-9 {
			t.Errorf("policy %q (%v) beat the batched off-line optimum (%v)", name, costs[name], optBatched)
		}
	}
	// Allowing a delay can only help: the batched optimum is at most the
	// immediate-service optimum.
	if optBatched > optImmediate+1e-9 {
		t.Errorf("batched optimum (%v) exceeds immediate optimum (%v)", optBatched, optImmediate)
	}
}

func TestCompareSparseTraceFavorsDyadic(t *testing.T) {
	// Sparse arrivals: the delay-guaranteed policy is the most expensive of
	// the merging policies (it starts streams for empty slots).
	trace := arrivals.Poisson(0.05, 10, 7)
	costs, err := Compare(context.Background(), Standard(1, 0.01, true), trace, 10)
	if err != nil {
		t.Fatal(err)
	}
	if costs["delay-guaranteed"] <= costs["immediate dyadic"] {
		t.Errorf("sparse arrivals: delay-guaranteed (%v) should exceed immediate dyadic (%v)",
			costs["delay-guaranteed"], costs["immediate dyadic"])
	}
	if costs["hybrid"] >= costs["delay-guaranteed"] {
		t.Errorf("hybrid (%v) should beat pure delay-guaranteed (%v) on a sparse trace",
			costs["hybrid"], costs["delay-guaranteed"])
	}
}

func TestCompareStopsOnError(t *testing.T) {
	ps := []Policy{DelayGuaranteed(1, 0.01), OfflineOptimal(1, 2)}
	trace := arrivals.Poisson(0.01, 5, 1) // far more than 2 arrivals
	if _, err := Compare(context.Background(), ps, trace, 5); err == nil {
		t.Errorf("Compare should propagate the offline-optimal size error")
	}
	if !strings.Contains(err2str(Compare(context.Background(), ps, trace, 5)), "offline optimal") {
		t.Errorf("error should identify the failing policy")
	}
}

func err2str(_ map[string]float64, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestOfflineOptimalEmptyTrace(t *testing.T) {
	c, err := OfflineOptimal(1, 0).Serve(context.Background(), arrivals.Trace{}, 5)
	if err != nil || c != 0 {
		t.Errorf("empty trace should cost 0, got %v, %v", c, err)
	}
}

func TestSlotsPerMediaClamp(t *testing.T) {
	if slotsPerMedia(1, 2) != 1 {
		t.Errorf("slotsPerMedia should clamp to 1")
	}
	if slotsPerMedia(1, 0.01) != 100 {
		t.Errorf("slotsPerMedia(1, 0.01) should be 100")
	}
}

func TestStandardConstantRateParams(t *testing.T) {
	// The constant-rate variant must use beta = F_h/L per Section 4.2; just
	// check it produces a valid, distinct policy set.
	ps := Standard(1, 0.01, false)
	costs, err := Compare(context.Background(), ps, arrivals.Constant(0.005, 5), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(ps) {
		t.Errorf("expected %d costs, got %d", len(ps), len(costs))
	}
}

func TestCompareParallelMatchesSerial(t *testing.T) {
	trace := arrivals.Poisson(0.01, 3, 5)
	policies := Standard(1.0, 0.01, true)
	serial, err := Compare(context.Background(), policies, trace, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		parallel, err := CompareParallel(context.Background(), policies, trace, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for name, want := range serial {
			if got := parallel[name]; got != want {
				t.Errorf("workers=%d: policy %q = %v, want %v (must be bit-identical)", workers, name, got, want)
			}
		}
	}
}

func TestOfflineOptimalDefaultCapRaised(t *testing.T) {
	// The banded DP accepts traces an order of magnitude beyond the old
	// 5000-arrival cap; 6000 arrivals over 100 media lengths stays tiny.
	trace := arrivals.Constant(100.0/6000, 100)
	if len(trace) <= 5000 {
		t.Fatalf("trace has only %d arrivals; want > 5000 to exercise the raised cap", len(trace))
	}
	cost, err := OfflineOptimal(1.0, 0).Serve(context.Background(), trace, 100)
	if err != nil {
		t.Fatalf("offline optimal refused a %d-arrival trace: %v", len(trace), err)
	}
	if cost <= 0 {
		t.Fatalf("offline optimal cost = %v, want > 0", cost)
	}
}
