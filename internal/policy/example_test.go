package policy_test

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/arrivals"
	"repro/internal/policy"
)

func ExampleCompare() {
	// A deterministic constant-rate trace: one request every 0.4% of the
	// movie length, for 10 movie lengths, with a 1% guaranteed delay.
	trace := arrivals.Constant(0.004, 10)
	costs, _ := policy.Compare(context.Background(), policy.Standard(1, 0.01, false), trace, 10)
	names := make([]string, 0, len(costs))
	for name := range costs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s: %.0f streams\n", name, costs[name])
	}
	// Output:
	// batched dyadic: 84 streams
	// batching: 1000 streams
	// delay-guaranteed: 83 streams
	// hybrid: 83 streams
	// immediate dyadic: 102 streams
	// unicast: 2500 streams
}
