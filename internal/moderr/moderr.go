// Package moderr declares the repository's shared failure sentinels: the
// leaf of the error taxonomy the public mod facade exposes.
//
// The classified layers (policy, multiobject, offline, live, serve) sit
// at different depths of the import graph — offline cannot import policy,
// policy cannot import live — yet errors.Is must classify a failure
// identically whichever layer raised it.  So the sentinel *values* live
// here, below everything; policy re-exports them under its historical
// names (the mod facade aliases those in turn), and every layer wraps
// them with %w.  The errwrap analyzer (internal/analysis) enforces the
// wrapping discipline; the message texts keep their original "policy:"
// prefixes so no pinned output changes.
package moderr

import "errors"

// ErrBadInstance marks validation failures of a problem instance:
// non-positive horizon, length, or delay, a delay exceeding the media
// length, an unsorted or non-finite arrival trace, an invalid catalog
// object.
var ErrBadInstance = errors.New("policy: invalid instance")

// ErrInstanceTooLarge marks instances the exact off-line DP refuses up
// front: more arrivals than the configured cap, or banded DP tables that
// would exceed the configured memory budget.
var ErrInstanceTooLarge = errors.New("policy: instance too large")
