// Package arrivals generates the client arrival processes used in the
// empirical evaluation of Section 4.2: constant-rate arrivals (a request
// exactly every lambda time units) and Poisson arrivals (exponential
// inter-arrival times with mean lambda).  Times are expressed in units of
// the media length, matching the paper's plots where both the guaranteed
// start-up delay and the arrival intensity are percentages of the media
// length.
package arrivals

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Trace is a sequence of client arrival times in increasing order.
type Trace []float64

// Constant returns arrivals at lambda, 2*lambda, 3*lambda, ... up to (but
// not including) horizon.  lambda is the constant inter-arrival time.
// It panics if lambda <= 0 or horizon < 0.
func Constant(lambda, horizon float64) Trace {
	if lambda <= 0 {
		panic(fmt.Sprintf("arrivals: Constant requires lambda > 0, got %g", lambda))
	}
	if horizon < 0 {
		panic(fmt.Sprintf("arrivals: Constant requires horizon >= 0, got %g", horizon))
	}
	var tr Trace
	for t := lambda; t < horizon; t += lambda {
		tr = append(tr, t)
	}
	return tr
}

// Poisson returns a Poisson arrival process over [0, horizon) with mean
// inter-arrival time lambda, generated deterministically from the seed.
// It panics if lambda <= 0 or horizon < 0.
func Poisson(lambda, horizon float64, seed int64) Trace {
	if lambda <= 0 {
		panic(fmt.Sprintf("arrivals: Poisson requires lambda > 0, got %g", lambda))
	}
	if horizon < 0 {
		panic(fmt.Sprintf("arrivals: Poisson requires horizon >= 0, got %g", horizon))
	}
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	t := 0.0
	for {
		t += rng.ExpFloat64() * lambda
		if t >= horizon {
			break
		}
		tr = append(tr, t)
	}
	return tr
}

// Ramp returns a nonhomogeneous Poisson arrival process over [0, horizon)
// whose instantaneous rate ramps linearly from 1/lambda0 at time 0 to
// 1/lambda1 at the horizon (so the expected arrival count is
// horizon*(1/lambda0+1/lambda1)/2; the mean inter-arrival time itself does
// not ramp linearly), generated deterministically from the seed by
// thinning a homogeneous process at the peak rate.  It models the
// prime-time ramp-up of a live Media-on-Demand evening.  It panics if
// lambda0 <= 0, lambda1 <= 0, or horizon < 0.
func Ramp(lambda0, lambda1, horizon float64, seed int64) Trace {
	if lambda0 <= 0 || lambda1 <= 0 {
		panic(fmt.Sprintf("arrivals: Ramp requires positive lambdas, got %g and %g", lambda0, lambda1))
	}
	if horizon < 0 {
		panic(fmt.Sprintf("arrivals: Ramp requires horizon >= 0, got %g", horizon))
	}
	r0, r1 := 1/lambda0, 1/lambda1
	rmax := math.Max(r0, r1)
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	t := 0.0
	for {
		t += rng.ExpFloat64() / rmax
		if t >= horizon {
			break
		}
		rate := r0 + (r1-r0)*t/horizon
		if rng.Float64()*rmax <= rate {
			tr = append(tr, t)
		}
	}
	return tr
}

// Flash returns a Poisson arrival process over [0, horizon) whose rate is
// 1/lambda except inside the flash window [start, start+duration), where it
// jumps to factor/lambda — a flash crowd (a premiere, a breaking-news spike)
// superimposed on steady background demand.  Like Ramp it is generated
// deterministically from the seed by thinning a homogeneous process at the
// peak rate.  It panics if lambda <= 0, factor < 1, duration < 0, or
// horizon < 0.
func Flash(lambda, factor, start, duration, horizon float64, seed int64) Trace {
	if lambda <= 0 {
		panic(fmt.Sprintf("arrivals: Flash requires lambda > 0, got %g", lambda))
	}
	if factor < 1 {
		panic(fmt.Sprintf("arrivals: Flash requires factor >= 1, got %g", factor))
	}
	if duration < 0 {
		panic(fmt.Sprintf("arrivals: Flash requires duration >= 0, got %g", duration))
	}
	if horizon < 0 {
		panic(fmt.Sprintf("arrivals: Flash requires horizon >= 0, got %g", horizon))
	}
	base := 1 / lambda
	rmax := factor * base
	rng := rand.New(rand.NewSource(seed))
	var tr Trace
	t := 0.0
	for {
		t += rng.ExpFloat64() / rmax
		if t >= horizon {
			break
		}
		rate := base
		if t >= start && t < start+duration {
			rate = rmax
		}
		if rng.Float64()*rmax <= rate {
			tr = append(tr, t)
		}
	}
	return tr
}

// Validate checks that the trace is sorted, non-negative, and finite.
func (tr Trace) Validate() error {
	for i, t := range tr {
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return fmt.Errorf("arrivals: invalid time %g at index %d", t, i)
		}
		if i > 0 && t < tr[i-1] {
			return fmt.Errorf("arrivals: trace not sorted at index %d (%g after %g)", i, t, tr[i-1])
		}
	}
	return nil
}

// Count returns the number of arrivals in the trace.
func (tr Trace) Count() int {
	return len(tr)
}

// MeanInterArrival returns the empirical mean inter-arrival time, measuring
// the first gap from time 0.  It returns 0 for an empty trace.
func (tr Trace) MeanInterArrival() float64 {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1] / float64(len(tr))
}

// Clip returns the sub-trace of arrivals strictly before horizon.
func (tr Trace) Clip(horizon float64) Trace {
	i := sort.SearchFloat64s(tr, horizon)
	return tr[:i]
}

// BatchToSlots batches the arrivals into slots of the given length (the
// guaranteed start-up delay) and returns the 0-based indices of the slots
// that contain at least one arrival.  An arrival at time t lands in slot
// floor(t/slot) and is served at the end of that slot, (slot index+1)*slot,
// which is at most `slot` time units after the request — the delay
// guarantee.  This is the batching used by the batched dyadic baseline.
func (tr Trace) BatchToSlots(slot float64) []int64 {
	if slot <= 0 {
		panic(fmt.Sprintf("arrivals: BatchToSlots requires slot > 0, got %g", slot))
	}
	var out []int64
	last := int64(-1)
	for _, t := range tr {
		idx := int64(math.Floor(t / slot))
		if idx != last {
			out = append(out, idx)
			last = idx
		}
	}
	return out
}

// BatchTimes batches the arrivals into slots of the given length and returns
// the service times (slot ends) of the non-empty slots, i.e. the times at
// which a batching or batched-merging server starts streams.
func (tr Trace) BatchTimes(slot float64) []float64 {
	idx := tr.BatchToSlots(slot)
	out := make([]float64, len(idx))
	for i, s := range idx {
		out[i] = float64(s+1) * slot
	}
	return out
}

// OccupiedSlots returns how many length-`slot` slots in [0, horizon) contain
// at least one arrival.
func (tr Trace) OccupiedSlots(slot, horizon float64) int {
	count := 0
	for _, idx := range tr.BatchToSlots(slot) {
		if float64(idx)*slot < horizon {
			count++
		}
	}
	return count
}

// Merge combines two traces into one sorted trace.
func Merge(a, b Trace) Trace {
	out := make(Trace, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Float64s(out)
	return out
}
