package arrivals

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	tr := Constant(0.25, 1.0)
	if len(tr) != 3 {
		t.Fatalf("Constant(0.25, 1.0) has %d arrivals, want 3 (0.25, 0.5, 0.75)", len(tr))
	}
	if math.Abs(tr[0]-0.25) > 1e-12 || math.Abs(tr[2]-0.75) > 1e-12 {
		t.Errorf("unexpected arrivals %v", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestConstantEmptyHorizon(t *testing.T) {
	if got := Constant(0.5, 0); len(got) != 0 {
		t.Errorf("expected no arrivals, got %v", got)
	}
	if got := Constant(2.0, 1.0); len(got) != 0 {
		t.Errorf("inter-arrival larger than horizon should produce nothing, got %v", got)
	}
}

func TestConstantPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Constant(0, 1) },
		func() { Constant(-1, 1) },
		func() { Constant(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson(0.01, 10, 42)
	b := Poisson(0.01, 10, 42)
	if len(a) != len(b) {
		t.Fatalf("same seed gave different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different traces at %d", i)
		}
	}
	c := Poisson(0.01, 10, 43)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds gave identical traces")
		}
	}
}

func TestPoissonStatistics(t *testing.T) {
	lambda := 0.02
	tr := Poisson(lambda, 200, 7)
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Expected count is horizon/lambda = 10000; allow 5% deviation.
	want := 200.0 / lambda
	if got := float64(tr.Count()); math.Abs(got-want)/want > 0.05 {
		t.Errorf("Poisson count %v, want about %v", got, want)
	}
	if got := tr.MeanInterArrival(); math.Abs(got-lambda)/lambda > 0.05 {
		t.Errorf("mean inter-arrival %v, want about %v", got, lambda)
	}
}

func TestPoissonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Poisson(0, 1, 1)
}

func TestValidateRejectsBadTraces(t *testing.T) {
	if err := (Trace{0.5, 0.25}).Validate(); err == nil {
		t.Errorf("unsorted trace should fail")
	}
	if err := (Trace{-1}).Validate(); err == nil {
		t.Errorf("negative time should fail")
	}
	if err := (Trace{math.NaN()}).Validate(); err == nil {
		t.Errorf("NaN should fail")
	}
	if err := (Trace{math.Inf(1)}).Validate(); err == nil {
		t.Errorf("Inf should fail")
	}
	if err := (Trace{}).Validate(); err != nil {
		t.Errorf("empty trace should validate")
	}
}

func TestClip(t *testing.T) {
	tr := Trace{0.1, 0.5, 0.9, 1.5}
	c := tr.Clip(1.0)
	if len(c) != 3 || c[2] != 0.9 {
		t.Errorf("Clip = %v", c)
	}
	if got := tr.Clip(0); len(got) != 0 {
		t.Errorf("Clip(0) should be empty")
	}
}

func TestBatchToSlots(t *testing.T) {
	tr := Trace{0.001, 0.004, 0.013, 0.013, 0.029, 0.041}
	slots := tr.BatchToSlots(0.01)
	want := []int64{0, 1, 2, 4}
	if len(slots) != len(want) {
		t.Fatalf("BatchToSlots = %v, want %v", slots, want)
	}
	for i := range want {
		if slots[i] != want[i] {
			t.Fatalf("BatchToSlots = %v, want %v", slots, want)
		}
	}
}

func TestBatchTimesDelayGuarantee(t *testing.T) {
	// Every client must be served within one slot of its arrival.
	prop := func(seed int64, lam uint8) bool {
		lambda := float64(lam%50+1) / 1000.0
		tr := Poisson(lambda, 5, seed)
		slot := 0.01
		times := tr.BatchTimes(slot)
		// Each arrival's service time is the end of its slot.
		j := 0
		for _, t := range tr {
			for j < len(times) && times[j] < t {
				j++
			}
			if j >= len(times) {
				return false
			}
			if times[j]-t > slot+1e-12 || times[j] < t {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOccupiedSlots(t *testing.T) {
	tr := Trace{0.005, 0.015, 0.995, 1.2}
	if got := tr.OccupiedSlots(0.01, 1.0); got != 3 {
		t.Errorf("OccupiedSlots = %d, want 3", got)
	}
}

func TestBatchToSlotsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Trace{0.1}.BatchToSlots(0)
}

func TestMerge(t *testing.T) {
	a := Trace{0.1, 0.4}
	b := Trace{0.2, 0.3, 0.5}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("Merge length %d", len(m))
	}
	if err := m.Validate(); err != nil {
		t.Errorf("merged trace invalid: %v", err)
	}
}

func TestFlashDeterministicAndValid(t *testing.T) {
	a := Flash(0.02, 8, 40, 20, 100, 42)
	b := Flash(0.02, 8, 40, 20, 100, 42)
	if len(a) != len(b) {
		t.Fatalf("same seed gave different lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed gave different traces at %d", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFlashCrowdDensity(t *testing.T) {
	// Background rate 1/lambda = 50/unit, flash window [40, 60) at 8x.
	tr := Flash(0.02, 8, 40, 20, 100, 7)
	var inside, outside int
	for _, at := range tr {
		if at >= 40 && at < 60 {
			inside++
		} else {
			outside++
		}
	}
	// Expected: inside 20*8/0.02 = 8000, outside 80/0.02 = 4000; the
	// flash window must be far denser per unit time than the background.
	insideRate := float64(inside) / 20
	outsideRate := float64(outside) / 80
	if insideRate < 4*outsideRate {
		t.Errorf("flash window rate %.1f/unit not clearly above background %.1f/unit", insideRate, outsideRate)
	}
	want := 8000.0
	if math.Abs(float64(inside)-want)/want > 0.10 {
		t.Errorf("flash window count %d, want about %.0f", inside, want)
	}
}

func TestFlashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	Flash(0.02, 0.5, 0, 1, 10, 1) // factor < 1
}

func TestConstantMeanInterArrival(t *testing.T) {
	tr := Constant(0.01, 10)
	if got := tr.MeanInterArrival(); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("MeanInterArrival = %v, want 0.01", got)
	}
	if (Trace{}).MeanInterArrival() != 0 {
		t.Errorf("empty trace mean should be 0")
	}
}
