package serve_test

// Group-commit behavior of the WAL pipeline: flush coalescing (many
// acknowledgements per store Flush), the acked-requests-are-a-durable-
// prefix contract when a crash lands mid-batch, and the same contract
// under a real SIGKILL of a child process writing a file store.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// gateStore wraps a Mem store with a controllable Flush: while held, every
// Flush call blocks until release.  It makes the group-commit window
// deterministic — the test decides exactly which submissions pile up
// behind one in-flight commit — where timing alone would be flaky.
type gateStore struct {
	*store.Mem
	mu      sync.Mutex
	flushes int
	held    chan struct{} // non-nil while holding; closed to release
}

func (g *gateStore) Flush(shard int, mode store.SyncMode) error {
	g.mu.Lock()
	g.flushes++
	held := g.held
	g.mu.Unlock()
	if held != nil {
		<-held
	}
	return g.Mem.Flush(shard, mode)
}

func (g *gateStore) hold() {
	g.mu.Lock()
	g.held = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateStore) release() {
	g.mu.Lock()
	close(g.held)
	g.held = nil
	g.mu.Unlock()
}

func (g *gateStore) flushCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushes
}

// gatedScenario drives one shard through 3 serial acked submits, then 8
// concurrent submits that all pile up while the store's Flush is held —
// the deterministic stand-in for "a crash lands mid-group-commit".  It
// returns the store's committed clone taken at that instant (the disk
// image of the crash), the flush count the concurrent batch cost after
// release, and the server's final stats.
func gatedScenario(t *testing.T, mode store.SyncMode) (disk *store.Mem, concurrentFlushes int, st serve.Stats) {
	t.Helper()
	gs := &gateStore{Mem: store.NewMem()}
	cfg := crashConfig("online", 1, gs, false)
	cfg.SyncMode = mode
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer srv.Close()

	// Serial phase: each submit round-trips, so each is its own commit.
	for i := 0; i < 3; i++ {
		if _, err := srv.Submit(serve.Request{Object: "hot", T: 0}); err != nil {
			t.Fatalf("serial Submit %d: %v", i, err)
		}
	}

	// Concurrent phase behind a held Flush: the first commit blocks in
	// the store while the rest of the submissions queue on the WAL
	// channel.  No acknowledgement can release — and no record can be
	// published — until the gate opens.
	gs.hold()
	flushesBefore := gs.flushCount()
	const concurrent = 8
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Submit(serve.Request{Object: "hot", T: 0}); err != nil {
				t.Errorf("concurrent Submit: %v", err)
			}
		}()
	}
	// Wait until the shard loop has dequeued (and therefore admitted and
	// handed to the writer) every submission: 3 serial + 8 concurrent.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := srv.Stats()
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if s.Shards[0].Dequeued == 3+concurrent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard dequeued %d of %d submissions", s.Shards[0].Dequeued, 3+concurrent)
		}
		time.Sleep(time.Millisecond)
	}
	// The crash: everything committed so far is the disk image; records
	// stuck behind the held Flush are the user-space buffer a SIGKILL
	// would lose.
	disk = gs.Mem.Clone()
	gs.release()
	wg.Wait()
	concurrentFlushes = gs.flushCount() - flushesBefore

	final, err := srv.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	return disk, concurrentFlushes, final
}

// TestGroupCommitCoalesces pins the tentpole property: N concurrent
// submitters share a constant number of flushes, not one each.  The held
// gate guarantees all 8 concurrent submissions are queued behind one
// in-flight commit, so releasing it can cost at most 2 flushes (the held
// one plus one for the drained remainder) — against 8 acknowledgements.
func TestGroupCommitCoalesces(t *testing.T) {
	_, concurrentFlushes, st := gatedScenario(t, store.SyncOS)
	if concurrentFlushes >= 8 {
		t.Fatalf("8 concurrent submits cost %d flushes — no coalescing", concurrentFlushes)
	}
	if concurrentFlushes > 2 {
		t.Fatalf("8 gated concurrent submits cost %d flushes, want at most 2", concurrentFlushes)
	}
	// Stats mirror the store's own count: 3 serial + the concurrent ones.
	if want := int64(3 + concurrentFlushes); st.WALFlushes != want {
		t.Fatalf("Stats.WALFlushes = %d, want %d", st.WALFlushes, want)
	}
	if st.Admitted+st.Degraded+st.Rejected != 11 {
		t.Fatalf("decisions = %d, want 11", st.Admitted+st.Degraded+st.Rejected)
	}
}

// TestGroupCommitCrashPrefix pins the durability contract at a
// mid-group-commit crash, for every sync mode: the committed bytes hold
// exactly the acknowledged requests (the 3 serial ones — none of the 8
// in-flight submissions was acked, and none of their records was
// published), the log replays with gap-free sequence numbers, and a
// restore resumes ticket numbering exactly after the last acked request.
func TestGroupCommitCrashPrefix(t *testing.T) {
	for _, mode := range []store.SyncMode{store.SyncNone, store.SyncOS, store.SyncFull} {
		t.Run(mode.String(), func(t *testing.T) {
			disk, _, _ := gatedScenario(t, mode)
			var seqs []int64
			err := disk.ReplayWAL(0, func(rec []byte) error {
				if len(rec) != 20 {
					return fmt.Errorf("record of %d bytes", len(rec))
				}
				seqs = append(seqs, int64(binary.LittleEndian.Uint64(rec[0:8])))
				return nil
			})
			if err != nil {
				t.Fatalf("ReplayWAL: %v", err)
			}
			if len(seqs) != 3 {
				t.Fatalf("crash image holds %d records, want exactly the 3 acked (mode %v)", len(seqs), mode)
			}
			for i, seq := range seqs {
				if seq != int64(i) {
					t.Fatalf("record %d has sequence %d — log is not a gap-free prefix", i, seq)
				}
			}
			rcfg := crashConfig("online", 1, disk, true)
			rcfg.SyncMode = mode
			restored, err := serve.New(rcfg)
			if err != nil {
				t.Fatalf("New(restored): %v", err)
			}
			defer restored.Close()
			tk, err := restored.Submit(serve.Request{Object: "hot", T: 0})
			if err != nil {
				t.Fatalf("Submit after restore: %v", err)
			}
			// One shard: ID = seq + 1.  The 3 acked requests consumed
			// sequences 0..2, so the first post-restore ticket is 4.
			if tk.ID != 4 {
				t.Fatalf("first post-restore ticket ID = %d, want 4", tk.ID)
			}
		})
	}
}

// TestGroupCommitPrefixSIGKILL is the real-process form of the contract:
// a child process serves durable traffic on a file store and is killed
// with SIGKILL mid-stream.  For every sync mode the surviving log must
// restore cleanly (gap-free prefix); for SyncOS and SyncFull — where an
// acknowledgement implies the record left the user-space buffer — every
// acknowledged ticket must also be covered by the restored state.
// (SyncNone may lose acked records to the buffer; that is its documented
// trade-off.)
func TestGroupCommitPrefixSIGKILL(t *testing.T) {
	if os.Getenv("MOD_SIGKILL_HELPER") != "" {
		t.Skip("helper process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("Executable: %v", err)
	}
	for _, mode := range []store.SyncMode{store.SyncNone, store.SyncOS, store.SyncFull} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			acked := filepath.Join(dir, "acked.txt")
			cmd := exec.Command(exe, "-test.run", "TestGroupCommitSIGKILLHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"MOD_SIGKILL_HELPER=1",
				"MOD_SIGKILL_DIR="+dir,
				"MOD_SIGKILL_ACKED="+acked,
				"MOD_SIGKILL_SYNC="+mode.String(),
			)
			if err := cmd.Start(); err != nil {
				t.Fatalf("start helper: %v", err)
			}
			// Let the child ack a healthy stream of requests, then kill it
			// mid-flight — no shutdown path runs.
			deadline := time.Now().Add(30 * time.Second)
			for {
				if data, err := os.ReadFile(acked); err == nil && len(data) > 2000 {
					break
				}
				if time.Now().After(deadline) {
					cmd.Process.Kill()
					cmd.Wait()
					t.Fatal("helper produced no acknowledgements")
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("SIGKILL helper: %v", err)
			}
			cmd.Wait()

			// Every fully written acked line survives the process kill (the
			// page cache is not lost); a torn final line is tolerated.
			maxAcked := int64(0)
			lines := 0
			f, err := os.Open(acked)
			if err != nil {
				t.Fatalf("open acked file: %v", err)
			}
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				id, err := strconv.ParseInt(sc.Text(), 10, 64)
				if err != nil {
					continue
				}
				lines++
				if id > maxAcked {
					maxAcked = id
				}
			}
			f.Close()
			if lines == 0 {
				t.Fatal("no acknowledged tickets recorded")
			}

			fs, err := store.NewFile(dir)
			if err != nil {
				t.Fatalf("NewFile: %v", err)
			}
			rcfg := crashConfig("online", 1, fs, true)
			rcfg.SyncMode = mode
			rcfg.OwnStore = true
			restored, err := serve.New(rcfg)
			if err != nil {
				t.Fatalf("mode %v: restore after SIGKILL failed: %v", mode, err)
			}
			defer restored.Close()
			tk, err := restored.Submit(serve.Request{Object: "hot", T: 0})
			if err != nil {
				t.Fatalf("Submit after restore: %v", err)
			}
			if mode != store.SyncNone && tk.ID <= maxAcked {
				t.Fatalf("mode %v: restored numbering resumes at %d but ticket %d was acknowledged — an acked record was lost",
					mode, tk.ID, maxAcked)
			}
			t.Logf("mode %v: %d acked, restore resumed at ID %d", mode, lines, tk.ID)
		})
	}
}

// TestGroupCommitSIGKILLHelper is the child body of the SIGKILL test: it
// serves durable traffic on the file store named by the environment and
// records every acknowledged ticket ID, until the parent kills it.
func TestGroupCommitSIGKILLHelper(t *testing.T) {
	if os.Getenv("MOD_SIGKILL_HELPER") == "" {
		t.Skip("not a helper invocation")
	}
	dir := os.Getenv("MOD_SIGKILL_DIR")
	mode, err := store.ParseSyncMode(os.Getenv("MOD_SIGKILL_SYNC"))
	if err != nil {
		t.Fatalf("parse sync mode: %v", err)
	}
	fs, err := store.NewFile(dir)
	if err != nil {
		t.Fatalf("NewFile: %v", err)
	}
	cfg := crashConfig("online", 1, fs, false)
	cfg.SyncMode = mode
	cfg.OwnStore = true
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out, err := os.Create(os.Getenv("MOD_SIGKILL_ACKED"))
	if err != nil {
		t.Fatalf("create acked file: %v", err)
	}
	var mu sync.Mutex
	names := []string{"hot", "warm", "cold"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				tk, err := srv.Submit(serve.Request{Object: names[(g+i)%len(names)], T: 0})
				if err != nil {
					return
				}
				mu.Lock()
				fmt.Fprintf(out, "%d\n", tk.ID)
				mu.Unlock()
			}
		}()
	}
	// The parent SIGKILLs this process; the submit loops never exit on
	// their own within the test timeout.
	wg.Wait()
}
