package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/arrivals"
	"repro/internal/multiobject"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// ArrivalKind selects the load generator's arrival process.
type ArrivalKind int

const (
	// ConstantArrivals: a request exactly every mean inter-arrival time.
	ConstantArrivals ArrivalKind = iota
	// PoissonArrivals: exponential inter-arrival times.
	PoissonArrivals
	// RampArrivals: a nonhomogeneous Poisson process whose rate ramps up
	// linearly to RampFactor times the initial rate (prime-time evening).
	RampArrivals
	// FlashArrivals: Poisson background traffic with a flash crowd —
	// RampFactor times the baseline rate — over the middle fifth of the
	// horizon (a premiere or breaking-news spike).
	FlashArrivals
)

func (k ArrivalKind) String() string {
	switch k {
	case ConstantArrivals:
		return "constant rate"
	case PoissonArrivals:
		return "Poisson"
	case RampArrivals:
		return "ramp"
	case FlashArrivals:
		return "flash crowd"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// LoadConfig describes the request load offered to a server.
type LoadConfig struct {
	// Horizon is the load duration in catalog time units.
	Horizon float64
	// MeanInterArrival is the aggregate mean inter-arrival time across the
	// catalog; object i receives a share proportional to its popularity
	// (exactly like sim.WorkloadConfig).
	MeanInterArrival float64
	// Kind selects the arrival process.
	Kind ArrivalKind
	// RampFactor is the final-to-initial rate ratio for RampArrivals and
	// the flash-crowd rate multiplier for FlashArrivals (default 4).
	RampFactor float64
	// Seed seeds the per-object generators (object i uses Seed+i), so a
	// fixed seed replays the identical request sequence — the published
	// numbers are reproducible from the command line.
	Seed int64
}

// GenerateRequests builds the deterministic, time-sorted request sequence
// the load generator replays.  The per-object traces are generated exactly
// like sim.RunWorkload generates its workload — same popularity shares,
// same per-object seeds — so a live replay is comparable (and, for the
// Poisson/constant kinds, equivalence-testable) against the batch path.
func GenerateRequests(cat multiobject.Catalog, cfg LoadConfig) ([]Request, error) {
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("%w: load horizon must be positive, got %g", ErrBadConfig, cfg.Horizon)
	}
	if cfg.MeanInterArrival <= 0 {
		return nil, fmt.Errorf("%w: load mean inter-arrival must be positive, got %g", ErrBadConfig, cfg.MeanInterArrival)
	}
	ramp := cfg.RampFactor
	if ramp <= 0 {
		ramp = 4
	}
	var popTotal float64
	for _, o := range cat {
		popTotal += o.Popularity
	}
	type timed struct {
		t   float64
		obj int
	}
	var all []timed
	for i, o := range cat {
		share := 1 / float64(len(cat))
		if popTotal > 0 {
			share = o.Popularity / popTotal
		}
		if share <= 0 {
			continue
		}
		mean := cfg.MeanInterArrival / share
		var tr arrivals.Trace
		switch cfg.Kind {
		case ConstantArrivals:
			tr = arrivals.Constant(mean, cfg.Horizon)
		case PoissonArrivals:
			tr = arrivals.Poisson(mean, cfg.Horizon, cfg.Seed+int64(i))
		case RampArrivals:
			tr = arrivals.Ramp(mean, mean/ramp, cfg.Horizon, cfg.Seed+int64(i))
		case FlashArrivals:
			tr = arrivals.Flash(mean, ramp, 0.4*cfg.Horizon, 0.2*cfg.Horizon, cfg.Horizon, cfg.Seed+int64(i))
		default:
			return nil, fmt.Errorf("%w: unknown arrival kind %d", ErrBadConfig, int(cfg.Kind))
		}
		for _, t := range tr {
			all = append(all, timed{t: t, obj: i})
		}
	}
	// Global time order; catalog order breaks exact ties so the sequence is
	// fully deterministic.
	sort.Slice(all, func(a, b int) bool {
		if all[a].t != all[b].t {
			return all[a].t < all[b].t
		}
		return all[a].obj < all[b].obj
	})
	reqs := make([]Request, len(all))
	for i, tm := range all {
		reqs[i] = Request{Object: cat[tm.obj].Name, T: tm.t}
	}
	return reqs, nil
}

// Report is the closed-loop load generator's outcome.
type Report struct {
	// Requests is the number of requests offered.
	Requests int
	// Admitted/Degraded/Rejected count the admission outcomes observed.
	Admitted, Degraded, Rejected int
	// Failed counts HTTP requests answered with a JSON error (HTTP mode
	// only; e.g. unknown objects), including requests still refused by
	// backpressure after the retry budget.
	Failed int
	// PressureRetries counts 429 responses the HTTP driver retried after
	// honoring their Retry-After (capped backoff); PressureFailed counts
	// requests abandoned after the retry budget.  A trace that completes
	// under transient pressure shows retries but no failures.
	PressureRetries int
	PressureFailed  int
	// OfferedDelay summarizes StartAt - T over served requests: the actual
	// start-up delay each client was offered (degradations raise it).
	OfferedDelay stats.Summary
	// Latency summarizes the wall-clock request round-trip (HTTP mode
	// only; zero for the in-process driver).
	Latency stats.Summary
	// Drain is the final accounting (in-process mode only).
	Drain *DrainResult
	// Stats is the server-side snapshot (HTTP mode).
	Stats *Stats

	delays    []float64
	latencies []float64
}

// RunDriver replays the request sequence against an in-process server in
// strict time order, one request at a time, then drains it at the horizon.
// With a fixed-seed sequence from GenerateRequests the entire run —
// decisions, tickets, drained per-object stream counts and bandwidth
// totals — is deterministic for any shard count, which is what the
// equivalence tests against sim.RunWorkload and the batch planners
// assert.
//
// Cancelling ctx stops the replay between requests and returns an error
// wrapping ctx.Err().  The server itself stays healthy: its shards hold
// no driver state, so the caller can still Drain it (finalizing whatever
// was admitted) and must still Close it.
func RunDriver(ctx context.Context, s *Server, reqs []Request, horizon float64) (*Report, error) {
	rep := &Report{Requests: len(reqs)}
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("serve: driver canceled after %d of %d requests: %w", i, len(reqs), err)
		}
		ticket, err := s.Submit(req)
		if err != nil {
			return nil, err
		}
		rep.Count(ticket)
	}
	dr, err := s.Drain(horizon)
	if err != nil {
		return nil, err
	}
	rep.Drain = dr
	rep.Finish()
	return rep, nil
}

// Backpressure retry budget of the HTTP driver: how many 429 responses
// one request may absorb before it counts as failed, and the cap on any
// single Retry-After-driven sleep.
const (
	maxPressureRetries = 8
	maxPressureBackoff = 2 * time.Second
)

// RunHTTPDriver replays the request sequence against a live HTTP endpoint
// with the given number of concurrent connections, measuring round-trip
// latencies, then snapshots /stats.  Unlike the in-process driver the
// interleaving (and therefore any admission degradation) is subject to
// network scheduling, so this mode measures rather than reproduces.
// Cancelling ctx stops dispatching and aborts in-flight requests.
//
// A 429 answer (queue-depth backpressure) is not a failure: the driver
// honors the Retry-After header — sleeping at most maxPressureBackoff —
// and retries the same request up to maxPressureRetries times, counting
// each retry in Report.PressureRetries; only a request still refused
// after the budget lands in Failed (and PressureFailed).  A trace
// offered through transient pressure therefore completes.
func RunHTTPDriver(ctx context.Context, baseURL string, reqs []Request, concurrency int) (*Report, error) {
	if concurrency < 1 {
		concurrency = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}
	rep := &Report{Requests: len(reqs)}
	var mu sync.Mutex
	var firstErr error
	work := make(chan Request)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				body, _ := json.Marshal(req)
			attempt:
				for attempt := 0; ; attempt++ {
					hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
						baseURL+APIVersion+"/request", bytes.NewReader(body))
					if err == nil {
						hreq.Header.Set("Content-Type", "application/json")
					}
					t0 := time.Now()
					var resp *http.Response
					if err == nil {
						resp, err = client.Do(hreq)
					}
					lat := time.Since(t0).Seconds()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						break
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						mu.Lock()
						if attempt >= maxPressureRetries {
							rep.Failed++
							rep.PressureFailed++
							mu.Unlock()
							break
						}
						rep.PressureRetries++
						mu.Unlock()
						select {
						case <-time.After(retryAfter):
						case <-ctx.Done():
							break attempt
						}
						continue
					}
					// Error responses are JSON {"error": ...}; decode both
					// shapes so a per-request failure is counted, not fatal.
					var out struct {
						Ticket
						Error string `json:"error"`
					}
					decErr := json.NewDecoder(resp.Body).Decode(&out)
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					mu.Lock()
					switch {
					case decErr != nil:
						if firstErr == nil {
							firstErr = fmt.Errorf("serve: bad ticket from %s: %w", baseURL, decErr)
						}
					case out.Error != "":
						rep.Failed++
					default:
						rep.Count(out.Ticket)
						rep.latencies = append(rep.latencies, lat)
					}
					mu.Unlock()
					break
				}
			}
		}()
	}
dispatch:
	for _, req := range reqs {
		select {
		case work <- req:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("serve: HTTP driver canceled: %w", err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	resp, err := client.Get(baseURL + APIVersion + "/stats")
	if err == nil {
		var st Stats
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			rep.Stats = &st
		}
		resp.Body.Close()
	}
	rep.Finish()
	return rep, nil
}

// parseRetryAfter turns a Retry-After header (delay-seconds form) into
// the driver's sleep: the advertised delay capped at maxPressureBackoff,
// or half the cap when the header is absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	d := maxPressureBackoff / 2
	if secs, err := strconv.Atoi(strings.TrimSpace(h)); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > maxPressureBackoff {
		d = maxPressureBackoff
	}
	return d
}

// Count tallies one ticket: the admission decision and, for served
// requests, the offered start-up delay sample.  Drivers that replay
// requests themselves (e.g. modserve's bench mode, which times every
// Submit) feed their tickets through Count and call Finish once done, so
// their reports carry the same delay summaries as RunDriver's.
func (r *Report) Count(t Ticket) {
	switch t.Decision {
	case Degraded:
		r.Degraded++
	case Rejected:
		r.Rejected++
		return
	default:
		r.Admitted++
	}
	r.delays = append(r.delays, t.StartAt-t.T)
}

// Finish summarizes the collected delay and latency samples.
func (r *Report) Finish() {
	r.OfferedDelay = stats.Summarize(r.delays)
	r.Latency = stats.Summarize(r.latencies)
}

// Render writes the report as aligned tables, a start-up-delay histogram,
// and (after a drain) the server's real-time bandwidth profile chart.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "requests:             %d\n", r.Requests)
	fmt.Fprintf(w, "admitted:             %d\n", r.Admitted)
	fmt.Fprintf(w, "degraded:             %d\n", r.Degraded)
	fmt.Fprintf(w, "rejected:             %d\n", r.Rejected)
	if r.Failed > 0 {
		fmt.Fprintf(w, "failed:               %d\n", r.Failed)
	}
	if r.PressureRetries > 0 {
		fmt.Fprintf(w, "pressure retries:     %d\n", r.PressureRetries)
	}
	if r.PressureFailed > 0 {
		fmt.Fprintf(w, "pressure failed:      %d\n", r.PressureFailed)
	}
	if r.OfferedDelay.N > 0 {
		fmt.Fprintf(w, "offered delay:        %s\n", r.OfferedDelay)
	}
	if r.Latency.N > 0 {
		fmt.Fprintf(w, "request latency (s):  %s\n", r.Latency)
	}
	if len(r.delays) > 1 {
		fmt.Fprintf(w, "\nStart-up delay histogram (time units):\n%s", histogram(r.delays, 8))
	}
	if len(r.latencies) > 1 {
		fmt.Fprintf(w, "\nRequest latency histogram (seconds):\n%s", histogram(r.latencies, 8))
	}
	objs := r.objects()
	if len(objs) > 0 {
		tbl := textplot.NewTable("object", "strategy", "shard", "L", "delay", "scale", "arrivals", "clients", "rejected", "streams", "cost", "busy")
		for _, o := range objs {
			tbl.AddRow(o.Name, o.Strategy, o.Shard, o.L, o.Delay, o.Scale, o.Arrivals, o.Clients, o.Rejected, o.Streams, o.Cost, o.BusyTime)
		}
		fmt.Fprintf(w, "\n%s", tbl.String())
	}
	if r.Drain != nil {
		fmt.Fprintf(w, "\nserver peak:          %d channels\n", r.Drain.Usage.Peak())
		fmt.Fprintf(w, "server average:       %.2f channels\n", r.AverageChannels())
		fmt.Fprintf(w, "total busy time:      %.2f time units\n", r.Drain.Usage.Total())
		if prof := r.Drain.Usage.Profile(0, r.Drain.Horizon, 60); len(prof) > 0 {
			xs := make([]float64, len(prof))
			ys := make([]float64, len(prof))
			for i, c := range prof {
				xs[i] = r.Drain.Horizon * float64(i) / float64(len(prof))
				ys[i] = float64(c)
			}
			fmt.Fprintf(w, "\nBusy channels over time:\n%s",
				textplot.Chart(60, 12, textplot.Series{Name: "channels", X: xs, Y: ys}))
		}
	}
}

// AverageChannels returns the drained time-average channel usage (0 before
// a drain).
func (r *Report) AverageChannels() float64 {
	if r.Drain == nil {
		return 0
	}
	return r.Drain.AverageChannels()
}

// objects returns the per-object stats from whichever side produced them.
func (r *Report) objects() []ObjectStats {
	if r.Drain != nil {
		return r.Drain.Objects
	}
	if r.Stats != nil {
		return r.Stats.Objects
	}
	return nil
}

// histogram renders an equal-width bucket table of the samples.
func histogram(xs []float64, buckets int) string {
	if len(xs) == 0 || buckets < 1 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	width := (hi - lo) / float64(buckets)
	for _, x := range xs {
		i := int((x - lo) / width)
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	tbl := textplot.NewTable("from", "to", "count", "bar")
	for i, c := range counts {
		bar := ""
		for j := 0; j < 40*c/len(xs); j++ {
			bar += "#"
		}
		tbl.AddRow(lo+float64(i)*width, lo+float64(i+1)*width, c, bar)
	}
	return tbl.String()
}
