package serve_test

// Tests of the observability surface: the Prometheus text exposition of
// /v1/metrics (shape and internal consistency) and the guarantee that
// turning stage metering on does not perturb the scheduling itself —
// cost totals stay bit-identical to an unmetered run.

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/serve"
)

// meteredServer builds a stage-metered server over a small mixed-strategy
// catalog with a deterministic counter clock.
func meteredServer(t *testing.T) *serve.Server {
	t.Helper()
	cat := multiobject.Catalog{
		{Name: "object-01", Length: 1, Popularity: 4, Delay: 0.125, Strategy: "online"},
		{Name: "object-02", Length: 1, Popularity: 2, Delay: 0.25, Strategy: "batching"},
		{Name: "object-03", Length: 2, Popularity: 1, Delay: 0.25, Strategy: "online"},
	}
	var tick atomic.Int64
	s, err := serve.New(serve.Config{
		Catalog:     cat,
		Shards:      2,
		EpochSlots:  8,
		MeterStages: true,
		NowNanos:    func() int64 { return tick.Add(1000) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestPrometheusShape drives a metered server and validates the /v1/metrics
// exposition: HELP/TYPE lines precede every family's samples, histogram
// buckets are cumulative and monotone, the +Inf bucket equals _count, and
// every stage histogram with observations renders a _sum.
func TestPrometheusShape(t *testing.T) {
	s := meteredServer(t)
	hs := httptest.NewServer(serve.Handler(s))
	defer hs.Close()

	// Single submits, a batch, and one HTTP round trip (for the respond
	// stage histogram).
	tt := 0.0
	var reqs []serve.Request
	for i := 0; i < 40; i++ {
		tt += 0.05
		reqs = append(reqs, serve.Request{Object: []string{"object-01", "object-02", "object-03"}[i%3], T: tt})
	}
	for _, r := range reqs[:20] {
		if _, err := s.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, res := range s.SubmitBatch(reqs[20:]) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if st, _, _ := fetch(t, "POST", hs.URL+"/v1/request", `{"object":"object-01","t":2.5}`); st != 200 {
		t.Fatalf("HTTP submit status %d", st)
	}

	_, hdr, body := fetch(t, "GET", hs.URL+"/v1/metrics", "")
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}

	type hist struct {
		buckets []float64 // le upper bounds, in encounter order
		counts  []int64   // cumulative counts
		sum     float64
		hasSum  bool
		count   int64
		hasCnt  bool
	}
	hists := map[string]*hist{} // key: {stage=...,strategy=...}
	typed := map[string]string{}
	helped := map[string]bool{}
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			helped[strings.Fields(rest)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			f := strings.Fields(rest)
			typed[f[0]] = f[1]
			continue
		}
		samples++
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		series, val := line[:sp], line[sp+1:]
		name := series
		labels := ""
		if b := strings.IndexByte(series, '{'); b >= 0 {
			name, labels = series[:b], series[b:]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !helped[family] || typed[family] == "" {
			t.Errorf("sample %q appears before its # HELP/# TYPE lines", line)
		}
		if !strings.HasPrefix(name, "mod_stage_latency_seconds") {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("sample %q: bad value: %v", line, err)
			}
			continue
		}
		// Histogram series: group by the stage/strategy label pair.
		key := labels
		suffix := strings.TrimPrefix(name, "mod_stage_latency_seconds")
		if suffix == "_bucket" {
			le := labels[strings.Index(labels, `le="`)+4:]
			le = le[:strings.IndexByte(le, '"')]
			key = strings.Replace(labels, `,le="`+le+`"`, "", 1)
			ub := 0.0
			if le == "+Inf" {
				ub = 1e300
			} else {
				var err error
				if ub, err = strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("bucket %q: bad le: %v", line, err)
				}
			}
			c, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket %q: bad count: %v", line, err)
			}
			h := hists[key]
			if h == nil {
				h = &hist{}
				hists[key] = h
			}
			h.buckets = append(h.buckets, ub)
			h.counts = append(h.counts, c)
			continue
		}
		h := hists[key]
		if h == nil {
			h = &hist{}
			hists[key] = h
		}
		switch suffix {
		case "_sum":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				t.Fatalf("sum %q: %v", line, err)
			}
			h.sum, h.hasSum = f, true
		case "_count":
			c, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("count %q: %v", line, err)
			}
			h.count, h.hasCnt = c, true
		default:
			t.Fatalf("unexpected histogram series %q", line)
		}
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
	if typed["mod_stage_latency_seconds"] != "histogram" || typed["mod_requests_total"] != "counter" || typed["mod_shard_queue_depth"] != "gauge" {
		t.Errorf("metric types = %v, want histogram/counter/gauge families", typed)
	}
	if len(hists) == 0 {
		t.Fatal("no stage histograms exposed despite MeterStages")
	}
	sawRespond := false
	for key, h := range hists {
		if strings.Contains(key, `stage="respond"`) {
			sawRespond = true
		}
		if !h.hasSum || !h.hasCnt {
			t.Errorf("%s: missing _sum or _count", key)
		}
		if len(h.buckets) == 0 {
			t.Errorf("%s: no buckets", key)
			continue
		}
		for i := 1; i < len(h.counts); i++ {
			if h.counts[i] < h.counts[i-1] {
				t.Errorf("%s: bucket counts not monotone at %d: %v", key, i, h.counts)
			}
			if h.buckets[i] <= h.buckets[i-1] {
				t.Errorf("%s: bucket bounds not increasing at %d", key, i)
			}
		}
		if last := h.counts[len(h.counts)-1]; last != h.count {
			t.Errorf("%s: +Inf bucket %d != _count %d", key, last, h.count)
		}
		if h.count > 0 && h.sum < 0 {
			t.Errorf("%s: negative _sum %g", key, h.sum)
		}
	}
	if !sawRespond {
		t.Error("no respond-stage histogram after an HTTP submit")
	}
}

// TestMetricsEquivalence pins that stage metering is observation only:
// the same deterministic trace drained with metering on and off yields
// bit-identical per-object cost totals and server accounting.
func TestMetricsEquivalence(t *testing.T) {
	cat := multiobject.ZipfCatalog(6, 1.0, 0.125, 1.0)
	cat[1].Strategy = "batching"
	cat[4].Strategy = "batching"
	reqs, err := serve.GenerateRequests(cat, serve.LoadConfig{
		Horizon: 6, MeanInterArrival: 0.05, Kind: serve.PoissonArrivals, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(meter bool) *serve.DrainResult {
		var tick atomic.Int64
		cfg := serve.Config{Catalog: cat, Shards: 2, EpochSlots: 16, MeterStages: meter}
		if meter {
			cfg.NowNanos = func() int64 { return tick.Add(977) }
		}
		s, err := serve.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for _, r := range reqs {
			if _, err := s.Submit(r); err != nil {
				t.Fatal(err)
			}
		}
		dr, err := s.Drain(6)
		if err != nil {
			t.Fatal(err)
		}
		return dr
	}
	on, off := run(true), run(false)
	if len(on.Objects) != len(off.Objects) {
		t.Fatalf("object counts differ: %d vs %d", len(on.Objects), len(off.Objects))
	}
	for i := range on.Objects {
		a, b := on.Objects[i], off.Objects[i]
		if a.Cost != b.Cost || a.BusyTime != b.BusyTime || a.Streams != b.Streams ||
			a.Clients != b.Clients || a.SlotUnits != b.SlotUnits || a.Arrivals != b.Arrivals {
			t.Errorf("object %s: metered run diverges from unmetered:\non  %+v\noff %+v", a.Name, a, b)
		}
	}
	if on.Usage.Total() != off.Usage.Total() || on.Usage.Peak() != off.Usage.Peak() {
		t.Errorf("usage diverges: on (%g, %d) off (%g, %d)",
			on.Usage.Total(), on.Usage.Peak(), off.Usage.Total(), off.Usage.Peak())
	}
	if on.Stats.Admitted != off.Stats.Admitted || on.Stats.Degraded != off.Stats.Degraded || on.Stats.Rejected != off.Stats.Rejected {
		t.Errorf("admission counters diverge: on %+v off %+v", on.Stats, off.Stats)
	}
}
