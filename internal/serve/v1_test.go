package serve_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/serve"
)

// fetch performs one request and returns status, headers, and body.
func fetch(t *testing.T, method, url, body string) (int, http.Header, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(b)
}

// TestV1LegacyRouteParity pins the satellite requirement: every legacy
// unversioned route is a thin alias of its /v1 successor — same status,
// byte-identical body — and the legacy variant (and only it) advertises its
// deprecation and successor.
func TestV1LegacyRouteParity(t *testing.T) {
	// Mutating routes are compared across two identically-configured
	// servers replaying the same virtual-time request, which is
	// deterministic; read-only routes are compared on one server.
	newServer := func() *httptest.Server {
		s, err := serve.New(serve.Config{Catalog: multiobject.ZipfCatalog(4, 1.0, 0.1, 1.0), Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(serve.Handler(s))
		t.Cleanup(func() { hs.Close(); s.Close() })
		return hs
	}
	hsV1, hsLegacy := newServer(), newServer()
	const reqBody = `{"object":"object-01","t":0.42}`

	cases := []struct {
		method, path, body string
		splitServers       bool // POST mutates: replay against separate servers
	}{
		{"POST", "/request", reqBody, true},
		{"GET", "/stats", "", false},
		{"GET", "/objects/object-01", "", false},
		{"GET", "/objects/none", "", false},
		{"GET", "/healthz", "", false},
		// /metrics is intentionally absent: its /v1 route serves the
		// Prometheus text format while the legacy alias keeps the
		// original JSON map — TestMetricsRouteSplit pins both.
	}
	for _, tc := range cases {
		legacyHost := hsV1
		if tc.splitServers {
			legacyHost = hsLegacy
		}
		v1Status, v1Hdr, v1Body := fetch(t, tc.method, hsV1.URL+serve.APIVersion+tc.path, tc.body)
		lgStatus, lgHdr, lgBody := fetch(t, tc.method, legacyHost.URL+tc.path, tc.body)
		if v1Status != lgStatus {
			t.Errorf("%s %s: status v1=%d legacy=%d", tc.method, tc.path, v1Status, lgStatus)
		}
		if v1Body != lgBody {
			t.Errorf("%s %s: bodies differ\nv1:     %s\nlegacy: %s", tc.method, tc.path, v1Body, lgBody)
		}
		if got := lgHdr.Get("Deprecation"); got != "true" {
			t.Errorf("%s %s: legacy Deprecation header = %q, want \"true\"", tc.method, tc.path, got)
		}
		if link := lgHdr.Get("Link"); !strings.Contains(link, serve.APIVersion) || !strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("%s %s: legacy Link header = %q, want /v1 successor-version", tc.method, tc.path, link)
		}
		if got := v1Hdr.Get("Deprecation"); got != "" {
			t.Errorf("%s %s: /v1 route carries Deprecation header %q", tc.method, tc.path, got)
		}
	}
}

// TestMetricsRouteSplit pins the one legacy route that is not a
// byte-identical alias: GET /v1/metrics serves the Prometheus text
// exposition, while the unversioned /metrics keeps the original flat
// JSON counter map for pre-/v1 pollers — still marked deprecated with a
// successor Link to /v1/metrics.
func TestMetricsRouteSplit(t *testing.T) {
	s, err := serve.New(serve.Config{Catalog: multiobject.ZipfCatalog(4, 1.0, 0.1, 1.0), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serve.Handler(s))
	defer func() { hs.Close(); s.Close() }()
	if _, err := s.Submit(serve.Request{Object: "object-01", T: 0.5}); err != nil {
		t.Fatal(err)
	}

	status, hdr, body := fetch(t, "GET", hs.URL+serve.APIVersion+"/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics status = %d, want 200", status)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/v1/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	if hdr.Get("Deprecation") != "" {
		t.Errorf("/v1/metrics carries a Deprecation header")
	}
	if !strings.Contains(body, "# TYPE mod_requests_total counter") ||
		!strings.Contains(body, `mod_requests_total{outcome="admitted"} 1`) {
		t.Errorf("/v1/metrics is not Prometheus text:\n%s", body)
	}

	lgStatus, lgHdr, lgBody := fetch(t, "GET", hs.URL+"/metrics", "")
	if lgStatus != http.StatusOK {
		t.Fatalf("GET /metrics status = %d, want 200", lgStatus)
	}
	if ct := lgHdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("legacy /metrics Content-Type = %q, want application/json", ct)
	}
	if lgHdr.Get("Deprecation") != "true" {
		t.Errorf("legacy /metrics Deprecation header = %q, want \"true\"", lgHdr.Get("Deprecation"))
	}
	if link := lgHdr.Get("Link"); !strings.Contains(link, serve.APIVersion+"/metrics") || !strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("legacy /metrics Link header = %q, want /v1/metrics successor-version", link)
	}
	var m map[string]int64
	if err := json.Unmarshal([]byte(lgBody), &m); err != nil {
		t.Fatalf("legacy /metrics body is not the JSON counter map: %v\n%s", err, lgBody)
	}
	if m["serve.admitted"] != 1 {
		t.Errorf("legacy serve.admitted = %d, want 1", m["serve.admitted"])
	}
}

// TestV1ObjectNotFoundJSON pins the unknown-object contract of
// /v1/objects/{name}: a uniform 404 with a JSON {"error": ...} body on
// every shard layout and for every unknown name — never a 200 with an
// empty body, and never a plain-text error.  The legacy alias must return
// the byte-identical body.
func TestV1ObjectNotFoundJSON(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		s, err := serve.New(serve.Config{Catalog: multiobject.ZipfCatalog(5, 1.0, 0.1, 1.0), Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(serve.Handler(s))
		for _, name := range []string{"none", "object-99", "object-01x", "zzz"} {
			status, hdr, body := fetch(t, "GET", hs.URL+serve.APIVersion+"/objects/"+name, "")
			if status != http.StatusNotFound {
				t.Errorf("shards=%d GET /v1/objects/%s status = %d, want 404", shards, name, status)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("shards=%d /v1/objects/%s Content-Type = %q, want application/json", shards, name, ct)
			}
			var errBody struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &errBody); err != nil {
				t.Errorf("shards=%d /v1/objects/%s body is not a JSON error object: %v\n%s", shards, name, err, body)
			} else if errBody.Error == "" {
				t.Errorf("shards=%d /v1/objects/%s: empty error message in %s", shards, name, body)
			}
			// The legacy alias answers byte-identically.
			lgStatus, _, lgBody := fetch(t, "GET", hs.URL+"/objects/"+name, "")
			if lgStatus != status || lgBody != body {
				t.Errorf("shards=%d legacy /objects/%s differs: status %d body %q", shards, name, lgStatus, lgBody)
			}
		}
		// Known objects still answer 200 with their stats on every shard.
		for _, name := range []string{"object-01", "object-02", "object-03", "object-04", "object-05"} {
			status, _, body := fetch(t, "GET", hs.URL+serve.APIVersion+"/objects/"+name, "")
			if status != http.StatusOK || body == "" {
				t.Errorf("shards=%d GET /v1/objects/%s = %d (%d bytes), want 200 with stats", shards, name, status, len(body))
			}
		}
		hs.Close()
		s.Close()
	}
}

// TestV1BatchAdmission exercises the new /v1/requests endpoint: an array of
// requests is admitted in order through the same path as single requests,
// per-item failures don't fail the batch, and the resulting tickets are
// identical to sequential single-request submissions on an identical
// server.
func TestV1BatchAdmission(t *testing.T) {
	cat := multiobject.ZipfCatalog(4, 1.0, 0.1, 1.0)
	mk := func() *httptest.Server {
		s, err := serve.New(serve.Config{Catalog: cat, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(serve.Handler(s))
		t.Cleanup(func() { hs.Close(); s.Close() })
		return hs
	}
	batchHost, singleHost := mk(), mk()

	reqs := []serve.Request{
		{Object: "object-01", T: 0.1},
		{Object: "object-02", T: 0.2},
		{Object: "no-such-object", T: 0.3},
		{Object: "object-01", T: 0.4},
	}
	body, _ := json.Marshal(reqs)
	status, _, out := fetch(t, "POST", batchHost.URL+serve.APIVersion+"/requests", string(body))
	if status != http.StatusOK {
		t.Fatalf("batch status = %d, want 200 (body %s)", status, out)
	}
	var results []serve.BatchResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("batch response: %v\n%s", err, out)
	}
	if len(results) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(results), len(reqs))
	}
	for i, req := range reqs {
		single, _ := json.Marshal(req)
		st, _, one := fetch(t, "POST", singleHost.URL+serve.APIVersion+"/request", string(single))
		if req.Object == "no-such-object" {
			if results[i].Error == "" || results[i].Ticket != nil {
				t.Errorf("batch[%d]: want per-item error for unknown object, got %+v", i, results[i])
			}
			if st != http.StatusNotFound {
				t.Errorf("single unknown object status = %d, want 404", st)
			}
			continue
		}
		if results[i].Ticket == nil {
			t.Fatalf("batch[%d]: missing ticket: %+v", i, results[i])
		}
		got, _ := json.Marshal(results[i].Ticket)
		var want serve.Ticket
		if err := json.Unmarshal([]byte(one), &want); err != nil {
			t.Fatalf("single ticket: %v", err)
		}
		wantJSON, _ := json.Marshal(want)
		if string(got) != string(wantJSON) {
			t.Errorf("batch[%d] ticket = %s, want %s (must equal the single-request path)", i, got, wantJSON)
		}
	}

	// Malformed bodies and wrong methods are rejected up front.
	if st, _, _ := fetch(t, "POST", batchHost.URL+serve.APIVersion+"/requests", `{"object":"x"}`); st != http.StatusBadRequest {
		t.Errorf("non-array batch body status = %d, want 400", st)
	}
	if st, _, _ := fetch(t, "GET", batchHost.URL+serve.APIVersion+"/requests", ""); st != http.StatusMethodNotAllowed {
		t.Errorf("GET batch status = %d, want 405", st)
	}
	// The batch endpoint is /v1-only: no deprecated alias exists.
	if st, _, _ := fetch(t, "POST", batchHost.URL+"/requests", string(body)); st != http.StatusNotFound {
		t.Errorf("legacy /requests status = %d, want 404 (new endpoints are versioned only)", st)
	}
	// Oversized batches are refused before any request is admitted.
	huge := make([]serve.Request, 10001)
	for i := range huge {
		huge[i] = serve.Request{Object: "object-01", T: float64(i)}
	}
	hugeBody, _ := json.Marshal(huge)
	if st, _, _ := fetch(t, "POST", batchHost.URL+serve.APIVersion+"/requests", string(hugeBody)); st != http.StatusRequestEntityTooLarge {
		t.Errorf("10001-entry batch status = %d, want 413", st)
	}
}
