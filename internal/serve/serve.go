// Package serve is the live serving layer: a long-running, sharded
// Media-on-Demand admission server over the incremental scheduler core of
// internal/live, so every planner family in the repository — not just the
// paper's on-line forest — serves live traffic.
//
// Everything else in the repository is batch — traces are generated up
// front, schedules are built whole, and results are summarized after the
// fact.  This package serves requests as they arrive:
//
//   - A catalog router hashes object names onto a fixed set of scheduler
//     shards, so a Zipf catalog of thousands of objects spreads across CPUs.
//   - Each shard runs a single-goroutine event loop that owns one
//     live.Incremental scheduler per object; all mutation happens inside
//     the loop, fed by channels, so no per-object locks exist anywhere.
//   - Per-object strategy routing: each catalog entry picks its planner
//     family by public registry name (Object.Strategy, falling back to
//     Config.DefaultStrategy).  The "online" strategy is the paper's
//     natively incremental oblivious plan — merge groups finalized the
//     moment they complete, trailing group truncated at drain exactly like
//     the batch horizon, reproducing sim.RunWorkload bit for bit.  Every
//     other registered planner (offline, dyadic, batching, hybrid, ...)
//     serves through epoch-based replanning: the batch planner re-runs
//     over each epoch's arrivals at the boundary, so a drain with
//     Config.EpochSlots covering the horizon reproduces the batch Plan()
//     bit for bit — the strategy equivalence tests pin both.
//   - Time advances in slots of each object's guaranteed start-up delay,
//     driven either by virtual request timestamps (deterministic replay,
//     used by the load driver and the equivalence tests) or by the wall
//     clock (the HTTP API stamps requests that carry no timestamp).
//   - An admission controller watches the live channel gauge.  When a
//     configured channel cap would be exceeded it degrades the offered
//     delay of the requested object (the Section 5 trade: scale the delay
//     up, never decline) or, past a maximum scale, rejects — with counters
//     for every outcome.  Degradation is strategy-agnostic: it drains the
//     object's scheduler and splices in a fresh one at the scaled delay.
//
// The HTTP front end lives in http.go, the closed-loop load generator in
// driver.go, and cmd/modserve wires both into a binary.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/live"
	"repro/internal/multiobject"
	"repro/internal/stats"
	"repro/internal/store"
)

// Config describes a live admission server.
type Config struct {
	// Catalog is the set of media objects served.  Object delays are the
	// offered guaranteed start-up delays at scale 1.
	Catalog multiobject.Catalog
	// Shards is the number of scheduler shards (event loops).  <= 0 selects
	// GOMAXPROCS; the count is clamped to the catalog size.
	Shards int
	// MaxChannels caps the number of simultaneously transmitting streams
	// across all shards as seen by the live gauge; 0 means unlimited.  When
	// a request would be admitted while the gauge is at or above the cap,
	// the admission controller degrades the object's delay by DegradeStep
	// (up to MaxDelayScale) instead of declining, and rejects beyond that.
	MaxChannels int
	// DegradeStep is the factor by which an object's delay is scaled on
	// degradation (default 1.25, the multiobject.FitDelays step).
	DegradeStep float64
	// MaxDelayScale bounds the cumulative delay scale per object before the
	// controller starts rejecting (default 8).
	MaxDelayScale float64
	// QueueDepth is the per-shard request channel buffer (default 256).
	QueueDepth int
	// MaxSlotJump bounds how many slots (measured in a shard's smallest
	// object delay) a single request may advance the virtual clock
	// (default 2^22).  The oblivious plan starts a stream every slot, so
	// without a bound one request stamped absurdly far in the future would
	// wedge its shard's event loop starting streams; such requests are
	// rejected instead.  Wall-clock deployments that can sit idle longer
	// than MaxSlotJump small-delay slots should raise this.
	MaxSlotJump int64
	// TimeUnit is the wall-clock duration of one catalog time unit, used
	// only to stamp HTTP requests that carry no explicit timestamp
	// (default time.Second).
	TimeUnit time.Duration

	// DefaultStrategy is the planner registry name objects without their
	// own Object.Strategy are served with (default "online", the paper's
	// on-line delay-guaranteed forest).  Every name in LivePlanners() is
	// accepted; unknown names fail New with ErrBadConfig.
	DefaultStrategy string
	// EpochSlots is the replanning period of epoch-based strategies, in
	// slots of each object's delay (default 512): arrivals are collected
	// for an epoch and the object's batch planner is re-run over them when
	// the boundary passes, splicing the new plan in at the boundary.  Set
	// it to at least the run's horizon to plan whole traces in one epoch
	// (the batch-equivalent configuration the equivalence tests pin).  The
	// native "online" strategy ignores it.
	EpochSlots int
	// PlanWorkers sizes the off-line DP worker pool of each epoch replan
	// (default 1, serial — shards already run in parallel); results are
	// bit-identical for any count.
	PlanWorkers int
	// ConstantRateTuning selects the Section 4.2 constant-rate dyadic
	// parameters for the dyadic/hybrid strategies; the default (false) is
	// the Poisson golden-ratio tuning, matching the facade's WithPoisson
	// default.
	ConstantRateTuning bool
	// ColdReplanning disables warm-start epoch replanning for every
	// object: epoch strategies then re-run their batch planner from
	// scratch at each close instead of absorbing arrivals into resumable
	// DP state mid-epoch.  Schedules and accounting are bit-identical
	// either way; the flag exists for benchmarking and bisection.
	ColdReplanning bool
	// MeterReplanNanos injects a monotonic wall clock into each object's
	// scheduler so ObjectStats.Replan reports replan latency.  Off by
	// default, keeping deterministic virtual-time replays clock-free.
	MeterReplanNanos bool
	// MeterStages decomposes every admission into per-stage timings —
	// queue wait (submit to shard dequeue), plan (clock advance + gauge
	// retirement + admission controller), replan (the requested object's
	// epoch-DP share, read off its ReplanStats delta) — observed on the
	// shard's own goroutine into preallocated fixed-bucket log-scale
	// histograms, one set per shard per strategy (merged at Metrics
	// time), plus a respond stage recorded by the HTTP layer around the
	// ticket write.  The admit hot path stays allocation-free.  Stage
	// nanos also appear on each Ticket.  Off by default, keeping
	// deterministic virtual-time replays clock-free; cost totals are
	// bit-identical either way (the metrics equivalence test pins this).
	MeterStages bool
	// PressureHighWater enables queue-depth backpressure: when a shard
	// has this many requests submitted but not yet dequeued by its event
	// loop, further Submit/SubmitBatch calls fail fast with a
	// *PressureError (wrapping ErrPressure) carrying a Retry-After hint
	// derived from the shard's observed drain rate, instead of blocking
	// on the channel.  The HTTP layer turns it into 429 + Retry-After.
	// 0 (the default) disables backpressure: submits block, the
	// pre-backpressure behavior.  Must be at most QueueDepth to be
	// meaningful (reservations beyond the channel buffer would block
	// anyway).
	PressureHighWater int
	// NowNanos overrides the monotonic clock used for replan metering and
	// stage timing (nanoseconds, any fixed origin).  nil selects
	// nanoseconds since the server started.  Injecting a fake clock keeps
	// tests deterministic.
	NowNanos func() int64

	// Store enables durability: every admitted request is appended to a
	// per-shard write-ahead log before its ticket is acknowledged, and
	// each shard snapshots its full scheduler state at epoch boundaries
	// (see SnapshotEpochs).  nil (the default) disables durability
	// entirely — no extra goroutines, no hot-path changes.
	Store store.Store
	// SnapshotEpochs is the snapshot cadence in replanning epochs: a
	// shard snapshots after its virtual clock advances SnapshotEpochs ×
	// EpochSlots slots of its smallest object delay (default 1).  Only
	// meaningful with Store set.
	SnapshotEpochs int
	// SyncMode sets the commit level of each WAL group commit's Flush:
	// store.SyncOS (the zero value, default) hands buffered records to
	// the operating system before acknowledging — the log survives
	// SIGKILL; store.SyncFull additionally fsyncs, surviving power loss
	// at one fsync per group commit rather than per request;
	// store.SyncNone defers everything to the store's own buffering —
	// acknowledged records can be lost on crash, but the on-disk log is
	// still always a gap-free prefix of admission order.  Only meaningful
	// with Store set.
	SyncMode store.SyncMode
	// GroupCommitMaxDelay holds a group commit open for stragglers after
	// the WAL channel drains, bounding the extra latency a submitter can
	// pay to share a flush.  The default 0 commits as soon as the channel
	// is empty — coalescing then comes only from natural queueing, which
	// already collapses N concurrent submitters into ~1 flush under
	// load.  Set a small delay (tens of microseconds) to trade ack
	// latency for fewer fsyncs at SyncFull.
	GroupCommitMaxDelay time.Duration
	// FlushPerAck restores the pre-group-commit durable pipeline end to
	// end: one store Flush per acknowledgement, record and
	// acknowledgement as separate WAL messages, a freshly allocated
	// submit message and reply channel per request, and a shard loop that
	// takes one select per message instead of burst-draining its queue.
	// The durability guarantee is identical; the flag exists for
	// benchmarking and bisection (it is the baseline the durability table
	// in README.md compares against).
	FlushPerAck bool
	// Restore makes New load each shard's latest snapshot from Store and
	// replay its WAL tail through the ordinary admit path before serving,
	// recovering the pre-crash state exactly (ticket IDs continue past
	// the WAL high-water mark; totals converge bit for bit).  Corrupted
	// snapshot or WAL bytes fail New with store.ErrCorruptSnapshot.
	Restore bool
	// OwnStore transfers Store's ownership to the server: Close also
	// closes the store.  The facade sets it for stores it opened itself.
	OwnStore bool

	// Context is the base context of the server's shard schedulers (the
	// net/http BaseContext idiom): cancelling it aborts in-flight epoch
	// replan DPs.  nil means Background.  Close cancels the derived
	// per-server context either way.
	Context context.Context
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Shards <= 0 {
		out.Shards = runtime.GOMAXPROCS(0)
	}
	if out.Shards > len(out.Catalog) {
		out.Shards = len(out.Catalog)
	}
	if out.Shards < 1 {
		out.Shards = 1
	}
	if out.DegradeStep <= 1 {
		out.DegradeStep = 1.25
	}
	if out.MaxDelayScale < 1 {
		out.MaxDelayScale = 8
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.MaxSlotJump <= 0 {
		out.MaxSlotJump = 1 << 22
	}
	if out.TimeUnit <= 0 {
		out.TimeUnit = time.Second
	}
	if out.DefaultStrategy == "" {
		out.DefaultStrategy = "online"
	}
	if out.EpochSlots <= 0 {
		out.EpochSlots = 512
	}
	if out.PlanWorkers <= 0 {
		out.PlanWorkers = 1
	}
	if out.SnapshotEpochs <= 0 {
		out.SnapshotEpochs = 1
	}
	return out
}

// LivePlanners returns the sorted planner registry names that can serve
// live traffic — valid values for Config.DefaultStrategy and
// Object.Strategy.
func LivePlanners() []string {
	return live.Planners()
}

// Decision is the admission controller's outcome for one request.
type Decision string

const (
	// Admitted: served at the object's current delay.
	Admitted Decision = "admitted"
	// Degraded: served, but the object's delay was scaled up first because
	// the live channel gauge was at the configured cap.
	Degraded Decision = "degraded"
	// Rejected: the gauge was at the cap and the object is already at the
	// maximum delay scale.
	Rejected Decision = "rejected"
)

// Request is one client request for an object.
type Request struct {
	// Object is the catalog name of the requested object.
	Object string `json:"object"`
	// T is the virtual arrival time in catalog time units.  The HTTP layer
	// stamps wall-clock time (in Config.TimeUnit units since the server
	// started) when T is negative or absent.
	T float64 `json:"t"`
}

// Ticket is the server's answer to a request.
type Ticket struct {
	// ID is the ticket's server-unique identifier, dense per shard and
	// disjoint across shards (shard-local sequence s on shard i of n
	// yields s*n + i + 1).  It survives restarts: a restored server
	// resumes each shard's sequence past the WAL high-water mark, so no
	// ID is ever reissued.  0 means unassigned (requests for unknown
	// objects, which consume no sequence number).
	ID       int64    `json:"id,omitempty"`
	Object   string   `json:"object"`
	Decision Decision `json:"decision"`
	// Strategy is the planner family serving the object.
	Strategy string `json:"strategy"`
	// T is the request time after the shard's monotone clamp.
	T float64 `json:"t"`
	// Epoch identifies the object's delay epoch (it increments on each
	// degradation); Slot and Program are epoch-relative.
	Epoch int `json:"epoch"`
	// Slot is the arrival's service slot within the epoch: the arrival
	// slot for slotted strategies, the client ordinal for
	// immediate-service ones (dyadic, offline, unicast).
	Slot int64 `json:"slot"`
	// Delay is the effective guaranteed start-up delay (the slot length).
	Delay float64 `json:"delay"`
	// StartAt is the absolute time at which playback starts: the end of
	// the arrival slot for batched strategies (at most Delay after T), the
	// arrival itself for immediate-service ones.
	StartAt float64 `json:"start_at"`
	// Program is the receiving program: the epoch-relative start slots of
	// the streams to listen to, from the root stream down to the client's
	// own.  Only the "online" strategy can answer it at admission time
	// (its O(1) table lookup); epoch-replanned strategies decide merges at
	// epoch close.  Empty for rejected requests.
	Program []int64 `json:"program,omitempty"`
	// QueueNS/PlanNS/ReplanNS are the per-stage timings of this admission
	// in nanoseconds — queue wait, plan, and the requested object's
	// epoch-replan share — populated only when Config.MeterStages is set.
	QueueNS  int64 `json:"queue_ns,omitempty"`
	PlanNS   int64 `json:"plan_ns,omitempty"`
	ReplanNS int64 `json:"replan_ns,omitempty"`
}

// ObjectStats is the live accounting snapshot for one object.
type ObjectStats struct {
	Name string `json:"name"`
	// Strategy is the planner family serving the object.
	Strategy string  `json:"strategy"`
	Shard    int     `json:"shard"`
	L        int64   `json:"L"`
	Delay    float64 `json:"delay"`
	Scale    float64 `json:"scale"`
	Epoch    int     `json:"epoch"`
	// Arrivals counts requests routed to the object (admitted or degraded);
	// Clients counts distinct service instants — occupied slots for
	// slotted strategies, distinct (for unicast: all) arrival times for
	// immediate-service ones.
	Arrivals int64 `json:"arrivals"`
	Clients  int64 `json:"clients"`
	Rejected int64 `json:"rejected"`
	// Streams counts streams started, including the "online" strategy's
	// current (unfinalized) merge group; FinalizedStreams covers only
	// streams whose lengths are final.  Epoch-replanned strategies open
	// their streams at epoch close, so both counters advance then.
	Streams          int64 `json:"streams"`
	FinalizedStreams int64 `json:"finalized_streams"`
	// SlotUnits is the finalized bandwidth in slot units of the object's
	// epochs (exactly sim.Result.TotalBandwidth after a drain with no
	// degradations); only the slot-metered "online" strategy reports it.
	SlotUnits int64 `json:"slot_units"`
	// BusyTime is the finalized bandwidth in catalog time units.
	BusyTime float64 `json:"busy_time"`
	// Cost is the finalized bandwidth in complete media streams — after a
	// whole-horizon drain, bit-identical to the object's batch Plan cost.
	Cost float64 `json:"cost"`
	// ReplanFailures counts epoch replans that fell back to unicast
	// streams (never under normal operation).
	ReplanFailures int64 `json:"replan_failures,omitempty"`
	// Replan summarizes the object's epoch replans: how many closes were
	// answered from warm per-epoch state, the DP cells reused versus
	// recomputed, and replan wall time (metered only when
	// Config.MeterReplanNanos is set).
	Replan ReplanStats `json:"replan"`
}

// ReplanStats is the per-object epoch replanning summary (see
// live.ReplanStats for field semantics).
type ReplanStats = live.ReplanStats

// ShardStats is the live queue accounting of one scheduler shard: the
// observed channel occupancy backing the backpressure signal, not just
// the configured capacity.
type ShardStats struct {
	Shard int `json:"shard"`
	// QueueDepth is the current occupancy: requests submitted (reserved)
	// but not yet dequeued by the shard's event loop.
	QueueDepth int64 `json:"queue_depth"`
	// QueueCap is the configured channel buffer (Config.QueueDepth).
	QueueCap int `json:"queue_cap"`
	// HighWater is the maximum occupancy ever observed on the shard.
	HighWater int64 `json:"high_water"`
	// Dequeued counts requests the shard's loop has taken off its queue.
	Dequeued int64 `json:"dequeued"`
	// PressureHighWater is the configured backpressure threshold
	// (Config.PressureHighWater; 0 = backpressure disabled).
	PressureHighWater int `json:"pressure_high_water,omitempty"`
}

// Stats is a server-wide snapshot.
type Stats struct {
	Admitted int64 `json:"admitted"`
	Degraded int64 `json:"degraded"`
	Rejected int64 `json:"rejected"`
	// RejectedPressure counts submits refused by queue-depth backpressure
	// (Config.PressureHighWater) before reaching any shard; they are not
	// included in Rejected, which counts admission-controller rejections.
	RejectedPressure int64 `json:"rejected_pressure"`
	Unknown          int64 `json:"unknown"`
	LiveChannels     int64 `json:"live_channels"`
	// WALFailures counts durability-store operations (append, flush,
	// snapshot) that failed.  The server favors availability: failed
	// writes are counted and the request still acknowledged, so nonzero
	// means the durable log is incomplete, not that requests were lost.
	WALFailures int64 `json:"wal_failures,omitempty"`
	// WALFlushes counts durability-store Flush calls — group commits.
	// Under concurrent load it grows much slower than Admitted (many
	// acknowledgements share one flush); the ratio is the group-commit
	// coalescing factor.
	WALFlushes int64   `json:"wal_flushes,omitempty"`
	Peak       int     `json:"peak"`
	BusyTime   float64 `json:"busy_time"`
	// Strategies counts the catalog's objects by serving strategy.
	Strategies map[string]int64 `json:"strategies,omitempty"`
	// Shards reports each shard's observed queue occupancy and high-water
	// mark (the backpressure signal), in shard order.
	Shards  []ShardStats  `json:"shards"`
	Objects []ObjectStats `json:"objects"`
}

// Server is the live admission server: a catalog router in front of a set
// of scheduler shards.
type Server struct {
	cfg    Config
	shards []*shard
	byName map[string]route

	start time.Time
	quit  chan struct{}
	wg    sync.WaitGroup

	// ctx is derived from Config.Context at New; Close cancels it,
	// aborting any epoch replan DP still running on a shard loop.
	ctx    context.Context
	cancel context.CancelFunc

	// gauge is the live channel count: streams started whose (estimated)
	// end lies in the future.  Shard loops maintain it; the admission
	// controller reads it.
	gauge    atomic.Int64
	admitted atomic.Int64
	degraded atomic.Int64
	rejected atomic.Int64
	unknown  atomic.Int64
	// rejectedPressure counts submits refused by queue-depth backpressure
	// before reaching any shard.
	rejectedPressure atomic.Int64
	// walFailures counts failed durability-store operations; the WAL
	// writers increment it instead of failing admission.
	walFailures atomic.Int64
	// walFlushes counts store Flush calls (group commits) across all
	// shards' WAL writers.
	walFlushes atomic.Int64
	// walEnc holds each shard writer's pooled snapshot Encoder (nil
	// without a store), reset and reused per snapshot; only that shard's
	// writer goroutine touches its slot.
	walEnc []*store.Encoder
	// walRepair holds one flag per shard (nil without a store): set by
	// the shard's WAL writer when an append fails, leaving a sequence
	// gap in the log, and consumed by the shard loop, which forces an
	// immediate repair snapshot to re-establish a consistent base.
	walRepair []atomic.Bool

	// walWG tracks the per-shard WAL writer goroutines; Close waits for
	// them after the shard loops (their only senders) have exited.
	walWG sync.WaitGroup

	// nowNanos is the monotonic clock behind replan metering and stage
	// timing: Config.NowNanos, defaulting to nanoseconds since start.
	nowNanos func() int64

	// queues holds per-shard occupancy accounting: submitters reserve a
	// slot before the channel send, shard loops release it on dequeue.
	// It lives on the Server (not the shard) because both sides touch it.
	queues []shardQueue

	// submitPool recycles the per-Submit message struct — which owns its
	// reply channel — keeping the steady-state submit path free of
	// per-request heap traffic (boxing a submitMsg value into the shard's
	// any-typed channel allocates; a pooled pointer does not).  A message
	// is pooled only by the submitter after its ticket was received, so a
	// pooled message's channel is always empty; a Submit abandoned by
	// shutdown leaves message and channel to the collector.
	submitPool sync.Pool

	// stratNames/stratIdx index the catalog's distinct strategies, fixed
	// after New; shards size their per-strategy stage histograms by it.
	stratNames []string
	stratIdx   map[string]int
	// respond holds the respond-stage histograms (ticket to HTTP write),
	// one per strategy, recorded by HTTP handlers under respMu — the only
	// stage observed off the shard goroutines.
	respMu  sync.Mutex
	respond []stats.LogHistogram
}

// route is one catalog object's resolved destination: its shard and its
// loop-owned state.  Resolving both with a single map lookup at the
// router lets Submit hand the shard a pre-resolved object pointer, so
// the admit path never repeats the name lookup.  Submitters only carry
// the pointer; the shard loop alone dereferences it.
type route struct {
	sh *shard
	st *objectState
}

// shardQueue is one shard's queue-occupancy accounting.
type shardQueue struct {
	// enqueued counts reservations (submit side); dequeued counts
	// requests the shard loop has taken off the queue.  The current
	// occupancy is their difference — splitting the two monotone
	// counters this way leaves the loop's dequeue accounting at ONE
	// atomic add per request where a direct depth gauge needs two.
	enqueued atomic.Int64
	// high is the maximum depth ever observed.
	high atomic.Int64
	// dequeued counts requests the shard loop has taken off the queue.
	dequeued atomic.Int64
}

// depth is the queue's current occupancy.  A stale dequeued read can
// only overestimate — conservative for backpressure.
func (q *shardQueue) depth() int64 {
	return q.enqueued.Load() - q.dequeued.Load()
}

// ErrPressure marks submits refused by queue-depth backpressure; classify
// with errors.Is, and errors.As against *PressureError for the details.
var ErrPressure = errors.New("serve: shard queue over high-water mark")

// PressureError is the backpressure rejection: the shard whose queue is
// over Config.PressureHighWater, its occupancy at the refusal, and a
// retry hint derived from the shard's observed drain rate.
type PressureError struct {
	Shard int
	Depth int64
	// RetryAfter estimates when the queue will have drained below the
	// high-water mark: depth times the shard's mean per-request drain
	// time so far, clamped to [1s, 30s] (1s when no drain history
	// exists).  The HTTP layer sends it as a Retry-After header.
	RetryAfter time.Duration
}

func (e *PressureError) Error() string {
	return fmt.Sprintf("%v: shard %d at depth %d, retry after %v",
		ErrPressure, e.Shard, e.Depth, e.RetryAfter)
}

func (e *PressureError) Unwrap() error { return ErrPressure }

// strategyIndex interns a strategy name (setup only, before loops start).
func (s *Server) strategyIndex(name string) int {
	if i, ok := s.stratIdx[name]; ok {
		return i
	}
	i := len(s.stratNames)
	s.stratIdx[name] = i
	s.stratNames = append(s.stratNames, name)
	return i
}

// reserve claims n queue slots on shard id, refusing with a
// *PressureError when backpressure is on and the occupancy would exceed
// the high-water mark.  The shard loop releases slots as it dequeues.
// Reservation order is the arbitration: concurrent submitters get
// distinct occupancy values, so exactly highWater of them proceed.
func (s *Server) reserve(id int, n int64) error {
	q := &s.queues[id]
	depth := q.enqueued.Add(n) - q.dequeued.Load()
	if hw := int64(s.cfg.PressureHighWater); hw > 0 && depth > hw {
		q.enqueued.Add(-n)
		s.rejectedPressure.Add(n)
		return &PressureError{Shard: id, Depth: depth, RetryAfter: s.retryAfter(q, depth)}
	}
	for {
		h := q.high.Load()
		if depth <= h || q.high.CompareAndSwap(h, depth) {
			break
		}
	}
	return nil
}

// unreserve releases n slots after a failed channel send (server closed).
func (s *Server) unreserve(id int, n int64) {
	s.queues[id].enqueued.Add(-n)
}

// retryAfter estimates the time until shard q drains depth requests, from
// its lifetime mean per-request drain time, clamped to [1s, 30s].
func (s *Server) retryAfter(q *shardQueue, depth int64) time.Duration {
	d := time.Second
	if deq := q.dequeued.Load(); deq > 0 {
		if elapsed := s.nowNanos(); elapsed > 0 {
			d = time.Duration(depth * (elapsed / deq))
		}
	}
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// New builds a Server and starts its shard event loops.  Every object is
// served by its Object.Strategy (falling back to Config.DefaultStrategy,
// then "online"); a name without a live adapter fails with ErrBadConfig
// listing LivePlanners().
func New(cfg Config) (*Server, error) {
	if err := cfg.Catalog.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Catalog) == 0 {
		return nil, fmt.Errorf("%w: catalog is empty", ErrBadConfig)
	}
	cfg = cfg.withDefaults()
	base := cfg.Context
	if base == nil {
		//modlint:ignore ctxflow nil Config.Context means "never cancelled externally"; the one place the default is rooted
		base = context.Background()
	}
	s := newServerShell(cfg)
	s.ctx, s.cancel = context.WithCancel(base)
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(i, s)
	}
	for i, o := range cfg.Catalog {
		strategy := o.Strategy
		if strategy == "" {
			strategy = cfg.DefaultStrategy
		}
		sh := s.shards[shardIndex(o.Name, cfg.Shards)]
		if err := sh.addObject(o, i, strategy); err != nil {
			return nil, err
		}
		s.byName[o.Name] = route{sh: sh, st: sh.byName[o.Name]}
	}
	s.respond = make([]stats.LogHistogram, len(s.stratNames))
	if cfg.Store != nil {
		s.walRepair = make([]atomic.Bool, len(s.shards))
		s.walEnc = make([]*store.Encoder, len(s.shards))
		for _, sh := range s.shards {
			sh.walCh = make(chan walMsg, cfg.QueueDepth)
			sh.snapFree = make(chan *shardSnapshotState, 2)
			sh.snapEvery = float64(cfg.SnapshotEpochs*cfg.EpochSlots) * sh.minDelay
			if cfg.Restore {
				if err := sh.restore(); err != nil {
					s.cancel()
					return nil, err
				}
			}
			sh.nextSnap = sh.now + sh.snapEvery
		}
		// Writers start only after every shard restored, so a failed
		// restore leaves no goroutines behind.
		for _, sh := range s.shards {
			s.walWG.Add(1)
			go s.walWriter(sh)
		}
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	return s, nil
}

// newServerShell builds the Server value minus shards and context: the
// clock, queue accounting, and strategy index every code path (including
// the loop-less benchmark harnesses) relies on.
func newServerShell(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		byName:   make(map[string]route, len(cfg.Catalog)),
		start:    time.Now(),
		quit:     make(chan struct{}),
		queues:   make([]shardQueue, cfg.Shards),
		stratIdx: make(map[string]int, 2),
	}
	s.nowNanos = cfg.NowNanos
	if s.nowNanos == nil {
		s.nowNanos = s.replanClock
	}
	return s
}

// shardIndex routes an object name to a shard by FNV-1a hash.
func shardIndex(name string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// ErrClosed is returned by operations on a closed server.
var ErrClosed = errors.New("serve: server is closed")

// ErrUnknownObject is returned for requests naming no catalog object.
var ErrUnknownObject = errors.New("serve: unknown object")

// ErrBadConfig marks invalid server or load-generator configuration
// (empty catalog, non-positive horizon or inter-arrival time, unknown
// arrival kind), so callers can classify setup failures with errors.Is
// through the public facade.
var ErrBadConfig = errors.New("serve: invalid configuration")

// ErrBadRequest marks invalid runtime arguments to a live server (e.g. a
// non-positive drain horizon).
var ErrBadRequest = errors.New("serve: invalid request")

// Now returns the wall-clock virtual time: Config.TimeUnit units since the
// server started.
func (s *Server) Now() float64 {
	return float64(time.Since(s.start)) / float64(s.cfg.TimeUnit)
}

// replanClock is the monotonic clock injected into schedulers when
// Config.MeterReplanNanos is set: nanoseconds since the server started.
func (s *Server) replanClock() int64 {
	return int64(time.Since(s.start))
}

// Shards returns the effective scheduler shard count (after defaulting to
// GOMAXPROCS and clamping to the catalog size).
func (s *Server) Shards() int {
	return len(s.shards)
}

// Submit routes one request to its object's shard and waits for the
// admission decision.  A negative or NaN T is stamped with the wall clock.
// Submit is safe for concurrent use; requests for the same object are
// serialized by its shard's event loop in channel order.  With
// Config.PressureHighWater set, a shard over its queue high-water mark
// fails fast with a *PressureError instead of blocking.
func (s *Server) Submit(req Request) (Ticket, error) {
	if math.IsNaN(req.T) || math.IsInf(req.T, 0) || req.T < 0 {
		req.T = s.Now()
	}
	r, ok := s.byName[req.Object]
	if !ok {
		s.unknown.Add(1)
		return Ticket{}, fmt.Errorf("%w %q", ErrUnknownObject, req.Object)
	}
	sh := r.sh
	if err := s.reserve(sh.id, 1); err != nil {
		return Ticket{}, err
	}
	if s.cfg.FlushPerAck {
		// The legacy pipeline allocated message and reply channel per
		// request and paid the full select both ways; reproduce it so the
		// FlushPerAck baseline measures what actually shipped before group
		// commit.
		msg := submitMsg{req: req, reply: make(chan Ticket, 1)}
		if s.cfg.MeterStages {
			msg.enqueueNS = s.nowNanos()
		}
		select {
		case sh.msgs <- msg:
		case <-s.quit:
			s.unreserve(sh.id, 1)
			return Ticket{}, ErrClosed
		}
		select {
		case t := <-msg.reply:
			return t, nil
		case <-s.quit:
			return Ticket{}, ErrClosed
		}
	}
	msg, _ := s.submitPool.Get().(*submitMsg)
	if msg == nil {
		msg = &submitMsg{reply: make(chan Ticket, 1)}
	}
	msg.req = req
	msg.st = r.st
	msg.enqueueNS = 0
	if s.cfg.MeterStages {
		msg.enqueueNS = s.nowNanos()
	}
	// Fast path first: the shard channel is buffered, so under normal
	// load the non-blocking send lands without the multi-case select.
	select {
	case sh.msgs <- msg:
	default:
		select {
		case sh.msgs <- msg:
		case <-s.quit:
			s.unreserve(sh.id, 1)
			s.submitPool.Put(msg)
			return Ticket{}, ErrClosed
		}
	}
	select {
	case t := <-msg.reply:
		// The ack arrived, so the shard and writer are done with the
		// message; it recycles with its (now empty) reply channel.
		s.submitPool.Put(msg)
		return t, nil
	case <-s.quit:
		// The loop or writer may still answer on msg.reply; the message
		// and its channel are abandoned to the collector.
		return Ticket{}, ErrClosed
	}
}

// SubmitResult is one entry of a SubmitBatch answer: the ticket, or the
// error the same request would have gotten from Submit.
type SubmitResult struct {
	Ticket Ticket
	Err    error
}

// SubmitBatch admits a batch of requests, crossing each shard's message
// channel once for the whole batch instead of once per entry.  Entries
// keep their submission order within each shard (and hence per object),
// and every ticket and error matches what sequential Submit calls would
// return; shards process their portions concurrently.  The result has
// one entry per request, in request order.
func (s *Server) SubmitBatch(reqs []Request) []SubmitResult {
	out := make([]SubmitResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	// Partition by shard, preserving order; wall-clock stamping and
	// unknown-object errors are resolved here exactly like Submit.
	perReq := make([][]Request, len(s.shards))
	perIdx := make([][]int, len(s.shards))
	for i, req := range reqs {
		if math.IsNaN(req.T) || math.IsInf(req.T, 0) || req.T < 0 {
			req.T = s.Now()
		}
		r, ok := s.byName[req.Object]
		if !ok {
			s.unknown.Add(1)
			out[i].Err = fmt.Errorf("%w %q", ErrUnknownObject, req.Object)
			continue
		}
		perReq[r.sh.id] = append(perReq[r.sh.id], req)
		perIdx[r.sh.id] = append(perIdx[r.sh.id], i)
	}
	// One send per shard with work; gather only after every send, so the
	// shard loops run their portions concurrently.
	type pending struct {
		id   int
		tks  []Ticket
		done chan struct{}
	}
	sent := make([]pending, 0, len(s.shards))
	for id, batch := range perReq {
		if len(batch) == 0 {
			continue
		}
		// The whole sub-batch reserves queue slots at once: backpressure
		// treats it as its occupancy in requests, not channel messages.
		if err := s.reserve(id, int64(len(batch))); err != nil {
			for _, i := range perIdx[id] {
				out[i].Err = err
			}
			continue
		}
		p := pending{id: id, tks: make([]Ticket, len(batch)), done: make(chan struct{}, 1)}
		bm := submitBatchMsg{reqs: batch, out: p.tks, done: p.done}
		if s.cfg.MeterStages {
			bm.enqueueNS = s.nowNanos()
		}
		select {
		case s.shards[id].msgs <- bm:
			sent = append(sent, p)
		case <-s.quit:
			s.unreserve(id, int64(len(batch)))
			for _, i := range perIdx[id] {
				out[i].Err = ErrClosed
			}
		}
	}
	for _, p := range sent {
		select {
		case <-p.done:
			for k, i := range perIdx[p.id] {
				out[i].Ticket = p.tks[k]
			}
		case <-s.quit:
			for _, i := range perIdx[p.id] {
				out[i].Err = ErrClosed
			}
		}
	}
	return out
}

// Pause parks one shard's event loop until the returned release function
// is called (idempotent), without touching any scheduler state: queued
// messages simply wait.  It exists so overload tests and the
// backpressure experiment can hold a shard's queue at a known occupancy
// deterministically — pause, submit past the high-water mark, observe
// the pressure rejections, release, drain.  Pause returns once the loop
// has actually parked.
func (s *Server) Pause(shard int) (release func(), err error) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, fmt.Errorf("%w: no shard %d (have %d)", ErrBadRequest, shard, len(s.shards))
	}
	ack := make(chan struct{})
	resume := make(chan struct{})
	select {
	case s.shards[shard].msgs <- pauseMsg{ack: ack, resume: resume}:
	case <-s.quit:
		return nil, ErrClosed
	}
	select {
	case <-ack:
	case <-s.quit:
		return nil, ErrClosed
	}
	var once sync.Once
	return func() { once.Do(func() { close(resume) }) }, nil
}

// StageSet groups the merged stage histograms of one strategy: queue
// wait, plan, the requested object's replan share, and HTTP respond.
type StageSet struct {
	Strategy string
	Queue    stats.LogHistogram
	Plan     stats.LogHistogram
	Replan   stats.LogHistogram
	Respond  stats.LogHistogram
}

// MetricsSnapshot is the full observability snapshot behind /v1/metrics:
// the server-wide Stats (counters, per-shard queue occupancy) plus the
// per-stage latency histograms merged across shards, one set per
// strategy, sorted by strategy name.  Histograms are empty unless
// Config.MeterStages is set.
type MetricsSnapshot struct {
	Stats  Stats
	Stages []StageSet
}

// Metrics snapshots the counters, per-shard queue accounting, and stage
// histograms (merging the per-shard sets).  Like Stats it crosses each
// shard's message channel once.
func (s *Server) Metrics() (MetricsSnapshot, error) {
	snaps, err := s.gather(func(reply chan shardSnapshot) any { return statsMsg{reply: reply} })
	if err != nil {
		return MetricsSnapshot{}, err
	}
	m := MetricsSnapshot{Stats: s.assemble(snaps)}
	m.Stages = make([]StageSet, len(s.stratNames))
	for i, name := range s.stratNames {
		m.Stages[i].Strategy = name
	}
	for _, snap := range snaps {
		for i := range snap.stages {
			m.Stages[i].Queue.Merge(&snap.stages[i].queue)
			m.Stages[i].Plan.Merge(&snap.stages[i].plan)
			m.Stages[i].Replan.Merge(&snap.stages[i].replan)
		}
	}
	s.respMu.Lock()
	for i := range s.respond {
		m.Stages[i].Respond.Merge(&s.respond[i])
	}
	s.respMu.Unlock()
	sort.Slice(m.Stages, func(a, b int) bool { return m.Stages[a].Strategy < m.Stages[b].Strategy })
	return m, nil
}

// observeRespond records one respond-stage sample (ticket to HTTP write)
// for a strategy.  Safe for concurrent use; a no-op for strategies the
// server does not serve (or on harnesses built without New).
func (s *Server) observeRespond(strategy string, ns int64) {
	i, ok := s.stratIdx[strategy]
	if !ok || i >= len(s.respond) {
		return
	}
	s.respMu.Lock()
	s.respond[i].Observe(ns)
	s.respMu.Unlock()
}

// Stats snapshots the server-wide counters and per-object accounting.  The
// historical Peak and BusyTime cover finalized streams only.
func (s *Server) Stats() (Stats, error) {
	snaps, err := s.gather(func(reply chan shardSnapshot) any { return statsMsg{reply: reply} })
	if err != nil {
		return Stats{}, err
	}
	return s.assemble(snaps), nil
}

// Object returns the live accounting snapshot for one object.
func (s *Server) Object(name string) (ObjectStats, error) {
	r, ok := s.byName[name]
	if !ok {
		return ObjectStats{}, fmt.Errorf("%w %q", ErrUnknownObject, name)
	}
	sh := r.sh
	reply := make(chan shardSnapshot, 1)
	select {
	case sh.msgs <- statsMsg{reply: reply}:
	case <-s.quit:
		return ObjectStats{}, ErrClosed
	}
	select {
	case snap := <-reply:
		for _, os := range snap.objects {
			if os.Name == name {
				return os, nil
			}
		}
		return ObjectStats{}, fmt.Errorf("%w %q", ErrUnknownObject, name)
	case <-s.quit:
		return ObjectStats{}, ErrClosed
	}
}

// DrainResult is the final accounting of a drained server.
type DrainResult struct {
	// Horizon is the drain horizon in catalog time units.
	Horizon float64
	// Objects holds per-object stats in catalog order, fully finalized.
	Objects []ObjectStats
	// Usage holds every finalized stream interval in real time, across all
	// objects; its Peak and Total match the batch plan's.
	Usage *bandwidth.Usage
	Stats Stats
}

// AverageChannels returns the time-average number of busy channels.
func (r *DrainResult) AverageChannels() float64 {
	if r.Horizon <= 0 {
		return 0
	}
	return r.Usage.Total() / r.Horizon
}

// Drain advances every object to the horizon (in catalog time units),
// starts and finalizes the oblivious plan's remaining streams — including
// the truncated trailing partial group of each object's current epoch —
// and returns the final accounting.  Drain is terminal: it is meant for
// virtual-clock runs, after which the server should be Closed.
//
// Drain is not durable.  It advances scheduler state outside the
// WAL/snapshot discipline — nothing it does is logged or snapshotted —
// so on a durable server a restore after Drain reproduces the pre-drain
// state, not the drained one.  That is intentional: Drain reports a
// finished run; it is not an admission whose effects need replaying.
// Callers who want the post-restart server to skip the drained work
// should Snapshot before draining and discard the store afterwards.
func (s *Server) Drain(horizon float64) (*DrainResult, error) {
	if horizon <= 0 || math.IsNaN(horizon) || math.IsInf(horizon, 0) {
		return nil, fmt.Errorf("%w: drain horizon must be positive and finite, got %g", ErrBadRequest, horizon)
	}
	snaps, err := s.gather(func(reply chan shardSnapshot) any { return drainMsg{horizon: horizon, reply: reply} })
	if err != nil {
		return nil, err
	}
	st := s.assemble(snaps)
	usage := bandwidth.New()
	for _, snap := range snaps {
		for _, iv := range snap.intervals {
			usage.Add(iv.Start, iv.End)
		}
	}
	return &DrainResult{Horizon: horizon, Objects: st.Objects, Usage: usage, Stats: st}, nil
}

// gather sends one message per shard and collects the snapshots.
func (s *Server) gather(mk func(chan shardSnapshot) any) ([]shardSnapshot, error) {
	snaps := make([]shardSnapshot, 0, len(s.shards))
	for _, sh := range s.shards {
		reply := make(chan shardSnapshot, 1)
		select {
		case sh.msgs <- mk(reply):
		case <-s.quit:
			return nil, ErrClosed
		}
		select {
		case snap := <-reply:
			snaps = append(snaps, snap)
		case <-s.quit:
			return nil, ErrClosed
		}
	}
	return snaps, nil
}

// assemble merges shard snapshots into a Stats with objects in catalog
// order and a historical peak over all finalized streams.
func (s *Server) assemble(snaps []shardSnapshot) Stats {
	st := Stats{
		Admitted:         s.admitted.Load(),
		Degraded:         s.degraded.Load(),
		Rejected:         s.rejected.Load(),
		RejectedPressure: s.rejectedPressure.Load(),
		Unknown:          s.unknown.Load(),
		LiveChannels:     s.gauge.Load(),
		WALFailures:      s.walFailures.Load(),
		WALFlushes:       s.walFlushes.Load(),
	}
	st.Shards = make([]ShardStats, len(s.queues))
	for i := range s.queues {
		q := &s.queues[i]
		st.Shards[i] = ShardStats{
			Shard:             i,
			QueueDepth:        q.depth(),
			QueueCap:          s.cfg.QueueDepth,
			HighWater:         q.high.Load(),
			Dequeued:          q.dequeued.Load(),
			PressureHighWater: s.cfg.PressureHighWater,
		}
	}
	usage := bandwidth.New()
	for _, snap := range snaps {
		st.Objects = append(st.Objects, snap.objects...)
		for _, iv := range snap.intervals {
			usage.Add(iv.Start, iv.End)
		}
	}
	sortObjects(st.Objects, s.cfg.Catalog)
	st.Strategies = make(map[string]int64, 2)
	for _, o := range st.Objects {
		st.Strategies[o.Strategy]++
	}
	st.Peak = usage.Peak()
	st.BusyTime = usage.Total()
	return st
}

// sortObjects orders stats in catalog order.
func sortObjects(objs []ObjectStats, cat multiobject.Catalog) {
	rank := make(map[string]int, len(cat))
	for i, o := range cat {
		rank[o.Name] = i
	}
	sort.Slice(objs, func(a, b int) bool { return rank[objs[a].Name] < rank[objs[b].Name] })
}

// Close stops every shard event loop.  In-flight Submits return ErrClosed.
// With durability on, the WAL writers drain after the loops (their only
// senders) exit, so every record of an acknowledged request reaches the
// store before Close returns; a store the server owns (Config.OwnStore)
// is then closed too.
func (s *Server) Close() {
	select {
	case <-s.quit:
		return
	default:
	}
	close(s.quit)
	s.wg.Wait()
	for _, sh := range s.shards {
		if sh.walCh != nil {
			close(sh.walCh)
		}
	}
	s.walWG.Wait()
	if s.cfg.OwnStore && s.cfg.Store != nil {
		s.cfg.Store.Close()
	}
	s.cancel()
}
