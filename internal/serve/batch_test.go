package serve

// White-box tests of batched shard submission: SubmitBatch must cross
// each shard's message channel exactly once per batch and produce
// tickets byte-identical to sequential Submit calls.

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/multiobject"
)

func batchCatalog() multiobject.Catalog {
	return multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 4, Delay: 0.125},
		{Name: "warm", Length: 2, Popularity: 2, Delay: 0.25},
		{Name: "mild", Length: 1, Popularity: 1, Delay: 0.0625},
		{Name: "cold", Length: 0.5, Popularity: 1, Delay: 0.25},
	}
}

func batchRequests(cat multiobject.Catalog, n int) []Request {
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += 0.003
		reqs[i] = Request{Object: cat[i%len(cat)].Name, T: t}
	}
	return reqs
}

// TestSubmitBatchMatchesSequential: the same request sequence through
// SubmitBatch and through per-request Submit yields identical tickets,
// identical errors, and identical drained accounting.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	cat := batchCatalog()
	reqs := batchRequests(cat, 400)
	// Sprinkle unknown objects through the batch.
	reqs[7].Object = "nope"
	reqs[133].Object = "nadir"

	mk := func() *Server {
		s, err := New(Config{Catalog: cat, Shards: 2, DefaultStrategy: "batching", EpochSlots: 64})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	seq := mk()
	defer seq.Close()
	seqTickets := make([]Ticket, len(reqs))
	seqErrs := make([]string, len(reqs))
	for i, req := range reqs {
		tk, err := seq.Submit(req)
		if err != nil {
			seqErrs[i] = err.Error()
			continue
		}
		seqTickets[i] = tk
	}

	bat := mk()
	defer bat.Close()
	for k := 0; k < len(reqs); k += 150 { // multiple batches, ragged tail
		end := k + 150
		if end > len(reqs) {
			end = len(reqs)
		}
		for off, res := range bat.SubmitBatch(reqs[k:end]) {
			i := k + off
			if res.Err != nil {
				if res.Err.Error() != seqErrs[i] {
					t.Fatalf("request %d: batch err %q, sequential err %q", i, res.Err, seqErrs[i])
				}
				if !errors.Is(res.Err, ErrUnknownObject) {
					t.Fatalf("request %d: err %v does not wrap ErrUnknownObject", i, res.Err)
				}
				continue
			}
			if seqErrs[i] != "" {
				t.Fatalf("request %d: batch succeeded, sequential failed with %q", i, seqErrs[i])
			}
			if !reflect.DeepEqual(res.Ticket, seqTickets[i]) {
				t.Fatalf("request %d: batch ticket %+v != sequential %+v", i, res.Ticket, seqTickets[i])
			}
		}
	}

	seqDrain, err := seq.Drain(4)
	if err != nil {
		t.Fatal(err)
	}
	batDrain, err := bat.Drain(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqDrain.Objects, batDrain.Objects) {
		t.Fatalf("drained object stats diverge:\nseq   %+v\nbatch %+v", seqDrain.Objects, batDrain.Objects)
	}
}

// TestSubmitBatchOneSendPerShard pins the channel economics: a batch
// spanning every object crosses each shard's message channel exactly
// once, however many entries it has.
func TestSubmitBatchOneSendPerShard(t *testing.T) {
	cat := batchCatalog()
	cfg := (&Config{Catalog: cat, Shards: 2, DefaultStrategy: "batching"}).withDefaults()
	srv := newServerShell(cfg)
	defer close(srv.quit)
	srv.shards = []*shard{newShard(0, srv), newShard(1, srv)}
	for i, o := range cat {
		sh := srv.shards[shardIndex(o.Name, 2)]
		if err := sh.addObject(o, i, "batching"); err != nil {
			t.Fatal(err)
		}
		srv.byName[o.Name] = route{sh: sh, st: sh.byName[o.Name]}
	}
	// Counting loops instead of shard.loop: every channel receive is one
	// send from SubmitBatch.
	var sends [2]atomic.Int64
	for i, sh := range srv.shards {
		i, sh := i, sh
		go func() {
			for {
				select {
				case m := <-sh.msgs:
					sends[i].Add(1)
					if msg, ok := m.(submitBatchMsg); ok {
						sh.admitBatch(msg.reqs, msg.out, -1)
						msg.done <- struct{}{}
					}
				case <-srv.quit:
					return
				}
			}
		}()
	}

	reqs := batchRequests(cat, 1000)
	for _, res := range srv.SubmitBatch(reqs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	for i := range sends {
		if got := sends[i].Load(); got != 1 {
			t.Fatalf("shard %d received %d messages for one 1000-entry batch, want 1", i, got)
		}
	}
}

// TestSubmitBatchClosed: a closed server answers every routed entry with
// ErrClosed, like Submit.
func TestSubmitBatchClosed(t *testing.T) {
	cat := batchCatalog()
	s, err := New(Config{Catalog: cat, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	res := s.SubmitBatch(batchRequests(cat, 4))
	for i, r := range res {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("entry %d after Close: err = %v, want ErrClosed", i, r.Err)
		}
	}
}

// BenchmarkShardAdmitBatch is the CI allocation guard for the batch
// admit path: a whole batch through admitBatch on the shard loop's side,
// with a caller-provided ticket buffer, must not allocate for a
// program-less strategy.  Stage metering is on (benchShard), and the
// positive queueNS takes the histogram-observation branch, so the guard
// covers the fully instrumented path.
func BenchmarkShardAdmitBatch(b *testing.B) {
	sh, _ := benchShard(b, "batching")
	const batch = 256
	reqs := make([]Request, batch)
	out := make([]Ticket, batch)
	cat := []string{"hot", "warm", "mild", "cold"}
	for i := range reqs {
		reqs[i] = Request{Object: cat[i%len(cat)], T: 0.5}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.admitBatch(reqs, out, 4096)
	}
}

// BenchmarkBatchSubmit measures the end-to-end batched submission path —
// one SubmitBatch round trip per op, 1000 entries, one channel send per
// shard — against which BenchmarkShardSubmit (one send per request) is
// the per-entry baseline.
func BenchmarkBatchSubmit(b *testing.B) {
	cat := multiobject.ZipfCatalog(16, 1.0, 0.01, 1.0)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := New(Config{Catalog: cat, Shards: shards, DefaultStrategy: "batching"})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const batch = 1000
			reqs := make([]Request, batch)
			t := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range reqs {
					t += 0.00002
					reqs[j] = Request{Object: cat[j%len(cat)].Name, T: t}
				}
				for _, res := range s.SubmitBatch(reqs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}
