package serve_test

// Backpressure tests: queue-depth reservation arbitration (deterministic
// reject counts under a paused shard), the 429 + Retry-After HTTP
// contract, and the HTTP driver completing a trace through transient
// pressure — then draining to the same cost totals as an unpressured run
// of the admitted subset.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/multiobject"
	"repro/internal/serve"
)

// pressureServer: one object, one shard, so every submit contends on the
// same queue.
func pressureServer(t *testing.T, highWater int) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		Catalog:           multiobject.ZipfCatalog(1, 1.0, 0.125, 1.0),
		Shards:            1,
		QueueDepth:        16,
		PressureHighWater: highWater,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestBackpressureDeterministic holds the single shard paused while K
// identical requests race the reservation counter: exactly highWater of
// them may hold queue slots, so exactly K-highWater must be refused with
// a *PressureError — deterministically, whatever the goroutine schedule,
// because reservation order is the arbitration.  After release, the
// admitted subset drains to the same cost totals as an unpressured run
// of the same subset (all arrivals share one instant, so the totals are
// independent of WHICH submits won).
func TestBackpressureDeterministic(t *testing.T) {
	const K, HW = 6, 2
	s := pressureServer(t, HW)
	release, err := s.Pause(0)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		tk  serve.Ticket
		err error
	}
	results := make(chan outcome, K)
	for i := 0; i < K; i++ {
		go func() {
			tk, err := s.Submit(serve.Request{Object: "object-01", T: 0.5})
			results <- outcome{tk, err}
		}()
	}
	// While the shard is paused only pressure-refused submits can return:
	// the reservation holders are blocked awaiting the loop.  So the
	// first K-HW results are exactly the rejections.
	for i := 0; i < K-HW; i++ {
		select {
		case r := <-results:
			if !errors.Is(r.err, serve.ErrPressure) {
				t.Fatalf("refusal %d: err = %v, want ErrPressure", i, r.err)
			}
			var pe *serve.PressureError
			if !errors.As(r.err, &pe) {
				t.Fatalf("refusal %d: err %v is not a *PressureError", i, r.err)
			}
			if pe.Shard != 0 || pe.Depth <= int64(HW) || pe.RetryAfter < time.Second {
				t.Fatalf("refusal %d: unexpected details %+v", i, pe)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for pressure refusal %d", i)
		}
	}
	release()
	for i := 0; i < HW; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("admitted submit %d failed: %v", i, r.err)
			}
			if r.tk.Decision != serve.Admitted {
				t.Fatalf("admitted submit %d: decision %q", i, r.tk.Decision)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for admitted submit %d", i)
		}
	}

	dr, err := s.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	st := dr.Stats
	if st.RejectedPressure != K-HW {
		t.Errorf("RejectedPressure = %d, want %d", st.RejectedPressure, K-HW)
	}
	if st.Admitted != HW {
		t.Errorf("Admitted = %d, want %d", st.Admitted, HW)
	}
	if len(st.Shards) != 1 {
		t.Fatalf("Shards = %+v, want one entry", st.Shards)
	}
	sh := st.Shards[0]
	if sh.QueueDepth != 0 || sh.HighWater != HW || sh.Dequeued != HW || sh.PressureHighWater != HW {
		t.Errorf("shard queue stats = %+v, want depth 0, high water %d, dequeued %d", sh, HW, HW)
	}

	// Unpressured reference run of the admitted subset: HW identical
	// requests, no backpressure, same drain horizon.
	ref := pressureServer(t, 0)
	for i := 0; i < HW; i++ {
		if _, err := ref.Submit(serve.Request{Object: "object-01", T: 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	refDr, err := ref.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Objects) != 1 || len(refDr.Objects) != 1 {
		t.Fatalf("object counts: pressured %d, reference %d", len(dr.Objects), len(refDr.Objects))
	}
	a, b := dr.Objects[0], refDr.Objects[0]
	if a.Cost != b.Cost || a.BusyTime != b.BusyTime || a.Streams != b.Streams || a.Clients != b.Clients {
		t.Errorf("pressured run diverges from unpressured run of the admitted subset:\npressured %+v\nreference %+v", a, b)
	}
}

// TestHTTPDriverBackpressure drives a paused single-shard server over
// HTTP past its high-water mark: the test observes at least one 429 with
// a Retry-After header, releases the shard, and the driver — honoring
// Retry-After with capped backoff — completes the whole trace with no
// failures; the server then drains to the same cost totals as an
// unpressured run of the admitted subset (one arrival instant, so any
// admitted subset is cost-equivalent).
func TestHTTPDriverBackpressure(t *testing.T) {
	s := pressureServer(t, 1)
	hs := httptest.NewServer(serve.Handler(s))
	defer hs.Close()

	release, err := s.Pause(0)
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]serve.Request, 6)
	for i := range reqs {
		reqs[i] = serve.Request{Object: "object-01", T: 0.5}
	}
	type driven struct {
		rep *serve.Report
		err error
	}
	done := make(chan driven, 1)
	go func() {
		rep, err := serve.RunHTTPDriver(context.Background(), hs.URL, reqs, 3)
		done <- driven{rep, err}
	}()

	// Probe until the queue is over its high-water mark: a 429 with a
	// Retry-After header.  Blocked probes (those that won a reservation)
	// time out client-side; the server finishes them after release.
	probe := &http.Client{Timeout: 300 * time.Millisecond}
	saw429 := false
	deadline := time.Now().Add(15 * time.Second)
	for !saw429 && time.Now().Before(deadline) {
		resp, err := probe.Post(hs.URL+"/v1/request", "application/json",
			strings.NewReader(`{"object":"object-01","t":0.5}`))
		if err != nil {
			continue // client timeout: the probe is parked in the queue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			ra := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q, want an integer >= 1", ra)
			}
			saw429 = true
		}
		resp.Body.Close()
	}
	if !saw429 {
		release()
		t.Fatal("never observed a 429 while the shard was paused")
	}
	release()

	var d driven
	select {
	case d = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("driver did not complete after release")
	}
	if d.err != nil {
		t.Fatalf("driver failed: %v", d.err)
	}
	rep := d.rep
	if rep.PressureRetries < 1 {
		t.Errorf("PressureRetries = %d, want >= 1 (the driver must have honored Retry-After)", rep.PressureRetries)
	}
	if rep.PressureFailed != 0 || rep.Failed != 0 {
		t.Errorf("driver abandoned requests: PressureFailed=%d Failed=%d", rep.PressureFailed, rep.Failed)
	}
	if rep.Admitted+rep.Degraded != len(reqs) {
		t.Errorf("driver served %d+%d of %d requests after transient pressure",
			rep.Admitted, rep.Degraded, len(reqs))
	}

	dr, err := s.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: an unpressured run of the admitted subset.  All
	// arrivals share t=0.5, so one admission reproduces the totals of
	// any admitted subset.
	ref := pressureServer(t, 0)
	if _, err := ref.Submit(serve.Request{Object: "object-01", T: 0.5}); err != nil {
		t.Fatal(err)
	}
	refDr, err := ref.Drain(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := dr.Objects[0], refDr.Objects[0]
	if a.Cost != b.Cost || a.BusyTime != b.BusyTime || a.Streams != b.Streams {
		t.Errorf("post-pressure drain diverges from unpressured reference:\npressured %+v\nreference %+v", a, b)
	}
}

// TestBatchBackpressure pins SubmitBatch's whole-sub-batch reservation
// and the /v1/requests 429 contract: a batch refused entirely answers
// 429 + Retry-After with per-entry errors.
func TestBatchBackpressure(t *testing.T) {
	s := pressureServer(t, 2)
	hs := httptest.NewServer(serve.Handler(s))
	defer hs.Close()

	release, err := s.Pause(0)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// In-process: a 3-request batch cannot reserve over high water 2.
	res := s.SubmitBatch([]serve.Request{
		{Object: "object-01", T: 0.5},
		{Object: "object-01", T: 0.5},
		{Object: "object-01", T: 0.5},
	})
	for i, r := range res {
		if !errors.Is(r.Err, serve.ErrPressure) {
			t.Fatalf("batch entry %d: err = %v, want ErrPressure", i, r.Err)
		}
	}

	// HTTP: the same refusal is a 429 with Retry-After and per-entry
	// error bodies.
	resp, err := http.Post(hs.URL+"/v1/requests", "application/json",
		strings.NewReader(`[{"object":"object-01","t":0.5},{"object":"object-01","t":0.5},{"object":"object-01","t":0.5}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 batch answer missing Retry-After")
	}
}
