package serve

// White-box benchmark of the shard admit hot path: clock advance across
// the shard's schedulers, gauge event processing, admission control, and
// the scheduler's Admit — everything a request touches inside the event
// loop except materializing the reply ticket (whose receiving-program
// copy is the one intentional per-request allocation, made outside the
// hot path so callers can hold the program).
//
// The path must not allocate per request in steady state: the receiving
// program is appended into a scheduler-owned buffer, gauge events reuse
// the heap's backing array, and group finalization reuses scratch
// buffers.  CI runs this benchmark with -benchmem and fails on a nonzero
// allocs/op, so an accidental per-request allocation (fresh program
// slices, boxing, map churn) is a build break, not a slow drift.

import (
	"sync/atomic"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/store"
)

// benchShard builds a loop-less shard (no goroutines) so the benchmark
// can drive admitCore directly.  Stage metering is ON, with a counter
// clock standing in for the wall clock: the 0 allocs/op guard covers the
// instrumented admit path, per-stage histogram observation included.
func benchShard(b *testing.B, strategy string) (*shard, *objectState) {
	b.Helper()
	cat := multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 4, Delay: 0.01},
		{Name: "warm", Length: 1, Popularity: 2, Delay: 0.02},
		{Name: "mild", Length: 2, Popularity: 1, Delay: 0.05},
		{Name: "cold", Length: 1, Popularity: 1, Delay: 0.04},
	}
	var tick int64
	cfg := Config{Catalog: cat, MaxChannels: 0, MeterStages: true,
		NowNanos: func() int64 { tick += 137; return tick }}
	cfg = cfg.withDefaults()
	srv := newServerShell(cfg)
	sh := newShard(0, srv)
	for i, o := range cat {
		if err := sh.addObject(o, i, strategy); err != nil {
			b.Fatal(err)
		}
	}
	return sh, sh.byName["hot"]
}

// BenchmarkShardAdmit is the CI allocation guard: one request through the
// shard admit hot path (online strategy, the latency-critical default).
func BenchmarkShardAdmit(b *testing.B) {
	sh, st := benchShard(b, "online")
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.003
		sh.admitCore(st, t)
	}
}

// BenchmarkShardAdmitDurable extends the allocation guard to the durable
// hot path: the WAL record fill and channel send (logSubmit), the admit
// core, and the log-before-ack flush round-trip through the WAL writer.
// The record travels as a fixed-size array inside the channel message, so
// durability must add zero allocations per admitted request.
func BenchmarkShardAdmitDurable(b *testing.B) {
	sh, st := benchShard(b, "online")
	srv := sh.srv
	srv.cfg.Store = store.NewMem()
	srv.walRepair = make([]atomic.Bool, 1) // invariant: non-nil whenever walCh is
	sh.walCh = make(chan walMsg, srv.cfg.QueueDepth)
	srv.walWG.Add(1)
	go srv.walWriter(sh)
	defer func() {
		close(sh.walCh)
		srv.walWG.Wait()
	}()
	reply := make(chan Ticket, 1)
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.003
		sh.logSubmit(Request{Object: "hot", T: t})
		sh.admitCore(st, t)
		sh.walCh <- walMsg{kind: walAck, reply: reply}
		<-reply
	}
}

// BenchmarkShardSubmit measures the full public Submit round-trip through
// a running shard event loop (channel send, admit, ticket with program
// copy) — the end-to-end per-request cost the HTTP layer pays.
func BenchmarkShardSubmit(b *testing.B) {
	cat := multiobject.ZipfCatalog(16, 1.0, 0.01, 1.0)
	s, err := New(Config{Catalog: cat, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.002
		if _, err := s.Submit(Request{Object: "object-01", T: t}); err != nil {
			b.Fatal(err)
		}
	}
}
