package serve

// White-box benchmark of the shard admit hot path: clock advance across
// the shard's schedulers, gauge event processing, admission control, and
// the scheduler's Admit — everything a request touches inside the event
// loop except materializing the reply ticket (whose receiving-program
// copy is the one intentional per-request allocation, made outside the
// hot path so callers can hold the program).
//
// The path must not allocate per request in steady state: the receiving
// program is appended into a scheduler-owned buffer, gauge events reuse
// the heap's backing array, and group finalization reuses scratch
// buffers.  CI runs this benchmark with -benchmem and fails on a nonzero
// allocs/op, so an accidental per-request allocation (fresh program
// slices, boxing, map churn) is a build break, not a slow drift.

import (
	"sync/atomic"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/store"
)

// benchShard builds a loop-less shard (no goroutines) so the benchmark
// can drive admitCore directly.  Stage metering is ON, with a counter
// clock standing in for the wall clock: the 0 allocs/op guard covers the
// instrumented admit path, per-stage histogram observation included.
func benchShard(b *testing.B, strategy string) (*shard, *objectState) {
	b.Helper()
	cat := multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 4, Delay: 0.01},
		{Name: "warm", Length: 1, Popularity: 2, Delay: 0.02},
		{Name: "mild", Length: 2, Popularity: 1, Delay: 0.05},
		{Name: "cold", Length: 1, Popularity: 1, Delay: 0.04},
	}
	var tick int64
	cfg := Config{Catalog: cat, MaxChannels: 0, MeterStages: true,
		NowNanos: func() int64 { tick += 137; return tick }}
	cfg = cfg.withDefaults()
	srv := newServerShell(cfg)
	sh := newShard(0, srv)
	for i, o := range cat {
		if err := sh.addObject(o, i, strategy); err != nil {
			b.Fatal(err)
		}
	}
	return sh, sh.byName["hot"]
}

// BenchmarkShardAdmit is the CI allocation guard: one request through the
// shard admit hot path (online strategy, the latency-critical default).
func BenchmarkShardAdmit(b *testing.B) {
	sh, st := benchShard(b, "online")
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.003
		sh.admitCore(st, t)
	}
}

// durableShard wires a loop-less benchmark shard to a Mem store and a
// live group-commit WAL writer; the returned stop func drains the writer.
func durableShard(b *testing.B, sh *shard) (stop func()) {
	b.Helper()
	srv := sh.srv
	srv.cfg.Store = store.NewMem()
	srv.walRepair = make([]atomic.Bool, 1) // invariant: non-nil whenever walCh is
	sh.walCh = make(chan walMsg, srv.cfg.QueueDepth)
	srv.walWG.Add(1)
	go srv.walWriter(sh)
	return func() {
		close(sh.walCh)
		srv.walWG.Wait()
	}
}

// BenchmarkShardAdmitDurable extends the allocation guard to the durable
// hot path: the WAL record fill and channel send (logSubmit, the
// record-only walSubmit), the admit core, and the commit round-trip
// through the group-commit WAL writer (an ack-only walSubmit).  The
// record travels as a fixed-size array inside the channel message, so
// durability must add zero allocations per admitted request.
func BenchmarkShardAdmitDurable(b *testing.B) {
	sh, st := benchShard(b, "online")
	stop := durableShard(b, sh)
	defer stop()
	reply := make(chan Ticket, 1)
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.003
		sh.logSubmit(Request{Object: "hot", T: t})
		sh.admitCore(st, t)
		sh.walCh <- walMsg{kind: walSubmit, reply: reply}
		<-reply
	}
}

// BenchmarkShardAdmitDurableBatch is the batch half of the durable
// allocation guard: 256 requests through admitBatch (which sends one
// record-only walSubmit per entry) followed by one walBatchAck commit
// round-trip.  The whole batch must amortize to 0 allocs/op.
func BenchmarkShardAdmitDurableBatch(b *testing.B) {
	sh, _ := benchShard(b, "batching")
	stop := durableShard(b, sh)
	defer stop()
	const batch = 256
	names := []string{"hot", "warm", "mild", "cold"}
	reqs := make([]Request, batch)
	out := make([]Ticket, batch)
	for i := range reqs {
		reqs[i] = Request{Object: names[i%len(names)], T: 0.5}
	}
	done := make(chan struct{}, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.admitBatch(reqs, out, 4096)
		sh.walCh <- walMsg{kind: walBatchAck, done: done}
		<-done
	}
}

// BenchmarkShardSubmit measures the full public Submit round-trip through
// a running shard event loop (channel send, admit, ticket with program
// copy) — the end-to-end per-request cost the HTTP layer pays.
func BenchmarkShardSubmit(b *testing.B) {
	cat := multiobject.ZipfCatalog(16, 1.0, 0.01, 1.0)
	s, err := New(Config{Catalog: cat, Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	t := 0.0
	for i := 0; i < b.N; i++ {
		t += 0.002
		if _, err := s.Submit(Request{Object: "object-01", T: t}); err != nil {
			b.Fatal(err)
		}
	}
}
