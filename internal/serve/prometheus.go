package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/stats"
)

// This file renders a MetricsSnapshot in the Prometheus text exposition
// format (version 0.0.4) behind GET /v1/metrics.  No client library is
// involved: the metric families are few and fixed, and the histograms
// are already fixed-bucket log-scale values, so the renderer is a direct
// fmt.Fprintf of the format — counters and gauges first, then one
// cumulative _bucket/_sum/_count series per stage × strategy.  The
// legacy unversioned /metrics keeps the original flat JSON counter map
// as a deprecated alias.

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// handleMetricsProm answers GET /v1/metrics with the text exposition.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	m, err := s.Metrics()
	if err != nil {
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	WritePrometheus(w, &m)
}

// WritePrometheus writes the snapshot in the Prometheus text format.
func WritePrometheus(w io.Writer, m *MetricsSnapshot) {
	fmt.Fprint(w, "# HELP mod_requests_total Requests by admission outcome (rejected_pressure = refused by queue backpressure before reaching a shard).\n")
	fmt.Fprint(w, "# TYPE mod_requests_total counter\n")
	fmt.Fprintf(w, "mod_requests_total{outcome=\"admitted\"} %d\n", m.Stats.Admitted)
	fmt.Fprintf(w, "mod_requests_total{outcome=\"degraded\"} %d\n", m.Stats.Degraded)
	fmt.Fprintf(w, "mod_requests_total{outcome=\"rejected\"} %d\n", m.Stats.Rejected)
	fmt.Fprintf(w, "mod_requests_total{outcome=\"rejected_pressure\"} %d\n", m.Stats.RejectedPressure)
	fmt.Fprintf(w, "mod_requests_total{outcome=\"unknown\"} %d\n", m.Stats.Unknown)

	fmt.Fprint(w, "# HELP mod_live_channels Streams currently transmitting (the live channel gauge).\n")
	fmt.Fprint(w, "# TYPE mod_live_channels gauge\n")
	fmt.Fprintf(w, "mod_live_channels %d\n", m.Stats.LiveChannels)

	fmt.Fprint(w, "# HELP mod_wal_flushes_total Durability-store flushes (WAL group commits); the ratio of admitted requests to flushes is the group-commit coalescing factor.\n")
	fmt.Fprint(w, "# TYPE mod_wal_flushes_total counter\n")
	fmt.Fprintf(w, "mod_wal_flushes_total %d\n", m.Stats.WALFlushes)

	fmt.Fprint(w, "# HELP mod_shard_queue_depth Requests submitted but not yet dequeued by the shard's event loop.\n")
	fmt.Fprint(w, "# TYPE mod_shard_queue_depth gauge\n")
	for _, sh := range m.Stats.Shards {
		fmt.Fprintf(w, "mod_shard_queue_depth{shard=\"%d\"} %d\n", sh.Shard, sh.QueueDepth)
	}
	fmt.Fprint(w, "# HELP mod_shard_queue_high_water Maximum queue depth ever observed on the shard.\n")
	fmt.Fprint(w, "# TYPE mod_shard_queue_high_water gauge\n")
	for _, sh := range m.Stats.Shards {
		fmt.Fprintf(w, "mod_shard_queue_high_water{shard=\"%d\"} %d\n", sh.Shard, sh.HighWater)
	}
	fmt.Fprint(w, "# HELP mod_shard_queue_capacity Configured shard channel buffer (QueueDepth).\n")
	fmt.Fprint(w, "# TYPE mod_shard_queue_capacity gauge\n")
	for _, sh := range m.Stats.Shards {
		fmt.Fprintf(w, "mod_shard_queue_capacity{shard=\"%d\"} %d\n", sh.Shard, sh.QueueCap)
	}
	fmt.Fprint(w, "# HELP mod_shard_dequeued_total Requests the shard's event loop has dequeued.\n")
	fmt.Fprint(w, "# TYPE mod_shard_dequeued_total counter\n")
	for _, sh := range m.Stats.Shards {
		fmt.Fprintf(w, "mod_shard_dequeued_total{shard=\"%d\"} %d\n", sh.Shard, sh.Dequeued)
	}

	fmt.Fprint(w, "# HELP mod_stage_latency_seconds Per-request admission latency decomposed by stage (queue wait, plan, epoch-replan share, HTTP respond) and strategy; populated when stage metering is on.\n")
	fmt.Fprint(w, "# TYPE mod_stage_latency_seconds histogram\n")
	for i := range m.Stages {
		ss := &m.Stages[i]
		writePromHistogram(w, "queue", ss.Strategy, &ss.Queue)
		writePromHistogram(w, "plan", ss.Strategy, &ss.Plan)
		writePromHistogram(w, "replan", ss.Strategy, &ss.Replan)
		writePromHistogram(w, "respond", ss.Strategy, &ss.Respond)
	}
}

// writePromHistogram writes one cumulative _bucket/_sum/_count series.
// Empty histograms are skipped so an unmetered server exposes only
// counters and gauges.
func writePromHistogram(w io.Writer, stage, strategy string, h *stats.LogHistogram) {
	if h.Count == 0 {
		return
	}
	var cum int64
	for i := 0; i < stats.HistogramBuckets; i++ {
		cum += h.Counts[i]
		le := "+Inf"
		if ub := stats.HistogramUpperBound(i); ub != math.MaxInt64 {
			le = strconv.FormatFloat(float64(ub)/1e9, 'g', -1, 64)
		}
		fmt.Fprintf(w, "mod_stage_latency_seconds_bucket{stage=%q,strategy=%q,le=%q} %d\n", stage, strategy, le, cum)
	}
	fmt.Fprintf(w, "mod_stage_latency_seconds_sum{stage=%q,strategy=%q} %g\n", stage, strategy, float64(h.SumNanos)/1e9)
	fmt.Fprintf(w, "mod_stage_latency_seconds_count{stage=%q,strategy=%q} %d\n", stage, strategy, h.Count)
}
