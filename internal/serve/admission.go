package serve

// The admission controller: the live counterpart of multiobject.FitDelays.
//
// FitDelays searches, off-line, for the smallest uniform delay scaling that
// keeps a catalog's planned peak bandwidth within a channel budget.  The
// live controller applies the same trade incrementally and per object:
// whenever a request arrives while the live channel gauge is at the
// configured cap, the requested object's delay is scaled up by one
// DegradeStep — longer slots mean fewer streams per unit time, which is
// exactly the Section 5 "increase the delay instead of declining" knob —
// and the request is still served, at the degraded delay.  Only when an
// object has exhausted MaxDelayScale (or its delay already equals its
// length, the largest meaningful slot) is a request rejected.  Every
// outcome is counted.
//
// The controller is strategy-agnostic: degradation drains the object's
// current scheduler (finalizing its plan exactly like a batch horizon
// there) and opens a fresh one — whatever the planner family — with the
// scaled delay, spliced in at the drained scheduler's end.

// admit decides the outcome for a request on st at time t, degrading the
// object's delay epoch as a side effect when the gauge is at the cap.
//
//modlint:noalloc
func (sh *shard) admit(st *objectState, t float64) Decision {
	cap := sh.srv.cfg.MaxChannels
	if cap <= 0 || sh.srv.gauge.Load() < int64(cap) {
		return Admitted
	}
	step := sh.srv.cfg.DegradeStep
	next := st.scale * step
	if next > sh.srv.cfg.MaxDelayScale || st.delay >= st.obj.Length {
		return Rejected
	}
	sh.degrade(st, next)
	return Degraded
}

// degrade closes st's current delay epoch — draining its scheduler at the
// clock, which finalizes started streams with the trailing unit truncated
// exactly like a batch horizon there — and opens a new scheduler with the
// scaled delay, based at the closed epoch's end.  The request that
// triggered the degradation is then admitted into the new epoch by the
// caller.
func (sh *shard) degrade(st *objectState, scale float64) {
	delay := st.obj.Delay * scale
	if delay > st.obj.Length {
		delay = st.obj.Length
	}
	base := st.sched.Drain(sh.now)
	sched, err := sh.newScheduler(st.obj, st.strategy, delay, base)
	if err != nil {
		// Construction cannot fail here (New validated the strategy and
		// the scaled delay stays in (0, Length]); if it somehow does, keep
		// serving on the drained scheduler rather than wedging the loop.
		return
	}
	st.carry.Accumulate(st.sched.Totals())
	st.sched = sched
	st.scale = scale
	st.delay = delay
	scaled := st.obj
	scaled.Delay = delay
	st.L = scaled.Slots()
	st.epoch++
}
