package serve_test

// The per-strategy live-vs-batch equivalence suite: for every live-capable
// builtin planner, a drained live run over a fixed request trace must
// report per-object stream counts and costs bit-identical to the batch
// plan on the same trace — for any shard count.  The live side plans
// incrementally inside sharded event loops (the "online" strategy natively,
// everything else through whole-horizon epoch replanning at drain); the
// batch side is live.BatchReference, pinned in turn against the public
// mod.Plan() cost, so the chain
//
//	drained live ObjectStats  ==  BatchReference  ==  mod Plan().Cost
//
// holds exactly.  Delays are binary fractions dividing the horizon, so the
// batch layers' round-vs-ceil horizon conventions agree.

import (
	"context"
	"testing"

	"repro/internal/live"
	"repro/internal/multiobject"
	"repro/internal/serve"
	"repro/mod"
)

// strategyCatalog is the shared test catalog: mixed lengths, popularities
// (including a zero-popularity object that receives no requests), and
// binary-fraction delays that divide the horizon exactly.
func strategyCatalog() multiobject.Catalog {
	return multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 4, Delay: 0.125},
		{Name: "warm", Length: 2, Popularity: 2, Delay: 0.25},
		{Name: "mild", Length: 1, Popularity: 1, Delay: 0.0625},
		{Name: "cold", Length: 0.5, Popularity: 0, Delay: 0.25},
	}
}

func TestLiveStrategiesMatchBatchPlan(t *testing.T) {
	const horizon = 8.0
	cat := strategyCatalog()
	for _, kind := range []serve.ArrivalKind{serve.PoissonArrivals, serve.ConstantArrivals} {
		reqs, err := serve.GenerateRequests(cat, serve.LoadConfig{
			Horizon:          horizon,
			MeanInterArrival: 0.05,
			Kind:             kind,
			Seed:             42,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Per-object arrival traces, exactly as the batch planners see them.
		traces := map[string][]float64{}
		for _, r := range reqs {
			traces[r.Object] = append(traces[r.Object], r.T)
		}
		for _, strategy := range serve.LivePlanners() {
			strategy := strategy
			t.Run(kind.String()+"/"+strategy, func(t *testing.T) {
				for _, shards := range []int{1, 2, 5} {
					rep := runStrategy(t, cat, strategy, reqs, horizon, shards, false)
					checkAgainstBatch(t, strategy, shards, cat, traces, horizon, rep)
					if shards == 2 {
						// Warm-start replanning on (the default, above)
						// versus off must be bit-identical per object.
						cold := runStrategy(t, cat, strategy, reqs, horizon, shards, true)
						checkWarmColdIdentical(t, strategy, rep, cold)
					}
				}
			})
		}
	}
}

func runStrategy(t *testing.T, cat multiobject.Catalog, strategy string, reqs []serve.Request, horizon float64, shards int, coldReplan bool) *serve.Report {
	t.Helper()
	s, err := serve.New(serve.Config{
		Catalog:         cat,
		Shards:          shards,
		DefaultStrategy: strategy,
		// One whole-horizon epoch: the batch-equivalent configuration.
		EpochSlots:     1 << 20,
		ColdReplanning: coldReplan,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", strategy, err)
	}
	defer s.Close()
	rep, err := serve.RunDriver(context.Background(), s, reqs, horizon)
	if err != nil {
		t.Fatalf("RunDriver(%s): %v", strategy, err)
	}
	return rep
}

// checkWarmColdIdentical compares a warm-replanning run against a cold
// one: every per-object stat must match exactly, the ReplanStats reuse
// accounting being the only permitted difference.
func checkWarmColdIdentical(t *testing.T, strategy string, warm, cold *serve.Report) {
	t.Helper()
	if len(warm.Drain.Objects) != len(cold.Drain.Objects) {
		t.Fatalf("%s: object counts diverge warm/cold", strategy)
	}
	for i := range warm.Drain.Objects {
		w, c := warm.Drain.Objects[i], cold.Drain.Objects[i]
		if c.Replan.WarmReplans != 0 {
			t.Errorf("%s %s: cold run reports %d warm replans", strategy, c.Name, c.Replan.WarmReplans)
		}
		if w.Replan.Replans != c.Replan.Replans {
			t.Errorf("%s %s: replans %d (warm) != %d (cold)", strategy, w.Name, w.Replan.Replans, c.Replan.Replans)
		}
		w.Replan, c.Replan = serve.ReplanStats{}, serve.ReplanStats{}
		if w != c {
			t.Errorf("%s: object %s diverges between warm and cold replanning:\nwarm %+v\ncold %+v",
				strategy, w.Name, w, c)
		}
	}
}

func checkAgainstBatch(t *testing.T, strategy string, shards int, cat multiobject.Catalog, traces map[string][]float64, horizon float64, rep *serve.Report) {
	t.Helper()
	if rep.Degraded != 0 || rep.Rejected != 0 {
		t.Fatalf("shards=%d: uncapped run degraded %d / rejected %d", shards, rep.Degraded, rep.Rejected)
	}
	for i, lo := range rep.Drain.Objects {
		obj := cat[i]
		if lo.Name != obj.Name {
			t.Fatalf("shards=%d object %d: name %q, want %q", shards, i, lo.Name, obj.Name)
		}
		if lo.Strategy != strategy {
			t.Errorf("shards=%d %s: strategy %q, want %q", shards, lo.Name, lo.Strategy, strategy)
		}
		times := traces[obj.Name]
		wantStreams, wantCost, err := live.BatchReference(strategy, times, horizon, obj, false, 1)
		if err != nil {
			t.Fatalf("BatchReference(%s, %s): %v", strategy, obj.Name, err)
		}
		if lo.Streams != wantStreams {
			t.Errorf("shards=%d %s: streams=%d, want %d", shards, lo.Name, lo.Streams, wantStreams)
		}
		if lo.FinalizedStreams != lo.Streams {
			t.Errorf("shards=%d %s: %d of %d streams finalized after drain",
				shards, lo.Name, lo.FinalizedStreams, lo.Streams)
		}
		if lo.Cost != wantCost {
			t.Errorf("shards=%d %s: cost=%g, want %g (bit-identical)", shards, lo.Name, lo.Cost, wantCost)
		}
		if lo.ReplanFailures != 0 {
			t.Errorf("shards=%d %s: %d replan fallbacks", shards, lo.Name, lo.ReplanFailures)
		}
		if lo.Arrivals != int64(len(times)) {
			t.Errorf("shards=%d %s: arrivals=%d, want %d", shards, lo.Name, lo.Arrivals, len(times))
		}

		// The reference itself must be the public batch planner's number:
		// the same trace through mod.Plan() yields the same cost bit for
		// bit, so the drained live run equals the batch Plan().
		planner, err := mod.New(strategy,
			mod.WithMediaLength(obj.Length), mod.WithDelay(obj.Delay), mod.WithHorizon(horizon))
		if err != nil {
			t.Fatalf("mod.New(%s): %v", strategy, err)
		}
		plan, err := planner.Plan(context.Background(), mod.Instance{Arrivals: times})
		if err != nil {
			t.Fatalf("mod Plan(%s, %s): %v", strategy, obj.Name, err)
		}
		if plan.Cost != wantCost {
			t.Errorf("%s %s: batch Plan cost=%g, BatchReference=%g (must be bit-identical)",
				strategy, lo.Name, plan.Cost, wantCost)
		}
	}
}
