package serve_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/serve"
)

func newHTTPServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	cat := multiobject.ZipfCatalog(4, 1.0, 0.1, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(serve.Handler(s))
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

func TestHTTPRequestStatsObjects(t *testing.T) {
	_, hs := newHTTPServer(t)

	resp, err := http.Post(hs.URL+"/request", "application/json",
		strings.NewReader(`{"object":"object-01","t":0.42}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /request = %d, want 200", resp.StatusCode)
	}
	var tk serve.Ticket
	if err := json.NewDecoder(resp.Body).Decode(&tk); err != nil {
		t.Fatal(err)
	}
	if tk.Decision != serve.Admitted || tk.Slot != 4 {
		t.Fatalf("ticket = %+v, want admitted slot 4", tk)
	}

	resp, err = http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 || len(st.Objects) != 4 {
		t.Fatalf("stats = %+v, want 1 admitted over 4 objects", st)
	}

	resp, err = http.Get(hs.URL + "/objects/object-01")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var os serve.ObjectStats
	if err := json.NewDecoder(resp.Body).Decode(&os); err != nil {
		t.Fatal(err)
	}
	if os.Name != "object-01" || os.Arrivals != 1 {
		t.Fatalf("object stats = %+v", os)
	}
}

func TestHTTPErrorsAndHealth(t *testing.T) {
	_, hs := newHTTPServer(t)

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"POST", "/request", `{"object":"missing"}`, http.StatusNotFound},
		{"POST", "/request", `{bad json`, http.StatusBadRequest},
		{"GET", "/request", "", http.StatusMethodNotAllowed},
		{"GET", "/objects/none", "", http.StatusNotFound},
		{"GET", "/healthz", "", http.StatusOK},
		{"GET", "/metrics", "", http.StatusOK},
	} {
		req, err := http.NewRequest(tc.method, hs.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestHTTPMetricsShape(t *testing.T) {
	_, hs := newHTTPServer(t)
	if _, err := http.Post(hs.URL+"/request", "application/json",
		strings.NewReader(`{"object":"object-02","t":0.1}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["serve.admitted"] != 1 {
		t.Errorf("metrics = %v, want serve.admitted=1", m)
	}
	for _, key := range []string{"serve.degraded", "serve.rejected", "serve.unknown", "serve.live_channels"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// TestHTTPDriver runs the closed-loop HTTP load generator against a live
// endpoint and checks the report agrees with the server's own counters.
func TestHTTPDriver(t *testing.T) {
	s, hs := newHTTPServer(t)
	reqs, err := serve.GenerateRequests(
		multiobject.ZipfCatalog(4, 1.0, 0.1, 1.0),
		serve.LoadConfig{Horizon: 3, MeanInterArrival: 0.05, Kind: serve.PoissonArrivals, Seed: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := serve.RunHTTPDriver(context.Background(), hs.URL, reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted != len(reqs) {
		t.Fatalf("admitted %d of %d requests", rep.Admitted, len(reqs))
	}
	if rep.Latency.N != len(reqs) {
		t.Fatalf("measured %d latencies, want %d", rep.Latency.N, len(reqs))
	}
	if rep.Stats == nil || rep.Stats.Admitted != int64(len(reqs)) {
		t.Fatalf("server stats = %+v, want %d admitted", rep.Stats, len(reqs))
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != int64(len(reqs)) {
		t.Fatalf("server-side admitted = %d, want %d", st.Admitted, len(reqs))
	}
	var out strings.Builder
	rep.Render(&out)
	if !strings.Contains(out.String(), "requests:") {
		t.Error("report rendering missing request count")
	}
}
