package serve_test

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/arrivals"
	"repro/internal/multiobject"
	"repro/internal/serve"
)

func TestSubmitTicketShape(t *testing.T) {
	cat := multiobject.ZipfCatalog(3, 1.0, 0.1, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, err := s.Submit(serve.Request{Object: "object-01", T: 0.55})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Decision != serve.Admitted {
		t.Fatalf("decision = %q, want admitted", tk.Decision)
	}
	if tk.Slot != 5 { // floor(0.55 / 0.1)
		t.Errorf("slot = %d, want 5", tk.Slot)
	}
	if want := 0.6; math.Abs(tk.StartAt-want) > 1e-12 {
		t.Errorf("start_at = %g, want %g", tk.StartAt, want)
	}
	if tk.StartAt-tk.T > tk.Delay+1e-12 {
		t.Errorf("offered delay %g exceeds guarantee %g", tk.StartAt-tk.T, tk.Delay)
	}
	// The receiving program runs from the root stream down to the client's
	// own slot, strictly increasing.
	if len(tk.Program) == 0 || tk.Program[len(tk.Program)-1] != tk.Slot {
		t.Fatalf("program %v does not end at slot %d", tk.Program, tk.Slot)
	}
	for i := 1; i < len(tk.Program); i++ {
		if tk.Program[i] <= tk.Program[i-1] {
			t.Fatalf("program %v is not strictly increasing", tk.Program)
		}
	}
}

func TestUnknownObjectAndClose(t *testing.T) {
	cat := multiobject.ZipfCatalog(2, 1.0, 0.1, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(serve.Request{Object: "nope", T: 0}); !errors.Is(err, serve.ErrUnknownObject) {
		t.Fatalf("unknown object error = %v", err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Unknown != 1 {
		t.Errorf("unknown counter = %d, want 1", st.Unknown)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Submit(serve.Request{Object: "object-01", T: 0}); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	if _, err := s.Stats(); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("stats after close = %v, want ErrClosed", err)
	}
}

// TestAdmissionDegradesThenRejects drives one object far past a tiny
// channel cap and checks the controller walks the FitDelays ladder:
// admissions at scale 1, then degradations that raise the delay, then
// rejections once MaxDelayScale is exhausted — every outcome counted.
func TestAdmissionDegradesThenRejects(t *testing.T) {
	cat := multiobject.Catalog{{Name: "hot", Length: 1, Popularity: 1, Delay: 0.01}}
	s, err := serve.New(serve.Config{
		Catalog:       cat,
		MaxChannels:   2,
		DegradeStep:   2,
		MaxDelayScale: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var admitted, degraded, rejected int
	lastDelay := 0.01
	for i := 0; i < 400; i++ {
		tk, err := s.Submit(serve.Request{Object: "hot", T: float64(i) * 0.005})
		if err != nil {
			t.Fatal(err)
		}
		switch tk.Decision {
		case serve.Admitted:
			admitted++
		case serve.Degraded:
			degraded++
			if tk.Delay <= lastDelay {
				t.Fatalf("degradation %d did not raise the delay: %g -> %g", degraded, lastDelay, tk.Delay)
			}
			lastDelay = tk.Delay
		case serve.Rejected:
			rejected++
			if tk.Program != nil {
				t.Fatal("rejected ticket carries a program")
			}
		}
	}
	if admitted == 0 || degraded == 0 || rejected == 0 {
		t.Fatalf("expected all outcomes, got admitted=%d degraded=%d rejected=%d", admitted, degraded, rejected)
	}
	if degraded != 2 { // scale 1 -> 2 -> 4, then the ladder is exhausted
		t.Errorf("degraded = %d, want 2 (step 2 up to scale 4)", degraded)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != int64(admitted) || st.Degraded != int64(degraded) || st.Rejected != int64(rejected) {
		t.Errorf("counters %d/%d/%d, want %d/%d/%d",
			st.Admitted, st.Degraded, st.Rejected, admitted, degraded, rejected)
	}
	obj, err := s.Object("hot")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Scale != 4 {
		t.Errorf("final scale = %g, want 4", obj.Scale)
	}
	if obj.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", obj.Epoch)
	}
}

// TestConcurrentSubmitRace exercises the sharded event loops under
// concurrent load from many goroutines (plus stats readers); run with
// -race in CI.
func TestConcurrentSubmitRace(t *testing.T) {
	cat := multiobject.ZipfCatalog(16, 1.0, 0.05, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat, Shards: 4, MaxChannels: 50})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("object-%02d", (g*7+i)%16+1)
				if _, err := s.Submit(serve.Request{Object: name, T: float64(i) * 0.01}); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Stats(); err != nil {
					t.Errorf("stats: %v", err)
					return
				}
				if _, err := s.Object("object-01"); err != nil {
					t.Errorf("object: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	dr, err := s.Drain(4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, o := range dr.Objects {
		total += o.Arrivals
	}
	if st := dr.Stats; total != st.Admitted+st.Degraded {
		t.Errorf("per-object arrivals %d != admitted+degraded %d", total, st.Admitted+st.Degraded)
	}
	s.Close()
}

func TestGenerateRequestsDeterministicAndSorted(t *testing.T) {
	cat := multiobject.ZipfCatalog(5, 1.0, 0.05, 1.0)
	cfg := serve.LoadConfig{Horizon: 6, MeanInterArrival: 0.05, Kind: serve.PoissonArrivals, Seed: 3}
	a, err := serve.GenerateRequests(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serve.GenerateRequests(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].T < a[i-1].T {
			t.Fatalf("requests not time-sorted at %d", i)
		}
	}
	cfg.Seed = 4
	c, err := serve.GenerateRequests(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced an identical request sequence")
		}
	}
}

// TestRampArrivals checks the ramp process is valid, deterministic, and
// actually ramps: the second half of the horizon sees more arrivals than
// the first when the rate quadruples.
func TestRampArrivals(t *testing.T) {
	tr := arrivals.Ramp(0.1, 0.025, 100, 7)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr2 := arrivals.Ramp(0.1, 0.025, 100, 7)
	if len(tr) != len(tr2) {
		t.Fatalf("ramp not deterministic: %d vs %d arrivals", len(tr), len(tr2))
	}
	first, second := 0, 0
	for _, at := range tr {
		if at < 50 {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Errorf("ramp did not ramp: %d arrivals before midpoint, %d after", first, second)
	}
	// Expected count: integral of the rate = horizon * (r0+r1)/2 = 100*25 = 2500.
	if len(tr) < 2000 || len(tr) > 3000 {
		t.Errorf("ramp produced %d arrivals, want ~2500", len(tr))
	}
	reqs, err := serve.GenerateRequests(
		multiobject.ZipfCatalog(3, 1.0, 0.1, 1.0),
		serve.LoadConfig{Horizon: 5, MeanInterArrival: 0.1, Kind: serve.RampArrivals, Seed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) == 0 {
		t.Fatal("ramp load produced no requests")
	}
}

// TestMaxSlotJumpGuard pins the event-loop guard: a request stamped
// absurdly far in the future is rejected without advancing the clock, and
// the server keeps serving normal requests afterwards.
func TestMaxSlotJumpGuard(t *testing.T) {
	cat := multiobject.ZipfCatalog(2, 1.0, 0.1, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat, MaxSlotJump: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tk, err := s.Submit(serve.Request{Object: "object-01", T: 1e15})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Decision != serve.Rejected {
		t.Fatalf("far-future request decision = %q, want rejected", tk.Decision)
	}
	tk, err = s.Submit(serve.Request{Object: "object-01", T: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Decision != serve.Admitted || tk.Slot != 2 {
		t.Fatalf("follow-up request = %+v, want admitted at slot 2", tk)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.Admitted != 1 {
		t.Errorf("counters rejected=%d admitted=%d, want 1/1", st.Rejected, st.Admitted)
	}
	// Within the bound, big jumps still work (and don't wedge).
	tk, err = s.Submit(serve.Request{Object: "object-02", T: 50})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Decision != serve.Admitted {
		t.Fatalf("in-bound jump = %+v, want admitted", tk)
	}
}

// TestDegradeCorrectsGauge checks that after a degradation truncates an
// epoch's trailing streams, the live gauge drains back to the truncated
// plan's level instead of staying pinned at the stale estimates: the
// controller must not cascade into rejections while real usage is under
// budget.
func TestDegradeCorrectsGauge(t *testing.T) {
	cat := multiobject.Catalog{{Name: "hot", Length: 1, Popularity: 1, Delay: 0.01}}
	s, err := serve.New(serve.Config{
		Catalog:       cat,
		MaxChannels:   3,
		DegradeStep:   4,
		MaxDelayScale: 100, // delay ladder never exhausts (clamped at the length)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lateRejections := 0
	for i := 0; i < 2000; i++ {
		tk, err := s.Submit(serve.Request{Object: "hot", T: float64(i) * 0.01})
		if err != nil {
			t.Fatal(err)
		}
		// Early rejections are legitimate: streams of the pre-degradation
		// epochs really are still transmitting while the degraded plan
		// ramps up.  But once those streams end (well before t = 15 here),
		// the truncation corrections must have drained the gauge to the
		// degraded plan's level — usage of the final plan (L = 2) peaks at
		// 2 channels, under the cap of 3 — so late rejections would mean
		// the gauge is pinned high by stale estimates.
		if tk.Decision == serve.Rejected && i >= 1500 {
			lateRejections++
		}
	}
	if lateRejections > 0 {
		t.Errorf("%d rejections in steady state: gauge did not recover after degradations", lateRejections)
	}
	obj, err := s.Object("hot")
	if err != nil {
		t.Fatal(err)
	}
	// Step 4 under MaxDelayScale 100 walks 1 -> 4 -> 16 -> 64 and stops.
	if obj.Scale != 64 {
		t.Errorf("steady-state scale = %g, want 64", obj.Scale)
	}
}
