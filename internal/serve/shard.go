package serve

import (
	"fmt"
	"runtime"

	"repro/internal/bandwidth"
	"repro/internal/live"
	"repro/internal/multiobject"
	"repro/internal/stats"
)

// submitMsg asks the shard to admit one request.  enqueueNS carries the
// submit-side clock reading when stage metering is on (0 = unmetered),
// so the loop can observe the queue-wait stage at dequeue.
type submitMsg struct {
	req   Request
	reply chan Ticket
	// st is the request's pre-resolved object state (set by the pooled
	// Submit path from the router's route entry), saving the loop a
	// second name lookup; only the shard loop dereferences it.  The
	// legacy value-boxed form leaves it nil and the loop looks up.
	st        *objectState
	enqueueNS int64
}

// submitBatchMsg asks the shard to admit a batch of requests in order —
// one channel send for the whole batch.  The caller owns both slices;
// the shard writes out[i] for reqs[i] and signals done exactly once.
// enqueueNS is the batch's submit-side clock reading (0 = unmetered);
// every entry shares the batch's queue wait.
type submitBatchMsg struct {
	reqs      []Request
	out       []Ticket
	done      chan struct{}
	enqueueNS int64
}

// pauseMsg parks the shard loop: it closes ack once parked and blocks
// until resume closes (or the server shuts down).  Used by Server.Pause
// to hold a queue at a known occupancy in overload tests.
type pauseMsg struct {
	ack    chan struct{}
	resume chan struct{}
}

// statsMsg asks the shard for a snapshot of its objects.
type statsMsg struct {
	reply chan shardSnapshot
}

// drainMsg asks the shard to finalize every object at the horizon.
type drainMsg struct {
	horizon float64
	reply   chan shardSnapshot
}

// shardSnapshot is a shard's answer to statsMsg/drainMsg.
type shardSnapshot struct {
	objects   []ObjectStats
	intervals []bandwidth.Interval
	// stages is a copy of the shard's per-strategy stage histograms
	// (indexed like Server.stratNames); Server.Metrics merges them.
	stages []stageHist
}

// stageHist is one strategy's stage histograms on one shard: plain
// values owned by the loop goroutine, observed on the admit path with no
// allocation (stats.LogHistogram is a fixed-size value type).
type stageHist struct {
	queue  stats.LogHistogram
	plan   stats.LogHistogram
	replan stats.LogHistogram
}

// objectState is all per-object state, owned exclusively by one shard's
// event loop.  The scheduling itself lives in the live.Incremental value:
// the on-line forest natively, every other planner family through
// epoch-based replanning.
type objectState struct {
	obj      multiobject.Object
	index    int // catalog position, for stable reporting order
	strategy string
	// si is the strategy's index in Server.stratNames, addressing the
	// shard's stage histograms without a map lookup on the hot path.
	si int

	// Current delay epoch.  A degradation drains the scheduler and starts
	// a fresh one with a larger delay; Slot/Program labels are
	// epoch-relative.
	epoch int
	scale float64
	delay float64
	L     int64
	sched live.Incremental
	// carry accumulates the totals of schedulers closed by degradations.
	carry live.Totals

	arrivals int64
	rejected int64
}

// totals folds the closed epochs' accounting with the live scheduler's.
func (st *objectState) totals() live.Totals {
	t := st.carry
	t.Accumulate(st.sched.Totals())
	return t
}

// replanNanos is the object's cumulative metered replan wall time; the
// stage decomposition reads its delta across one admitCore call.  Cheap
// enough for the hot path: Totals() is a value copy on every adapter.
//
//modlint:noalloc
func (st *objectState) replanNanos() int64 {
	return st.carry.Replan.ReplanNanos + st.sched.Totals().Replan.ReplanNanos
}

// shard is one scheduler shard: a single-goroutine event loop owning the
// admission state of the objects routed to it.  The shard also implements
// live.Sink: scheduler stream events become the live channel gauge and
// the real-time bandwidth record.
//
//modlint:loop
type shard struct {
	id int
	// total is the server's shard count (at least 1, even on loop-less
	// benchmark harnesses); ticket IDs are ticketSeq*total + id + 1, so
	// IDs are dense per shard and disjoint across shards.
	total int
	srv   *Server
	msgs  chan any

	objects []*objectState
	byName  map[string]*objectState
	cache   *live.Cache

	// usage records every finalized stream interval in real time.
	usage *bandwidth.Usage
	// ends is a min-heap of gauge events: each started stream contributes a
	// -1 at its (estimated) end time, and an epoch truncation contributes a
	// corrective -1 at the true end plus a cancelling +1 at the stale
	// estimate, so the live gauge never overcounts streams a degradation
	// has already cut short.  Events are applied as time passes them.
	ends []endEvent
	// now is the shard's monotone virtual clock.
	now float64
	// minDelay is the smallest initial object delay on the shard (delays
	// only grow under degradation), the slot unit of the MaxSlotJump guard.
	minDelay float64

	// stages holds the per-strategy stage histograms (indexed like
	// Server.stratNames), preallocated before the loop starts; Observe
	// never allocates, so the admit path stays 0 allocs/op with stage
	// metering on.
	stages []stageHist
	// lastPlanNS/lastReplanNS carry one admission's stage split from
	// admitCore to the ticket materialization (loop-owned scratch).
	lastPlanNS   int64
	lastReplanNS int64

	// Durability state (nil/zero without Config.Store).  ticketSeq is the
	// next ticket's shard-local sequence number; it survives restarts via
	// the snapshot and WAL replay, so ticket IDs are never reissued.
	// admittedL/degradedL/rejectedL mirror this shard's contributions to
	// the server-wide atomic counters — the atomics cannot be decomposed
	// per shard at snapshot time, the loop-owned mirrors can.
	ticketSeq int64
	admittedL int64
	degradedL int64
	rejectedL int64
	// walCh feeds the shard's WAL writer goroutine; nil disables
	// durability routing in the loop.  The loop is the only sender.
	// (Cross-goroutine repair signalling lives on Server.walRepair, off
	// the loop-owned struct.)
	walCh chan walMsg
	// snapEvery/nextSnap drive the snapshot cadence in virtual time
	// (SnapshotEpochs × EpochSlots slots of the smallest object delay).
	snapEvery float64
	nextSnap  float64
	// snapFree recycles snapshot capture buffers between the loop (which
	// fills one per snapshot) and the WAL writer (which returns it after
	// encoding).  Capacity 2: one in flight, one ready for the next
	// cadence tick.  A channel, not a sync.Pool — the loop-owned struct
	// carries no sync/atomic state (modlint:loop).
	snapFree chan *shardSnapshotState
}

func newShard(id int, srv *Server) *shard {
	total := srv.cfg.Shards
	if total < 1 {
		total = 1
	}
	return &shard{
		id:     id,
		total:  total,
		srv:    srv,
		msgs:   make(chan any, srv.cfg.QueueDepth),
		byName: make(map[string]*objectState),
		cache:  live.NewCache(),
		usage:  bandwidth.New(),
	}
}

// StreamStarted implements live.Sink: a new transmission raises the live
// channel gauge, with a retirement event at its estimated end.
func (sh *shard) StreamStarted(estEnd float64) {
	sh.pushEnd(estEnd, -1)
	sh.srv.gauge.Add(1)
}

// ProvisionalStarted implements live.Sink: an epoch strategy's
// merging-free placeholder counts against the gauge exactly like a
// stream until its epoch's replan trims it; it never reaches the
// bandwidth usage.
func (sh *shard) ProvisionalStarted(estEnd float64) {
	sh.pushEnd(estEnd, -1)
	sh.srv.gauge.Add(1)
}

// StreamFinalized implements live.Sink: a final-length transmission is
// recorded in the real-time bandwidth usage.
func (sh *shard) StreamFinalized(start, length float64) {
	sh.usage.AddLength(start, length)
}

// StreamTrimmed implements live.Sink: truncation cut a stream short, so
// retire it at the true end and cancel the stale estimate.
func (sh *shard) StreamTrimmed(end, staleEnd float64) {
	sh.pushEnd(end, -1)
	sh.pushEnd(staleEnd, +1)
}

// newScheduler builds the live scheduler for a strategy over obj with the
// given effective delay, based at absolute time base.
func (sh *shard) newScheduler(obj multiobject.Object, strategy string, delay, base float64) (live.Incremental, error) {
	obj.Delay = delay
	var nowNanos func() int64
	if sh.srv.cfg.MeterReplanNanos || sh.srv.cfg.MeterStages {
		nowNanos = sh.srv.nowNanos
	}
	return live.New(strategy, live.Config{
		Object:       obj,
		Base:         base,
		EpochSlots:   sh.srv.cfg.EpochSlots,
		ConstantRate: sh.srv.cfg.ConstantRateTuning,
		PlanWorkers:  sh.srv.cfg.PlanWorkers,
		Cache:        sh.cache,
		Sink:         sh,
		Ctx:          sh.srv.ctx,
		ColdReplan:   sh.srv.cfg.ColdReplanning,
		NowNanos:     nowNanos,
	})
}

// addObject registers a catalog object with the shard (before loop start).
// The strategy name was resolved and validated by Server.New.
func (sh *shard) addObject(o multiobject.Object, index int, strategy string) error {
	st := &objectState{obj: o, index: index, strategy: strategy, scale: 1,
		si: sh.srv.strategyIndex(strategy)}
	for len(sh.stages) <= st.si {
		sh.stages = append(sh.stages, stageHist{})
	}
	sched, err := sh.newScheduler(o, strategy, o.Delay, 0)
	if err != nil {
		return fmt.Errorf("%w: object %q: %w", ErrBadConfig, o.Name, err)
	}
	st.sched = sched
	st.delay = o.Delay
	st.L = o.Slots()
	sh.objects = append(sh.objects, st)
	sh.byName[o.Name] = st
	if sh.minDelay == 0 || o.Delay < sh.minDelay {
		sh.minDelay = o.Delay
	}
	return nil
}

// loop is the shard's event loop; all object state is confined to it.
// One blocking select per wake, then a burst drain: messages already
// queued are handled through non-blocking receives, so a backlog costs
// one scheduler wake and one multi-case select for the whole burst
// instead of one per message (the burst is also what feeds the WAL
// writer's group commits whole cohorts at a time).
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	q := &sh.srv.queues[sh.id]
	// Config.FlushPerAck opts the loop out of burst draining too — the
	// legacy pipeline took one select per message.
	burst := !sh.srv.cfg.FlushPerAck
	for {
		var m any
		select {
		case m = <-sh.msgs:
		case <-sh.srv.quit:
			return
		}
		for {
			if !sh.handle(m, q) {
				return
			}
			if !burst {
				break
			}
			m = nil
			yielded := false
			for m == nil {
				select {
				case m = <-sh.msgs:
				default:
				}
				if m != nil || yielded {
					break
				}
				// The queue ran dry, but on a saturated box the
				// submitters this burst unblocked are runnable and
				// about to enqueue: one yield lets them run, turning
				// a full park/unpark cycle per request into a single
				// scheduler pass per burst.  If nothing arrives after
				// the yield the loop parks for real below.
				runtime.Gosched()
				yielded = true
			}
			if m == nil {
				break
			}
		}
	}
}

// handle processes one dequeued loop message; false tells the loop to
// exit (shutdown observed while parked).
func (sh *shard) handle(m any, q *shardQueue) bool {
	switch msg := m.(type) {
	case *submitMsg:
		queueNS := int64(-1)
		if msg.enqueueNS != 0 {
			queueNS = sh.srv.nowNanos() - msg.enqueueNS
		}
		// The submitter owns the message and recycles it after the ack;
		// the loop only reads it, and only before the ack is sent.
		req, reply, st := msg.req, msg.reply, msg.st
		// Capture the record before admit, send record and ack as
		// one message after: the durable log stays an exact prefix
		// of the acked requests, at one channel send per request.
		if sh.walCh != nil {
			sh.submitDurable(st, req, queueNS, reply, q)
			sh.maybeSnapshot()
		} else {
			tk := sh.handleSubmitFor(st, req, queueNS)
			q.dequeued.Add(1)
			reply <- tk
		}
	case submitMsg:
		// Value-boxed form: sent by Submit's legacy FlushPerAck path,
		// which resolves the object on the loop like the old pipeline.
		queueNS := int64(-1)
		if msg.enqueueNS != 0 {
			queueNS = sh.srv.nowNanos() - msg.enqueueNS
		}
		if sh.walCh != nil {
			sh.submitDurable(msg.st, msg.req, queueNS, msg.reply, q)
			sh.maybeSnapshot()
		} else {
			tk := sh.handleSubmit(msg.req, queueNS)
			q.dequeued.Add(1)
			msg.reply <- tk
		}
	case submitBatchMsg:
		queueNS := int64(-1)
		if msg.enqueueNS != 0 {
			queueNS = sh.srv.nowNanos() - msg.enqueueNS
		}
		sh.admitBatch(msg.reqs, msg.out, queueNS)
		n := int64(len(msg.reqs))
		q.dequeued.Add(n)
		if sh.walCh != nil {
			sh.walCh <- walMsg{kind: walBatchAck, done: msg.done}
			sh.maybeSnapshot()
		} else {
			msg.done <- struct{}{}
		}
	case snapshotMsg:
		if sh.walCh == nil {
			msg.reply <- fmt.Errorf("%w: shard %d has no durability store", ErrBadConfig, sh.id)
			return true
		}
		sh.walCh <- walMsg{kind: walSnapshot, snap: sh.captureSnapshot(), errc: msg.reply}
		sh.nextSnap = sh.now + sh.snapEvery
	case statsMsg:
		msg.reply <- sh.snapshot()
	case drainMsg:
		sh.drain(msg.horizon)
		msg.reply <- sh.snapshot()
	case pauseMsg:
		close(msg.ack)
		select {
		case <-msg.resume:
		case <-sh.srv.quit:
			return false
		}
	}
	return true
}

// handleSubmit clamps and guards the request's timestamp, runs the admit
// hot path, and materializes the ticket (the one step that allocates: the
// receiving program is copied out of the scheduler's buffer so the caller
// can hold it).  A non-negative queueNS is the request's measured queue
// wait: it is observed into the shard's stage histograms together with
// the plan/replan split admitCore leaves behind, and stamped on the
// ticket (requests that never reach admitCore — unknown objects, slot
// jumps — record no stage samples).
func (sh *shard) handleSubmit(req Request, queueNS int64) Ticket {
	return sh.handleSubmitFor(sh.byName[req.Object], req, queueNS)
}

// handleSubmitFor is handleSubmit with the object already resolved, so
// the durable path's record capture and admit share one map lookup.
func (sh *shard) handleSubmitFor(st *objectState, req Request, queueNS int64) Ticket {
	if st == nil {
		// The router should never send a foreign object here; answer a
		// rejection rather than wedging the caller.  No sequence number:
		// unknown requests touch no snapshotted state and are not logged.
		sh.srv.unknown.Add(1)
		return Ticket{Object: req.Object, Decision: Rejected, T: req.T}
	}
	// Every known-object request — including rejections, which mutate
	// counters — consumes one sequence number, matching its WAL record.
	id := sh.ticketSeq*int64(sh.total) + int64(sh.id) + 1
	sh.ticketSeq++
	// The shard clock is monotone: a request stamped earlier than the
	// latest event is served as if it arrived now.
	t := req.T
	if t < sh.now {
		t = sh.now
	}
	// Guard the event loop: a timestamp absurdly far in the future would
	// make the oblivious plan start an unbounded number of streams before
	// this request could be answered.  Reject it without advancing.
	if (t-sh.now)/sh.minDelay > float64(sh.srv.cfg.MaxSlotJump) {
		st.rejected++
		sh.rejectedL++
		sh.srv.rejected.Add(1)
		return Ticket{ID: id, Object: st.obj.Name, Decision: Rejected, T: req.T, Epoch: st.epoch, Strategy: st.strategy, Delay: st.delay}
	}
	adm, decision := sh.admitCore(st, t)
	tk := Ticket{
		ID:       id,
		Object:   st.obj.Name,
		Decision: decision,
		T:        t,
		Epoch:    st.epoch,
		Strategy: st.strategy,
		Delay:    st.delay,
	}
	if queueNS >= 0 {
		hs := &sh.stages[st.si]
		hs.queue.Observe(queueNS)
		hs.plan.Observe(sh.lastPlanNS)
		if sh.lastReplanNS > 0 {
			hs.replan.Observe(sh.lastReplanNS)
		}
		tk.QueueNS = queueNS
		tk.PlanNS = sh.lastPlanNS
		tk.ReplanNS = sh.lastReplanNS
	}
	if decision == Rejected {
		return tk
	}
	tk.Slot = adm.Slot
	tk.Delay = adm.Delay
	tk.StartAt = adm.StartAt
	if len(adm.Program) > 0 {
		tk.Program = append([]int64(nil), adm.Program...)
	}
	return tk
}

// admitBatch runs the admit path for a whole batch: every entry goes
// through exactly the same handleSubmit as a single submit, so tickets
// are byte-identical to sequential submission — the only difference is
// that the batch crossed the shard channel once.  The loop itself never
// allocates (BenchmarkShardAdmitBatch and the CI guard pin 0 allocs/op
// for program-less strategies); handleSubmit's receiving-program copy
// remains the one intentional per-ticket allocation.
//
// Every entry shares the batch's queue wait (queueNS; negative =
// unmetered), since the batch crossed the channel as one message.
//
//modlint:noalloc
func (sh *shard) admitBatch(reqs []Request, out []Ticket, queueNS int64) {
	durable := sh.walCh != nil
	for i := range reqs {
		if durable {
			sh.logSubmit(reqs[i])
		}
		out[i] = sh.handleSubmit(reqs[i], queueNS)
	}
}

// admitCore is the shard admit hot path: advance every scheduler to t,
// retire elapsed gauge events, run the admission controller, and admit
// the arrival into its scheduler.  It performs no per-request allocation
// in steady state (BenchmarkShardAdmit and a CI guard pin this); the
// Admission's Program references the scheduler's buffer.
//
// With Config.MeterStages set it also splits the call's wall time into a
// plan share and the requested object's replan share (the delta of its
// metered ReplanStats across the call; epoch replans of *other* objects
// triggered by the same clock advance are accounted to plan), leaving
// both in the shard's scratch fields for the ticket materialization.
//
//modlint:noalloc
func (sh *shard) admitCore(st *objectState, t float64) (live.Admission, Decision) {
	meter := sh.srv.cfg.MeterStages
	var t0, r0 int64
	if meter {
		t0 = sh.srv.nowNanos()
		r0 = st.replanNanos()
	}
	sh.now = t
	sh.advanceAll(t)
	sh.popEnds(t)

	var adm live.Admission
	decision := sh.admit(st, t)
	if decision == Rejected {
		st.rejected++
		sh.rejectedL++
		sh.srv.rejected.Add(1)
	} else {
		adm = st.sched.Admit(t)
		st.arrivals++
		if decision == Degraded {
			sh.degradedL++
			sh.srv.degraded.Add(1)
		} else {
			sh.admittedL++
			sh.srv.admitted.Add(1)
		}
	}
	if meter {
		rd := st.replanNanos() - r0
		if rd < 0 {
			rd = 0
		}
		plan := sh.srv.nowNanos() - t0 - rd
		if plan < 0 {
			plan = 0
		}
		sh.lastReplanNS = rd
		sh.lastPlanNS = plan
	}
	return adm, decision
}

// advanceAll advances every object of the shard to time t.  The scan is
// linear in the shard's object count, but the per-object no-op costs one
// division and compare; if catalogs grow by another order of magnitude,
// replace the scan with a min-heap keyed on each object's next slot start.
//
//modlint:noalloc
func (sh *shard) advanceAll(t float64) {
	for _, st := range sh.objects {
		st.sched.Advance(t)
	}
}

// drain finalizes every object of the shard at the horizon.  The clock
// advance and scheduler mutations are deliberately outside the
// WAL/snapshot discipline — see Server.Drain for the durability caveat.
func (sh *shard) drain(horizon float64) {
	if horizon > sh.now {
		sh.now = horizon
	}
	for _, st := range sh.objects {
		st.sched.Drain(horizon)
	}
	sh.popEnds(sh.now)
}

// snapshot reports the shard's per-object stats and finalized intervals.
func (sh *shard) snapshot() shardSnapshot {
	snap := shardSnapshot{
		objects:   make([]ObjectStats, 0, len(sh.objects)),
		intervals: sh.usage.Intervals(),
		stages:    append([]stageHist(nil), sh.stages...),
	}
	for _, st := range sh.objects {
		tot := st.totals()
		snap.objects = append(snap.objects, ObjectStats{
			Name:             st.obj.Name,
			Shard:            sh.id,
			Strategy:         st.strategy,
			L:                st.L,
			Delay:            st.delay,
			Scale:            st.scale,
			Epoch:            st.epoch,
			Arrivals:         st.arrivals,
			Clients:          tot.Clients,
			Rejected:         st.rejected,
			Streams:          tot.Streams,
			FinalizedStreams: tot.FinalizedStreams,
			SlotUnits:        tot.SlotUnits,
			BusyTime:         tot.BusyTime,
			Cost:             tot.Cost,
			ReplanFailures:   tot.ReplanFailures,
			Replan:           tot.Replan,
		})
	}
	return snap
}

// endEvent is one deferred gauge adjustment: apply delta once time passes t.
type endEvent struct {
	t     float64
	delta int32
}

// pushEnd pushes a gauge event onto the min-heap (ordered by time).
//
//modlint:noalloc
func (sh *shard) pushEnd(t float64, delta int32) {
	sh.ends = append(sh.ends, endEvent{t: t, delta: delta})
	i := len(sh.ends) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if sh.ends[parent].t <= sh.ends[i].t {
			break
		}
		sh.ends[parent], sh.ends[i] = sh.ends[i], sh.ends[parent]
		i = parent
	}
}

// popEnds applies every gauge event whose time has passed; stream ends
// decrement the live channel gauge, truncation corrections cancel out.
//
//modlint:noalloc
func (sh *shard) popEnds(t float64) {
	for len(sh.ends) > 0 && sh.ends[0].t <= t {
		sh.srv.gauge.Add(int64(sh.ends[0].delta))
		last := len(sh.ends) - 1
		sh.ends[0] = sh.ends[last]
		sh.ends = sh.ends[:last]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(sh.ends) && sh.ends[l].t < sh.ends[small].t {
				small = l
			}
			if r < len(sh.ends) && sh.ends[r].t < sh.ends[small].t {
				small = r
			}
			if small == i {
				break
			}
			sh.ends[i], sh.ends[small] = sh.ends[small], sh.ends[i]
			i = small
		}
	}
}
