package serve

import (
	"math"

	"repro/internal/bandwidth"
	"repro/internal/mergetree"
	"repro/internal/multiobject"
	"repro/internal/online"
)

// submitMsg asks the shard to admit one request.
type submitMsg struct {
	req   Request
	reply chan Ticket
}

// statsMsg asks the shard for a snapshot of its objects.
type statsMsg struct {
	reply chan shardSnapshot
}

// drainMsg asks the shard to finalize every object at the horizon.
type drainMsg struct {
	horizon float64
	reply   chan shardSnapshot
}

// shardSnapshot is a shard's answer to statsMsg/drainMsg.
type shardSnapshot struct {
	objects   []ObjectStats
	intervals []bandwidth.Interval
}

// plan is the cached static state of the on-line algorithm for one media
// length: the precomputed server, the untruncated template-group stream
// lengths, and the template group's total bandwidth in slot units.  Shards
// cache plans by L so a thousand-object Zipf catalog with a shared delay
// builds the merge template once per shard, not once per object.
type plan struct {
	onl *online.Server
	// tmplLens are the lengths of a full (untruncated) merge group, indexed
	// by group-relative arrival.
	tmplLens []mergetree.NodeLength
	// tmplUnits is the sum of tmplLens lengths.
	tmplUnits int64
}

// objectState is all per-object state, owned exclusively by one shard's
// event loop.
type objectState struct {
	obj   multiobject.Object
	index int // catalog position, for stable reporting order

	// Current delay epoch.  A degradation finalizes the epoch and starts a
	// new one with a larger delay; Slot/Program labels are epoch-relative.
	epoch     int
	scale     float64
	delay     float64
	L         int64
	plan      *plan
	epochBase float64 // absolute time of the epoch's slot 0
	// started is the number of streams started in this epoch (stream q
	// starts at epochBase + q*delay); finalized is the number of slots
	// whose stream lengths are final (a multiple of the group size during
	// live operation).
	started   int64
	finalized int64
	// lastArrival is the largest occupied arrival slot of the epoch
	// (-1: none); each newly occupied slot is one batched imaginary client.
	lastArrival int64

	// Totals across epochs.
	arrivals         int64
	clients          int64
	rejected         int64
	streams          int64
	finalizedStreams int64
	slotUnits        int64
	busyTime         float64
}

// shard is one scheduler shard: a single-goroutine event loop owning the
// admission state of the objects routed to it.
type shard struct {
	id   int
	srv  *Server
	msgs chan any

	objects []*objectState
	byName  map[string]*objectState
	plans   map[int64]*plan

	// usage records every finalized stream interval in real time.
	usage *bandwidth.Usage
	// ends is a min-heap of gauge events: each started stream contributes a
	// -1 at its (estimated) end time, and an epoch truncation contributes a
	// corrective -1 at the true end plus a cancelling +1 at the stale
	// estimate, so the live gauge never overcounts streams a degradation
	// has already cut short.  Events are applied as time passes them.
	ends []endEvent
	// now is the shard's monotone virtual clock.
	now float64
	// minDelay is the smallest initial object delay on the shard (delays
	// only grow under degradation), the slot unit of the MaxSlotJump guard.
	minDelay float64

	// scratch buffer for partial-group finalization.
	buf []mergetree.NodeLength
}

func newShard(id int, srv *Server) *shard {
	return &shard{
		id:     id,
		srv:    srv,
		msgs:   make(chan any, srv.cfg.QueueDepth),
		byName: make(map[string]*objectState),
		plans:  make(map[int64]*plan),
		usage:  bandwidth.New(),
	}
}

// addObject registers a catalog object with the shard (before loop start).
func (sh *shard) addObject(o multiobject.Object, index int) {
	st := &objectState{obj: o, index: index, scale: 1, lastArrival: -1}
	sh.resetEpoch(st, o.Delay, 0)
	st.epoch = 0
	sh.objects = append(sh.objects, st)
	sh.byName[o.Name] = st
	if sh.minDelay == 0 || o.Delay < sh.minDelay {
		sh.minDelay = o.Delay
	}
}

// planFor returns the cached static plan for media length L.
func (sh *shard) planFor(L int64) *plan {
	if p, ok := sh.plans[L]; ok {
		return p
	}
	onl := online.NewServer(L)
	lens := onl.AppendGroupLengths(nil, onl.TreeSize())
	var units int64
	for _, nl := range lens {
		units += nl.Length
	}
	p := &plan{onl: onl, tmplLens: lens, tmplUnits: units}
	sh.plans[L] = p
	return p
}

// resetEpoch points the object at a fresh epoch with the given delay,
// starting at absolute time base.
func (sh *shard) resetEpoch(st *objectState, delay, base float64) {
	scaled := st.obj
	scaled.Delay = delay
	st.delay = delay
	st.L = scaled.Slots()
	st.plan = sh.planFor(st.L)
	st.epochBase = base
	st.started = 0
	st.finalized = 0
	st.lastArrival = -1
	st.epoch++
}

// loop is the shard's event loop; all object state is confined to it.
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	for {
		select {
		case m := <-sh.msgs:
			switch msg := m.(type) {
			case submitMsg:
				msg.reply <- sh.handleSubmit(msg.req)
			case statsMsg:
				msg.reply <- sh.snapshot()
			case drainMsg:
				sh.drain(msg.horizon)
				msg.reply <- sh.snapshot()
			}
		case <-sh.srv.quit:
			return
		}
	}
}

// handleSubmit advances the shard clock, runs the admission controller,
// and issues the ticket.
func (sh *shard) handleSubmit(req Request) Ticket {
	st := sh.byName[req.Object]
	if st == nil {
		// The router should never send a foreign object here; answer a
		// rejection rather than wedging the caller.
		sh.srv.unknown.Add(1)
		return Ticket{Object: req.Object, Decision: Rejected, T: req.T}
	}
	// The shard clock is monotone: a request stamped earlier than the
	// latest event is served as if it arrived now.
	t := req.T
	if t < sh.now {
		t = sh.now
	}
	// Guard the event loop: a timestamp absurdly far in the future would
	// make the oblivious plan start an unbounded number of streams before
	// this request could be answered.  Reject it without advancing.
	if (t-sh.now)/sh.minDelay > float64(sh.srv.cfg.MaxSlotJump) {
		st.rejected++
		sh.srv.rejected.Add(1)
		return Ticket{Object: st.obj.Name, Decision: Rejected, T: req.T, Epoch: st.epoch, Delay: st.delay}
	}
	sh.now = t
	sh.advanceAll(t)
	sh.popEnds(t)

	decision := sh.admit(st, t)
	if decision == Rejected {
		st.rejected++
		sh.srv.rejected.Add(1)
		return Ticket{Object: st.obj.Name, Decision: Rejected, T: t, Epoch: st.epoch, Delay: st.delay}
	}

	// Slot the request into the current epoch and make sure its stream has
	// started (a degraded request can land before its new epoch's base).
	slot := int64(math.Floor((t - st.epochBase) / st.delay))
	if slot < 0 {
		slot = 0
	}
	if slot < st.lastArrival {
		// Out-of-order timestamp within the epoch: batch into the latest
		// occupied slot, like a request arriving now.
		slot = st.lastArrival
	}
	sh.startStreamsTo(st, slot)
	st.arrivals++
	if slot > st.lastArrival {
		st.lastArrival = slot
		st.clients++
	}
	if decision == Degraded {
		sh.srv.degraded.Add(1)
	} else {
		sh.srv.admitted.Add(1)
	}
	return Ticket{
		Object:   st.obj.Name,
		Decision: decision,
		T:        t,
		Epoch:    st.epoch,
		Slot:     slot,
		Delay:    st.delay,
		StartAt:  st.epochBase + float64(slot+1)*st.delay,
		Program:  st.plan.onl.ProgramFor(slot),
	}
}

// advanceAll advances every object of the shard to time t, starting the
// oblivious plan's streams whose slots have begun.  The scan is linear in
// the shard's object count, but the per-object no-op costs one division
// and compare (~20k requests over a 2000-object catalog replay in well
// under a second on one core); if catalogs grow by another order of
// magnitude, replace the scan with a min-heap keyed on each object's next
// slot start.
func (sh *shard) advanceAll(t float64) {
	for _, st := range sh.objects {
		target := int64(math.Floor((t - st.epochBase) / st.delay))
		sh.startStreamsTo(st, target)
	}
}

// startStreamsTo starts every stream of st's epoch up to and including
// slot, finalizing each merge group the moment it completes.
func (sh *shard) startStreamsTo(st *objectState, slot int64) {
	size := st.plan.onl.TreeSize()
	for st.started <= slot {
		q := st.started % size
		ln := st.plan.tmplLens[q].Length
		start := st.epochBase + float64(st.started)*st.delay
		sh.pushEnd(start+float64(ln)*st.delay, -1)
		sh.srv.gauge.Add(1)
		st.streams++
		st.started++
		if st.started%size == 0 {
			sh.finalizeFullGroup(st)
		}
	}
}

// finalizeFullGroup finalizes the group [finalized, finalized+size): once
// the next group's first stream exists the horizon is at least the group
// end, so its lengths are the untruncated template lengths.
func (sh *shard) finalizeFullGroup(st *objectState) {
	base := st.finalized
	for _, nl := range st.plan.tmplLens {
		start := st.epochBase + float64(base+nl.Arrival)*st.delay
		sh.usage.AddLength(start, float64(nl.Length)*st.delay)
	}
	st.finalized = base + int64(len(st.plan.tmplLens))
	st.finalizedStreams += int64(len(st.plan.tmplLens))
	st.slotUnits += st.plan.tmplUnits
	st.busyTime += float64(st.plan.tmplUnits) * st.delay
}

// finalizeEpoch closes the object's current epoch at a horizon of n slots
// (starting any not-yet-started streams), truncating the trailing partial
// group exactly like the batch plan's final group.  It returns the final
// horizon after widening — occupied slots and already-started streams can
// only extend it, mirroring sim.RunWorkload.
func (sh *shard) finalizeEpoch(st *objectState, n int64) int64 {
	if n < 1 {
		n = 1
	}
	if last := st.lastArrival; last+1 > n {
		n = last + 1
	}
	if st.started > n {
		n = st.started
	}
	sh.startStreamsTo(st, n-1)
	if st.finalized == n {
		return n
	}
	m := n - st.finalized
	sh.buf = st.plan.onl.AppendGroupLengths(sh.buf[:0], m)
	base := st.finalized
	for _, nl := range sh.buf {
		start := st.epochBase + float64(base+nl.Arrival)*st.delay
		sh.usage.AddLength(start, float64(nl.Length)*st.delay)
		st.slotUnits += nl.Length
		st.busyTime += float64(nl.Length) * st.delay
		// The stream was started with the untruncated template length; if
		// truncation cut it short, correct the gauge: retire the stream at
		// its true end and cancel the stale event at the estimate, so a
		// degradation's freed channels are visible to admission
		// immediately rather than when the estimates expire.
		if prov := st.plan.tmplLens[nl.Arrival].Length; nl.Length < prov {
			sh.pushEnd(start+float64(nl.Length)*st.delay, -1)
			sh.pushEnd(start+float64(prov)*st.delay, +1)
		}
	}
	st.finalized = n
	st.finalizedStreams += m
	return n
}

// drain finalizes every object of the shard at the horizon.
func (sh *shard) drain(horizon float64) {
	if horizon > sh.now {
		sh.now = horizon
	}
	for _, st := range sh.objects {
		n := int64(math.Ceil((horizon - st.epochBase) / st.delay))
		sh.finalizeEpoch(st, n)
	}
	sh.popEnds(sh.now)
}

// snapshot reports the shard's per-object stats and finalized intervals.
func (sh *shard) snapshot() shardSnapshot {
	snap := shardSnapshot{
		objects:   make([]ObjectStats, 0, len(sh.objects)),
		intervals: sh.usage.Intervals(),
	}
	for _, st := range sh.objects {
		snap.objects = append(snap.objects, ObjectStats{
			Name:             st.obj.Name,
			Shard:            sh.id,
			L:                st.L,
			Delay:            st.delay,
			Scale:            st.scale,
			Epoch:            st.epoch,
			Arrivals:         st.arrivals,
			Clients:          st.clients,
			Rejected:         st.rejected,
			Streams:          st.streams,
			FinalizedStreams: st.finalizedStreams,
			SlotUnits:        st.slotUnits,
			BusyTime:         st.busyTime,
		})
	}
	return snap
}

// endEvent is one deferred gauge adjustment: apply delta once time passes t.
type endEvent struct {
	t     float64
	delta int32
}

// pushEnd pushes a gauge event onto the min-heap (ordered by time).
func (sh *shard) pushEnd(t float64, delta int32) {
	sh.ends = append(sh.ends, endEvent{t: t, delta: delta})
	i := len(sh.ends) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if sh.ends[parent].t <= sh.ends[i].t {
			break
		}
		sh.ends[parent], sh.ends[i] = sh.ends[i], sh.ends[parent]
		i = parent
	}
}

// popEnds applies every gauge event whose time has passed; stream ends
// decrement the live channel gauge, truncation corrections cancel out.
func (sh *shard) popEnds(t float64) {
	for len(sh.ends) > 0 && sh.ends[0].t <= t {
		sh.srv.gauge.Add(int64(sh.ends[0].delta))
		last := len(sh.ends) - 1
		sh.ends[0] = sh.ends[last]
		sh.ends = sh.ends[:last]
		// Sift down.
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(sh.ends) && sh.ends[l].t < sh.ends[small].t {
				small = l
			}
			if r < len(sh.ends) && sh.ends[r].t < sh.ends[small].t {
				small = r
			}
			if small == i {
				break
			}
			sh.ends[i], sh.ends[small] = sh.ends[small], sh.ends[i]
			i = small
		}
	}
}
