package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/live"
	"repro/internal/multiobject"
	"repro/internal/stats"
	"repro/internal/store"
)

// Durability wiring.  With Config.Store set, each shard gains a companion
// WAL-writer goroutine and a typed channel to it, and the shard loop
// routes every admission through a group-commit log-before-ack
// discipline:
//
//  1. For each single submit the loop captures the request's WAL record
//     (sequence number, catalog index, clamp-free timestamp), runs the
//     admit path, and sends record, ticket, and reply channel down the
//     writer channel as ONE walSubmit message.  Batch submits send one
//     record-only walSubmit per entry followed by a single walBatchAck.
//  2. The writer drains the channel greedily — a blocking receive, then
//     non-blocking receives until the channel is empty (optionally
//     lingering Config.GroupCommitMaxDelay for stragglers) — appends
//     every pending record with one AppendWALBatch, performs ONE Flush
//     for the whole batch at Config.SyncMode, and only then releases the
//     batch's acknowledgements in FIFO order.
//
// The channel is FIFO and acks release only after the records ahead of
// them are committed, so the durable log is always a gap-free prefix of
// the admission order covering every acknowledged request: a crash can
// lose unacknowledged tail requests (whose submitters never got tickets)
// but never an acknowledged one.  Under load, N acknowledgements share
// one flush (Stats.WALFlushes counts them; TestGroupCommitCoalesces pins
// flushes < acks) — which is also what makes store.SyncFull affordable:
// one fsync amortized over the batch.  Config.FlushPerAck restores the
// pre-group-commit flush-per-acknowledgement writer for benchmarking and
// bisection.  The admit hot path itself allocates nothing extra — the
// record is a fixed-size array inside the channel message
// (BenchmarkShardAdmitDurable, BenchmarkShardAdmitDurableBatch, and the
// CI allocation guard pin 0 allocs/op with durability on).
//
// Snapshots ride the same channel (walSnapshot) and act as in-batch
// barriers: the writer lands the record run accumulated so far, then
// saves the snapshot — which truncates the WAL — so it can never
// truncate a record it doesn't cover.  The loop only copies its state
// into a reusable shardSnapshotState; the codec runs on the writer
// goroutine with a pooled Encoder, so a cadence snapshot no longer
// stalls admission for the encode.  The file backend's crash window
// between snapshot rename and WAL truncation is closed by sequence
// numbers instead: replay skips records below the snapshot's next
// sequence.
//
// Store failures favor availability over durability: the writer counts
// them (Stats.WALFailures) and still acknowledges, so a full disk
// degrades the durability guarantee rather than wedging admission.  A
// failed append additionally leaves a sequence gap in the log that would
// fail every restore until the log is truncated, so the writer flags the
// shard and the next admission forces an immediate repair snapshot —
// SaveSnapshot truncates the WAL, re-establishing a consistent base one
// admission after the hiccup instead of a full cadence later.  (If the
// repair snapshot itself fails, the flag re-arms and the next admission
// retries.)

// walRecSize is the fixed WAL record layout: sequence number (8),
// catalog object index (4), raw request timestamp as float bits (8).
const walRecSize = 8 + 4 + 8

// walMaxBatch caps one group commit's batch so accretion under sustained
// overload cannot defer the flush (and the acknowledgements behind it)
// indefinitely.
const walMaxBatch = 1024

// walKind discriminates the messages on a shard's WAL channel.
type walKind uint8

const (
	// walSubmit: one single-submit admission, record and acknowledgement
	// merged into one message.  When hasRec is set, rec joins the
	// commit's append run; when reply is non-nil, tk is delivered on it
	// after the commit.  admitBatch sends record-only walSubmits (reply
	// nil), acknowledged collectively by one walBatchAck.
	walSubmit walKind = iota
	// walBatchAck: signal done after the commit (batch submit).
	walBatchAck
	// walSnapshot: encode snap and save it as the shard's snapshot
	// (truncating the WAL); errc, when non-nil, receives the result.
	walSnapshot
)

// walMsg is one message from a shard loop to its WAL writer.  The record
// is a fixed-size array, not a slice, so sending it copies the bytes
// through the channel without allocating.
type walMsg struct {
	kind walKind
	rec  [walRecSize]byte
	// hasRec marks a walSubmit that carries a record (known object, a
	// sequence number was consumed); unknown-object submits are acked
	// without logging anything.
	hasRec bool
	tk     Ticket
	reply  chan Ticket
	done   chan struct{}
	snap   *shardSnapshotState
	errc   chan error
	// repair marks a walSnapshot forced by a prior append failure; if
	// saving it fails too, the writer re-arms the shard's repair flag.
	repair bool
}

// snapshotMsg asks a shard loop to snapshot now; the writer answers on
// reply once the snapshot is saved (or fails).
type snapshotMsg struct {
	reply chan error
}

// walCommit is one writer's reusable commit state: the drained messages,
// the append run under assembly, and the dirty flag tracking records
// appended to the store but not yet flushed (carried across commits, so
// record-only commits defer their flush to the first commit that
// actually acknowledges something).
type walCommit struct {
	pend  []walMsg
	recs  [][]byte
	dirty bool
}

// walWriter drains one shard's WAL channel.  It is a Server method (not
// a shard method) because it runs on its own goroutine, off the shard
// loop; the shard loop is the channel's only sender and closes it at
// shutdown, after which the writer commits what it holds and exits.
//
// This is the group-commit loop: one blocking receive starts a batch,
// greedy non-blocking receives extend it with everything already queued
// (plus, when Config.GroupCommitMaxDelay is set, one bounded linger for
// stragglers), and commit lands the whole batch with a single append run
// and at most one Flush before releasing its acknowledgements in FIFO
// order.
func (s *Server) walWriter(sh *shard) {
	defer s.walWG.Done()
	if s.cfg.FlushPerAck {
		s.walWriterPerAck(sh)
		return
	}
	mode := s.cfg.SyncMode
	linger := s.cfg.GroupCommitMaxDelay
	var timer *time.Timer
	w := &walCommit{}
	for {
		m, ok := <-sh.walCh
		if !ok {
			return
		}
		w.pend = append(w.pend, m)
		open := true
		grew := true
	gather:
		for len(w.pend) < walMaxBatch {
			select {
			case m2, ok2 := <-sh.walCh:
				if !ok2 {
					open = false
					break gather
				}
				w.pend = append(w.pend, m2)
				grew = true
			default:
				if linger <= 0 {
					// The channel is empty.  Yield the processor once per
					// growth spurt before committing: submitters woken by
					// the previous batch's acks get to enqueue their next
					// requests, so the batch accretes toward the in-flight
					// cohort instead of committing one record at a time
					// when the scheduler alternates producer and writer.
					// An unproductive yield (no new message) commits, so
					// an idle writer adds one yield of latency, not a
					// timer wait.
					if grew {
						grew = false
						runtime.Gosched()
						continue
					}
					break gather
				}
				// The channel is empty; hold the batch open for up to
				// linger from this moment (arrivals during the window
				// join the batch but do not extend it).
				if timer == nil {
					timer = time.NewTimer(linger)
				} else {
					timer.Reset(linger)
				}
				for {
					select {
					case m2, ok2 := <-sh.walCh:
						if !ok2 {
							if !timer.Stop() {
								<-timer.C
							}
							open = false
							break gather
						}
						w.pend = append(w.pend, m2)
					case <-timer.C:
						break gather
					}
				}
			}
		}
		s.commit(sh, w, mode)
		if !open {
			return
		}
	}
}

// commit lands one drained batch: records are gathered into append runs
// (a walSnapshot acts as a barrier — the run so far lands, then the
// snapshot saves, superseding it), the store is flushed at most once if
// anything dirty needs acknowledging, and only then are the batch's
// acknowledgements released in FIFO order.  That ordering is the
// durability contract: by the time any submitter in the batch holds a
// ticket, every record up to and including its own is committed at the
// configured sync level.
func (s *Server) commit(sh *shard, w *walCommit, mode store.SyncMode) {
	w.recs = w.recs[:0]
	acks := false
	for i := range w.pend {
		m := &w.pend[i]
		switch m.kind {
		case walSubmit:
			if m.hasRec {
				w.recs = append(w.recs, m.rec[:])
			}
			if m.reply != nil {
				acks = true
			}
		case walBatchAck:
			acks = true
		case walSnapshot:
			s.appendRun(sh, w)
			// The snapshot covers every record before it in the batch (it
			// was captured after those admissions on the loop), and
			// SaveSnapshot truncates the WAL — nothing appended so far
			// needs a flush of its own.
			w.dirty = false
			s.writeSnapshot(sh, m)
		}
	}
	s.appendRun(sh, w)
	if acks && w.dirty {
		if err := s.cfg.Store.Flush(sh.id, mode); err != nil {
			s.walFailures.Add(1)
		}
		s.walFlushes.Add(1)
		w.dirty = false
	}
	for i := range w.pend {
		m := &w.pend[i]
		switch m.kind {
		case walSubmit:
			if m.reply != nil {
				m.reply <- m.tk
			}
		case walBatchAck:
			m.done <- struct{}{}
		}
	}
	w.pend = w.pend[:0]
}

// appendRun lands the commit's accumulated records with one batch append.
// A failed append may leave a sequence gap (a prefix can land), so the
// shard is flagged for a repair snapshot either way; the run still counts
// as dirty — flushing a partial prefix is harmless and keeps the on-disk
// bytes a prefix of admission order.
func (s *Server) appendRun(sh *shard, w *walCommit) {
	if len(w.recs) == 0 {
		return
	}
	if err := s.cfg.Store.AppendWALBatch(sh.id, w.recs); err != nil {
		s.walFailures.Add(1)
		s.walRepair[sh.id].Store(true)
	}
	w.dirty = true
	w.recs = w.recs[:0]
}

// writeSnapshot runs the snapshot codec on the writer goroutine — the
// loop only captured plain state — with a pooled Encoder, then saves the
// blob and recycles the capture buffer back to the shard's free list.
func (s *Server) writeSnapshot(sh *shard, m *walMsg) {
	if s.walEnc[sh.id] == nil {
		s.walEnc[sh.id] = store.NewEncoder()
	} else {
		s.walEnc[sh.id].Reset()
	}
	enc := s.walEnc[sh.id]
	encodeSnapshotState(enc, m.snap)
	err := s.cfg.Store.SaveSnapshot(sh.id, enc.Finish())
	sh.releaseSnapState(m.snap)
	if err != nil {
		s.walFailures.Add(1)
		if m.repair {
			s.walRepair[sh.id].Store(true)
		}
	}
	if m.errc != nil {
		m.errc <- err
	}
}

// walWriterPerAck is the pre-group-commit writer: one Flush per
// acknowledgement, records appended as they arrive, fed by the original
// two-messages-per-admission protocol (submitDurable sends the record
// and the acknowledgement separately in this mode).  Kept behind
// Config.FlushPerAck for benchmarking and bisection — it is the baseline
// the durability table in README.md compares against.
func (s *Server) walWriterPerAck(sh *shard) {
	st := s.cfg.Store
	mode := s.cfg.SyncMode
	// buf lives for the writer's whole life so the per-record append
	// passes a stable slice into the store without per-message escapes.
	var buf [walRecSize]byte
	for m := range sh.walCh {
		switch m.kind {
		case walSubmit:
			if m.hasRec {
				buf = m.rec
				if err := st.AppendWAL(sh.id, buf[:]); err != nil {
					s.walFailures.Add(1)
					s.walRepair[sh.id].Store(true)
				}
			}
			if m.reply != nil {
				if err := st.Flush(sh.id, mode); err != nil {
					s.walFailures.Add(1)
				}
				s.walFlushes.Add(1)
				m.reply <- m.tk
			}
		case walBatchAck:
			if err := st.Flush(sh.id, mode); err != nil {
				s.walFailures.Add(1)
			}
			s.walFlushes.Add(1)
			m.done <- struct{}{}
		case walSnapshot:
			s.writeSnapshot(sh, &m)
		}
	}
}

// logSubmit sends the record-only walSubmit for a request the admit path
// is about to consume a sequence number for.  Unknown objects consume no
// sequence number and are not logged (handleSubmit answers them without
// touching any counter a snapshot covers).  Called by admitBatch
// immediately before each per-entry admit, so record order equals
// admission order; the batch's single walBatchAck follows.
//
//modlint:noalloc
func (sh *shard) logSubmit(req Request) {
	if sh.byName[req.Object] == nil {
		return
	}
	var m walMsg
	m.kind = walSubmit
	m.hasRec = true
	binary.LittleEndian.PutUint64(m.rec[0:8], uint64(sh.ticketSeq))
	binary.LittleEndian.PutUint32(m.rec[8:12], uint32(sh.byName[req.Object].index))
	binary.LittleEndian.PutUint64(m.rec[12:20], math.Float64bits(req.T))
	sh.walCh <- m
}

// submitDurable is the shard loop's durable single-submit path: capture
// the WAL record at the current sequence number, admit, account the
// queue, then hand record, ticket, and reply channel to the writer as
// ONE walSubmit message — the merged form of the old walRecord+walAck
// pair, halving the channel traffic per request.  The record must be
// captured before the admit (which consumes the sequence number) and
// sent after it (the message carries the ticket); the loop is the
// channel's only sender, so the interleaving stays admission-ordered.
// st is the pre-resolved object state from the router (nil falls back
// to the shard's own lookup).
//
//modlint:noalloc
func (sh *shard) submitDurable(st *objectState, req Request, queueNS int64, reply chan Ticket, q *shardQueue) {
	if sh.srv.cfg.FlushPerAck {
		// The pre-group-commit baseline kept record and acknowledgement as
		// separate channel messages; reproduce that two-message protocol
		// faithfully so the FlushPerAck benchmark measures what PR 9
		// actually shipped, channel traffic included.
		sh.logSubmit(req)
		var a walMsg
		a.kind = walSubmit
		a.tk = sh.handleSubmit(req, queueNS)
		q.dequeued.Add(1)
		a.reply = reply
		sh.walCh <- a
		return
	}
	var m walMsg
	m.kind = walSubmit
	if st == nil {
		st = sh.byName[req.Object]
	}
	if st != nil {
		m.hasRec = true
		binary.LittleEndian.PutUint64(m.rec[0:8], uint64(sh.ticketSeq))
		binary.LittleEndian.PutUint32(m.rec[8:12], uint32(st.index))
		binary.LittleEndian.PutUint64(m.rec[12:20], math.Float64bits(req.T))
	}
	m.tk = sh.handleSubmitFor(st, req, queueNS)
	q.dequeued.Add(1)
	m.reply = reply
	sh.walCh <- m
}

// maybeSnapshot hands the writer a snapshot capture once the shard clock
// passes the next cadence boundary (Config.SnapshotEpochs epochs of
// EpochSlots slots of the shard's smallest delay), or immediately when
// the writer flagged a WAL append failure — the repair snapshot
// truncates the gapped log so a later restore does not fail on the
// missing sequence.  The loop only copies state; the writer encodes.
func (sh *shard) maybeSnapshot() {
	if sh.walCh == nil {
		return
	}
	// A plain load keeps the common no-repair case off the locked
	// instruction; the CAS settles the race only when the flag is up.
	if sh.srv.walRepair[sh.id].Load() && sh.srv.walRepair[sh.id].CompareAndSwap(true, false) {
		sh.walCh <- walMsg{kind: walSnapshot, snap: sh.captureSnapshot(), repair: true}
		sh.nextSnap = sh.now + sh.snapEvery
		return
	}
	if sh.snapEvery <= 0 || sh.now < sh.nextSnap {
		return
	}
	sh.walCh <- walMsg{kind: walSnapshot, snap: sh.captureSnapshot()}
	sh.nextSnap = sh.now + sh.snapEvery
}

// encodeTotals appends a live.Totals to the snapshot.
func encodeTotals(e *store.Encoder, t live.Totals) {
	e.I64(t.Clients)
	e.I64(t.Streams)
	e.I64(t.FinalizedStreams)
	e.I64(t.SlotUnits)
	e.F64(t.BusyTime)
	e.F64(t.Cost)
	e.I64(t.ReplanFailures)
	e.I64(t.Replan.Replans)
	e.I64(t.Replan.WarmReplans)
	e.I64(t.Replan.CellsReused)
	e.I64(t.Replan.CellsRecomputed)
	e.I64(t.Replan.ReplanNanos)
	e.I64(t.Replan.MaxReplanNanos)
}

func decodeTotals(d *store.Decoder) live.Totals {
	var t live.Totals
	t.Clients = d.I64()
	t.Streams = d.I64()
	t.FinalizedStreams = d.I64()
	t.SlotUnits = d.I64()
	t.BusyTime = d.F64()
	t.Cost = d.F64()
	t.ReplanFailures = d.I64()
	t.Replan.Replans = d.I64()
	t.Replan.WarmReplans = d.I64()
	t.Replan.CellsReused = d.I64()
	t.Replan.CellsRecomputed = d.I64()
	t.Replan.ReplanNanos = d.I64()
	t.Replan.MaxReplanNanos = d.I64()
	return t
}

func encodeHist(e *store.Encoder, h *stats.LogHistogram) {
	e.I64(h.Count)
	e.I64(h.SumNanos)
	e.U32(uint32(len(h.Counts)))
	for _, c := range h.Counts {
		e.I64(c)
	}
}

func decodeHist(d *store.Decoder, h *stats.LogHistogram) error {
	h.Count = d.I64()
	h.SumNanos = d.I64()
	if n := d.Len(8); n != len(h.Counts) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: histogram with %d buckets (want %d)", store.ErrCorruptSnapshot, n, len(h.Counts))
	}
	for i := range h.Counts {
		h.Counts[i] = d.I64()
	}
	return d.Err()
}

// shardSnapshotState is a plain-data copy of everything a snapshot
// serializes, captured on the shard loop and encoded on the WAL writer.
// The split keeps the codec — the expensive part of a snapshot — off the
// admit path.  Instances cycle through the shard's snapFree list, so a
// steady snapshot cadence reuses two buffers instead of allocating
// fresh slices per capture.
type shardSnapshotState struct {
	id, total int
	now       float64
	ticketSeq int64
	admittedL int64
	degradedL int64
	rejectedL int64
	ends      []endEvent
	intervals []bandwidth.Interval
	stages    []stageHist
	objects   []objectSnapState
}

// objectSnapState is one object's captured snapshot state.  live.Export
// deep-copies the scheduler's dynamic state (Times, Provisional), so the
// capture shares nothing with the live scheduler the loop keeps mutating.
type objectSnapState struct {
	name     string
	strategy string
	epoch    int
	scale    float64
	delay    float64
	L        int64
	arrivals int64
	rejected int64
	carry    live.Totals
	live     live.State
	// exportOK distinguishes a captured live state from an unexportable
	// scheduler, which encodes as a poison kind so restore fails loudly.
	exportOK bool
}

// takeSnapState pops a reusable capture buffer off the free list, or
// allocates one when the list is empty (or absent, on bench harnesses
// that wire durability by hand).
func (sh *shard) takeSnapState() *shardSnapshotState {
	if sh.snapFree != nil {
		select {
		case ss := <-sh.snapFree:
			return ss
		default:
		}
	}
	return &shardSnapshotState{}
}

// releaseSnapState returns a capture buffer to the free list once the
// writer has encoded it; an overfull (or absent) list drops the buffer.
func (sh *shard) releaseSnapState(ss *shardSnapshotState) {
	if sh.snapFree == nil || ss == nil {
		return
	}
	select {
	case sh.snapFree <- ss:
	default:
	}
}

// captureSnapshot copies the shard's full scheduler state — identity
// fingerprint, clock, ticket sequence, loop-owned counter mirrors, gauge
// end-event heap, finalized bandwidth intervals, stage histograms, and
// per-object state (delay epoch, accounting carry, and the live
// scheduler's exported dynamic state) — into a reusable capture buffer.
// It runs on the shard loop; encodeSnapshotState serializes the result
// on the writer goroutine.
func (sh *shard) captureSnapshot() *shardSnapshotState {
	ss := sh.takeSnapState()
	ss.id = sh.id
	ss.total = sh.total
	ss.now = sh.now
	ss.ticketSeq = sh.ticketSeq
	ss.admittedL = sh.admittedL
	ss.degradedL = sh.degradedL
	ss.rejectedL = sh.rejectedL
	// Heap-array order: restoring it verbatim reproduces the exact pop
	// order of the original run.
	ss.ends = append(ss.ends[:0], sh.ends...)
	ss.intervals = sh.usage.Intervals()
	// stageHist holds fixed-size value histograms, so this copies.
	ss.stages = append(ss.stages[:0], sh.stages...)
	ss.objects = ss.objects[:0]
	for _, st := range sh.objects {
		o := objectSnapState{
			name:     st.obj.Name,
			strategy: st.strategy,
			epoch:    st.epoch,
			scale:    st.scale,
			delay:    st.delay,
			L:        st.L,
			arrivals: st.arrivals,
			rejected: st.rejected,
			carry:    st.carry,
		}
		if ls, err := live.Export(st.sched); err == nil {
			o.live = ls
			o.exportOK = true
		}
		// Every registered strategy is exportable; an unexportable
		// scheduler would be a new strategy family missing its State
		// support.  exportOK stays false and the codec writes a poison
		// kind so restore fails loudly rather than silently dropping the
		// object's schedule.
		ss.objects = append(ss.objects, o)
	}
	return ss
}

// encodeSnapshotState serializes a captured shard state with the
// versioned store codec.  The encoding is deterministic: the same state
// always yields the same bytes.  Runs on the WAL writer goroutine.
func encodeSnapshotState(e *store.Encoder, ss *shardSnapshotState) {
	e.I64(int64(ss.id))
	e.I64(int64(ss.total))
	e.F64(ss.now)
	e.I64(ss.ticketSeq)
	e.I64(ss.admittedL)
	e.I64(ss.degradedL)
	e.I64(ss.rejectedL)

	e.U32(uint32(len(ss.ends)))
	for _, ev := range ss.ends {
		e.F64(ev.t)
		e.I64(int64(ev.delta))
	}

	e.U32(uint32(len(ss.intervals)))
	for _, iv := range ss.intervals {
		e.F64(iv.Start)
		e.F64(iv.End)
	}

	e.U32(uint32(len(ss.stages)))
	for i := range ss.stages {
		encodeHist(e, &ss.stages[i].queue)
		encodeHist(e, &ss.stages[i].plan)
		encodeHist(e, &ss.stages[i].replan)
	}

	e.U32(uint32(len(ss.objects)))
	for i := range ss.objects {
		o := &ss.objects[i]
		e.String(o.name)
		e.String(o.strategy)
		e.I64(int64(o.epoch))
		e.F64(o.scale)
		e.F64(o.delay)
		e.I64(o.L)
		e.I64(o.arrivals)
		e.I64(o.rejected)
		encodeTotals(e, o.carry)
		if !o.exportOK {
			e.U8(0xff)
			continue
		}
		encodeLiveState(e, o.live)
	}
}

func encodeLiveState(e *store.Encoder, ls live.State) {
	switch {
	case ls.Online != nil:
		o := ls.Online
		e.U8(0)
		e.F64(o.Base)
		e.I64(o.Started)
		e.I64(o.Finalized)
		e.I64(o.LastArrival)
		e.I64(o.Clients)
		e.I64(o.Streams)
		e.I64(o.FinalizedStreams)
		e.I64(o.SlotUnits)
		e.F64(o.BusyTime)
	case ls.Epoch != nil:
		ep := ls.Epoch
		e.U8(1)
		e.F64(ep.Origin)
		e.I64(ep.Epoch)
		e.F64s(ep.Times)
		e.I64(ep.LastSlot)
		e.F64(ep.LastTime)
		e.I64(ep.SlotBase)
		e.F64s(ep.Provisional)
		encodeTotals(e, ep.Totals)
	default:
		e.U8(0xff)
	}
}

func decodeLiveState(d *store.Decoder, strategy string) (live.State, error) {
	ls := live.State{Strategy: strategy}
	switch kind := d.U8(); kind {
	case 0:
		o := &live.OnlineState{}
		o.Base = d.F64()
		o.Started = d.I64()
		o.Finalized = d.I64()
		o.LastArrival = d.I64()
		o.Clients = d.I64()
		o.Streams = d.I64()
		o.FinalizedStreams = d.I64()
		o.SlotUnits = d.I64()
		o.BusyTime = d.F64()
		ls.Online = o
	case 1:
		ep := &live.EpochState{}
		ep.Origin = d.F64()
		ep.Epoch = d.I64()
		ep.Times = d.F64s()
		ep.LastSlot = d.I64()
		ep.LastTime = d.F64()
		ep.SlotBase = d.I64()
		ep.Provisional = d.F64s()
		ep.Totals = decodeTotals(d)
		ls.Epoch = ep
	default:
		if err := d.Err(); err != nil {
			return ls, err
		}
		return ls, fmt.Errorf("%w: unknown live state kind %d for strategy %q", store.ErrCorruptSnapshot, kind, strategy)
	}
	return ls, d.Err()
}

// decodeSnapshot reinstates a snapshot blob onto a freshly built shard
// (addObject done, loop not started).  The snapshot's identity
// fingerprint — shard index, shard count, object names and strategies in
// order — must match the server's configuration exactly; a snapshot
// taken under a different catalog or sharding is refused as corrupt
// rather than partially applied.
func (sh *shard) decodeSnapshot(blob []byte) error {
	d, err := store.NewDecoder(blob)
	if err != nil {
		return err
	}
	if id := d.I64(); id != int64(sh.id) {
		return mismatch(d, "snapshot for shard %d restored onto shard %d", id, sh.id)
	}
	if total := d.I64(); total != int64(sh.total) {
		return mismatch(d, "snapshot taken with %d shards, server has %d", total, sh.total)
	}
	now := d.F64()
	seq := d.I64()
	admitted := d.I64()
	degraded := d.I64()
	rejected := d.I64()

	nEnds := d.Len(16)
	ends := make([]endEvent, 0, nEnds)
	var gaugeDelta int64
	for i := 0; i < nEnds; i++ {
		t := d.F64()
		delta := int32(d.I64())
		ends = append(ends, endEvent{t: t, delta: delta})
		gaugeDelta += int64(delta)
	}

	nIvs := d.Len(16)
	type span struct{ start, end float64 }
	ivs := make([]span, 0, nIvs)
	for i := 0; i < nIvs; i++ {
		start := d.F64()
		end := d.F64()
		ivs = append(ivs, span{start, end})
	}

	nStages := d.Len(8)
	if d.Err() == nil && nStages != len(sh.stages) {
		return mismatch(d, "snapshot has %d stage sets, shard has %d", nStages, len(sh.stages))
	}
	stages := make([]stageHist, nStages)
	for i := range stages {
		for _, h := range [](*stats.LogHistogram){&stages[i].queue, &stages[i].plan, &stages[i].replan} {
			if err := decodeHist(d, h); err != nil {
				return err
			}
		}
	}

	nObjs := d.Len(1)
	if d.Err() == nil && nObjs != len(sh.objects) {
		return mismatch(d, "snapshot has %d objects, shard has %d", nObjs, len(sh.objects))
	}
	scheds := make([]live.Incremental, len(sh.objects))
	for i := 0; i < nObjs && d.Err() == nil; i++ {
		st := sh.objects[i]
		if name := d.String(); name != st.obj.Name {
			return mismatch(d, "snapshot object %d is %q, shard has %q", i, name, st.obj.Name)
		}
		if strat := d.String(); strat != st.strategy {
			return mismatch(d, "snapshot object %q uses strategy %q, shard uses %q", st.obj.Name, strat, st.strategy)
		}
		epoch := int(d.I64())
		scale := d.F64()
		delay := d.F64()
		L := d.I64()
		arrivals := d.I64()
		objRejected := d.I64()
		carry := decodeTotals(d)
		ls, err := decodeLiveState(d, st.strategy)
		if err != nil {
			return err
		}
		sched, err := sh.restoreScheduler(st.obj, st.strategy, delay, ls)
		if err != nil {
			return fmt.Errorf("%w: object %q: %w", store.ErrCorruptSnapshot, st.obj.Name, err)
		}
		st.epoch = epoch
		st.scale = scale
		st.delay = delay
		st.L = L
		st.arrivals = arrivals
		st.rejected = objRejected
		st.carry = carry
		scheds[i] = sched
	}
	if err := d.Done(); err != nil {
		return err
	}

	// Everything validated and decoded: commit.  (Scheduler swaps were
	// already written above; the scalar state follows only now, but a
	// failed decode aborts New entirely, so no half-restored shard ever
	// serves.)
	for i, sched := range scheds {
		if sched != nil {
			sh.objects[i].sched = sched
		}
	}
	sh.now = now
	sh.ticketSeq = seq
	sh.admittedL = admitted
	sh.degradedL = degraded
	sh.rejectedL = rejected
	sh.srv.admitted.Add(admitted)
	sh.srv.degraded.Add(degraded)
	sh.srv.rejected.Add(rejected)
	sh.ends = ends
	// Each pending end event retires one live channel: the restored gauge
	// contribution is minus the heap's summed deltas.
	sh.srv.gauge.Add(-gaugeDelta)
	for _, iv := range ivs {
		sh.usage.Add(iv.start, iv.end)
	}
	copy(sh.stages, stages)
	return nil
}

// mismatch drains the decoder's sticky error first (a corrupted length
// can masquerade as a fingerprint mismatch) and otherwise reports the
// configuration mismatch itself as corruption.
func mismatch(d *store.Decoder, format string, args ...any) error {
	if err := d.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: "+format, append([]any{store.ErrCorruptSnapshot}, args...)...)
}

// restoreScheduler rebuilds an object's live scheduler from exported
// state, with the exact configuration newScheduler would use at the
// restored effective delay.
func (sh *shard) restoreScheduler(obj multiobject.Object, strategy string, delay float64, ls live.State) (live.Incremental, error) {
	obj.Delay = delay
	var nowNanos func() int64
	if sh.srv.cfg.MeterReplanNanos || sh.srv.cfg.MeterStages {
		nowNanos = sh.srv.nowNanos
	}
	return live.Restore(strategy, live.Config{
		Object:       obj,
		EpochSlots:   sh.srv.cfg.EpochSlots,
		ConstantRate: sh.srv.cfg.ConstantRateTuning,
		PlanWorkers:  sh.srv.cfg.PlanWorkers,
		Cache:        sh.cache,
		Sink:         sh,
		Ctx:          sh.srv.ctx,
		ColdReplan:   sh.srv.cfg.ColdReplanning,
		NowNanos:     nowNanos,
	}, ls)
}

// restore loads the shard's latest snapshot and replays the WAL tail
// through the ordinary admit path.  It runs during New, before the shard
// loop or WAL writer exist, so it owns all shard state.  Replay calls
// handleSubmit directly — the loop's logSubmit step is deliberately
// absent, since the records being applied are already in the log.
func (sh *shard) restore() error {
	st := sh.srv.cfg.Store
	blob, err := st.LoadSnapshot(sh.id)
	if err != nil {
		return fmt.Errorf("serve: load snapshot for shard %d: %w", sh.id, err)
	}
	if blob != nil {
		if err := sh.decodeSnapshot(blob); err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", sh.id, err)
		}
	}
	err = st.ReplayWAL(sh.id, func(rec []byte) error {
		if len(rec) != walRecSize {
			return fmt.Errorf("%w: WAL record of %d bytes (want %d)", store.ErrCorruptSnapshot, len(rec), walRecSize)
		}
		seq := int64(binary.LittleEndian.Uint64(rec[0:8]))
		objIdx := int(binary.LittleEndian.Uint32(rec[8:12]))
		t := math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20]))
		if seq < sh.ticketSeq {
			// Superseded by the snapshot: the file backend's crash window
			// between snapshot rename and WAL truncation leaves these
			// behind; they were already applied before the snapshot.
			return nil
		}
		if seq != sh.ticketSeq {
			return fmt.Errorf("%w: WAL sequence gap on shard %d: record %d, expected %d", store.ErrCorruptSnapshot, sh.id, seq, sh.ticketSeq)
		}
		if objIdx < 0 || objIdx >= len(sh.srv.cfg.Catalog) {
			return fmt.Errorf("%w: WAL record for catalog index %d (catalog has %d)", store.ErrCorruptSnapshot, objIdx, len(sh.srv.cfg.Catalog))
		}
		name := sh.srv.cfg.Catalog[objIdx].Name
		if sh.byName[name] == nil {
			return fmt.Errorf("%w: WAL record for object %q not routed to shard %d", store.ErrCorruptSnapshot, name, sh.id)
		}
		sh.handleSubmit(Request{Object: name, T: t}, -1)
		return nil
	})
	if err != nil {
		return fmt.Errorf("serve: replay WAL for shard %d: %w", sh.id, err)
	}
	return nil
}

// Snapshot forces an immediate snapshot of every shard and waits until
// each is saved.  It is the synchronous form of the periodic cadence —
// the HTTP layer exposes it as POST /v1/admin/snapshot for warm
// restarts: snapshot, stop the process, start it with Restore.
//
// The request fans out to all shards concurrently before collecting any
// reply, so the wall time is one shard's capture+encode+save, not the
// sum across shards.  The first failure is reported (by lowest shard
// index); later shards still finish their snapshots — each reply channel
// is buffered, so no writer blocks on an abandoned reply.
func (s *Server) Snapshot() error {
	if s.cfg.Store == nil {
		return fmt.Errorf("%w: server has no durability store", ErrBadConfig)
	}
	replies := make([]chan error, len(s.shards))
	for i, sh := range s.shards {
		replies[i] = make(chan error, 1)
		select {
		case sh.msgs <- snapshotMsg{reply: replies[i]}:
		case <-s.quit:
			replies[i] = nil
		}
	}
	var first error
	for i, sh := range s.shards {
		if replies[i] == nil {
			if first == nil {
				first = ErrClosed
			}
			continue
		}
		select {
		case err := <-replies[i]:
			if err != nil && first == nil {
				first = fmt.Errorf("serve: snapshot shard %d: %w", sh.id, err)
			}
		case <-s.quit:
			if first == nil {
				first = ErrClosed
			}
		}
	}
	return first
}
