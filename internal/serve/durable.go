package serve

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/live"
	"repro/internal/multiobject"
	"repro/internal/stats"
	"repro/internal/store"
)

// Durability wiring.  With Config.Store set, each shard gains a companion
// WAL-writer goroutine and a typed channel to it, and the shard loop
// routes every admission through a log-before-ack discipline:
//
//  1. Before running the admit path for a request, the loop sends the
//     request's WAL record (sequence number, catalog index, clamped-free
//     timestamp) down the channel.
//  2. After the admit path, the loop sends the acknowledgement — the
//     ticket and its reply channel — down the same channel.
//  3. The writer appends records and, at each acknowledgement, flushes
//     the store before delivering the ticket to the submitter.
//
// The channel is FIFO, so the durable log is always an exact prefix of
// the acknowledged requests: a crash can lose unacknowledged tail
// requests (whose submitters never got tickets) but never an
// acknowledged one.  The admit hot path itself allocates nothing extra —
// the record is a fixed-size array inside the channel message
// (BenchmarkShardAdmitDurable and the CI allocation guard pin 0
// allocs/op with durability on).
//
// Snapshots ride the same channel (walSnapshot), so the writer's
// SaveSnapshot — which truncates the WAL — is serialized with the
// appends and can never truncate a record the snapshot doesn't cover.
// The file backend's crash window between snapshot rename and WAL
// truncation is closed by sequence numbers instead: replay skips records
// below the snapshot's next sequence.
//
// Store failures favor availability over durability: the writer counts
// them (Stats.WALFailures) and still acknowledges, so a full disk
// degrades the durability guarantee rather than wedging admission.  A
// failed append additionally leaves a sequence gap in the log that would
// fail every restore until the log is truncated, so the writer flags the
// shard and the next admission forces an immediate repair snapshot —
// SaveSnapshot truncates the WAL, re-establishing a consistent base one
// admission after the hiccup instead of a full cadence later.  (If the
// repair snapshot itself fails, the flag re-arms and the next admission
// retries.)

// walRecSize is the fixed WAL record layout: sequence number (8),
// catalog object index (4), raw request timestamp as float bits (8).
const walRecSize = 8 + 4 + 8

// walKind discriminates the messages on a shard's WAL channel.
type walKind uint8

const (
	// walRecord: append rec to the shard's WAL.  No acknowledgement.
	walRecord walKind = iota
	// walAck: flush, then deliver tk on reply (single submit).
	walAck
	// walBatchAck: flush, then signal done (batch submit).
	walBatchAck
	// walSnapshot: save snap as the shard's snapshot (truncating the
	// WAL); errc, when non-nil, receives the result.
	walSnapshot
)

// walMsg is one message from a shard loop to its WAL writer.  The record
// is a fixed-size array, not a slice, so sending it copies the bytes
// through the channel without allocating.
type walMsg struct {
	kind  walKind
	rec   [walRecSize]byte
	tk    Ticket
	reply chan Ticket
	done  chan struct{}
	snap  []byte
	errc  chan error
	// repair marks a walSnapshot forced by a prior append failure; if
	// saving it fails too, the writer re-arms the shard's repair flag.
	repair bool
}

// snapshotMsg asks a shard loop to snapshot now; the writer answers on
// reply once the snapshot is saved (or fails).
type snapshotMsg struct {
	reply chan error
}

// walWriter drains one shard's WAL channel.  It is a Server method (not
// a shard method) because it runs on its own goroutine, off the shard
// loop; the shard loop is the channel's only sender and closes it at
// shutdown, after which the writer exits.
func (s *Server) walWriter(sh *shard) {
	defer s.walWG.Done()
	st := s.cfg.Store
	// buf lives for the writer's whole life so the per-record append
	// passes a stable slice into the store without per-message escapes.
	var buf [walRecSize]byte
	for m := range sh.walCh {
		switch m.kind {
		case walRecord:
			buf = m.rec
			if err := st.AppendWAL(sh.id, buf[:]); err != nil {
				s.walFailures.Add(1)
				s.walRepair[sh.id].Store(true)
			}
		case walAck:
			if err := st.Flush(sh.id); err != nil {
				s.walFailures.Add(1)
			}
			m.reply <- m.tk
		case walBatchAck:
			if err := st.Flush(sh.id); err != nil {
				s.walFailures.Add(1)
			}
			m.done <- struct{}{}
		case walSnapshot:
			err := st.SaveSnapshot(sh.id, m.snap)
			if err != nil {
				s.walFailures.Add(1)
				if m.repair {
					s.walRepair[sh.id].Store(true)
				}
			}
			if m.errc != nil {
				m.errc <- err
			}
		}
	}
}

// logSubmit appends the WAL record for a request the admit path is about
// to consume a sequence number for.  Unknown objects consume no sequence
// number and are not logged (handleSubmit answers them without touching
// any counter a snapshot covers).  Called by the shard loop immediately
// before handleSubmit, so record order equals admission order.
//
//modlint:noalloc
func (sh *shard) logSubmit(req Request) {
	if sh.byName[req.Object] == nil {
		return
	}
	var m walMsg
	m.kind = walRecord
	binary.LittleEndian.PutUint64(m.rec[0:8], uint64(sh.ticketSeq))
	binary.LittleEndian.PutUint32(m.rec[8:12], uint32(sh.byName[req.Object].index))
	binary.LittleEndian.PutUint64(m.rec[12:20], math.Float64bits(req.T))
	sh.walCh <- m
}

// maybeSnapshot hands the writer a snapshot once the shard clock passes
// the next cadence boundary (Config.SnapshotEpochs epochs of EpochSlots
// slots of the shard's smallest delay), or immediately when the writer
// flagged a WAL append failure — the repair snapshot truncates the
// gapped log so a later restore does not fail on the missing sequence.
func (sh *shard) maybeSnapshot() {
	if sh.walCh == nil {
		return
	}
	if sh.srv.walRepair[sh.id].CompareAndSwap(true, false) {
		sh.walCh <- walMsg{kind: walSnapshot, snap: sh.encodeSnapshot(), repair: true}
		sh.nextSnap = sh.now + sh.snapEvery
		return
	}
	if sh.snapEvery <= 0 || sh.now < sh.nextSnap {
		return
	}
	sh.walCh <- walMsg{kind: walSnapshot, snap: sh.encodeSnapshot()}
	sh.nextSnap = sh.now + sh.snapEvery
}

// encodeTotals appends a live.Totals to the snapshot.
func encodeTotals(e *store.Encoder, t live.Totals) {
	e.I64(t.Clients)
	e.I64(t.Streams)
	e.I64(t.FinalizedStreams)
	e.I64(t.SlotUnits)
	e.F64(t.BusyTime)
	e.F64(t.Cost)
	e.I64(t.ReplanFailures)
	e.I64(t.Replan.Replans)
	e.I64(t.Replan.WarmReplans)
	e.I64(t.Replan.CellsReused)
	e.I64(t.Replan.CellsRecomputed)
	e.I64(t.Replan.ReplanNanos)
	e.I64(t.Replan.MaxReplanNanos)
}

func decodeTotals(d *store.Decoder) live.Totals {
	var t live.Totals
	t.Clients = d.I64()
	t.Streams = d.I64()
	t.FinalizedStreams = d.I64()
	t.SlotUnits = d.I64()
	t.BusyTime = d.F64()
	t.Cost = d.F64()
	t.ReplanFailures = d.I64()
	t.Replan.Replans = d.I64()
	t.Replan.WarmReplans = d.I64()
	t.Replan.CellsReused = d.I64()
	t.Replan.CellsRecomputed = d.I64()
	t.Replan.ReplanNanos = d.I64()
	t.Replan.MaxReplanNanos = d.I64()
	return t
}

func encodeHist(e *store.Encoder, h *stats.LogHistogram) {
	e.I64(h.Count)
	e.I64(h.SumNanos)
	e.U32(uint32(len(h.Counts)))
	for _, c := range h.Counts {
		e.I64(c)
	}
}

func decodeHist(d *store.Decoder, h *stats.LogHistogram) error {
	h.Count = d.I64()
	h.SumNanos = d.I64()
	if n := d.Len(8); n != len(h.Counts) {
		if err := d.Err(); err != nil {
			return err
		}
		return fmt.Errorf("%w: histogram with %d buckets (want %d)", store.ErrCorruptSnapshot, n, len(h.Counts))
	}
	for i := range h.Counts {
		h.Counts[i] = d.I64()
	}
	return d.Err()
}

// encodeSnapshot serializes the shard's full scheduler state with the
// versioned store codec: identity fingerprint, clock, ticket sequence,
// loop-owned counter mirrors, gauge end-event heap, finalized bandwidth
// intervals, stage histograms, and per-object state (delay epoch,
// accounting carry, and the live scheduler's exported dynamic state).
// The encoding is deterministic: the same state always yields the same
// bytes.
func (sh *shard) encodeSnapshot() []byte {
	e := store.NewEncoder()
	e.I64(int64(sh.id))
	e.I64(int64(sh.total))
	e.F64(sh.now)
	e.I64(sh.ticketSeq)
	e.I64(sh.admittedL)
	e.I64(sh.degradedL)
	e.I64(sh.rejectedL)

	// Gauge end-event heap, in heap-array order: restoring it verbatim
	// reproduces the exact pop order of the original run.
	e.U32(uint32(len(sh.ends)))
	for _, ev := range sh.ends {
		e.F64(ev.t)
		e.I64(int64(ev.delta))
	}

	ivs := sh.usage.Intervals()
	e.U32(uint32(len(ivs)))
	for _, iv := range ivs {
		e.F64(iv.Start)
		e.F64(iv.End)
	}

	e.U32(uint32(len(sh.stages)))
	for i := range sh.stages {
		encodeHist(e, &sh.stages[i].queue)
		encodeHist(e, &sh.stages[i].plan)
		encodeHist(e, &sh.stages[i].replan)
	}

	e.U32(uint32(len(sh.objects)))
	for _, st := range sh.objects {
		e.String(st.obj.Name)
		e.String(st.strategy)
		e.I64(int64(st.epoch))
		e.F64(st.scale)
		e.F64(st.delay)
		e.I64(st.L)
		e.I64(st.arrivals)
		e.I64(st.rejected)
		encodeTotals(e, st.carry)
		ls, err := live.Export(st.sched)
		if err != nil {
			// Every registered strategy is exportable; an unexportable
			// scheduler would be a new strategy family missing its State
			// support.  Encode a poison kind so restore fails loudly
			// rather than silently dropping the object's schedule.
			e.U8(0xff)
			continue
		}
		encodeLiveState(e, ls)
	}
	return e.Finish()
}

func encodeLiveState(e *store.Encoder, ls live.State) {
	switch {
	case ls.Online != nil:
		o := ls.Online
		e.U8(0)
		e.F64(o.Base)
		e.I64(o.Started)
		e.I64(o.Finalized)
		e.I64(o.LastArrival)
		e.I64(o.Clients)
		e.I64(o.Streams)
		e.I64(o.FinalizedStreams)
		e.I64(o.SlotUnits)
		e.F64(o.BusyTime)
	case ls.Epoch != nil:
		ep := ls.Epoch
		e.U8(1)
		e.F64(ep.Origin)
		e.I64(ep.Epoch)
		e.F64s(ep.Times)
		e.I64(ep.LastSlot)
		e.F64(ep.LastTime)
		e.I64(ep.SlotBase)
		e.F64s(ep.Provisional)
		encodeTotals(e, ep.Totals)
	default:
		e.U8(0xff)
	}
}

func decodeLiveState(d *store.Decoder, strategy string) (live.State, error) {
	ls := live.State{Strategy: strategy}
	switch kind := d.U8(); kind {
	case 0:
		o := &live.OnlineState{}
		o.Base = d.F64()
		o.Started = d.I64()
		o.Finalized = d.I64()
		o.LastArrival = d.I64()
		o.Clients = d.I64()
		o.Streams = d.I64()
		o.FinalizedStreams = d.I64()
		o.SlotUnits = d.I64()
		o.BusyTime = d.F64()
		ls.Online = o
	case 1:
		ep := &live.EpochState{}
		ep.Origin = d.F64()
		ep.Epoch = d.I64()
		ep.Times = d.F64s()
		ep.LastSlot = d.I64()
		ep.LastTime = d.F64()
		ep.SlotBase = d.I64()
		ep.Provisional = d.F64s()
		ep.Totals = decodeTotals(d)
		ls.Epoch = ep
	default:
		if err := d.Err(); err != nil {
			return ls, err
		}
		return ls, fmt.Errorf("%w: unknown live state kind %d for strategy %q", store.ErrCorruptSnapshot, kind, strategy)
	}
	return ls, d.Err()
}

// decodeSnapshot reinstates a snapshot blob onto a freshly built shard
// (addObject done, loop not started).  The snapshot's identity
// fingerprint — shard index, shard count, object names and strategies in
// order — must match the server's configuration exactly; a snapshot
// taken under a different catalog or sharding is refused as corrupt
// rather than partially applied.
func (sh *shard) decodeSnapshot(blob []byte) error {
	d, err := store.NewDecoder(blob)
	if err != nil {
		return err
	}
	if id := d.I64(); id != int64(sh.id) {
		return mismatch(d, "snapshot for shard %d restored onto shard %d", id, sh.id)
	}
	if total := d.I64(); total != int64(sh.total) {
		return mismatch(d, "snapshot taken with %d shards, server has %d", total, sh.total)
	}
	now := d.F64()
	seq := d.I64()
	admitted := d.I64()
	degraded := d.I64()
	rejected := d.I64()

	nEnds := d.Len(16)
	ends := make([]endEvent, 0, nEnds)
	var gaugeDelta int64
	for i := 0; i < nEnds; i++ {
		t := d.F64()
		delta := int32(d.I64())
		ends = append(ends, endEvent{t: t, delta: delta})
		gaugeDelta += int64(delta)
	}

	nIvs := d.Len(16)
	type span struct{ start, end float64 }
	ivs := make([]span, 0, nIvs)
	for i := 0; i < nIvs; i++ {
		start := d.F64()
		end := d.F64()
		ivs = append(ivs, span{start, end})
	}

	nStages := d.Len(8)
	if d.Err() == nil && nStages != len(sh.stages) {
		return mismatch(d, "snapshot has %d stage sets, shard has %d", nStages, len(sh.stages))
	}
	stages := make([]stageHist, nStages)
	for i := range stages {
		for _, h := range [](*stats.LogHistogram){&stages[i].queue, &stages[i].plan, &stages[i].replan} {
			if err := decodeHist(d, h); err != nil {
				return err
			}
		}
	}

	nObjs := d.Len(1)
	if d.Err() == nil && nObjs != len(sh.objects) {
		return mismatch(d, "snapshot has %d objects, shard has %d", nObjs, len(sh.objects))
	}
	scheds := make([]live.Incremental, len(sh.objects))
	for i := 0; i < nObjs && d.Err() == nil; i++ {
		st := sh.objects[i]
		if name := d.String(); name != st.obj.Name {
			return mismatch(d, "snapshot object %d is %q, shard has %q", i, name, st.obj.Name)
		}
		if strat := d.String(); strat != st.strategy {
			return mismatch(d, "snapshot object %q uses strategy %q, shard uses %q", st.obj.Name, strat, st.strategy)
		}
		epoch := int(d.I64())
		scale := d.F64()
		delay := d.F64()
		L := d.I64()
		arrivals := d.I64()
		objRejected := d.I64()
		carry := decodeTotals(d)
		ls, err := decodeLiveState(d, st.strategy)
		if err != nil {
			return err
		}
		sched, err := sh.restoreScheduler(st.obj, st.strategy, delay, ls)
		if err != nil {
			return fmt.Errorf("%w: object %q: %w", store.ErrCorruptSnapshot, st.obj.Name, err)
		}
		st.epoch = epoch
		st.scale = scale
		st.delay = delay
		st.L = L
		st.arrivals = arrivals
		st.rejected = objRejected
		st.carry = carry
		scheds[i] = sched
	}
	if err := d.Done(); err != nil {
		return err
	}

	// Everything validated and decoded: commit.  (Scheduler swaps were
	// already written above; the scalar state follows only now, but a
	// failed decode aborts New entirely, so no half-restored shard ever
	// serves.)
	for i, sched := range scheds {
		if sched != nil {
			sh.objects[i].sched = sched
		}
	}
	sh.now = now
	sh.ticketSeq = seq
	sh.admittedL = admitted
	sh.degradedL = degraded
	sh.rejectedL = rejected
	sh.srv.admitted.Add(admitted)
	sh.srv.degraded.Add(degraded)
	sh.srv.rejected.Add(rejected)
	sh.ends = ends
	// Each pending end event retires one live channel: the restored gauge
	// contribution is minus the heap's summed deltas.
	sh.srv.gauge.Add(-gaugeDelta)
	for _, iv := range ivs {
		sh.usage.Add(iv.start, iv.end)
	}
	copy(sh.stages, stages)
	return nil
}

// mismatch drains the decoder's sticky error first (a corrupted length
// can masquerade as a fingerprint mismatch) and otherwise reports the
// configuration mismatch itself as corruption.
func mismatch(d *store.Decoder, format string, args ...any) error {
	if err := d.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: "+format, append([]any{store.ErrCorruptSnapshot}, args...)...)
}

// restoreScheduler rebuilds an object's live scheduler from exported
// state, with the exact configuration newScheduler would use at the
// restored effective delay.
func (sh *shard) restoreScheduler(obj multiobject.Object, strategy string, delay float64, ls live.State) (live.Incremental, error) {
	obj.Delay = delay
	var nowNanos func() int64
	if sh.srv.cfg.MeterReplanNanos || sh.srv.cfg.MeterStages {
		nowNanos = sh.srv.nowNanos
	}
	return live.Restore(strategy, live.Config{
		Object:       obj,
		EpochSlots:   sh.srv.cfg.EpochSlots,
		ConstantRate: sh.srv.cfg.ConstantRateTuning,
		PlanWorkers:  sh.srv.cfg.PlanWorkers,
		Cache:        sh.cache,
		Sink:         sh,
		Ctx:          sh.srv.ctx,
		ColdReplan:   sh.srv.cfg.ColdReplanning,
		NowNanos:     nowNanos,
	}, ls)
}

// restore loads the shard's latest snapshot and replays the WAL tail
// through the ordinary admit path.  It runs during New, before the shard
// loop or WAL writer exist, so it owns all shard state.  Replay calls
// handleSubmit directly — the loop's logSubmit step is deliberately
// absent, since the records being applied are already in the log.
func (sh *shard) restore() error {
	st := sh.srv.cfg.Store
	blob, err := st.LoadSnapshot(sh.id)
	if err != nil {
		return fmt.Errorf("serve: load snapshot for shard %d: %w", sh.id, err)
	}
	if blob != nil {
		if err := sh.decodeSnapshot(blob); err != nil {
			return fmt.Errorf("serve: restore shard %d: %w", sh.id, err)
		}
	}
	err = st.ReplayWAL(sh.id, func(rec []byte) error {
		if len(rec) != walRecSize {
			return fmt.Errorf("%w: WAL record of %d bytes (want %d)", store.ErrCorruptSnapshot, len(rec), walRecSize)
		}
		seq := int64(binary.LittleEndian.Uint64(rec[0:8]))
		objIdx := int(binary.LittleEndian.Uint32(rec[8:12]))
		t := math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20]))
		if seq < sh.ticketSeq {
			// Superseded by the snapshot: the file backend's crash window
			// between snapshot rename and WAL truncation leaves these
			// behind; they were already applied before the snapshot.
			return nil
		}
		if seq != sh.ticketSeq {
			return fmt.Errorf("%w: WAL sequence gap on shard %d: record %d, expected %d", store.ErrCorruptSnapshot, sh.id, seq, sh.ticketSeq)
		}
		if objIdx < 0 || objIdx >= len(sh.srv.cfg.Catalog) {
			return fmt.Errorf("%w: WAL record for catalog index %d (catalog has %d)", store.ErrCorruptSnapshot, objIdx, len(sh.srv.cfg.Catalog))
		}
		name := sh.srv.cfg.Catalog[objIdx].Name
		if sh.byName[name] == nil {
			return fmt.Errorf("%w: WAL record for object %q not routed to shard %d", store.ErrCorruptSnapshot, name, sh.id)
		}
		sh.handleSubmit(Request{Object: name, T: t}, -1)
		return nil
	})
	if err != nil {
		return fmt.Errorf("serve: replay WAL for shard %d: %w", sh.id, err)
	}
	return nil
}

// Snapshot forces an immediate snapshot of every shard and waits until
// each is saved.  It is the synchronous form of the periodic cadence —
// the HTTP layer exposes it as POST /v1/admin/snapshot for warm
// restarts: snapshot, stop the process, start it with Restore.
func (s *Server) Snapshot() error {
	if s.cfg.Store == nil {
		return fmt.Errorf("%w: server has no durability store", ErrBadConfig)
	}
	for _, sh := range s.shards {
		reply := make(chan error, 1)
		select {
		case sh.msgs <- snapshotMsg{reply: reply}:
		case <-s.quit:
			return ErrClosed
		}
		select {
		case err := <-reply:
			if err != nil {
				return fmt.Errorf("serve: snapshot shard %d: %w", sh.id, err)
			}
		case <-s.quit:
			return ErrClosed
		}
	}
	return nil
}
