package serve_test

// Cancellation behavior of the serving driver, run under -race in CI: a
// canceled RunDriver must stop replaying with an error wrapping
// context.Canceled while leaving the server fully functional — its shards
// still drain and finalize whatever was admitted, and Close leaks no
// goroutines.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/multiobject"
	"repro/internal/serve"
)

// countdownCtx cancels itself after a fixed number of Err observations,
// so the driver is canceled at a deterministic point mid-replay.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRunDriverCancelStillDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cat := multiobject.ZipfCatalog(6, 1.0, 0.05, 1.0)
	// Mixed strategies so cancellation crosses both the native online
	// scheduler and epoch replanners.
	cat[1].Strategy = "dyadic-batched"
	cat[2].Strategy = "batching"
	s, err := serve.New(serve.Config{Catalog: cat, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := serve.GenerateRequests(cat, serve.LoadConfig{
		Horizon: 40, MeanInterArrival: 0.01, Kind: serve.PoissonArrivals, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) < 100 {
		t.Fatalf("load too small to cancel mid-run: %d requests", len(reqs))
	}

	// Cancel deterministically mid-replay: the driver observes the context
	// once per request, so the 51st observation reports cancellation after
	// exactly 50 submissions.
	const served = 50
	ctx := &countdownCtx{Context: context.Background(), left: served}
	_, err = serve.RunDriver(ctx, s, reqs, 40)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled RunDriver error = %v, want context.Canceled in chain", err)
	}

	// The server is still healthy: it drains (finalizing every admitted
	// arrival's streams) and reports consistent accounting.
	dr, err := s.Drain(40)
	if err != nil {
		t.Fatalf("Drain after cancel: %v", err)
	}
	var arrivals int64
	for _, o := range dr.Objects {
		arrivals += o.Arrivals
		if o.FinalizedStreams != o.Streams {
			t.Errorf("%s: %d of %d streams finalized after post-cancel drain",
				o.Name, o.FinalizedStreams, o.Streams)
		}
	}
	if got := dr.Stats.Admitted + dr.Stats.Degraded; arrivals != got {
		t.Errorf("drained arrivals %d != served counter %d", arrivals, got)
	}
	if got := dr.Stats.Admitted + dr.Stats.Degraded + dr.Stats.Rejected; got != served {
		t.Errorf("served %d requests before cancellation, want exactly %d", got, served)
	}

	// Closing must tear every shard goroutine down; give the runtime a
	// moment to reap them, then compare against the baseline.
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines after Close: %d, baseline %d — leak", n, baseline)
	}
}

// TestRunDriverPreCanceled pins the fast path: an already-canceled context
// submits nothing.
func TestRunDriverPreCanceled(t *testing.T) {
	cat := multiobject.ZipfCatalog(2, 1.0, 0.1, 1.0)
	s, err := serve.New(serve.Config{Catalog: cat})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := serve.RunDriver(ctx, s, []serve.Request{{Object: "object-01", T: 0}}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunDriver error = %v", err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 0 {
		t.Errorf("pre-canceled driver admitted %d requests", st.Admitted)
	}
}
