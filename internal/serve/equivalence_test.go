package serve_test

// The live-vs-batch equivalence suite: for a fixed seed and catalog, the
// live event-loop path (serve.Server fed by the deterministic driver,
// drained at the horizon) must report exactly the per-object stream counts
// and bandwidth totals of the batch path (sim.RunWorkload on the same
// workload), for any shard count.  The broadcast plan is oblivious, so the
// two paths share no code for the accounting itself: the batch side builds
// whole forests and runs the indexed engine, the live side finalizes merge
// groups incrementally as virtual time passes.

import (
	"context"
	"math"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/serve"
	"repro/internal/sim"
)

// workloads returns the equivalence scenarios: uniform delays, popularity-
// aware (per-object) delays, a zero-popularity object, and a single-object
// catalog, under Poisson and constant-rate arrivals.
func workloads() []struct {
	name    string
	cat     multiobject.Catalog
	poisson bool
	horizon float64
	mean    float64
	seed    int64
} {
	zipf := multiobject.ZipfCatalog(7, 1.0, 0.02, 1.0)
	aware := multiobject.PopularityAwareDelays(multiobject.ZipfCatalog(5, 1.0, 0.04, 0.8), 0.04, 3)
	withZero := multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 3, Delay: 0.05},
		{Name: "cold", Length: 2, Popularity: 0, Delay: 0.25},
		{Name: "warm", Length: 0.5, Popularity: 1, Delay: 0.02},
	}
	single := multiobject.Catalog{{Name: "only", Length: 1, Popularity: 1, Delay: 0.01}}
	return []struct {
		name    string
		cat     multiobject.Catalog
		poisson bool
		horizon float64
		mean    float64
		seed    int64
	}{
		{"zipf-poisson", zipf, true, 13.7, 0.05, 42},
		{"zipf-constant", zipf, false, 9.25, 0.08, 1},
		{"aware-poisson", aware, true, 11, 0.03, 7},
		{"zero-popularity", withZero, true, 6.5, 0.1, 11},
		{"single-poisson", single, true, 4.2, 0.02, 99},
	}
}

func TestLiveMatchesBatchWorkload(t *testing.T) {
	for _, wl := range workloads() {
		wl := wl
		t.Run(wl.name, func(t *testing.T) {
			batch, err := sim.RunWorkload(context.Background(), sim.WorkloadConfig{
				Catalog:          wl.cat,
				Horizon:          wl.horizon,
				MeanInterArrival: wl.mean,
				Poisson:          wl.poisson,
				Seed:             wl.seed,
			})
			if err != nil {
				t.Fatalf("RunWorkload: %v", err)
			}
			for _, shards := range []int{1, 3, 8} {
				live := runLive(t, wl.cat, wl.poisson, wl.horizon, wl.mean, wl.seed, shards)
				compare(t, shards, batch, live)
			}
		})
	}
}

func runLive(t *testing.T, cat multiobject.Catalog, poisson bool, horizon, mean float64, seed int64, shards int) *serve.Report {
	t.Helper()
	kind := serve.ConstantArrivals
	if poisson {
		kind = serve.PoissonArrivals
	}
	reqs, err := serve.GenerateRequests(cat, serve.LoadConfig{
		Horizon:          horizon,
		MeanInterArrival: mean,
		Kind:             kind,
		Seed:             seed,
	})
	if err != nil {
		t.Fatalf("GenerateRequests: %v", err)
	}
	s, err := serve.New(serve.Config{Catalog: cat, Shards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	rep, err := serve.RunDriver(context.Background(), s, reqs, horizon)
	if err != nil {
		t.Fatalf("RunDriver: %v", err)
	}
	return rep
}

func compare(t *testing.T, shards int, batch *sim.WorkloadResult, live *serve.Report) {
	t.Helper()
	dr := live.Drain
	if got, want := len(dr.Objects), len(batch.Objects); got != want {
		t.Fatalf("shards=%d: %d live objects, want %d", shards, got, want)
	}
	if live.Rejected != 0 || live.Degraded != 0 {
		t.Fatalf("shards=%d: uncapped run rejected %d / degraded %d requests",
			shards, live.Rejected, live.Degraded)
	}
	for i, lo := range dr.Objects {
		bo := batch.Objects[i]
		if lo.Name != bo.Object.Name {
			t.Fatalf("shards=%d object %d: name %q, want %q", shards, i, lo.Name, bo.Object.Name)
		}
		if lo.L != bo.SlotsPerMedia {
			t.Errorf("shards=%d %s: L=%d, want %d", shards, lo.Name, lo.L, bo.SlotsPerMedia)
		}
		if lo.Arrivals != int64(bo.Arrivals) {
			t.Errorf("shards=%d %s: arrivals=%d, want %d", shards, lo.Name, lo.Arrivals, bo.Arrivals)
		}
		if lo.Clients != int64(bo.Clients) {
			t.Errorf("shards=%d %s: clients=%d, want %d", shards, lo.Name, lo.Clients, bo.Clients)
		}
		if lo.Streams != int64(bo.StreamCount) {
			t.Errorf("shards=%d %s: streams=%d, want %d", shards, lo.Name, lo.Streams, bo.StreamCount)
		}
		if lo.FinalizedStreams != lo.Streams {
			t.Errorf("shards=%d %s: %d of %d streams finalized after drain",
				shards, lo.Name, lo.FinalizedStreams, lo.Streams)
		}
		if lo.SlotUnits != bo.Sim.TotalBandwidth {
			t.Errorf("shards=%d %s: slot units=%d, want %d", shards, lo.Name, lo.SlotUnits, bo.Sim.TotalBandwidth)
		}
	}
	if got, want := dr.Usage.Peak(), batch.Peak; got != want {
		t.Errorf("shards=%d: server peak=%d, want %d", shards, got, want)
	}
	if got, want := dr.Usage.Total(), batch.TotalBusyTime; relErr(got, want) > 1e-9 {
		t.Errorf("shards=%d: busy time=%g, want %g", shards, got, want)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestLiveDeterministicAcrossShards pins full-run determinism: the same
// seed must yield identical tickets and drained stats for any shard count.
func TestLiveDeterministicAcrossShards(t *testing.T) {
	cat := multiobject.ZipfCatalog(9, 1.0, 0.03, 1.1)
	reqs, err := serve.GenerateRequests(cat, serve.LoadConfig{
		Horizon: 8, MeanInterArrival: 0.04, Kind: serve.PoissonArrivals, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ref []serve.Ticket
	for _, shards := range []int{1, 2, 5} {
		s, err := serve.New(serve.Config{Catalog: cat, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		tickets := make([]serve.Ticket, 0, len(reqs))
		for _, req := range reqs {
			tk, err := s.Submit(req)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			tickets = append(tickets, tk)
		}
		if _, err := s.Drain(8); err != nil {
			t.Fatal(err)
		}
		s.Close()
		if ref == nil {
			ref = tickets
			continue
		}
		for i := range ref {
			want, got := ref[i], tickets[i]
			if want.Object != got.Object || want.Slot != got.Slot || want.Decision != got.Decision ||
				want.StartAt != got.StartAt || len(want.Program) != len(got.Program) {
				t.Fatalf("shards=%d ticket %d: %+v, want %+v", shards, i, got, want)
			}
		}
	}
}
