package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// APIVersion is the current HTTP API version prefix.
const APIVersion = "/v1"

// maxRequestBody bounds the body of the single-request route; a Request
// is a name and a timestamp, so 1 MiB is already generous.
const maxRequestBody = 1 << 20

// maxBatchBody and maxBatchRequests bound the batch-admission route so a
// single POST cannot exhaust server memory: the body is capped before
// decoding and the decoded array is capped before any Submit runs.
const (
	maxBatchBody     = 8 << 20
	maxBatchRequests = 10000
)

// BatchResult is one entry of the /v1/requests batch-admission response:
// either a ticket or a per-request error (the batch itself still returns
// 200 so one bad object name cannot fail the whole batch).
type BatchResult struct {
	Ticket *Ticket `json:"ticket,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// Handler returns the HTTP JSON API for the server.  The canonical routes
// are versioned:
//
//	POST /v1/request         {"object":"name","t":12.5}    -> Ticket
//	POST /v1/requests        [{"object":"a"},{...}, ...]   -> []BatchResult
//	GET  /v1/stats           -> Stats
//	GET  /v1/objects/{name}  -> ObjectStats
//	GET  /v1/healthz         -> "ok"
//	GET  /v1/metrics         -> Prometheus text exposition (see prometheus.go)
//	POST /v1/admin/snapshot  -> force a durable snapshot of every shard
//	                            (409 when the server has no store)
//
// Every error response, on every route and shard, is a uniform JSON body
// {"error": "..."} with the appropriate status (unknown objects are
// always 404) — clients never have to parse plain-text error bodies.
// With Config.PressureHighWater set, a shard over its queue high-water
// mark answers 429 with a Retry-After header (seconds, derived from the
// shard's observed drain rate) instead of blocking the submit.
//
// The original unversioned routes (/request, /stats, /objects/{name},
// /healthz, /metrics) are kept as deprecated aliases: they run the exact
// same handlers and return byte-identical bodies, but mark themselves with
// a "Deprecation: true" header and a Link header pointing at the /v1
// successor.  New clients should use /v1 only; the aliases exist so
// pre-/v1 deployments keep working.  The one exception is /metrics,
// whose /v1 route switched to the Prometheus text format: the legacy
// alias keeps serving the original flat JSON counter map (so pre-/v1
// pollers keep parsing), still marked deprecated.
//
// A request body without "t" (or with a negative one) is stamped with the
// wall clock in Config.TimeUnit units since the server started, which is
// how a live deployment runs; the load driver sends explicit virtual
// timestamps instead for deterministic replay.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	route := func(path string, h http.HandlerFunc) {
		mux.HandleFunc(APIVersion+path, h)
		mux.HandleFunc(path, deprecated(APIVersion+path, h))
	}
	route("/request", s.handleRequest)
	route("/stats", s.handleStats)
	route("/objects/", s.handleObject)
	route("/healthz", handleHealthz)
	// /metrics is the one route whose /v1 handler differs from its legacy
	// alias: Prometheus text under /v1, the original JSON map (deprecated)
	// on the unversioned path.
	mux.HandleFunc(APIVersion+"/metrics", s.handleMetricsProm)
	mux.HandleFunc("/metrics", deprecated(APIVersion+"/metrics", s.handleMetricsJSON))
	// The batch-admission endpoint is new in /v1; it has no legacy alias.
	mux.HandleFunc(APIVersion+"/requests", s.handleBatch)
	// Admin: force a durable snapshot of every shard (no legacy alias).
	mux.HandleFunc(APIVersion+"/admin/snapshot", s.handleSnapshot)
	return mux
}

// handleSnapshot answers POST /v1/admin/snapshot by forcing an immediate
// snapshot of every shard and waiting for the stores to confirm — the
// warm-restart primitive: snapshot, stop the process, restart with the
// restore flag.  Servers without a durability store answer 409.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	err := s.Snapshot()
	switch {
	case errors.Is(err, ErrBadConfig):
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, ErrClosed):
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// deprecated wraps a legacy route handler so responses advertise the /v1
// successor (RFC 8594 style) while keeping the body identical.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	req := Request{T: -1}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	ticket, err := s.Submit(req)
	var pe *PressureError
	switch {
	case errors.Is(err, ErrUnknownObject):
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	case errors.As(err, &pe):
		// Queue-depth backpressure: tell the client when the shard's
		// queue should have drained instead of blocking its request.
		w.Header().Set("Retry-After", retryAfterSeconds(pe.RetryAfter))
		writeJSONError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	status := http.StatusOK
	if ticket.Decision == Rejected {
		// The catalog object exists but the admission controller
		// declined: overloaded, try again later (or elsewhere).
		status = http.StatusServiceUnavailable
	}
	if s.cfg.MeterStages {
		t0 := s.nowNanos()
		writeJSON(w, status, ticket)
		s.observeRespond(ticket.Strategy, s.nowNanos()-t0)
		return
	}
	writeJSON(w, status, ticket)
}

// retryAfterSeconds renders a Retry-After header value: whole seconds,
// rounded up, at least 1 (the header has one-second resolution).
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleBatch admits an array of requests through Server.SubmitBatch,
// answering one BatchResult per input.  Requests for the same object are
// processed in array order (SubmitBatch preserves per-shard order), so a
// deterministic virtual-time batch replays exactly like the same sequence
// of single requests — but the whole batch crosses each shard's message
// channel once instead of once per entry.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var raw []json.RawMessage
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&raw); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body (want a JSON array of requests, at most %d MiB): %v",
			maxBatchBody>>20, err))
		return
	}
	if len(raw) > maxBatchRequests {
		writeJSONError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d requests exceeds the %d-request limit", len(raw), maxBatchRequests))
		return
	}
	out := make([]BatchResult, len(raw))
	reqs := make([]Request, 0, len(raw))
	idx := make([]int, 0, len(raw))
	for i, msg := range raw {
		req := Request{T: -1} // absent "t" means wall-clock stamping, like /v1/request
		if err := json.Unmarshal(msg, &req); err != nil {
			out[i] = BatchResult{Error: fmt.Sprintf("bad request %d: %v", i, err)}
			continue
		}
		reqs = append(reqs, req)
		idx = append(idx, i)
	}
	pressured := 0
	var worst time.Duration
	for k, res := range s.SubmitBatch(reqs) {
		if res.Err != nil {
			var pe *PressureError
			if errors.As(res.Err, &pe) {
				pressured++
				if pe.RetryAfter > worst {
					worst = pe.RetryAfter
				}
			}
			out[idx[k]] = BatchResult{Error: res.Err.Error()}
			continue
		}
		tk := res.Ticket
		out[idx[k]] = BatchResult{Ticket: &tk}
	}
	// A batch refused entirely by backpressure answers 429 + Retry-After
	// like the single-request route; partial pressure stays a 200 with
	// per-entry errors (the batch contract: one bad entry never fails
	// the rest).
	if pressured > 0 && pressured == len(out) && len(out) > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(worst))
		writeJSON(w, http.StatusTooManyRequests, out)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleObject answers GET /v1/objects/{name}.  Unknown objects get a
// uniform 404 JSON error ({"error": ...}) on every shard — never an empty
// 200 body — pinned by TestV1ObjectNotFoundJSON.
func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path
	name = strings.TrimPrefix(name, APIVersion)
	name = strings.TrimPrefix(name, "/objects/")
	if name == "" {
		writeJSONError(w, http.StatusBadRequest, "missing object name")
		return
	}
	os, err := s.Object(name)
	switch {
	case errors.Is(err, ErrUnknownObject):
		writeJSONError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, os)
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetricsJSON is the legacy (pre-Prometheus) /metrics body, kept
// as the deprecated unversioned alias so existing pollers keep parsing.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	// Flat expvar-style counter map, cheap enough to poll: counters are
	// atomics and the gauge is a single load (no shard round-trips).
	writeJSON(w, http.StatusOK, map[string]int64{
		"serve.admitted":      s.admitted.Load(),
		"serve.degraded":      s.degraded.Load(),
		"serve.rejected":      s.rejected.Load(),
		"serve.unknown":       s.unknown.Load(),
		"serve.live_channels": s.gauge.Load(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONError writes the API's uniform error body: a JSON object with
// a single "error" message, so clients can parse every non-2xx response
// the same way (plain-text http.Error bodies are never used).
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Serve runs the HTTP API on the listener until ctx is cancelled, then
// shuts the HTTP server down gracefully (letting in-flight requests
// finish) and closes the admission server.  It returns the first serve
// error other than http.ErrServerClosed.
func Serve(ctx context.Context, ln net.Listener, s *Server) error {
	hs := &http.Server{Handler: Handler(s)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		s.Close()
		<-errc // reap the Serve goroutine
		return err
	case err := <-errc:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ListenAndServe binds addr and calls Serve.  An addr ending in ":0"
// picks a free port; the bound address is reported through onReady (when
// non-nil) before serving starts.
func ListenAndServe(ctx context.Context, addr string, s *Server, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	return Serve(ctx, ln, s)
}
