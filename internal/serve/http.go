package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// Handler returns the HTTP JSON API for the server:
//
//	POST /request        {"object":"name","t":12.5}  -> Ticket
//	GET  /stats          -> Stats
//	GET  /objects/{name} -> ObjectStats
//	GET  /healthz        -> "ok"
//	GET  /metrics        -> expvar-style flat JSON counter map
//
// A request body without "t" (or with a negative one) is stamped with the
// wall clock in Config.TimeUnit units since the server started, which is
// how a live deployment runs; the load driver sends explicit virtual
// timestamps instead for deterministic replay.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/request", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		req := Request{T: -1}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return
		}
		ticket, err := s.Submit(req)
		switch {
		case errors.Is(err, ErrUnknownObject):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case errors.Is(err, ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		status := http.StatusOK
		if ticket.Decision == Rejected {
			// The catalog object exists but the admission controller
			// declined: overloaded, try again later (or elsewhere).
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, ticket)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/objects/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/objects/")
		if name == "" {
			http.Error(w, "missing object name", http.StatusBadRequest)
			return
		}
		os, err := s.Object(name)
		switch {
		case errors.Is(err, ErrUnknownObject):
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, os)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Flat expvar-style counter map, cheap enough to poll: counters are
		// atomics and the gauge is a single load (no shard round-trips).
		writeJSON(w, http.StatusOK, map[string]int64{
			"serve.admitted":      s.admitted.Load(),
			"serve.degraded":      s.degraded.Load(),
			"serve.rejected":      s.rejected.Load(),
			"serve.unknown":       s.unknown.Load(),
			"serve.live_channels": s.gauge.Load(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve runs the HTTP API on the listener until ctx is cancelled, then
// shuts the HTTP server down gracefully (letting in-flight requests
// finish) and closes the admission server.  It returns the first serve
// error other than http.ErrServerClosed.
func Serve(ctx context.Context, ln net.Listener, s *Server) error {
	hs := &http.Server{Handler: Handler(s)}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		s.Close()
		<-errc // reap the Serve goroutine
		return err
	case err := <-errc:
		s.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

// ListenAndServe binds addr and calls Serve.  An addr ending in ":0"
// picks a free port; the bound address is reported through onReady (when
// non-nil) before serving starts.
func ListenAndServe(ctx context.Context, addr string, s *Server, onReady func(boundAddr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	return Serve(ctx, ln, s)
}
