package serve_test

// Crash-recovery equivalence: a server killed mid-trace and restored from
// its durable store (latest epoch snapshot + WAL tail) must finish the
// trace bit-identically to a server that never died — same tail tickets
// (IDs included), same drained per-object stats, same bandwidth totals —
// for every live strategy and shard count.  The Mem store's Clone is the
// crash model: it captures exactly the bytes "on disk" at the kill
// instant, and everything the doomed server does afterwards is lost.

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/multiobject"
	"repro/internal/serve"
	"repro/internal/store"
)

// crashCatalog mixes delays so shards snapshot at different cadences and
// epoch strategies close epochs mid-trace.
func crashCatalog() multiobject.Catalog {
	return multiobject.Catalog{
		{Name: "hot", Length: 1, Popularity: 4, Delay: 0.05},
		{Name: "warm", Length: 2, Popularity: 2, Delay: 0.125},
		{Name: "cold", Length: 0.5, Popularity: 1, Delay: 0.08},
	}
}

func crashConfig(strategy string, shards int, st store.Store, restore bool) serve.Config {
	return serve.Config{
		Catalog:         crashCatalog(),
		Shards:          shards,
		DefaultStrategy: strategy,
		EpochSlots:      4,
		Store:           st,
		Restore:         restore,
	}
}

// crashVariant is one durability configuration of the equivalence matrix:
// a sync level, optionally the per-ack (pre-group-commit) writer.
type crashVariant struct {
	name        string
	mode        store.SyncMode
	flushPerAck bool
}

func crashVariants() []crashVariant {
	return []crashVariant{
		{name: "sync-none", mode: store.SyncNone},
		{name: "sync-os", mode: store.SyncOS},
		{name: "sync-full", mode: store.SyncFull},
		{name: "per-ack", mode: store.SyncOS, flushPerAck: true},
	}
}

func crashTrace(t *testing.T) []serve.Request {
	t.Helper()
	reqs, err := serve.GenerateRequests(crashCatalog(), serve.LoadConfig{
		Horizon:          6,
		MeanInterArrival: 0.09,
		Kind:             serve.PoissonArrivals,
		Seed:             23,
	})
	if err != nil {
		t.Fatalf("GenerateRequests: %v", err)
	}
	return reqs
}

// submitAll pushes requests through Submit in order and returns the tickets.
func submitAll(t *testing.T, s *serve.Server, reqs []serve.Request) []serve.Ticket {
	t.Helper()
	out := make([]serve.Ticket, 0, len(reqs))
	for _, req := range reqs {
		tk, err := s.Submit(req)
		if err != nil {
			t.Fatalf("Submit(%+v): %v", req, err)
		}
		out = append(out, tk)
	}
	return out
}

func sameTicket(a, b serve.Ticket) bool {
	return a.ID == b.ID && a.Object == b.Object && a.Decision == b.Decision &&
		a.Strategy == b.Strategy && a.T == b.T && a.Epoch == b.Epoch &&
		a.Slot == b.Slot && a.Delay == b.Delay && a.StartAt == b.StartAt &&
		reflect.DeepEqual(a.Program, b.Program)
}

func TestCrashRecoveryEquivalence(t *testing.T) {
	const horizon = 8.0
	reqs := crashTrace(t)
	cuts := []int{len(reqs) / 3, 2 * len(reqs) / 3}
	for _, strategy := range serve.LivePlanners() {
		strategy := strategy
		t.Run(strategy, func(t *testing.T) {
			for _, shards := range []int{1, 2, 5} {
				// Uninterrupted reference, durability off: recovery must
				// reproduce a run that never logged anything.
				ref, err := serve.New(crashConfig(strategy, shards, nil, false))
				if err != nil {
					t.Fatalf("shards=%d: New(ref): %v", shards, err)
				}
				refTickets := submitAll(t, ref, reqs)
				refDrain, err := ref.Drain(horizon)
				if err != nil {
					t.Fatalf("shards=%d: Drain(ref): %v", shards, err)
				}
				ref.Close()

				for _, v := range crashVariants() {
					for _, cut := range cuts {
						mem := store.NewMem()
						cfg := crashConfig(strategy, shards, mem, false)
						cfg.SyncMode = v.mode
						cfg.FlushPerAck = v.flushPerAck
						doomed, err := serve.New(cfg)
						if err != nil {
							t.Fatalf("shards=%d %s cut=%d: New(doomed): %v", shards, v.name, cut, err)
						}
						head := submitAll(t, doomed, reqs[:cut])
						for i := range head {
							if !sameTicket(head[i], refTickets[i]) {
								t.Fatalf("shards=%d %s cut=%d: durable head ticket %d diverged:\n got %+v\nwant %+v",
									shards, v.name, cut, i, head[i], refTickets[i])
							}
						}
						// SIGKILL: capture the store as it stands, then discard
						// the doomed server without giving it a clean shutdown
						// path to flush anything further.  Serial submits mean
						// every request was acked — and so committed — before
						// the clone, in every sync mode.
						disk := mem.Clone()
						doomed.Close()

						rcfg := crashConfig(strategy, shards, disk, true)
						rcfg.SyncMode = v.mode
						rcfg.FlushPerAck = v.flushPerAck
						restored, err := serve.New(rcfg)
						if err != nil {
							t.Fatalf("shards=%d %s cut=%d: New(restored): %v", shards, v.name, cut, err)
						}
						tail := submitAll(t, restored, reqs[cut:])
						for i := range tail {
							if !sameTicket(tail[i], refTickets[cut+i]) {
								t.Fatalf("shards=%d %s cut=%d: tail ticket %d diverged:\n got %+v\nwant %+v",
									shards, v.name, cut, i, tail[i], refTickets[cut+i])
							}
						}
						gotDrain, err := restored.Drain(horizon)
						if err != nil {
							t.Fatalf("shards=%d %s cut=%d: Drain(restored): %v", shards, v.name, cut, err)
						}
						if !reflect.DeepEqual(gotDrain.Objects, refDrain.Objects) {
							t.Fatalf("shards=%d %s cut=%d: drained objects diverged:\n got %+v\nwant %+v",
								shards, v.name, cut, gotDrain.Objects, refDrain.Objects)
						}
						if got, want := gotDrain.Usage.Total(), refDrain.Usage.Total(); math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("shards=%d %s cut=%d: busy time %g, want %g", shards, v.name, cut, got, want)
						}
						if got, want := gotDrain.Usage.Peak(), refDrain.Usage.Peak(); got != want {
							t.Fatalf("shards=%d %s cut=%d: peak %d, want %d", shards, v.name, cut, got, want)
						}
						gotStats, wantStats := gotDrain.Stats, refDrain.Stats
						if gotStats.Admitted != wantStats.Admitted || gotStats.Degraded != wantStats.Degraded ||
							gotStats.Rejected != wantStats.Rejected || gotStats.LiveChannels != wantStats.LiveChannels {
							t.Fatalf("shards=%d %s cut=%d: counters diverged:\n got %+v\nwant %+v",
								shards, v.name, cut, gotStats, wantStats)
						}
						if gotStats.WALFailures != 0 {
							t.Fatalf("shards=%d %s cut=%d: %d WAL failures on a healthy store",
								shards, v.name, cut, gotStats.WALFailures)
						}
						restored.Close()
					}
				}
			}
		})
	}
}

// TestCrashRecoveryAfterForcedSnapshot pins the snapshot-restore path
// specifically: Snapshot() truncates the WAL, so recovery here rebuilds
// everything from the codec blob plus only the records logged after it.
func TestCrashRecoveryAfterForcedSnapshot(t *testing.T) {
	const horizon = 8.0
	reqs := crashTrace(t)
	cut := len(reqs) / 2
	for _, strategy := range []string{"online", "dyadic", "batching"} {
		t.Run(strategy, func(t *testing.T) {
			ref, err := serve.New(crashConfig(strategy, 2, nil, false))
			if err != nil {
				t.Fatalf("New(ref): %v", err)
			}
			refTickets := submitAll(t, ref, reqs)
			refDrain, err := ref.Drain(horizon)
			if err != nil {
				t.Fatalf("Drain(ref): %v", err)
			}
			ref.Close()

			mem := store.NewMem()
			doomed, err := serve.New(crashConfig(strategy, 2, mem, false))
			if err != nil {
				t.Fatalf("New(doomed): %v", err)
			}
			submitAll(t, doomed, reqs[:cut])
			if err := doomed.Snapshot(); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if mem.Snapshots() != 2 {
				t.Fatalf("forced snapshot wrote %d shard snapshots, want 2", mem.Snapshots())
			}
			// A handful more acked requests land in the post-snapshot WAL
			// tail; then the crash.
			extra := cut + 5
			if extra > len(reqs) {
				extra = len(reqs)
			}
			submitAll(t, doomed, reqs[cut:extra])
			disk := mem.Clone()
			doomed.Close()

			restored, err := serve.New(crashConfig(strategy, 2, disk, true))
			if err != nil {
				t.Fatalf("New(restored): %v", err)
			}
			tail := submitAll(t, restored, reqs[extra:])
			for i := range tail {
				if !sameTicket(tail[i], refTickets[extra+i]) {
					t.Fatalf("tail ticket %d diverged:\n got %+v\nwant %+v", i, tail[i], refTickets[extra+i])
				}
			}
			gotDrain, err := restored.Drain(horizon)
			if err != nil {
				t.Fatalf("Drain(restored): %v", err)
			}
			if !reflect.DeepEqual(gotDrain.Objects, refDrain.Objects) {
				t.Fatalf("drained objects diverged:\n got %+v\nwant %+v", gotDrain.Objects, refDrain.Objects)
			}
			restored.Close()
		})
	}
}

// TestTicketIDContinuityAcrossRestart: IDs are never reissued.  Every ID
// handed out after a crash-restore is fresh, and the combined sequence
// matches the uninterrupted run's exactly.
func TestTicketIDContinuityAcrossRestart(t *testing.T) {
	reqs := crashTrace(t)
	cut := len(reqs) / 2
	for _, shards := range []int{1, 3} {
		mem := store.NewMem()
		s1, err := serve.New(crashConfig("online", shards, mem, false))
		if err != nil {
			t.Fatalf("shards=%d: New: %v", shards, err)
		}
		head := submitAll(t, s1, reqs[:cut])
		disk := mem.Clone()
		s1.Close()

		s2, err := serve.New(crashConfig("online", shards, disk, true))
		if err != nil {
			t.Fatalf("shards=%d: New(restore): %v", shards, err)
		}
		tail := submitAll(t, s2, reqs[cut:])
		s2.Close()

		seen := make(map[int64]int)
		for i, tk := range append(append([]serve.Ticket(nil), head...), tail...) {
			if tk.ID == 0 {
				t.Fatalf("shards=%d: ticket %d for known object has no ID", shards, i)
			}
			if prev, dup := seen[tk.ID]; dup {
				t.Fatalf("shards=%d: ID %d reissued after restart (tickets %d and %d)", shards, tk.ID, prev, i)
			}
			seen[tk.ID] = i
		}
		// Dense per shard: on shard i of n the IDs are n*seq+i+1 for
		// seq = 0,1,2,...; a restart that failed to resume past the WAL
		// high-water mark would either reissue (caught above) or skip a
		// sequence number here.
		perShard := make(map[int64][]bool)
		for id := range seen {
			shard := (id - 1) % int64(shards)
			seq := (id - 1) / int64(shards)
			for int64(len(perShard[shard])) <= seq {
				perShard[shard] = append(perShard[shard], false)
			}
			perShard[shard][seq] = true
		}
		for shard, seqs := range perShard {
			for seq, ok := range seqs {
				if !ok {
					t.Fatalf("shards=%d: shard %d skipped sequence %d — numbering did not resume at the WAL high-water mark",
						shards, shard, seq)
				}
			}
		}
	}
}

// TestAdminSnapshotRoute: POST /v1/admin/snapshot forces a snapshot of
// every shard; GETs are refused, and a store-less server answers 409.
func TestAdminSnapshotRoute(t *testing.T) {
	mem := store.NewMem()
	s, err := serve.New(crashConfig("online", 2, mem, false))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	srv := httptest.NewServer(serve.Handler(s))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatalf("POST snapshot: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST snapshot = %d, want 200", resp.StatusCode)
	}
	if got := mem.Snapshots(); got != 2 {
		t.Fatalf("store holds %d shard snapshots after POST, want 2", got)
	}
	resp, err = http.Get(srv.URL + "/v1/admin/snapshot")
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET snapshot = %d, want 405", resp.StatusCode)
	}

	plain, err := serve.New(crashConfig("online", 1, nil, false))
	if err != nil {
		t.Fatalf("New(plain): %v", err)
	}
	defer plain.Close()
	psrv := httptest.NewServer(serve.Handler(plain))
	defer psrv.Close()
	resp, err = http.Post(psrv.URL+"/v1/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatalf("POST snapshot (no store): %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST snapshot without a store = %d, want 409", resp.StatusCode)
	}
}

// flakyStore wraps a Mem store and fails the append of exactly one
// record — the model of a transient disk hiccup on an otherwise healthy
// store.  Both append entry points count records, so the injection works
// whether the writer appends singly (FlushPerAck) or in batches (group
// commit); a failing batch appends its prefix like the file backend.
type flakyStore struct {
	*store.Mem
	failAt int64 // 1-based index of the record append to fail
	n      atomic.Int64
}

func (f *flakyStore) AppendWAL(shard int, rec []byte) error {
	if f.n.Add(1) == f.failAt {
		return errors.New("injected disk hiccup")
	}
	return f.Mem.AppendWAL(shard, rec)
}

func (f *flakyStore) AppendWALBatch(shard int, recs [][]byte) error {
	for _, rec := range recs {
		if f.n.Add(1) == f.failAt {
			return errors.New("injected disk hiccup")
		}
		if err := f.Mem.AppendWAL(shard, rec); err != nil {
			return err
		}
	}
	return nil
}

// TestWALFailureRepairSnapshot: a transient AppendWAL failure leaves a
// sequence gap in the WAL (the request is still acked).  The writer
// flags the shard and the next admission forces a repair snapshot that
// truncates the gapped log, so a later restore succeeds — instead of
// every restore failing New with a WAL sequence gap until the next
// cadence snapshot happens to truncate it.
func TestWALFailureRepairSnapshot(t *testing.T) {
	const horizon = 8.0
	reqs := crashTrace(t)

	ref, err := serve.New(crashConfig("online", 1, nil, false))
	if err != nil {
		t.Fatalf("New(ref): %v", err)
	}
	refTickets := submitAll(t, ref, reqs)
	refDrain, err := ref.Drain(horizon)
	if err != nil {
		t.Fatalf("Drain(ref): %v", err)
	}
	ref.Close()

	mem := store.NewMem()
	flaky := &flakyStore{Mem: mem, failAt: 5}
	doomed, err := serve.New(crashConfig("online", 1, flaky, false))
	if err != nil {
		t.Fatalf("New(doomed): %v", err)
	}
	tickets := submitAll(t, doomed, reqs)
	for i := range tickets {
		// Availability over durability: the hiccup never surfaces to a
		// submitter.
		if !sameTicket(tickets[i], refTickets[i]) {
			t.Fatalf("ticket %d diverged under WAL failure:\n got %+v\nwant %+v", i, tickets[i], refTickets[i])
		}
	}
	// crashConfig sets no SnapshotEpochs cadence, so the only snapshot
	// that can exist is the forced repair.
	if got := mem.Snapshots(); got != 1 {
		t.Fatalf("store holds %d snapshots, want exactly the repair snapshot", got)
	}
	disk := mem.Clone()
	doomed.Close()

	restored, err := serve.New(crashConfig("online", 1, disk, true))
	if err != nil {
		t.Fatalf("New(restored) after repaired WAL gap: %v", err)
	}
	gotDrain, err := restored.Drain(horizon)
	if err != nil {
		t.Fatalf("Drain(restored): %v", err)
	}
	if !reflect.DeepEqual(gotDrain.Objects, refDrain.Objects) {
		t.Fatalf("drained objects diverged:\n got %+v\nwant %+v", gotDrain.Objects, refDrain.Objects)
	}
	if gotDrain.Stats.WALFailures != 0 {
		t.Fatalf("restored server reports %d WAL failures, want 0", gotDrain.Stats.WALFailures)
	}
	restored.Close()
}

// TestRestoreSurfacesCorruption: a flipped byte anywhere in a snapshot
// must fail New with an error wrapping store.ErrCorruptSnapshot — never a
// panic, never a silently wrong restore.
func TestRestoreSurfacesCorruption(t *testing.T) {
	reqs := crashTrace(t)
	mem := store.NewMem()
	s, err := serve.New(crashConfig("online", 2, mem, false))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	submitAll(t, s, reqs[:len(reqs)/2])
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	for _, offset := range []int{0, 4, 17, 64, 1000} {
		disk := mem.Clone()
		disk.Corrupt(0, offset)
		bad, err := serve.New(crashConfig("online", 2, disk, true))
		if err == nil {
			bad.Close()
			t.Fatalf("offset %d: corrupted snapshot restored without error", offset)
		}
		if !errors.Is(err, store.ErrCorruptSnapshot) {
			t.Fatalf("offset %d: error %v does not wrap ErrCorruptSnapshot", offset, err)
		}
	}
}
