package core

import (
	"math"
	"testing"

	"repro/internal/mergetree"
)

// paperMergeCostsAll is the M_w(n) sequence from Section 3.4 for n = 1..16.
var paperMergeCostsAll = []int64{0, 1, 3, 5, 8, 11, 14, 17, 21, 25, 29, 33, 37, 41, 45, 49}

func TestMergeCostAllPaperTable(t *testing.T) {
	for i, want := range paperMergeCostsAll {
		n := int64(i + 1)
		if got := MergeCostAll(n); got != want {
			t.Errorf("M_w(%d) = %d, want %d (paper table, Section 3.4)", n, got, want)
		}
	}
}

func TestMergeCostAllSmallAndPanics(t *testing.T) {
	if MergeCostAll(0) != 0 || MergeCostAll(1) != 0 {
		t.Errorf("M_w(0), M_w(1) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MergeCostAll(-1) did not panic")
		}
	}()
	MergeCostAll(-1)
}

func TestMergeCostAllMatchesDP(t *testing.T) {
	const N = 600
	dp := MergeCostAllDP(N)
	for n := 0; n <= N; n++ {
		if got := MergeCostAll(int64(n)); got != dp[n] {
			t.Fatalf("closed form M_w(%d) = %d, DP gives %d", n, got, dp[n])
		}
	}
}

func TestMergeCostAllMatchesBruteForce(t *testing.T) {
	for n := 1; n <= 10; n++ {
		if got, want := MergeCostAll(int64(n)), mergetree.MinMergeCostAllBruteForce(n); got != want {
			t.Errorf("M_w(%d) = %d, brute force %d", n, got, want)
		}
	}
}

func TestMergeCostAllPowerOfTwoRedundancy(t *testing.T) {
	// Eq. 20 is redundant at n = 2^k just like Eq. 6 at Fibonacci numbers.
	for k := 1; k <= 40; k++ {
		n := int64(1) << uint(k)
		a := int64(k+1)*n - (int64(1) << uint(k+1)) + 1
		b := int64(k)*n - (int64(1) << uint(k)) + 1
		if a != b {
			t.Errorf("redundancy fails at n=2^%d", k)
		}
		if MergeCostAll(n) != a {
			t.Errorf("M_w(2^%d) = %d, want %d", k, MergeCostAll(n), a)
		}
	}
}

func TestOptimalTreeAllCostMatchesClosedForm(t *testing.T) {
	for n := int64(1); n <= 2000; n++ {
		tr := OptimalTreeAll(n)
		if got := tr.MergeCostAll(); got != MergeCostAll(n) {
			t.Fatalf("OptimalTreeAll(%d) cost %d, want %d", n, got, MergeCostAll(n))
		}
		if tr.Size() != int(n) {
			t.Fatalf("OptimalTreeAll(%d) has %d nodes", n, tr.Size())
		}
	}
}

func TestOptimalTreeAllIsValid(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 10, 64, 100, 1000} {
		tr := OptimalTreeAll(n)
		if err := tr.ValidateConsecutive(); err != nil {
			t.Errorf("OptimalTreeAll(%d): %v", n, err)
		}
	}
}

func TestOptimalTreeAllPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("OptimalTreeAll(0) did not panic")
		}
	}()
	OptimalTreeAll(0)
}

func TestOptimalTreeAllBalancedSplit(t *testing.T) {
	// The last child of the root should carry floor(n/2) arrivals (the
	// balanced split h = ceil(n/2) keeps the root side one larger when n is
	// odd).
	for _, n := range []int64{2, 3, 4, 7, 8, 15, 16, 33} {
		tr := OptimalTreeAll(n)
		last := tr.Children[len(tr.Children)-1]
		if int64(last.Size()) != n/2 {
			t.Errorf("n=%d: right subtree has %d nodes, want %d", n, last.Size(), n/2)
		}
	}
}

func TestFullCostAllPaperStyleExamples(t *testing.T) {
	// Receive-all costs are never larger than receive-two costs and never
	// smaller than batching-free lower bounds.
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {100, 1000}} {
		fa := FullCostAll(c.L, c.n)
		ft := FullCost(c.L, c.n)
		if fa > ft {
			t.Errorf("L=%d n=%d: receive-all cost %d exceeds receive-two cost %d", c.L, c.n, fa, ft)
		}
		if fa < c.L {
			t.Errorf("L=%d n=%d: receive-all cost %d below one full stream", c.L, c.n, fa)
		}
	}
}

func TestFullCostAllWithStreamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	FullCostAllWithStreams(15, 8, 0)
}

func TestOptimalForestAllProperties(t *testing.T) {
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 14}, {4, 16}, {64, 500}} {
		f := OptimalForestAll(c.L, c.n)
		if err := f.ValidateConsecutive(); err != nil {
			t.Fatalf("OptimalForestAll(%d,%d): %v", c.L, c.n, err)
		}
		if got := f.FullCostAll(); got != FullCostAll(c.L, c.n) {
			t.Errorf("OptimalForestAll(%d,%d) cost %d, want %d", c.L, c.n, got, FullCostAll(c.L, c.n))
		}
		if f.Size() != int(c.n) {
			t.Errorf("OptimalForestAll(%d,%d) covers %d arrivals", c.L, c.n, f.Size())
		}
	}
}

func TestReceiveTwoAllRatioApproachesLogPhi2(t *testing.T) {
	// Theorem 19: M(n)/M_w(n) -> log_phi(2) ~ 1.4404.
	if math.Abs(LogPhi2-1.4404) > 0.001 {
		t.Fatalf("LogPhi2 = %v", LogPhi2)
	}
	for _, n := range []int64{1 << 10, 1 << 16, 1 << 20, 1 << 24} {
		r := ReceiveTwoAllRatio(n)
		if math.Abs(r-LogPhi2) > 0.06 {
			t.Errorf("ratio at n=%d is %.4f, want close to %.4f", n, r, LogPhi2)
		}
	}
	// The convergence should improve with n.
	if d1, d2 := math.Abs(ReceiveTwoAllRatio(1<<12)-LogPhi2), math.Abs(ReceiveTwoAllRatio(1<<22)-LogPhi2); d2 > d1 {
		t.Errorf("ratio does not converge: |err(2^12)|=%.5f |err(2^22)|=%.5f", d1, d2)
	}
}

func TestReceiveTwoAllRatioSmallN(t *testing.T) {
	if got := ReceiveTwoAllRatio(1); got != 1 {
		t.Errorf("ratio at n=1 should be 1, got %v", got)
	}
	// n=4: M=6, M_w=5.
	if got := ReceiveTwoAllRatio(4); math.Abs(got-1.2) > 1e-12 {
		t.Errorf("ratio at n=4 = %v, want 1.2", got)
	}
}

func TestFullCostTwoAllRatioApproachesLogPhi2(t *testing.T) {
	// Theorem 20: lim_L lim_n F/F_w = log_phi 2.  For large L and n >> L the
	// ratio should be within a reasonable band of the limit.
	r := FullCostTwoAllRatio(2000, 400000)
	if r < 1.25 || r > LogPhi2+0.05 {
		t.Errorf("full-cost ratio %.4f not in the expected band (1.25, %.3f]", r, LogPhi2+0.05)
	}
	// Ratio should always be >= 1 (receive-all is at least as good).
	for _, c := range []struct{ L, n int64 }{{5, 10}, {15, 14}, {100, 3000}} {
		if FullCostTwoAllRatio(c.L, c.n) < 1 {
			t.Errorf("L=%d n=%d: ratio below 1", c.L, c.n)
		}
	}
}

func TestMergeCostAllLeadingTerm(t *testing.T) {
	// Eq. 21: M_w(n) = n log2 n + O(n).
	for _, n := range []int64{1 << 10, 1 << 15, 1 << 20} {
		diff := float64(MergeCostAll(n)) - MergeCostAllLeadingTerm(n)
		if math.Abs(diff) > 2*float64(n) {
			t.Errorf("M_w(%d) deviates from n log2 n by %v (more than 2n)", n, diff)
		}
	}
	if MergeCostAllLeadingTerm(1) != 0 {
		t.Errorf("leading term at n=1 should be 0")
	}
}

func BenchmarkMergeCostAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MergeCostAll(int64(i%1000000 + 1))
	}
}

func BenchmarkOptimalTreeAll(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimalTreeAll(10000)
	}
}
