package core
