package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fib"
)

func TestMinStreams(t *testing.T) {
	cases := []struct {
		L, n, want int64
	}{
		{1, 5, 5}, {15, 8, 1}, {15, 15, 1}, {15, 16, 2}, {15, 30, 2}, {15, 31, 3}, {4, 16, 4},
	}
	for _, c := range cases {
		if got := MinStreams(c.L, c.n); got != c.want {
			t.Errorf("MinStreams(%d,%d) = %d, want %d", c.L, c.n, got, c.want)
		}
	}
}

func TestMinStreamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MinStreams(0,1) did not panic")
		}
	}()
	MinStreams(0, 1)
}

func TestFullCostPaperExamples(t *testing.T) {
	// Section 2: L=15, n=8 -> full cost 36 with one full stream.
	if got := FullCost(15, 8); got != 36 {
		t.Errorf("F(15,8) = %d, want 36", got)
	}
	if got := OptimalStreamCount(15, 8); got != 1 {
		t.Errorf("optimal streams for L=15,n=8 = %d, want 1", got)
	}
	// Section 2: L=15, n=14 -> two full streams, cost 2*15+17+17 = 64.
	if got := FullCost(15, 14); got != 64 {
		t.Errorf("F(15,14) = %d, want 64", got)
	}
	if got := OptimalStreamCount(15, 14); got != 2 {
		t.Errorf("optimal streams for L=15,n=14 = %d, want 2", got)
	}
	// Section 3.2 (after Theorem 12): L=4, n=16: F(L,n,s0=4) = 40,
	// F(L,n,s1=5) = 38, F(L,n,s1+1=6) = 38.
	if got := FullCostWithStreams(4, 16, 4); got != 40 {
		t.Errorf("F(4,16,4) = %d, want 40", got)
	}
	if got := FullCostWithStreams(4, 16, 5); got != 38 {
		t.Errorf("F(4,16,5) = %d, want 38", got)
	}
	if got := FullCostWithStreams(4, 16, 6); got != 38 {
		t.Errorf("F(4,16,6) = %d, want 38", got)
	}
	if got := FullCost(4, 16); got != 38 {
		t.Errorf("F(4,16) = %d, want 38", got)
	}
}

func TestFullCostWithStreamsLemma9(t *testing.T) {
	// F(L,n,s) must equal the actual full cost of the balanced forest built
	// from optimal trees.
	for _, L := range []int64{1, 4, 8, 15, 40} {
		for n := int64(1); n <= 60; n++ {
			s0 := MinStreams(L, n)
			for s := s0; s <= n; s++ {
				f := ForestWithStreams(L, n, s)
				if err := f.ValidateConsecutive(); err != nil {
					t.Fatalf("L=%d n=%d s=%d: %v", L, n, s, err)
				}
				if got, want := f.FullCost(), FullCostWithStreams(L, n, s); got != want {
					t.Fatalf("L=%d n=%d s=%d: forest cost %d, formula %d", L, n, s, got, want)
				}
				if int64(f.Streams()) != s {
					t.Fatalf("L=%d n=%d s=%d: forest has %d streams", L, n, s, f.Streams())
				}
			}
		}
	}
}

func TestFullCostWithStreamsPanics(t *testing.T) {
	for _, s := range []int64{0, 9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FullCostWithStreams(15,8,%d) did not panic", s)
				}
			}()
			FullCostWithStreams(15, 8, s)
		}()
	}
}

func TestOptimalStreamCountMatchesBruteForce(t *testing.T) {
	// Theorem 12 (two candidates) must yield the same minimum cost as a
	// direct scan over all feasible s.
	for _, L := range []int64{1, 2, 3, 4, 5, 7, 8, 12, 15, 20, 33, 50} {
		for n := int64(1); n <= 200; n++ {
			sTheorem := OptimalStreamCount(L, n)
			sBrute := OptimalStreamCountBrute(L, n)
			cTheorem := FullCostWithStreams(L, n, sTheorem)
			cBrute := FullCostWithStreams(L, n, sBrute)
			if cTheorem != cBrute {
				t.Fatalf("L=%d n=%d: Theorem 12 gives s=%d cost %d, brute force s=%d cost %d",
					L, n, sTheorem, cTheorem, sBrute, cBrute)
			}
		}
	}
}

func TestOptimalStreamCountIsFeasible(t *testing.T) {
	prop := func(a, b uint16) bool {
		L := int64(a%300) + 1
		n := int64(b%3000) + 1
		s := OptimalStreamCount(L, n)
		return s >= MinStreams(L, n) && s <= n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestTheorem12CandidateStructure(t *testing.T) {
	// Theorem 12: with h such that F_{h+1} < L+2 <= F_{h+2} and
	// s1 = floor(n/F_h), either s1 or s1+1 attains the optimal full cost
	// (when s1 >= s0; otherwise s0 = s1+1 does).
	for _, L := range []int64{2, 4, 7, 15, 30, 100} {
		h := fib.IndexForLength(L)
		for n := int64(1); n <= 500; n++ {
			s0 := MinStreams(L, n)
			s1 := n / fib.F(h)
			best := FullCostWithStreams(L, n, OptimalStreamCountBrute(L, n))
			var c1, c2 int64 = -1, -1
			if s1 >= s0 && s1 >= 1 && s1 <= n {
				c1 = FullCostWithStreams(L, n, s1)
			}
			if s1+1 >= s0 && s1+1 <= n {
				c2 = FullCostWithStreams(L, n, s1+1)
			}
			if s0 > s1 {
				c2 = FullCostWithStreams(L, n, s0)
			}
			if c1 != best && c2 != best {
				t.Fatalf("L=%d n=%d: neither s1=%d (%d) nor s1+1 (%d) achieves optimum %d",
					L, n, s1, c1, c2, best)
			}
		}
	}
}

func TestOptimalForestProperties(t *testing.T) {
	for _, c := range []struct{ L, n int64 }{
		{15, 8}, {15, 14}, {4, 16}, {1, 10}, {100, 1000}, {8, 8}, {8, 9}, {60, 59},
	} {
		f := OptimalForest(c.L, c.n)
		if err := f.ValidateConsecutive(); err != nil {
			t.Errorf("OptimalForest(%d,%d): %v", c.L, c.n, err)
		}
		if got := f.FullCost(); got != FullCost(c.L, c.n) {
			t.Errorf("OptimalForest(%d,%d) cost %d, want %d", c.L, c.n, got, FullCost(c.L, c.n))
		}
		if f.Size() != int(c.n) {
			t.Errorf("OptimalForest(%d,%d) covers %d arrivals", c.L, c.n, f.Size())
		}
	}
}

func TestOptimalForestNeverWorseThanSingleTreeOrBatching(t *testing.T) {
	for _, L := range []int64{2, 5, 15, 40} {
		for n := int64(1); n <= 120; n++ {
			opt := FullCost(L, n)
			if opt > BatchingCost(L, n) {
				t.Fatalf("L=%d n=%d: optimal %d worse than batching %d", L, n, opt, BatchingCost(L, n))
			}
			if n <= L {
				single := L + MergeCost(n)
				if opt > single {
					t.Fatalf("L=%d n=%d: optimal %d worse than single tree %d", L, n, opt, single)
				}
			}
		}
	}
}

func TestFullCostMonotoneInN(t *testing.T) {
	// Adding one more arrival can only increase the optimal full cost.
	for _, L := range []int64{3, 15, 64} {
		prev := int64(0)
		for n := int64(1); n <= 400; n++ {
			c := FullCost(L, n)
			if c < prev {
				t.Fatalf("F(%d,%d) = %d < F(%d,%d) = %d", L, n, c, L, n-1, prev)
			}
			prev = c
		}
	}
}

func TestFullCostLeadingTermBound(t *testing.T) {
	// Theorem 13: F(L,n) = n log_phi L + Theta(n).  Check that the measured
	// cost divided by n stays within an additive constant band around
	// log_phi L for a large horizon.
	for _, L := range []int64{10, 50, 200, 1000} {
		n := 100 * L
		perArrival := float64(FullCost(L, n)) / float64(n)
		lead := fib.LogPhi(float64(L))
		if perArrival > lead+3 || perArrival < lead-4 {
			t.Errorf("L=%d: per-arrival cost %.3f too far from log_phi L = %.3f", L, perArrival, lead)
		}
	}
}

func TestTreeSizes(t *testing.T) {
	sizes := TreeSizes(16, 5)
	// 16 = 3*5 + 1: one tree of 4 arrivals and four trees of 3.
	want := []int64{4, 3, 3, 3, 3}
	if len(sizes) != len(want) {
		t.Fatalf("TreeSizes = %v", sizes)
	}
	var sum int64
	for i, s := range sizes {
		if s != want[i] {
			t.Errorf("TreeSizes[%d] = %d, want %d", i, s, want[i])
		}
		sum += s
	}
	if sum != 16 {
		t.Errorf("TreeSizes sum = %d, want 16", sum)
	}
}

func TestTreeSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("TreeSizes(5,6) did not panic")
		}
	}()
	TreeSizes(5, 6)
}

func TestBatchingAdvantageGrows(t *testing.T) {
	// Theorem 14: batching with merging is Theta(L/log L) better than
	// batching alone, so the advantage must grow with L.
	prev := 0.0
	for _, L := range []int64{4, 16, 64, 256, 1024} {
		n := 20 * L
		adv := BatchingAdvantage(L, n)
		if adv <= prev {
			t.Errorf("batching advantage did not grow: L=%d adv=%.2f prev=%.2f", L, adv, prev)
		}
		prev = adv
	}
	// And it must exceed a constant fraction of L/log_phi(L) for large L.
	L := int64(1024)
	n := 20 * L
	adv := BatchingAdvantage(L, n)
	if adv < float64(L)/fib.LogPhi(float64(L))/3 {
		t.Errorf("advantage %.2f too small vs L/log L", adv)
	}
}

func BenchmarkFullCost(b *testing.B) {
	for _, c := range []struct{ L, n int64 }{{100, 10000}, {1000, 100000}} {
		b.Run(benchName("L", c.L)+"_"+benchName("n", c.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FullCost(c.L, c.n)
			}
		})
	}
}

func BenchmarkOptimalStreamCountTheoremVsBrute(b *testing.B) {
	// Ablation for Theorem 12: two candidates vs. full scan.
	b.Run("theorem12", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptimalStreamCount(100, 50000)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptimalStreamCountBrute(100, 50000)
		}
	})
}

func BenchmarkOptimalForest(b *testing.B) {
	for _, c := range []struct{ L, n int64 }{{15, 1000}, {100, 10000}, {100, 100000}} {
		b.Run(benchName("L", c.L)+"_"+benchName("n", c.n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				OptimalForest(c.L, c.n)
			}
		})
	}
}
