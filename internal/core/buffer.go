package core

import (
	"fmt"

	"repro/internal/mergetree"
)

// BufferRequired returns b(x), the client buffer needed by the arrival x in
// a tree rooted at r with full stream length L (Lemma 15).  It is re-exported
// from the mergetree package for convenience.
func BufferRequired(x, root, L int64) int64 {
	return mergetree.BufferRequirement(x, root, L)
}

// MaxUsefulBuffer returns floor(L/2): clients never need a buffer larger
// than half the stream length (Section 3.3), so any B >= L/2 behaves like an
// unbounded buffer.
func MaxUsefulBuffer(L int64) int64 {
	return L / 2
}

// MinStreamsBuffered returns the minimum number of full streams when every
// client buffer is bounded by B slots.  By Lemma 15 an arrival x can belong
// to a tree rooted at r only if x - r <= B, so every tree spans at most B
// slots, i.e. holds at most B+1 arrivals, giving ceil(n/(B+1)) as the tight
// lower bound.  (The paper states the slightly more conservative ceil(n/B),
// which corresponds to requiring a new root at least every B slots; the two
// differ by at most one tree and the cost search below subsumes both.)
// It panics unless 1 <= B and n >= 1.
func MinStreamsBuffered(B, n int64) int64 {
	if B < 1 || n < 1 {
		panic(fmt.Sprintf("core: MinStreamsBuffered requires B >= 1 and n >= 1, got B=%d n=%d", B, n))
	}
	return (n + B) / (B + 1)
}

// FullCostBufferedWithStreams returns the cost of the balanced forest with s
// full streams when the client buffer is bounded by B (and B <= L/2, so the
// binding constraint is the tree span).  It returns an error if some tree in
// the balanced partition would span more than B slots.
func FullCostBufferedWithStreams(L, B, n, s int64) (int64, error) {
	if B >= MaxUsefulBuffer(L) {
		// Clients never need more than floor(L/2) slots of buffer
		// (Lemma 15), so the bound is not binding.
		return FullCostWithStreams(L, n, s), nil
	}
	p := n / s
	r := n - p*s
	maxSize := p
	if r > 0 {
		maxSize = p + 1
	}
	if maxSize-1 > B {
		return 0, fmt.Errorf("core: %d streams yield trees spanning %d slots, exceeding buffer %d", s, maxSize-1, B)
	}
	return FullCostWithStreams(L, n, s), nil
}

// OptimalStreamCountBuffered returns the number of full streams minimizing
// the full cost subject to the buffer bound B (Section 3.3).  The search
// scans the feasible range [max(ceil(n/L), ceil(n/(B+1))), n]; since the
// per-candidate evaluation is O(1) via the closed-form merge cost, this is
// the linear-time algorithm of Theorem 16.
func OptimalStreamCountBuffered(L, B, n int64) int64 {
	if B >= MaxUsefulBuffer(L) {
		// Buffer is effectively unbounded: fall back to Theorem 12.
		return OptimalStreamCount(L, n)
	}
	s0 := MinStreams(L, n)
	if sb := MinStreamsBuffered(B, n); sb > s0 {
		s0 = sb
	}
	best := int64(-1)
	var bestCost int64
	for s := s0; s <= n; s++ {
		c, err := FullCostBufferedWithStreams(L, B, n, s)
		if err != nil {
			continue
		}
		if best < 0 || c < bestCost {
			best, bestCost = s, c
		}
	}
	if best < 0 {
		// n streams (one per arrival) is always feasible for any B >= 1.
		best = n
	}
	return best
}

// FullCostBuffered returns the optimal full cost subject to the client
// buffer bound B (Theorem 16).  For B >= L/2 it equals FullCost(L, n).
func FullCostBuffered(L, B, n int64) int64 {
	s := OptimalStreamCountBuffered(L, B, n)
	return FullCostWithStreams(L, n, s)
}

// OptimalForestBuffered constructs an optimal merge forest subject to the
// client buffer bound B in O(B + n) time (Theorem 16).  Every arrival in the
// returned forest needs a buffer of at most min(B, L/2) slots.
func OptimalForestBuffered(L, B, n int64) *mergetree.Forest {
	s := OptimalStreamCountBuffered(L, B, n)
	return ForestWithStreams(L, n, s)
}
