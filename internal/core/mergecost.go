package core

import (
	"fmt"

	"repro/internal/fib"
)

// MergeCost returns M(n), the optimal merge cost for the n consecutive
// arrivals 0, ..., n-1 in the receive-two model, using the closed form of
// Eq. (6): M(n) = (k-1)n - F_{k+2} + 2 where F_k <= n <= F_{k+1}.
// M(0) and M(1) are 0.  It panics if n is negative.
func MergeCost(n int64) int64 {
	switch {
	case n < 0:
		panic(fmt.Sprintf("core: MergeCost requires n >= 0, got %d", n))
	case n <= 1:
		return 0
	}
	k := fib.IndexFloor(n)
	return int64(k-1)*n - fib.F(k+2) + 2
}

// MergeCostTable returns the slice M(0), M(1), ..., M(n) computed with the
// closed form.  It is convenient for algorithms (Lemma 9) that repeatedly
// need merge costs of small tree sizes.
func MergeCostTable(n int64) []int64 {
	out := make([]int64, n+1)
	for i := int64(0); i <= n; i++ {
		out[i] = MergeCost(i)
	}
	return out
}

// H returns the quantity H(n,h) = M(h) + M(n-h) + 2n - h - 2 of Eq. (7):
// the merge cost of the best tree over [0, n-1] whose last merge to the root
// is the arrival h.  It requires 1 <= h <= n-1.
func H(n, h int64) int64 {
	if h < 1 || h > n-1 {
		panic(fmt.Sprintf("core: H(n=%d, h=%d) requires 1 <= h <= n-1", n, h))
	}
	return MergeCost(h) + MergeCost(n-h) + 2*n - h - 2
}

// MergeCostDP returns the table M(0), ..., M(n) computed with the O(n^2)
// dynamic program of Eq. (5): M(n) = min_{1<=h<=n-1} {M(h)+M(n-h)+2n-h-2}.
// This is the algorithm implied by the general off-line solution of [6] and
// serves as the baseline that the closed form (Theorem 3) improves upon.
func MergeCostDP(n int) []int64 {
	m := make([]int64, n+1)
	for i := 2; i <= n; i++ {
		best := int64(-1)
		for h := 1; h <= i-1; h++ {
			c := m[h] + m[i-h] + int64(2*i-h-2)
			if best < 0 || c < best {
				best = c
			}
		}
		m[i] = best
	}
	return m
}

// LastMergeInterval returns the interval I(n) = [lo, hi] of arrivals that
// can be the last merge to the root in an optimal merge tree for the
// arrivals [0, n-1], using the characterization of Theorem 3.  For n < 2 the
// interval is empty and (0, -1) is returned.
func LastMergeInterval(n int64) (lo, hi int64) {
	if n < 2 {
		return 0, -1
	}
	k := fib.IndexFloor(n)
	m := n - fib.F(k)
	// For k = 3 (n = 2) the index k-3 = 0 with F(0) = 0, which makes the
	// interval arithmetic below degenerate correctly to I(2) = [1, 1].
	fk1 := fib.F(k - 1)
	fk2 := fib.F(k - 2)
	var fk3 int64
	if k >= 3 {
		fk3 = fib.F(k - 3)
	}
	switch {
	case m <= fk3: // m in m1(k): I1(n) = [F_{k-1}, F_{k-1}+m]
		return fk1, fk1 + m
	case m <= fk2: // m in m2(k): I2(n) = [F_{k-2}+m, F_{k-1}+m]
		return fk2 + m, fk1 + m
	default: // m in m3(k): I3(n) = [F_{k-2}+m, F_k]
		return fk2 + m, fib.F(k)
	}
}

// LastMergeSet returns the exact set I(n) = {h : H(n,h) = M(n)} by direct
// evaluation of H with the closed-form merge cost.  It runs in O(n) and is
// used to cross-validate LastMergeInterval; prefer LastMergeInterval in
// algorithms.
func LastMergeSet(n int64) []int64 {
	if n < 2 {
		return nil
	}
	m := MergeCost(n)
	var out []int64
	for h := int64(1); h <= n-1; h++ {
		if H(n, h) == m {
			out = append(out, h)
		}
	}
	return out
}

// LastMergeRoots returns the sequence r(1), ..., r(n) where
// r(i) = max I(i) is the largest arrival that can be the last merge to the
// root of an optimal tree over i consecutive arrivals.  It is computed in
// O(n) with the recurrence from the proof of Theorem 7:
//
//	r(1) = 0, r(2) = 1,
//	r(i) = r(i-1) + 1  if F_k <  i <= F_k + F_{k-2},
//	r(i) = r(i-1)      if F_k + F_{k-2} < i <= F_{k+1},
//
// where F_k < i <= F_{k+1}.  The result slice is indexed from 1 (index 0 is
// unused and holds 0).
func LastMergeRoots(n int64) []int64 {
	if n < 1 {
		return nil
	}
	r := make([]int64, n+1)
	if n >= 1 {
		r[1] = 0
	}
	if n >= 2 {
		r[2] = 1
	}
	// Track the bracket F_k < i <= F_{k+1} incrementally.
	k := 2 // for i = 3: F_3 = 2 < 3 <= F_4 = 3, so k = 3; start below and advance.
	for i := int64(3); i <= n; i++ {
		for fib.F(k+1) < i {
			k++
		}
		// Now F_k < i <= F_{k+1} (since F_k < i by the previous bracket and
		// the loop above stops as soon as F_{k+1} >= i).
		if i <= fib.F(k)+fib.F(k-2) {
			r[i] = r[i-1] + 1
		} else {
			r[i] = r[i-1]
		}
	}
	return r
}

// MergeCostIsOptimalSplit reports whether splitting the n arrivals with last
// merge h achieves the optimal merge cost, i.e. whether h is in I(n).
func MergeCostIsOptimalSplit(n, h int64) bool {
	if n < 2 || h < 1 || h > n-1 {
		return false
	}
	return H(n, h) == MergeCost(n)
}
