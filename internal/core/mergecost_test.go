package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fib"
	"repro/internal/mergetree"
)

// paperMergeCosts is the M(n) sequence from Section 3.1 of the paper for
// n = 1..16.
var paperMergeCosts = []int64{0, 1, 3, 6, 9, 13, 17, 21, 26, 31, 36, 41, 46, 52, 58, 64}

func TestMergeCostPaperTable(t *testing.T) {
	for i, want := range paperMergeCosts {
		n := int64(i + 1)
		if got := MergeCost(n); got != want {
			t.Errorf("M(%d) = %d, want %d (paper table, Section 3.1)", n, got, want)
		}
	}
}

func TestMergeCostSmall(t *testing.T) {
	if MergeCost(0) != 0 || MergeCost(1) != 0 {
		t.Errorf("M(0) and M(1) must be 0")
	}
}

func TestMergeCostPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MergeCost(-1) did not panic")
		}
	}()
	MergeCost(-1)
}

func TestMergeCostMatchesDP(t *testing.T) {
	// The closed form (Eq. 6 / Theorem 3) must agree with the O(n^2) dynamic
	// program (Eq. 5) for all n up to a sizable bound.
	const N = 600
	dp := MergeCostDP(N)
	for n := 0; n <= N; n++ {
		if got := MergeCost(int64(n)); got != dp[n] {
			t.Fatalf("closed form M(%d) = %d, DP gives %d", n, got, dp[n])
		}
	}
}

func TestMergeCostMatchesBruteForce(t *testing.T) {
	// Exhaustive optimality over all merge trees for small n.
	for n := 1; n <= 10; n++ {
		if got, want := MergeCost(int64(n)), mergetree.MinMergeCostBruteForce(n); got != want {
			t.Errorf("M(%d) = %d, brute force over all trees gives %d", n, got, want)
		}
	}
}

func TestMergeCostTable(t *testing.T) {
	tab := MergeCostTable(16)
	if len(tab) != 17 {
		t.Fatalf("table length %d, want 17", len(tab))
	}
	for i, want := range paperMergeCosts {
		if tab[i+1] != want {
			t.Errorf("table[%d] = %d, want %d", i+1, tab[i+1], want)
		}
	}
}

func TestMergeCostFibonacciRedundancy(t *testing.T) {
	// When n = F_k, both (k-1)n - F_{k+2} + 2 and (k-2)n - F_{k+1} + 2 give
	// M(n) (the redundancy noted after Eq. 6).
	for k := 3; k <= 30; k++ {
		n := fib.F(k)
		a := int64(k-1)*n - fib.F(k+2) + 2
		b := int64(k-2)*n - fib.F(k+1) + 2
		if a != b {
			t.Errorf("redundancy fails at n=F_%d=%d: %d vs %d", k, n, a, b)
		}
		if MergeCost(n) != a {
			t.Errorf("M(F_%d) = %d, want %d", k, MergeCost(n), a)
		}
	}
}

func TestMergeCostMonotoneIncrements(t *testing.T) {
	// Observation 5: for F_j <= x < F_{j+1}, M(x+1) - M(x) = j - 1.
	// In particular increments are non-decreasing in x (convexity-like
	// property (12) used in Lemma 9).
	prev := int64(-1)
	for x := int64(1); x <= 100000; x++ {
		inc := MergeCost(x+1) - MergeCost(x)
		j := fib.IndexFloor(x)
		if inc != int64(j-1) {
			t.Fatalf("M(%d+1)-M(%d) = %d, want j-1 = %d", x, x, inc, j-1)
		}
		if inc < prev {
			t.Fatalf("merge cost increments decreased at x=%d: %d after %d", x, inc, prev)
		}
		prev = inc
	}
}

func TestMergeCostExchangeInequality(t *testing.T) {
	// Inequality (12): for 1 <= i < j, M(i+1) + M(j-1) <= M(i) + M(j).
	for i := int64(1); i <= 200; i++ {
		for j := i + 1; j <= 200; j++ {
			if MergeCost(i+1)+MergeCost(j-1) > MergeCost(i)+MergeCost(j) {
				t.Fatalf("exchange inequality fails for i=%d j=%d", i, j)
			}
		}
	}
}

func TestMergeCostBounds(t *testing.T) {
	// Theorem 8: the closed form lies between the stated lower and upper
	// bounds.
	for _, n := range []int64{2, 3, 5, 10, 50, 100, 1000, 12345, 100000, 1 << 20} {
		m := float64(MergeCost(n))
		if m > MergeCostUpperBound(n)+1e-6 {
			t.Errorf("M(%d) = %v exceeds upper bound %v", n, m, MergeCostUpperBound(n))
		}
		if m < MergeCostLowerBound(n)-1e-6 {
			t.Errorf("M(%d) = %v below lower bound %v", n, m, MergeCostLowerBound(n))
		}
	}
}

func TestHRecoversMergeCost(t *testing.T) {
	// M(n) = min_h H(n,h) by definition; verify the closed form satisfies it.
	for n := int64(2); n <= 400; n++ {
		best := H(n, 1)
		for h := int64(2); h <= n-1; h++ {
			if c := H(n, h); c < best {
				best = c
			}
		}
		if best != MergeCost(n) {
			t.Fatalf("min_h H(%d,h) = %d but M(%d) = %d", n, best, n, MergeCost(n))
		}
	}
}

func TestHPanicsOutOfRange(t *testing.T) {
	for _, h := range []int64{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("H(5,%d) did not panic", h)
				}
			}()
			H(5, h)
		}()
	}
}

func TestLastMergeIntervalMatchesSet(t *testing.T) {
	// Theorem 3's characterization of I(n) must match the brute-force set
	// {h : H(n,h) = M(n)}, and the set must be a contiguous interval.
	for n := int64(2); n <= 2000; n++ {
		lo, hi := LastMergeInterval(n)
		set := LastMergeSet(n)
		if len(set) == 0 {
			t.Fatalf("empty I(%d)", n)
		}
		if set[0] != lo || set[len(set)-1] != hi {
			t.Fatalf("I(%d): characterization [%d,%d], brute force [%d,%d]",
				n, lo, hi, set[0], set[len(set)-1])
		}
		for i := 1; i < len(set); i++ {
			if set[i] != set[i-1]+1 {
				t.Fatalf("I(%d) is not an interval: %v", n, set)
			}
		}
	}
}

func TestLastMergeIntervalKnownValues(t *testing.T) {
	cases := []struct {
		n      int64
		lo, hi int64
	}{
		{2, 1, 1},
		{3, 2, 2},
		{4, 2, 3},  // Fig. 6: two optimal trees for n=4
		{5, 3, 3},  // Fibonacci: unique
		{6, 3, 4},  // Fig. 8 row n=6
		{7, 4, 5},  // m=2 in m2(5): I2 = [F3+2, F4+2] = [4,5]
		{8, 5, 5},  // Fibonacci
		{13, 8, 8}, // Fibonacci
		{21, 13, 13},
		{55, 34, 34},
	}
	for _, c := range cases {
		lo, hi := LastMergeInterval(c.n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("I(%d) = [%d,%d], want [%d,%d]", c.n, lo, hi, c.lo, c.hi)
		}
	}
}

func TestLastMergeIntervalEmptyForSmallN(t *testing.T) {
	lo, hi := LastMergeInterval(1)
	if lo <= hi {
		t.Errorf("I(1) should be empty, got [%d,%d]", lo, hi)
	}
	if LastMergeSet(1) != nil {
		t.Errorf("LastMergeSet(1) should be nil")
	}
}

func TestLastMergeIntervalFibonacciSingleton(t *testing.T) {
	// For n = F_k the only arrival that can merge last to the root is
	// F_{k-1} (discussion after Theorem 3).
	for k := 3; k <= 25; k++ {
		n := fib.F(k)
		lo, hi := LastMergeInterval(n)
		if lo != hi || lo != fib.F(k-1) {
			t.Errorf("I(F_%d = %d) = [%d,%d], want {%d}", k, n, lo, hi, fib.F(k-1))
		}
	}
}

func TestObservation4NestedGrowth(t *testing.T) {
	// Observation 4: if I(x-1) = [i,j] then I(x) is contained in [i, j+1].
	for x := int64(3); x <= 3000; x++ {
		pl, ph := LastMergeInterval(x - 1)
		lo, hi := LastMergeInterval(x)
		if lo < pl || hi > ph+1 {
			t.Fatalf("Observation 4 violated at x=%d: I(x-1)=[%d,%d], I(x)=[%d,%d]", x, pl, ph, lo, hi)
		}
	}
}

func TestLastMergeRootsRecurrence(t *testing.T) {
	// r(i) = max I(i) for all i; the O(n) recurrence must match the
	// characterization.
	const N = 5000
	r := LastMergeRoots(N)
	if r[1] != 0 || r[2] != 1 {
		t.Fatalf("r(1)=%d r(2)=%d, want 0 and 1", r[1], r[2])
	}
	for i := int64(2); i <= N; i++ {
		_, hi := LastMergeInterval(i)
		if r[i] != hi {
			t.Fatalf("r(%d) = %d, want max I(%d) = %d", i, r[i], i, hi)
		}
	}
}

func TestLastMergeRootsSmall(t *testing.T) {
	if LastMergeRoots(0) != nil {
		t.Errorf("LastMergeRoots(0) should be nil")
	}
	r := LastMergeRoots(1)
	if len(r) != 2 || r[1] != 0 {
		t.Errorf("LastMergeRoots(1) = %v", r)
	}
}

func TestMergeCostIsOptimalSplit(t *testing.T) {
	if !MergeCostIsOptimalSplit(8, 5) {
		t.Errorf("h=5 should be the optimal split for n=8")
	}
	if MergeCostIsOptimalSplit(8, 4) {
		t.Errorf("h=4 should not be optimal for n=8")
	}
	if MergeCostIsOptimalSplit(1, 1) || MergeCostIsOptimalSplit(8, 0) || MergeCostIsOptimalSplit(8, 8) {
		t.Errorf("out-of-range splits should report false")
	}
}

func TestMergeCostPropertySubadditiveDecomposition(t *testing.T) {
	// Property (via quick): for any n >= 2 and any h in I(n),
	// M(n) = M(h) + M(n-h) + 2n - h - 2, and for h outside I(n) the
	// expression is strictly larger.
	prop := func(a uint16, b uint16) bool {
		n := int64(a%4000) + 2
		h := int64(b)%(n-1) + 1
		lhs := H(n, h)
		if lhs < MergeCost(n) {
			return false
		}
		lo, hi := LastMergeInterval(n)
		inInterval := h >= lo && h <= hi
		return (lhs == MergeCost(n)) == inInterval
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMergeCostClosedForm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeCost(int64(i%1000000 + 1))
	}
}

func BenchmarkMergeCostClosedVsDP(b *testing.B) {
	// Ablation: the paper's O(n) result vs. the O(n^2) DP of [6].
	b.Run("closed-n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeCostTable(2000)
		}
	})
	b.Run("dp-n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			MergeCostDP(2000)
		}
	})
}
