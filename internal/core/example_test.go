package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The paper's running example: a media object of L = 15 slots served to
// n = 8 consecutive arrival slots.
func ExampleMergeCost() {
	for n := int64(1); n <= 8; n++ {
		fmt.Printf("M(%d)=%d ", n, core.MergeCost(n))
	}
	fmt.Println()
	// Output:
	// M(1)=0 M(2)=1 M(3)=3 M(4)=6 M(5)=9 M(6)=13 M(7)=17 M(8)=21
}

func ExampleOptimalTree() {
	tree := core.OptimalTree(8)
	fmt.Println(tree)
	fmt.Println("merge cost:", tree.MergeCost())
	// Output:
	// 0(1 2 3(4) 5(6 7))
	// merge cost: 21
}

func ExampleOptimalForest() {
	forest := core.OptimalForest(15, 14)
	fmt.Println("full streams:", forest.Streams())
	fmt.Println("full cost:", forest.FullCost())
	// Output:
	// full streams: 2
	// full cost: 64
}

func ExampleOptimalStreamCount() {
	// Section 3.2: for L = 4 and n = 16 the optimum uses 5 full streams.
	fmt.Println(core.OptimalStreamCount(4, 16), core.FullCost(4, 16))
	// Output:
	// 5 38
}

func ExampleLastMergeInterval() {
	lo, hi := core.LastMergeInterval(4)
	fmt.Printf("I(4) = [%d,%d]\n", lo, hi)
	lo, hi = core.LastMergeInterval(13)
	fmt.Printf("I(13) = [%d,%d]\n", lo, hi)
	// Output:
	// I(4) = [2,3]
	// I(13) = [8,8]
}

func ExampleMergeCostAll() {
	// Receive-all model (Section 3.4).
	fmt.Println(core.MergeCostAll(8), core.MergeCostAll(16))
	// Output:
	// 17 49
}

func ExampleOptimalForestBuffered() {
	// Clients can buffer at most 3 slots of playback.
	forest := core.OptimalForestBuffered(15, 3, 12)
	fmt.Println("full streams:", forest.Streams())
	fmt.Println("max buffer needed:", forest.MaxBufferRequirement())
	// Output:
	// full streams: 3
	// max buffer needed: 3
}
