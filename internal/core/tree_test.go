package core

import (
	"testing"

	"repro/internal/fib"
	"repro/internal/mergetree"
)

func TestOptimalTreeCostMatchesClosedForm(t *testing.T) {
	for n := int64(1); n <= 2000; n++ {
		tr := OptimalTree(n)
		if got := tr.MergeCost(); got != MergeCost(n) {
			t.Fatalf("OptimalTree(%d) has merge cost %d, want %d", n, got, MergeCost(n))
		}
		if tr.Size() != int(n) {
			t.Fatalf("OptimalTree(%d) has %d nodes", n, tr.Size())
		}
	}
}

func TestOptimalTreeIsValid(t *testing.T) {
	for _, n := range []int64{1, 2, 3, 7, 8, 13, 100, 377, 1000} {
		tr := OptimalTree(n)
		if err := tr.Validate(); err != nil {
			t.Errorf("OptimalTree(%d): %v", n, err)
		}
		if err := tr.ValidateConsecutive(); err != nil {
			t.Errorf("OptimalTree(%d): %v", n, err)
		}
	}
}

func TestOptimalTreeFig4(t *testing.T) {
	// The paper's running example: n = 8 yields the unique Fibonacci merge
	// tree 0(1 2 3(4) 5(6 7)) with merge cost 21 (Figs. 3, 4, 7).
	tr := OptimalTree(8)
	if got := tr.String(); got != "0(1 2 3(4) 5(6 7))" {
		t.Errorf("OptimalTree(8) = %q, want the Fibonacci tree of Fig. 4", got)
	}
	if tr.MergeCost() != 21 {
		t.Errorf("merge cost = %d, want 21", tr.MergeCost())
	}
}

func TestOptimalTreeFibonacciShapes(t *testing.T) {
	// Fig. 7: the unique optimal trees for n = 3, 5, 8, 13, and the
	// recursive structure "tree for F_k = tree for F_{k-1} with the tree for
	// F_{k-2} attached as the last child of the root".
	want := map[int64]string{
		3:  "0(1 2)",
		5:  "0(1 2 3(4))",
		8:  "0(1 2 3(4) 5(6 7))",
		13: "0(1 2 3(4) 5(6 7) 8(9 10 11(12)))",
	}
	for n, ws := range want {
		if got := OptimalTree(n).String(); got != ws {
			t.Errorf("OptimalTree(%d) = %q, want %q", n, got, ws)
		}
	}
	// Structural recursion check for larger Fibonacci numbers.
	for k := 5; k <= 20; k++ {
		n := fib.F(k)
		tr := OptimalTree(n)
		children := tr.Children
		if len(children) == 0 {
			t.Fatalf("n=%d: root has no children", n)
		}
		lastChild := children[len(children)-1]
		if lastChild.Arrival != fib.F(k-1) {
			t.Errorf("n=F_%d: last child of root is %d, want F_%d = %d",
				k, lastChild.Arrival, k-1, fib.F(k-1))
		}
		if int64(lastChild.Size()) != fib.F(k-2) {
			t.Errorf("n=F_%d: right subtree has %d nodes, want F_%d = %d",
				k, lastChild.Size(), k-2, fib.F(k-2))
		}
	}
}

func TestOptimalTreeMatchesBruteForce(t *testing.T) {
	for n := 1; n <= 10; n++ {
		tr := OptimalTree(int64(n))
		if got, want := tr.MergeCost(), mergetree.MinMergeCostBruteForce(n); got != want {
			t.Errorf("OptimalTree(%d) cost %d, brute force %d", n, got, want)
		}
	}
}

func TestOptimalTreeAtShiftInvariance(t *testing.T) {
	// Shifting all arrivals by a constant shifts nothing in the merge cost
	// (it depends only on differences).
	for _, n := range []int64{1, 5, 8, 30, 137} {
		base := OptimalTree(n)
		shifted := OptimalTreeAt(1000, n)
		if shifted.MergeCost() != base.MergeCost() {
			t.Errorf("n=%d: shifted cost %d != base cost %d", n, shifted.MergeCost(), base.MergeCost())
		}
		if shifted.Arrival != 1000 || shifted.Last() != 1000+n-1 {
			t.Errorf("n=%d: shifted tree covers [%d,%d]", n, shifted.Arrival, shifted.Last())
		}
		if err := shifted.ValidateConsecutive(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestOptimalTreePanicsOnBadInput(t *testing.T) {
	for _, n := range []int64{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OptimalTree(%d) did not panic", n)
				}
			}()
			OptimalTree(n)
		}()
	}
}

func TestOptimalTreeDPMatchesClosedForm(t *testing.T) {
	for n := 1; n <= 300; n++ {
		dp := OptimalTreeDP(n)
		if err := dp.ValidateConsecutive(); err != nil {
			t.Fatalf("OptimalTreeDP(%d): %v", n, err)
		}
		if got, want := dp.MergeCost(), MergeCost(int64(n)); got != want {
			t.Fatalf("OptimalTreeDP(%d) cost %d, want %d", n, got, want)
		}
	}
}

func TestOptimalTreeDPPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("OptimalTreeDP(0) did not panic")
		}
	}()
	OptimalTreeDP(0)
}

func TestFibonacciTree(t *testing.T) {
	tr := FibonacciTree(13)
	if tr.Size() != 13 || tr.MergeCost() != 46 {
		t.Errorf("FibonacciTree(13): size=%d cost=%d, want 13 and 46", tr.Size(), tr.MergeCost())
	}
	for _, n := range []int64{1, 2, 3, 5, 8, 21, 34} {
		if FibonacciTree(n).Size() != int(n) {
			t.Errorf("FibonacciTree(%d) wrong size", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("FibonacciTree(6) did not panic")
		}
	}()
	FibonacciTree(6)
}

func TestFibonacciTreePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("FibonacciTree(0) did not panic")
		}
	}()
	FibonacciTree(0)
}

func TestOptimalTreeRootDegreeGrowsLogarithmically(t *testing.T) {
	// The Fibonacci merge tree for n = F_k has root degree k-2: each
	// recursive step adds exactly one child to the root.
	for k := 4; k <= 25; k++ {
		tr := OptimalTree(fib.F(k))
		if got := len(tr.Children); got != k-2 {
			t.Errorf("root degree for n=F_%d is %d, want %d", k, got, k-2)
		}
	}
}

func BenchmarkOptimalTree(b *testing.B) {
	for _, n := range []int64{100, 1000, 10000, 100000} {
		b.Run(benchName("n", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				OptimalTree(n)
			}
		})
	}
}

func BenchmarkOptimalTreeDPvsLinear(b *testing.B) {
	// Ablation for Theorem 7: O(n) construction vs. the O(n^2) DP.
	b.Run("linear-n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptimalTree(2000)
		}
	})
	b.Run("dp-n=2000", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			OptimalTreeDP(2000)
		}
	})
}

func benchName(prefix string, v int64) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
