// Package core implements the paper's primary contribution: optimal
// off-line algorithms for delay-guaranteed Media-on-Demand with stream
// merging (Bar-Noy, Goshi, Ladner; SPAA 2003 / JDA 2006).
//
// The delay-guaranteed setting schedules one (possibly truncated) stream at
// the end of every slot, where a slot is the guaranteed start-up delay, so
// the input reduces to the consecutive arrivals 0, 1, ..., n-1 and a full
// stream length L (the media length measured in slots).
//
// The package provides, for the receive-two model (clients can receive two
// streams at once, Section 3.1-3.3):
//
//   - MergeCost: the closed-form optimal merge cost
//     M(n) = (k-1)n - F_{k+2} + 2 for F_k <= n <= F_{k+1} (Eq. 6),
//   - MergeCostDP: the O(n^2) dynamic program of Eq. 5 (the baseline this
//     paper improves upon),
//   - LastMergeInterval / LastMergeRoots: the characterization of the set
//     I(n) of arrivals that can be the last merge to the root (Theorem 3)
//     and the r(i) recurrence,
//   - OptimalTree: the O(n) optimal merge-tree construction (Theorem 7),
//   - FullCostWithStreams, OptimalStreamCount, FullCost, OptimalForest: the
//     optimal full cost (Lemma 9, Theorems 10 and 12),
//   - FullCostBuffered / OptimalForestBuffered: the bounded client buffer
//     variant (Section 3.3, Theorem 16),
//
// and for the receive-all model (Section 3.4):
//
//   - MergeCostAll (Eq. 20), OptimalTreeAll, FullCostAll, OptimalForestAll,
//   - ReceiveTwoAllRatio: the log_phi(2) ~ 1.44 asymptotic comparison
//     (Theorems 19 and 20).
//
// All functions operate on slot counts (int64) and return costs in units of
// slot-bandwidth (one unit = transmitting one stream for one slot).
package core
