package core

import (
	"fmt"

	"repro/internal/mergetree"
)

// OptimalTree returns an optimal merge tree (receive-two model) for the n
// consecutive arrivals 0, ..., n-1, constructed in O(n) total time with the
// recursive procedure of Theorem 7: split the input at r(size) (the largest
// member of I(size)), build both parts, and attach the right part's root as
// the last child of the left part's root.
//
// The returned tree has merge cost exactly MergeCost(n) and satisfies the
// preorder-traversal property.  It panics if n < 1.
func OptimalTree(n int64) *mergetree.Tree {
	return OptimalTreeAt(0, n)
}

// OptimalTreeAt is OptimalTree shifted to start at the given first arrival:
// it covers the arrivals first, first+1, ..., first+n-1.
func OptimalTreeAt(first, n int64) *mergetree.Tree {
	if n < 1 {
		panic(fmt.Sprintf("core: OptimalTreeAt requires n >= 1, got %d", n))
	}
	r := LastMergeRoots(n)
	return buildTree(first, first+n-1, r)
}

// buildTree implements the recursive procedure of Theorem 7 over the arrival
// interval [i, j] using the precomputed r table (r[size] = max I(size)).
func buildTree(i, j int64, r []int64) *mergetree.Tree {
	if i == j {
		return mergetree.New(i)
	}
	size := j - i + 1
	split := r[size]
	left := buildTree(i, i+split-1, r)
	right := buildTree(i+split, j, r)
	left.AddChild(right)
	return left
}

// OptimalTreeDP returns an optimal merge tree for n consecutive arrivals
// computed with the O(n^2) dynamic program of Eq. (5), recording for every
// subproblem size the smallest optimal split.  It is the baseline against
// which the O(n) construction is validated and benchmarked; both always
// produce trees of identical (optimal) merge cost, though not necessarily
// identical shape because optimal trees are not unique in general.
func OptimalTreeDP(n int) *mergetree.Tree {
	if n < 1 {
		panic(fmt.Sprintf("core: OptimalTreeDP requires n >= 1, got %d", n))
	}
	m := make([]int64, n+1)
	choice := make([]int, n+1)
	for i := 2; i <= n; i++ {
		best := int64(-1)
		for h := 1; h <= i-1; h++ {
			c := m[h] + m[i-h] + int64(2*i-h-2)
			if best < 0 || c < best {
				best = c
				choice[i] = h
			}
		}
		m[i] = best
	}
	var build func(i, j int64) *mergetree.Tree
	build = func(i, j int64) *mergetree.Tree {
		if i == j {
			return mergetree.New(i)
		}
		h := int64(choice[j-i+1])
		left := build(i, i+h-1)
		right := build(i+h, j)
		left.AddChild(right)
		return left
	}
	return build(0, int64(n-1))
}

// FibonacciTree returns the unique optimal merge tree for n = F_k arrivals
// (the "Fibonacci merge tree" of Section 3.1).  It panics if n is not a
// Fibonacci number or n < 1.
func FibonacciTree(n int64) *mergetree.Tree {
	if n < 1 {
		panic(fmt.Sprintf("core: FibonacciTree requires n >= 1, got %d", n))
	}
	if !isFibTreeSize(n) {
		panic(fmt.Sprintf("core: FibonacciTree requires a Fibonacci number, got %d", n))
	}
	return OptimalTree(n)
}

func isFibTreeSize(n int64) bool {
	if n == 1 || n == 2 {
		return true
	}
	a, b := int64(1), int64(2)
	for b < n {
		a, b = b, a+b
	}
	return b == n
}
