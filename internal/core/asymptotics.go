package core

import (
	"repro/internal/fib"
)

// MergeCostUpperBound returns the upper bound of Eq. (9) in Theorem 8:
// M(n) <= (log_phi(n) + 1)·n − phi·n + 2.
func MergeCostUpperBound(n int64) float64 {
	if n <= 1 {
		return 0
	}
	x := float64(n)
	return (fib.LogPhi(x)+1)*x - fib.Phi*x + 2
}

// MergeCostLowerBound returns the lower bound of Eq. (10) in Theorem 8:
// M(n) >= (log_phi(n) − 1)·n − phi^2·n + 2.
func MergeCostLowerBound(n int64) float64 {
	if n <= 1 {
		return 0
	}
	x := float64(n)
	return (fib.LogPhi(x)-1)*x - fib.Phi*fib.Phi*x + 2
}

// MergeCostLeadingTerm returns n·log_phi(n), the leading term of Theorem 8.
func MergeCostLeadingTerm(n int64) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n) * fib.LogPhi(float64(n))
}

// FullCostLeadingTerm returns n·log_phi(L), the leading term of Theorem 13.
func FullCostLeadingTerm(L, n int64) float64 {
	if L <= 1 {
		return float64(n)
	}
	return float64(n) * fib.LogPhi(float64(L))
}

// MergeCostAllLeadingTerm returns n·log2(n), the leading term of Eq. (21)
// for the receive-all model.
func MergeCostAllLeadingTerm(n int64) float64 {
	if n <= 1 {
		return 0
	}
	return float64(n) * log2(float64(n))
}

func log2(x float64) float64 {
	return fib.LogPhi(x) / fib.LogPhi(2)
}
