package core

import (
	"fmt"

	"repro/internal/fib"
	"repro/internal/mergetree"
)

// MinStreams returns s0 = ceil(n/L), the minimum number of full streams in
// any merge forest for n arrivals with full stream length L: at most L-1
// later streams can merge with a stream of length L.
func MinStreams(L, n int64) int64 {
	if L < 1 || n < 1 {
		panic(fmt.Sprintf("core: MinStreams requires L >= 1 and n >= 1, got L=%d n=%d", L, n))
	}
	return (n + L - 1) / L
}

// FullCostWithStreams returns F(L,n,s), the minimum full cost of any merge
// forest for the arrivals [0, n-1] with full stream length L and exactly s
// full streams (Lemma 9):
//
//	F(L,n,s) = s·L + r·M(p+1) + (s-r)·M(p),   n = p·s + r, 0 <= r < s.
//
// The caller is responsible for s being feasible (s >= ceil(n/L)); the
// formula itself is defined for any 1 <= s <= n.
func FullCostWithStreams(L, n, s int64) int64 {
	if s < 1 || s > n {
		panic(fmt.Sprintf("core: FullCostWithStreams requires 1 <= s <= n, got s=%d n=%d", s, n))
	}
	p := n / s
	r := n - p*s
	return s*L + r*MergeCost(p+1) + (s-r)*MergeCost(p)
}

// OptimalStreamCount returns a number of full streams s that minimizes
// F(L,n,s) over the feasible range s0 <= s <= n, using Theorem 12: with h
// such that F_{h+1} < L+2 <= F_{h+2} and s1 = floor(n/F_h), the optimum is
// s1 or s1+1 (or s0 when s0 > s1).  Ties are broken toward the smaller s.
func OptimalStreamCount(L, n int64) int64 {
	s0 := MinStreams(L, n)
	h := fib.IndexForLength(L)
	s1 := n / fib.F(h)
	candidates := []int64{s1, s1 + 1, s0}
	best := int64(-1)
	var bestCost int64
	for _, s := range candidates {
		if s < s0 {
			s = s0
		}
		if s > n {
			s = n
		}
		c := FullCostWithStreams(L, n, s)
		if best < 0 || c < bestCost || (c == bestCost && s < best) {
			best, bestCost = s, c
		}
	}
	return best
}

// OptimalStreamCountBrute returns the s in [ceil(n/L), n] minimizing
// F(L,n,s) by direct scan.  It is the reference implementation used to
// validate Theorem 12 and for ablation benchmarks; prefer
// OptimalStreamCount in production code.
func OptimalStreamCountBrute(L, n int64) int64 {
	s0 := MinStreams(L, n)
	best := s0
	bestCost := FullCostWithStreams(L, n, s0)
	for s := s0 + 1; s <= n; s++ {
		if c := FullCostWithStreams(L, n, s); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best
}

// FullCost returns F(L,n), the optimal full cost of any merge forest for
// the arrivals [0, n-1] with full stream length L (total server bandwidth in
// slot units).
func FullCost(L, n int64) int64 {
	return FullCostWithStreams(L, n, OptimalStreamCount(L, n))
}

// TreeSizes returns the multiset of tree sizes used by an optimal forest
// with s full streams: r trees of p+1 arrivals followed by s-r trees of p
// arrivals, where n = p·s + r (Lemma 9).
func TreeSizes(n, s int64) []int64 {
	if s < 1 || s > n {
		panic(fmt.Sprintf("core: TreeSizes requires 1 <= s <= n, got s=%d n=%d", s, n))
	}
	p := n / s
	r := n - p*s
	sizes := make([]int64, 0, s)
	for i := int64(0); i < r; i++ {
		sizes = append(sizes, p+1)
	}
	for i := int64(0); i < s-r; i++ {
		sizes = append(sizes, p)
	}
	return sizes
}

// ForestWithStreams constructs a minimum-cost merge forest for the arrivals
// [0, n-1] with exactly s full streams: the trees are balanced per Lemma 9
// and each tree is an optimal merge tree (Theorem 7).  Its full cost equals
// FullCostWithStreams(L, n, s).
func ForestWithStreams(L, n, s int64) *mergetree.Forest {
	f := mergetree.NewForest(L)
	start := int64(0)
	for _, size := range TreeSizes(n, s) {
		f.Add(OptimalTreeAt(start, size))
		start += size
	}
	return f
}

// OptimalForest constructs an optimal merge forest for the arrivals
// [0, n-1] with full stream length L in O(L + n) time (Theorem 10).  Its
// full cost equals FullCost(L, n).
func OptimalForest(L, n int64) *mergetree.Forest {
	return ForestWithStreams(L, n, OptimalStreamCount(L, n))
}

// BatchingCost returns the full cost of the pure batching solution in the
// delay-guaranteed setting: the whole transmission is broadcast once per
// slot, costing n·L (Section 1 and Theorem 14).
func BatchingCost(L, n int64) int64 {
	return n * L
}

// BatchingAdvantage returns the ratio of the batching cost to the optimal
// stream-merging full cost; by Theorem 14 this grows as Theta(L / log L).
func BatchingAdvantage(L, n int64) float64 {
	return float64(BatchingCost(L, n)) / float64(FullCost(L, n))
}
