package core

import (
	"testing"

	"repro/internal/mergetree"
)

func TestMaxUsefulBuffer(t *testing.T) {
	if MaxUsefulBuffer(15) != 7 || MaxUsefulBuffer(16) != 8 || MaxUsefulBuffer(1) != 0 {
		t.Errorf("MaxUsefulBuffer wrong: %d %d %d",
			MaxUsefulBuffer(15), MaxUsefulBuffer(16), MaxUsefulBuffer(1))
	}
}

func TestBufferRequiredMatchesLemma15(t *testing.T) {
	if BufferRequired(7, 0, 15) != 7 || BufferRequired(10, 0, 15) != 5 {
		t.Errorf("BufferRequired disagrees with Lemma 15")
	}
}

func TestMinStreamsBuffered(t *testing.T) {
	cases := []struct {
		B, n, want int64
	}{
		{1, 10, 5}, // trees of at most 2 arrivals
		{3, 8, 2},  // trees of at most 4 arrivals
		{3, 9, 3},  // 9 arrivals need 3 trees of <= 4
		{7, 8, 1},  // one tree of 8 spans 7 slots
		{7, 9, 2},
	}
	for _, c := range cases {
		if got := MinStreamsBuffered(c.B, c.n); got != c.want {
			t.Errorf("MinStreamsBuffered(%d,%d) = %d, want %d", c.B, c.n, got, c.want)
		}
	}
}

func TestMinStreamsBufferedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MinStreamsBuffered(0,5) did not panic")
		}
	}()
	MinStreamsBuffered(0, 5)
}

func TestFullCostBufferedUnboundedEqualsFullCost(t *testing.T) {
	// B >= L/2 is equivalent to an unbounded buffer.
	for _, c := range []struct{ L, n int64 }{{15, 8}, {15, 40}, {4, 16}, {100, 500}} {
		B := MaxUsefulBuffer(c.L)
		if got, want := FullCostBuffered(c.L, B, c.n), FullCost(c.L, c.n); got != want {
			t.Errorf("FullCostBuffered(%d,B=%d,%d) = %d, want unconstrained %d", c.L, B, c.n, got, want)
		}
		if got, want := FullCostBuffered(c.L, c.L, c.n), FullCost(c.L, c.n); got != want {
			t.Errorf("FullCostBuffered with B=L should match unconstrained")
		}
	}
}

func TestFullCostBufferedMonotoneInB(t *testing.T) {
	// A larger buffer can only reduce (or keep) the optimal cost.
	L, n := int64(40), int64(100)
	prev := int64(1 << 60)
	for B := int64(1); B <= MaxUsefulBuffer(L); B++ {
		c := FullCostBuffered(L, B, n)
		if c > prev {
			t.Fatalf("cost increased with buffer: B=%d cost=%d prev=%d", B, c, prev)
		}
		prev = c
	}
	if prev != FullCost(L, n) {
		t.Errorf("cost with B=L/2 (%d) != unconstrained cost (%d)", prev, FullCost(L, n))
	}
}

func TestFullCostBufferedNeverBelowUnconstrained(t *testing.T) {
	for _, L := range []int64{10, 15, 31} {
		for n := int64(1); n <= 80; n++ {
			for B := int64(1); B <= MaxUsefulBuffer(L); B++ {
				if FullCostBuffered(L, B, n) < FullCost(L, n) {
					t.Fatalf("L=%d n=%d B=%d: buffered cost below unconstrained optimum", L, n, B)
				}
			}
		}
	}
}

func TestOptimalForestBufferedRespectsBuffer(t *testing.T) {
	for _, c := range []struct{ L, B, n int64 }{
		{15, 3, 40}, {15, 1, 10}, {15, 7, 100}, {40, 5, 200}, {100, 10, 55},
	} {
		f := OptimalForestBuffered(c.L, c.B, c.n)
		if err := f.ValidateConsecutive(); err != nil {
			t.Fatalf("L=%d B=%d n=%d: %v", c.L, c.B, c.n, err)
		}
		if got := f.MaxBufferRequirement(); got > c.B {
			t.Errorf("L=%d B=%d n=%d: forest needs buffer %d > B", c.L, c.B, c.n, got)
		}
		if got := f.FullCost(); got != FullCostBuffered(c.L, c.B, c.n) {
			t.Errorf("L=%d B=%d n=%d: forest cost %d != FullCostBuffered %d",
				c.L, c.B, c.n, got, FullCostBuffered(c.L, c.B, c.n))
		}
	}
}

func TestFullCostBufferedMatchesConstrainedBruteForce(t *testing.T) {
	// Small-instance exhaustive check: the buffered optimum must equal the
	// minimum full cost over all merge forests whose every tree needs at
	// most B slots of client buffer.
	L := int64(10)
	for n := int64(1); n <= 9; n++ {
		for B := int64(1); B < MaxUsefulBuffer(L); B++ {
			want := bruteForceBufferedCost(L, B, n)
			if got := FullCostBuffered(L, B, n); got != want {
				t.Errorf("L=%d B=%d n=%d: FullCostBuffered=%d, brute force=%d", L, B, n, got, want)
			}
		}
	}
}

// bruteForceBufferedCost enumerates every partition of [0,n-1] into
// consecutive trees and every merge-tree shape per part, subject to the
// buffer bound, and returns the minimum full cost.
func bruteForceBufferedCost(L, B, n int64) int64 {
	best := int64(-1)
	var rec func(start int64, acc int64)
	rec = func(start int64, acc int64) {
		if start == n {
			if best < 0 || acc < best {
				best = acc
			}
			return
		}
		for size := int64(1); size <= n-start && size <= L; size++ {
			// With consecutive arrivals and B < L/2, a tree over `size`
			// arrivals contains an arrival needing buffer size-1 (Lemma 15),
			// so the tree is feasible iff size-1 <= B.
			if size-1 > B {
				continue
			}
			_, cost := mergetree.EnumerateOptimal(start, int(size))
			rec(start+size, acc+L+cost)
		}
	}
	rec(0, 0)
	return best
}

func TestOptimalStreamCountBufferedFeasible(t *testing.T) {
	for _, c := range []struct{ L, B, n int64 }{{15, 3, 40}, {20, 2, 17}, {9, 4, 9}, {50, 24, 200}} {
		s := OptimalStreamCountBuffered(c.L, c.B, c.n)
		if s < 1 || s > c.n {
			t.Fatalf("infeasible stream count %d", s)
		}
		if _, err := FullCostBufferedWithStreams(c.L, c.B, c.n, s); err != nil {
			t.Errorf("chosen s=%d is infeasible: %v", s, err)
		}
	}
}

func TestFullCostBufferedWithStreamsError(t *testing.T) {
	// One tree over 8 arrivals spans 7 slots, which exceeds B=3.
	if _, err := FullCostBufferedWithStreams(15, 3, 8, 1); err == nil {
		t.Errorf("expected infeasibility error")
	}
	// With B >= L/2 the same call is fine.
	if _, err := FullCostBufferedWithStreams(15, 7, 8, 1); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func BenchmarkOptimalForestBuffered(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OptimalForestBuffered(100, 20, 10000)
	}
}
