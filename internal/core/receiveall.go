package core

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/fib"
	"repro/internal/mergetree"
)

// MergeCostAll returns M_w(n), the optimal merge cost for n consecutive
// arrivals in the receive-all model, using the closed form of Eq. (20):
// M_w(n) = (k+1)n - 2^{k+1} + 1 for 2^k <= n <= 2^{k+1}.
// M_w(0) and M_w(1) are 0.  It panics if n is negative.
func MergeCostAll(n int64) int64 {
	switch {
	case n < 0:
		panic(fmt.Sprintf("core: MergeCostAll requires n >= 0, got %d", n))
	case n <= 1:
		return 0
	}
	k := bits.Len64(uint64(n)) - 1 // largest k with 2^k <= n
	return int64(k+1)*n - (int64(1) << uint(k+1)) + 1
}

// MergeCostAllDP returns the table M_w(0), ..., M_w(n) computed with the
// dynamic program of Eq. (19): M_w(n) = min_h {M_w(h)+M_w(n-h)} + n - 1.
func MergeCostAllDP(n int) []int64 {
	m := make([]int64, n+1)
	for i := 2; i <= n; i++ {
		best := int64(-1)
		for h := 1; h <= i-1; h++ {
			c := m[h] + m[i-h]
			if best < 0 || c < best {
				best = c
			}
		}
		m[i] = best + int64(i) - 1
	}
	return m
}

// OptimalTreeAll returns an optimal merge tree for n consecutive arrivals
// 0, ..., n-1 in the receive-all model.  The optimal split is the balanced
// one (h = ceil(n/2)), which yields a linear-time construction.
func OptimalTreeAll(n int64) *mergetree.Tree {
	return OptimalTreeAllAt(0, n)
}

// OptimalTreeAllAt is OptimalTreeAll shifted to start at the given arrival.
func OptimalTreeAllAt(first, n int64) *mergetree.Tree {
	if n < 1 {
		panic(fmt.Sprintf("core: OptimalTreeAllAt requires n >= 1, got %d", n))
	}
	if n == 1 {
		return mergetree.New(first)
	}
	h := (n + 1) / 2
	left := OptimalTreeAllAt(first, h)
	right := OptimalTreeAllAt(first+h, n-h)
	left.AddChild(right)
	return left
}

// FullCostAllWithStreams returns F_w(L,n,s) per Eq. (22): the receive-all
// analogue of Lemma 9 with balanced trees.
func FullCostAllWithStreams(L, n, s int64) int64 {
	if s < 1 || s > n {
		panic(fmt.Sprintf("core: FullCostAllWithStreams requires 1 <= s <= n, got s=%d n=%d", s, n))
	}
	p := n / s
	r := n - p*s
	return s*L + r*MergeCostAll(p+1) + (s-r)*MergeCostAll(p)
}

// OptimalStreamCountAll returns the number of full streams minimizing
// F_w(L,n,s) over s in [ceil(n/L), n] by direct scan with the O(1)
// closed-form merge cost.  (The paper does not give a two-candidate theorem
// for the receive-all model, so the scan is the reference algorithm.)
func OptimalStreamCountAll(L, n int64) int64 {
	s0 := MinStreams(L, n)
	best := s0
	bestCost := FullCostAllWithStreams(L, n, s0)
	for s := s0 + 1; s <= n; s++ {
		if c := FullCostAllWithStreams(L, n, s); c < bestCost {
			best, bestCost = s, c
		}
	}
	return best
}

// FullCostAll returns F_w(L,n), the optimal receive-all full cost.
func FullCostAll(L, n int64) int64 {
	return FullCostAllWithStreams(L, n, OptimalStreamCountAll(L, n))
}

// OptimalForestAll constructs an optimal receive-all merge forest for the
// arrivals [0, n-1] with full stream length L.
func OptimalForestAll(L, n int64) *mergetree.Forest {
	s := OptimalStreamCountAll(L, n)
	p := n / s
	r := n - p*s
	f := mergetree.NewForest(L)
	start := int64(0)
	for i := int64(0); i < s; i++ {
		size := p
		if i < r {
			size = p + 1
		}
		f.Add(OptimalTreeAllAt(start, size))
		start += size
	}
	return f
}

// ReceiveTwoAllRatio returns M(n)/M_w(n), the merge-cost penalty of the
// receive-two model relative to the receive-all model.  By Theorem 19 this
// tends to log_phi(2) ~ 1.4404 as n grows.
func ReceiveTwoAllRatio(n int64) float64 {
	mw := MergeCostAll(n)
	if mw == 0 {
		return 1
	}
	return float64(MergeCost(n)) / float64(mw)
}

// FullCostTwoAllRatio returns F(L,n)/F_w(L,n), which by Theorem 20 also
// tends to log_phi(2) as L and then n grow.
func FullCostTwoAllRatio(L, n int64) float64 {
	return float64(FullCost(L, n)) / float64(FullCostAll(L, n))
}

// LogPhi2 is the limiting ratio log_phi(2) ~ 1.4404 of Theorems 19 and 20.
var LogPhi2 = math.Log(2) / math.Log(fib.Phi)
